#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "results.h"
#include "src/graph/csr.h"
#include "src/simt/device.h"

namespace nestpar::bench {

/// Minimal flag parser shared by every bench binary. Flags look like
/// `--scale=0.25` or `--full`. Unknown flags abort with a usage message so a
/// typo cannot silently run the wrong experiment. A flag given twice keeps
/// the *last* value and warns on stderr (so scripted flag overrides work:
/// `fig5_sssp $COMMON_FLAGS --scale=0.5`).
///
/// ```cpp
///   const bench::Args args(argc, argv, "fig5_sssp [--scale=0.1] [--out=DIR]");
///   const double scale = args.get_double("scale", 0.1);
///   const std::string out = args.get_string("out", "");
/// ```
class Args {
 public:
  Args(int argc, char** argv, std::string_view usage);
  /// Same parse from pre-split flag strings (e.g. `{"--scale=0.02"}`) — the
  /// form the suite driver uses to run registered suites without a real argv.
  Args(const std::vector<std::string>& flags, std::string_view usage);

  double get_double(const std::string& name, double def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  /// Raw string value of `--name=value` (def when absent) — for path-valued
  /// flags such as `--out=results/` and `--baseline=bench/baselines`.
  std::string get_string(const std::string& name, const std::string& def) const;
  bool get_flag(const std::string& name) const;

 private:
  void parse(const std::vector<std::string>& flags, std::string_view usage);

  std::map<std::string, std::string> values_;
};

// ---------------------------------------------------------------------------
// Suite registry: every bench binary registers its experiment here. The
// standalone binary (`fig5_sssp`) and the unified driver (`nestpar_bench`)
// run the same registered function; the only difference is how many suites
// are linked into the executable.

/// A registered experiment. `run` prints the suite's classic text tables
/// exactly as before (so fault-free output stays byte-identical to the
/// pre-registry binaries) and additionally appends typed `Measurement`
/// records to `out` for the JSON results pipeline.
///
/// All fields are views over static storage (string literals and
/// file-local arrays): registration performs **no heap allocation**, so the
/// serial-CPU cache model — which is sensitive to heap layout — sees exactly
/// the same addresses as it did before the registry existed.
struct SuiteSpec {
  std::string_view name;         ///< Registry key and binary name.
  std::string_view figure;       ///< Paper anchor ("Figure 5", "Table I").
  std::string_view description;  ///< One-line summary for `--list`.
  std::string_view usage;        ///< Usage string (must mention every flag).
  /// Flags for a fast-but-nonempty run; `nestpar_bench --smoke` uses these
  /// to validate that every suite emits schema-valid JSON in seconds. Must
  /// point at a static array, e.g.
  /// `constexpr const char* kSmoke[] = {"--scale=0.01"};`.
  std::span<const char* const> smoke_flags;
  int (*run)(const Args& args, SuiteResult& out) = nullptr;
};

/// Process-wide suite registry, populated by static `Registration` objects
/// at load time. Fixed-capacity (no heap); suites are kept sorted by name.
class Registry {
 public:
  static Registry& instance();
  void add(const SuiteSpec& spec);
  const SuiteSpec* find(std::string_view name) const;
  std::span<const SuiteSpec> suites() const { return {suites_, count_}; }

 private:
  static constexpr std::size_t kCapacity = 64;
  SuiteSpec suites_[kCapacity];
  std::size_t count_ = 0;
};

/// Registers a suite from a static initializer:
/// ```cpp
///   const bench::Registration reg{{.name = "fig5_sssp", ...,  .run = &run}};
/// ```
struct Registration {
  explicit Registration(const SuiteSpec& spec);
};

/// Entry point of a standalone suite binary: parse argv against the suite's
/// usage, run it, and — when `--out=DIR` was given — write
/// `DIR/BENCH_<suite>.json`. `--smoke` expands to the suite's registered
/// smoke flags (explicit flags still win). Returns the suite's exit code
/// (2 on usage or I/O errors).
int standalone_main(std::string_view suite, int argc, char** argv);

/// Expands to the standalone `main` unless the file is being compiled into
/// the combined `nestpar_bench` driver (which has its own main and runs
/// suites through the registry).
#ifdef NESTPAR_BENCH_COMBINED
#define NESTPAR_BENCH_MAIN(suite)
#else
#define NESTPAR_BENCH_MAIN(suite)                       \
  int main(int argc, char** argv) {                     \
    return ::nestpar::bench::standalone_main(suite, argc, argv); \
  }
#endif

// ---------------------------------------------------------------------------
// Shared output helpers.

/// Print the experiment banner: what the paper's figure/table showed and what
/// shape we expect to reproduce.
void banner(const std::string& title, const std::string& paper_expectation);

/// Fixed-width table helpers (plain text so output diffs cleanly).
void table_header(const std::vector<std::string>& columns);
void table_row(const std::vector<std::string>& cells);

std::string fmt(double v, int precision = 2);
std::string fmt_pct(double ratio);  ///< 0.756 -> "75.6%"

/// Suffix for rows produced under the fault model: "" when the run was clean
/// (so fault-free bench output stays byte-identical), else
/// " [refused=N retried=N degraded=N]".
std::string robustness_note(const simt::RunReport& rep);

/// First node with at least one outgoing edge (BFS/SSSP source that is
/// guaranteed to produce a traversal).
std::uint32_t first_active_source(const graph::Csr& g);

/// Paper-calibrated datasets at a scale factor (1.0 = published size).
graph::Csr citeseer(double scale, bool weighted = false);
graph::Csr wikivote(double scale);

}  // namespace nestpar::bench
