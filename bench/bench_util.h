#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/simt/device.h"

namespace nestpar::bench {

/// Minimal flag parser shared by every bench binary. Flags look like
/// `--scale=0.25` or `--full`. Unknown flags abort with a usage message so a
/// typo cannot silently run the wrong experiment.
class Args {
 public:
  Args(int argc, char** argv, const std::string& usage);

  double get_double(const std::string& name, double def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  bool get_flag(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Print the experiment banner: what the paper's figure/table showed and what
/// shape we expect to reproduce.
void banner(const std::string& title, const std::string& paper_expectation);

/// Fixed-width table helpers (plain text so output diffs cleanly).
void table_header(const std::vector<std::string>& columns);
void table_row(const std::vector<std::string>& cells);

std::string fmt(double v, int precision = 2);
std::string fmt_pct(double ratio);  ///< 0.756 -> "75.6%"

/// Suffix for rows produced under the fault model: "" when the run was clean
/// (so fault-free bench output stays byte-identical), else
/// " [refused=N retried=N degraded=N]".
std::string robustness_note(const simt::RunReport& rep);

/// First node with at least one outgoing edge (BFS/SSSP source that is
/// guaranteed to produce a traversal).
std::uint32_t first_active_source(const graph::Csr& g);

/// Paper-calibrated datasets at a scale factor (1.0 = published size).
graph::Csr citeseer(double scale, bool weighted = false);
graph::Csr wikivote(double scale);

}  // namespace nestpar::bench
