// Wall-clock microbenchmarks of the simulator itself (google-benchmark):
// how fast the functional pass records and combines operations, and how the
// timing pass scales with grid count. These guard the substrate's own
// performance — every figure bench runs millions of modeled ops through it.
//
// Standalone, this is a plain google-benchmark binary (BENCHMARK_MAIN). In
// the combined nestpar_bench driver wall-clock numbers would not be
// reproducible, so there the suite instead registers a deterministic
// model-cycle variant: each scenario runs once through the simulator and
// records its modeled cycles, which are bit-stable across machines.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "src/graph/generators.h"
#include "src/simt/device.h"

namespace {

namespace simt = nestpar::simt;

void BM_ComputeOps(benchmark::State& state) {
  const int per_lane = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simt::Device dev;
    simt::Session session = dev.session();
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 64;
    cfg.block_threads = 192;
    cfg.name = "compute";
    session.launch_threads(cfg, [per_lane](simt::LaneCtx& t) {
      for (int i = 0; i < per_lane; ++i) t.compute();
    });
    benchmark::DoNotOptimize(session.report().total_cycles);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 192 * per_lane);
}
BENCHMARK(BM_ComputeOps)->Arg(16)->Arg(64);

void BM_CoalescedLoads(benchmark::State& state) {
  std::vector<float> data(64 * 192);
  for (auto _ : state) {
    simt::Device dev;
    simt::Session session = dev.session();
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 64;
    cfg.block_threads = 192;
    cfg.name = "loads";
    session.launch_threads(cfg, [&](simt::LaneCtx& t) {
      for (int r = 0; r < 16; ++r) t.ld(&data[t.global_idx()]);
    });
    benchmark::DoNotOptimize(session.report().total_cycles);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 192 * 16);
}
BENCHMARK(BM_CoalescedLoads);

void BM_TimingPassManyGrids(benchmark::State& state) {
  const int grids = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    simt::Device dev;
    simt::Session session = dev.session();
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 4;
    cfg.block_threads = 64;
    cfg.name = "grid";
    for (int i = 0; i < grids; ++i) {
      session.launch_threads(cfg, [](simt::LaneCtx& t) { t.compute(8); });
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(session.report().total_cycles);
  }
  state.SetItemsProcessed(state.iterations() * grids);
}
BENCHMARK(BM_TimingPassManyGrids)->Arg(64)->Arg(512);

// Functional-pass fan-out: the same wide grid under the serial and the
// parallel host engine (thread count = benchmark argument, 0 = serial).
void BM_EngineFanout(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const simt::ExecPolicy policy = threads > 0
                                      ? simt::ExecPolicy::parallel(threads)
                                      : simt::ExecPolicy::serial();
  std::vector<float> data(256 * 192);
  for (auto _ : state) {
    simt::Device dev;
    simt::Session session = dev.session(policy);
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 256;
    cfg.block_threads = 192;
    cfg.name = "fanout";
    session.launch_threads(cfg, [&](simt::LaneCtx& t) {
      for (int r = 0; r < 64; ++r) {
        t.ld(&data[t.global_idx()]);
        t.compute();
      }
    });
    benchmark::DoNotOptimize(session.report().total_cycles);
  }
  state.SetItemsProcessed(state.iterations() * 256 * 192 * 64);
}
BENCHMARK(BM_EngineFanout)->Arg(0)->Arg(2)->Arg(4);

void BM_GraphGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto g = nestpar::graph::generate_power_law(20000, 1, 500, 40.0, 7);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphGeneration);

#ifdef NESTPAR_BENCH_COMBINED
namespace bench = nestpar::bench;

// Deterministic stand-in for the combined driver: runs each microbench
// scenario exactly once and records modeled cycles, not wall clock.
int run(const bench::Args& args, bench::SuiteResult& out) {
  (void)args;
  bench::banner("Simulator micro-scenarios (deterministic model cycles)",
                "one pass per scenario; wall-clock microbenchmarks live in "
                "the standalone microbench_simulator binary");

  const auto record = [&](const char* name, double n,
                          const simt::RunReport& rep) {
    bench::Measurement m = bench::Measurement::from_report(rep);
    m.tmpl = name;
    m.dataset = "synthetic";
    m.scale = 1.0;
    m.params["n"] = n;
    out.measurements.push_back(std::move(m));
    bench::table_row({name, bench::fmt(n, 0),
                      bench::fmt(rep.total_cycles, 0)});
  };

  bench::table_header({"scenario", "n", "model-cycles"});
  for (const int per_lane : {16, 64}) {
    simt::Device dev;
    simt::Session session = dev.session();
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 64;
    cfg.block_threads = 192;
    cfg.name = "compute";
    session.launch_threads(cfg, [per_lane](simt::LaneCtx& t) {
      for (int i = 0; i < per_lane; ++i) t.compute();
    });
    record("compute-ops", per_lane, session.report());
  }
  {
    std::vector<float> data(64 * 192);
    simt::Device dev;
    simt::Session session = dev.session();
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 64;
    cfg.block_threads = 192;
    cfg.name = "loads";
    session.launch_threads(cfg, [&](simt::LaneCtx& t) {
      for (int r = 0; r < 16; ++r) t.ld(&data[t.global_idx()]);
    });
    record("coalesced-loads", 16, session.report());
  }
  for (const int grids : {64, 512}) {
    simt::Device dev;
    simt::Session session = dev.session();
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 4;
    cfg.block_threads = 64;
    cfg.name = "grid";
    for (int i = 0; i < grids; ++i) {
      session.launch_threads(cfg, [](simt::LaneCtx& t) { t.compute(8); });
    }
    record("many-grids", grids, session.report());
  }
  return 0;
}

const bench::Registration reg{{
    .name = "microbench_simulator",
    .figure = "— (substrate)",
    .description = "deterministic model-cycle pass over simulator scenarios",
    .usage = "microbench_simulator [--out=DIR]",
    .run = &run,
}};
#endif  // NESTPAR_BENCH_COMBINED

}  // namespace

#ifndef NESTPAR_BENCH_COMBINED
BENCHMARK_MAIN();
#endif
