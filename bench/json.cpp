#include "json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace nestpar::bench {

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string json_num(std::uint64_t v) { return std::to_string(v); }

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void append_num_map(std::string& out, const std::map<std::string, double>& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ", ";
    first = false;
    out += json_str(k) + ": " + json_num(v);
  }
  out += '}';
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue{std::move(arr)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            const auto res = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (res.ptr != text_.data() + pos_ + 4) fail("bad \\u escape");
            pos_ += 4;
            // Our emitters only escape control chars; decode BMP code
            // points to UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        start == pos_) {
      fail("malformed number");
    }
    return JsonValue{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

const JsonValue& require(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("JSON missing required field '" + key + "'");
  }
  return it->second;
}

double require_num(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_number()) {
    throw std::runtime_error("JSON field '" + key + "' is not a number");
  }
  return v.number();
}

std::string require_str(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_string()) {
    throw std::runtime_error("JSON field '" + key + "' is not a string");
  }
  return v.string();
}

std::map<std::string, double> num_map(const JsonObject& obj,
                                      const std::string& key) {
  std::map<std::string, double> out;
  const auto it = obj.find(key);
  if (it == obj.end()) return out;
  if (!it->second.is_object()) {
    throw std::runtime_error("JSON field '" + key + "' is not an object");
  }
  for (const auto& [k, v] : it->second.object()) {
    if (!v.is_number()) {
      throw std::runtime_error("JSON field '" + key + "." + k +
                               "' is not a number");
    }
    out[k] = v.number();
  }
  return out;
}

std::uint64_t opt_u64(const std::map<std::string, double>& m,
                      const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? 0 : static_cast<std::uint64_t>(it->second);
}

}  // namespace nestpar::bench
