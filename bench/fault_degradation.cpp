// Fault-model sweep: inject transient device-launch faults at increasing
// rates into the templates that rely on nested launches — dpar-opt for
// irregular loops, the whole workload-consolidation family (registry-derived:
// cons-warp / cons-block / cons-grid), and rec-hier plus rec-cons for
// recursion — and chart how modeled time and the robustness counters respond
// as retries and degraded fallbacks absorb the failures. Functional results
// must match the fault-free run at every rate — degradation trades speed,
// never correctness.
//
// Emits one JSON-style row per (template, rate) for downstream plotting.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/simt/log.h"
#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

using namespace nestpar;

namespace {

constexpr double kRates[] = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5};

void emit_row(const char* tmpl, double rate, const simt::RunReport& rep,
              bool results_match) {
  const simt::RobustnessCounters& rb = rep.robustness;
  std::printf(
      "{\"template\": \"%s\", \"fault_rate\": %.2f, \"model_cycles\": %.0f, "
      "\"attempted\": %llu, \"refused\": %llu, \"retries\": %llu, "
      "\"degraded\": %llu, \"results_match\": %s}\n",
      tmpl, rate, rep.total_cycles,
      static_cast<unsigned long long>(rb.launches_attempted),
      static_cast<unsigned long long>(rb.refused_total()),
      static_cast<unsigned long long>(rb.retries),
      static_cast<unsigned long long>(rb.degraded),
      results_match ? "true" : "false");
}

void record(bench::SuiteResult& out, const char* tmpl, const char* dataset,
            double scale, double rate, bool results_match,
            const simt::RunReport& rep) {
  bench::Measurement m = bench::Measurement::from_report(rep);
  m.tmpl = tmpl;
  m.dataset = dataset;
  m.scale = scale;
  m.params["fault_rate"] = rate;
  m.extra["results_match"] = results_match ? 1.0 : 0.0;
  out.measurements.push_back(std::move(m));
}

int sweep_dpar_opt(double scale, std::uint64_t seed, bench::SuiteResult& out) {
  const graph::Csr g = graph::generate_power_law(
      static_cast<std::uint32_t>(20000 * scale), 1, 800, 40.0, 42, true);
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);
  nested::LoopParams p;
  p.lb_threshold = 32;

  simt::Device dev;
  std::vector<float> clean;
  for (const double rate : kRates) {
    simt::FaultConfig fc;
    fc.device_launch_rate = rate;
    fc.seed = seed;
    dev.set_fault_config(fc);
    simt::Session session = dev.session();
    const std::vector<float> y =
        apps::run_spmv(dev, a, x, nested::LoopTemplate::kDparOpt, p);
    if (rate == 0.0) clean = y;
    const simt::RunReport rep = session.report();
    emit_row("dpar-opt", rate, rep, y == clean);
    record(out, "dpar-opt", "power-law", scale, rate, y == clean, rep);
    if (y != clean) return 1;
  }
  dev.set_fault_config(simt::FaultConfig{});
  return 0;
}

// Sweeps every template of the consolidation family, derived from the
// registry so a template added to the family shows up here without edits.
int sweep_consolidation(double scale, std::uint64_t seed,
                        bench::SuiteResult& out) {
  const graph::Csr g = graph::generate_power_law(
      static_cast<std::uint32_t>(20000 * scale), 1, 800, 40.0, 42, true);
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);
  nested::LoopParams p;
  p.lb_threshold = 32;

  int rc = 0;
  for (const nested::LoopTemplate tmpl :
       nested::templates_in_family(nested::TemplateFamily::kConsolidation)) {
    const std::string tname(nested::name(tmpl));
    simt::Device dev;
    std::vector<float> clean;
    for (const double rate : kRates) {
      simt::FaultConfig fc;
      fc.device_launch_rate = rate;
      fc.seed = seed;
      dev.set_fault_config(fc);
      simt::Session session = dev.session();
      const std::vector<float> y = apps::run_spmv(dev, a, x, tmpl, p);
      if (rate == 0.0) clean = y;
      const simt::RunReport rep = session.report();
      emit_row(tname.c_str(), rate, rep, y == clean);
      record(out, tname.c_str(), "power-law", scale, rate, y == clean, rep);
      if (y != clean) rc = 1;
    }
  }
  return rc;
}

int sweep_rec(double scale, std::uint64_t seed, bench::SuiteResult& out) {
  const tree::Tree tr = tree::generate_tree(
      {.depth = 4, .outdegree = static_cast<int>(16 * std::sqrt(scale)) + 4,
       .sparsity = 1},
      99);

  int rc = 0;
  for (const rec::RecTemplate tmpl :
       {rec::RecTemplate::kRecHier, rec::RecTemplate::kRecCons}) {
    const std::string tname(rec::name(tmpl));
    simt::Device dev;
    std::vector<std::uint32_t> clean;
    for (const double rate : kRates) {
      simt::FaultConfig fc;
      fc.device_launch_rate = rate;
      fc.seed = seed;
      dev.set_fault_config(fc);
      const rec::TreeRunResult run = rec::run_tree_traversal(
          dev, tr,
          {.algo = rec::TreeAlgo::kDescendants, .tmpl = tmpl,
           .policy = dev.exec_policy()});
      if (rate == 0.0) clean = run.values;
      emit_row(tname.c_str(), rate, run.report, run.values == clean);
      record(out, tname.c_str(), "tree", scale, rate, run.values == clean,
             run.report);
      if (run.values != clean) rc = 1;
    }
  }
  return rc;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  bench::banner(
      "fault-model degradation sweep (dpar-opt, consolidation family, "
      "rec-hier, rec-cons)",
      "not in the paper: robustness extension. Modeled time should "
      "rise smoothly with the injected fault rate while results "
      "stay bit-identical to the fault-free run.");

  const int rc = sweep_dpar_opt(scale, seed, out) +
                 sweep_consolidation(scale, seed, out) +
                 sweep_rec(scale, seed, out);
  if (rc != 0) {
    nestpar::simt::log::error(
        "FAIL: degraded run diverged from fault-free run\n");
    return 1;
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.02"};

const bench::Registration reg{{
    .name = "fault_degradation",
    .figure = "— (robustness extension)",
    .description = "injected-fault degradation sweep over dpar-opt, the "
                   "consolidation family, rec-hier, and rec-cons",
    .usage = "usage: fault_degradation [--scale=F] [--seed=N] [--out=DIR]\n"
             "  --scale=F   workload scale (default 0.25)\n"
             "  --seed=N    fault-injection seed (default 7)\n"
             "  --out=DIR   write BENCH_fault_degradation.json to DIR",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fault_degradation")
