// Figure 2: execution time of the sort implementations on random int arrays
// (the paper's motivation study for dynamic parallelism): CDP Simple
// QuickSort vs CDP Advanced QuickSort vs flat (non-recursive) MergeSort.
// Expected shape: MergeSort < AdvancedQS < SimpleQS at every size — the flat
// kernel beats both recursive codes despite their optimizations.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/simt/log.h"
#include "src/sort/sort.h"

using namespace nestpar;

namespace {

constexpr const char* kAlgoNames[] = {"mergesort", "advanced-quicksort",
                                      "simple-quicksort"};

struct SortRun {
  double ms = 0.0;
  simt::RunReport report;
};

SortRun run_ms(int algo, std::vector<int> keys) {
  simt::Device dev;
  simt::Session session = dev.session();
  switch (algo) {
    case 0: sort::mergesort(dev, keys); break;
    case 1: sort::advanced_quicksort(dev, keys); break;
    default: sort::simple_quicksort(dev, keys); break;
  }
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] > keys[i]) {
      nestpar::simt::log::error("sort produced unsorted output!\n");
      std::exit(1);
    }
  }
  SortRun r;
  r.report = session.report();
  r.ms = r.report.total_us / 1000.0;
  return r;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const auto max_size =
      static_cast<std::size_t>(args.get_int("max-size", 2000000));

  bench::banner(
      "Figure 2 - execution time of sort implementations (model ms, "
      "log-scale in the paper)",
      "MergeSort fastest at every size; Advanced QuickSort beats Simple "
      "QuickSort; both CDP sorts lose to the flat kernel");

  std::vector<std::size_t> sizes;
  if (args.get_flag("all-sizes")) {
    sizes = {300000, 500000, 1000000, 1500000, 2000000};
  } else {
    sizes = {300000, 1000000, 2000000};
  }

  bench::table_header({"elements", "mergesort-ms", "advanced-qs-ms",
                       "simple-qs-ms"});
  for (const std::size_t n : sizes) {
    if (n > max_size) continue;
    const auto keys = sort::make_keys(n, 20150707);
    std::vector<std::string> row{std::to_string(n)};
    for (int algo = 0; algo < 3; ++algo) {
      const SortRun r = run_ms(algo, keys);
      row.push_back(bench::fmt(r.ms));
      bench::Measurement m = bench::Measurement::from_report(r.report);
      m.tmpl = kAlgoNames[algo];
      m.dataset = "random-int";
      m.scale = static_cast<double>(n);
      out.measurements.push_back(std::move(m));
    }
    bench::table_row(row);
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--max-size=300000"};

const bench::Registration reg{{
    .name = "fig2_sort",
    .figure = "Figure 2",
    .description = "sort study: CDP quicksorts vs flat mergesort",
    .usage = "fig2_sort [--max-size=2000000] [--all-sizes] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig2_sort")
