// Figure 2: execution time of the sort implementations on random int arrays
// (the paper's motivation study for dynamic parallelism): CDP Simple
// QuickSort vs CDP Advanced QuickSort vs flat (non-recursive) MergeSort.
// Expected shape: MergeSort < AdvancedQS < SimpleQS at every size — the flat
// kernel beats both recursive codes despite their optimizations.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/sort/sort.h"

using namespace nestpar;

namespace {

double run_ms(int algo, std::vector<int> keys) {
  simt::Device dev;
  simt::Session session = dev.session();
  switch (algo) {
    case 0: sort::mergesort(dev, keys); break;
    case 1: sort::advanced_quicksort(dev, keys); break;
    default: sort::simple_quicksort(dev, keys); break;
  }
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] > keys[i]) {
      std::fprintf(stderr, "sort produced unsorted output!\n");
      std::exit(1);
    }
  }
  return session.report().total_us / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv, "fig2_sort [--max-size=2000000] [--all-sizes]");
  const auto max_size =
      static_cast<std::size_t>(args.get_int("max-size", 2000000));

  bench::banner(
      "Figure 2 - execution time of sort implementations (model ms, "
      "log-scale in the paper)",
      "MergeSort fastest at every size; Advanced QuickSort beats Simple "
      "QuickSort; both CDP sorts lose to the flat kernel");

  std::vector<std::size_t> sizes;
  if (args.get_flag("all-sizes")) {
    sizes = {300000, 500000, 1000000, 1500000, 2000000};
  } else {
    sizes = {300000, 1000000, 2000000};
  }

  bench::table_header({"elements", "mergesort-ms", "advanced-qs-ms",
                       "simple-qs-ms"});
  for (const std::size_t n : sizes) {
    if (n > max_size) continue;
    const auto keys = sort::make_keys(n, 20150707);
    bench::table_row({std::to_string(n), bench::fmt(run_ms(0, keys)),
                      bench::fmt(run_ms(1, keys)),
                      bench::fmt(run_ms(2, keys))});
  }
  return 0;
}
