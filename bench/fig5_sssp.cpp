// Figure 5: SSSP speedup of the load-balancing templates over the basic
// thread-mapped implementation on the CiteSeer-like network, for a sweep of
// lbTHRES values; nested-kernel-call counts reported for the dynamic
// parallelism variants (the numbers the paper prints on top of the bars).
//
// --threads=N runs the simulator's host engine with N worker threads
// (0 = serial). --compare-engines additionally reruns the whole sweep on
// both engines, checks that cycles and distances match bit-for-bit, and
// reports the host wall-clock speedup.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/apps/sssp.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

constexpr int kThresholds[] = {32, 64, 128, 256, 512, 1024};

/// One full Figure-5 sweep (baseline + all templates x lbTHRES) under the
/// given engine policy. Returns the model cycle count of every run, the last
/// run's distances, and the host wall-clock seconds.
struct SweepResult {
  std::vector<std::uint64_t> cycles;
  std::vector<float> dist;
  double wall_seconds = 0.0;
};

SweepResult run_sweep(simt::Device& dev, const graph::Csr& g,
                      const std::vector<LoopTemplate>& templates,
                      const simt::ExecPolicy& policy) {
  SweepResult r;
  const auto t0 = std::chrono::steady_clock::now();
  {
    simt::Session session = dev.session(policy);
    r.dist = apps::run_sssp(dev, g, 0, LoopTemplate::kBaseline).dist;
    r.cycles.push_back(session.report().total_cycles);
  }
  for (const LoopTemplate t : templates) {
    for (const int lb : kThresholds) {
      nested::LoopParams p;
      p.lb_threshold = lb;
      simt::Session session = dev.session(policy);
      r.dist = apps::run_sssp(dev, g, 0, t, p).dist;
      r.cycles.push_back(session.report().total_cycles);
    }
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);
  const bool skip_naive = args.get_flag("skip-dpar-naive");
  const int threads = static_cast<int>(args.get_int("threads", 0));
  const simt::ExecPolicy policy = threads > 0
                                      ? simt::ExecPolicy::parallel(threads)
                                      : simt::ExecPolicy::from_env();

  bench::banner(
      "Figure 5 - SSSP: speedup of load-balancing templates over baseline "
      "(CiteSeer-like, scale " + bench::fmt(scale) + ")",
      "all LB templates > 1x except dpar-naive (much slower); speedup "
      "decreases as lbTHRES grows; best ~2-3.5x at lbTHRES=32; dpar-opt "
      "spawns far fewer nested kernels than dpar-naive");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("engine: %s\n\n", simt::to_string(policy).c_str());

  simt::Device dev;
  double base_us = 0.0;
  {
    simt::Session session = dev.session(policy);
    apps::run_sssp(dev, g, 0, LoopTemplate::kBaseline);
    const simt::RunReport rep = session.report();
    base_us = rep.total_us;
    bench::Measurement m = bench::Measurement::from_report(rep);
    m.tmpl = std::string(nested::name(LoopTemplate::kBaseline));
    m.dataset = "citeseer";
    m.scale = scale;
    out.measurements.push_back(std::move(m));
  }
  std::printf("baseline (thread-mapped, no LB): %.0f us (model time)\n\n",
              base_us);

  // Registry-derived sweep order: the load-balancing family first (the
  // paper's Figure 5), then the consolidation family head-to-head against
  // dpar-naive/dpar-opt.
  std::vector<LoopTemplate> templates =
      nested::templates_in_family(nested::TemplateFamily::kLoadBalancing);
  for (const LoopTemplate t :
       nested::templates_in_family(nested::TemplateFamily::kConsolidation)) {
    templates.push_back(t);
  }
  if (skip_naive) {
    std::erase(templates, LoopTemplate::kDparNaive);
  }

  bench::table_header({"template", "lbTHRES", "speedup", "nested-calls"});
  for (const LoopTemplate t : templates) {
    for (const int lb : kThresholds) {
      nested::LoopParams p;
      p.lb_threshold = lb;
      const nested::RunResult run = [&] {
        simt::Session session = dev.session(policy);
        apps::run_sssp(dev, g, 0, t, p);
        return nested::RunResult{session.report()};
      }();
      const simt::RunReport& rep = run.report;
      bench::table_row({std::string(nested::name(t)), std::to_string(lb),
                        bench::fmt(base_us / rep.total_us) + "x",
                        std::to_string(rep.device_grids) +
                            bench::robustness_note(rep)});
      bench::Measurement m = bench::Measurement::from_report(rep);
      m.tmpl = std::string(nested::name(t));
      m.dataset = "citeseer";
      m.scale = scale;
      m.params["lb_threshold"] = lb;
      m.extra["speedup"] = base_us / rep.total_us;
      out.measurements.push_back(std::move(m));
    }
  }

  if (args.get_flag("compare-engines")) {
    const int par_threads =
        threads > 0 ? threads : simt::ExecPolicy::parallel().resolve_threads();
    std::printf("\nengine comparison (serial vs parallel/%d):\n", par_threads);
    const SweepResult serial =
        run_sweep(dev, g, templates, simt::ExecPolicy::serial());
    const SweepResult parallel =
        run_sweep(dev, g, templates, simt::ExecPolicy::parallel(par_threads));
    const bool cycles_match = serial.cycles == parallel.cycles;
    const bool dist_match = serial.dist == parallel.dist;
    std::printf("  serial:   %.2fs wall\n", serial.wall_seconds);
    std::printf("  parallel: %.2fs wall (%.2fx)\n", parallel.wall_seconds,
                serial.wall_seconds / parallel.wall_seconds);
    std::printf("  model cycles identical: %s\n", cycles_match ? "yes" : "NO");
    std::printf("  distances identical:    %s\n", dist_match ? "yes" : "NO");
    if (!cycles_match || !dist_match) return 1;
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01"};

const bench::Registration reg{{
    .name = "fig5_sssp",
    .figure = "Figure 5",
    .description = "SSSP load-balancing template sweep vs lbTHRES",
    .usage = "fig5_sssp [--scale=0.1] [--skip-dpar-naive] [--threads=N] "
             "[--compare-engines] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig5_sssp")
