// Figure 5: SSSP speedup of the load-balancing templates over the basic
// thread-mapped implementation on the CiteSeer-like network, for a sweep of
// lbTHRES values; nested-kernel-call counts reported for the dynamic
// parallelism variants (the numbers the paper prints on top of the bars).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/apps/sssp.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv,
                         "fig5_sssp [--scale=0.1] [--skip-dpar-naive]");
  const double scale = args.get_double("scale", 0.1);
  const bool skip_naive = args.get_flag("skip-dpar-naive");

  bench::banner(
      "Figure 5 - SSSP: speedup of load-balancing templates over baseline "
      "(CiteSeer-like, scale " + bench::fmt(scale) + ")",
      "all LB templates > 1x except dpar-naive (much slower); speedup "
      "decreases as lbTHRES grows; best ~2-3.5x at lbTHRES=32; dpar-opt "
      "spawns far fewer nested kernels than dpar-naive");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);
  std::printf("graph: %u nodes, %llu edges\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  simt::Device dev;
  apps::run_sssp(dev, g, 0, LoopTemplate::kBaseline);
  const double base_us = dev.report().total_us;
  std::printf("baseline (thread-mapped, no LB): %.0f us (model time)\n\n",
              base_us);

  std::vector<LoopTemplate> templates = {
      LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
      LoopTemplate::kDbufGlobal, LoopTemplate::kDparNaive,
      LoopTemplate::kDparOpt};
  if (skip_naive) templates.erase(templates.begin() + 3);

  bench::table_header({"template", "lbTHRES", "speedup", "nested-calls"});
  for (const LoopTemplate t : templates) {
    for (const int lb : {32, 64, 128, 256, 512, 1024}) {
      dev.reset();
      nested::LoopParams p;
      p.lb_threshold = lb;
      apps::run_sssp(dev, g, 0, t, p);
      const auto rep = dev.report();
      bench::table_row({nested::to_string(t), std::to_string(lb),
                        bench::fmt(base_us / rep.total_us) + "x",
                        std::to_string(rep.device_grids)});
    }
  }
  return 0;
}
