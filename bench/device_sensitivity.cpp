// Device-sensitivity ablation: do the paper's conclusions hold across
// device generations? Re-runs the SpMV template comparison on the K20 (the
// paper's testbed), a K40-like part, and a tiny 2-SM Kepler. The template
// *ranking* should be stable even though absolute times shift.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/spmv.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv, "device_sensitivity [--scale=0.05]");
  const double scale = args.get_double("scale", 0.05);

  bench::banner(
      "Device sensitivity - SpMV template speedups across device presets "
      "(CiteSeer-like scale " + bench::fmt(scale) + ", lbTHRES=32)",
      "the template ranking (dbuf-global/dpar-opt > dual-queue > baseline "
      ">> dpar-naive) is a property of the workload, not of one device");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  struct Preset {
    const char* name;
    simt::DeviceSpec spec;
  };
  const Preset presets[] = {
      {"K20 (paper)", simt::DeviceSpec::k20()},
      {"K40-like", simt::DeviceSpec::k40()},
      {"2-SM Kepler", simt::DeviceSpec::small_kepler()},
  };

  bench::table_header({"device", "base-us", "dual-queue", "dbuf-shared",
                       "dbuf-global", "dpar-opt"});
  for (const Preset& preset : presets) {
    simt::Device dev(preset.spec);
    double base = 0.0;
    {
      simt::Session session = dev.session();
      apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
      base = session.report().total_us;
    }
    std::vector<std::string> row{preset.name, bench::fmt(base, 0)};
    for (const LoopTemplate t :
         {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
          LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
      simt::Session session = dev.session();
      nested::LoopParams p;
      p.lb_threshold = 32;
      apps::run_spmv(dev, mat, x, t, p);
      row.push_back(bench::fmt(base / session.report().total_us) + "x");
    }
    bench::table_row(row);
  }
  return 0;
}
