// Device-sensitivity ablation: do the paper's conclusions hold across
// device generations? Re-runs the SpMV template comparison on the K20 (the
// paper's testbed), a K40-like part, and a tiny 2-SM Kepler. The template
// *ranking* should be stable even though absolute times shift.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/spmv.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.05);

  bench::banner(
      "Device sensitivity - SpMV template speedups across device presets "
      "(CiteSeer-like scale " + bench::fmt(scale) + ", lbTHRES=32)",
      "the template ranking (dbuf-global/dpar-opt > dual-queue > baseline "
      ">> dpar-naive) is a property of the workload, not of one device");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  struct Preset {
    const char* name;
    const char* slug;
    simt::DeviceSpec spec;
  };
  const Preset presets[] = {
      {"K20 (paper)", "k20", simt::DeviceSpec::k20()},
      {"K40-like", "k40", simt::DeviceSpec::k40()},
      {"2-SM Kepler", "small-kepler", simt::DeviceSpec::small_kepler()},
  };

  bench::table_header({"device", "base-us", "dual-queue", "dbuf-shared",
                       "dbuf-global", "dpar-opt"});
  for (const Preset& preset : presets) {
    simt::Device dev(preset.spec);
    double base = 0.0;
    {
      simt::Session session = dev.session();
      apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
      const simt::RunReport rep = session.report();
      base = rep.total_us;
      bench::Measurement m = bench::Measurement::from_report(rep);
      m.tmpl = std::string(preset.slug) + "/baseline";
      m.dataset = "citeseer";
      m.scale = scale;
      m.params["lb_threshold"] = 32;
      out.measurements.push_back(std::move(m));
    }
    std::vector<std::string> row{preset.name, bench::fmt(base, 0)};
    for (const LoopTemplate t :
         {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
          LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
      simt::Session session = dev.session();
      nested::LoopParams p;
      p.lb_threshold = 32;
      apps::run_spmv(dev, mat, x, t, p);
      const simt::RunReport rep = session.report();
      row.push_back(bench::fmt(base / rep.total_us) + "x");
      bench::Measurement m = bench::Measurement::from_report(rep);
      m.tmpl = std::string(preset.slug) + "/" + std::string(nested::name(t));
      m.dataset = "citeseer";
      m.scale = scale;
      m.params["lb_threshold"] = 32;
      m.extra["speedup"] = base / rep.total_us;
      out.measurements.push_back(std::move(m));
    }
    bench::table_row(row);
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01"};

const bench::Registration reg{{
    .name = "device_sensitivity",
    .figure = "— (ablation)",
    .description = "SpMV template ranking across K20/K40/small-Kepler presets",
    .usage = "device_sensitivity [--scale=0.05] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("device_sensitivity")
