#pragma once

// Shared sweep driver for the Figure 7 / Figure 8 tree-traversal benches:
// speedup of flat / rec-naive / rec-hier over the better serial CPU code,
// plus the profiling columns of the paper's part (c) tables.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

namespace nestpar::bench {

inline void tree_sweep(rec::TreeAlgo algo,
                       const std::vector<tree::TreeParams>& shapes,
                       const char* label, const char* param_of,
                       SuiteResult& out) {
  std::printf("\n-- %s --\n", label);
  table_header({param_of, "nodes", "flat", "rec-naive", "rec-hier",
                "autoropes", "flat-warp", "hier-warp", "flat-atomics",
                "hier-kcalls", "naive-kcalls"});
  for (const auto& shape : shapes) {
    const tree::Tree tr = tree::generate_tree(shape, 20150707);
    simt::CpuTimer t_rec, t_iter;
    rec::tree_traversal_serial_recursive(tr, algo, &t_rec);
    rec::tree_traversal_serial_iterative(tr, algo, &t_iter);
    const double cpu_us = std::min(t_rec.us(), t_iter.us());

    std::vector<std::string> row{
        param_of[0] == 'o' ? std::to_string(shape.outdegree)
                           : std::to_string(shape.sparsity),
        std::to_string(tr.num_nodes())};
    double flat_warp = 0, hier_warp = 0;
    std::uint64_t flat_atomics = 0, hier_kcalls = 0, naive_kcalls = 0;
    for (const rec::RecTemplate t :
         {rec::RecTemplate::kFlat, rec::RecTemplate::kRecNaive,
          rec::RecTemplate::kRecHier, rec::RecTemplate::kAutoropes}) {
      simt::Device dev;
      const rec::TreeRunResult run = rec::run_tree_traversal(
          dev, tr, {.algo = algo, .tmpl = t, .policy = dev.exec_policy()});
      const simt::RunReport& rep = run.report;
      row.push_back(fmt(cpu_us / rep.total_us) + "x");
      if (t == rec::RecTemplate::kFlat) {
        flat_warp = rep.aggregate.warp_execution_efficiency();
        flat_atomics = rep.aggregate.atomic_ops;
      } else if (t == rec::RecTemplate::kRecHier) {
        hier_warp = rep.aggregate.warp_execution_efficiency();
        hier_kcalls = rep.device_grids;
      } else {
        naive_kcalls = rep.device_grids;
      }
      Measurement m = Measurement::from_report(rep);
      m.tmpl = std::string(rec::name(t));
      m.dataset = "tree";
      m.scale = 1.0;
      m.params["depth"] = shape.depth;
      m.params["outdegree"] = shape.outdegree;
      m.params["sparsity"] = shape.sparsity;
      // Cross-model ratio built on wall-clock CPU time: volatile by nature.
      m.volatile_extra["cpu_speedup"] = cpu_us / rep.total_us;
      out.measurements.push_back(std::move(m));
    }
    row.push_back(fmt_pct(flat_warp));
    row.push_back(fmt_pct(hier_warp));
    row.push_back(std::to_string(flat_atomics));
    row.push_back(std::to_string(hier_kcalls));
    row.push_back(std::to_string(naive_kcalls));
    table_row(row);
  }
}

inline int tree_figure_run(const Args& args, SuiteResult& out,
                           rec::TreeAlgo algo, const char* figure) {
  const int depth = static_cast<int>(args.get_int("depth", 3));
  const int max_out = static_cast<int>(args.get_int("max-outdegree", 128));

  banner(
      std::string(figure) + " - Tree " +
          (algo == rec::TreeAlgo::kDescendants ? "Descendants" : "Heights") +
          ": speedup over best serial CPU (synthetic trees, " +
          std::to_string(depth + 1) + " levels)",
      "rec-naive far below 1x everywhere (many tiny nested kernels); "
      "rec-hier beats flat at large outdegree (far fewer atomics) and "
      "degrades as sparsity grows (warp divergence); flat stable; "
      "hier KCalls ~ outdegree+1, naive KCalls ~ internal nodes");

  std::vector<tree::TreeParams> by_out;
  for (int d = 8; d <= max_out; d *= 2) {
    by_out.push_back({.depth = depth, .outdegree = d, .sparsity = 0});
  }
  tree_sweep(algo, by_out, "(a) sparsity = 0, varying outdegree", "outdegree",
             out);

  std::vector<tree::TreeParams> by_sparsity;
  for (int s = 0; s <= 4; ++s) {
    by_sparsity.push_back(
        {.depth = depth, .outdegree = max_out, .sparsity = s});
  }
  tree_sweep(algo, by_sparsity, "(b) outdegree fixed at max, varying sparsity",
             "sparsity", out);
  return 0;
}

}  // namespace nestpar::bench
