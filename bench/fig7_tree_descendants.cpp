// Figure 7: Tree Descendants on synthetic trees — speedup of the GPU code
// variants (flat / rec-naive / rec-hier) over the better serial CPU code,
// with (a) sparsity 0 and varying outdegree, (b) fixed outdegree and varying
// sparsity, and (c) the profiling data (warp utilization, atomics, nested
// kernel calls) folded into the same tables.
//
// Scale note (DESIGN.md): the paper's depth-4 trees at outdegree 512 have
// ~134M nodes; the default sweep caps outdegree at 128 (~2.1M nodes) so the
// bench runs in seconds. --max-outdegree and --depth raise it.
#include "tree_sweep.h"

int main(int argc, char** argv) {
  return nestpar::bench::tree_figure_main(
      argc, argv, nestpar::rec::TreeAlgo::kDescendants, "Figure 7",
      "fig7_tree_descendants [--depth=3] [--max-outdegree=128]");
}
