// Figure 7: Tree Descendants on synthetic trees — speedup of the GPU code
// variants (flat / rec-naive / rec-hier) over the better serial CPU code,
// with (a) sparsity 0 and varying outdegree, (b) fixed outdegree and varying
// sparsity, and (c) the profiling data (warp utilization, atomics, nested
// kernel calls) folded into the same tables.
//
// Scale note (DESIGN.md): the paper's depth-4 trees at outdegree 512 have
// ~134M nodes; the default sweep caps outdegree at 128 (~2.1M nodes) so the
// bench runs in seconds. --max-outdegree and --depth raise it.
#include "tree_sweep.h"

namespace {

int run(const nestpar::bench::Args& args, nestpar::bench::SuiteResult& out) {
  return nestpar::bench::tree_figure_run(
      args, out, nestpar::rec::TreeAlgo::kDescendants, "Figure 7");
}

constexpr const char* kSmokeFlags[] = {"--depth=2", "--max-outdegree=16"};

const nestpar::bench::Registration reg{{
    .name = "fig7_tree_descendants",
    .figure = "Figure 7",
    .description = "tree descendants: flat/rec-naive/rec-hier vs serial CPU",
    .usage = "fig7_tree_descendants [--depth=3] [--max-outdegree=128] "
             "[--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig7_tree_descendants")
