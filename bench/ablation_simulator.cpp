// Ablations over the design choices DESIGN.md calls out: how the headline
// results move when individual device-model mechanisms are disabled or
// rescaled. Each section re-runs a representative experiment under a
// modified DeviceSpec and reports the sensitivity.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/bfs.h"
#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

double spmv_speedup(const simt::DeviceSpec& spec, const matrix::CsrMatrix& m,
                    const std::vector<float>& x, LoopTemplate t, int lb = 32) {
  simt::Device dev(spec);
  double base = 0.0;
  {
    simt::Session session = dev.session();
    apps::run_spmv(dev, m, x, LoopTemplate::kBaseline);
    base = session.report().total_us;
  }
  simt::Session session = dev.session();
  nested::LoopParams p;
  p.lb_threshold = lb;
  apps::run_spmv(dev, m, x, t, p);
  return base / session.report().total_us;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv, "ablation_simulator [--scale=0.05]");
  const double scale = args.get_double("scale", 0.05);

  bench::banner("Simulator ablations",
                "which modeled mechanism produces which paper effect");

  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(cs);
  const auto x = matrix::make_dense_vector(mat.cols, 7);
  const auto spec = simt::DeviceSpec::k20();

  std::printf("\n-- latency hiding (occupancy sensitivity) --\n");
  std::printf("dbuf-shared reserves shared memory, lowering occupancy; its\n");
  std::printf("speedup should drop as the hiding requirement rises.\n");
  bench::table_header({"hiding-warps", "dbuf-shared", "dbuf-global"});
  for (const int warps : {1, 12, 24, 48}) {
    simt::DeviceSpec s = spec;
    s.latency_hiding_warps = warps;
    bench::table_row({std::to_string(warps),
                      bench::fmt(spmv_speedup(s, mat, x,
                                              LoopTemplate::kDbufShared)) + "x",
                      bench::fmt(spmv_speedup(s, mat, x,
                                              LoopTemplate::kDbufGlobal)) + "x"});
  }

  std::printf("\n-- nested-launch overhead --\n");
  std::printf("dpar-naive's collapse is driven by per-launch service cost;\n");
  std::printf("dpar-opt barely moves (few launches).\n");
  bench::table_header({"launch-service-us", "dpar-naive", "dpar-opt"});
  for (const double us : {0.5, 4.0, 16.0}) {
    simt::DeviceSpec s = spec;
    s.device_launch_service_us = us;
    s.virtualized_launch_service_us = us * 30.0;
    bench::table_row({bench::fmt(us, 1),
                      bench::fmt(spmv_speedup(s, mat, x,
                                              LoopTemplate::kDparNaive), 3) + "x",
                      bench::fmt(spmv_speedup(s, mat, x,
                                              LoopTemplate::kDparOpt)) + "x"});
  }

  std::printf("\n-- pending-launch pool (queue virtualization) --\n");
  std::printf("recursive BFS pays the virtualized-queue cost; a huge pool\n");
  std::printf("removes it and shrinks the slowdown substantially.\n");
  {
    const graph::Csr rnd = graph::generate_uniform_random(10000, 1, 64, 7);
    simt::CpuTimer cpu;
    apps::bfs_serial_recursive(rnd, 0, &cpu);
    bench::table_header({"pool-size", "rec-naive-slowdown"});
    for (const int pool : {2048, 1 << 30}) {
      simt::DeviceSpec s = spec;
      s.pending_launch_pool = pool;
      simt::Device dev(s);
      simt::Session session = dev.session();
      apps::bfs_recursive_gpu(dev, rnd, 0, rec::RecTemplate::kRecNaive);
      bench::table_row({pool > (1 << 20) ? "unbounded" : std::to_string(pool),
                        bench::fmt(session.report().total_us / cpu.us(), 0) +
                            "x"});
    }
  }

  std::printf("\n-- atomic hotspot drain --\n");
  std::printf("the flat tree kernel is bound by same-address atomics at the\n");
  std::printf("root; scaling the drain cost moves flat but not rec-hier.\n");
  {
    const tree::Tree tr =
        tree::generate_tree({.depth = 3, .outdegree = 64, .sparsity = 0}, 1);
    simt::CpuTimer t_iter;
    rec::tree_traversal_serial_iterative(tr, rec::TreeAlgo::kDescendants,
                                         &t_iter);
    bench::table_header({"drain-cycles", "flat", "rec-hier"});
    for (const double drain : {0.0, 1.5, 24.0}) {
      simt::DeviceSpec s = spec;
      s.atomic_drain_cycles = drain;
      simt::Device dev(s);
      const rec::TreeRunResult flat_run = rec::run_tree_traversal(
          dev, tr, rec::TreeAlgo::kDescendants, rec::RecTemplate::kFlat, {},
          dev.exec_policy());
      const double flat = t_iter.us() / flat_run.report.total_us;
      const rec::TreeRunResult hier_run = rec::run_tree_traversal(
          dev, tr, rec::TreeAlgo::kDescendants, rec::RecTemplate::kRecHier, {},
          dev.exec_policy());
      const double hier = t_iter.us() / hier_run.report.total_us;
      bench::table_row({bench::fmt(drain, 1), bench::fmt(flat) + "x",
                        bench::fmt(hier) + "x"});
    }
  }

  std::printf("\n-- shared-buffer capacity (dbuf-shared) --\n");
  std::printf("a larger buffer costs occupancy (shared memory) but avoids\n");
  std::printf("overflow fallback; the default 256 balances the two.\n");
  bench::table_header({"entries", "dbuf-shared"});
  for (const int entries : {32, 256, 2048}) {
    simt::Device dev(spec);
    double base = 0.0;
    {
      simt::Session session = dev.session();
      apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
      base = session.report().total_us;
    }
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    p.shared_buffer_entries = entries;
    apps::run_spmv(dev, mat, x, LoopTemplate::kDbufShared, p);
    bench::table_row({std::to_string(entries),
                      bench::fmt(base / session.report().total_us) + "x"});
  }
  return 0;
}
