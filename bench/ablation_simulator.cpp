// Ablations over the design choices DESIGN.md calls out: how the headline
// results move when individual device-model mechanisms are disabled or
// rescaled. Each section re-runs a representative experiment under a
// modified DeviceSpec and reports the sensitivity.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/bfs.h"
#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

struct SpeedupRun {
  double speedup = 0.0;
  simt::RunReport report;
};

SpeedupRun spmv_speedup(const simt::DeviceSpec& spec,
                        const matrix::CsrMatrix& m,
                        const std::vector<float>& x, LoopTemplate t,
                        int lb = 32) {
  simt::Device dev(spec);
  double base = 0.0;
  {
    simt::Session session = dev.session();
    apps::run_spmv(dev, m, x, LoopTemplate::kBaseline);
    base = session.report().total_us;
  }
  simt::Session session = dev.session();
  nested::LoopParams p;
  p.lb_threshold = lb;
  apps::run_spmv(dev, m, x, t, p);
  SpeedupRun r;
  r.report = session.report();
  r.speedup = base / r.report.total_us;
  return r;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.05);

  bench::banner("Simulator ablations",
                "which modeled mechanism produces which paper effect");

  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(cs);
  const auto x = matrix::make_dense_vector(mat.cols, 7);
  const auto spec = simt::DeviceSpec::k20();

  const auto record = [&](const std::string& tmpl, const char* knob,
                          double knob_value, const SpeedupRun& r) {
    bench::Measurement m = bench::Measurement::from_report(r.report);
    m.tmpl = tmpl;
    m.dataset = "citeseer";
    m.scale = scale;
    m.params[knob] = knob_value;
    m.extra["speedup"] = r.speedup;
    out.measurements.push_back(std::move(m));
  };

  std::printf("\n-- latency hiding (occupancy sensitivity) --\n");
  std::printf("dbuf-shared reserves shared memory, lowering occupancy; its\n");
  std::printf("speedup should drop as the hiding requirement rises.\n");
  bench::table_header({"hiding-warps", "dbuf-shared", "dbuf-global"});
  for (const int warps : {1, 12, 24, 48}) {
    simt::DeviceSpec s = spec;
    s.latency_hiding_warps = warps;
    const SpeedupRun shared =
        spmv_speedup(s, mat, x, LoopTemplate::kDbufShared);
    const SpeedupRun global =
        spmv_speedup(s, mat, x, LoopTemplate::kDbufGlobal);
    bench::table_row({std::to_string(warps),
                      bench::fmt(shared.speedup) + "x",
                      bench::fmt(global.speedup) + "x"});
    record("dbuf-shared", "hiding_warps", warps, shared);
    record("dbuf-global", "hiding_warps", warps, global);
  }

  std::printf("\n-- nested-launch overhead --\n");
  std::printf("dpar-naive's collapse is driven by per-launch service cost;\n");
  std::printf("dpar-opt barely moves (few launches).\n");
  bench::table_header({"launch-service-us", "dpar-naive", "dpar-opt"});
  for (const double us : {0.5, 4.0, 16.0}) {
    simt::DeviceSpec s = spec;
    s.device_launch_service_us = us;
    s.virtualized_launch_service_us = us * 30.0;
    const SpeedupRun naive = spmv_speedup(s, mat, x, LoopTemplate::kDparNaive);
    const SpeedupRun opt = spmv_speedup(s, mat, x, LoopTemplate::kDparOpt);
    bench::table_row({bench::fmt(us, 1),
                      bench::fmt(naive.speedup, 3) + "x",
                      bench::fmt(opt.speedup) + "x"});
    record("dpar-naive", "launch_service_us", us, naive);
    record("dpar-opt", "launch_service_us", us, opt);
  }

  std::printf("\n-- pending-launch pool (queue virtualization) --\n");
  std::printf("recursive BFS pays the virtualized-queue cost; a huge pool\n");
  std::printf("removes it and shrinks the slowdown substantially.\n");
  {
    const graph::Csr rnd = graph::generate_uniform_random(10000, 1, 64, 7);
    simt::CpuTimer cpu;
    apps::bfs_serial_recursive(rnd, 0, &cpu);
    bench::table_header({"pool-size", "rec-naive-slowdown"});
    for (const int pool : {2048, 1 << 30}) {
      simt::DeviceSpec s = spec;
      s.pending_launch_pool = pool;
      simt::Device dev(s);
      simt::Session session = dev.session();
      apps::bfs_recursive_gpu(dev, rnd, 0, rec::RecTemplate::kRecNaive);
      const simt::RunReport rep = session.report();
      bench::table_row({pool > (1 << 20) ? "unbounded" : std::to_string(pool),
                        bench::fmt(rep.total_us / cpu.us(), 0) + "x"});
      bench::Measurement m = bench::Measurement::from_report(rep);
      m.tmpl = "rec-naive-bfs";
      m.dataset = "uniform-random";
      m.scale = scale;
      m.params["pending_launch_pool"] = pool;
      // Cross-model ratio built on the ASLR-sensitive CPU model: volatile.
      m.volatile_extra["cpu_slowdown"] = rep.total_us / cpu.us();
      out.measurements.push_back(std::move(m));
    }
  }

  std::printf("\n-- atomic hotspot drain --\n");
  std::printf("the flat tree kernel is bound by same-address atomics at the\n");
  std::printf("root; scaling the drain cost moves flat but not rec-hier.\n");
  {
    const tree::Tree tr =
        tree::generate_tree({.depth = 3, .outdegree = 64, .sparsity = 0}, 1);
    simt::CpuTimer t_iter;
    rec::tree_traversal_serial_iterative(tr, rec::TreeAlgo::kDescendants,
                                         &t_iter);
    bench::table_header({"drain-cycles", "flat", "rec-hier"});
    for (const double drain : {0.0, 1.5, 24.0}) {
      simt::DeviceSpec s = spec;
      s.atomic_drain_cycles = drain;
      simt::Device dev(s);
      const rec::TreeRunResult flat_run = rec::run_tree_traversal(
          dev, tr,
          {.algo = rec::TreeAlgo::kDescendants,
           .tmpl = rec::RecTemplate::kFlat, .policy = dev.exec_policy()});
      const double flat = t_iter.us() / flat_run.report.total_us;
      const rec::TreeRunResult hier_run = rec::run_tree_traversal(
          dev, tr,
          {.algo = rec::TreeAlgo::kDescendants,
           .tmpl = rec::RecTemplate::kRecHier,
           .policy = dev.exec_policy()});
      const double hier = t_iter.us() / hier_run.report.total_us;
      bench::table_row({bench::fmt(drain, 1), bench::fmt(flat) + "x",
                        bench::fmt(hier) + "x"});
      for (const auto& [tmpl, tree_run] :
           {std::pair<const char*, const rec::TreeRunResult&>{"flat",
                                                              flat_run},
            {"rec-hier", hier_run}}) {
        bench::Measurement m =
            bench::Measurement::from_report(tree_run.report);
        m.tmpl = tmpl;
        m.dataset = "tree";
        m.scale = scale;
        m.params["atomic_drain_cycles"] = drain;
        out.measurements.push_back(std::move(m));
      }
    }
  }

  std::printf("\n-- shared-buffer capacity (dbuf-shared) --\n");
  std::printf("a larger buffer costs occupancy (shared memory) but avoids\n");
  std::printf("overflow fallback; the default 256 balances the two.\n");
  bench::table_header({"entries", "dbuf-shared"});
  for (const int entries : {32, 256, 2048}) {
    simt::Device dev(spec);
    double base = 0.0;
    {
      simt::Session session = dev.session();
      apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
      base = session.report().total_us;
    }
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    p.shared_buffer_entries = entries;
    apps::run_spmv(dev, mat, x, LoopTemplate::kDbufShared, p);
    const simt::RunReport rep = session.report();
    bench::table_row({std::to_string(entries),
                      bench::fmt(base / rep.total_us) + "x"});
    bench::Measurement m = bench::Measurement::from_report(rep);
    m.tmpl = "dbuf-shared";
    m.dataset = "citeseer";
    m.scale = scale;
    m.params["shared_buffer_entries"] = entries;
    m.extra["speedup"] = base / rep.total_us;
    out.measurements.push_back(std::move(m));
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01"};

const bench::Registration reg{{
    .name = "ablation_simulator",
    .figure = "— (ablation)",
    .description = "device-model mechanism ablations behind the paper effects",
    .usage = "ablation_simulator [--scale=0.05] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("ablation_simulator")
