// §III.B text: speedups of the baseline (thread-mapped, no load balancing)
// GPU implementations over serial CPU code — SSSP 8.2x, BC 2.5x, PageRank
// 15.8x, SpMV 2.4x — plus the flat-GPU-vs-recursive-CPU BFS factor (11-14x).
// These anchor the absolute scale of the model; the template comparisons in
// the other benches are ratios on top of these baselines.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/bc.h"
#include "src/apps/bfs.h"
#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"

using namespace nestpar;
using nested::LoopTemplate;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv,
                         "baseline_speedups [--scale=0.1] [--sources=32]");
  const double scale = args.get_double("scale", 0.1);
  const auto sources = static_cast<std::uint32_t>(args.get_int("sources", 32));

  bench::banner(
      "Baseline GPU vs serial CPU speedups (section III.B text)",
      "SSSP 8.2x, BC 2.5x, PageRank 15.8x, SpMV 2.4x; flat BFS 11-14x over "
      "recursive CPU");

  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const graph::Csr wv = bench::wikivote(1.0);

  bench::table_header({"app", "cpu-us", "gpu-us", "speedup", "paper"});

  {
    simt::CpuTimer cpu;
    apps::sssp_serial(cs, 0, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_sssp(dev, cs, 0, LoopTemplate::kBaseline);
    const double gpu = session.report().total_us;
    bench::table_row({"SSSP", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "8.2x"});
  }
  {
    simt::CpuTimer cpu;
    apps::BcOptions opt;
    opt.num_sources = sources;
    apps::bc_serial(wv, opt, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_bc(dev, wv, LoopTemplate::kBaseline, {}, opt);
    const double gpu = session.report().total_us;
    bench::table_row({"BC", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "2.5x"});
  }
  {
    simt::CpuTimer cpu;
    apps::pagerank_serial(cs, {}, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_pagerank(dev, cs, LoopTemplate::kBaseline);
    const double gpu = session.report().total_us;
    bench::table_row({"PageRank", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "15.8x"});
  }
  {
    const auto mat = matrix::CsrMatrix::from_graph(cs);
    const auto x = matrix::make_dense_vector(mat.cols, 7);
    simt::CpuTimer cpu;
    matrix::spmv_serial(mat, x, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
    const double gpu = session.report().total_us;
    bench::table_row({"SpMV", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "2.4x"});
  }
  {
    const graph::Csr rnd = graph::generate_uniform_random(
        static_cast<std::uint32_t>(50000 * scale * 2.5), 0, 256, 20150707);
    simt::CpuTimer cpu;
    apps::bfs_serial_recursive(rnd, 0, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::bfs_flat_gpu(dev, rnd, 0);
    const double gpu = session.report().total_us;
    bench::table_row({"BFS(flat)", bench::fmt(cpu.us(), 0),
                      bench::fmt(gpu, 0), bench::fmt(cpu.us() / gpu) + "x",
                      "11-14x"});
  }
  return 0;
}
