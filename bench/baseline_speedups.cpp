// §III.B text: speedups of the baseline (thread-mapped, no load balancing)
// GPU implementations over serial CPU code — SSSP 8.2x, BC 2.5x, PageRank
// 15.8x, SpMV 2.4x — plus the flat-GPU-vs-recursive-CPU BFS factor (11-14x).
// These anchor the absolute scale of the model; the template comparisons in
// the other benches are ratios on top of these baselines.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/bc.h"
#include "src/apps/bfs.h"
#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

// One app's deterministic metrics, captured without heap allocation. The
// serial CPU cost model hashes raw heap addresses, so building Measurement
// records (strings, maps, vector growth) between the app blocks would shift
// the heap layout every later serial reference sees and drift its modeled
// time away from the standalone pre-registry numbers. Rows are flushed into
// the SuiteResult only after the last serial reference has run.
struct AppRow {
  const char* app;
  const char* dataset;
  double app_scale;
  double cpu_us;
  double total_us;
  double cycles;
  double warp_efficiency;
  std::uint64_t host_launches;
  std::uint64_t device_launches;
  simt::RobustnessCounters robustness;
};

// Copies the POD metrics out of a (possibly temporary) report and returns
// the modeled GPU time; performs no heap allocation.
double capture(const simt::RunReport& rep, AppRow& row, const char* app,
               const char* dataset, double app_scale, double cpu_us) {
  row.app = app;
  row.dataset = dataset;
  row.app_scale = app_scale;
  row.cpu_us = cpu_us;
  row.total_us = rep.total_us;
  row.cycles = rep.total_cycles;
  row.warp_efficiency = rep.aggregate.warp_execution_efficiency();
  row.host_launches = rep.aggregate.host_launches;
  row.device_launches = rep.aggregate.device_launches;
  row.robustness = rep.robustness;
  return rep.total_us;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);
  const auto sources = static_cast<std::uint32_t>(args.get_int("sources", 32));

  bench::banner(
      "Baseline GPU vs serial CPU speedups (section III.B text)",
      "SSSP 8.2x, BC 2.5x, PageRank 15.8x, SpMV 2.4x; flat BFS 11-14x over "
      "recursive CPU");

  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const graph::Csr wv = bench::wikivote(1.0);

  AppRow rows[5] = {};

  bench::table_header({"app", "cpu-us", "gpu-us", "speedup", "paper"});

  {
    simt::CpuTimer cpu;
    apps::sssp_serial(cs, 0, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_sssp(dev, cs, 0, LoopTemplate::kBaseline);
    const double gpu = capture(session.report(), rows[0], "SSSP", "citeseer",
                               scale, cpu.us());
    bench::table_row({"SSSP", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "8.2x"});
  }
  {
    simt::CpuTimer cpu;
    apps::BcOptions opt;
    opt.num_sources = sources;
    apps::bc_serial(wv, opt, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_bc(dev, wv, LoopTemplate::kBaseline, {}, opt);
    const double gpu = capture(session.report(), rows[1], "BC", "wikivote",
                               1.0, cpu.us());
    bench::table_row({"BC", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "2.5x"});
  }
  {
    simt::CpuTimer cpu;
    apps::pagerank_serial(cs, {}, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_pagerank(dev, cs, LoopTemplate::kBaseline);
    const double gpu = capture(session.report(), rows[2], "PageRank",
                               "citeseer", scale, cpu.us());
    bench::table_row({"PageRank", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "15.8x"});
  }
  {
    const auto mat = matrix::CsrMatrix::from_graph(cs);
    const auto x = matrix::make_dense_vector(mat.cols, 7);
    simt::CpuTimer cpu;
    matrix::spmv_serial(mat, x, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
    const double gpu = capture(session.report(), rows[3], "SpMV", "citeseer",
                               scale, cpu.us());
    bench::table_row({"SpMV", bench::fmt(cpu.us(), 0), bench::fmt(gpu, 0),
                      bench::fmt(cpu.us() / gpu) + "x", "2.4x"});
  }
  {
    const graph::Csr rnd = graph::generate_uniform_random(
        static_cast<std::uint32_t>(50000 * scale * 2.5), 0, 256, 20150707);
    simt::CpuTimer cpu;
    apps::bfs_serial_recursive(rnd, 0, &cpu);
    simt::Device dev;
    simt::Session session = dev.session();
    apps::bfs_flat_gpu(dev, rnd, 0);
    const double gpu = capture(session.report(), rows[4], "BFS-flat",
                               "uniform-random", scale, cpu.us());
    bench::table_row({"BFS(flat)", bench::fmt(cpu.us(), 0),
                      bench::fmt(gpu, 0), bench::fmt(cpu.us() / gpu) + "x",
                      "11-14x"});
  }

  // All serial references are done; heap allocation is harmless from here.
  for (const AppRow& r : rows) {
    bench::Measurement m;
    m.tmpl = r.app;
    m.dataset = r.dataset;
    m.scale = r.app_scale;
    m.cycles = r.cycles;
    m.warp_efficiency = r.warp_efficiency;
    m.host_launches = r.host_launches;
    m.device_launches = r.device_launches;
    m.robustness = r.robustness;
    // Cross-model ratio built on wall-clock CPU time: volatile by nature.
    m.volatile_extra["cpu_speedup"] = r.cpu_us / r.total_us;
    out.measurements.push_back(std::move(m));
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01", "--sources=4"};

const bench::Registration reg{{
    .name = "baseline_speedups",
    .figure = "§III.B text",
    .description = "thread-mapped GPU baselines vs serial CPU references",
    .usage = "baseline_speedups [--scale=0.1] [--sources=32] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("baseline_speedups")
