// Figure 6: BC / PageRank / SpMV speedup of the load-balancing templates over
// the thread-mapped baseline for a sweep of lbTHRES values. BC runs on the
// Wiki-Vote-like graph, PageRank and SpMV on the CiteSeer-like network.
// Expected shapes: speedups fall as lbTHRES grows; dual-queue is competitive
// only on the small BC dataset (queue-build overhead hurts on large inputs);
// dbuf-shared trails dbuf-global at small lbTHRES and catches up at >= 128.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "src/apps/bc.h"
#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopParams;
using nested::LoopTemplate;

namespace {

void sweep(const char* title,
           const std::function<double(LoopTemplate, const LoopParams&)>& run) {
  std::printf("\n-- %s --\n", title);
  LoopParams base;
  const double base_us = run(LoopTemplate::kBaseline, base);
  std::printf("baseline: %.0f us (model time)\n", base_us);
  bench::table_header({"lbTHRES", "dual-queue", "dbuf-shared", "dbuf-global",
                       "dpar-opt"});
  for (const int lb : {32, 64, 128, 256, 512, 1024}) {
    std::vector<std::string> row{std::to_string(lb)};
    for (const LoopTemplate t :
         {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
          LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
      LoopParams p;
      p.lb_threshold = lb;
      row.push_back(bench::fmt(base_us / run(t, p)) + "x");
    }
    bench::table_row(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv,
                         "fig6_bc_pagerank_spmv [--scale=0.1] [--sources=32]");
  const double scale = args.get_double("scale", 0.1);
  const auto sources = static_cast<std::uint32_t>(args.get_int("sources", 32));

  bench::banner(
      "Figure 6 - BC (Wiki-Vote-like) / PageRank / SpMV (CiteSeer-like scale " +
          bench::fmt(scale) + "): speedup of LB templates vs lbTHRES",
      "speedup decreases with lbTHRES; dual-queue best only on BC (small "
      "dataset); dpar-naive omitted as in the paper (far slower)");

  const graph::Csr wv = bench::wikivote(1.0);
  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(cs);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  sweep("BC (wiki-vote-like)", [&](LoopTemplate t, const LoopParams& p) {
    simt::Device dev;
    simt::Session session = dev.session();
    apps::BcOptions opt;
    opt.num_sources = sources;
    apps::run_bc(dev, wv, t, p, opt);
    return session.report().total_us;
  });

  sweep("PageRank (citeseer-like)", [&](LoopTemplate t, const LoopParams& p) {
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_pagerank(dev, cs, t, p);
    return session.report().total_us;
  });

  sweep("SpMV (citeseer-like)", [&](LoopTemplate t, const LoopParams& p) {
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_spmv(dev, mat, x, t, p);
    return session.report().total_us;
  });
  return 0;
}
