// Figure 6: BC / PageRank / SpMV speedup of the load-balancing templates over
// the thread-mapped baseline for a sweep of lbTHRES values. BC runs on the
// Wiki-Vote-like graph, PageRank and SpMV on the CiteSeer-like network.
// Expected shapes: speedups fall as lbTHRES grows; dual-queue is competitive
// only on the small BC dataset (queue-build overhead hurts on large inputs);
// dbuf-shared trails dbuf-global at small lbTHRES and catches up at >= 128.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "src/apps/bc.h"
#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopParams;
using nested::LoopTemplate;

namespace {

void sweep(
    const char* title, const char* app, const char* dataset, double scale,
    bench::SuiteResult& out,
    const std::function<simt::RunReport(LoopTemplate, const LoopParams&)>&
        run) {
  std::printf("\n-- %s --\n", title);
  // Registry-derived column order: the load-balancing family minus
  // dpar-naive (omitted as in the paper), then the consolidation family.
  std::vector<LoopTemplate> templates;
  for (const nested::LoopTemplateDesc& d : nested::loop_templates()) {
    if (d.tmpl == LoopTemplate::kDparNaive) continue;
    if (d.family == nested::TemplateFamily::kLoadBalancing ||
        d.family == nested::TemplateFamily::kConsolidation) {
      templates.push_back(d.tmpl);
    }
  }
  LoopParams base;
  const double base_us = run(LoopTemplate::kBaseline, base).total_us;
  std::printf("baseline: %.0f us (model time)\n", base_us);
  std::vector<std::string> header{"lbTHRES"};
  for (const LoopTemplate t : templates) {
    header.push_back(std::string(nested::name(t)));
  }
  bench::table_header(header);
  for (const int lb : {32, 64, 128, 256, 512, 1024}) {
    std::vector<std::string> row{std::to_string(lb)};
    for (const LoopTemplate t : templates) {
      LoopParams p;
      p.lb_threshold = lb;
      const simt::RunReport rep = run(t, p);
      row.push_back(bench::fmt(base_us / rep.total_us) + "x");
      bench::Measurement m = bench::Measurement::from_report(rep);
      // The app coordinate lives in the template axis of the suite's JSON
      // ("bc/dual-queue"), keeping (template, dataset, params) a unique key.
      m.tmpl = std::string(app) + "/" + std::string(nested::name(t));
      m.dataset = dataset;
      m.scale = scale;
      m.params["lb_threshold"] = lb;
      m.extra["speedup"] = base_us / rep.total_us;
      out.measurements.push_back(std::move(m));
    }
    bench::table_row(row);
  }
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);
  const auto sources = static_cast<std::uint32_t>(args.get_int("sources", 32));

  bench::banner(
      "Figure 6 - BC (Wiki-Vote-like) / PageRank / SpMV (CiteSeer-like scale " +
          bench::fmt(scale) + "): speedup of LB templates vs lbTHRES",
      "speedup decreases with lbTHRES; dual-queue best only on BC (small "
      "dataset); dpar-naive omitted as in the paper (far slower)");

  const graph::Csr wv = bench::wikivote(1.0);
  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(cs);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  sweep("BC (wiki-vote-like)", "bc", "wikivote", 1.0, out,
        [&](LoopTemplate t, const LoopParams& p) {
          simt::Device dev;
          simt::Session session = dev.session();
          apps::BcOptions opt;
          opt.num_sources = sources;
          apps::run_bc(dev, wv, t, p, opt);
          return session.report();
        });

  sweep("PageRank (citeseer-like)", "pagerank", "citeseer", scale, out,
        [&](LoopTemplate t, const LoopParams& p) {
          simt::Device dev;
          simt::Session session = dev.session();
          apps::run_pagerank(dev, cs, t, p);
          return session.report();
        });

  sweep("SpMV (citeseer-like)", "spmv", "citeseer", scale, out,
        [&](LoopTemplate t, const LoopParams& p) {
          simt::Device dev;
          simt::Session session = dev.session();
          apps::run_spmv(dev, mat, x, t, p);
          return session.report();
        });
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01", "--sources=4"};

const bench::Registration reg{{
    .name = "fig6_bc_pagerank_spmv",
    .figure = "Figure 6",
    .description = "BC/PageRank/SpMV template speedups vs lbTHRES",
    .usage = "fig6_bc_pagerank_spmv [--scale=0.1] [--sources=32] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig6_bc_pagerank_spmv")
