// Table II: warp execution efficiency of the dbuf-shared template as a
// function of lbTHRES, for SSSP / BC / PageRank / SpMV, against the
// thread-mapped baseline. Lower lbTHRES => more block-mapped load balancing
// => higher warp efficiency, always above baseline.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "src/apps/bc.h"
#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopParams;
using nested::LoopTemplate;

namespace {

struct PaperRow {
  const char* app;
  double lb32, lb64, lb256, lb1024, baseline;
};
constexpr PaperRow kPaper[] = {
    {"SSSP", .756, .719, .453, .372, .356},
    {"BC", .758, .567, .171, .108, .103},
    {"PageRank", .915, .870, .634, .509, .508},
    {"SpMV", .944, .823, .715, .515, .510},
};

double warp_eff(simt::Session& session, const char* exclude_prefix) {
  simt::Metrics m;
  for (const auto& kr : session.report().per_kernel) {
    if (kr.name.rfind(exclude_prefix, 0) != 0) m += kr.metrics;
  }
  return m.warp_execution_efficiency();
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);
  const auto sources = static_cast<std::uint32_t>(args.get_int("sources", 32));

  bench::banner(
      "Table II - warp execution efficiency of dbuf-shared vs lbTHRES "
      "(CiteSeer-like scale " + bench::fmt(scale) + " for SSSP/PageRank/SpMV, "
      "Wiki-Vote-like for BC)",
      "efficiency falls monotonically as lbTHRES grows and always exceeds "
      "the thread-mapped baseline");

  const graph::Csr cs = bench::citeseer(scale, /*weighted=*/true);
  const graph::Csr wv = bench::wikivote(1.0);
  const auto mat = matrix::CsrMatrix::from_graph(cs);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  // app -> (template, lbTHRES) -> warp efficiency of its nested-loop kernels.
  const auto measure = [&](int app, LoopTemplate t,
                           int lb) -> double {
    simt::Device dev;
    simt::Session session = dev.session();
    LoopParams p;
    p.lb_threshold = lb;
    double eff = 0.0;
    const char* dataset = "citeseer";
    switch (app) {
      case 0:
        apps::run_sssp(dev, cs, 0, t, p);
        eff = warp_eff(session, "sssp/update");
        break;
      case 1: {
        apps::BcOptions opt;
        opt.num_sources = sources;
        apps::run_bc(dev, wv, t, p, opt);
        eff = warp_eff(session, "bc/accumulate");
        dataset = "wikivote";
        break;
      }
      case 2:
        apps::run_pagerank(dev, cs, t, p);
        eff = warp_eff(session, "\xff");
        break;
      default:
        apps::run_spmv(dev, mat, x, t, p);
        eff = warp_eff(session, "\xff");
        break;
    }
    bench::Measurement m = bench::Measurement::from_report(session.report());
    m.tmpl = std::string(kPaper[app].app) + "/" + std::string(nested::name(t));
    m.dataset = dataset;
    m.scale = app == 1 ? 1.0 : scale;
    m.params["lb_threshold"] = lb;
    m.warp_efficiency = eff;  // the profiled (filtered) headline number
    out.measurements.push_back(std::move(m));
    return eff;
  };

  bench::table_header({"app", "lb=32", "lb=64", "lb=256", "lb=1024",
                       "baseline"});
  for (int app = 0; app < 4; ++app) {
    std::vector<std::string> row{kPaper[app].app};
    for (const int lb : {32, 64, 256, 1024}) {
      row.push_back(bench::fmt_pct(measure(app, LoopTemplate::kDbufShared, lb)));
    }
    row.push_back(bench::fmt_pct(measure(app, LoopTemplate::kBaseline, 32)));
    bench::table_row(row);
    bench::table_row({"  (paper)", bench::fmt_pct(kPaper[app].lb32),
                      bench::fmt_pct(kPaper[app].lb64),
                      bench::fmt_pct(kPaper[app].lb256),
                      bench::fmt_pct(kPaper[app].lb1024),
                      bench::fmt_pct(kPaper[app].baseline)});
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01", "--sources=4"};

const bench::Registration reg{{
    .name = "table2_warp_efficiency",
    .figure = "Table II",
    .description = "dbuf-shared warp efficiency vs lbTHRES across four apps",
    .usage = "table2_warp_efficiency [--scale=0.1] [--sources=32] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("table2_warp_efficiency")
