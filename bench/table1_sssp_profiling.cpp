// Table I: profiling data collected on SSSP at lbTHRES=32 — warp execution
// efficiency, global load efficiency, global store efficiency per template.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/sssp.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

// The paper's Table I values, for side-by-side comparison.
struct PaperRow {
  const char* name;
  double warp, gld, gst;
};
constexpr PaperRow kPaper[] = {
    {"baseline", .356, .158, .032},   {"dual-queue", .749, .791, .048},
    {"dbuf-shared", .757, .943, .504}, {"dbuf-global", .723, .891, .085},
    {"dpar-naive", .253, .455, .163},  {"dpar-opt", .702, .632, .109},
};

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);

  bench::banner(
      "Table I - SSSP profiling at lbTHRES=32 (CiteSeer-like, scale " +
          bench::fmt(scale) + ")",
      "all LB templates raise warp & memory efficiency over baseline; "
      "dpar-naive lowers warp efficiency; dbuf-shared has the best gld/gst");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);

  const LoopTemplate templates[] = {
      LoopTemplate::kBaseline,   LoopTemplate::kDualQueue,
      LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
      LoopTemplate::kDparNaive,  LoopTemplate::kDparOpt};

  bench::table_header({"template", "warp-eff", "gld-eff", "gst-eff",
                       "paper-warp", "paper-gld", "paper-gst"});
  for (std::size_t i = 0; i < std::size(templates); ++i) {
    simt::Device dev;
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    apps::run_sssp(dev, g, 0, templates[i], p);
    // Profile the relaxation kernels only (as nvprof would be pointed at
    // them); the update kernel is shared by all templates.
    const simt::RunReport rep = session.report();
    simt::Metrics m;
    for (const auto& kr : rep.per_kernel) {
      if (kr.name.rfind("sssp/update", 0) != 0) m += kr.metrics;
    }
    bench::table_row({std::string(nested::name(templates[i])),
                      bench::fmt_pct(m.warp_execution_efficiency()),
                      bench::fmt_pct(m.gld_efficiency()),
                      bench::fmt_pct(m.gst_efficiency()),
                      bench::fmt_pct(kPaper[i].warp),
                      bench::fmt_pct(kPaper[i].gld),
                      bench::fmt_pct(kPaper[i].gst)});
    bench::Measurement rec = bench::Measurement::from_report(rep);
    rec.tmpl = std::string(nested::name(templates[i]));
    rec.dataset = "citeseer";
    rec.scale = scale;
    rec.params["lb_threshold"] = 32;
    // The profiled (relaxation-only) efficiency is the table's headline
    // number; store it as the typed metric so regressions gate on it.
    rec.warp_efficiency = m.warp_execution_efficiency();
    rec.extra["gld_efficiency"] = m.gld_efficiency();
    rec.extra["gst_efficiency"] = m.gst_efficiency();
    out.measurements.push_back(std::move(rec));
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01"};

const bench::Registration reg{{
    .name = "table1_sssp_profiling",
    .figure = "Table I",
    .description = "SSSP warp/gld/gst efficiency per template at lbTHRES=32",
    .usage = "table1_sssp_profiling [--scale=0.1] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("table1_sssp_profiling")
