// Figure 8: Tree Heights — the same sweeps and profiling columns as
// Figure 7, for the max-reduction traversal (see tree_sweep.h).
#include "tree_sweep.h"

namespace {

int run(const nestpar::bench::Args& args, nestpar::bench::SuiteResult& out) {
  return nestpar::bench::tree_figure_run(
      args, out, nestpar::rec::TreeAlgo::kHeights, "Figure 8");
}

constexpr const char* kSmokeFlags[] = {"--depth=2", "--max-outdegree=16"};

const nestpar::bench::Registration reg{{
    .name = "fig8_tree_heights",
    .figure = "Figure 8",
    .description = "tree heights: flat/rec-naive/rec-hier vs serial CPU",
    .usage = "fig8_tree_heights [--depth=3] [--max-outdegree=128] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig8_tree_heights")
