// Figure 8: Tree Heights — the same sweeps and profiling columns as
// Figure 7, for the max-reduction traversal (see tree_sweep.h).
#include "tree_sweep.h"

int main(int argc, char** argv) {
  return nestpar::bench::tree_figure_main(
      argc, argv, nestpar::rec::TreeAlgo::kHeights, "Figure 8",
      "fig8_tree_heights [--depth=3] [--max-outdegree=128]");
}
