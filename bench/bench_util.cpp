#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/graph/generators.h"
#include "src/simt/log.h"

namespace nestpar::bench {

namespace slog = simt::log;

Args::Args(int argc, char** argv, std::string_view usage) {
  std::vector<std::string> flags;
  flags.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) flags.emplace_back(argv[i]);
  parse(flags, usage);
}

Args::Args(const std::vector<std::string>& flags, std::string_view usage) {
  parse(flags, usage);
}

void Args::parse(const std::vector<std::string>& flags,
                 std::string_view usage) {
  const int usage_len = static_cast<int>(usage.size());
  for (const std::string& arg : flags) {
    if (arg == "--help" || arg == "-h") {
      std::printf("%.*s\n", usage_len, usage.data());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      slog::error("unknown argument '%s'\n%.*s\n", arg.c_str(), usage_len,
                  usage.data());
      std::exit(2);
    }
    const auto eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const std::string value =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
    if (values_.count(key)) {
      slog::warn("warning: flag '--%s' given twice; using '%s'\n", key.c_str(),
                 value.c_str());
    }
    values_[key] = value;
  }
  if (usage.empty()) return;
  for (const auto& [k, v] : values_) {
    if (usage.find("--" + k) == std::string_view::npos) {
      slog::error("unknown flag '--%s'\n%.*s\n", k.c_str(), usage_len,
                  usage.data());
      std::exit(2);
    }
  }
}

double Args::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stod(it->second);
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stoll(it->second);
}

std::string Args::get_string(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Args::get_flag(const std::string& name) const {
  return values_.count(name) > 0;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(const SuiteSpec& spec) {
  if (count_ >= kCapacity) {
    slog::error("suite registry full (capacity %zu)\n", kCapacity);
    std::exit(2);
  }
  std::size_t pos = count_;
  while (pos > 0 && spec.name < suites_[pos - 1].name) {
    suites_[pos] = suites_[pos - 1];
    --pos;
  }
  suites_[pos] = spec;
  ++count_;
}

const SuiteSpec* Registry::find(std::string_view name) const {
  for (const SuiteSpec& s : suites()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Registration::Registration(const SuiteSpec& spec) {
  Registry::instance().add(spec);
}

int standalone_main(std::string_view suite, int argc, char** argv) {
  const SuiteSpec* spec = Registry::instance().find(suite);
  if (spec == nullptr) {
    slog::error("suite '%.*s' is not registered\n",
                static_cast<int>(suite.size()), suite.data());
    return 2;
  }
  // `--smoke` expands to the suite's registered smoke flags (as in the
  // combined driver), so CI can run a standalone binary on its fast
  // configuration without repeating the flag values. Explicit flags given
  // alongside it are parsed after the smoke set and therefore win.
  std::vector<std::string> flags;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      flags.emplace_back(argv[i]);
    }
  }
  if (smoke) {
    flags.insert(flags.begin(), spec->smoke_flags.begin(),
                 spec->smoke_flags.end());
  }
  const Args args(flags, spec->usage);
  SuiteResult result;
  const int rc = spec->run(args, result);
  // Identity strings are filled in only after the run: the serial-CPU cache
  // model is heap-layout-sensitive, and the runs must see the same heap the
  // pre-registry binaries did.
  result.suite = spec->name;
  result.figure = spec->figure;
  const std::string out = args.get_string("out", "");
  if (rc == 0 && !out.empty()) {
    try {
      write_result_file(result, out);
      if (!result.serve.empty()) write_serve_file(result, out);
    } catch (const std::runtime_error& e) {
      slog::error("error: %s\n", e.what());
      return 2;
    }
  }
  return rc;
}

void banner(const std::string& title, const std::string& paper_expectation) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_expectation.c_str());
  std::printf("==================================================================\n");
}

namespace {
void print_cells(const std::vector<std::string>& cells) {
  for (const auto& c : cells) {
    std::printf("%-14s", c.c_str());
  }
  std::printf("\n");
}
}  // namespace

void table_header(const std::vector<std::string>& columns) {
  print_cells(columns);
  std::string rule(columns.size() * 14, '-');
  std::printf("%s\n", rule.c_str());
}

void table_row(const std::vector<std::string>& cells) { print_cells(cells); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

std::string robustness_note(const simt::RunReport& rep) {
  const simt::RobustnessCounters& rb = rep.robustness;
  if (!rb.any_fault()) return "";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                " [refused=%llu retried=%llu degraded=%llu]",
                static_cast<unsigned long long>(rb.refused_total()),
                static_cast<unsigned long long>(rb.retries),
                static_cast<unsigned long long>(rb.degraded));
  return buf;
}

std::uint32_t first_active_source(const graph::Csr& g) {
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) return v;
  }
  return 0;
}

graph::Csr citeseer(double scale, bool weighted) {
  return graph::generate_citeseer_like(scale, /*seed=*/20150707, weighted);
}

graph::Csr wikivote(double scale) {
  return graph::generate_wikivote_like(scale, /*seed=*/20150707);
}

}  // namespace nestpar::bench
