#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/graph/generators.h"

namespace nestpar::bench {

Args::Args(int argc, char** argv, const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", usage.c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument '%s'\n%s\n", arg.c_str(),
                   usage.c_str());
      std::exit(2);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "1";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  if (usage.empty()) return;
  for (const auto& [k, v] : values_) {
    if (usage.find("--" + k) == std::string::npos) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s\n", k.c_str(),
                   usage.c_str());
      std::exit(2);
    }
  }
}

double Args::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stod(it->second);
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::stoll(it->second);
}

bool Args::get_flag(const std::string& name) const {
  return values_.count(name) > 0;
}

void banner(const std::string& title, const std::string& paper_expectation) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_expectation.c_str());
  std::printf("==================================================================\n");
}

namespace {
void print_cells(const std::vector<std::string>& cells) {
  for (const auto& c : cells) {
    std::printf("%-14s", c.c_str());
  }
  std::printf("\n");
}
}  // namespace

void table_header(const std::vector<std::string>& columns) {
  print_cells(columns);
  std::string rule(columns.size() * 14, '-');
  std::printf("%s\n", rule.c_str());
}

void table_row(const std::vector<std::string>& cells) { print_cells(cells); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

std::string robustness_note(const simt::RunReport& rep) {
  const simt::RobustnessCounters& rb = rep.robustness;
  if (!rb.any_fault()) return "";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                " [refused=%llu retried=%llu degraded=%llu]",
                static_cast<unsigned long long>(rb.refused_total()),
                static_cast<unsigned long long>(rb.retries),
                static_cast<unsigned long long>(rb.degraded));
  return buf;
}

std::uint32_t first_active_source(const graph::Csr& g) {
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) return v;
  }
  return 0;
}

graph::Csr citeseer(double scale, bool weighted) {
  return graph::generate_citeseer_like(scale, /*seed=*/20150707, weighted);
}

graph::Csr wikivote(double scale) {
  return graph::generate_wikivote_like(scale, /*seed=*/20150707);
}

}  // namespace nestpar::bench
