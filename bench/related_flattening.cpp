// Related-work comparison (paper §IV): the flattening transformation
// (Blelloch/NESL [25-27]) vs the paper's load-balancing templates. The paper
// argues flattening "can be used to deploy recursive applications on GPUs
// without support for nested kernel invocations" — this bench quantifies the
// trade on the irregular nested loops: flattening gets near-perfect warp
// efficiency but pays scan passes and per-edge segment searches.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/spmv.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/flatten.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);

  bench::banner(
      "Related work - flattening [25-27] and virtual warp-centric mapping "
      "[20] vs the paper's templates (SpMV, CiteSeer-like scale " +
          bench::fmt(scale) + ")",
      "flattening achieves the highest warp efficiency without dynamic "
      "parallelism, at the cost of scan + segment-search overhead; the "
      "templates reach similar speedups with far less restructuring");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  simt::Device dev;
  double base_us = 0.0;
  {
    simt::Session session = dev.session();
    apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
    base_us = session.report().total_us;
  }

  bench::table_header({"variant", "speedup", "warp-eff", "kernels"});
  const auto report_row = [&](const std::string& name,
                              const simt::RunReport& rep) {
    bench::table_row({name, bench::fmt(base_us / rep.total_us) + "x",
                      bench::fmt_pct(
                          rep.aggregate.warp_execution_efficiency()),
                      std::to_string(rep.grids)});
    bench::Measurement m = bench::Measurement::from_report(rep);
    m.tmpl = name;
    m.dataset = "citeseer";
    m.scale = scale;
    m.extra["speedup"] = base_us / rep.total_us;
    m.extra["kernels"] = static_cast<double>(rep.grids);
    out.measurements.push_back(std::move(m));
  };

  report_row("baseline", [&] {
    simt::Session session = dev.session();
    apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
    return session.report();
  }());
  for (const LoopTemplate t :
       {LoopTemplate::kWarpMapped, LoopTemplate::kDualQueue,
        LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
        LoopTemplate::kDparOpt}) {
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    apps::run_spmv(dev, mat, x, t, p);
    report_row(std::string(nested::name(t)), session.report());
  }
  {
    simt::Session session = dev.session();
    std::vector<float> y(mat.rows, 0.0f);
    apps::SpmvWorkload w(mat, x.data(), y.data());
    nested::run_flattened(dev, w);
    report_row("flattened", session.report());
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01"};

const bench::Registration reg{{
    .name = "related_flattening",
    .figure = "§IV related work",
    .description = "flattening vs the paper's templates on SpMV",
    .usage = "related_flattening [--scale=0.1] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("related_flattening")
