#include "results.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bench/json.h"
#include "src/simt/device.h"

namespace nestpar::bench {

Measurement Measurement::from_report(const simt::RunReport& rep) {
  Measurement m;
  m.cycles = rep.total_cycles;
  m.warp_efficiency = rep.aggregate.warp_execution_efficiency();
  m.host_launches = rep.aggregate.host_launches;
  m.device_launches = rep.aggregate.device_launches;
  m.robustness = rep.robustness;
  return m;
}

std::string Measurement::key() const {
  std::string k = tmpl + "|" + dataset + "|" + json_num(scale) + "|";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) k += ',';
    first = false;
    k += name + "=" + json_num(value);
  }
  return k;
}

bool Measurement::is_wall_derived(const std::string& metric) {
  return metric.find("wall") != std::string::npos ||
         metric.find("cpu_") != std::string::npos ||
         metric.ends_with("_per_sec");
}

std::string to_json(const SuiteResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(kResultSchemaVersion) +
         ",\n";
  out += "  \"generator\": \"nestpar_bench\",\n";
  out += "  \"suite\": " + json_str(result.suite) + ",\n";
  out += "  \"figure\": " + json_str(result.figure) + ",\n";
  out += "  \"measurements\": [";
  for (std::size_t i = 0; i < result.measurements.size(); ++i) {
    const Measurement& m = result.measurements[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    out += "\"template\": " + json_str(m.tmpl) + ", ";
    out += "\"dataset\": " + json_str(m.dataset) + ", ";
    out += "\"scale\": " + json_num(m.scale) + ",\n     ";
    out += "\"params\": ";
    append_num_map(out, m.params);
    out += ",\n     ";
    out += "\"cycles\": " + json_num(m.cycles) + ", ";
    out += "\"warp_efficiency\": " + json_num(m.warp_efficiency) + ", ";
    out += "\"host_launches\": " + json_num(m.host_launches) + ", ";
    out += "\"device_launches\": " + json_num(m.device_launches) + ",\n     ";
    out += "\"robustness\": " + m.robustness.to_json() + ",\n     ";
    // Route wall-clock-derived names out of `extra` even when a suite put
    // them there: a checked-in baseline must never become byte-unstable on
    // host timing, and the route has to be structural (by key name, at the
    // serializer) rather than a per-suite convention.
    bool misplaced = false;
    for (const auto& [name, value] : m.extra) {
      (void)value;
      if (Measurement::is_wall_derived(name)) {
        misplaced = true;
        break;
      }
    }
    const std::map<std::string, double>* extra = &m.extra;
    const std::map<std::string, double>* vol = &m.volatile_extra;
    std::map<std::string, double> extra_fixed;
    std::map<std::string, double> vol_fixed;
    if (misplaced) {
      vol_fixed = m.volatile_extra;
      for (const auto& [name, value] : m.extra) {
        if (Measurement::is_wall_derived(name)) {
          vol_fixed.emplace(name, value);  // an explicit volatile copy wins
        } else {
          extra_fixed.emplace(name, value);
        }
      }
      extra = &extra_fixed;
      vol = &vol_fixed;
    }
    out += "\"extra\": ";
    append_num_map(out, *extra);
    // Volatile (wall-clock-derived) metrics live under their own key, and
    // only when present, so deterministic records keep their exact v1 bytes
    // and byte-stability tooling can drop the section structurally.
    if (!vol->empty()) {
      out += ",\n     \"extra_volatile\": ";
      append_num_map(out, *vol);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

SuiteResult parse_result_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) {
    throw std::runtime_error("result JSON root is not an object");
  }
  const JsonObject& root = doc.object();
  const int version = static_cast<int>(require_num(root, "schema_version"));
  if (version != kResultSchemaVersion) {
    throw std::runtime_error(
        "result JSON schema_version " + std::to_string(version) +
        " does not match supported version " +
        std::to_string(kResultSchemaVersion) +
        " (regenerate the file with this build's nestpar_bench)");
  }
  SuiteResult result;
  result.suite = require_str(root, "suite");
  result.figure = require_str(root, "figure");
  const JsonValue& arr = require(root, "measurements");
  if (!arr.is_array()) {
    throw std::runtime_error("result JSON 'measurements' is not an array");
  }
  for (const JsonValue& item : arr.array()) {
    if (!item.is_object()) {
      throw std::runtime_error("result JSON measurement is not an object");
    }
    const JsonObject& rec = item.object();
    Measurement m;
    m.tmpl = require_str(rec, "template");
    m.dataset = require_str(rec, "dataset");
    m.scale = require_num(rec, "scale");
    m.params = num_map(rec, "params");
    m.cycles = require_num(rec, "cycles");
    m.warp_efficiency = require_num(rec, "warp_efficiency");
    m.host_launches =
        static_cast<std::uint64_t>(require_num(rec, "host_launches"));
    m.device_launches =
        static_cast<std::uint64_t>(require_num(rec, "device_launches"));
    const auto rb = num_map(rec, "robustness");
    m.robustness.launches_attempted = opt_u64(rb, "launches_attempted");
    m.robustness.refused_pool = opt_u64(rb, "refused_pool");
    m.robustness.refused_depth = opt_u64(rb, "refused_depth");
    m.robustness.refused_heap = opt_u64(rb, "refused_heap");
    m.robustness.faults_injected = opt_u64(rb, "faults_injected");
    m.robustness.retries = opt_u64(rb, "retries");
    m.robustness.degraded = opt_u64(rb, "degraded");
    m.extra = num_map(rec, "extra");
    m.volatile_extra = num_map(rec, "extra_volatile");
    result.measurements.push_back(std::move(m));
  }
  return result;
}

std::string write_result_file(const SuiteResult& result,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create result directory '" + dir +
                             "': " + ec.message());
  }
  const std::string path = dir + "/BENCH_" + result.suite + ".json";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f << to_json(result);
  if (!f) throw std::runtime_error("write to '" + path + "' failed");
  return path;
}

SuiteResult load_result_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open result file '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_result_json(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

// ---------------------------------------------------------------------------
// SERVE_<suite>.json: serving-scenario outcome records.

std::string ServeRecord::key() const {
  std::string k = scenario + "|";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) k += ',';
    first = false;
    k += name + "=" + json_num(value);
  }
  return k;
}

namespace {

/// Serve records are pure virtual-time artifacts; a wall-derived key is a
/// producer bug, rejected at serialization so it can never reach a baseline.
void reject_wall_derived(const ServeRecord& r,
                         const std::map<std::string, double>& m,
                         const char* section) {
  for (const auto& [name, value] : m) {
    (void)value;
    if (Measurement::is_wall_derived(name)) {
      throw std::invalid_argument(
          "serve record '" + r.scenario + "': wall-derived metric '" + name +
          "' in " + section +
          " must be tagged volatile (put it in volatile_extra)");
    }
  }
}

}  // namespace

std::string to_serve_json(const SuiteResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(kServeSchemaVersion) +
         ",\n";
  out += "  \"generator\": \"nestpar_bench\",\n";
  out += "  \"kind\": \"serve\",\n";
  out += "  \"suite\": " + json_str(result.suite) + ",\n";
  out += "  \"figure\": " + json_str(result.figure) + ",\n";
  out += "  \"records\": [";
  for (std::size_t i = 0; i < result.serve.size(); ++i) {
    const ServeRecord& r = result.serve[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"scenario\": " + json_str(r.scenario) + ",\n     ";
    out += "\"params\": ";
    append_num_map(out, r.params);
    out += ",\n     ";
    out += "\"submitted\": " + json_num(r.submitted) + ", ";
    out += "\"ok\": " + json_num(r.ok) + ", ";
    out += "\"expired\": " + json_num(r.expired) + ", ";
    out += "\"shed\": " + json_num(r.shed) + ", ";
    out += "\"wrong\": " + json_num(r.wrong) + ",\n     ";
    out += "\"attempts\": " + json_num(r.attempts) + ", ";
    out += "\"retries\": " + json_num(r.retries) + ", ";
    out += "\"hedges\": " + json_num(r.hedges) + ", ";
    out += "\"batches\": " + json_num(r.batches) + ", ";
    out += "\"probes\": " + json_num(r.probes) + ",\n     ";
    out += "\"breaker_trips\": " + json_num(r.breaker_trips) + ", ";
    out += "\"faults_injected\": " + json_num(r.faults_injected) + ", ";
    out += "\"degraded\": " + json_num(r.degraded) + ",\n     ";
    out += "\"makespan_us\": " + json_num(r.makespan_us) + ", ";
    out += "\"qps_ok\": " + json_num(r.qps_ok) + ",\n     ";
    out += "\"p50_us\": " + json_num(r.p50_us) + ", ";
    out += "\"p95_us\": " + json_num(r.p95_us) + ", ";
    out += "\"p99_us\": " + json_num(r.p99_us) + ", ";
    out += "\"mean_us\": " + json_num(r.mean_us) + ", ";
    out += "\"max_us\": " + json_num(r.max_us) + ",\n     ";
    // Schema v2: tail-latency attribution — where the p99 went.
    out += "\"p99_split\": {\"queue\": " + json_num(r.p99_queue_us) +
           ", \"batch\": " + json_num(r.p99_batch_us) +
           ", \"exec\": " + json_num(r.p99_exec_us) +
           ", \"retry\": " + json_num(r.p99_retry_us) + "}";
    // Schema v3: device-cost attribution. Gated on the run having attributed
    // anything, so producers without attribution emit v2-shaped records.
    if (r.launches_total != 0 || r.device_cycles_total != 0.0 ||
        r.fault_device_cycles_total != 0.0) {
      out += ",\n     \"device_cycles_total\": " +
             json_num(r.device_cycles_total) +
             ", \"fault_device_cycles_total\": " +
             json_num(r.fault_device_cycles_total) +
             ", \"launches_total\": " + json_num(r.launches_total);
    }
    if (!r.tenants.empty()) {
      out += ",\n     \"tenants\": [";
      for (std::size_t ti = 0; ti < r.tenants.size(); ++ti) {
        const ServeTenant& t = r.tenants[ti];
        out += ti == 0 ? "\n" : ",\n";
        out += "      {\"tenant\": " +
               json_num(static_cast<std::uint64_t>(t.tenant)) +
               ", \"requests\": " + json_num(t.requests) +
               ", \"ok\": " + json_num(t.ok) +
               ", \"launches\": " + json_num(t.launches) +
               ", \"retries\": " + json_num(t.retries) +
               ", \"device_cycles\": " + json_num(t.device_cycles) +
               ", \"fault_device_cycles\": " +
               json_num(t.fault_device_cycles) + "}";
      }
      out += "\n     ]";
    }
    reject_wall_derived(r, r.params, "params");
    reject_wall_derived(r, r.extra, "extra");
    if (!r.extra.empty()) {
      out += ",\n     \"extra\": ";
      append_num_map(out, r.extra);
    }
    if (!r.volatile_extra.empty()) {
      out += ",\n     \"extra_volatile\": ";
      append_num_map(out, r.volatile_extra);
    }
    if (!r.telemetry.empty()) {
      out += ",\n     \"telemetry\": [";
      for (std::size_t si = 0; si < r.telemetry.size(); ++si) {
        const ServeSeries& s = r.telemetry[si];
        out += si == 0 ? "\n" : ",\n";
        out += "      {\"name\": " + json_str(s.name) +
               ", \"unit\": " + json_str(s.unit) + ", \"points\": [";
        for (std::size_t pi = 0; pi < s.points.size(); ++pi) {
          if (pi != 0) out += ", ";
          out += "[" + json_num(s.points[pi].first) + ", " +
                 json_num(s.points[pi].second) + "]";
        }
        out += "]}";
      }
      out += "\n     ]";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

SuiteResult parse_serve_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) {
    throw std::runtime_error("serve JSON root is not an object");
  }
  const JsonObject& root = doc.object();
  const int version = static_cast<int>(require_num(root, "schema_version"));
  if (version < kMinServeSchemaVersion || version > kServeSchemaVersion) {
    throw std::runtime_error(
        "serve JSON schema_version " + std::to_string(version) +
        " is outside the supported range " +
        std::to_string(kMinServeSchemaVersion) + ".." +
        std::to_string(kServeSchemaVersion) +
        " (regenerate the file with this build's nestpar_bench)");
  }
  SuiteResult result;
  result.suite = require_str(root, "suite");
  result.figure = require_str(root, "figure");
  const JsonValue& arr = require(root, "records");
  if (!arr.is_array()) {
    throw std::runtime_error("serve JSON 'records' is not an array");
  }
  for (const JsonValue& item : arr.array()) {
    if (!item.is_object()) {
      throw std::runtime_error("serve JSON record is not an object");
    }
    const JsonObject& rec = item.object();
    ServeRecord r;
    r.scenario = require_str(rec, "scenario");
    r.params = num_map(rec, "params");
    r.submitted = static_cast<std::uint64_t>(require_num(rec, "submitted"));
    r.ok = static_cast<std::uint64_t>(require_num(rec, "ok"));
    r.expired = static_cast<std::uint64_t>(require_num(rec, "expired"));
    r.shed = static_cast<std::uint64_t>(require_num(rec, "shed"));
    r.wrong = static_cast<std::uint64_t>(require_num(rec, "wrong"));
    r.attempts = static_cast<std::uint64_t>(require_num(rec, "attempts"));
    r.retries = static_cast<std::uint64_t>(require_num(rec, "retries"));
    r.hedges = static_cast<std::uint64_t>(require_num(rec, "hedges"));
    r.batches = static_cast<std::uint64_t>(require_num(rec, "batches"));
    r.probes = static_cast<std::uint64_t>(require_num(rec, "probes"));
    r.breaker_trips =
        static_cast<std::uint64_t>(require_num(rec, "breaker_trips"));
    r.faults_injected =
        static_cast<std::uint64_t>(require_num(rec, "faults_injected"));
    r.degraded = static_cast<std::uint64_t>(require_num(rec, "degraded"));
    r.makespan_us = require_num(rec, "makespan_us");
    r.qps_ok = require_num(rec, "qps_ok");
    r.p50_us = require_num(rec, "p50_us");
    r.p95_us = require_num(rec, "p95_us");
    r.p99_us = require_num(rec, "p99_us");
    r.mean_us = require_num(rec, "mean_us");
    r.max_us = require_num(rec, "max_us");
    // Schema v2 sections; absent in v1 files, which read back zero/empty.
    const auto split = num_map(rec, "p99_split");
    const auto split_val = [&split](const char* k) {
      const auto it = split.find(k);
      return it == split.end() ? 0.0 : it->second;
    };
    r.p99_queue_us = split_val("queue");
    r.p99_batch_us = split_val("batch");
    r.p99_exec_us = split_val("exec");
    r.p99_retry_us = split_val("retry");
    // Schema v3 sections; absent in v1/v2 files (read back zero/empty).
    const auto opt_num = [&rec](const char* k) {
      const auto it = rec.find(k);
      if (it == rec.end()) return 0.0;
      if (!it->second.is_number()) {
        throw std::runtime_error("serve JSON '" + std::string(k) +
                                 "' is not a number");
      }
      return it->second.number();
    };
    r.device_cycles_total = opt_num("device_cycles_total");
    r.fault_device_cycles_total = opt_num("fault_device_cycles_total");
    r.launches_total = static_cast<std::uint64_t>(opt_num("launches_total"));
    const auto tenants = rec.find("tenants");
    if (tenants != rec.end()) {
      if (!tenants->second.is_array()) {
        throw std::runtime_error("serve JSON 'tenants' is not an array");
      }
      for (const JsonValue& tv : tenants->second.array()) {
        if (!tv.is_object()) {
          throw std::runtime_error("serve JSON tenant is not an object");
        }
        const JsonObject& tobj = tv.object();
        ServeTenant t;
        t.tenant = static_cast<std::uint32_t>(require_num(tobj, "tenant"));
        t.requests = static_cast<std::uint64_t>(require_num(tobj, "requests"));
        t.ok = static_cast<std::uint64_t>(require_num(tobj, "ok"));
        t.launches = static_cast<std::uint64_t>(require_num(tobj, "launches"));
        t.retries = static_cast<std::uint64_t>(require_num(tobj, "retries"));
        t.device_cycles = require_num(tobj, "device_cycles");
        t.fault_device_cycles = require_num(tobj, "fault_device_cycles");
        r.tenants.push_back(t);
      }
    }
    r.extra = num_map(rec, "extra");
    r.volatile_extra = num_map(rec, "extra_volatile");
    const auto telemetry = rec.find("telemetry");
    if (telemetry != rec.end()) {
      if (!telemetry->second.is_array()) {
        throw std::runtime_error("serve JSON 'telemetry' is not an array");
      }
      for (const JsonValue& sv : telemetry->second.array()) {
        if (!sv.is_object()) {
          throw std::runtime_error(
              "serve JSON telemetry series is not an object");
        }
        const JsonObject& sobj = sv.object();
        ServeSeries series;
        series.name = require_str(sobj, "name");
        series.unit = require_str(sobj, "unit");
        const JsonValue& pts = require(sobj, "points");
        if (!pts.is_array()) {
          throw std::runtime_error("serve JSON series '" + series.name +
                                   "' points is not an array");
        }
        for (const JsonValue& pv : pts.array()) {
          if (!pv.is_array() || pv.array().size() != 2 ||
              !pv.array()[0].is_number() || !pv.array()[1].is_number()) {
            throw std::runtime_error("serve JSON series '" + series.name +
                                     "' point is not a [t, value] pair");
          }
          series.points.emplace_back(pv.array()[0].number(),
                                     pv.array()[1].number());
        }
        r.telemetry.push_back(std::move(series));
      }
    }
    result.serve.push_back(std::move(r));
  }
  return result;
}

std::string write_serve_file(const SuiteResult& result,
                             const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create serve directory '" + dir +
                             "': " + ec.message());
  }
  const std::string path = dir + "/SERVE_" + result.suite + ".json";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f << to_serve_json(result);
  if (!f) throw std::runtime_error("write to '" + path + "' failed");
  return path;
}

SuiteResult load_serve_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open serve file '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_serve_json(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

namespace {

// ---------------------------------------------------------------------------
// Profile (PROF_<suite>.json) serialization helpers. Histogram buckets and
// lane-histogram slots serialize sparsely (nonzero entries only) as
// index-keyed objects, keeping smoke-scale files small and diffable.

std::string hist_json(const simt::ProfHistogram& h) {
  std::string out = "{\"count\": " + json_num(h.count) +
                    ", \"sum\": " + json_num(h.sum) +
                    ", \"min\": " + json_num(h.min_value) +
                    ", \"max\": " + json_num(h.max_value) + ", \"buckets\": {";
  bool first = true;
  for (int b = 0; b < simt::ProfHistogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::to_string(b) + "\": " + json_num(h.buckets[b]);
  }
  out += "}}";
  return out;
}

simt::ProfHistogram parse_hist(const JsonObject& rec, const std::string& key) {
  simt::ProfHistogram h;
  const auto it = rec.find(key);
  if (it == rec.end()) return h;
  if (!it->second.is_object()) {
    throw std::runtime_error("profile JSON field '" + key +
                             "' is not an object");
  }
  const JsonObject& obj = it->second.object();
  h.count = static_cast<std::uint64_t>(require_num(obj, "count"));
  h.sum = require_num(obj, "sum");
  h.min_value = require_num(obj, "min");
  h.max_value = require_num(obj, "max");
  for (const auto& [k, v] : num_map(obj, "buckets")) {
    const int b = std::stoi(k);
    if (b >= 0 && b < simt::ProfHistogram::kBuckets) {
      h.buckets[b] = static_cast<std::uint64_t>(v);
    }
  }
  return h;
}

std::string u32_map_json(const std::map<std::uint32_t, std::uint64_t>& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::to_string(k) + "\": " + json_num(v);
  }
  out += "}";
  return out;
}

std::map<std::uint32_t, std::uint64_t> parse_u32_map(const JsonObject& rec,
                                                     const std::string& key) {
  std::map<std::uint32_t, std::uint64_t> out;
  for (const auto& [k, v] : num_map(rec, key)) {
    out[static_cast<std::uint32_t>(std::stoul(k))] =
        static_cast<std::uint64_t>(v);
  }
  return out;
}

// -- Critical-path sections (profile schema v2) -----------------------------

/// Longest binding chain serialized per profile; the tail (nearest the
/// makespan) is kept because the chain is read top-down from the last-
/// finishing grid. The cap is deterministic, so capped files stay
/// byte-stable; `chain_dropped` records how many leading segments were cut.
constexpr std::size_t kMaxSerializedChain = 512;

std::string crit_attr_json(const simt::CritAttribution& a) {
  std::string out = "{";
  for (int i = 0; i < simt::kCritCategoryCount; ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    out += std::string(
        simt::to_string(static_cast<simt::CritCategory>(i)));
    out += "\": " + json_num(a.cycles[i]);
  }
  out += "}";
  return out;
}

simt::CritAttribution parse_crit_attr(const JsonObject& rec,
                                      const std::string& key) {
  simt::CritAttribution a;
  for (const auto& [name, value] : num_map(rec, key)) {
    simt::CritCategory cat;
    if (simt::parse_crit_category(name, cat)) a[cat] = value;
  }
  return a;
}

simt::RobustnessCounters parse_robustness(const JsonObject& rec) {
  simt::RobustnessCounters r;
  const auto rb = num_map(rec, "robustness");
  r.launches_attempted = opt_u64(rb, "launches_attempted");
  r.refused_pool = opt_u64(rb, "refused_pool");
  r.refused_depth = opt_u64(rb, "refused_depth");
  r.refused_heap = opt_u64(rb, "refused_heap");
  r.faults_injected = opt_u64(rb, "faults_injected");
  r.retries = opt_u64(rb, "retries");
  r.degraded = opt_u64(rb, "degraded");
  return r;
}

}  // namespace

std::string to_json(const SuiteProfile& profile) {
  const simt::ProfileSnapshot& p = profile.prof;
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(kProfileSchemaVersion) +
         ",\n";
  out += "  \"generator\": \"nestpar_bench\",\n";
  out += "  \"kind\": \"profile\",\n";
  out += "  \"suite\": " + json_str(profile.suite) + ",\n";
  out += "  \"total_cycles\": " + json_num(p.total_cycles) + ",\n";
  out += "  \"reports\": " + json_num(p.reports) + ",\n";
  out += "  \"grids\": " + json_num(p.grids) + ",\n";
  out += "  \"device_grids\": " + json_num(p.device_grids) + ",\n";
  out += "  \"depth_grids\": " + u32_map_json(p.depth_grids) + ",\n";
  out += "  \"kernels\": [";
  for (std::size_t i = 0; i < p.kernels.size(); ++i) {
    const simt::KernelProfile& k = p.kernels[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + json_str(k.name) + ",\n     ";
    out += "\"invocations\": " + json_num(k.invocations) + ", ";
    out += "\"busy_cycles\": " + json_num(k.busy_cycles) + ",\n     ";
    out += "\"launch_max_cycles\": " + json_num(k.launch_max_cycles) + ", ";
    out += "\"launch_mean_cycles\": " + json_num(k.launch_mean_cycles) +
           ",\n     ";
    out += "\"block_cycles\": " + hist_json(k.block_cycles) + ",\n     ";
    out += "\"child_grid_blocks\": " + hist_json(k.child_grid_blocks) +
           ",\n     ";
    out += "\"lane_hist\": {";
    bool first = true;
    for (int s = 0; s < simt::kLaneHistSlots; ++s) {
      if (k.lane_hist[s] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" + std::to_string(s) + "\": " + json_num(k.lane_hist[s]);
    }
    out += "},\n     ";
    out += "\"warp_steps\": " + json_num(k.warp_steps) + ", ";
    out += "\"active_lane_ops\": " + json_num(k.active_lane_ops) + ",\n     ";
    out += "\"nest_depths\": " + u32_map_json(k.nest_depth_grids) +
           ",\n     ";
    out += "\"robustness\": " + k.robustness.to_json() + "}";
  }
  out += "\n  ],\n";
  out += "  \"tracks\": {";
  {
    bool first = true;
    for (const auto& [name, hist] : p.tracks) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    " + json_str(name) + ": " + hist_json(hist);
    }
  }
  out += "\n  },\n";
  out += "  \"counters\": [";
  for (std::size_t i = 0; i < p.counters.size(); ++i) {
    const simt::CounterSample& c = p.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"track\": " + json_str(c.track) +
           ", \"value\": " + json_num(c.value) +
           ", \"node\": " + json_num(c.node) + "}";
  }
  out += "\n  ],\n";
  out += "  \"instants\": [";
  for (std::size_t i = 0; i < p.instants.size(); ++i) {
    const simt::InstantSample& e = p.instants[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + json_str(e.name) +
           ", \"cat\": " + json_str(e.cat) +
           ", \"node\": " + json_num(e.node) + "}";
  }
  out += "\n  ],\n";
  // Schema v2: critical-path decomposition (see src/simt/critpath.h).
  const std::size_t chain_total = p.crit_chain.size();
  const std::size_t chain_from =
      chain_total > kMaxSerializedChain ? chain_total - kMaxSerializedChain
                                        : 0;
  out += "  \"critical_path\": {\n";
  out += "    \"makespan\": " + json_num(p.crit_chain_makespan) + ",\n";
  out += "    \"chain_dropped\": " + json_num(chain_from) + ",\n";
  out += "    \"chain\": [";
  for (std::size_t i = chain_from; i < chain_total; ++i) {
    const simt::CritSegment& s = p.crit_chain[i];
    out += i == chain_from ? "\n" : ",\n";
    out += "      {\"kernel\": " + json_str(s.kernel) +
           ", \"node\": " + json_num(static_cast<std::uint64_t>(s.node)) +
           ", \"depth\": " + json_num(static_cast<std::uint64_t>(s.depth)) +
           ", \"category\": \"" +
           std::string(simt::to_string(s.category)) +
           "\", \"begin\": " + json_num(s.begin) +
           ", \"cycles\": " + json_num(s.cycles) + "}";
  }
  out += "\n    ],\n";
  out += "    \"folded\": ";
  {
    std::string folded = "{";
    bool first = true;
    for (const auto& [stack, cycles] : p.crit_folded) {
      folded += first ? "\n      " : ",\n      ";
      first = false;
      folded += json_str(stack) + ": " + json_num(cycles);
    }
    folded += "\n    }";
    out += folded;
  }
  out += "\n  },\n";
  out += "  \"attribution\": {\n";
  out += "    \"total\": " + crit_attr_json(p.crit_total) + ",\n";
  out += "    \"kernels\": {";
  {
    bool first = true;
    for (const auto& [name, attr] : p.crit_kernels) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "      " + json_str(name) + ": " + crit_attr_json(attr);
    }
  }
  out += "\n    }\n";
  out += "  }\n}\n";
  return out;
}

SuiteProfile parse_profile_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) {
    throw std::runtime_error("profile JSON root is not an object");
  }
  const JsonObject& root = doc.object();
  const int version = static_cast<int>(require_num(root, "schema_version"));
  if (version < kMinProfileSchemaVersion || version > kProfileSchemaVersion) {
    throw std::runtime_error(
        "profile JSON schema_version " + std::to_string(version) +
        " is outside the supported range " +
        std::to_string(kMinProfileSchemaVersion) + ".." +
        std::to_string(kProfileSchemaVersion) +
        " (regenerate the file with this build's nestpar_bench)");
  }
  SuiteProfile profile;
  profile.schema_version = version;
  profile.suite = require_str(root, "suite");
  simt::ProfileSnapshot& p = profile.prof;
  p.total_cycles = require_num(root, "total_cycles");
  p.reports = static_cast<std::uint64_t>(require_num(root, "reports"));
  p.grids = static_cast<std::uint64_t>(require_num(root, "grids"));
  p.device_grids =
      static_cast<std::uint64_t>(require_num(root, "device_grids"));
  p.depth_grids = parse_u32_map(root, "depth_grids");

  const JsonValue& kernels = require(root, "kernels");
  if (!kernels.is_array()) {
    throw std::runtime_error("profile JSON 'kernels' is not an array");
  }
  for (const JsonValue& item : kernels.array()) {
    if (!item.is_object()) {
      throw std::runtime_error("profile JSON kernel entry is not an object");
    }
    const JsonObject& rec = item.object();
    simt::KernelProfile k;
    k.name = require_str(rec, "name");
    k.invocations =
        static_cast<std::uint64_t>(require_num(rec, "invocations"));
    k.busy_cycles = require_num(rec, "busy_cycles");
    k.launch_max_cycles = require_num(rec, "launch_max_cycles");
    k.launch_mean_cycles = require_num(rec, "launch_mean_cycles");
    k.block_cycles = parse_hist(rec, "block_cycles");
    k.child_grid_blocks = parse_hist(rec, "child_grid_blocks");
    for (const auto& [slot, n] : num_map(rec, "lane_hist")) {
      const int s = std::stoi(slot);
      if (s >= 0 && s < simt::kLaneHistSlots) {
        k.lane_hist[s] = static_cast<std::uint64_t>(n);
      }
    }
    k.warp_steps = static_cast<std::uint64_t>(require_num(rec, "warp_steps"));
    k.active_lane_ops =
        static_cast<std::uint64_t>(require_num(rec, "active_lane_ops"));
    k.nest_depth_grids = parse_u32_map(rec, "nest_depths");
    k.robustness = parse_robustness(rec);
    p.kernels.push_back(std::move(k));
  }

  const auto tracks = root.find("tracks");
  if (tracks != root.end()) {
    if (!tracks->second.is_object()) {
      throw std::runtime_error("profile JSON 'tracks' is not an object");
    }
    for (const auto& [name, hist] : tracks->second.object()) {
      if (!hist.is_object()) {
        throw std::runtime_error("profile JSON track '" + name +
                                 "' is not an object");
      }
      JsonObject wrapper;
      wrapper.emplace("h", hist);
      p.tracks[name] = parse_hist(wrapper, "h");
    }
  }

  const auto counters = root.find("counters");
  if (counters != root.end()) {
    if (!counters->second.is_array()) {
      throw std::runtime_error("profile JSON 'counters' is not an array");
    }
    for (const JsonValue& item : counters->second.array()) {
      const JsonObject& rec = item.object();
      p.counters.push_back(simt::CounterSample{
          require_str(rec, "track"), require_num(rec, "value"),
          static_cast<std::uint64_t>(require_num(rec, "node"))});
    }
  }

  const auto instants = root.find("instants");
  if (instants != root.end()) {
    if (!instants->second.is_array()) {
      throw std::runtime_error("profile JSON 'instants' is not an array");
    }
    for (const JsonValue& item : instants->second.array()) {
      const JsonObject& rec = item.object();
      p.instants.push_back(simt::InstantSample{
          require_str(rec, "name"), require_str(rec, "cat"),
          static_cast<std::uint64_t>(require_num(rec, "node"))});
    }
  }

  // Schema v2 sections; absent in v1 files, which read back empty.
  const auto critical = root.find("critical_path");
  if (critical != root.end()) {
    if (!critical->second.is_object()) {
      throw std::runtime_error(
          "profile JSON 'critical_path' is not an object");
    }
    const JsonObject& cp = critical->second.object();
    p.crit_chain_makespan = require_num(cp, "makespan");
    const JsonValue& chain = require(cp, "chain");
    if (!chain.is_array()) {
      throw std::runtime_error("profile JSON 'chain' is not an array");
    }
    for (const JsonValue& item : chain.array()) {
      const JsonObject& rec = item.object();
      simt::CritSegment seg;
      seg.kernel = require_str(rec, "kernel");
      seg.node = static_cast<std::uint32_t>(require_num(rec, "node"));
      seg.depth = static_cast<std::uint32_t>(require_num(rec, "depth"));
      const std::string cat = require_str(rec, "category");
      if (!simt::parse_crit_category(cat, seg.category)) {
        throw std::runtime_error("profile JSON unknown chain category '" +
                                 cat + "'");
      }
      seg.begin = require_num(rec, "begin");
      seg.cycles = require_num(rec, "cycles");
      p.crit_chain.push_back(std::move(seg));
    }
    for (const auto& [stack, cycles] : num_map(cp, "folded")) {
      p.crit_folded[stack] = cycles;
    }
  }
  const auto attribution = root.find("attribution");
  if (attribution != root.end()) {
    if (!attribution->second.is_object()) {
      throw std::runtime_error("profile JSON 'attribution' is not an object");
    }
    const JsonObject& attr = attribution->second.object();
    p.crit_total = parse_crit_attr(attr, "total");
    const auto kernels_attr = attr.find("kernels");
    if (kernels_attr != attr.end()) {
      if (!kernels_attr->second.is_object()) {
        throw std::runtime_error(
            "profile JSON attribution 'kernels' is not an object");
      }
      JsonObject wrapper;
      for (const auto& [name, value] : kernels_attr->second.object()) {
        wrapper.clear();
        wrapper.emplace("a", value);
        p.crit_kernels[name] = parse_crit_attr(wrapper, "a");
      }
    }
  }
  return profile;
}

std::string write_profile_file(const SuiteProfile& profile,
                               const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create profile directory '" + dir +
                             "': " + ec.message());
  }
  const std::string path = dir + "/PROF_" + profile.suite + ".json";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f << to_json(profile);
  if (!f) throw std::runtime_error("write to '" + path + "' failed");
  return path;
}

SuiteProfile load_profile_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open profile file '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_profile_json(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

bool CompareReport::has_regression() const {
  if (missing > 0) return true;
  for (const MetricDelta& d : deltas) {
    if (d.regression) return true;
  }
  return false;
}

namespace {

double rel_delta(double baseline, double current) {
  const double denom = std::max(std::abs(baseline), 1e-12);
  return (current - baseline) / denom;
}

/// Append a delta row when the metric moved; `bad_direction` is +1 when an
/// increase is a regression (cycles, launches, faults), -1 when a decrease
/// is (warp efficiency), and 0 when *any* move beyond the threshold is a
/// regression (two-sided: deterministic telemetry series where drift in
/// either direction means the schedule changed — there is no "improvement").
void diff_metric(CompareReport& report, const std::string& suite,
                 const std::string& key, const std::string& metric,
                 double baseline, double current, int bad_direction,
                 double threshold) {
  if (baseline == current) return;
  MetricDelta d;
  d.suite = suite;
  d.key = key;
  d.metric = metric;
  d.baseline = baseline;
  d.current = current;
  d.rel_delta = rel_delta(baseline, current);
  if (bad_direction == 0) {
    d.regression = std::abs(d.rel_delta) > threshold;
    d.improvement = false;
  } else {
    d.regression = d.rel_delta * bad_direction > threshold;
    d.improvement = d.rel_delta * bad_direction < -threshold;
  }
  report.deltas.push_back(std::move(d));
}

}  // namespace

CompareReport compare_results(const SuiteResult& baseline,
                              const SuiteResult& current,
                              const CompareOptions& opt) {
  CompareReport report;
  std::map<std::string, const Measurement*> current_by_key;
  for (const Measurement& m : current.measurements) {
    current_by_key[m.key()] = &m;
  }
  std::map<std::string, bool> baseline_keys;
  for (const Measurement& b : baseline.measurements) {
    const std::string key = b.key();
    baseline_keys[key] = true;
    const auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      ++report.missing;
      continue;
    }
    ++report.matched;
    const Measurement& c = *it->second;
    diff_metric(report, baseline.suite, key, "cycles", b.cycles, c.cycles,
                +1, opt.threshold);
    diff_metric(report, baseline.suite, key, "warp_efficiency",
                b.warp_efficiency, c.warp_efficiency, -1, opt.threshold);
    diff_metric(report, baseline.suite, key, "device_launches",
                static_cast<double>(b.device_launches),
                static_cast<double>(c.device_launches), +1, opt.threshold);
    diff_metric(report, baseline.suite, key, "host_launches",
                static_cast<double>(b.host_launches),
                static_cast<double>(c.host_launches), +1, opt.threshold);
    diff_metric(report, baseline.suite, key, "degraded",
                static_cast<double>(b.robustness.degraded),
                static_cast<double>(c.robustness.degraded), +1,
                opt.threshold);
    diff_metric(report, baseline.suite, key, "refused",
                static_cast<double>(b.robustness.refused_total()),
                static_cast<double>(c.robustness.refused_total()), +1,
                opt.threshold);
  }
  for (const Measurement& c : current.measurements) {
    if (!baseline_keys.count(c.key())) ++report.added;
  }
  return report;
}

CompareReport compare_serve(const SuiteResult& baseline,
                            const SuiteResult& current,
                            const CompareOptions& opt) {
  CompareReport report;
  std::map<std::string, const ServeRecord*> current_by_key;
  for (const ServeRecord& r : current.serve) {
    current_by_key[r.key()] = &r;
  }
  std::map<std::string, bool> baseline_keys;
  for (const ServeRecord& b : baseline.serve) {
    const std::string key = b.key();
    baseline_keys[key] = true;
    const auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      ++report.missing;
      continue;
    }
    ++report.matched;
    const ServeRecord& c = *it->second;
    const std::string suite = baseline.suite + " [serve]";
    diff_metric(report, suite, key, "wrong", static_cast<double>(b.wrong),
                static_cast<double>(c.wrong), +1, opt.threshold);
    diff_metric(report, suite, key, "ok", static_cast<double>(b.ok),
                static_cast<double>(c.ok), -1, opt.threshold);
    diff_metric(report, suite, key, "expired",
                static_cast<double>(b.expired), static_cast<double>(c.expired),
                +1, opt.threshold);
    diff_metric(report, suite, key, "shed", static_cast<double>(b.shed),
                static_cast<double>(c.shed), +1, opt.threshold);
    diff_metric(report, suite, key, "retries",
                static_cast<double>(b.retries), static_cast<double>(c.retries),
                +1, opt.threshold);
    diff_metric(report, suite, key, "breaker_trips",
                static_cast<double>(b.breaker_trips),
                static_cast<double>(c.breaker_trips), +1, opt.threshold);
    diff_metric(report, suite, key, "faults_injected",
                static_cast<double>(b.faults_injected),
                static_cast<double>(c.faults_injected), +1, opt.threshold);
    diff_metric(report, suite, key, "p50_us", b.p50_us, c.p50_us, +1,
                opt.threshold);
    diff_metric(report, suite, key, "p99_us", b.p99_us, c.p99_us, +1,
                opt.threshold);
    diff_metric(report, suite, key, "qps_ok", b.qps_ok, c.qps_ok, -1,
                opt.threshold);
    // Tail-latency attribution: growth in any single phase's share is a
    // regression even when the total p99 held (it means time moved between
    // phases — a scheduling change worth a look).
    diff_metric(report, suite, key, "p99_queue_us", b.p99_queue_us,
                c.p99_queue_us, +1, opt.threshold);
    diff_metric(report, suite, key, "p99_batch_us", b.p99_batch_us,
                c.p99_batch_us, +1, opt.threshold);
    diff_metric(report, suite, key, "p99_exec_us", b.p99_exec_us,
                c.p99_exec_us, +1, opt.threshold);
    diff_metric(report, suite, key, "p99_retry_us", b.p99_retry_us,
                c.p99_retry_us, +1, opt.threshold);
    // Device-cost attribution (schema v3): total modeled device cycles and
    // launches are pure functions of the schedule, so they gate two-sided —
    // any drift means the scheduled work changed. Per-tenant rollups match
    // by tenant id; a tenant the current run dropped diffs against zero.
    diff_metric(report, suite, key, "device_cycles_total",
                b.device_cycles_total, c.device_cycles_total, 0,
                opt.threshold);
    diff_metric(report, suite, key, "fault_device_cycles_total",
                b.fault_device_cycles_total, c.fault_device_cycles_total, 0,
                opt.threshold);
    diff_metric(report, suite, key, "launches_total",
                static_cast<double>(b.launches_total),
                static_cast<double>(c.launches_total), 0, opt.threshold);
    for (const ServeTenant& bt : b.tenants) {
      const ServeTenant* ct = nullptr;
      for (const ServeTenant& cand : c.tenants) {
        if (cand.tenant == bt.tenant) {
          ct = &cand;
          break;
        }
      }
      const ServeTenant zero{bt.tenant, 0, 0, 0, 0, 0.0, 0.0};
      const ServeTenant& cv = ct ? *ct : zero;
      const std::string prefix =
          "tenant/" + std::to_string(bt.tenant) + "/";
      diff_metric(report, suite, key, prefix + "requests",
                  static_cast<double>(bt.requests),
                  static_cast<double>(cv.requests), 0, opt.threshold);
      diff_metric(report, suite, key, prefix + "ok",
                  static_cast<double>(bt.ok), static_cast<double>(cv.ok), 0,
                  opt.threshold);
      diff_metric(report, suite, key, prefix + "launches",
                  static_cast<double>(bt.launches),
                  static_cast<double>(cv.launches), 0, opt.threshold);
      diff_metric(report, suite, key, prefix + "retries",
                  static_cast<double>(bt.retries),
                  static_cast<double>(cv.retries), 0, opt.threshold);
      diff_metric(report, suite, key, prefix + "device_cycles",
                  bt.device_cycles, cv.device_cycles, 0, opt.threshold);
      diff_metric(report, suite, key, prefix + "fault_device_cycles",
                  bt.fault_device_cycles, cv.fault_device_cycles, 0,
                  opt.threshold);
    }
    // Telemetry series rollups, two-sided: the series are pure functions of
    // the schedule, so any drift (up or down) in sample count, peak, or mean
    // flags a behavioral change. A series the current run dropped entirely
    // diffs its sample count against zero.
    for (const ServeSeries& bs : b.telemetry) {
      const ServeSeries* cs = nullptr;
      for (const ServeSeries& cand : c.telemetry) {
        if (cand.name == bs.name) {
          cs = &cand;
          break;
        }
      }
      const std::string prefix = "telemetry/" + bs.name + "/";
      diff_metric(report, suite, key, prefix + "samples",
                  static_cast<double>(bs.points.size()),
                  cs ? static_cast<double>(cs->points.size()) : 0.0, 0,
                  opt.threshold);
      if (cs != nullptr) {
        diff_metric(report, suite, key, prefix + "max", bs.max_value(),
                    cs->max_value(), 0, opt.threshold);
        diff_metric(report, suite, key, prefix + "mean", bs.mean_value(),
                    cs->mean_value(), 0, opt.threshold);
      }
    }
  }
  for (const ServeRecord& c : current.serve) {
    if (!baseline_keys.count(c.key())) ++report.added;
  }
  return report;
}

void merge_compare_reports(CompareReport& a, const CompareReport& b) {
  a.deltas.insert(a.deltas.end(), b.deltas.begin(), b.deltas.end());
  a.matched += b.matched;
  a.missing += b.missing;
  a.added += b.added;
}

}  // namespace nestpar::bench
