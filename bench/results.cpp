#include "results.h"

#include <cctype>
#include "src/simt/device.h"
#include <charconv>
#include <cstring>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <variant>

namespace nestpar::bench {

namespace {

// ---------------------------------------------------------------------------
// Stable number formatting: shortest round-trip form via std::to_chars, so
// the same measurements always serialize to the same bytes.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string json_num(std::uint64_t v) { return std::to_string(v); }

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void append_num_map(std::string& out, const std::map<std::string, double>& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ", ";
    first = false;
    out += json_str(k) + ": " + json_num(v);
  }
  out += '}';
}

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Only what our own emitter
// produces is required, but the grammar is complete enough for hand-edited
// baseline files (numbers, strings with escapes, bools, null, arrays,
// objects, arbitrary whitespace).
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue{std::move(arr)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            const auto res = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (res.ptr != text_.data() + pos_ + 4) fail("bad \\u escape");
            pos_ += 4;
            // Our emitter only escapes control chars; decode BMP code
            // points to UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        start == pos_) {
      fail("malformed number");
    }
    return JsonValue{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Field lookups with typed errors naming what is missing.
const JsonValue& require(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("result JSON missing required field '" + key +
                             "'");
  }
  return it->second;
}

double require_num(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_number()) {
    throw std::runtime_error("result JSON field '" + key +
                             "' is not a number");
  }
  return v.number();
}

std::string require_str(const JsonObject& obj, const std::string& key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_string()) {
    throw std::runtime_error("result JSON field '" + key +
                             "' is not a string");
  }
  return v.string();
}

std::map<std::string, double> num_map(const JsonObject& obj,
                                      const std::string& key) {
  std::map<std::string, double> out;
  const auto it = obj.find(key);
  if (it == obj.end()) return out;
  if (!it->second.is_object()) {
    throw std::runtime_error("result JSON field '" + key +
                             "' is not an object");
  }
  for (const auto& [k, v] : it->second.object()) {
    if (!v.is_number()) {
      throw std::runtime_error("result JSON field '" + key + "." + k +
                               "' is not a number");
    }
    out[k] = v.number();
  }
  return out;
}

std::uint64_t opt_u64(const std::map<std::string, double>& m,
                      const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? 0 : static_cast<std::uint64_t>(it->second);
}

}  // namespace

Measurement Measurement::from_report(const simt::RunReport& rep) {
  Measurement m;
  m.cycles = rep.total_cycles;
  m.warp_efficiency = rep.aggregate.warp_execution_efficiency();
  m.host_launches = rep.aggregate.host_launches;
  m.device_launches = rep.aggregate.device_launches;
  m.robustness = rep.robustness;
  return m;
}

std::string Measurement::key() const {
  std::string k = tmpl + "|" + dataset + "|" + json_num(scale) + "|";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) k += ',';
    first = false;
    k += name + "=" + json_num(value);
  }
  return k;
}

std::string to_json(const SuiteResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(kResultSchemaVersion) +
         ",\n";
  out += "  \"generator\": \"nestpar_bench\",\n";
  out += "  \"suite\": " + json_str(result.suite) + ",\n";
  out += "  \"figure\": " + json_str(result.figure) + ",\n";
  out += "  \"measurements\": [";
  for (std::size_t i = 0; i < result.measurements.size(); ++i) {
    const Measurement& m = result.measurements[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    out += "\"template\": " + json_str(m.tmpl) + ", ";
    out += "\"dataset\": " + json_str(m.dataset) + ", ";
    out += "\"scale\": " + json_num(m.scale) + ",\n     ";
    out += "\"params\": ";
    append_num_map(out, m.params);
    out += ",\n     ";
    out += "\"cycles\": " + json_num(m.cycles) + ", ";
    out += "\"warp_efficiency\": " + json_num(m.warp_efficiency) + ", ";
    out += "\"host_launches\": " + json_num(m.host_launches) + ", ";
    out += "\"device_launches\": " + json_num(m.device_launches) + ",\n     ";
    out += "\"robustness\": " + m.robustness.to_json() + ",\n     ";
    out += "\"extra\": ";
    append_num_map(out, m.extra);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

SuiteResult parse_result_json(const std::string& text) {
  const JsonValue doc = JsonParser(text).parse();
  if (!doc.is_object()) {
    throw std::runtime_error("result JSON root is not an object");
  }
  const JsonObject& root = doc.object();
  const int version = static_cast<int>(require_num(root, "schema_version"));
  if (version != kResultSchemaVersion) {
    throw std::runtime_error(
        "result JSON schema_version " + std::to_string(version) +
        " does not match supported version " +
        std::to_string(kResultSchemaVersion) +
        " (regenerate the file with this build's nestpar_bench)");
  }
  SuiteResult result;
  result.suite = require_str(root, "suite");
  result.figure = require_str(root, "figure");
  const JsonValue& arr = require(root, "measurements");
  if (!arr.is_array()) {
    throw std::runtime_error("result JSON 'measurements' is not an array");
  }
  for (const JsonValue& item : arr.array()) {
    if (!item.is_object()) {
      throw std::runtime_error("result JSON measurement is not an object");
    }
    const JsonObject& rec = item.object();
    Measurement m;
    m.tmpl = require_str(rec, "template");
    m.dataset = require_str(rec, "dataset");
    m.scale = require_num(rec, "scale");
    m.params = num_map(rec, "params");
    m.cycles = require_num(rec, "cycles");
    m.warp_efficiency = require_num(rec, "warp_efficiency");
    m.host_launches =
        static_cast<std::uint64_t>(require_num(rec, "host_launches"));
    m.device_launches =
        static_cast<std::uint64_t>(require_num(rec, "device_launches"));
    const auto rb = num_map(rec, "robustness");
    m.robustness.launches_attempted = opt_u64(rb, "launches_attempted");
    m.robustness.refused_pool = opt_u64(rb, "refused_pool");
    m.robustness.refused_depth = opt_u64(rb, "refused_depth");
    m.robustness.refused_heap = opt_u64(rb, "refused_heap");
    m.robustness.faults_injected = opt_u64(rb, "faults_injected");
    m.robustness.retries = opt_u64(rb, "retries");
    m.robustness.degraded = opt_u64(rb, "degraded");
    m.extra = num_map(rec, "extra");
    result.measurements.push_back(std::move(m));
  }
  return result;
}

std::string write_result_file(const SuiteResult& result,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create result directory '" + dir +
                             "': " + ec.message());
  }
  const std::string path = dir + "/BENCH_" + result.suite + ".json";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f << to_json(result);
  if (!f) throw std::runtime_error("write to '" + path + "' failed");
  return path;
}

SuiteResult load_result_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open result file '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_result_json(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

bool CompareReport::has_regression() const {
  if (missing > 0) return true;
  for (const MetricDelta& d : deltas) {
    if (d.regression) return true;
  }
  return false;
}

namespace {

double rel_delta(double baseline, double current) {
  const double denom = std::max(std::abs(baseline), 1e-12);
  return (current - baseline) / denom;
}

/// Append a delta row when the metric moved; `bad_direction` is +1 when an
/// increase is a regression (cycles, launches, faults) and -1 when a
/// decrease is (warp efficiency).
void diff_metric(CompareReport& report, const std::string& suite,
                 const std::string& key, const std::string& metric,
                 double baseline, double current, int bad_direction,
                 double threshold) {
  if (baseline == current) return;
  MetricDelta d;
  d.suite = suite;
  d.key = key;
  d.metric = metric;
  d.baseline = baseline;
  d.current = current;
  d.rel_delta = rel_delta(baseline, current);
  d.regression = d.rel_delta * bad_direction > threshold;
  report.deltas.push_back(std::move(d));
}

}  // namespace

CompareReport compare_results(const SuiteResult& baseline,
                              const SuiteResult& current,
                              const CompareOptions& opt) {
  CompareReport report;
  std::map<std::string, const Measurement*> current_by_key;
  for (const Measurement& m : current.measurements) {
    current_by_key[m.key()] = &m;
  }
  std::map<std::string, bool> baseline_keys;
  for (const Measurement& b : baseline.measurements) {
    const std::string key = b.key();
    baseline_keys[key] = true;
    const auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      ++report.missing;
      continue;
    }
    ++report.matched;
    const Measurement& c = *it->second;
    diff_metric(report, baseline.suite, key, "cycles", b.cycles, c.cycles,
                +1, opt.threshold);
    diff_metric(report, baseline.suite, key, "warp_efficiency",
                b.warp_efficiency, c.warp_efficiency, -1, opt.threshold);
    diff_metric(report, baseline.suite, key, "device_launches",
                static_cast<double>(b.device_launches),
                static_cast<double>(c.device_launches), +1, opt.threshold);
    diff_metric(report, baseline.suite, key, "host_launches",
                static_cast<double>(b.host_launches),
                static_cast<double>(c.host_launches), +1, opt.threshold);
    diff_metric(report, baseline.suite, key, "degraded",
                static_cast<double>(b.robustness.degraded),
                static_cast<double>(c.robustness.degraded), +1,
                opt.threshold);
    diff_metric(report, baseline.suite, key, "refused",
                static_cast<double>(b.robustness.refused_total()),
                static_cast<double>(c.robustness.refused_total()), +1,
                opt.threshold);
  }
  for (const Measurement& c : current.measurements) {
    if (!baseline_keys.count(c.key())) ++report.added;
  }
  return report;
}

void merge_compare_reports(CompareReport& a, const CompareReport& b) {
  a.deltas.insert(a.deltas.end(), b.deltas.begin(), b.deltas.end());
  a.matched += b.matched;
  a.missing += b.missing;
  a.added += b.added;
}

}  // namespace nestpar::bench
