// Figure 4: SpMV speedup of the load-balancing templates over the baseline
// under different lbTHRES settings (64 / 128 / 192) and varying block sizes
// for the block-mapped portions of the code. The paper's finding: performance
// is largely insensitive to block size, mainly driven by lbTHRES, with small
// blocks (64) safest because blocks larger than f(i) idle their extra threads.
#include <cstdio>

#include "bench_util.h"
#include "src/apps/spmv.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 0.1);

  bench::banner(
      "Figure 4 - SpMV: speedup vs block size of the block-mapped phase, "
      "lbTHRES in {64,128,192} (CiteSeer-like, scale " + bench::fmt(scale) +
          ")",
      "speedup mostly insensitive to block size, dominated by lbTHRES; "
      "smaller blocks slightly better at small lbTHRES (dpar-naive omitted: "
      "far slower)");

  const graph::Csr g = bench::citeseer(scale, /*weighted=*/true);
  const auto mat = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(mat.cols, 7);

  simt::Device dev;
  double base_us = 0.0;
  {
    simt::Session session = dev.session();
    apps::run_spmv(dev, mat, x, LoopTemplate::kBaseline);
    base_us = session.report().total_us;
  }
  std::printf("baseline: %.0f us (block size 192, thread-mapped)\n", base_us);

  const LoopTemplate templates[] = {
      LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
      LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt};

  for (const int lb : {64, 128, 192}) {
    std::printf("\n-- lbTHRES = %d --\n", lb);
    bench::table_header({"block-size", "dual-queue", "dbuf-shared",
                         "dbuf-global", "dpar-opt"});
    for (const int bs : {64, 128, 192, 256}) {
      std::vector<std::string> row{std::to_string(bs)};
      for (const LoopTemplate t : templates) {
        simt::Session session = dev.session();
        nested::LoopParams p;
        p.lb_threshold = lb;
        p.block_block_size = bs;
        apps::run_spmv(dev, mat, x, t, p);
        const simt::RunReport rep = session.report();
        row.push_back(bench::fmt(base_us / rep.total_us) + "x");
        bench::Measurement m = bench::Measurement::from_report(rep);
        m.tmpl = std::string(nested::name(t));
        m.dataset = "citeseer";
        m.scale = scale;
        m.params["lb_threshold"] = lb;
        m.params["block_size"] = bs;
        m.extra["speedup"] = base_us / rep.total_us;
        out.measurements.push_back(std::move(m));
      }
      bench::table_row(row);
    }
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.01"};

const bench::Registration reg{{
    .name = "fig4_spmv_blocksize",
    .figure = "Figure 4",
    .description = "SpMV speedup vs block size of the block-mapped phase",
    .usage = "fig4_spmv_blocksize [--scale=0.1] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig4_spmv_blocksize")
