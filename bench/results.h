#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/simt/metrics.h"
#include "src/simt/profiler.h"

namespace nestpar::simt {
struct RunReport;  // defined in src/simt/device.h
}

namespace nestpar::bench {

/// Version of the BENCH_<suite>.json schema. Bump on any incompatible layout
/// change; `parse_result_json` rejects files written under a different
/// version so a stale baseline can never be silently compared against a new
/// record shape.
inline constexpr int kResultSchemaVersion = 1;

/// One typed benchmark record: a single (template, dataset, scale, params)
/// point of an experiment, with the deterministic model-side metrics pulled
/// from its `simt::RunReport`.
///
/// Two kinds of fields coexist:
///  - *Deterministic* fields (`cycles`, `warp_efficiency`, launch counts,
///    `robustness`): pure functions of the workload and the device model,
///    bit-stable across runs, engines, and build types. The comparator gates
///    regressions on these.
///  - *Informational* extras (`extra`): carried through the JSON for
///    plotting but never compared by the regression gate.
///  - *Volatile* extras (`volatile_extra`, e.g. wall-clock-derived CPU
///    speedups): serialized under a separate `"extra_volatile"` key that
///    byte-stability comparisons exclude structurally — wall/cpu time
///    jitters run-to-run (heap ASLR), so tagging it at the serializer is
///    what lets everything else stay byte-identical without special-casing
///    columns in the comparison scripts.
///
/// Typical producer code inside a suite run function:
/// ```cpp
///   simt::Session session = dev.session();
///   apps::run_sssp(dev, g, 0, t, p);
///   Measurement m = Measurement::from_report(session.report());
///   m.tmpl = std::string(nested::name(t));
///   m.dataset = "citeseer";
///   m.scale = scale;
///   m.params["lb_threshold"] = lb;
///   out.measurements.push_back(std::move(m));
/// ```
struct Measurement {
  std::string tmpl;     ///< Template/variant name ("dual-queue", "flat", ...).
  std::string dataset;  ///< Input name ("citeseer", "tree", "random", ...).
  double scale = 1.0;   ///< Dataset scale factor (1.0 = published size).
  /// Extra identity coordinates (lb_threshold, block_size, outdegree, ...).
  /// Part of the match key: records with different params never compare.
  std::map<std::string, double> params;

  // Deterministic model-side metrics (compared against baselines).
  double cycles = 0.0;            ///< Modeled cycles of the whole run.
  double warp_efficiency = 0.0;   ///< Aggregate warp execution efficiency.
  std::uint64_t host_launches = 0;
  std::uint64_t device_launches = 0;
  simt::RobustnessCounters robustness;

  /// Informational metrics (serialized, never compared): paper-reference
  /// values and other deterministic side data.
  std::map<std::string, double> extra;

  /// Wall-clock-derived metrics (CPU speedups, ...): serialized as
  /// `"extra_volatile"` (only when non-empty) so byte-stability tooling can
  /// strip the one non-deterministic section structurally. Never compared.
  std::map<std::string, double> volatile_extra;

  /// Seed the deterministic fields from a finished run's report.
  static Measurement from_report(const simt::RunReport& rep);

  /// True when a metric name denotes a wall-clock-derived quantity
  /// ("wall_us", "sim_cycles_per_sec", "cpu_speedup", ...). The serializer
  /// routes such keys into the `"extra_volatile"` section even when a suite
  /// put them in `extra`, so a checked-in baseline can never become
  /// byte-unstable — and the comparator can never gate — on host timing. The
  /// convention: the name contains "wall" or "cpu_", or ends in "_per_sec".
  static bool is_wall_derived(const std::string& metric);

  /// Identity within a suite: "tmpl|dataset|scale|k=v,k=v". The comparator
  /// matches baseline and current records by (suite, key()).
  std::string key() const;
};

/// Version of the SERVE_<suite>.json schema (independent of the result
/// schema; bump on any incompatible layout change). SERVE files carry the
/// serving runtime's per-scenario outcome records — request counts by
/// terminal status, retry/hedge/breaker activity, and latency percentiles.
/// v2 added the p99 latency-attribution split, optional extra/extra_volatile
/// maps, and optional telemetry time-series; v3 added device-cost
/// attribution (total modeled device cycles, launch counts, and per-tenant
/// usage rollups). v1/v2 files still parse (the new sections read back
/// zero/empty).
inline constexpr int kServeSchemaVersion = 3;

/// Oldest serve schema `parse_serve_json` still accepts.
inline constexpr int kMinServeSchemaVersion = 1;

/// One telemetry time-series as carried in a SERVE record: the bench-side
/// mirror of serve::TimeSeries (kept separate so the results pipeline does
/// not depend on src/serve headers). Points are (virtual µs, value) pairs;
/// the whole series is deterministic, so the comparator gates its rollups.
struct ServeSeries {
  std::string name;
  std::string unit;
  std::vector<std::pair<double, double>> points;  ///< (t_us, value).

  /// Rollups the comparator gates (two-sided) per baseline series.
  double max_value() const {
    double m = 0.0;
    for (const auto& [t, v] : points) m = v > m ? v : m;
    return m;
  }
  double mean_value() const {
    if (points.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& [t, v] : points) sum += v;
    return sum / static_cast<double>(points.size());
  }
};

/// Per-tenant device-cost rollup as carried in a SERVE record (schema v3):
/// the bench-side mirror of serve::TenantUsage. Cycles are modeled device
/// cycles attributed to the tenant's completed requests by the scheduler's
/// conservation-exact tiling (simt::attribute_cycles), so the comparator can
/// gate "which tenant burns the device" exactly like any other metric.
struct ServeTenant {
  std::uint32_t tenant = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t launches = 0;
  std::uint64_t retries = 0;
  double device_cycles = 0.0;
  double fault_device_cycles = 0.0;
};

/// One serving-scenario record: the deterministic outcome of one Server run
/// (see src/serve/server.h). All counters and percentiles are pure functions
/// of (config, workload, pool), so the comparator can gate them exactly like
/// the model-side bench metrics.
struct ServeRecord {
  std::string scenario;  ///< Load point name ("steady", "overload", ...).
  /// Identity coordinates (qps, shards, fault rates, ...). Part of the match
  /// key, so chaos records never compare against clean baselines.
  std::map<std::string, double> params;

  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t wrong = 0;  ///< Verification failures among Ok (must be 0).
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t batches = 0;
  std::uint64_t probes = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t degraded = 0;
  double makespan_us = 0.0;
  double qps_ok = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;

  /// Tail-latency attribution (schema v2): the queue/batch/exec/retry phase
  /// shares of the p99 completion, summing to p99_us within rounding. Gated
  /// by the comparator so a regression shows *where* the tail moved.
  double p99_queue_us = 0.0;
  double p99_batch_us = 0.0;
  double p99_exec_us = 0.0;
  double p99_retry_us = 0.0;

  /// Device-cost attribution (schema v3; serialized only when the run
  /// attributed anything, so records from builds without attribution stay
  /// byte-identical). `device_cycles_total` is the exact fold of every
  /// completion's attributed cycles in completion order — the conservation
  /// invariant the comparator and tools/check_trace.py both re-verify.
  double device_cycles_total = 0.0;
  double fault_device_cycles_total = 0.0;
  std::uint64_t launches_total = 0;

  /// Per-tenant usage rollups (schema v3; serialized when non-empty).
  std::vector<ServeTenant> tenants;

  /// Informational metrics (serialized when non-empty, never compared).
  /// Unlike the BENCH serializer — which silently reroutes — the serve
  /// serializer *rejects* wall-derived keys here and in `params` (throws
  /// std::invalid_argument naming the key): serve records are pure virtual-
  /// time artifacts, so a wall-derived key is a bug at the producer, not a
  /// routing problem.
  std::map<std::string, double> extra;

  /// Wall-clock-derived metrics, serialized as `"extra_volatile"` (only when
  /// non-empty) so byte-stability tooling can strip them structurally.
  std::map<std::string, double> volatile_extra;

  /// Telemetry time-series (schema v2; serialized when non-empty).
  std::vector<ServeSeries> telemetry;

  /// Identity within a suite: "scenario|k=v,k=v".
  std::string key() const;
};

/// All measurements one registered suite produced in one run, written as one
/// `BENCH_<suite>.json` file.
struct SuiteResult {
  std::string suite;   ///< Registry name, also the JSON file stem.
  std::string figure;  ///< Paper anchor ("Figure 5", "Table I", "—").
  std::vector<Measurement> measurements;
  /// Serving-scenario records, written as a separate `SERVE_<suite>.json`
  /// file (never part of the BENCH JSON — BENCH bytes stay untouched for
  /// suites that don't serve).
  std::vector<ServeRecord> serve;
};

/// Serialize to the schema-versioned JSON document (stable field order and
/// number formatting, so identical results are byte-identical files).
std::string to_json(const SuiteResult& result);

/// Parse a document produced by `to_json`. Throws std::runtime_error on
/// malformed JSON, missing required fields, or a schema-version mismatch.
SuiteResult parse_result_json(const std::string& text);

/// Write `to_json(result)` to `<dir>/BENCH_<suite>.json`, creating `dir` if
/// needed. Returns the path written. Throws std::runtime_error on I/O error.
std::string write_result_file(const SuiteResult& result,
                              const std::string& dir);

/// Read and parse one result file. Throws std::runtime_error on I/O or
/// parse/schema failure.
SuiteResult load_result_file(const std::string& path);

/// Serialize the suite's serving records to the schema-versioned SERVE JSON
/// document (stable field order and number formatting).
std::string to_serve_json(const SuiteResult& result);

/// Parse a document produced by `to_serve_json` (fills suite/figure/serve;
/// measurements stay empty). Throws std::runtime_error on malformed JSON,
/// missing fields, or a schema-version mismatch.
SuiteResult parse_serve_json(const std::string& text);

/// Write `to_serve_json(result)` to `<dir>/SERVE_<suite>.json`, creating
/// `dir` if needed. Returns the path written.
std::string write_serve_file(const SuiteResult& result,
                             const std::string& dir);

/// Read and parse one SERVE file. Throws std::runtime_error on I/O or
/// parse/schema failure.
SuiteResult load_serve_file(const std::string& path);

/// Version of the PROF_<suite>.json schema (independent of the result
/// schema; bump on any incompatible layout change). v2 added the
/// `critical_path` and `attribution` sections; v1 files still parse (those
/// sections read back empty).
inline constexpr int kProfileSchemaVersion = 2;

/// Oldest profile schema `parse_profile_json` still accepts.
inline constexpr int kMinProfileSchemaVersion = 1;

/// One suite's profile: the simt::Profiler snapshot taken right after the
/// suite ran with profiling on, written as one `PROF_<suite>.json` file.
struct SuiteProfile {
  std::string suite;  ///< Registry name, also the JSON file stem.
  /// Schema version the file was written under (parse sets it; to_json
  /// always writes the current kProfileSchemaVersion). Lets consumers such
  /// as `nestpar_prof --diff` note an upgraded baseline instead of guessing.
  int schema_version = kProfileSchemaVersion;
  simt::ProfileSnapshot prof;
};

/// Serialize to the schema-versioned profile JSON document (stable field
/// order and number formatting: identical profiles are byte-identical files).
std::string to_json(const SuiteProfile& profile);

/// Parse a document produced by `to_json(SuiteProfile)`. Throws
/// std::runtime_error on malformed JSON, missing required fields, or a
/// schema-version mismatch.
SuiteProfile parse_profile_json(const std::string& text);

/// Write `to_json(profile)` to `<dir>/PROF_<suite>.json`, creating `dir` if
/// needed. Returns the path written. Throws std::runtime_error on I/O error.
std::string write_profile_file(const SuiteProfile& profile,
                               const std::string& dir);

/// Read and parse one profile file. Throws std::runtime_error on I/O or
/// parse/schema failure.
SuiteProfile load_profile_file(const std::string& path);

/// Comparator configuration: `threshold` is the relative delta above which a
/// deterministic metric counts as a regression (0.05 = 5%).
struct CompareOptions {
  double threshold = 0.05;
};

/// One metric delta between a matched baseline/current record pair.
struct MetricDelta {
  std::string suite;
  std::string key;       ///< Measurement::key() of the matched pair.
  std::string metric;    ///< "cycles", "warp_efficiency", ...
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;  ///< (current - baseline) / max(|baseline|, eps).
  bool regression = false;   ///< Moved the bad way past the threshold.
  bool improvement = false;  ///< Moved the good way past the threshold.
};

/// Result of comparing one suite (or a whole directory of suites).
struct CompareReport {
  std::vector<MetricDelta> deltas;  ///< Only non-zero deltas are recorded.
  int matched = 0;      ///< Record pairs present on both sides.
  int missing = 0;      ///< Baseline records absent from current (regression).
  int added = 0;        ///< Current records absent from baseline (fine).
  bool has_regression() const;
};

/// Match records by Measurement::key() and diff the deterministic metrics.
/// Cycles going *up*, warp efficiency going *down*, device launches going
/// *up*, or new fault-model activity beyond `threshold` count as regressions;
/// improvements and informational extras are reported as plain deltas.
CompareReport compare_results(const SuiteResult& baseline,
                              const SuiteResult& current,
                              const CompareOptions& opt);

/// Match serving records by ServeRecord::key() and diff the outcome metrics.
/// Wrong results, expirations, sheds, retries, breaker trips, fault activity,
/// or latency percentiles going *up* — or Ok count / Ok throughput going
/// *down* — beyond `threshold` count as regressions. The v2 sections gate
/// too: each p99 attribution share going up, and any telemetry series whose
/// sample count, max, or mean drifts in *either* direction (the series are
/// bit-stable, so any drift is a determinism or scheduling change).
CompareReport compare_serve(const SuiteResult& baseline,
                            const SuiteResult& current,
                            const CompareOptions& opt);

/// Merge `b` into `a` (summing match counts and concatenating deltas).
void merge_compare_reports(CompareReport& a, const CompareReport& b);

}  // namespace nestpar::bench
