// Self-benchmark: how fast is the *simulator*, in simulated cycles per
// wall-second? Runs a fixed matrix of SSSP relaxation sweeps (power-law and
// regular degree graphs x representative templates) and reports, per point,
// the modeled metrics (deterministic, baseline-gated — so simulator-speed
// work that changes a modeled cycle fails the comparator) alongside wall_us
// and sim_cycles_per_sec (volatile, never compared). Methodology notes:
// "Measuring the simulator itself" in EXPERIMENTS.md; the performance model
// behind the numbers: docs/SIMULATOR.md.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/nested/templates.h"
#include "src/simt/device.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

// The representative template slice: the thread-mapped baseline (cheapest
// trace per edge), a shared-memory LB template (heavy shared-op traffic),
// the optimized CDP template (device-launch heavy), and a consolidation
// template (descriptor buffers + aggregated child grids).
constexpr LoopTemplate kTemplates[] = {
    LoopTemplate::kBaseline,
    LoopTemplate::kDbufShared,
    LoopTemplate::kDparOpt,
    LoopTemplate::kConsBlock,
};

struct Point {
  double cycles = 0.0;
  double warp_efficiency = 0.0;
  std::uint64_t host_launches = 0;
  std::uint64_t device_launches = 0;
  simt::RobustnessCounters robustness;
  double best_wall_us = 0.0;
};

// One (graph, template) point: `reps` full sessions, best-of wall time.
// Modeled metrics are identical across reps (the model-alignment heap makes
// them independent of heap history), so the last report's values stand for
// all of them.
Point run_point(const graph::Csr& g, LoopTemplate tmpl, int reps) {
  using clock = std::chrono::steady_clock;
  Point p;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = clock::now();
    simt::Device dev;
    simt::Session session = dev.session();
    apps::run_sssp(dev, g, 0, tmpl);
    const simt::RunReport rep_out = session.report();
    const auto t1 = clock::now();
    const double wall_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    if (rep == 0 || wall_us < p.best_wall_us) p.best_wall_us = wall_us;
    p.cycles = rep_out.total_cycles;
    p.warp_efficiency = rep_out.aggregate.warp_execution_efficiency();
    p.host_launches = rep_out.aggregate.host_launches;
    p.device_launches = rep_out.aggregate.device_launches;
    p.robustness = rep_out.robustness;
  }
  return p;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const double scale = args.get_double("scale", 1.0);
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const auto nodes = static_cast<std::uint32_t>(20000 * scale);

  bench::banner(
      "Simulator throughput self-benchmark",
      "simulated-cycles/sec of the host-side functional + timing passes; "
      "modeled metrics are baseline-gated, wall numbers are volatile");

  struct Dataset {
    const char* name;
    graph::Csr g;
  };
  const Dataset datasets[] = {
      {"power-law",
       graph::generate_power_law(nodes, 1, 512, 16.0, 42, true)},
      {"uniform", graph::generate_regular(nodes, 16, 42, true)},
  };

  bench::table_header(
      {"dataset", "template", "cycles", "wall-us", "Mcycles/s"});
  for (const Dataset& d : datasets) {
    for (LoopTemplate tmpl : kTemplates) {
      const Point p = run_point(d.g, tmpl, reps);
      const double cps = p.best_wall_us > 0.0
                             ? p.cycles / (p.best_wall_us / 1e6)
                             : 0.0;
      bench::table_row({d.name, std::string(nested::name(tmpl)),
                        bench::fmt(p.cycles, 0), bench::fmt(p.best_wall_us, 0),
                        bench::fmt(cps / 1e6, 1)});

      bench::Measurement m;
      m.tmpl = std::string(nested::name(tmpl));
      m.dataset = d.name;
      m.scale = scale;
      m.cycles = p.cycles;
      m.warp_efficiency = p.warp_efficiency;
      m.host_launches = p.host_launches;
      m.device_launches = p.device_launches;
      m.robustness = p.robustness;
      // Wall-derived: routed to "extra_volatile" (also enforced by name via
      // Measurement::is_wall_derived), never compared.
      m.volatile_extra["wall_us"] = p.best_wall_us;
      m.volatile_extra["sim_cycles_per_sec"] = cps;
      out.measurements.push_back(std::move(m));
    }
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--scale=0.05", "--reps=1"};

const bench::Registration reg{{
    .name = "simulator_throughput",
    .figure = "—",
    .description = "simulator self-benchmark: simulated-cycles per wall-sec",
    .usage =
        "simulator_throughput [--scale=1.0] [--reps=3] [--smoke] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("simulator_throughput")
