// Unified benchmark driver: every bench/*.cpp suite is compiled into this
// binary with NESTPAR_BENCH_COMBINED defined, so their static Registration
// objects populate the registry and this main dispatches over it.
//
//   nestpar_bench --list                 enumerate registered suites
//   nestpar_bench --suite=fig5_sssp ...  run one suite (extra flags forwarded)
//   nestpar_bench --all [--out=DIR]      run every suite, optionally writing
//                                        one BENCH_<suite>.json per suite
//   nestpar_bench --smoke [--out=DIR]    run every suite on its fast smoke
//                                        flags and validate that the emitted
//                                        JSON parses back (CI entry point)
//   nestpar_bench ... --profile          turn on the simt::Profiler for each
//                                        run; with --out=DIR also writes one
//                                        PROF_<suite>.json per suite
//   nestpar_bench ... --verbose|--quiet  raise/lower the stderr log level
//
// Exit codes: 0 success, 1 a suite failed or its JSON failed validation,
// 2 usage or I/O error.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/simt/log.h"
#include "src/simt/profiler.h"

namespace {

namespace bench = nestpar::bench;
namespace simt = nestpar::simt;
namespace slog = nestpar::simt::log;

constexpr const char* kUsage =
    "usage: nestpar_bench (--list | --suite=NAME [suite flags...] |\n"
    "                      --all | --smoke) [--out=DIR] [--profile]\n"
    "                     [--verbose | --quiet]\n"
    "  --list        list registered suites and their paper anchors\n"
    "  --suite=NAME  run one suite; remaining flags are forwarded to it\n"
    "  --all         run every registered suite with default flags\n"
    "  --smoke       run every suite with its fast smoke flags and validate\n"
    "                the JSON it produces round-trips through the parser\n"
    "  --out=DIR     write BENCH_<suite>.json for each suite run to DIR\n"
    "  --profile     collect load-imbalance/warp/nesting distributions (the\n"
    "                simt::Profiler; also via NESTPAR_PROFILE=1) and, with\n"
    "                --out=DIR, write PROF_<suite>.json per suite\n"
    "  --verbose     show info/debug diagnostics on stderr\n"
    "  --quiet       suppress warnings (errors still print)";

void list_suites() {
  std::printf("%-24s %-22s %s\n", "suite", "figure", "description");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const bench::SuiteSpec& s : bench::Registry::instance().suites()) {
    std::printf("%-24s %-22s %s\n", std::string(s.name).c_str(),
                std::string(s.figure).c_str(),
                std::string(s.description).c_str());
  }
}

// Materializes a suite's compile-time smoke flags as forwardable arguments.
std::vector<std::string> smoke_args(const bench::SuiteSpec& spec) {
  return {spec.smoke_flags.begin(), spec.smoke_flags.end()};
}

// Runs one suite on the given flags. Writes DIR/BENCH_<suite>.json when
// out_dir is set; when validate is set, additionally re-parses the JSON and
// checks the record count survived the round trip. When profiling is on, the
// profiler is reset before the run and its snapshot written as
// DIR/PROF_<suite>.json afterwards, so each suite gets its own profile.
int run_suite(const bench::SuiteSpec& spec,
              const std::vector<std::string>& flags,
              const std::string& out_dir, bool validate) {
  const std::string name(spec.name);
  const bench::Args args(flags, spec.usage);
  if (simt::Profiler::enabled()) simt::Profiler::instance().reset();
  bench::SuiteResult result;
  const int rc = spec.run(args, result);
  result.suite = spec.name;
  result.figure = spec.figure;
  if (rc != 0) {
    slog::error("suite '%s' failed (exit %d)\n", name.c_str(), rc);
    return 1;
  }
  try {
    if (validate) {
      const std::string text = bench::to_json(result);
      const bench::SuiteResult parsed = bench::parse_result_json(text);
      if (parsed.suite != result.suite ||
          parsed.measurements.size() != result.measurements.size()) {
        slog::error("suite '%s': JSON round-trip mismatch\n", name.c_str());
        return 1;
      }
      if (!result.serve.empty()) {
        const bench::SuiteResult sparsed =
            bench::parse_serve_json(bench::to_serve_json(result));
        if (sparsed.suite != result.suite ||
            sparsed.serve.size() != result.serve.size()) {
          slog::error("suite '%s': serve JSON round-trip mismatch\n",
                      name.c_str());
          return 1;
        }
      }
      std::printf("[smoke] %s: %zu records, JSON ok\n", name.c_str(),
                  result.measurements.size());
    }
    if (!out_dir.empty()) {
      const std::string path = bench::write_result_file(result, out_dir);
      std::printf("[out] wrote %s\n", path.c_str());
      if (!result.serve.empty()) {
        const std::string spath = bench::write_serve_file(result, out_dir);
        std::printf("[out] wrote %s\n", spath.c_str());
      }
      if (simt::Profiler::enabled()) {
        bench::SuiteProfile profile;
        profile.suite = name;
        profile.prof = simt::Profiler::instance().snapshot();
        const std::string ppath = bench::write_profile_file(profile, out_dir);
        std::printf("[out] wrote %s\n", ppath.c_str());
      }
    }
  } catch (const std::runtime_error& e) {
    slog::error("suite '%s': %s\n", name.c_str(), e.what());
    return validate ? 1 : 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool all = false;
  bool smoke = false;
  std::string suite;
  std::string out_dir;
  std::vector<std::string> forwarded;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", kUsage);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--profile") {
      simt::Profiler::set_enabled(true);
    } else if (arg == "--verbose") {
      slog::set_level(slog::Level::kDebug);
    } else if (arg == "--quiet") {
      slog::set_level(slog::Level::kError);
    } else if (arg.rfind("--suite=", 0) == 0) {
      suite = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(6);
    } else {
      forwarded.push_back(arg);
    }
  }

  if (list) {
    list_suites();
    return 0;
  }
  if (!suite.empty()) {
    const bench::SuiteSpec* spec = bench::Registry::instance().find(suite);
    if (spec == nullptr) {
      slog::error("suite '%s' is not registered; --list shows all\n",
                  suite.c_str());
      return 2;
    }
    return run_suite(*spec, smoke ? smoke_args(*spec) : forwarded, out_dir,
                     smoke);
  }
  if (all || smoke) {
    if (!forwarded.empty()) {
      slog::error("unexpected argument '%s' (suite flags need "
                  "--suite=NAME)\n%s\n",
                  forwarded.front().c_str(), kUsage);
      return 2;
    }
    int worst = 0;
    for (const bench::SuiteSpec& spec : bench::Registry::instance().suites()) {
      std::printf("\n### %s\n", std::string(spec.name).c_str());
      slog::debug("[bench] starting suite '%s'\n",
                  std::string(spec.name).c_str());
      const int rc = run_suite(
          spec, smoke ? smoke_args(spec) : std::vector<std::string>{}, out_dir,
          smoke);
      if (rc > worst) worst = rc;
    }
    return worst;
  }
  slog::error("%s\n", kUsage);
  return 2;
}
