// Figure 9: recursive BFS — slowdown of the GPU code variants over the
// recursive serial CPU code on random graphs with uniformly distributed
// outdegree. The paper's findings: flat GPU is 11-14x FASTER than the
// recursive CPU code (reported here as a slowdown < 1), while both recursive
// GPU variants are orders of magnitude slower (700-14,000x on the paper's
// testbed); one extra stream per block helps rec-naive and hurts rec-hier;
// the recursive CPU beats the iterative CPU by 1.25-3.3x.
//
// Scale note (DESIGN.md): defaults use 12,500 nodes and outdegree ranges up
// to [0,256] so the bench runs in tens of seconds; --nodes / --max-range
// raise it toward the paper's 50,000 nodes and [0,~1088].
#include <cstdio>

#include "bench_util.h"
#include "src/apps/bfs.h"
#include "src/graph/generators.h"

using namespace nestpar;
using rec::RecTemplate;

namespace {

int run(const bench::Args& args, bench::SuiteResult& out) {
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 12500));
  const auto max_range = static_cast<std::uint32_t>(
      args.get_int("max-range", 256));

  bench::banner(
      "Figure 9 - recursive BFS: slowdown over recursive serial CPU "
      "(random graphs, " + std::to_string(nodes) + " nodes)",
      "flat GPU < 1 (i.e., faster than CPU); rec-naive and rec-hier >> 1 "
      "(hundreds to thousands); +1 stream/block helps rec-naive, hurts "
      "rec-hier; recursive CPU beats iterative CPU 1.25-3.3x");

  bench::table_header({"outdeg-range", "edges", "cpu-rec/iter", "flat",
                       "naive", "naive-str", "hier", "hier-str"});
  for (std::uint32_t range = 32; range <= max_range; range *= 2) {
    const graph::Csr g =
        graph::generate_uniform_random(nodes, 0, range, 20150707);
    const std::uint32_t src = bench::first_active_source(g);

    simt::CpuTimer cpu_rec, cpu_iter;
    apps::bfs_serial_recursive(g, src, &cpu_rec);
    apps::bfs_serial_iterative(g, src, &cpu_iter);
    const double ref_us = cpu_rec.us();

    const auto record = [&](const std::string& tmpl, int streams,
                            const simt::RunReport& rep) {
      bench::Measurement m = bench::Measurement::from_report(rep);
      m.tmpl = tmpl;
      m.dataset = "uniform-random";
      m.scale = static_cast<double>(nodes);
      m.params["outdeg_range"] = range;
      m.params["streams_per_block"] = streams;
      // Cross-model ratio built on the ASLR-sensitive CPU model: volatile.
      m.volatile_extra["cpu_slowdown"] = rep.total_us / ref_us;
      out.measurements.push_back(std::move(m));
    };

    const auto slowdown = [&](RecTemplate t, int streams) {
      simt::Device dev;
      simt::Session session = dev.session();
      apps::BfsRecOptions opt;
      opt.streams_per_block = streams;
      apps::bfs_recursive_gpu(dev, g, src, t, opt);
      const simt::RunReport rep = session.report();
      record(std::string(rec::name(t)), streams, rep);
      return rep.total_us / ref_us;
    };

    simt::Device dev;
    simt::Session session = dev.session();
    apps::bfs_flat_gpu(dev, g, src);
    const simt::RunReport flat_rep = session.report();
    const double flat_slowdown = flat_rep.total_us / ref_us;
    record("flat", 1, flat_rep);

    bench::table_row({"[0," + std::to_string(range) + "]",
                      std::to_string(g.num_edges()),
                      bench::fmt(cpu_iter.us() / cpu_rec.us()) + "x",
                      bench::fmt(flat_slowdown) + "x",
                      bench::fmt(slowdown(RecTemplate::kRecNaive, 1), 0) + "x",
                      bench::fmt(slowdown(RecTemplate::kRecNaive, 2), 0) + "x",
                      bench::fmt(slowdown(RecTemplate::kRecHier, 1), 0) + "x",
                      bench::fmt(slowdown(RecTemplate::kRecHier, 2), 0) + "x"});
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--nodes=1000", "--max-range=32"};

const bench::Registration reg{{
    .name = "fig9_recursive_bfs",
    .figure = "Figure 9",
    .description = "recursive BFS slowdown of GPU variants over serial CPU",
    .usage = "fig9_recursive_bfs [--nodes=12500] [--max-range=256] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("fig9_recursive_bfs")
