#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

/// Byte-stable JSON emission helpers and a minimal recursive-descent parser,
/// shared by the results pipeline (bench/results.cpp), the profile writer,
/// the nestpar_prof analyzer, and the structural trace tests. Only what our
/// own emitters produce is required, but the grammar is complete enough for
/// hand-edited baseline files (numbers, strings with escapes, bools, null,
/// arrays, objects, arbitrary whitespace).
namespace nestpar::bench {

/// Shortest round-trip form via std::to_chars, so the same value always
/// serializes to the same bytes. Non-finite doubles collapse to 0.
std::string json_num(double v);
std::string json_num(std::uint64_t v);

/// Quote + escape a string for JSON output.
std::string json_str(const std::string& s);

/// Append `{"k": v, ...}` with sorted keys (std::map order) to `out`.
void append_num_map(std::string& out, const std::map<std::string, double>& m);

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

/// Parse one complete JSON document (trailing content is an error). Throws
/// std::runtime_error naming the byte offset on malformed input.
JsonValue parse_json(const std::string& text);

/// Field lookups with typed errors naming what is missing.
const JsonValue& require(const JsonObject& obj, const std::string& key);
double require_num(const JsonObject& obj, const std::string& key);
std::string require_str(const JsonObject& obj, const std::string& key);

/// Read an optional `{"k": number, ...}` field; absent -> empty map, present
/// but mistyped -> std::runtime_error.
std::map<std::string, double> num_map(const JsonObject& obj,
                                      const std::string& key);

/// Missing-key-tolerant integer lookup in a parsed number map.
std::uint64_t opt_u64(const std::map<std::string, double>& m,
                      const std::string& key);

}  // namespace nestpar::bench
