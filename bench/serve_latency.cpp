// Serving-layer latency/robustness bench: drive the src/serve runtime with a
// deterministic open-loop query stream at two load points — "steady" (the
// configured arrival rate) and "overload" (8x, forcing admission control to
// shed) — and record throughput, latency percentiles, and every robustness
// counter (retries, hedges, breaker trips, sheds, injected faults).
//
// Chaos runs: set NESTPAR_FAULTS (or --faults=SPEC) to inject transient
// launch faults; the fault rates become part of each record's identity, so
// chaos records never collide with the clean baselines the comparator gates.
// Under any rate, every query must end Ok, Expired, or Shed — an Ok result
// that fails verification against the serial references counts in `wrong`
// and fails the suite.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/serve/pool.h"
#include "src/serve/server.h"
#include "src/simt/exec_policy.h"
#include "src/simt/log.h"

using namespace nestpar;

namespace {

struct Scenario {
  const char* name;
  double qps;
};

std::vector<bench::ServeSeries> to_series(const serve::Telemetry& telemetry) {
  std::vector<bench::ServeSeries> out;
  out.reserve(telemetry.series().size());
  for (const serve::TimeSeries& ts : telemetry.series()) {
    bench::ServeSeries s;
    s.name = ts.name;
    s.unit = ts.unit;
    s.points.reserve(ts.points.size());
    for (const serve::TimePoint& p : ts.points) {
      s.points.emplace_back(p.t_us, p.value);
    }
    out.push_back(std::move(s));
  }
  return out;
}

bench::ServeRecord to_record(const serve::ServeStats& s) {
  bench::ServeRecord r;
  r.submitted = s.submitted;
  r.ok = s.ok;
  r.expired = s.expired;
  r.shed = s.shed;
  r.wrong = s.wrong;
  r.attempts = s.attempts;
  r.retries = s.retries;
  r.hedges = s.hedges;
  r.batches = s.batches;
  r.probes = s.probes;
  r.breaker_trips = s.breaker_trips;
  r.faults_injected = s.faults_injected;
  r.degraded = s.degraded;
  r.makespan_us = s.makespan_us;
  r.qps_ok = s.qps_ok;
  r.p50_us = s.p50_us;
  r.p95_us = s.p95_us;
  r.p99_us = s.p99_us;
  r.mean_us = s.mean_us;
  r.max_us = s.max_us;
  r.p99_queue_us = s.p99_queue_us;
  r.p99_batch_us = s.p99_batch_us;
  r.p99_exec_us = s.p99_exec_us;
  r.p99_retry_us = s.p99_retry_us;
  r.device_cycles_total = s.device_cycles_total;
  r.fault_device_cycles_total = s.fault_device_cycles_total;
  r.launches_total = s.launches_total;
  return r;
}

std::vector<bench::ServeTenant> to_tenants(
    const std::vector<serve::TenantUsage>& usage) {
  std::vector<bench::ServeTenant> out;
  out.reserve(usage.size());
  for (const serve::TenantUsage& u : usage) {
    bench::ServeTenant t;
    t.tenant = u.tenant;
    t.requests = u.requests;
    t.ok = u.ok;
    t.launches = u.launches;
    t.retries = u.retries;
    t.device_cycles = u.device_cycles;
    t.fault_device_cycles = u.fault_device_cycles;
    out.push_back(t);
  }
  return out;
}

int run(const bench::Args& args, bench::SuiteResult& out) {
  const auto requests = static_cast<int>(args.get_int("requests", 400));
  const double qps = args.get_double("qps", 3000.0);

  serve::ServeConfig cfg;
  cfg.num_shards = static_cast<int>(args.get_int("shards", 4));
  cfg.queue_capacity = static_cast<int>(args.get_int("queue", 24));
  cfg.batch_max = static_cast<int>(args.get_int("batch", 8));
  cfg.batch_linger_us = args.get_double("linger-us", 200.0);
  cfg.deadline_us = args.get_double("deadline-us", 150000.0);
  cfg.max_attempts = static_cast<int>(args.get_int("attempts", 3));
  cfg.hedge = !args.get_flag("no-hedge");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  cfg.num_tenants = static_cast<int>(args.get_int("tenants", 4));
  // Observability knobs. The interval is deliberately NOT a record param:
  // changing how often we *observe* must never re-key a record, and the
  // series themselves are gated per-name by the comparator.
  cfg.metrics_interval_us = args.get_double("metrics-interval-us", 1000.0);
  cfg.tmpl = nested::parse_loop_template(args.get_string("tmpl", "cons-grid"));
  const std::string faults_spec = args.get_string("faults", "");
  cfg.faults = faults_spec.empty() ? simt::FaultConfig::from_env()
                                   : simt::FaultConfig::parse(faults_spec);

  serve::PoolSpec pspec;
  pspec.num_graphs = static_cast<int>(args.get_int("graphs", 4));
  pspec.scale = args.get_double("scale", 1.0);
  pspec.seed = cfg.seed ^ 0x700full;

  bench::banner(
      "serving-layer latency under load and chaos (src/serve)",
      "not in the paper: serving extension. Steady load should complete "
      "nearly every query Ok within deadline; 8x overload must shed (bounded "
      "queues, oldest first) instead of melting p99; injected faults must "
      "cost retries/trips, never wrong data.");

  const serve::SubgraphPool pool(pspec);
  const Scenario scenarios[] = {{"steady", qps}, {"overload", qps * 8.0}};

  bench::table_header({"scenario", "ok", "expired", "shed", "retries",
                       "trips", "p50-us", "p99-us", "qps-ok"});
  int rc = 0;
  for (const Scenario& sc : scenarios) {
    const std::vector<serve::Request> workload =
        serve::make_open_loop_workload(pool, cfg, requests, sc.qps);
    serve::Server server(cfg, pool, simt::ExecPolicy::from_env());
    const serve::ServeStats stats = server.run(workload);

    bench::table_row({sc.name, std::to_string(stats.ok),
                      std::to_string(stats.expired),
                      std::to_string(stats.shed),
                      std::to_string(stats.retries),
                      std::to_string(stats.breaker_trips),
                      bench::fmt(stats.p50_us, 0), bench::fmt(stats.p99_us, 0),
                      bench::fmt(stats.qps_ok, 0)});

    bench::ServeRecord rec = to_record(stats);
    rec.tenants = to_tenants(server.tenant_usage());
    rec.telemetry = to_series(server.telemetry());
    rec.scenario = sc.name;
    rec.params["requests"] = requests;
    rec.params["qps"] = sc.qps;
    rec.params["shards"] = cfg.num_shards;
    rec.params["queue"] = cfg.queue_capacity;
    rec.params["batch"] = cfg.batch_max;
    rec.params["deadline_us"] = cfg.deadline_us;
    rec.params["attempts"] = cfg.max_attempts;
    rec.params["hedge"] = cfg.hedge ? 1.0 : 0.0;
    rec.params["tenants"] = cfg.num_tenants;
    rec.params["scale"] = pspec.scale;
    rec.params["graphs"] = pspec.num_graphs;
    rec.params["fault_launch"] = cfg.faults.device_launch_rate;
    rec.params["fault_host"] = cfg.faults.host_launch_rate;
    out.serve.push_back(std::move(rec));

    if (stats.wrong > 0) {
      simt::log::error("FAIL: %llu Ok result(s) failed verification in "
                       "scenario '%s'\n",
                       static_cast<unsigned long long>(stats.wrong), sc.name);
      rc = 1;
    }
    if (stats.ok + stats.expired + stats.shed != stats.submitted) {
      simt::log::error("FAIL: request accounting broken in scenario '%s'\n",
                       sc.name);
      rc = 1;
    }
  }
  return rc;
}

// --qps=8000/--queue=6 keep the overload scenario honest at smoke scale: at
// lower rates 80 tiny-graph requests never outrun three shards, nothing
// sheds, and the admission-control path would go ungated in CI.
constexpr const char* kSmokeFlags[] = {"--requests=80", "--qps=8000",
                                       "--shards=3", "--queue=6",
                                       "--scale=0.2", "--graphs=3"};

const bench::Registration reg{{
    .name = "serve_latency",
    .figure = "— (serving extension)",
    .description = "request serving: deadlines/retries/breakers under chaos",
    .usage =
        "usage: serve_latency [--requests=N] [--qps=Q] [--shards=N]\n"
        "  [--queue=N] [--batch=N] [--linger-us=X] [--deadline-us=X]\n"
        "  [--attempts=N] [--no-hedge] [--tmpl=NAME] [--graphs=N]\n"
        "  [--scale=F] [--seed=N] [--tenants=N] [--metrics-interval-us=X]\n"
        "  [--faults=SPEC]\n"
        "  [--out=DIR]\n"
        "  --requests=N     queries per scenario (default 400)\n"
        "  --qps=Q          steady arrival rate (overload runs 8x; def 3000)\n"
        "  --shards=N       simulated devices (default 4)\n"
        "  --queue=N        per-shard queue capacity (default 24)\n"
        "  --batch=N        max queries per consolidated dispatch (default 8)\n"
        "  --linger-us=X    partial-batch linger window (default 200)\n"
        "  --deadline-us=X  per-query budget (default 150000)\n"
        "  --attempts=N     execution attempts per query (default 3)\n"
        "  --no-hedge       back off in place instead of sibling re-dispatch\n"
        "  --tmpl=NAME      loop template for query execution (cons-grid)\n"
        "  --graphs=N       subgraph pool size (default 4)\n"
        "  --scale=F        subgraph size scale (default 1.0)\n"
        "  --seed=N         workload seed (default 2026)\n"
        "  --tenants=N      tenants the workload spreads over (default 4)\n"
        "  --metrics-interval-us=X  telemetry sampling tick in virtual us\n"
        "                   (default 1000; 0 disables the series)\n"
        "  --faults=SPEC    fault injection (NESTPAR_FAULTS syntax; default\n"
        "                   from the environment)\n"
        "  --out=DIR        write BENCH_/SERVE_serve_latency.json to DIR",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("serve_latency")
