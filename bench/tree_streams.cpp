// §III.C streams paragraph (text-only in the paper, no figure): "we have
// tested the use of multiple streams on tree traversal. This optimization
// increases the performance of the naive recursive parallelization template.
// However, the performance improvement is in this case more moderate than in
// graph traversal. ... The use of multiple streams does not have a
// significant effect on the hierarchical recursive parallelization template,
// which has a good GPU utilization even with a single stream and remains the
// preferred solution."
#include <cstdio>

#include "bench_util.h"
#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

using namespace nestpar;
using rec::RecTemplate;
using rec::TreeAlgo;

namespace {

int run(const bench::Args& args, bench::SuiteResult& out) {
  const int depth = static_cast<int>(args.get_int("depth", 3));
  const int max_out = static_cast<int>(args.get_int("max-outdegree", 64));

  bench::banner(
      "Tree traversal with extra per-block streams (section III.C text)",
      "extra streams change rec-naive moderately and rec-hier barely; "
      "rec-hier remains the preferred recursive solution either way");

  bench::table_header({"outdegree", "naive-1s-us", "naive-2s-us", "gain",
                       "hier-1s-us", "hier-2s-us", "gain"});
  for (int d = 8; d <= max_out; d *= 2) {
    const tree::Tree tr =
        tree::generate_tree({.depth = depth, .outdegree = d, .sparsity = 0},
                            20150707);
    const auto run_one = [&](RecTemplate t, int streams) {
      simt::Device dev;
      rec::RecOptions opt;
      opt.streams_per_block = streams;
      const rec::TreeRunResult r = rec::run_tree_traversal(
          dev, tr,
          {.algo = TreeAlgo::kDescendants, .tmpl = t, .opt = opt,
           .policy = dev.exec_policy()});
      bench::Measurement m = bench::Measurement::from_report(r.report);
      m.tmpl = std::string(rec::name(t));
      m.dataset = "tree";
      m.params["depth"] = depth;
      m.params["outdegree"] = d;
      m.params["streams_per_block"] = streams;
      out.measurements.push_back(std::move(m));
      return r.report.total_us;
    };
    const double n1 = run_one(RecTemplate::kRecNaive, 1);
    const double n2 = run_one(RecTemplate::kRecNaive, 2);
    const double h1 = run_one(RecTemplate::kRecHier, 1);
    const double h2 = run_one(RecTemplate::kRecHier, 2);
    bench::table_row({std::to_string(d), bench::fmt(n1, 0), bench::fmt(n2, 0),
                      bench::fmt(n1 / n2) + "x", bench::fmt(h1, 0),
                      bench::fmt(h2, 0), bench::fmt(h1 / h2) + "x"});
  }
  return 0;
}

constexpr const char* kSmokeFlags[] = {"--depth=2", "--max-outdegree=16"};

const bench::Registration reg{{
    .name = "tree_streams",
    .figure = "§III.C streams",
    .description = "per-block extra streams on recursive tree traversal",
    .usage = "tree_streams [--depth=3] [--max-outdegree=64] [--out=DIR]",
    .smoke_flags = kSmokeFlags,
    .run = &run,
}};

}  // namespace

NESTPAR_BENCH_MAIN("tree_streams")
