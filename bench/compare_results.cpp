// Regression comparator for BENCH_<suite>.json and SERVE_<suite>.json
// result files.
//
//   compare_results --baseline=PATH --current=PATH [--threshold=0.05]
//                   [--json]
//
// Each PATH is either one result file or a directory of BENCH_*.json (and
// optionally SERVE_*.json) files. BENCH records are matched by (suite,
// template, dataset, scale, params), SERVE records by (suite, scenario,
// params), and the deterministic metrics diffed; a relative delta in the bad
// direction beyond the threshold — or a baseline record that disappeared —
// is a regression.
// Deltas past the threshold in the *good* direction are reported as
// improvements. `--json` replaces the human-readable report with a single
// JSON document on stdout, for CI annotation.
//
// Exit codes: 0 no regressions, 1 regressions found, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "json.h"
#include "results.h"
#include "src/simt/log.h"

namespace {

namespace fs = std::filesystem;
namespace bench = nestpar::bench;
namespace slog = nestpar::simt::log;

constexpr const char* kUsage =
    "usage: compare_results --baseline=PATH --current=PATH "
    "[--threshold=0.05] [--json]\n"
    "  PATH is a BENCH_<suite>.json file or a directory of them";

// Loads one file, or every BENCH_*.json inside a directory, keyed by suite.
// A lone SERVE_*.json file path loads as a serve-only result.
std::map<std::string, bench::SuiteResult> load(const std::string& path) {
  std::map<std::string, bench::SuiteResult> by_suite;
  std::vector<std::string> files;
  if (fs::is_directory(path)) {
    for (const fs::directory_entry& e : fs::directory_iterator(path)) {
      const std::string name = e.path().filename().string();
      if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        files.push_back(e.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  for (const std::string& f : files) {
    const std::string name = fs::path(f).filename().string();
    bench::SuiteResult r = name.rfind("SERVE_", 0) == 0
                               ? bench::load_serve_file(f)
                               : bench::load_result_file(f);
    if (by_suite.count(r.suite)) {
      throw std::runtime_error("duplicate suite '" + r.suite + "' in " + path);
    }
    by_suite.emplace(r.suite, std::move(r));
  }
  if (by_suite.empty()) {
    throw std::runtime_error("no BENCH_*.json files found in " + path);
  }
  return by_suite;
}

// Folds every SERVE_*.json in a directory into the already-loaded suites
// (matching by suite name; a serve file without a BENCH sibling gets its own
// entry). Absence of serve files is fine — most suites don't serve.
void load_serve_dir(const std::string& path,
                    std::map<std::string, bench::SuiteResult>& by_suite) {
  if (!fs::is_directory(path)) return;
  std::vector<std::string> files;
  for (const fs::directory_entry& e : fs::directory_iterator(path)) {
    const std::string name = e.path().filename().string();
    if (e.is_regular_file() && name.rfind("SERVE_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    bench::SuiteResult r = bench::load_serve_file(f);
    const auto it = by_suite.find(r.suite);
    if (it == by_suite.end()) {
      by_suite.emplace(r.suite, std::move(r));
    } else {
      if (!it->second.serve.empty()) {
        throw std::runtime_error("duplicate serve records for suite '" +
                                 r.suite + "' in " + path);
      }
      it->second.serve = std::move(r.serve);
    }
  }
}

void print_json(const bench::CompareReport& total, int missing_suites,
                double threshold, int regressions, int improvements) {
  std::string out = "{\n";
  out += "  \"matched\": " + std::to_string(total.matched) + ",\n";
  out += "  \"missing\": " + std::to_string(total.missing) + ",\n";
  out += "  \"added\": " + std::to_string(total.added) + ",\n";
  out += "  \"missing_suites\": " + std::to_string(missing_suites) + ",\n";
  out += "  \"threshold\": " + bench::json_num(threshold) + ",\n";
  out += "  \"regressions\": " + std::to_string(regressions) + ",\n";
  out += "  \"improvements\": " + std::to_string(improvements) + ",\n";
  out += "  \"deltas\": [";
  for (std::size_t i = 0; i < total.deltas.size(); ++i) {
    const bench::MetricDelta& d = total.deltas[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"suite\": " + bench::json_str(d.suite) +
           ", \"key\": " + bench::json_str(d.key) +
           ", \"metric\": " + bench::json_str(d.metric) +
           ",\n     \"baseline\": " + bench::json_num(d.baseline) +
           ", \"current\": " + bench::json_num(d.current) +
           ", \"rel_delta\": " + bench::json_num(d.rel_delta) +
           ", \"regression\": " + (d.regression ? "true" : "false") +
           ", \"improvement\": " + (d.improvement ? "true" : "false") + "}";
  }
  out += "\n  ]\n}\n";
  std::fputs(out.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double threshold = 0.05;
  bool json_output = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", kUsage);
      return 0;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--current=", 0) == 0) {
      current_path = arg.substr(10);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(12));
    } else if (arg == "--json") {
      json_output = true;
    } else {
      slog::error("unknown argument '%s'\n%s\n", arg.c_str(), kUsage);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    slog::error("%s\n", kUsage);
    return 2;
  }

  std::map<std::string, bench::SuiteResult> baseline;
  std::map<std::string, bench::SuiteResult> current;
  try {
    baseline = load(baseline_path);
    current = load(current_path);
    load_serve_dir(baseline_path, baseline);
    load_serve_dir(current_path, current);
  } catch (const std::runtime_error& e) {
    slog::error("error: %s\n", e.what());
    return 2;
  }

  bench::CompareOptions opt;
  opt.threshold = threshold;
  bench::CompareReport total;
  int missing_suites = 0;
  for (const auto& [suite, base] : baseline) {
    const auto it = current.find(suite);
    if (it == current.end()) {
      if (!json_output) {
        std::printf("suite %-24s MISSING from current\n", suite.c_str());
      }
      ++missing_suites;
      continue;
    }
    bench::CompareReport rep = bench::compare_results(base, it->second, opt);
    bench::merge_compare_reports(
        rep, bench::compare_serve(base, it->second, opt));
    if (!json_output) {
      std::printf("suite %-24s matched=%d missing=%d added=%d%s\n",
                  suite.c_str(), rep.matched, rep.missing, rep.added,
                  rep.has_regression() ? "  REGRESSION" : "");
    }
    bench::merge_compare_reports(total, rep);
  }
  if (!json_output) {
    for (const auto& [suite, cur] : current) {
      if (!baseline.count(suite)) {
        std::printf("suite %-24s new in current (no baseline)\n",
                    suite.c_str());
      }
    }
  }

  int regressions = 0;
  int improvements = 0;
  for (const bench::MetricDelta& d : total.deltas) {
    if (d.regression) ++regressions;
    if (d.improvement) ++improvements;
    if (!json_output) {
      std::printf("%s %s/%s %s: %g -> %g (%+.2f%%)\n",
                  d.regression     ? "REGRESSION"
                  : d.improvement  ? "IMPROVED  "
                                   : "delta     ",
                  d.suite.c_str(), d.key.c_str(), d.metric.c_str(), d.baseline,
                  d.current, d.rel_delta * 100.0);
    }
  }

  const bool regressed = total.has_regression() || missing_suites > 0;
  if (json_output) {
    print_json(total, missing_suites, threshold, regressions, improvements);
  } else {
    std::printf("\n%d record pairs compared, %d missing, %d added, "
                "%zu metric deltas (%d regression%s, %d improvement%s); "
                "threshold %.1f%% -> %s\n",
                total.matched, total.missing, total.added, total.deltas.size(),
                regressions, regressions == 1 ? "" : "s", improvements,
                improvements == 1 ? "" : "s", threshold * 100.0,
                regressed ? "REGRESSIONS FOUND" : "clean");
  }
  return regressed ? 1 : 0;
}
