// Workload-consolidation template family (cons-warp / cons-block /
// cons-grid): functional equivalence with the serial reference on skewed
// and uniform inputs, engine determinism of the aggregated child grids,
// launch-count collapse versus the dynamic-parallelism templates,
// graceful degradation when the aggregated launch is refused, and the
// checked-in-baseline pins for the Figure-5 head-to-head against
// dpar-naive (fewer modeled cycles, launch-attributed critical-path
// share collapsed below 50%).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "bench/results.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/simt/critpath.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"
#include "src/simt/fault.h"

namespace simt = nestpar::simt;
namespace bench = nestpar::bench;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;

using nested::LoopTemplate;

namespace {

constexpr simt::ExecPolicy kParallel{simt::ExecMode::kParallel, 4};

std::vector<LoopTemplate> cons_templates() {
  return nested::templates_in_family(nested::TemplateFamily::kConsolidation);
}

std::string test_name(const testing::TestParamInfo<LoopTemplate>& info) {
  std::string s(nested::name(info.param));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

// --- registry ------------------------------------------------------------------

TEST(TemplateRegistry, ConsolidationFamilyIsCompleteAndNamed) {
  const auto fam = cons_templates();
  ASSERT_EQ(fam.size(), 3u);
  EXPECT_EQ(nested::name(fam[0]), "cons-warp");
  EXPECT_EQ(nested::name(fam[1]), "cons-block");
  EXPECT_EQ(nested::name(fam[2]), "cons-grid");
  for (const LoopTemplate t : fam) {
    const nested::LoopTemplateDesc& d = nested::describe(t);
    EXPECT_EQ(d.tmpl, t);
    EXPECT_EQ(d.family, nested::TemplateFamily::kConsolidation);
    EXPECT_NE(d.run, nullptr);
    EXPECT_TRUE(d.autotune_default) << d.name;
    EXPECT_EQ(nested::parse_loop_template(std::string(d.name)), t);
  }
  EXPECT_EQ(nested::name(nested::TemplateFamily::kConsolidation),
            "consolidation");
}

TEST(TemplateRegistry, RegistryCoversEveryTemplateExactlyOnce) {
  // Independent enumeration of every LoopTemplate value, so a template added
  // to the enum but not the registry (or registered twice) fails here.
  constexpr LoopTemplate kEveryTemplate[] = {
      LoopTemplate::kBaseline,   LoopTemplate::kBlockMapped,
      LoopTemplate::kWarpMapped, LoopTemplate::kDualQueue,
      LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
      LoopTemplate::kDparNaive,  LoopTemplate::kDparOpt,
      LoopTemplate::kConsWarp,   LoopTemplate::kConsBlock,
      LoopTemplate::kConsGrid,
  };
  const auto all = nested::loop_templates();
  EXPECT_EQ(all.size(), std::size(kEveryTemplate));
  for (const LoopTemplate t : kEveryTemplate) {
    EXPECT_EQ(std::count_if(all.begin(), all.end(),
                            [t](const auto& d) { return d.tmpl == t; }),
              1)
        << nested::name(t);
  }
}

TEST(TemplateRegistry, ConsolidationParamsAreValidated) {
  const auto g = graph::generate_power_law(200, 0, 40, 6.0, 5, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 3);
  simt::Device dev;
  nested::LoopParams p;
  p.cons_buffer_entries = 0;
  EXPECT_THROW(apps::run_spmv(dev, a, x, LoopTemplate::kConsWarp, p),
               std::invalid_argument);
  p = nested::LoopParams{};
  p.cons_min_descriptors = 0;
  EXPECT_THROW(apps::run_spmv(dev, a, x, LoopTemplate::kConsGrid, p),
               std::invalid_argument);
}

// --- functional equivalence ----------------------------------------------------

class ConsCorrectness : public testing::TestWithParam<LoopTemplate> {};

TEST_P(ConsCorrectness, SpmvMatchesSerialOnSkewedInput) {
  // Power-law outdegrees: most rows drain inline, hubs get consolidated.
  const auto g = graph::generate_power_law(2500, 0, 400, 18.0, 11, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 5);
  const auto expect = matrix::spmv_serial(a, x);

  simt::Device dev;
  nested::LoopParams p;
  p.lb_threshold = 32;
  const auto y = apps::run_spmv(dev, a, x, GetParam(), p);
  ASSERT_EQ(y.size(), expect.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expect[i], 1e-3 * (1.0 + std::abs(expect[i])))
        << "row " << i;
  }
}

TEST_P(ConsCorrectness, SpmvMatchesSerialOnUniformInput) {
  // Uniform degrees straddling lbTHRES: roughly half of all rows defer, so
  // the merge-path child walks many similar-sized descriptors per scope.
  const auto g = graph::generate_uniform_random(2000, 8, 56, 13, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 9);
  const auto expect = matrix::spmv_serial(a, x);

  simt::Device dev;
  nested::LoopParams p;
  p.lb_threshold = 32;
  const auto y = apps::run_spmv(dev, a, x, GetParam(), p);
  ASSERT_EQ(y.size(), expect.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expect[i], 1e-3 * (1.0 + std::abs(expect[i])))
        << "row " << i;
  }
}

TEST_P(ConsCorrectness, SsspMatchesDijkstraOnSkewedInput) {
  const auto g = graph::generate_power_law(1000, 1, 250, 14.0, 47, true);
  const auto expect = apps::sssp_serial(g, 0);

  simt::Device dev;
  nested::LoopParams p;
  p.lb_threshold = 32;
  const auto res = apps::run_sssp(dev, g, 0, GetParam(), p);
  ASSERT_EQ(res.dist.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (std::isinf(expect[i])) {
      EXPECT_TRUE(std::isinf(res.dist[i])) << "node " << i;
    } else {
      EXPECT_FLOAT_EQ(res.dist[i], expect[i]) << "node " << i;
    }
  }
}

// --- engine determinism --------------------------------------------------------

TEST_P(ConsCorrectness, SerialAndParallelEnginesAreBitIdentical) {
  const auto g = graph::generate_power_law(1400, 0, 300, 12.0, 73, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 7);

  simt::Device dev;
  std::vector<float> ys(a.rows, 0.0f), yp(a.rows, 0.0f);
  apps::SpmvWorkload ws(a, x.data(), ys.data());
  apps::SpmvWorkload wp(a, x.data(), yp.data());
  nested::LoopParams p;
  p.lb_threshold = 32;
  const nested::RunResult rs = nested::run_nested_loop(
      dev, ws,
      nested::LoopRun{GetParam(), p, simt::ExecPolicy::serial()});
  const nested::RunResult rp =
      nested::run_nested_loop(dev, wp, nested::LoopRun{GetParam(), p,
                                                       kParallel});

  EXPECT_EQ(ys, yp);  // bitwise-equal floats
  EXPECT_EQ(rs.report.total_cycles, rp.report.total_cycles);
  EXPECT_EQ(rs.report.grids, rp.report.grids);
  EXPECT_EQ(rs.report.device_grids, rp.report.device_grids);
  EXPECT_EQ(rs.report.robustness.degraded, rp.report.robustness.degraded);
}

// --- fault-path degradation ----------------------------------------------------

TEST_P(ConsCorrectness, RefusedAggregatedLaunchDegradesInline) {
  const auto g = graph::generate_power_law(1200, 0, 300, 14.0, 29, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 7);
  const auto expect = matrix::spmv_serial(a, x);

  // Depth limit 0 refuses every child grid, so the consolidated launch must
  // fall back to draining the buffered descriptors inline — degraded but
  // correct, and identically so under both host engines.
  simt::DeviceSpec spec;
  spec.limits.max_nesting_depth = 0;
  simt::Device dev(spec);
  dev.set_fault_config(simt::FaultConfig{});
  simt::RunReport reports[2];
  int i = 0;
  for (const simt::ExecPolicy& policy :
       {simt::ExecPolicy::serial(), kParallel}) {
    std::vector<float> y(a.rows, 0.0f);
    apps::SpmvWorkload w(a, x.data(), y.data());
    nested::LoopParams p;
    p.lb_threshold = 32;
    const nested::RunResult run =
        nested::run_nested_loop(dev, w, nested::LoopRun{GetParam(), p,
                                                        policy});
    reports[i++] = run.report;
    EXPECT_GT(run.report.robustness.refused_depth, 0u);
    EXPECT_GT(run.report.robustness.degraded, 0u);
    EXPECT_EQ(run.report.device_grids, 0u);
    ASSERT_EQ(y.size(), expect.size());
    for (std::size_t r = 0; r < y.size(); ++r) {
      EXPECT_NEAR(y[r], expect[r], 1e-3 * (1.0 + std::abs(expect[r])))
          << "row " << r;
    }
  }
  EXPECT_EQ(reports[0].total_cycles, reports[1].total_cycles);
  EXPECT_EQ(reports[0].robustness.refused_depth,
            reports[1].robustness.refused_depth);
  EXPECT_EQ(reports[0].robustness.degraded, reports[1].robustness.degraded);
}

INSTANTIATE_TEST_SUITE_P(Family, ConsCorrectness,
                         testing::ValuesIn(cons_templates()), test_name);

// --- injected transient faults -------------------------------------------------

// Named *Fault* so the `nestpar_faults` ctest entry reruns this suite with an
// ambient NESTPAR_FAULTS config on top; the configs pinned here win anyway.
class ConsFaultInjection : public testing::TestWithParam<LoopTemplate> {};

TEST_P(ConsFaultInjection, InjectedLaunchFaultsDegradeByteIdentically) {
  const auto g = graph::generate_power_law(1500, 0, 350, 16.0, 37, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 3);
  nested::LoopParams p;
  p.lb_threshold = 32;

  // Clean reference run, faults pinned off.
  simt::Device dev;
  dev.set_fault_config(simt::FaultConfig{});
  std::vector<float> clean(a.rows, 0.0f);
  {
    apps::SpmvWorkload w(a, x.data(), clean.data());
    nested::run_nested_loop(
        dev, w, nested::LoopRun{GetParam(), p, simt::ExecPolicy::serial()});
  }

  // Past the retry budget most of the time: the aggregated child launches
  // get refused and the scopes must drain their descriptors inline — byte
  // identical results, populated robustness counters, and the same on both
  // host engines. The rate is near 1 because cons-grid performs only a
  // handful of aggregated launches — at lower rates its few site hashes
  // can all come up clean and nothing would be exercised.
  simt::FaultConfig fc;
  fc.device_launch_rate = 0.97;
  fc.seed = 41;
  dev.set_fault_config(fc);
  simt::RunReport reports[2];
  int i = 0;
  for (const simt::ExecPolicy& policy :
       {simt::ExecPolicy::serial(), kParallel}) {
    std::vector<float> y(a.rows, 0.0f);
    apps::SpmvWorkload w(a, x.data(), y.data());
    const nested::RunResult run =
        nested::run_nested_loop(dev, w, nested::LoopRun{GetParam(), p,
                                                        policy});
    reports[i++] = run.report;
    EXPECT_GT(run.report.robustness.faults_injected, 0u);
    EXPECT_GT(run.report.robustness.launches_attempted, 0u);
    EXPECT_EQ(y, clean);  // bitwise-equal floats, degraded path included
  }
  // Retries happened (or every refusal degraded); either way the counters
  // must be populated and engine-identical.
  EXPECT_GT(reports[0].robustness.retries + reports[0].robustness.degraded,
            0u);
  EXPECT_EQ(reports[0].total_cycles, reports[1].total_cycles);
  EXPECT_EQ(reports[0].robustness.faults_injected,
            reports[1].robustness.faults_injected);
  EXPECT_EQ(reports[0].robustness.retries, reports[1].robustness.retries);
  EXPECT_EQ(reports[0].robustness.degraded, reports[1].robustness.degraded);
}

TEST_P(ConsFaultInjection, ModerateFaultRateStillAggregates) {
  // At a modest rate the retry budget absorbs most refusals: results stay
  // byte-correct and at least some aggregated children still launch.
  const auto g = graph::generate_power_law(1500, 0, 350, 16.0, 37, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 3);
  nested::LoopParams p;
  p.lb_threshold = 32;

  simt::Device dev;
  dev.set_fault_config(simt::FaultConfig{});
  std::vector<float> clean(a.rows, 0.0f);
  {
    apps::SpmvWorkload w(a, x.data(), clean.data());
    nested::run_nested_loop(
        dev, w, nested::LoopRun{GetParam(), p, simt::ExecPolicy::serial()});
  }

  simt::FaultConfig fc;
  fc.device_launch_rate = 0.1;
  fc.seed = 17;
  dev.set_fault_config(fc);
  std::vector<float> y(a.rows, 0.0f);
  apps::SpmvWorkload w(a, x.data(), y.data());
  const nested::RunResult run = nested::run_nested_loop(
      dev, w, nested::LoopRun{GetParam(), p, simt::ExecPolicy::serial()});
  EXPECT_GT(run.report.robustness.faults_injected, 0u);
  EXPECT_GT(run.report.robustness.retries, 0u);
  EXPECT_GT(run.report.device_grids, 0u)
      << "every aggregated launch was refused at a 10% rate";
  EXPECT_EQ(y, clean);
}

INSTANTIATE_TEST_SUITE_P(Family, ConsFaultInjection,
                         testing::ValuesIn(cons_templates()), test_name);

// --- launch aggregation --------------------------------------------------------

TEST(ConsStructure, AggregationCollapsesDeviceLaunchCounts) {
  const auto g = graph::generate_power_law(4000, 0, 500, 25.0, 99, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 7);

  const auto grids = [&](LoopTemplate t) {
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = 32;
    apps::run_spmv(dev, a, x, t, p);
    return dev.report();
  };

  const simt::RunReport naive = grids(LoopTemplate::kDparNaive);
  ASSERT_GT(naive.device_grids, 100u);
  // cons-grid launches exactly ONE aggregated child for the whole sweep;
  // warp/block scopes launch at most one child per scope, far below the
  // one-per-iteration regime of dpar-naive.
  EXPECT_EQ(grids(LoopTemplate::kConsGrid).device_grids, 1u);
  EXPECT_LT(grids(LoopTemplate::kConsBlock).device_grids,
            naive.device_grids / 4);
  EXPECT_LT(grids(LoopTemplate::kConsWarp).device_grids, naive.device_grids);
}

TEST(ConsStructure, FewDescriptorsDrainInlineWithoutAChildGrid) {
  // Every row sits below lbTHRES: nothing defers, no child grid is spawned,
  // and the run is not marked degraded (thresholding is a policy, not a
  // failure).
  const auto g = graph::generate_regular(512, 8, 3, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 5);
  for (const LoopTemplate t : cons_templates()) {
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = 64;
    apps::run_spmv(dev, a, x, t, p);
    const simt::RunReport rep = dev.report();
    EXPECT_EQ(rep.device_grids, 0u) << nested::name(t);
    EXPECT_EQ(rep.robustness.degraded, 0u) << nested::name(t);
  }
}

// --- checked-in baseline pins (the Figure-5 head-to-head) ----------------------

double launch_share(const simt::CritAttribution& a) {
  return a.total() > 0.0 ? a[simt::CritCategory::kLaunch] / a.total() : 0.0;
}

TEST(ConsBaselines, Fig5LaunchShareCollapsesVersusDparNaive) {
  const std::filesystem::path path =
      std::filesystem::path(NESTPAR_BASELINE_DIR) / "PROF_fig5_sssp.json";
  const bench::SuiteProfile p = bench::load_profile_file(path);
  const auto by_tmpl = simt::attribution_by_template(p.prof.crit_kernels);
  ASSERT_TRUE(by_tmpl.count("dpar-naive"));
  const double naive_share = launch_share(by_tmpl.at("dpar-naive"));
  EXPECT_GT(naive_share, 0.5);

  double best_cons_share = 1.0;
  for (const LoopTemplate t : cons_templates()) {
    const std::string name(nested::name(t));
    ASSERT_TRUE(by_tmpl.count(name)) << name;
    best_cons_share =
        std::min(best_cons_share, launch_share(by_tmpl.at(name)));
  }
  // The whole point of launch aggregation: the critical path is no longer
  // dominated by launch cycles.
  EXPECT_LT(best_cons_share, 0.5);
  EXPECT_LT(best_cons_share, naive_share);
}

TEST(ConsBaselines, Fig5ConsolidationBeatsDparNaiveCycles) {
  const std::filesystem::path path =
      std::filesystem::path(NESTPAR_BASELINE_DIR) / "BENCH_fig5_sssp.json";
  const bench::SuiteResult r = bench::load_result_file(path);
  double naive_best = std::numeric_limits<double>::infinity();
  double cons_best = std::numeric_limits<double>::infinity();
  for (const bench::Measurement& m : r.measurements) {
    if (m.tmpl == "dpar-naive") {
      naive_best = std::min(naive_best, m.cycles);
    }
    for (const LoopTemplate t : cons_templates()) {
      if (m.tmpl == nested::name(t)) {
        cons_best = std::min(cons_best, m.cycles);
      }
    }
  }
  ASSERT_TRUE(std::isfinite(naive_best));
  ASSERT_TRUE(std::isfinite(cons_best));
  EXPECT_LT(cons_best, naive_best);
}

}  // namespace
