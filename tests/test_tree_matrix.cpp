// Tree substrate tests (the paper's synthetic tree generator) and sparse
// matrix substrate tests, plus the CPU cost-model cache simulator.
#include <gtest/gtest.h>

#include "src/matrix/csr_matrix.h"
#include "src/simt/cpu_model.h"
#include "src/tree/tree.h"

namespace t = nestpar::tree;
namespace m = nestpar::matrix;
namespace simt = nestpar::simt;

namespace {

TEST(TreeGen, RegularTreeShape) {
  // depth 2, outdegree 3, sparsity 0: 1 + 3 + 9 = 13 nodes.
  const t::Tree tr = t::generate_tree({.depth = 2, .outdegree = 3}, 1);
  EXPECT_EQ(tr.num_nodes(), 13u);
  EXPECT_EQ(tr.max_level(), 2u);
  EXPECT_NO_THROW(tr.validate());
  EXPECT_EQ(tr.num_children(0), 3u);
  EXPECT_TRUE(tr.is_leaf(12));
}

TEST(TreeGen, DepthZeroIsSingleNode) {
  const t::Tree tr = t::generate_tree({.depth = 0, .outdegree = 5}, 1);
  EXPECT_EQ(tr.num_nodes(), 1u);
  EXPECT_TRUE(tr.is_leaf(0));
}

TEST(TreeGen, RootAlwaysExpands) {
  // Even with extreme sparsity the root has children.
  const t::Tree tr =
      t::generate_tree({.depth = 3, .outdegree = 4, .sparsity = 10}, 2);
  EXPECT_EQ(tr.num_children(0), 4u);
}

TEST(TreeGen, SparsityShrinksTree) {
  const t::Tree dense =
      t::generate_tree({.depth = 4, .outdegree = 8, .sparsity = 0}, 3);
  const t::Tree sparse =
      t::generate_tree({.depth = 4, .outdegree = 8, .sparsity = 2}, 3);
  EXPECT_GT(dense.num_nodes(), sparse.num_nodes());
  EXPECT_NO_THROW(sparse.validate());
}

TEST(TreeGen, SparsityOneHalvesExpansion) {
  // With rho = 1/2, interior nodes expand about half the time.
  const t::Tree tr =
      t::generate_tree({.depth = 2, .outdegree = 10, .sparsity = 1}, 4);
  // Level-1 nodes: 10; expanders ~5; nodes ~ 1 + 10 + ~50.
  EXPECT_GT(tr.num_nodes(), 20u);
  EXPECT_LT(tr.num_nodes(), 111u);
}

TEST(TreeGen, DeterministicInSeed) {
  const t::Tree a =
      t::generate_tree({.depth = 3, .outdegree = 5, .sparsity = 1}, 7);
  const t::Tree b =
      t::generate_tree({.depth = 3, .outdegree = 5, .sparsity = 1}, 7);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.children, b.children);
}

TEST(TreeGen, BfsOrderMeansLevelsMonotone) {
  const t::Tree tr =
      t::generate_tree({.depth = 4, .outdegree = 4, .sparsity = 1}, 9);
  for (std::uint32_t v = 1; v < tr.num_nodes(); ++v) {
    EXPECT_GE(tr.level[v], tr.level[v - 1]);
  }
}

TEST(TreeGen, RejectsBadParams) {
  EXPECT_THROW(t::generate_tree({.depth = -1}, 0), std::invalid_argument);
  EXPECT_THROW(t::generate_tree({.depth = 2, .outdegree = 0}, 0),
               std::invalid_argument);
  EXPECT_THROW(t::generate_tree({.depth = 2, .outdegree = 2, .sparsity = -3},
                                0),
               std::invalid_argument);
}

TEST(TreeValidate, CatchesCorruption) {
  t::Tree tr = t::generate_tree({.depth = 2, .outdegree = 2}, 0);
  tr.parent[3] = 0xdead;
  EXPECT_THROW(tr.validate(), std::invalid_argument);
}

// --- Matrix ------------------------------------------------------------------

TEST(Matrix, FromGraphCopiesStructure) {
  const nestpar::graph::Edge edges[] = {{0, 1, 2.f}, {1, 0, 3.f}, {1, 2, 4.f}};
  const auto g = nestpar::graph::build_csr(3, edges, true);
  const m::CsrMatrix a = m::CsrMatrix::from_graph(g);
  EXPECT_EQ(a.rows, 3u);
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_FLOAT_EQ(a.values[1], 3.0f);
  EXPECT_NO_THROW(a.validate());
}

TEST(Matrix, FromUnweightedGraphGetsUnitValues) {
  const nestpar::graph::Edge edges[] = {{0, 1, 0.f}};
  const auto g = nestpar::graph::build_csr(2, edges, false);
  const m::CsrMatrix a = m::CsrMatrix::from_graph(g);
  EXPECT_FLOAT_EQ(a.values[0], 1.0f);
}

TEST(Matrix, SerialSpmvReference) {
  // [[0 2 0], [3 0 4], [0 0 0]] * [1, 10, 100]
  const nestpar::graph::Edge edges[] = {{0, 1, 2.f}, {1, 0, 3.f}, {1, 2, 4.f}};
  const m::CsrMatrix a =
      m::CsrMatrix::from_graph(nestpar::graph::build_csr(3, edges, true));
  const std::vector<float> x = {1.f, 10.f, 100.f};
  const auto y = m::spmv_serial(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_FLOAT_EQ(y[0], 20.f);
  EXPECT_FLOAT_EQ(y[1], 403.f);
  EXPECT_FLOAT_EQ(y[2], 0.f);
}

TEST(Matrix, SerialSpmvChargesTimer) {
  const nestpar::graph::Edge edges[] = {{0, 1, 2.f}, {1, 0, 3.f}};
  const m::CsrMatrix a =
      m::CsrMatrix::from_graph(nestpar::graph::build_csr(2, edges, true));
  const std::vector<float> x = {1.f, 1.f};
  simt::CpuTimer timer;
  m::spmv_serial(a, x, &timer);
  EXPECT_GT(timer.cycles(), 0.0);
  EXPECT_GT(timer.loads_and_stores(), 0u);
}

TEST(Matrix, SpmvRejectsSizeMismatch) {
  const m::CsrMatrix a = m::CsrMatrix::from_graph(
      nestpar::graph::build_csr(2, std::span<const nestpar::graph::Edge>{}));
  const std::vector<float> x = {1.f};
  EXPECT_THROW(m::spmv_serial(a, x), std::invalid_argument);
}

TEST(Matrix, MakeDenseVectorDeterministic) {
  const auto a = m::make_dense_vector(100, 5);
  const auto b = m::make_dense_vector(100, 5);
  EXPECT_EQ(a, b);
  for (float f : a) {
    EXPECT_GE(f, 0.5f);
    EXPECT_LT(f, 1.5f);
  }
}

// --- CPU cost model ------------------------------------------------------------

TEST(CpuModel, SequentialAccessCheaperThanScattered) {
  std::vector<int> data(1 << 20);
  simt::CpuTimer seq;
  for (int i = 0; i < 65536; ++i) seq.ld(&data[i]);
  simt::CpuTimer scattered;
  for (int i = 0; i < 65536; ++i) {
    scattered.ld(&data[(i * 7919) & ((1 << 20) - 1)]);
  }
  EXPECT_LT(seq.cycles(), scattered.cycles() * 0.5);
}

TEST(CpuModel, CacheHitsAfterWarmup) {
  std::vector<int> small(64);
  simt::CpuTimer t;
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& v : small) t.ld(&v);
  }
  // Second pass should be all hits: misses bounded by one pass worth.
  EXPECT_LE(t.cache_misses(), 64u);
}

TEST(CpuModel, ComputeAndCallCharges) {
  simt::CpuTimer t;
  t.compute(100);
  const double c1 = t.cycles();
  t.call();
  EXPECT_GT(t.cycles(), c1);
  EXPECT_DOUBLE_EQ(c1, 100.0 * t.spec().compute_op_cycles);
}

TEST(CpuModel, ResetClearsState) {
  simt::CpuTimer t;
  int x = 0;
  t.ld(&x);
  t.reset();
  EXPECT_DOUBLE_EQ(t.cycles(), 0.0);
  EXPECT_EQ(t.loads_and_stores(), 0u);
}

TEST(CpuModel, CacheSimRejectsBadConfig) {
  EXPECT_THROW(simt::CacheSim(1024, 48, 4), std::invalid_argument);
  EXPECT_THROW(simt::CacheSim(1024, 64, 0), std::invalid_argument);
}

TEST(CpuModel, UsConversion) {
  simt::CpuTimer t;
  t.compute(2000);
  EXPECT_NEAR(t.us(), 2000.0 / (t.spec().clock_ghz * 1e3), 1e-9);
}

}  // namespace
