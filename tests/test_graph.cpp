// Graph substrate tests: CSR invariants, builders, transpose, generators
// (degree calibration against the paper's dataset statistics), and I/O
// round-trips for the three supported formats.
#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"

namespace g = nestpar::graph;

namespace {

g::Csr diamond() {
  // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3
  const g::Edge edges[] = {{0, 1, 1.f}, {0, 2, 2.f}, {1, 3, 3.f}, {2, 3, 4.f}};
  return g::build_csr(4, edges, /*keep_weights=*/true);
}

TEST(Csr, BuildFromEdgeList) {
  const g::Csr d = diamond();
  EXPECT_EQ(d.num_nodes(), 4u);
  EXPECT_EQ(d.num_edges(), 4u);
  EXPECT_EQ(d.degree(0), 2u);
  EXPECT_EQ(d.degree(3), 0u);
  ASSERT_EQ(d.neighbors(0).size(), 2u);
  EXPECT_EQ(d.neighbors(0)[0], 1u);
  EXPECT_EQ(d.neighbors(0)[1], 2u);
  EXPECT_FLOAT_EQ(d.weights[1], 2.0f);
  EXPECT_NO_THROW(d.validate());
}

TEST(Csr, BuildPreservesPerSourceOrder) {
  const g::Edge edges[] = {{1, 5, 0.f}, {0, 3, 0.f}, {1, 2, 0.f}, {1, 4, 0.f}};
  const g::Csr c = g::build_csr(6, edges);
  ASSERT_EQ(c.degree(1), 3u);
  EXPECT_EQ(c.neighbors(1)[0], 5u);
  EXPECT_EQ(c.neighbors(1)[1], 2u);
  EXPECT_EQ(c.neighbors(1)[2], 4u);
}

TEST(Csr, BuildRejectsOutOfRangeEndpoint) {
  const g::Edge edges[] = {{0, 7, 1.f}};
  EXPECT_THROW(g::build_csr(4, edges), std::invalid_argument);
}

TEST(Csr, ValidateCatchesCorruption) {
  g::Csr c = diamond();
  c.col_indices[0] = 99;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  g::Csr c2 = diamond();
  c2.row_offsets[1] = 3;
  c2.row_offsets[2] = 2;
  EXPECT_THROW(c2.validate(), std::invalid_argument);

  g::Csr c3 = diamond();
  c3.weights.pop_back();
  EXPECT_THROW(c3.validate(), std::invalid_argument);
}

TEST(Csr, TransposeReversesEdges) {
  const g::Csr t = g::transpose(diamond());
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.num_edges(), 4u);
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.degree(3), 2u);
  ASSERT_EQ(t.degree(1), 1u);
  EXPECT_EQ(t.neighbors(1)[0], 0u);
}

TEST(Csr, TransposeIsInvolution) {
  const g::Csr orig = g::generate_uniform_random(200, 0, 10, 7);
  const g::Csr twice = g::transpose(g::transpose(orig));
  EXPECT_EQ(twice.row_offsets, orig.row_offsets);
  // Neighbor multisets per node must match (order may differ).
  for (std::uint32_t v = 0; v < orig.num_nodes(); ++v) {
    auto a = orig.neighbors(v);
    auto b = twice.neighbors(v);
    std::vector<std::uint32_t> av(a.begin(), a.end()), bv(b.begin(), b.end());
    std::sort(av.begin(), av.end());
    std::sort(bv.begin(), bv.end());
    EXPECT_EQ(av, bv) << "node " << v;
  }
}

TEST(Csr, DegreeStats) {
  const auto s = g::degree_stats(diamond());
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 1.0);
}

// --- Generators --------------------------------------------------------------

TEST(Generators, UniformRandomRespectsDegreeBounds) {
  const g::Csr c = g::generate_uniform_random(5000, 3, 17, 42);
  EXPECT_NO_THROW(c.validate());
  const auto s = g::degree_stats(c);
  EXPECT_GE(s.min_degree, 3u);
  EXPECT_LE(s.max_degree, 17u);
  EXPECT_NEAR(s.mean_degree, 10.0, 0.5);
}

TEST(Generators, UniformRandomDeterministicInSeed) {
  const g::Csr a = g::generate_uniform_random(500, 0, 8, 9);
  const g::Csr b = g::generate_uniform_random(500, 0, 8, 9);
  const g::Csr c = g::generate_uniform_random(500, 0, 8, 10);
  EXPECT_EQ(a.col_indices, b.col_indices);
  EXPECT_NE(a.col_indices, c.col_indices);
}

TEST(Generators, RegularGraphHasConstantDegree) {
  const g::Csr c = g::generate_regular(300, 7, 1);
  const auto s = g::degree_stats(c);
  EXPECT_EQ(s.min_degree, 7u);
  EXPECT_EQ(s.max_degree, 7u);
}

TEST(Generators, ParetoCalibrationHitsTargetMean) {
  const double gamma = g::calibrate_pareto_gamma(1, 1188, 73.9);
  EXPECT_GT(gamma, 0.0);
  // The calibrated distribution's mean must be close to the target.
  const g::Csr c = g::generate_power_law(60000, 1, 1188, 73.9, 3);
  const auto s = g::degree_stats(c);
  EXPECT_NEAR(s.mean_degree, 73.9, 73.9 * 0.08);
  EXPECT_GE(s.min_degree, 1u);
  EXPECT_LE(s.max_degree, 1188u);
}

TEST(Generators, PowerLawIsSkewed) {
  const g::Csr c = g::generate_power_law(20000, 1, 1000, 40.0, 5);
  const auto s = g::degree_stats(c);
  // A power law has stddev well above a uniform with the same mean.
  EXPECT_GT(s.stddev_degree, s.mean_degree);
  EXPECT_GT(s.max_degree, 500u);
}

TEST(Generators, CiteseerLikeMatchesPublishedShape) {
  const g::Csr c = g::generate_citeseer_like(0.05, 11);
  EXPECT_NEAR(c.num_nodes(), 434000 * 0.05, 1.0);
  const auto s = g::degree_stats(c);
  EXPECT_NEAR(s.mean_degree, 73.9, 73.9 * 0.12);
  EXPECT_LE(s.max_degree, 1188u);
}

TEST(Generators, WikivoteLikeMatchesPublishedShape) {
  const g::Csr c = g::generate_wikivote_like(1.0, 13);
  EXPECT_EQ(c.num_nodes(), 7115u);
  const auto s = g::degree_stats(c);
  EXPECT_NEAR(s.mean_degree, 14.7, 14.7 * 0.15);
  EXPECT_LE(s.max_degree, 893u);
}

TEST(Generators, RejectBadArguments) {
  EXPECT_THROW(g::generate_uniform_random(0, 0, 5, 1), std::invalid_argument);
  EXPECT_THROW(g::generate_uniform_random(10, 6, 5, 1), std::invalid_argument);
  EXPECT_THROW(g::calibrate_pareto_gamma(10, 20, 25.0), std::invalid_argument);
  EXPECT_THROW(g::generate_citeseer_like(0.0, 1), std::invalid_argument);
}

// --- I/O ---------------------------------------------------------------------

TEST(GraphIo, DimacsRoundTrip) {
  const g::Csr orig = diamond();
  std::stringstream ss;
  g::write_dimacs(ss, orig);
  const g::Csr back = g::load_dimacs(ss);
  EXPECT_EQ(back.row_offsets, orig.row_offsets);
  EXPECT_EQ(back.col_indices, orig.col_indices);
  EXPECT_EQ(back.weights, orig.weights);
}

TEST(GraphIo, DimacsParsesCommentsAndWeights) {
  std::stringstream ss(
      "c a comment\n"
      "p sp 3 2\n"
      "a 1 2 5.5\n"
      "c interior comment is illegal in strict DIMACS but common\n"
      "a 2 3 1\n");
  const g::Csr c = g::load_dimacs(ss);
  EXPECT_EQ(c.num_nodes(), 3u);
  EXPECT_EQ(c.num_edges(), 2u);
  EXPECT_FLOAT_EQ(c.weights[0], 5.5f);
}

TEST(GraphIo, DimacsRejectsMalformed) {
  std::stringstream no_problem("a 1 2 1\n");
  EXPECT_THROW(g::load_dimacs(no_problem), std::runtime_error);
  std::stringstream bad_node("p sp 2 1\na 1 9 1\n");
  EXPECT_THROW(g::load_dimacs(bad_node), std::runtime_error);
  std::stringstream bad_tag("p sp 2 1\nz 1 2\n");
  EXPECT_THROW(g::load_dimacs(bad_tag), std::runtime_error);
}

TEST(GraphIo, EdgeListRoundTrip) {
  const g::Csr orig = g::generate_uniform_random(50, 0, 5, 21);
  std::stringstream ss;
  g::write_edge_list(ss, orig);
  const g::Csr back = g::load_edge_list(ss);
  // Node count may shrink if trailing nodes have no edges; compare edges.
  EXPECT_EQ(back.num_edges(), orig.num_edges());
}

TEST(GraphIo, EdgeListParsesSnapStyle) {
  std::stringstream ss(
      "# Directed graph\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "3\t0\n");
  const g::Csr c = g::load_edge_list(ss);
  EXPECT_EQ(c.num_nodes(), 4u);
  EXPECT_EQ(c.num_edges(), 2u);
  EXPECT_EQ(c.neighbors(3)[0], 0u);
}

TEST(GraphIo, MatrixMarketGeneral) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "3 3 2\n"
      "1 2 4.0\n"
      "3 1 -1.5\n");
  const g::Csr c = g::load_matrix_market(ss);
  EXPECT_EQ(c.num_nodes(), 3u);
  EXPECT_EQ(c.num_edges(), 2u);
  EXPECT_FLOAT_EQ(c.weights[c.row_offsets[2]], -1.5f);
}

TEST(GraphIo, MatrixMarketSymmetricAndPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const g::Csr c = g::load_matrix_market(ss);
  // Off-diagonal entry mirrored; diagonal not duplicated.
  EXPECT_EQ(c.num_edges(), 3u);
  EXPECT_FLOAT_EQ(c.weights[0], 1.0f);
}

TEST(GraphIo, MatrixMarketRejectsMalformed) {
  std::stringstream bad_header("%%NotMM\n3 3 1\n1 1 1\n");
  EXPECT_THROW(g::load_matrix_market(bad_header), std::runtime_error);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n");
  EXPECT_THROW(g::load_matrix_market(truncated), std::runtime_error);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(g::load_dimacs_file("/nonexistent/path.gr"),
               std::runtime_error);
}

}  // namespace
