// Pins for the simulator's own hot path (docs/SIMULATOR.md): the recycled
// recording storage of arena.h round-trips correctly, and the SoA/arena
// engine reproduces — bit for bit — the metrics the pre-refactor AoS engine
// produced on skewed and uniform graphs. The pinned numbers below were
// captured from the per-lane std::vector<Op> engine immediately before the
// SoA rewrite; equality here is the refactor's cycle-neutrality proof at
// test granularity (the checked-in BENCH_/PROF_ baselines pin it at suite
// granularity).
//
// The EngineDeterminism case also runs under the `nestpar_faults` ctest
// entry (its name matches the *Determinism* filter), which reruns it with an
// ambient NESTPAR_FAULTS config — recycled scratch must stay
// engine-deterministic when launches fail and templates degrade.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/nested/templates.h"
#include "src/simt/arena.h"
#include "src/simt/device.h"

namespace {

namespace simt = nestpar::simt;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace nested = nestpar::nested;

using nested::LoopTemplate;

// ---------------------------------------------------------------------------
// Arena: reuse/reset round-trip.

TEST(SimulatorPerfArena, AllocZeroesAndAligns) {
  simt::Arena arena;
  auto* p = static_cast<char*>(arena.alloc(1000, 8));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % simt::kModelAlignment, 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(p[i], 0) << i;
}

TEST(SimulatorPerfArena, ResetReusesAndRezeroes) {
  simt::Arena arena;
  auto* a = static_cast<char*>(arena.alloc(4096, 128));
  std::memset(a, 0xAB, 4096);
  arena.reset();
  // Same storage comes back (no heap growth across steady-state reuse) and
  // it is zeroed again: blocks must never observe a previous block's shared
  // memory image.
  auto* b = static_cast<char*>(arena.alloc(4096, 128));
  EXPECT_EQ(a, b);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(b[i], 0) << i;
}

TEST(SimulatorPerfArena, DistinctLiveAllocationsDontOverlap) {
  simt::Arena arena;
  auto* a = static_cast<char*>(arena.alloc(256, 128));
  auto* b = static_cast<char*>(arena.alloc(256, 128));
  ASSERT_NE(a, b);
  EXPECT_GE(b, a + 256);
  std::memset(a, 1, 256);
  std::memset(b, 2, 256);
  EXPECT_EQ(a[255], 1);
  EXPECT_EQ(b[0], 2);
}

TEST(SimulatorPerfArena, OversizedRequestGetsOwnChunkAndSurvivesReset) {
  simt::Arena arena;
  // Larger than the 96KB minimum chunk: forces a dedicated chunk.
  constexpr std::size_t kBig = 256 * 1024;
  auto* big = static_cast<char*>(arena.alloc(kBig, 128));
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[kBig - 1] = 1;
  arena.reset();
  auto* again = static_cast<char*>(arena.alloc(kBig, 128));
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again[kBig - 1], 0);
}

// ---------------------------------------------------------------------------
// FlatHist: the atomic-hotspot histogram.

TEST(SimulatorPerfFlatHist, CountsAndMax) {
  simt::FlatHist h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max_count(), 0u);
  for (int i = 0; i < 100; ++i) h.bump(7);
  for (int i = 0; i < 40; ++i) h.bump(1000 + i);  // force growth
  h.add(9, 41);
  EXPECT_EQ(h.max_count(), 100u);
  std::uint64_t total = 0;
  std::uint64_t keys = 0;
  h.for_each([&](std::uint64_t, std::uint64_t c) {
    total += c;
    ++keys;
  });
  EXPECT_EQ(total, 100u + 40u + 41u);
  EXPECT_EQ(keys, 42u);
}

TEST(SimulatorPerfFlatHist, ClearRetainsNothing) {
  simt::FlatHist h;
  h.bump(3);
  h.bump(0);  // the reserved sentinel key still counts
  EXPECT_EQ(h.max_count(), 1u);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max_count(), 0u);
  h.bump(5);
  EXPECT_EQ(h.max_count(), 1u);
}

// ---------------------------------------------------------------------------
// WarpTrace: SoA columns + lane offsets survive growth.

TEST(SimulatorPerfWarpTrace, LaneOffsetsAndColumnsSurviveGrowth) {
  simt::WarpTrace t;
  t.begin_warp();
  constexpr int kLanes = 32;
  constexpr int kOpsPerLane = 100;  // 3200 ops > the 1024 initial capacity
  for (int l = 0; l < kLanes; ++l) {
    t.begin_lane();
    for (int i = 0; i < kOpsPerLane; ++i) {
      t.push(simt::OpKind::kGlobalLoad, 1, 4,
             static_cast<std::uint64_t>(l * 1000 + i));
    }
  }
  ASSERT_EQ(t.lanes(), kLanes);
  for (int l = 0; l < kLanes; ++l) {
    ASSERT_EQ(t.lane_end(l) - t.lane_begin(l),
              static_cast<std::uint32_t>(kOpsPerLane));
    const std::uint32_t b = t.lane_begin(l);
    for (int i = 0; i < kOpsPerLane; ++i) {
      ASSERT_EQ(t.kinds()[b + i],
                static_cast<std::uint8_t>(simt::OpKind::kGlobalLoad));
      ASSERT_EQ(t.addrs()[b + i], static_cast<std::uint64_t>(l * 1000 + i));
      ASSERT_EQ(t.counts()[b + i], 1u);
      ASSERT_EQ(t.bytes()[b + i], 4u);
    }
  }
  // begin_warp drops contents but keeps recording working.
  t.begin_warp();
  EXPECT_EQ(t.lanes(), 0);
  t.begin_lane();
  t.push(simt::OpKind::kCompute, 2, 0, 0);
  EXPECT_EQ(t.lane_end(0) - t.lane_begin(0), 1u);
}

// ---------------------------------------------------------------------------
// SoA vs pre-refactor equivalence pins.
//
// Captured from the AoS engine (per-lane std::vector<Op>, std::unordered_map
// atomic histogram, per-op heap records) at the commit before the SoA/arena
// rewrite, on the exact generator calls below. Every field — including the
// float-accumulation-order-sensitive doubles — must match bit for bit.

struct Pin {
  const char* dataset;
  LoopTemplate tmpl;
  int iters;
  double total_cycles;
  std::uint64_t warp_steps, active_lane_ops;
  std::uint64_t gld_req, gld_xfer, gst_req, gst_xfer;
  std::uint64_t atomic_ops, shared_ops, compute_ops;
  std::uint64_t host_launches, device_launches, blocks, warps;
  double resident_warp_cycles, sm_active_cycles;
};

constexpr Pin kPins[] = {
    {"skew", LoopTemplate::kBaseline, 14, 1872881, 561708, 1453377, 3040952,
     67436928, 169031, 1709568, 291763, 0, 291763, 28, 0, 588, 3528,
     138082026, 15651002},
    {"uni", LoopTemplate::kBaseline, 18, 795110, 110833, 1317988, 2820940,
     48785280, 155201, 750208, 248336, 0, 248336, 36, 0, 756, 4536, 83282868,
     8888040},
    {"skew", LoopTemplate::kDbufShared, 14, 1053553, 224633, 3209893, 7296632,
     31315584, 169031, 1532672, 291763, 447076, 291763, 28, 0, 588, 3528,
     83131260, 9207173},
    {"uni", LoopTemplate::kDbufShared, 18, 810470, 115369, 1463140, 2820940,
     48785280, 155201, 750208, 248336, 145152, 248336, 36, 0, 756, 4536,
     85460148, 9112680},
    {"skew", LoopTemplate::kDparOpt, 14, 563257, 177069, 2013099, 5332472,
     23672704, 182671, 1927808, 291763, 12229, 291763, 28, 188, 2293, 6938,
     72732546, 17320717},
    {"uni", LoopTemplate::kDparOpt, 18, 796678, 111211, 1318366, 2820940,
     48785280, 155201, 750208, 248336, 378, 248336, 36, 0, 756, 4536,
     83505132, 8910972},
    {"skew", LoopTemplate::kConsBlock, 14, 746716.39999999979, 235984,
     3629316, 16522845, 31577088, 197815, 2170112, 291763, 5409, 291763, 28,
     157, 3815, 9982, 86513556.255555525, 14976055.983333331},
    {"uni", LoopTemplate::kConsBlock, 18, 796678, 111211, 1318366, 2820940,
     48785280, 155201, 750208, 248336, 378, 248336, 36, 0, 756, 4536,
     83505132, 8910972},
};

class SimulatorPerfPins : public ::testing::TestWithParam<Pin> {};

TEST_P(SimulatorPerfPins, MatchesPreRefactorEngineExactly) {
  const Pin& pin = GetParam();
  const graph::Csr g =
      std::string(pin.dataset) == "skew"
          ? graph::generate_power_law(4000, 1, 512, 16.0, 42, true)
          : graph::generate_regular(4000, 16, 42, true);

  simt::Device dev;
  // The ambient-fault rerun (`nestpar_faults`) must not perturb these exact
  // pins: pin a clean fault config for this test regardless of environment.
  dev.set_fault_config({});
  simt::Session session = dev.session();
  const auto res = apps::run_sssp(dev, g, 0, pin.tmpl);
  const simt::RunReport r = session.report();
  const simt::Metrics& m = r.aggregate;

  EXPECT_EQ(res.iterations, pin.iters);
  EXPECT_EQ(r.total_cycles, pin.total_cycles);  // bit-exact double
  EXPECT_EQ(m.warp_steps, pin.warp_steps);
  EXPECT_EQ(m.active_lane_ops, pin.active_lane_ops);
  EXPECT_EQ(m.gld_requested_bytes, pin.gld_req);
  EXPECT_EQ(m.gld_transferred_bytes, pin.gld_xfer);
  EXPECT_EQ(m.gst_requested_bytes, pin.gst_req);
  EXPECT_EQ(m.gst_transferred_bytes, pin.gst_xfer);
  EXPECT_EQ(m.atomic_ops, pin.atomic_ops);
  EXPECT_EQ(m.shared_ops, pin.shared_ops);
  EXPECT_EQ(m.compute_ops, pin.compute_ops);
  EXPECT_EQ(m.host_launches, pin.host_launches);
  EXPECT_EQ(m.device_launches, pin.device_launches);
  EXPECT_EQ(m.blocks, pin.blocks);
  EXPECT_EQ(m.warps, pin.warps);
  EXPECT_EQ(m.resident_warp_cycles, pin.resident_warp_cycles);
  EXPECT_EQ(m.sm_active_cycles, pin.sm_active_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndUniform, SimulatorPerfPins, ::testing::ValuesIn(kPins),
    [](const ::testing::TestParamInfo<Pin>& info) {
      std::string n = std::string(info.param.dataset) + "_" +
                      std::string(nested::name(info.param.tmpl));
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Engine determinism on the self-benchmark workloads. Runs clean here and
// again under ambient NESTPAR_FAULTS via the `nestpar_faults` ctest entry
// (filter *Determinism*): recycled BlockScratch pools are per-thread, so the
// parallel engine exercises genuinely different reuse sequences than the
// serial one — reports must not notice, faults or not.

TEST(SimulatorPerfEngineDeterminism, SerialAndParallelAgreeOnScratchReuse) {
  const graph::Csr g = graph::generate_power_law(4000, 1, 512, 16.0, 42, true);
  for (LoopTemplate tmpl :
       {LoopTemplate::kDbufShared, LoopTemplate::kConsBlock}) {
    simt::RunReport reports[2];
    const simt::ExecPolicy policies[2] = {
        simt::ExecPolicy::serial(),
        simt::ExecPolicy{simt::ExecMode::kParallel, 4}};
    for (int i = 0; i < 2; ++i) {
      simt::Device dev;
      simt::Session session = dev.session(policies[i]);
      apps::run_sssp(dev, g, 0, tmpl);
      reports[i] = session.report();
    }
    EXPECT_EQ(reports[0].total_cycles, reports[1].total_cycles);
    EXPECT_EQ(reports[0].aggregate.warp_steps,
              reports[1].aggregate.warp_steps);
    EXPECT_EQ(reports[0].aggregate.gld_transferred_bytes,
              reports[1].aggregate.gld_transferred_bytes);
    EXPECT_EQ(reports[0].aggregate.atomic_ops,
              reports[1].aggregate.atomic_ops);
    EXPECT_EQ(reports[0].aggregate.device_launches,
              reports[1].aggregate.device_launches);
    EXPECT_EQ(reports[0].aggregate.resident_warp_cycles,
              reports[1].aggregate.resident_warp_cycles);
    EXPECT_EQ(reports[0].robustness.refused_total(),
              reports[1].robustness.refused_total());
    EXPECT_EQ(reports[0].robustness.degraded,
              reports[1].robustness.degraded);
  }
}

}  // namespace
