// Correctness of the flattening transformation (the related-work
// alternative to the paper's templates): flattened execution must produce
// results identical to the serial references for every workload, including
// adversarial size distributions (empty segments, one giant segment).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/flatten.h"
#include "src/nested/workload.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;

namespace {

std::vector<float> flattened_spmv(const matrix::CsrMatrix& a,
                                  const std::vector<float>& x,
                                  simt::RunReport* report = nullptr) {
  std::vector<float> y(a.rows, 0.0f);
  apps::SpmvWorkload w(a, x.data(), y.data());
  simt::Device dev;
  nested::run_flattened(dev, w);
  if (report != nullptr) *report = dev.report();
  return y;
}

void expect_near_vec(const std::vector<float>& got,
                     const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-3 * (1.0 + std::abs(want[i])))
        << "row " << i;
  }
}

TEST(Flatten, SpmvMatchesSerialOnSkewedMatrix) {
  const auto g = graph::generate_power_law(4000, 0, 600, 25.0, 3, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 1);
  expect_near_vec(flattened_spmv(a, x), matrix::spmv_serial(a, x));
}

TEST(Flatten, SpmvHandlesEmptyRows) {
  // Alternating empty and short rows.
  std::vector<graph::Edge> edges;
  for (std::uint32_t v = 0; v < 100; v += 2) {
    edges.push_back({v, (v + 1) % 100, 2.0f});
  }
  const auto a =
      matrix::CsrMatrix::from_graph(graph::build_csr(100, edges, true));
  const auto x = matrix::make_dense_vector(100, 2);
  expect_near_vec(flattened_spmv(a, x), matrix::spmv_serial(a, x));
}

TEST(Flatten, SpmvHandlesOneGiantRow) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t k = 0; k < 20000; ++k) {
    edges.push_back({5, k % 64, 1.0f});
  }
  const auto a =
      matrix::CsrMatrix::from_graph(graph::build_csr(64, edges, true));
  const auto x = matrix::make_dense_vector(64, 3);
  expect_near_vec(flattened_spmv(a, x), matrix::spmv_serial(a, x));
}

TEST(Flatten, SpmvHandlesEmptyMatrix) {
  const auto a = matrix::CsrMatrix::from_graph(
      graph::build_csr(8, std::span<const graph::Edge>{}));
  const std::vector<float> x(8, 1.0f);
  const auto y = flattened_spmv(a, x);
  for (float v : y) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Flatten, PageRankMatchesSerial) {
  const auto g = graph::generate_power_law(1500, 0, 150, 10.0, 7);
  const graph::Csr gt = graph::transpose(g);
  // Drive the full app loop through the flattened runner by hand: one
  // iteration of the pull gather, compared against one serial iteration.
  // (The app-level run_pagerank is template-driven; here we exercise the
  // flattened path with the same workload type.)
  apps::PageRankOptions opt;
  opt.iterations = 1;
  const auto want = apps::pagerank_serial(g, opt);

  // Reconstruct one iteration manually with the flattened runner.
  const std::uint32_t n = g.num_nodes();
  std::vector<std::uint32_t> outdeg(n);
  for (std::uint32_t v = 0; v < n; ++v) outdeg[v] = g.degree(v);
  std::vector<double> rank(n, 1.0 / n), next(n, 0.0);

  class Gather final : public nested::NestedLoopWorkload {
   public:
    Gather(const graph::Csr& gt, const std::uint32_t* outdeg,
           const double* old_rank, double* new_rank)
        : gt_(&gt), outdeg_(outdeg), old_(old_rank), new_(new_rank) {}
    std::int64_t size() const override { return gt_->num_nodes(); }
    std::uint32_t inner_size(std::int64_t i) const override {
      return gt_->degree(static_cast<std::uint32_t>(i));
    }
    void load_outer(simt::LaneCtx& t, std::int64_t i) const override {
      t.ld(&gt_->row_offsets[static_cast<std::size_t>(i)]);
    }
    double body(simt::LaneCtx& t, std::int64_t i,
                std::uint32_t j) const override {
      const std::size_t e = gt_->row_offsets[static_cast<std::size_t>(i)] + j;
      const std::uint32_t u = t.ld(&gt_->col_indices[e]);
      const double r = t.ld(&old_[u]);
      const std::uint32_t d = t.ld(&outdeg_[u]);
      t.compute(2);
      return d > 0 ? r / d : 0.0;
    }
    void commit(simt::LaneCtx& t, std::int64_t i, double v) const override {
      t.st(&new_[static_cast<std::size_t>(i)],
           0.15 / gt_->num_nodes() + 0.85 * v);
    }
    const char* name() const override { return "gather"; }

   private:
    const graph::Csr* gt_;
    const std::uint32_t* outdeg_;
    const double* old_;
    double* new_;
  };

  Gather w(gt, outdeg.data(), rank.data(), next.data());
  simt::Device dev;
  nested::run_flattened(dev, w);
  ASSERT_EQ(next.size(), want.size());
  for (std::size_t i = 0; i < next.size(); ++i) {
    EXPECT_NEAR(next[i], want[i], 1e-12 + 1e-9 * want[i]) << i;
  }
}

TEST(Flatten, PipelineLaunchesExpectedKernels) {
  const auto g = graph::generate_power_law(2000, 0, 100, 10.0, 9, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 1);
  simt::RunReport rep;
  flattened_spmv(a, x, &rep);
  EXPECT_EQ(rep.kernel("flatten/sizes").invocations, 1u);
  EXPECT_EQ(rep.kernel("flatten/scan-chunks").invocations, 1u);
  EXPECT_EQ(rep.kernel("flatten/scan-totals").invocations, 1u);
  EXPECT_EQ(rep.kernel("flatten/scan-apply").invocations, 1u);
  EXPECT_EQ(rep.kernel("flatten/edges").invocations, 1u);
  EXPECT_EQ(rep.kernel("flatten/fixup").invocations, 1u);
  EXPECT_EQ(rep.device_grids, 0u);  // No dynamic parallelism needed.
}

TEST(Flatten, PerfectLoadBalanceShowsInWarpEfficiency) {
  // A pathologically skewed matrix: the flattened edge kernel should keep
  // warp efficiency high where the thread-mapped baseline collapses.
  const auto g = graph::generate_power_law(4000, 0, 1000, 20.0, 13, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 1);
  simt::RunReport rep;
  flattened_spmv(a, x, &rep);
  EXPECT_GT(rep.kernel("flatten/edges").metrics.warp_execution_efficiency(),
            0.9);
}

TEST(Flatten, RejectsBadParams) {
  const auto a = matrix::CsrMatrix::from_graph(
      graph::build_csr(2, std::span<const graph::Edge>{}));
  const std::vector<float> x(2, 1.0f);
  std::vector<float> y(2, 0.0f);
  apps::SpmvWorkload w(a, x.data(), y.data());
  simt::Device dev;
  nested::FlattenParams p;
  p.block_size = 0;
  EXPECT_THROW(nested::run_flattened(dev, w, p), std::invalid_argument);
}

TEST(Flatten, SsspConvergesViaFlattenedRelaxation) {
  // Use the flattened runner for SSSP's relaxation inside a hand-rolled
  // iteration loop and check against Dijkstra.
  const auto g = graph::generate_power_law(1200, 1, 120, 10.0, 21, true);
  const auto want = apps::sssp_serial_dijkstra(g, 0);

  // The public app API runs templates; flattened relaxation needs the same
  // iteration structure, so replicate run_sssp's loop with run_flattened.
  const std::uint32_t n = g.num_nodes();
  std::vector<float> dist(n, apps::kInfDistance), upd(n, apps::kInfDistance);
  std::vector<std::uint8_t> mask(n, 0);
  dist[0] = upd[0] = 0.0f;
  mask[0] = 1;

  class Relax final : public nested::NestedLoopWorkload {
   public:
    Relax(const graph::Csr& g, const float* dist, float* upd,
          std::uint8_t* mask)
        : g_(&g), dist_(dist), upd_(upd), mask_(mask) {}
    std::int64_t size() const override { return g_->num_nodes(); }
    std::uint32_t inner_size(std::int64_t i) const override {
      return mask_[i] != 0 ? g_->degree(static_cast<std::uint32_t>(i)) : 0;
    }
    void load_outer(simt::LaneCtx& t, std::int64_t i) const override {
      t.ld(&mask_[i]);
    }
    double body(simt::LaneCtx& t, std::int64_t i,
                std::uint32_t j) const override {
      const auto v = static_cast<std::uint32_t>(i);
      const std::size_t e = g_->row_offsets[v] + j;
      const std::uint32_t u = t.ld(&g_->col_indices[e]);
      const float w = t.ld(&g_->weights[e]);
      t.atomic_min(&upd_[u], dist_[v] + w);
      return 0.0;
    }
    void commit(simt::LaneCtx& t, std::int64_t i, double) const override {
      if (mask_[i] != 0) t.st(&mask_[i], std::uint8_t{0});
    }
    const char* name() const override { return "relax"; }

   private:
    const graph::Csr* g_;
    const float* dist_;
    float* upd_;
    std::uint8_t* mask_;
  };

  Relax w(g, dist.data(), upd.data(), mask.data());
  simt::Device dev;
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    nested::run_flattened(dev, w);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (upd[v] < dist[v]) {
        dist[v] = upd[v];
        mask[v] = 1;
        changed = true;
      } else {
        upd[v] = dist[v];
      }
    }
    ASSERT_LT(++guard, 10000);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(dist[v]));
    } else {
      EXPECT_FLOAT_EQ(dist[v], want[v]);
    }
  }
}

}  // namespace
