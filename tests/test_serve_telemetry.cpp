// Observability of the serving layer: the tick sampler, the telemetry
// registry, latency attribution, and the request-span trace export. The
// contract under test is that every artifact is a pure function of
// (config, workload, pool) — traces and time-series must come out
// byte-identical across host engines (chaos included) and must not perturb
// the run they observe: trace-on and trace-off runs produce identical stats
// and completions. Export structure is validated by parsing the trace back
// with the same bench JSON parser the results pipeline uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/json.h"
#include "src/serve/pool.h"
#include "src/serve/server.h"
#include "src/serve/telemetry.h"
#include "src/serve/trace.h"
#include "src/simt/exec_policy.h"
#include "src/simt/fault.h"
#include "src/simt/virtual_clock.h"

namespace simt = nestpar::simt;
namespace serve = nestpar::serve;
namespace bench = nestpar::bench;

namespace {

constexpr simt::ExecPolicy kSerial{simt::ExecMode::kSerial, 0};
constexpr simt::ExecPolicy kParallel{simt::ExecMode::kParallel, 4};

serve::PoolSpec tiny_pool_spec() {
  serve::PoolSpec p;
  p.num_graphs = 3;
  p.base_nodes = 256;
  p.scale = 0.2;
  p.seed = 0x5e12e;
  return p;
}

serve::ServeConfig tiny_config() {
  serve::ServeConfig cfg;
  cfg.num_shards = 3;
  cfg.queue_capacity = 6;
  cfg.seed = 2026;
  cfg.faults = simt::FaultConfig{};
  return cfg;
}

/// Run once and export the trace (spans + telemetry) to a string.
std::string run_and_export(const serve::ServeConfig& cfg,
                           const serve::SubgraphPool& pool, int requests,
                           double qps, const simt::ExecPolicy& policy,
                           serve::ServeStats* stats_out = nullptr) {
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, requests, qps);
  serve::Server server(cfg, pool, policy);
  const serve::ServeStats s = server.run(w);
  if (stats_out != nullptr) *stats_out = s;
  std::ostringstream os;
  serve::write_serve_trace(os, server.tracer(), &server.telemetry(),
                           cfg.num_shards);
  return os.str();
}

// ---------------------------------------------------------------------------
// TickSampler

TEST(TickSampler, DisabledAtZeroInterval) {
  simt::TickSampler s(0.0);
  EXPECT_FALSE(s.enabled());
  double tick = -1.0;
  EXPECT_FALSE(s.next_due(1e9, &tick));
}

TEST(TickSampler, RejectsNegativeInterval) {
  EXPECT_THROW(simt::TickSampler(-1.0), std::invalid_argument);
}

TEST(TickSampler, EmitsEveryBoundaryUpToNow) {
  simt::TickSampler s(100.0);
  ASSERT_TRUE(s.enabled());
  std::vector<double> ticks;
  double t = 0.0;
  while (s.next_due(250.0, &t)) ticks.push_back(t);
  EXPECT_EQ(ticks, (std::vector<double>{0.0, 100.0, 200.0}));
  // Nothing new until the next boundary...
  EXPECT_FALSE(s.next_due(299.0, &t));
  // ...and an exact boundary hit is due (inclusive).
  ASSERT_TRUE(s.next_due(300.0, &t));
  EXPECT_EQ(t, 300.0);
  EXPECT_FALSE(s.next_due(300.0, &t));
}

TEST(TickSampler, DefaultConstructedIsDisabled) {
  simt::TickSampler s;
  EXPECT_FALSE(s.enabled());
  double tick = -1.0;
  EXPECT_FALSE(s.next_due(0.0, &tick));
  EXPECT_EQ(tick, -1.0);  // output untouched when nothing is due
}

TEST(TickSampler, EventExactlyOnFirstBoundaryIsDue) {
  // The zeroth boundary is t=0: an event at exactly 0.0 must drain it, and
  // only it.
  simt::TickSampler s(50.0);
  double tick = -1.0;
  ASSERT_TRUE(s.next_due(0.0, &tick));
  EXPECT_EQ(tick, 0.0);
  EXPECT_FALSE(s.next_due(0.0, &tick));
}

TEST(TickSampler, BoundaryHitAfterLongGapDrainsEveryTick) {
  // A long quiet period followed by an event landing *exactly* on a
  // boundary: every skipped boundary drains, the exact hit included, and
  // the next call is not due.
  simt::TickSampler s(100.0);
  std::vector<double> ticks;
  double t = 0.0;
  while (s.next_due(500.0, &t)) ticks.push_back(t);
  EXPECT_EQ(ticks,
            (std::vector<double>{0.0, 100.0, 200.0, 300.0, 400.0, 500.0}));
  EXPECT_FALSE(s.next_due(500.0, &t));
  // Time never rewinds for the sampler either: an earlier now yields
  // nothing new.
  EXPECT_FALSE(s.next_due(450.0, &t));
}

// ---------------------------------------------------------------------------
// Telemetry registry

TEST(Telemetry, DisabledRegistryDropsAppends) {
  serve::Telemetry t(0.0);
  EXPECT_FALSE(t.enabled());
  t.append("a", "u", 1.0, 2.0);
  EXPECT_TRUE(t.series().empty());
}

TEST(Telemetry, KeepsPointsTimeSortedOnInsert) {
  serve::Telemetry t(1.0);
  // Event-driven appends can arrive out of time order (a batch turn runs
  // ahead of the next event's clock); the series must still read back
  // time-sorted, with ties keeping append order.
  t.append("s", "u", 10.0, 1.0);
  t.append("s", "u", 5.0, 2.0);
  t.append("s", "u", 10.0, 3.0);
  t.append("s", "u", 7.0, 4.0);
  ASSERT_EQ(t.series().size(), 1u);
  const serve::TimeSeries& s = t.series()[0];
  ASSERT_EQ(s.points.size(), 4u);
  EXPECT_EQ(s.points[0].t_us, 5.0);
  EXPECT_EQ(s.points[1].t_us, 7.0);
  EXPECT_EQ(s.points[2].t_us, 10.0);
  EXPECT_EQ(s.points[2].value, 1.0);  // tie keeps append order
  EXPECT_EQ(s.points[3].t_us, 10.0);
  EXPECT_EQ(s.points[3].value, 3.0);
}

TEST(Telemetry, ServerSeriesAreDeterministic) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.metrics_interval_us = 500.0;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 60, 5000.0);

  serve::Server a(cfg, pool, kSerial);
  serve::Server b(cfg, pool, kSerial);
  a.run(w);
  b.run(w);

  const auto& sa = a.telemetry().series();
  const auto& sb = b.telemetry().series();
  ASSERT_FALSE(sa.empty());
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name);
    ASSERT_EQ(sa[i].points.size(), sb[i].points.size()) << sa[i].name;
    for (std::size_t j = 0; j < sa[i].points.size(); ++j) {
      EXPECT_EQ(sa[i].points[j].t_us, sb[i].points[j].t_us) << sa[i].name;
      EXPECT_EQ(sa[i].points[j].value, sb[i].points[j].value) << sa[i].name;
    }
  }

  // The expected gauge tracks exist, sampled on the fixed tick grid.
  std::set<std::string> names;
  for (const serve::TimeSeries& s : sa) names.insert(s.name);
  EXPECT_TRUE(names.count("shard0/queue_depth"));
  EXPECT_TRUE(names.count("shard0/inflight"));
  EXPECT_TRUE(names.count("shard0/breaker"));
  EXPECT_TRUE(names.count("requests/ok"));
  for (const serve::TimeSeries& s : sa) {
    if (s.name.find("queue_depth") == std::string::npos) continue;
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      EXPECT_EQ(s.points[j].t_us, 500.0 * static_cast<double>(j)) << s.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Latency attribution

TEST(ServeAttribution, SharesTileEachCompletionsLifetime) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.faults = simt::FaultConfig::parse("launch=0.05,host=0.08,seed=42");
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 80, 6000.0);
  serve::Server server(cfg, pool, kSerial);
  const serve::ServeStats s = server.run(w);
  EXPECT_GT(s.retries, 0u) << "chaos too weak to exercise retry attribution";

  for (const serve::Completion& c : server.completions()) {
    const double sum = c.queue_us + c.batch_us + c.exec_us + c.retry_us;
    EXPECT_NEAR(sum, c.latency_us, 1e-6 * std::max(1.0, c.latency_us))
        << "request " << c.id << " (" << serve::to_string(c.status) << ")";
    EXPECT_GE(c.queue_us, 0.0);
    EXPECT_GE(c.batch_us, 0.0);
    EXPECT_GE(c.exec_us, 0.0);
    EXPECT_GE(c.retry_us, 0.0);
  }
}

TEST(ServeAttribution, P99SplitSumsToP99) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 60, 8000.0);
  serve::Server server(cfg, pool, kSerial);
  const serve::ServeStats s = server.run(w);
  ASSERT_GT(s.ok, 0u);
  EXPECT_NEAR(s.p99_queue_us + s.p99_batch_us + s.p99_exec_us + s.p99_retry_us,
              s.p99_us, 1e-6 * std::max(1.0, s.p99_us));
}

// ---------------------------------------------------------------------------
// Observer effect: tracing and metrics must not change the run.

TEST(ServeTrace, TraceOnDoesNotPerturbTheRun) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig off = tiny_config();
  serve::ServeConfig on = off;
  on.trace = true;
  on.metrics_interval_us = 250.0;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, off, 60, 5000.0);

  serve::Server s_off(off, pool, kSerial);
  serve::Server s_on(on, pool, kSerial);
  const serve::ServeStats a = s_off.run(w);
  const serve::ServeStats b = s_on.run(w);

  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.qps_ok, b.qps_ok);
  ASSERT_EQ(s_off.completions().size(), s_on.completions().size());
  for (std::size_t i = 0; i < s_off.completions().size(); ++i) {
    EXPECT_EQ(s_off.completions()[i].finish_us,
              s_on.completions()[i].finish_us);
    EXPECT_EQ(s_off.completions()[i].status, s_on.completions()[i].status);
  }
  // Trace-off runs record nothing at all.
  EXPECT_TRUE(s_off.tracer().spans().empty());
  EXPECT_FALSE(s_off.telemetry().enabled());
  EXPECT_FALSE(s_on.tracer().spans().empty());
}

// ---------------------------------------------------------------------------
// Trace export structure

class ParsedTrace {
 public:
  explicit ParsedTrace(const std::string& text) : doc_(bench::parse_json(text)) {
    const bench::JsonObject& root = doc_.object();
    const auto it = root.find("traceEvents");
    if (it == root.end() || !it->second.is_array()) {
      throw std::runtime_error("trace has no traceEvents array");
    }
    for (const bench::JsonValue& ev : it->second.array()) {
      events_.push_back(&ev.object());
    }
  }

  std::size_t count_phase(const std::string& ph) const {
    std::size_t n = 0;
    for (const bench::JsonObject* ev : events_) {
      if (str(*ev, "ph") == ph) ++n;
    }
    return n;
  }

  static std::string str(const bench::JsonObject& obj, const std::string& k) {
    const auto it = obj.find(k);
    return it != obj.end() && it->second.is_string() ? it->second.string()
                                                     : std::string();
  }
  static double num(const bench::JsonObject& obj, const std::string& k) {
    const auto it = obj.find(k);
    return it != obj.end() && it->second.is_number() ? it->second.number()
                                                     : -1.0;
  }

  const std::vector<const bench::JsonObject*>& events() const {
    return events_;
  }

 private:
  bench::JsonValue doc_;
  std::vector<const bench::JsonObject*> events_;
};

TEST(ServeTrace, ExportRoundTripsStructurally) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.trace = true;
  cfg.metrics_interval_us = 1000.0;
  serve::ServeStats stats;
  const std::string text =
      run_and_export(cfg, pool, 60, 5000.0, kSerial, &stats);
  const ParsedTrace trace(text);

  // Async begin/end balance, per (cat, id).
  std::map<std::pair<std::string, double>, int> open;
  for (const bench::JsonObject* ev : trace.events()) {
    const std::string ph = ParsedTrace::str(*ev, "ph");
    if (ph == "b") {
      ++open[{ParsedTrace::str(*ev, "cat"), ParsedTrace::num(*ev, "id")}];
    } else if (ph == "e") {
      --open[{ParsedTrace::str(*ev, "cat"), ParsedTrace::num(*ev, "id")}];
    }
  }
  for (const auto& [key, n] : open) {
    EXPECT_EQ(n, 0) << "unbalanced async span id " << key.second;
  }

  // One serve-shard X slice per execution attempt with sane bounds, on a
  // shard row. The unified export adds serve-grid slices on device rows;
  // those must carry their provenance args but are not attempt slices.
  std::size_t exec_slices = 0;
  std::size_t grid_slices = 0;
  for (const bench::JsonObject* ev : trace.events()) {
    if (ParsedTrace::str(*ev, "ph") != "X") continue;
    const std::string cat = ParsedTrace::str(*ev, "cat");
    EXPECT_GE(ParsedTrace::num(*ev, "dur"), 0.0);
    if (cat == "serve-grid") {
      ++grid_slices;
      continue;
    }
    ++exec_slices;
    EXPECT_EQ(cat, "serve-shard");
    EXPECT_GE(ParsedTrace::num(*ev, "tid"), 1.0);
  }
  EXPECT_EQ(exec_slices, stats.attempts);
  EXPECT_GT(grid_slices, 0u);

  // A winning-attempt flow pair and a terminal marker per Ok completion
  // (the grid/dispatch flows use their own categories); counters exist for
  // the telemetry tracks; metadata names at least the serve process and
  // every shard row (device rows add more).
  std::size_t win_starts = 0;
  std::size_t win_ends = 0;
  for (const bench::JsonObject* ev : trace.events()) {
    if (ParsedTrace::str(*ev, "cat") != "serve-flow") continue;
    const std::string ph = ParsedTrace::str(*ev, "ph");
    if (ph == "s") ++win_starts;
    if (ph == "f") ++win_ends;
  }
  EXPECT_EQ(win_starts, stats.ok);
  EXPECT_EQ(win_ends, stats.ok);
  EXPECT_GT(trace.count_phase("C"), 0u);
  EXPECT_GE(trace.count_phase("M"),
            1u + 1u + static_cast<std::size_t>(cfg.num_shards));
}

TEST(ServeTrace, FlowLinksTheWinningAttempt) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.trace = true;
  cfg.faults = simt::FaultConfig::parse("launch=0.05,host=0.10,seed=42");
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 80, 6000.0);
  serve::Server server(cfg, pool, kSerial);
  const serve::ServeStats s = server.run(w);
  EXPECT_GT(s.hedges, 0u) << "chaos too weak to force hedged attempts";

  std::ostringstream os;
  serve::write_serve_trace(os, server.tracer(), nullptr, cfg.num_shards);
  const ParsedTrace trace(os.str());

  // For every Ok completion the flow must start on the winning attempt's
  // exec slice: same request id, same timestamp window, on a shard row.
  std::map<double, const bench::JsonObject*> starts;
  for (const bench::JsonObject* ev : trace.events()) {
    if (ParsedTrace::str(*ev, "ph") == "s" &&
        ParsedTrace::str(*ev, "cat") == "serve-flow") {
      starts[ParsedTrace::num(*ev, "id")] = ev;
    }
  }
  std::size_t checked = 0;
  for (const serve::Completion& c : server.completions()) {
    if (c.status != serve::RequestStatus::kOk) continue;
    const auto it = starts.find(static_cast<double>(c.id));
    ASSERT_NE(it, starts.end()) << "no flow start for Ok request " << c.id;
    // The start sits on the shard row of the completing shard, inside the
    // winning (final) attempt's execution.
    EXPECT_EQ(ParsedTrace::num(*it->second, "tid"),
              static_cast<double>(1 + c.shard))
        << "request " << c.id;
    EXPECT_LE(ParsedTrace::num(*it->second, "ts"), c.finish_us)
        << "request " << c.id;
    ++checked;
  }
  EXPECT_EQ(checked, s.ok);

  // The winning attempt arg on each matched exec slice equals the
  // completion's attempt count.
  std::map<std::uint64_t, int> attempts_by_request;
  for (const serve::Completion& c : server.completions()) {
    if (c.status == serve::RequestStatus::kOk) {
      attempts_by_request[c.id] = c.attempts;
    }
  }
  for (const bench::JsonObject* ev : trace.events()) {
    if (ParsedTrace::str(*ev, "ph") != "s" ||
        ParsedTrace::str(*ev, "cat") != "serve-flow") {
      continue;
    }
    const auto req = static_cast<std::uint64_t>(ParsedTrace::num(*ev, "id"));
    ASSERT_TRUE(attempts_by_request.count(req));
  }
}

TEST(ServeTrace, ByteIdenticalAcrossEnginesCleanAndChaos) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.trace = true;
  cfg.metrics_interval_us = 500.0;

  EXPECT_EQ(run_and_export(cfg, pool, 60, 5000.0, kSerial),
            run_and_export(cfg, pool, 60, 5000.0, kParallel));

  cfg.faults = simt::FaultConfig::parse("launch=0.05,host=0.08,seed=42");
  serve::ServeStats chaos_stats;
  const std::string serial =
      run_and_export(cfg, pool, 80, 6000.0, kSerial, &chaos_stats);
  EXPECT_GT(chaos_stats.retries, 0u);
  EXPECT_EQ(serial, run_and_export(cfg, pool, 80, 6000.0, kParallel));
}

TEST(ServeTrace, SpanKindNamesAreStable) {
  EXPECT_EQ(serve::to_string(serve::SpanKind::kRequest), "request");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kQueue), "queue");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kBatch), "batch");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kExec), "exec");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kBackoff), "backoff");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kAdmit), "admit");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kVerify), "verify");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kOk), "ok");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kExpired), "expired");
  EXPECT_EQ(serve::to_string(serve::SpanKind::kShed), "shed");
}

TEST(ServeConfigValidation, RejectsNegativeMetricsInterval) {
  serve::ServeConfig cfg = tiny_config();
  cfg.metrics_interval_us = -5.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
