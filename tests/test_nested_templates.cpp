// Correctness of every nested-loop parallelization template: each template
// must produce results identical to the serial reference on every workload,
// for a sweep of lbTHRES values (TEST_P). Also checks the template-specific
// structural properties (launch counts, kernel phases).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/bc.h"
#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;

using nested::LoopTemplate;

namespace {

struct Case {
  LoopTemplate tmpl;
  int lb_threshold;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  std::string s(nested::name(info.param.tmpl));
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_lb" + std::to_string(info.param.lb_threshold);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const nested::LoopTemplateDesc& d : nested::loop_templates()) {
    for (int lb : {4, 32, 256}) {
      cases.push_back(Case{d.tmpl, lb});
    }
  }
  return cases;
}

class TemplateCorrectness : public testing::TestWithParam<Case> {
 protected:
  nested::LoopParams params() const {
    nested::LoopParams p;
    p.lb_threshold = GetParam().lb_threshold;
    return p;
  }
};

TEST_P(TemplateCorrectness, SpmvMatchesSerial) {
  const auto g = graph::generate_power_law(3000, 0, 400, 20.0, 77, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 5);
  const auto expect = matrix::spmv_serial(a, x);

  simt::Device dev;
  const auto y = apps::run_spmv(dev, a, x, GetParam().tmpl, params());
  ASSERT_EQ(y.size(), expect.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    // GPU templates reduce in double, serial in float: allow tiny drift.
    EXPECT_NEAR(y[i], expect[i], 1e-3 * (1.0 + std::abs(expect[i])))
        << "row " << i;
  }
}

TEST_P(TemplateCorrectness, SsspMatchesDijkstra) {
  const auto g = graph::generate_power_law(1200, 1, 300, 15.0, 31, true);
  const auto expect = apps::sssp_serial(g, 0);

  simt::Device dev;
  const auto res = apps::run_sssp(dev, g, 0, GetParam().tmpl, params());
  ASSERT_EQ(res.dist.size(), expect.size());
  EXPECT_GT(res.iterations, 0);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (std::isinf(expect[i])) {
      EXPECT_TRUE(std::isinf(res.dist[i])) << "node " << i;
    } else {
      EXPECT_FLOAT_EQ(res.dist[i], expect[i]) << "node " << i;
    }
  }
}

TEST_P(TemplateCorrectness, PageRankMatchesSerial) {
  const auto g = graph::generate_power_law(1500, 0, 200, 12.0, 19);
  apps::PageRankOptions opt;
  opt.iterations = 5;
  const auto expect = apps::pagerank_serial(g, opt);

  simt::Device dev;
  const auto rank = apps::run_pagerank(dev, g, GetParam().tmpl, params(), opt);
  ASSERT_EQ(rank.size(), expect.size());
  for (std::size_t i = 0; i < rank.size(); ++i) {
    EXPECT_NEAR(rank[i], expect[i], 1e-12 + 1e-9 * expect[i]) << "page " << i;
  }
}

TEST_P(TemplateCorrectness, BetweennessMatchesBrandes) {
  const auto g = graph::generate_power_law(600, 0, 80, 8.0, 23);
  apps::BcOptions opt;
  opt.num_sources = 10;
  const auto expect = apps::bc_serial(g, opt);

  simt::Device dev;
  const auto bc = apps::run_bc(dev, g, GetParam().tmpl, params(), opt);
  ASSERT_EQ(bc.size(), expect.size());
  for (std::size_t i = 0; i < bc.size(); ++i) {
    EXPECT_NEAR(bc[i], expect[i], 1e-9 + 1e-9 * expect[i]) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TemplateCorrectness,
                         testing::ValuesIn(all_cases()), case_name);

// --- Structural properties ----------------------------------------------------

class TemplateStructure : public testing::Test {
 protected:
  graph::Csr g_ = graph::generate_power_law(4000, 0, 500, 25.0, 99, true);
  matrix::CsrMatrix a_ = matrix::CsrMatrix::from_graph(g_);
  std::vector<float> x_ = matrix::make_dense_vector(a_.cols, 7);

  simt::RunReport run(LoopTemplate t, int lb = 32) {
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = lb;
    apps::run_spmv(dev, a_, x_, t, p);
    return dev.report();
  }
};

TEST_F(TemplateStructure, BaselineLaunchesOneKernelNoNesting) {
  const auto rep = run(LoopTemplate::kBaseline);
  EXPECT_EQ(rep.grids, 1u);
  EXPECT_EQ(rep.device_grids, 0u);
}

TEST_F(TemplateStructure, DualQueueLaunchesThreeKernels) {
  const auto rep = run(LoopTemplate::kDualQueue);
  EXPECT_EQ(rep.grids, 3u);
  EXPECT_EQ(rep.device_grids, 0u);
}

TEST_F(TemplateStructure, DbufGlobalLaunchesTwoKernels) {
  const auto rep = run(LoopTemplate::kDbufGlobal);
  EXPECT_EQ(rep.grids, 2u);
}

TEST_F(TemplateStructure, DbufSharedLaunchesOneKernel) {
  const auto rep = run(LoopTemplate::kDbufShared);
  EXPECT_EQ(rep.grids, 1u);
  EXPECT_EQ(rep.device_grids, 0u);
}

TEST_F(TemplateStructure, DparNaiveSpawnsOneGridPerLargeIteration) {
  const int lb = 32;
  std::uint64_t large = 0;
  for (std::uint32_t r = 0; r < a_.rows; ++r) {
    if (a_.row_nnz(r) > static_cast<std::uint32_t>(lb)) ++large;
  }
  ASSERT_GT(large, 0u);
  const auto rep = run(LoopTemplate::kDparNaive, lb);
  EXPECT_EQ(rep.device_grids, large);
}

TEST_F(TemplateStructure, DparOptSpawnsAtMostOneGridPerBlock) {
  const auto rep = run(LoopTemplate::kDparOpt);
  const auto naive = run(LoopTemplate::kDparNaive);
  EXPECT_GT(rep.device_grids, 0u);
  // Far fewer, larger grids than dpar-naive.
  EXPECT_LT(rep.device_grids, naive.device_grids / 2);
}

TEST_F(TemplateStructure, LoadBalancingImprovesWarpEfficiencyOverBaseline) {
  const auto base = run(LoopTemplate::kBaseline);
  for (LoopTemplate t :
       {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
        LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
    const auto rep = run(t);
    EXPECT_GT(rep.aggregate.warp_execution_efficiency(),
              base.aggregate.warp_execution_efficiency())
        << nested::name(t);
  }
}

TEST_F(TemplateStructure, HigherThresholdMeansLowerWarpEfficiency) {
  const auto low = run(LoopTemplate::kDbufShared, 32);
  const auto high = run(LoopTemplate::kDbufShared, 1024);
  EXPECT_GT(low.aggregate.warp_execution_efficiency(),
            high.aggregate.warp_execution_efficiency());
}

TEST_F(TemplateStructure, RejectsBadParams) {
  simt::Device dev;
  nested::LoopParams p;
  p.lb_threshold = -1;
  EXPECT_THROW(apps::run_spmv(dev, a_, x_, LoopTemplate::kBaseline, p),
               std::invalid_argument);
}

TEST_F(TemplateStructure, EmptyWorkloadRuns) {
  const matrix::CsrMatrix empty = matrix::CsrMatrix::from_graph(
      graph::build_csr(1, std::span<const graph::Edge>{}));
  const std::vector<float> x(1, 1.0f);
  for (const nested::LoopTemplateDesc& d : nested::loop_templates()) {
    const LoopTemplate t = d.tmpl;
    simt::Device dev;
    const auto y = apps::run_spmv(dev, empty, x, t);
    EXPECT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 0.0f) << nested::name(t);
  }
}

}  // namespace
