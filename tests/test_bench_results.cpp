// Tests for the benchmark results pipeline (bench/results.{h,cpp}) and the
// bench::Args flag parser: JSON round-trip fidelity, schema-version
// rejection, regression detection in the comparator, and flag semantics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/results.h"

namespace {

using nestpar::bench::Args;
using nestpar::bench::CompareOptions;
using nestpar::bench::CompareReport;
using nestpar::bench::compare_results;
using nestpar::bench::kResultSchemaVersion;
using nestpar::bench::Measurement;
using nestpar::bench::merge_compare_reports;
using nestpar::bench::parse_result_json;
using nestpar::bench::SuiteResult;
using nestpar::bench::to_json;

SuiteResult sample_result() {
  SuiteResult r;
  r.suite = "fig5_sssp";
  r.figure = "Figure 5";
  Measurement a;
  a.tmpl = "dual-queue";
  a.dataset = "citeseer";
  a.scale = 0.1;
  a.params["lb_threshold"] = 32;
  a.cycles = 1234567.0;
  a.warp_efficiency = 0.425;
  a.host_launches = 17;
  a.device_launches = 243;
  a.robustness.launches_attempted = 260;
  a.robustness.retries = 2;
  a.extra["speedup"] = 1.87;
  r.measurements.push_back(a);
  Measurement b;
  b.tmpl = "baseline";
  b.dataset = "citeseer";
  b.scale = 0.1;
  b.cycles = 2000000.0;
  b.warp_efficiency = 0.19;
  b.host_launches = 17;
  r.measurements.push_back(b);
  return r;
}

TEST(BenchResults, JsonRoundTripPreservesEveryField) {
  const SuiteResult original = sample_result();
  const SuiteResult parsed = parse_result_json(to_json(original));
  ASSERT_EQ(parsed.suite, original.suite);
  ASSERT_EQ(parsed.figure, original.figure);
  ASSERT_EQ(parsed.measurements.size(), original.measurements.size());
  const Measurement& m = parsed.measurements[0];
  const Measurement& o = original.measurements[0];
  EXPECT_EQ(m.tmpl, o.tmpl);
  EXPECT_EQ(m.dataset, o.dataset);
  EXPECT_EQ(m.scale, o.scale);
  EXPECT_EQ(m.params, o.params);
  EXPECT_EQ(m.cycles, o.cycles);
  EXPECT_EQ(m.warp_efficiency, o.warp_efficiency);
  EXPECT_EQ(m.host_launches, o.host_launches);
  EXPECT_EQ(m.device_launches, o.device_launches);
  EXPECT_EQ(m.robustness.launches_attempted,
            o.robustness.launches_attempted);
  EXPECT_EQ(m.robustness.retries, o.robustness.retries);
  EXPECT_EQ(m.extra, o.extra);
}

TEST(BenchResults, VolatileExtrasRoundTripUnderSeparateKey) {
  SuiteResult r = sample_result();
  r.measurements[0].volatile_extra["cpu_speedup"] = 8.21;
  const std::string text = to_json(r);
  // The wall-clock-derived section is structurally separated so byte-
  // stability tooling can strip it without knowing column names.
  EXPECT_NE(text.find("\"extra_volatile\""), std::string::npos);
  const SuiteResult parsed = parse_result_json(text);
  EXPECT_EQ(parsed.measurements[0].volatile_extra,
            r.measurements[0].volatile_extra);
  EXPECT_TRUE(parsed.measurements[1].volatile_extra.empty());
}

TEST(BenchResults, NoVolatileExtrasMeansNoKey) {
  // Suites without wall-clock metrics keep their files byte-identical to
  // the pre-volatile-extras schema.
  const std::string text = to_json(sample_result());
  EXPECT_EQ(text.find("extra_volatile"), std::string::npos);
}

TEST(BenchResults, SerializationIsByteStable) {
  // Identical results must produce identical files: serialize, parse, and
  // serialize again — the bytes may not change.
  const std::string first = to_json(sample_result());
  const std::string second = to_json(parse_result_json(first));
  EXPECT_EQ(first, second);
}

TEST(BenchResults, RejectsWrongSchemaVersion) {
  std::string text = to_json(sample_result());
  const std::string needle =
      "\"schema_version\": " + std::to_string(kResultSchemaVersion);
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"schema_version\": 999");
  EXPECT_THROW(parse_result_json(text), std::runtime_error);
}

TEST(BenchResults, RejectsMalformedAndIncompleteDocuments) {
  EXPECT_THROW(parse_result_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_result_json("{\"schema_version\": 1}"),
               std::runtime_error);
  // Truncated document.
  const std::string text = to_json(sample_result());
  EXPECT_THROW(parse_result_json(text.substr(0, text.size() / 2)),
               std::runtime_error);
}

TEST(BenchResults, KeyIncludesParams) {
  Measurement a;
  a.tmpl = "dual-queue";
  a.dataset = "citeseer";
  a.scale = 0.1;
  a.params["lb_threshold"] = 32;
  Measurement b = a;
  b.params["lb_threshold"] = 64;
  EXPECT_NE(a.key(), b.key());
  b.params["lb_threshold"] = 32;
  EXPECT_EQ(a.key(), b.key());
}

// ---------------------------------------------------------------------------
// SERVE documents (schema v2): round-trip, wall-derived rejection,
// back-compat, and the observability-metric gating in compare_serve.

using nestpar::bench::compare_serve;
using nestpar::bench::kMinServeSchemaVersion;
using nestpar::bench::kServeSchemaVersion;
using nestpar::bench::parse_serve_json;
using nestpar::bench::ServeRecord;
using nestpar::bench::ServeSeries;
using nestpar::bench::to_serve_json;

SuiteResult sample_serve_result() {
  SuiteResult r;
  r.suite = "serve_latency";
  r.figure = "— (serving extension)";
  ServeRecord rec;
  rec.scenario = "steady";
  rec.params["qps"] = 8000;
  rec.params["shards"] = 3;
  rec.submitted = 80;
  rec.ok = 78;
  rec.expired = 1;
  rec.shed = 1;
  rec.attempts = 85;
  rec.retries = 7;
  rec.batches = 40;
  rec.makespan_us = 10500.0;
  rec.qps_ok = 7428.5;
  rec.p50_us = 250.0;
  rec.p95_us = 380.0;
  rec.p99_us = 410.0;
  rec.mean_us = 280.0;
  rec.max_us = 410.0;
  rec.p99_queue_us = 200.0;
  rec.p99_batch_us = 5.0;
  rec.p99_exec_us = 195.0;
  rec.p99_retry_us = 10.0;
  rec.extra["deadline_budget_burn"] = 0.12;
  rec.volatile_extra["wall_elapsed_ms"] = 12.5;
  ServeSeries s;
  s.name = "shard0/queue_depth";
  s.unit = "queries";
  s.points = {{0.0, 0.0}, {1000.0, 2.0}, {2000.0, 1.0}};
  rec.telemetry.push_back(s);
  r.serve.push_back(std::move(rec));
  return r;
}

TEST(ServeResults, V2RoundTripPreservesObservabilityFields) {
  const SuiteResult original = sample_serve_result();
  const SuiteResult parsed = parse_serve_json(to_serve_json(original));
  ASSERT_EQ(parsed.serve.size(), 1u);
  const ServeRecord& r = parsed.serve[0];
  EXPECT_EQ(r.p99_queue_us, 200.0);
  EXPECT_EQ(r.p99_batch_us, 5.0);
  EXPECT_EQ(r.p99_exec_us, 195.0);
  EXPECT_EQ(r.p99_retry_us, 10.0);
  EXPECT_EQ(r.extra.at("deadline_budget_burn"), 0.12);
  EXPECT_EQ(r.volatile_extra.at("wall_elapsed_ms"), 12.5);
  ASSERT_EQ(r.telemetry.size(), 1u);
  EXPECT_EQ(r.telemetry[0].name, "shard0/queue_depth");
  EXPECT_EQ(r.telemetry[0].unit, "queries");
  ASSERT_EQ(r.telemetry[0].points.size(), 3u);
  EXPECT_EQ(r.telemetry[0].points[1].first, 1000.0);
  EXPECT_EQ(r.telemetry[0].points[1].second, 2.0);
  // And the document is byte-stable through a round trip.
  EXPECT_EQ(to_serve_json(original), to_serve_json(parsed));
}

TEST(ServeResults, SerializerRejectsUnlabeledWallDerivedKeys) {
  // Unlike the BENCH serializer (which reroutes), the serve serializer
  // throws: serve records are baseline-pinned, so a wall-derived key in a
  // deterministic section is a bug at the call site, not a salvage case.
  SuiteResult r = sample_serve_result();
  r.serve[0].extra["wall_elapsed_ms"] = 3.0;
  EXPECT_THROW(to_serve_json(r), std::invalid_argument);

  r = sample_serve_result();
  r.serve[0].extra["ops_per_sec"] = 100.0;
  EXPECT_THROW(to_serve_json(r), std::invalid_argument);

  r = sample_serve_result();
  r.serve[0].params["cpu_cores"] = 8.0;
  EXPECT_THROW(to_serve_json(r), std::invalid_argument);

  // The same names are fine under extra_volatile.
  r = sample_serve_result();
  r.serve[0].volatile_extra["ops_per_sec"] = 100.0;
  EXPECT_NO_THROW(to_serve_json(r));
}

TEST(ServeResults, ParsesV1DocumentsWithoutNewSections) {
  // A v1 file (no p99_split/extra/telemetry) must still parse, with the new
  // fields reading back zero/empty.
  const std::string v1 =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"generator\": \"nestpar_bench\",\n"
      "  \"kind\": \"serve\",\n"
      "  \"suite\": \"serve_latency\",\n"
      "  \"figure\": \"x\",\n"
      "  \"records\": [\n"
      "    {\"scenario\": \"steady\",\n"
      "     \"params\": {\"qps\": 8000},\n"
      "     \"submitted\": 10, \"ok\": 10, \"expired\": 0, \"shed\": 0, "
      "\"wrong\": 0,\n"
      "     \"attempts\": 10, \"retries\": 0, \"hedges\": 0, \"batches\": 5, "
      "\"probes\": 0,\n"
      "     \"breaker_trips\": 0, \"faults_injected\": 0, \"degraded\": 0,\n"
      "     \"makespan_us\": 1000, \"qps_ok\": 10000,\n"
      "     \"p50_us\": 100, \"p95_us\": 150, \"p99_us\": 160, "
      "\"mean_us\": 110, \"max_us\": 160}\n"
      "  ]\n}\n";
  const SuiteResult parsed = parse_serve_json(v1);
  ASSERT_EQ(parsed.serve.size(), 1u);
  EXPECT_EQ(parsed.serve[0].p99_queue_us, 0.0);
  EXPECT_TRUE(parsed.serve[0].extra.empty());
  EXPECT_TRUE(parsed.serve[0].telemetry.empty());

  // Out-of-range versions still reject.
  std::string bad = v1;
  const std::string needle = "\"schema_version\": 1";
  bad.replace(bad.find(needle), needle.size(), "\"schema_version\": 999");
  EXPECT_THROW(parse_serve_json(bad), std::runtime_error);
  EXPECT_GE(kServeSchemaVersion, kMinServeSchemaVersion);
}

SuiteResult sample_serve_result_v3() {
  SuiteResult r = sample_serve_result();
  ServeRecord& rec = r.serve[0];
  rec.device_cycles_total = 2522737.25;
  rec.fault_device_cycles_total = 1204.5;
  rec.launches_total = 538;
  nestpar::bench::ServeTenant t0;
  t0.tenant = 0;
  t0.requests = 41;
  t0.ok = 40;
  t0.launches = 300;
  t0.retries = 3;
  t0.device_cycles = 1500000.125;
  t0.fault_device_cycles = 1000.25;
  nestpar::bench::ServeTenant t1;
  t1.tenant = 2;
  t1.requests = 39;
  t1.ok = 38;
  t1.launches = 238;
  t1.retries = 4;
  t1.device_cycles = 1022737.125;
  t1.fault_device_cycles = 204.25;
  rec.tenants = {t0, t1};
  return r;
}

TEST(ServeResults, V3RoundTripPreservesAttributionFields) {
  const SuiteResult original = sample_serve_result_v3();
  const SuiteResult parsed = parse_serve_json(to_serve_json(original));
  ASSERT_EQ(parsed.serve.size(), 1u);
  const ServeRecord& r = parsed.serve[0];
  // Doubles survive bit-exactly: json_num serializes with round-trip
  // precision, which is what lets the comparator gate attributed cycles
  // with zero threshold slack.
  EXPECT_EQ(r.device_cycles_total, 2522737.25);
  EXPECT_EQ(r.fault_device_cycles_total, 1204.5);
  EXPECT_EQ(r.launches_total, 538u);
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.tenants[0].tenant, 0u);
  EXPECT_EQ(r.tenants[0].requests, 41u);
  EXPECT_EQ(r.tenants[0].ok, 40u);
  EXPECT_EQ(r.tenants[0].launches, 300u);
  EXPECT_EQ(r.tenants[0].retries, 3u);
  EXPECT_EQ(r.tenants[0].device_cycles, 1500000.125);
  EXPECT_EQ(r.tenants[0].fault_device_cycles, 1000.25);
  EXPECT_EQ(r.tenants[1].tenant, 2u);
  EXPECT_EQ(to_serve_json(original), to_serve_json(parsed));
}

TEST(ServeResults, RecordsWithoutAttributionStayV2Shaped) {
  // A producer that never attributed anything must emit no v3 keys at all,
  // so pre-attribution consumers and byte-diff tooling see nothing new.
  const std::string doc = to_serve_json(sample_serve_result());
  EXPECT_EQ(doc.find("device_cycles_total"), std::string::npos);
  EXPECT_EQ(doc.find("\"tenants\""), std::string::npos);
  const SuiteResult parsed = parse_serve_json(doc);
  EXPECT_EQ(parsed.serve[0].device_cycles_total, 0.0);
  EXPECT_EQ(parsed.serve[0].launches_total, 0u);
  EXPECT_TRUE(parsed.serve[0].tenants.empty());
}

TEST(ServeCompare, TenantDriftIsTwoSided) {
  const SuiteResult baseline = sample_serve_result_v3();

  // Cycles moving *down* for a tenant is still a regression: attribution is
  // deterministic, so drift either way means the schedule changed.
  SuiteResult current = baseline;
  current.serve[0].tenants[0].device_cycles *= 0.9;
  CompareReport report = compare_serve(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.has_regression());
  bool found = false;
  for (const auto& d : report.deltas) {
    if (d.metric == "tenant/0/device_cycles") {
      found = d.regression;
      EXPECT_FALSE(d.improvement);
    }
  }
  EXPECT_TRUE(found);

  // A tenant the current run dropped diffs against zero.
  current = baseline;
  current.serve[0].tenants.erase(current.serve[0].tenants.begin() + 1);
  report = compare_serve(baseline, current, CompareOptions{});
  bool dropped = false;
  for (const auto& d : report.deltas) {
    if (d.metric == "tenant/2/requests") {
      dropped = d.regression;
      EXPECT_EQ(d.current, 0.0);
    }
  }
  EXPECT_TRUE(dropped);

  // Total device cycles gate two-sided as well.
  current = baseline;
  current.serve[0].device_cycles_total *= 1.1;
  report = compare_serve(baseline, current, CompareOptions{});
  bool total = false;
  for (const auto& d : report.deltas) {
    if (d.metric == "device_cycles_total") total = d.regression;
  }
  EXPECT_TRUE(total);

  // Identical records: no deltas.
  report = compare_serve(baseline, baseline, CompareOptions{});
  EXPECT_TRUE(report.deltas.empty());
}

TEST(ServeCompare, P99SplitGrowthIsARegression) {
  const SuiteResult baseline = sample_serve_result();
  SuiteResult current = baseline;
  current.serve[0].p99_queue_us *= 1.5;  // Tail moved into queueing.
  const CompareReport report =
      compare_serve(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.has_regression());
  bool found = false;
  for (const auto& d : report.deltas) {
    if (d.metric == "p99_queue_us") found = d.regression;
  }
  EXPECT_TRUE(found);
}

TEST(ServeCompare, TelemetryDriftIsTwoSided) {
  const SuiteResult baseline = sample_serve_result();

  // Mean moving *down* is still a regression: the series is deterministic,
  // so any drift means the schedule changed.
  SuiteResult current = baseline;
  for (auto& p : current.serve[0].telemetry[0].points) p.second *= 0.5;
  CompareReport report = compare_serve(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.has_regression());
  bool improvement = false;
  for (const auto& d : report.deltas) improvement |= d.improvement;
  EXPECT_FALSE(improvement) << "two-sided metrics have no improvements";

  // A dropped series diffs its sample count against zero.
  current = baseline;
  current.serve[0].telemetry.clear();
  report = compare_serve(baseline, current, CompareOptions{});
  EXPECT_TRUE(report.has_regression());
  bool samples = false;
  for (const auto& d : report.deltas) {
    if (d.metric == "telemetry/shard0/queue_depth/samples") {
      samples = d.regression;
      EXPECT_EQ(d.current, 0.0);
    }
  }
  EXPECT_TRUE(samples);

  // Unchanged telemetry produces no deltas at all.
  report = compare_serve(baseline, baseline, CompareOptions{});
  EXPECT_FALSE(report.has_regression());
  EXPECT_TRUE(report.deltas.empty());
}

TEST(BenchCompare, FlagsInjectedCycleRegression) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  current.measurements[0].cycles *= 1.20;  // 20% slower than baseline
  const CompareReport rep =
      compare_results(baseline, current, CompareOptions{.threshold = 0.05});
  EXPECT_TRUE(rep.has_regression());
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_EQ(rep.deltas[0].metric, "cycles");
  EXPECT_TRUE(rep.deltas[0].regression);
  EXPECT_NEAR(rep.deltas[0].rel_delta, 0.20, 1e-9);
  EXPECT_EQ(rep.matched, 2);
}

TEST(BenchCompare, ImprovementsAndSmallDeltasAreNotRegressions) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  current.measurements[0].cycles *= 0.80;           // faster: fine
  current.measurements[1].warp_efficiency += 0.10;  // better: fine
  const CompareReport rep =
      compare_results(baseline, current, CompareOptions{.threshold = 0.05});
  EXPECT_FALSE(rep.has_regression());
  EXPECT_EQ(rep.deltas.size(), 2u);  // reported as plain deltas
}

TEST(BenchCompare, WarpEfficiencyDropIsARegression) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  current.measurements[1].warp_efficiency *= 0.5;
  const CompareReport rep =
      compare_results(baseline, current, CompareOptions{.threshold = 0.05});
  EXPECT_TRUE(rep.has_regression());
}

TEST(BenchCompare, MissingBaselineRecordIsARegression) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  current.measurements.pop_back();
  const CompareReport rep =
      compare_results(baseline, current, CompareOptions{});
  EXPECT_EQ(rep.missing, 1);
  EXPECT_TRUE(rep.has_regression());
}

TEST(BenchCompare, AddedRecordsAreFine) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  Measurement extra;
  extra.tmpl = "new-variant";
  extra.dataset = "citeseer";
  current.measurements.push_back(extra);
  const CompareReport rep =
      compare_results(baseline, current, CompareOptions{});
  EXPECT_EQ(rep.added, 1);
  EXPECT_FALSE(rep.has_regression());
}

TEST(BenchCompare, ThresholdIsConfigurable) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  current.measurements[0].cycles *= 1.20;
  EXPECT_FALSE(compare_results(baseline, current,
                               CompareOptions{.threshold = 0.25})
                   .has_regression());
  EXPECT_TRUE(compare_results(baseline, current,
                              CompareOptions{.threshold = 0.10})
                  .has_regression());
}

TEST(BenchCompare, MergeAccumulatesCounts) {
  const SuiteResult baseline = sample_result();
  SuiteResult current = baseline;
  current.measurements[0].cycles *= 1.5;
  const CompareReport one =
      compare_results(baseline, current, CompareOptions{});
  CompareReport total;
  merge_compare_reports(total, one);
  merge_compare_reports(total, one);
  EXPECT_EQ(total.matched, 2 * one.matched);
  EXPECT_EQ(total.deltas.size(), 2 * one.deltas.size());
  EXPECT_TRUE(total.has_regression());
}

TEST(BenchArgs, DuplicateFlagKeepsLastValue) {
  const Args args({"--scale=0.1", "--scale=0.5"},
                  "test [--scale=F]");
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 0.5);
}

TEST(BenchArgs, GetStringReturnsRawValueOrDefault) {
  const Args args({"--out=results/dir", "--scale=0.1"},
                  "test [--scale=F] [--out=DIR]");
  EXPECT_EQ(args.get_string("out", ""), "results/dir");
  EXPECT_EQ(args.get_string("baseline", "bench/baselines"),
            "bench/baselines");
}

TEST(BenchArgs, ValuelessFlagActsAsBoolean) {
  const Args args({"--full"}, "test [--full] [--scale=F]");
  EXPECT_TRUE(args.get_flag("full"));
  EXPECT_FALSE(args.get_flag("scale"));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.25), 0.25);
}

}  // namespace
