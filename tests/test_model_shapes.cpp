// Regression tests for the *shapes* the reproduction must preserve (see
// DESIGN.md §5). Each test pins one qualitative finding of the paper on a
// small input, so a model change that breaks a headline conclusion fails
// loudly here rather than silently in a bench table.
#include <gtest/gtest.h>

#include "src/apps/bfs.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/rec/tree_traversal.h"
#include "src/sort/sort.h"
#include "src/tree/tree.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;
namespace rec = nestpar::rec;
namespace tree = nestpar::tree;
namespace sort = nestpar::sort;

using nested::LoopTemplate;
using rec::RecTemplate;
using rec::TreeAlgo;

namespace {

class ModelShapes : public testing::Test {
 protected:
  static double spmv_us(const matrix::CsrMatrix& m,
                        const std::vector<float>& x, LoopTemplate t,
                        int lb = 32) {
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = lb;
    apps::run_spmv(dev, m, x, t, p);
    return dev.report().total_us;
  }
};

TEST_F(ModelShapes, LoadBalancingBeatsBaselineOnSkewedInput) {
  // Paper: 2-6x for LB templates on irregular nested loops.
  const auto g = graph::generate_citeseer_like(0.02, 1, true);
  const auto m = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(m.cols, 2);
  const double base = spmv_us(m, x, LoopTemplate::kBaseline);
  for (LoopTemplate t : {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
                         LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
    EXPECT_GT(base / spmv_us(m, x, t), 1.1) << nested::name(t);
  }
}

TEST_F(ModelShapes, DparNaiveIsSlowerThanBaseline) {
  const auto g = graph::generate_citeseer_like(0.02, 1, true);
  const auto m = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(m.cols, 2);
  EXPECT_LT(spmv_us(m, x, LoopTemplate::kBaseline),
            spmv_us(m, x, LoopTemplate::kDparNaive));
}

TEST_F(ModelShapes, SpeedupDecreasesWithThreshold) {
  const auto g = graph::generate_citeseer_like(0.02, 1, true);
  const auto m = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(m.cols, 2);
  const double at32 = spmv_us(m, x, LoopTemplate::kDbufGlobal, 32);
  const double at1024 = spmv_us(m, x, LoopTemplate::kDbufGlobal, 1024);
  EXPECT_LT(at32, at1024);
}

TEST_F(ModelShapes, TemplatesDoNotHelpRegularInput) {
  // The paper's motivation: load balancing targets *irregular* loops.
  const auto g = graph::generate_regular(8000, 30, 3, true);
  const auto m = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(m.cols, 2);
  const double base = spmv_us(m, x, LoopTemplate::kBaseline);
  const double lb = spmv_us(m, x, LoopTemplate::kDbufGlobal);
  EXPECT_GT(base / lb, 0.5);
  EXPECT_LT(base / lb, 1.3);  // ...but the gain must be marginal at best.
}

TEST_F(ModelShapes, RecHierBeatsFlatOnWideRegularTrees) {
  const tree::Tree tr =
      tree::generate_tree({.depth = 3, .outdegree = 96, .sparsity = 0}, 2);
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr, {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kFlat});
  const double flat = dev.report().total_us;
  dev.reset();
  rec::run_tree_traversal(
      dev, tr, {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecHier});
  const double hier = dev.report().total_us;
  EXPECT_LT(hier, flat);
}

TEST_F(ModelShapes, RecNaiveLosesToSerialCpuOnTrees) {
  const tree::Tree tr =
      tree::generate_tree({.depth = 3, .outdegree = 32, .sparsity = 0}, 2);
  simt::CpuTimer cpu;
  rec::tree_traversal_serial_iterative(tr, TreeAlgo::kDescendants, &cpu);
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr,
      {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecNaive});
  EXPECT_GT(dev.report().total_us, cpu.us());
}

TEST_F(ModelShapes, SparsityErodesRecHierAdvantage) {
  // Paper Fig. 7(b): hier's warp utilization (and win) decays with sparsity.
  const tree::Tree dense =
      tree::generate_tree({.depth = 3, .outdegree = 96, .sparsity = 0}, 2);
  const tree::Tree sparse =
      tree::generate_tree({.depth = 3, .outdegree = 96, .sparsity = 3}, 2);
  const auto hier_eff = [](const tree::Tree& tr) {
    simt::Device dev;
    rec::run_tree_traversal(
        dev, tr,
        {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecHier});
    return dev.report().aggregate.warp_execution_efficiency();
  };
  EXPECT_GT(hier_eff(dense), hier_eff(sparse));
}

TEST_F(ModelShapes, RecursiveBfsIsCatastrophicallySlowerThanFlat) {
  const auto g = graph::generate_uniform_random(3000, 0, 32, 5);
  simt::Device dev;
  apps::bfs_flat_gpu(dev, g, 0);
  const double flat = dev.report().total_us;
  dev.reset();
  apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kRecNaive);
  const double naive = dev.report().total_us;
  EXPECT_GT(naive, flat * 50);  // Paper: orders of magnitude.
}

TEST_F(ModelShapes, ExtraStreamHelpsNaiveBfs) {
  const auto g = graph::generate_uniform_random(3000, 0, 32, 5);
  const auto run = [&](int streams) {
    simt::Device dev;
    apps::BfsRecOptions opt;
    opt.streams_per_block = streams;
    apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kRecNaive, opt);
    return dev.report().total_us;
  };
  EXPECT_LT(run(2), run(1) * 1.05);  // At worst neutral, typically faster.
}

TEST_F(ModelShapes, RecursiveCpuBfsBeatsIterativeCpu) {
  // Paper: 1.25-3.3x depending on graph size.
  const auto g = graph::generate_uniform_random(20000, 0, 64, 5);
  simt::CpuTimer it, rc;
  apps::bfs_serial_iterative(g, 0, &it);
  apps::bfs_serial_recursive(g, 0, &rc);
  const double ratio = it.us() / rc.us();
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 6.0);
}

TEST_F(ModelShapes, MergeSortBeatsBothCdpQuicksorts) {
  const std::size_t n = 50000;
  const auto run = [&](int algo) {
    auto keys = sort::make_keys(n, 11);
    simt::Device dev;
    if (algo == 0) sort::mergesort(dev, keys);
    if (algo == 1) sort::advanced_quicksort(dev, keys);
    if (algo == 2) sort::simple_quicksort(dev, keys);
    return dev.report().total_us;
  };
  const double merge = run(0), advanced = run(1), simple = run(2);
  EXPECT_LT(merge, advanced);
  EXPECT_LT(advanced, simple);
}

TEST_F(ModelShapes, SpfaMatchesDijkstra) {
  const auto g = graph::generate_power_law(3000, 1, 200, 12.0, 9, true);
  const auto a = apps::sssp_serial(g, 0);
  const auto b = apps::sssp_serial_dijkstra(g, 0);
  EXPECT_EQ(a, b);
}

TEST_F(ModelShapes, GmuSerializesMassiveFanout) {
  // Device-launch service makes 1000 nested grids slower than 1000x the
  // work in one grid — the dpar-naive mechanism.
  simt::Device dev;
  simt::LaunchConfig parent;
  parent.grid_blocks = 8;
  parent.block_threads = 128;
  parent.name = "parent";
  dev.launch_threads(parent, [](simt::LaneCtx& t) {
    simt::LaunchConfig child;
    child.grid_blocks = 1;
    child.block_threads = 32;
    child.name = "child";
    t.launch(child, simt::as_kernel([](simt::LaneCtx& c) { c.compute(4); }));
  });
  const double fanout = dev.report().total_us;
  dev.reset();
  simt::LaunchConfig fused;
  fused.grid_blocks = 8 * 128;
  fused.block_threads = 32;
  fused.name = "fused";
  dev.launch_threads(fused, [](simt::LaneCtx& t) { t.compute(4); });
  const double flat = dev.report().total_us;
  EXPECT_GT(fanout, flat * 10);
}

TEST_F(ModelShapes, PendingPoolOverflowEscalatesCost) {
  const auto run = [](int pool) {
    simt::DeviceSpec spec = simt::DeviceSpec::k20();
    spec.pending_launch_pool = pool;
    simt::Device dev(spec);
    simt::LaunchConfig parent;
    parent.grid_blocks = 26;
    parent.block_threads = 192;
    parent.name = "parent";
    dev.launch_threads(parent, [](simt::LaneCtx& t) {
      simt::LaunchConfig child;
      child.grid_blocks = 1;
      child.block_threads = 32;
      child.name = "child";
      t.launch_async(child,
                     simt::as_kernel([](simt::LaneCtx& c) { c.compute(1); }));
    });
    return dev.report().total_us;
  };
  EXPECT_GT(run(64), run(1 << 20) * 2);
}

TEST_F(ModelShapes, LognormalGeneratorCalibrated) {
  const auto g = graph::generate_lognormal(40000, 1, 1188, 73.9, 0.7, 3);
  const auto s = graph::degree_stats(g);
  EXPECT_NEAR(s.mean_degree, 73.9, 73.9 * 0.1);
  EXPECT_LE(s.max_degree, 1188u);
  EXPECT_GE(s.min_degree, 1u);
  EXPECT_THROW(graph::generate_lognormal(10, 1, 10, 20.0, 0.7, 3),
               std::invalid_argument);
  EXPECT_THROW(graph::generate_lognormal(10, 1, 10, 5.0, -1.0, 3),
               std::invalid_argument);
}

}  // namespace
