// Unit tests for the SIMT simulator substrate: device spec / occupancy,
// metrics arithmetic, warp combining (divergence, coalescing, atomics),
// and the block/lane execution contexts.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/simt/device.h"

namespace simt = nestpar::simt;

namespace {

simt::LaunchConfig cfg(int blocks, int threads, const char* name) {
  simt::LaunchConfig c;
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.name = name;
  return c;
}

TEST(DeviceSpec, K20Defaults) {
  const auto spec = simt::DeviceSpec::k20();
  EXPECT_EQ(spec.num_sms, 13);
  EXPECT_EQ(spec.cores_per_sm, 192);
  EXPECT_EQ(spec.warp_size, 32);
  EXPECT_EQ(spec.max_warps_per_sm, 64);
}

TEST(DeviceSpec, OccupancyLimitedByWarps) {
  const auto spec = simt::DeviceSpec::k20();
  // 1024-thread blocks = 32 warps: only 2 fit in 64 warps.
  EXPECT_EQ(spec.max_resident_blocks(1024, 0, 16), 2);
}

TEST(DeviceSpec, OccupancyLimitedByBlockSlots) {
  const auto spec = simt::DeviceSpec::k20();
  // 32-thread blocks: warp limit would allow 64, but only 16 block slots.
  EXPECT_EQ(spec.max_resident_blocks(32, 0, 16), 16);
}

TEST(DeviceSpec, OccupancyLimitedBySharedMemory) {
  const auto spec = simt::DeviceSpec::k20();
  EXPECT_EQ(spec.max_resident_blocks(64, 24 * 1024, 16), 2);
}

TEST(DeviceSpec, OccupancyLimitedByRegisters) {
  const auto spec = simt::DeviceSpec::k20();
  // 256 threads x 128 regs = 32768 regs per block; 65536 total -> 2 blocks.
  EXPECT_EQ(spec.max_resident_blocks(256, 0, 128), 2);
}

TEST(DeviceSpec, OccupancyRejectsOversizedBlock) {
  const auto spec = simt::DeviceSpec::k20();
  EXPECT_THROW(spec.max_resident_blocks(2048, 0, 16), std::invalid_argument);
  EXPECT_THROW(spec.max_resident_blocks(64, 96 * 1024, 16),
               std::invalid_argument);
}

TEST(DeviceSpec, WarpsPerBlockRoundsUp) {
  const auto spec = simt::DeviceSpec::k20();
  EXPECT_EQ(spec.warps_per_block(1), 1);
  EXPECT_EQ(spec.warps_per_block(32), 1);
  EXPECT_EQ(spec.warps_per_block(33), 2);
  EXPECT_EQ(spec.warps_per_block(192), 6);
}

TEST(Metrics, AccumulateAndRatios) {
  simt::Metrics a;
  a.warp_steps = 10;
  a.active_lane_ops = 160;
  a.gld_requested_bytes = 128;
  a.gld_transferred_bytes = 256;
  simt::Metrics b = a;
  b += a;
  EXPECT_EQ(b.warp_steps, 20u);
  EXPECT_DOUBLE_EQ(a.warp_execution_efficiency(), 0.5);
  EXPECT_DOUBLE_EQ(a.gld_efficiency(), 0.5);
  EXPECT_DOUBLE_EQ(simt::Metrics{}.warp_execution_efficiency(), 0.0);
  EXPECT_DOUBLE_EQ(simt::Metrics{}.gld_efficiency(), 0.0);
}

// --- Functional execution ---------------------------------------------------

TEST(Execution, ThreadKernelComputesRealResults) {
  simt::Device dev;
  std::vector<int> data(1000, 0);
  dev.launch_threads(cfg(8, 128, "fill"), [&](simt::LaneCtx& t) {
    const int i = t.global_idx();
    if (i >= static_cast<int>(data.size())) return;
    t.st(&data[i], i * 2);
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(data[i], i * 2);
}

TEST(Execution, GridStrideLoopCoversAllItems) {
  simt::Device dev;
  std::vector<int> hits(10000, 0);
  dev.launch_threads(cfg(4, 64, "stride"), [&](simt::LaneCtx& t) {
    for (int i = t.global_idx(); i < static_cast<int>(hits.size());
         i += t.grid_threads()) {
      t.st(&hits[i], hits[i] + 1);
    }
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10000);
}

TEST(Execution, AtomicAddReturnsOldValue) {
  simt::Device dev;
  int counter = 0;
  std::vector<int> olds(64, -1);
  dev.launch_threads(cfg(1, 64, "atomics"), [&](simt::LaneCtx& t) {
    olds[t.global_idx()] = t.atomic_add(&counter, 1);
  });
  EXPECT_EQ(counter, 64);
  // Sequential functional execution: old values are 0..63 in order.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(olds[i], i);
}

TEST(Execution, AtomicMinMaxCasExch) {
  simt::Device dev;
  int mn = 100, mx = -1, cas = 7, ex = 1;
  dev.launch_threads(cfg(1, 32, "rmw"), [&](simt::LaneCtx& t) {
    const int i = t.global_idx();
    t.atomic_min(&mn, i);
    t.atomic_max(&mx, i);
    t.atomic_cas(&cas, 7, 42);
    t.atomic_exch(&ex, i);
  });
  EXPECT_EQ(mn, 0);
  EXPECT_EQ(mx, 31);
  EXPECT_EQ(cas, 42);  // Only the first lane's CAS succeeds.
  EXPECT_EQ(ex, 31);
}

TEST(Execution, PhasesSeparatedByImplicitBarrier) {
  simt::Device dev;
  std::vector<int> out(128, 0);
  dev.launch(cfg(1, 128, "phased"), [&](simt::BlockCtx& blk) {
    auto buf = blk.shared_array<int>(128);
    blk.each_thread([&](simt::LaneCtx& t) {
      t.sh_st(&buf[t.thread_idx()], t.thread_idx());
    });
    // Implicit barrier: every lane now sees every other lane's write.
    blk.each_thread([&](simt::LaneCtx& t) {
      const int other = (t.thread_idx() + 64) % 128;
      t.st(&out[t.thread_idx()], t.sh_ld(&buf[other]));
    });
  });
  for (int i = 0; i < 128; ++i) EXPECT_EQ(out[i], (i + 64) % 128);
}

TEST(Execution, SharedMemoryOverflowThrows) {
  simt::Device dev;
  EXPECT_THROW(dev.launch(cfg(1, 32, "overflow"),
                          [&](simt::BlockCtx& blk) {
                            blk.shared_array<char>(49 * 1024);
                          }),
               std::runtime_error);
}

TEST(Execution, InvalidLaunchConfigThrows) {
  simt::Device dev;
  auto noop = [](simt::LaneCtx&) {};
  EXPECT_THROW(dev.launch_threads(cfg(0, 64, "bad"), noop),
               std::invalid_argument);
  EXPECT_THROW(dev.launch_threads(cfg(1, 0, "bad"), noop),
               std::invalid_argument);
  EXPECT_THROW(dev.launch_threads(cfg(1, 2048, "bad"), noop),
               std::invalid_argument);
}

TEST(Execution, NestedLaunchDepthLimitEnforced) {
  simt::Device dev(simt::DeviceSpec::k20(), 4);
  std::function<void(simt::LaneCtx&, int)> recurse =
      [&](simt::LaneCtx& t, int d) {
        t.launch_threads(cfg(1, 1, "deep"),
                         [&, d](simt::LaneCtx& t2) { recurse(t2, d + 1); });
      };
  EXPECT_THROW(dev.launch_threads(
                   cfg(1, 1, "root"),
                   [&](simt::LaneCtx& t) { recurse(t, 0); }),
               std::runtime_error);
}

TEST(Execution, NestedLaunchRunsEagerly) {
  simt::Device dev;
  std::vector<int> child_data(256, 0);
  int parent_saw = -1;
  dev.launch_threads(cfg(1, 1, "parent"), [&](simt::LaneCtx& t) {
    t.launch_threads(cfg(2, 128, "child"), [&](simt::LaneCtx& c) {
      child_data[c.global_idx()] = 1;
    });
    // CDP-with-sync semantics: the child's writes are visible here.
    parent_saw = child_data[200];
  });
  EXPECT_EQ(parent_saw, 1);
  EXPECT_EQ(std::accumulate(child_data.begin(), child_data.end(), 0), 256);
}

// --- Metrics from warp combining --------------------------------------------

TEST(WarpMetrics, FullWarpIsHundredPercentEfficient) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 32, "full"),
                     [&](simt::LaneCtx& t) { t.compute(4); });
  const auto rep = dev.report();
  EXPECT_DOUBLE_EQ(rep.aggregate.warp_execution_efficiency(), 1.0);
}

TEST(WarpMetrics, SingleActiveLaneIsLowEfficiency) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 32, "one"), [&](simt::LaneCtx& t) {
    if (t.lane() == 0) t.compute(10);
  });
  const auto rep = dev.report();
  EXPECT_NEAR(rep.aggregate.warp_execution_efficiency(), 1.0 / 32.0, 1e-9);
}

TEST(WarpMetrics, DivergentTripCountsLowerEfficiency) {
  simt::Device dev;
  // Lane i performs i+1 compute steps: efficiency = avg(1..32)/32 ~ 0.515.
  dev.launch_threads(cfg(1, 32, "tri"), [&](simt::LaneCtx& t) {
    for (int i = 0; i <= t.lane(); ++i) t.compute();
  });
  const auto rep = dev.report();
  EXPECT_NEAR(rep.aggregate.warp_execution_efficiency(), 33.0 / 64.0, 1e-9);
}

TEST(WarpMetrics, CoalescedLoadsAreEfficient) {
  simt::Device dev;
  alignas(128) static float data[32];
  dev.launch_threads(cfg(1, 32, "coalesced"), [&](simt::LaneCtx& t) {
    t.ld(&data[t.lane()]);
  });
  const auto rep = dev.report();
  // 32 x 4B consecutive = one 128B segment: 100% efficient.
  EXPECT_DOUBLE_EQ(rep.aggregate.gld_efficiency(), 1.0);
}

TEST(WarpMetrics, StridedLoadsAreInefficient) {
  simt::Device dev;
  std::vector<float> data(32 * 64);
  dev.launch_threads(cfg(1, 32, "strided"), [&](simt::LaneCtx& t) {
    t.ld(&data[static_cast<std::size_t>(t.lane()) * 64]);
  });
  const auto rep = dev.report();
  // Each lane hits its own 128B segment: 4/128 efficiency.
  EXPECT_NEAR(rep.aggregate.gld_efficiency(), 4.0 / 128.0, 1e-9);
}

TEST(WarpMetrics, StoreEfficiencyTracked) {
  simt::Device dev;
  std::vector<float> data(32 * 64);
  dev.launch_threads(cfg(1, 32, "stores"), [&](simt::LaneCtx& t) {
    t.st(&data[static_cast<std::size_t>(t.lane()) * 64], 1.0f);
  });
  const auto rep = dev.report();
  EXPECT_NEAR(rep.aggregate.gst_efficiency(), 4.0 / 128.0, 1e-9);
  EXPECT_DOUBLE_EQ(rep.aggregate.gld_efficiency(), 0.0);
}

TEST(WarpMetrics, AtomicsCounted) {
  simt::Device dev;
  int counter = 0;
  dev.launch_threads(cfg(2, 64, "atomics"),
                     [&](simt::LaneCtx& t) { t.atomic_add(&counter, 1); });
  const auto rep = dev.report();
  EXPECT_EQ(rep.aggregate.atomic_ops, 128u);
}

TEST(WarpMetrics, DeviceLaunchesCounted) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 8, "parent"), [&](simt::LaneCtx& t) {
    t.launch_threads(cfg(1, 32, "child"), [](simt::LaneCtx&) {});
  });
  const auto rep = dev.report();
  EXPECT_EQ(rep.aggregate.device_launches, 8u);
  EXPECT_EQ(rep.device_grids, 8u);
  EXPECT_EQ(rep.grids, 9u);
}

// --- Timing pass -------------------------------------------------------------

TEST(Timing, MoreWorkTakesLonger) {
  simt::Device dev;
  dev.launch_threads(cfg(13, 192, "small"),
                     [&](simt::LaneCtx& t) { t.compute(100); });
  const double small = dev.report().total_cycles;
  dev.reset();
  dev.launch_threads(cfg(13, 192, "big"),
                     [&](simt::LaneCtx& t) { t.compute(10000); });
  const double big = dev.report().total_cycles;
  EXPECT_GT(big, small * 10);
}

TEST(Timing, ParallelismBeatsSerialization) {
  // The same total work spread over many blocks should be faster than in one.
  simt::Device dev;
  dev.launch_threads(cfg(1, 192, "narrow"),
                     [&](simt::LaneCtx& t) { t.compute(26 * 1000); });
  const double narrow = dev.report().total_cycles;
  dev.reset();
  dev.launch_threads(cfg(26, 192, "wide"),
                     [&](simt::LaneCtx& t) { t.compute(1000); });
  const double wide = dev.report().total_cycles;
  EXPECT_GT(narrow, wide * 5);
}

TEST(Timing, ManyTinyGridsPayLaunchOverhead) {
  simt::Device dev;
  for (int i = 0; i < 64; ++i) {
    dev.launch_threads(cfg(1, 32, "tiny"),
                       [&](simt::LaneCtx& t) { t.compute(1); });
  }
  const double many = dev.report().total_cycles;
  dev.reset();
  dev.launch_threads(cfg(64, 32, "fused"),
                     [&](simt::LaneCtx& t) { t.compute(1); });
  const double one = dev.report().total_cycles;
  EXPECT_GT(many, one * 4);
}

TEST(Timing, StreamsOverlapIndependentGrids) {
  simt::Device dev;
  auto heavy = [&](simt::LaneCtx& t) { t.compute(50000); };
  // Two big single-block grids in the same stream: serialized.
  dev.launch_threads(cfg(1, 192, "a"), heavy, simt::StreamHandle{0});
  dev.launch_threads(cfg(1, 192, "b"), heavy, simt::StreamHandle{0});
  const double serial = dev.report().total_cycles;
  dev.reset();
  dev.launch_threads(cfg(1, 192, "a"), heavy, simt::StreamHandle{1});
  dev.launch_threads(cfg(1, 192, "b"), heavy, simt::StreamHandle{2});
  const double overlapped = dev.report().total_cycles;
  EXPECT_LT(overlapped, serial * 0.7);
}

TEST(Timing, AtomicHotspotBoundsKernelTime) {
  simt::Device dev;
  int hot = 0;
  dev.launch_threads(cfg(64, 192, "hot"),
                     [&](simt::LaneCtx& t) { t.atomic_add(&hot, 1); });
  const double hotspot = dev.report().total_cycles;
  dev.reset();
  std::vector<int> spread(64 * 192, 0);
  dev.launch_threads(cfg(64, 192, "spread"), [&](simt::LaneCtx& t) {
    t.atomic_add(&spread[t.global_idx()], 1);
  });
  const double scattered = dev.report().total_cycles;
  EXPECT_GT(hotspot, scattered * 2);
}

TEST(Timing, OccupancyMetricPopulated) {
  simt::Device dev;
  dev.launch_threads(cfg(26, 192, "occ"),
                     [&](simt::LaneCtx& t) { t.compute(1000); });
  const auto rep = dev.report();
  const double occ = rep.aggregate.warp_occupancy(dev.spec().max_warps_per_sm);
  EXPECT_GT(occ, 0.0);
  EXPECT_LE(occ, 1.0);
}

TEST(Timing, ReportGroupsKernelsByName) {
  simt::Device dev;
  for (int i = 0; i < 3; ++i) {
    dev.launch_threads(cfg(1, 32, "repeat"),
                       [&](simt::LaneCtx& t) { t.compute(1); });
  }
  dev.launch_threads(cfg(1, 32, "other"),
                     [&](simt::LaneCtx& t) { t.compute(1); });
  const auto rep = dev.report();
  EXPECT_EQ(rep.kernel("repeat").invocations, 3u);
  EXPECT_EQ(rep.kernel("other").invocations, 1u);
  EXPECT_THROW(rep.kernel("missing"), std::out_of_range);
}

TEST(Timing, ResetClearsSession) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 32, "x"), [&](simt::LaneCtx& t) { t.compute(1); });
  dev.reset();
  const auto rep = dev.report();
  EXPECT_EQ(rep.grids, 0u);
  EXPECT_DOUBLE_EQ(rep.total_cycles, 0.0);
}

TEST(Timing, EmptyGridStillFinishes) {
  simt::Device dev;
  dev.launch_threads(cfg(4, 64, "noop"), [](simt::LaneCtx&) {});
  const auto rep = dev.report();
  EXPECT_GT(rep.total_cycles, 0.0);  // Launch + dispatch overheads.
}

}  // namespace
