// Tests for the extension layers: symmetrize / sort_neighbors, connected
// components, triangle counting (both across templates), the model-driven
// autotuner, Chrome-trace export, and the DeviceSpec presets.
#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/cc.h"
#include "src/apps/kcore.h"
#include "src/apps/spmv.h"
#include "src/apps/triangles.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/autotune.h"
#include "src/simt/trace_export.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;

using nested::LoopTemplate;

namespace {

// --- graph utilities -----------------------------------------------------------

TEST(GraphUtil, SymmetrizeAddsReverseEdgesAndDedupes) {
  const graph::Edge edges[] = {{0, 1, 1.f}, {1, 0, 1.f}, {2, 1, 1.f}};
  const graph::Csr s = graph::symmetrize(graph::build_csr(3, edges));
  EXPECT_NO_THROW(s.validate());
  // 0<->1 deduped to one edge each way; 1<->2 mirrored.
  EXPECT_EQ(s.num_edges(), 4u);
  ASSERT_EQ(s.degree(1), 2u);
  EXPECT_EQ(s.neighbors(1)[0], 0u);
  EXPECT_EQ(s.neighbors(1)[1], 2u);
}

TEST(GraphUtil, SortNeighborsOrdersRowsAndKeepsWeights) {
  const graph::Edge edges[] = {{0, 5, 50.f}, {0, 2, 20.f}, {0, 9, 90.f}};
  graph::Csr g = graph::build_csr(10, edges, true);
  graph::sort_neighbors(g);
  EXPECT_EQ(g.neighbors(0)[0], 2u);
  EXPECT_EQ(g.neighbors(0)[1], 5u);
  EXPECT_EQ(g.neighbors(0)[2], 9u);
  EXPECT_FLOAT_EQ(g.weights[0], 20.f);
  EXPECT_FLOAT_EQ(g.weights[2], 90.f);
}

// --- connected components ------------------------------------------------------

class CcTemplates : public testing::TestWithParam<LoopTemplate> {};

TEST_P(CcTemplates, MatchesUnionFind) {
  // Three components of different sizes plus isolated nodes.
  std::vector<graph::Edge> edges;
  for (std::uint32_t v = 0; v < 40; ++v) edges.push_back({v, v + 1, 1.f});
  for (std::uint32_t v = 50; v < 70; v += 2) edges.push_back({v, v + 2, 1.f});
  edges.push_back({80, 81, 1.f});
  const graph::Csr g = graph::symmetrize(graph::build_csr(100, edges));

  const auto want = apps::cc_serial(g);
  simt::Device dev;
  nested::LoopParams p;
  p.lb_threshold = 4;
  const auto got = apps::run_cc(dev, g, GetParam(), p);
  EXPECT_EQ(got, want);
  // 41-chain + 11-chain(evens 50..70) + pair + isolated nodes.
  EXPECT_EQ(apps::count_components(got),
            static_cast<std::uint32_t>(100 - 41 - 11 - 2 + 3));
}

TEST_P(CcTemplates, RandomGraphMatchesUnionFind) {
  const graph::Csr g =
      graph::symmetrize(graph::generate_uniform_random(600, 0, 3, 17));
  const auto want = apps::cc_serial(g);
  simt::Device dev;
  const auto got = apps::run_cc(dev, g, GetParam());
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Templates, CcTemplates,
    testing::Values(LoopTemplate::kBaseline, LoopTemplate::kDualQueue,
                    LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
                    LoopTemplate::kDparOpt),
    [](const auto& info) {
      std::string s(nested::name(info.param));
      for (auto& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

TEST(Cc, SingleComponentConverges) {
  const graph::Csr g =
      graph::symmetrize(graph::generate_regular(300, 4, 5));
  simt::Device dev;
  const auto labels = apps::run_cc(dev, g, LoopTemplate::kBaseline);
  // A regular random graph of degree 4 is connected w.h.p.
  EXPECT_EQ(apps::count_components(labels), 1u);
  for (const auto l : labels) EXPECT_EQ(l, 0u);
}

// --- k-core decomposition -------------------------------------------------------

TEST(Kcore, TriangleWithTail) {
  // Triangle 0-1-2 plus a tail 2-3: coreness 2,2,2,1... tail end 3 has
  // degree 1 -> core 1; triangle members core 2.
  const graph::Edge edges[] = {{0, 1, 1.f}, {1, 2, 1.f}, {2, 0, 1.f},
                               {2, 3, 1.f}};
  const graph::Csr g = graph::symmetrize(graph::build_csr(4, edges));
  const auto want = apps::kcore_serial(g);
  EXPECT_EQ(want[0], 2u);
  EXPECT_EQ(want[3], 1u);
  simt::Device dev;
  EXPECT_EQ(apps::run_kcore(dev, g, LoopTemplate::kBaseline), want);
}

TEST(Kcore, IsolatedNodesHaveCoreZero) {
  const graph::Csr g =
      graph::symmetrize(graph::build_csr(5, std::span<const graph::Edge>{}));
  simt::Device dev;
  const auto core = apps::run_kcore(dev, g, LoopTemplate::kBaseline);
  for (const auto c : core) EXPECT_EQ(c, 0u);
}

TEST(Kcore, TemplatesAgreeOnRmatGraph) {
  const graph::Csr g = graph::symmetrize(graph::generate_rmat(9, 6, 3));
  const auto want = apps::kcore_serial(g);
  for (const LoopTemplate t :
       {LoopTemplate::kBaseline, LoopTemplate::kDbufShared,
        LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = 8;
    EXPECT_EQ(apps::run_kcore(dev, g, t, p), want) << nested::name(t);
  }
}

TEST(Kcore, CompleteGraphCoreness) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = 0; b < 8; ++b) {
      if (a != b) edges.push_back({a, b, 1.f});
    }
  }
  const graph::Csr g = graph::symmetrize(graph::build_csr(8, edges));
  simt::Device dev;
  const auto core = apps::run_kcore(dev, g, LoopTemplate::kDbufGlobal);
  for (const auto c : core) EXPECT_EQ(c, 7u);  // K8 is a 7-core.
}

// --- RMAT generator -------------------------------------------------------------

TEST(Rmat, ShapeAndDeterminism) {
  const graph::Csr a = graph::generate_rmat(10, 8, 7);
  EXPECT_EQ(a.num_nodes(), 1024u);
  EXPECT_EQ(a.num_edges(), 8192u);
  EXPECT_NO_THROW(a.validate());
  const graph::Csr b = graph::generate_rmat(10, 8, 7);
  EXPECT_EQ(a.col_indices, b.col_indices);
  // Skew: the max-degree node should far exceed the mean (8).
  EXPECT_GT(graph::degree_stats(a).max_degree, 24u);
}

TEST(Rmat, RejectsBadParams) {
  EXPECT_THROW(graph::generate_rmat(0, 8, 1), std::invalid_argument);
  EXPECT_THROW(graph::generate_rmat(8, 0, 1), std::invalid_argument);
  EXPECT_THROW(graph::generate_rmat(8, 8, 1, 0.5, 0.3, 0.3),
               std::invalid_argument);
}

// --- triangle counting ---------------------------------------------------------

TEST(Triangles, CompleteGraphK5) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = 0; b < 5; ++b) {
      if (a != b) edges.push_back({a, b, 1.f});
    }
  }
  graph::Csr g = graph::build_csr(5, edges);
  graph::sort_neighbors(g);
  simt::Device dev;
  // C(5,3) = 10 triangles.
  EXPECT_EQ(apps::run_triangle_count(dev, g, LoopTemplate::kBaseline), 10u);
  EXPECT_EQ(apps::triangle_count_serial(g), 10u);
}

TEST(Triangles, TriangleFreeBipartite) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t a = 0; a < 10; ++a) {
    for (std::uint32_t b = 10; b < 20; ++b) {
      edges.push_back({a, b, 1.f});
      edges.push_back({b, a, 1.f});
    }
  }
  graph::Csr g = graph::build_csr(20, edges);
  graph::sort_neighbors(g);
  simt::Device dev;
  EXPECT_EQ(apps::run_triangle_count(dev, g, LoopTemplate::kDbufGlobal), 0u);
}

TEST(Triangles, TemplatesAgreeOnRandomGraph) {
  const graph::Csr g =
      graph::symmetrize(graph::generate_uniform_random(250, 2, 14, 23));
  const std::uint64_t want = apps::triangle_count_serial(g);
  for (const LoopTemplate t :
       {LoopTemplate::kBaseline, LoopTemplate::kDualQueue,
        LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
        LoopTemplate::kDparOpt}) {
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = 8;
    EXPECT_EQ(apps::run_triangle_count(dev, g, t, p), want)
        << nested::name(t);
  }
}

// --- autotuner -----------------------------------------------------------------

TEST(Autotune, PicksLoadBalancingForSkewedInput) {
  const auto g = graph::generate_power_law(5000, 1, 800, 25.0, 3, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 1);
  std::vector<float> y(a.rows, 0.0f);
  apps::SpmvWorkload w(a, x.data(), y.data());

  const auto res = nested::autotune_nested_loop(w);
  EXPECT_GT(res.best_speedup(), 1.2);
  EXPECT_TRUE(res.best.flattened ||
              res.best.tmpl != LoopTemplate::kBaseline);
  // Candidates are sorted ascending by model time.
  for (std::size_t i = 1; i < res.all.size(); ++i) {
    EXPECT_LE(res.all[i - 1].model_us, res.all[i].model_us);
  }
}

TEST(Autotune, KeepsBaselineNearRegularInput) {
  const auto g = graph::generate_regular(5000, 24, 3, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 1);
  std::vector<float> y(a.rows, 0.0f);
  apps::SpmvWorkload w(a, x.data(), y.data());

  nested::AutotuneOptions opt;
  opt.thresholds = {32, 64};  // Thresholds above the uniform degree.
  opt.include_flattened = false;
  const auto res = nested::autotune_nested_loop(w, opt);
  // Nothing defers, so no candidate can beat the baseline meaningfully.
  EXPECT_LT(res.best_speedup(), 1.15);
}

TEST(Autotune, LabelsAreDescriptive) {
  nested::TuneCandidate c;
  c.tmpl = LoopTemplate::kDbufShared;
  c.lb_threshold = 64;
  EXPECT_EQ(c.label(), "dbuf-shared/lb64");
  c.flattened = true;
  EXPECT_EQ(c.label(), "flattened");
  c = nested::TuneCandidate{};
  EXPECT_EQ(c.label(), "baseline");
}

// --- trace export --------------------------------------------------------------

TEST(TraceExport, EmitsWellFormedEvents) {
  simt::Device dev;
  simt::LaunchConfig cfg;
  cfg.grid_blocks = 2;
  cfg.block_threads = 64;
  cfg.name = "alpha";
  dev.launch_threads(cfg, [](simt::LaneCtx& t) {
    t.compute(10);
    simt::LaunchConfig child;
    child.grid_blocks = 1;
    child.block_threads = 32;
    child.name = "beta\"quoted";
    if (t.thread_idx() == 0) {
      t.launch(child, simt::as_kernel([](simt::LaneCtx&) {}));
    }
  });
  std::ostringstream os;
  simt::write_chrome_trace(os, dev);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("beta\\\"quoted"), std::string::npos);
  EXPECT_NE(json.find("device-launch"), std::string::npos);
  // Export must not perturb the subsequent report.
  const auto rep = dev.report();
  EXPECT_EQ(rep.grids, 3u);  // 1 parent grid + 1 child per parent block.
}

TEST(TraceExport, EmptySessionIsValid) {
  simt::Device dev;
  std::ostringstream os;
  simt::write_chrome_trace(os, dev);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

// --- device presets ------------------------------------------------------------

TEST(DevicePresets, DistinctAndValid) {
  const auto k20 = simt::DeviceSpec::k20();
  const auto k40 = simt::DeviceSpec::k40();
  const auto tiny = simt::DeviceSpec::small_kepler();
  EXPECT_GT(k40.num_sms, k20.num_sms);
  EXPECT_GT(k40.clock_ghz, k20.clock_ghz);
  EXPECT_EQ(tiny.num_sms, 2);
}

TEST(DevicePresets, BiggerDeviceIsFaster) {
  const auto run = [](const simt::DeviceSpec& spec) {
    simt::Device dev(spec);
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 60;
    cfg.block_threads = 192;
    cfg.name = "work";
    dev.launch_threads(cfg, [](simt::LaneCtx& t) { t.compute(4000); });
    return dev.report().total_us;
  };
  EXPECT_LT(run(simt::DeviceSpec::k40()), run(simt::DeviceSpec::k20()));
  EXPECT_LT(run(simt::DeviceSpec::k20()),
            run(simt::DeviceSpec::small_kepler()));
}

}  // namespace
