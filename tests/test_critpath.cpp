// Critical-path analyzer tests: causal-timestamp invariants of the
// scheduler, makespan-tiling attribution, verdict classification, engine
// determinism of the recovered chain, and the attribution==makespan
// invariant across every checked-in baseline profile.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/results.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/nested/templates.h"
#include "src/simt/critpath.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"
#include "src/simt/scheduler.h"

namespace simt = nestpar::simt;
namespace bench = nestpar::bench;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace nested = nestpar::nested;

namespace {

simt::LaunchConfig cfg(int blocks, int threads, const char* name) {
  simt::LaunchConfig c;
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.name = name;
  return c;
}

struct Scheduled {
  simt::LaunchGraph graph;
  simt::ScheduleResult sched;
};

Scheduled run_schedule(simt::Device& dev) {
  Scheduled s;
  s.graph = dev.graph();
  s.sched = simt::schedule(dev.spec(), s.graph);
  return s;
}

/// A workload exercising every edge kind at once: two host streams, a
/// cross-stream dependency, device children, and imbalanced blocks.
void mixed_workload(simt::Device& dev) {
  dev.launch_threads(cfg(1, 32, "parent"), [](simt::LaneCtx& t) {
    t.compute(2000);
    auto child = [](simt::LaneCtx& c) { c.compute(4000); };
    t.launch_threads(cfg(2, 32, "child-a"), child);
    t.launch_threads(cfg(1, 32, "child-b"), child);
  }, simt::StreamHandle{1});
  // Imbalanced multi-block grid: block 0 does 4x the work of the others.
  dev.launch_threads(cfg(4, 64, "skewed"), [](simt::LaneCtx& t) {
    t.compute(t.block_idx() == 0 ? 20000 : 5000);
  }, simt::StreamHandle{2});
  // Same-stream successor (FIFO edge) ...
  dev.launch_threads(cfg(1, 64, "tail"),
                     [](simt::LaneCtx& t) { t.compute(3000); },
                     simt::StreamHandle{2});
  // ... and a cross-stream consumer (dependency edge on "tail").
  dev.stream_wait(simt::StreamHandle{3},
                  dev.record_event(simt::StreamHandle{2}));
  dev.launch_threads(cfg(1, 64, "joiner"),
                     [](simt::LaneCtx& t) { t.compute(1000); },
                     simt::StreamHandle{3});
}

double rel_err(double a, double b) {
  return std::abs(a - b) / std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

// ---------------------------------------------------------------------------
// Scheduler causal-timestamp invariants.

TEST(SchedulerCausality, TimelineIsMonotonicPerNode) {
  simt::Device dev;
  mixed_workload(dev);
  const auto s = run_schedule(dev);
  ASSERT_EQ(s.sched.node_issued.size(), s.graph.nodes.size());
  for (const simt::KernelNode& n : s.graph.nodes) {
    const auto id = n.id;
    EXPECT_LE(s.sched.node_issued[id], s.sched.node_ready[id]) << n.name;
    EXPECT_LE(s.sched.node_ready[id], s.sched.node_activated[id]) << n.name;
    EXPECT_LE(s.sched.node_activated[id], s.sched.node_queued[id]) << n.name;
    EXPECT_LE(s.sched.node_queued[id], s.sched.node_start[id]) << n.name;
    EXPECT_LE(s.sched.node_start[id], s.sched.node_blocks_done[id]) << n.name;
    EXPECT_LE(s.sched.node_blocks_done[id], s.sched.node_end[id]) << n.name;
  }
}

TEST(SchedulerCausality, ChildIssueFollowsParentStart) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 1, "parent"), [](simt::LaneCtx& t) {
    t.compute(5000);
    t.launch_threads(cfg(1, 32, "child"),
                     [](simt::LaneCtx& c) { c.compute(2000); });
  });
  const auto s = run_schedule(dev);
  ASSERT_EQ(s.graph.nodes.size(), 2u);
  // The child is issued from inside the parent's execution span, and cannot
  // become ready before the device launch latency has elapsed.
  EXPECT_GE(s.sched.node_issued[1], s.sched.node_start[0]);
  EXPECT_LE(s.sched.node_issued[1], s.sched.node_end[0]);
  EXPECT_GE(s.sched.node_ready[1],
            s.sched.node_issued[1] + dev.spec().device_launch_cycles() - 1e-6);
  EXPECT_GE(s.sched.node_start[1], s.sched.node_ready[1]);
}

TEST(SchedulerCausality, IntraStreamFifoIsMonotonic) {
  simt::Device dev;
  for (int i = 0; i < 4; ++i) {
    dev.launch_threads(cfg(1, 64, "g"),
                       [i](simt::LaneCtx& t) { t.compute(1000 * (i + 1)); },
                       simt::StreamHandle{5});
  }
  const auto s = run_schedule(dev);
  for (std::size_t i = 1; i < s.graph.nodes.size(); ++i) {
    EXPECT_GE(s.sched.node_start[i], s.sched.node_end[i - 1]);
    // Queue points are monotone too: a grid cannot become eligible before
    // its stream predecessor finished.
    EXPECT_GE(s.sched.node_queued[i], s.sched.node_end[i - 1] - 1e-6);
  }
}

// ---------------------------------------------------------------------------
// Critical-path attribution invariants.

TEST(CritPath, AttributionTilesTheMakespan) {
  simt::Device dev;
  mixed_workload(dev);
  auto s = run_schedule(dev);
  const simt::CritPath cp = simt::analyze_critical_path(s.graph, s.sched);

  EXPECT_DOUBLE_EQ(cp.makespan, s.sched.total_cycles);
  EXPECT_LT(rel_err(cp.total.total(), cp.makespan), 1e-9);

  // Per-kernel cycles are the same cycles, just keyed differently.
  simt::CritAttribution per_kernel_sum;
  for (const auto& [name, attr] : cp.per_kernel) per_kernel_sum += attr;
  EXPECT_LT(rel_err(per_kernel_sum.total(), cp.makespan), 1e-9);

  // Folded stacks carry the same total again.
  double folded_sum = 0.0;
  for (const auto& [stack, cyc] : cp.folded) folded_sum += cyc;
  EXPECT_LT(rel_err(folded_sum, cp.makespan), 1e-9);

  // The chain tiles [0, makespan] in ascending order without overlap.
  ASSERT_FALSE(cp.chain.empty());
  double cursor = 0.0;
  for (const simt::CritSegment& seg : cp.chain) {
    EXPECT_GE(seg.begin, cursor - 1e-6) << seg.kernel;
    EXPECT_GE(seg.cycles, 0.0);
    cursor = seg.begin + seg.cycles;
  }
  EXPECT_LT(rel_err(cursor, cp.makespan), 1e-9);
  EXPECT_EQ(cp.chain.back().begin + cp.chain.back().cycles, cursor);
}

TEST(CritPath, SingleGridSplitsIntoLaunchFootAndExecution) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 64, "only"),
                     [](simt::LaneCtx& t) { t.compute(8000); });
  auto s = run_schedule(dev);
  const simt::CritPath cp = simt::analyze_critical_path(s.graph, s.sched);
  // Exactly one grid: makespan = host launch foot + execution span, and the
  // launch share equals the span before the grid started.
  EXPECT_NEAR(cp.total[simt::CritCategory::kLaunch] +
                  cp.total[simt::CritCategory::kOccupancy],
              s.sched.node_start[0], 1e-6);
  EXPECT_NEAR(cp.total[simt::CritCategory::kCompute] +
                  cp.total[simt::CritCategory::kImbalance] +
                  cp.total[simt::CritCategory::kFault],
              s.sched.node_end[0] - s.sched.node_start[0], 1e-6);
  // A single-block grid has no straggler share.
  EXPECT_DOUBLE_EQ(cp.total[simt::CritCategory::kImbalance], 0.0);
  EXPECT_DOUBLE_EQ(cp.total[simt::CritCategory::kDepWait], 0.0);
}

TEST(CritPath, ImbalancedGridShowsStragglerShare) {
  simt::Device dev;
  dev.launch_threads(cfg(8, 64, "skewed"), [](simt::LaneCtx& t) {
    t.compute(t.block_idx() == 0 ? 40000 : 2000);
  });
  auto s = run_schedule(dev);
  const simt::CritPath cp = simt::analyze_critical_path(s.graph, s.sched);
  EXPECT_GT(cp.total[simt::CritCategory::kImbalance], 0.0);
  // The straggler share never exceeds the grid's execution span.
  EXPECT_LE(cp.total[simt::CritCategory::kImbalance],
            s.sched.node_end[0] - s.sched.node_start[0]);
}

TEST(CritPath, EmptyGraphYieldsEmptyPath) {
  simt::LaunchGraph graph;
  simt::ScheduleResult sched;
  const simt::CritPath cp = simt::analyze_critical_path(graph, sched);
  EXPECT_DOUBLE_EQ(cp.makespan, 0.0);
  EXPECT_DOUBLE_EQ(cp.total.total(), 0.0);
  EXPECT_TRUE(cp.chain.empty());
  EXPECT_TRUE(cp.per_kernel.empty());
}

TEST(CritPath, DeviceChildrenAttributeLaunchCycles) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 1, "parent"), [](simt::LaneCtx& t) {
    // Children dominate the tail, so the path walks a device-launch edge.
    t.launch_threads(cfg(1, 32, "child"),
                     [](simt::LaneCtx& c) { c.compute(50000); });
  });
  auto s = run_schedule(dev);
  const simt::CritPath cp = simt::analyze_critical_path(s.graph, s.sched);
  EXPECT_GE(cp.total[simt::CritCategory::kLaunch],
            dev.spec().device_launch_cycles() - 1e-6);
  EXPECT_TRUE(cp.per_kernel.count("child"));
  EXPECT_TRUE(cp.per_kernel.count("parent"));
}

TEST(CritPath, CategoryNamesRoundTrip) {
  for (int i = 0; i < simt::kCritCategoryCount; ++i) {
    const auto c = static_cast<simt::CritCategory>(i);
    simt::CritCategory back{};
    EXPECT_TRUE(simt::parse_crit_category(simt::to_string(c), back));
    EXPECT_EQ(back, c);
  }
  simt::CritCategory out{};
  EXPECT_FALSE(simt::parse_crit_category("not-a-category", out));
}

// ---------------------------------------------------------------------------
// Verdict classification.

simt::CritAttribution make_attr(double compute, double imbalance,
                                double launch, double stream, double dep,
                                double occ, double fault) {
  simt::CritAttribution a;
  a[simt::CritCategory::kCompute] = compute;
  a[simt::CritCategory::kImbalance] = imbalance;
  a[simt::CritCategory::kLaunch] = launch;
  a[simt::CritCategory::kStreamWait] = stream;
  a[simt::CritCategory::kDepWait] = dep;
  a[simt::CritCategory::kOccupancy] = occ;
  a[simt::CritCategory::kFault] = fault;
  return a;
}

TEST(CritVerdict, ThresholdsClassifyEachMechanism) {
  using simt::CritVerdict;
  EXPECT_EQ(simt::classify_bottleneck(make_attr(90, 5, 5, 0, 0, 0, 0)),
            CritVerdict::kComputeBound);
  EXPECT_EQ(simt::classify_bottleneck(make_attr(50, 5, 40, 0, 0, 5, 0)),
            CritVerdict::kLaunchBound);
  EXPECT_EQ(simt::classify_bottleneck(make_attr(60, 30, 5, 0, 0, 5, 0)),
            CritVerdict::kImbalanceBound);
  EXPECT_EQ(simt::classify_bottleneck(make_attr(60, 5, 5, 10, 20, 0, 0)),
            CritVerdict::kDependencyBound);
  // Launch wins ties against dependency when both clear their thresholds.
  EXPECT_EQ(simt::classify_bottleneck(make_attr(30, 0, 40, 0, 30, 0, 0)),
            CritVerdict::kLaunchBound);
  // Empty attribution is compute-bound by convention.
  EXPECT_EQ(simt::classify_bottleneck(simt::CritAttribution{}),
            CritVerdict::kComputeBound);
}

TEST(CritVerdict, TemplateRollupUsesMiddleSegment) {
  std::map<std::string, simt::CritAttribution> per_kernel;
  per_kernel["sssp/baseline/main"] = make_attr(10, 0, 0, 0, 0, 0, 0);
  per_kernel["sssp/baseline/relax"] = make_attr(5, 0, 0, 0, 0, 0, 0);
  per_kernel["sssp/dpar-naive/main"] = make_attr(1, 0, 9, 0, 0, 0, 0);
  per_kernel["flat"] = make_attr(2, 0, 0, 0, 0, 0, 0);
  const auto by_tmpl = simt::attribution_by_template(per_kernel);
  ASSERT_EQ(by_tmpl.size(), 3u);
  EXPECT_DOUBLE_EQ(by_tmpl.at("baseline").total(), 15.0);
  EXPECT_DOUBLE_EQ(by_tmpl.at("dpar-naive").total(), 10.0);
  EXPECT_DOUBLE_EQ(by_tmpl.at("flat").total(), 2.0);
}

// ---------------------------------------------------------------------------
// Engine determinism: the recovered chain is a pure function of the graph.

TEST(CritPathDeterminism, EnginesRecoverIdenticalChains) {
  const graph::Csr g = graph::generate_citeseer_like(0.05, 20150707, true);
  auto run = [&](const simt::ExecPolicy& policy) {
    simt::Device dev;
    simt::Session session = dev.session(policy);
    apps::run_sssp(dev, g, 0, nested::LoopTemplate::kDualQueue);
    return session.report();
  };
  const simt::RunReport serial = run(simt::ExecPolicy::serial());
  const simt::RunReport parallel =
      run(simt::ExecPolicy{simt::ExecMode::kParallel, 4});

  const simt::CritPath& a = serial.critical_path;
  const simt::CritPath& b = parallel.critical_path;
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    EXPECT_EQ(a.chain[i].node, b.chain[i].node) << i;
    EXPECT_EQ(a.chain[i].category, b.chain[i].category) << i;
    EXPECT_DOUBLE_EQ(a.chain[i].begin, b.chain[i].begin) << i;
    EXPECT_DOUBLE_EQ(a.chain[i].cycles, b.chain[i].cycles) << i;
    EXPECT_EQ(a.chain[i].kernel, b.chain[i].kernel) << i;
  }
  EXPECT_EQ(a.folded, b.folded);
}

// ---------------------------------------------------------------------------
// Checked-in baselines: the invariant holds on every profile we ship, and
// the Table-1 verdicts of the paper are reproduced from the fig5 profile.

TEST(CritPathBaselines, AttributionSumsToMakespanOnAllSuites) {
  const std::filesystem::path dir = NESTPAR_BASELINE_DIR;
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string stem = entry.path().filename().string();
    if (stem.rfind("PROF_", 0) != 0) continue;
    SCOPED_TRACE(stem);
    const bench::SuiteProfile p = bench::load_profile_file(entry.path());
    ASSERT_EQ(p.schema_version, bench::kProfileSchemaVersion);
    ++seen;
    // Profiler accumulates one attribution per observed report; the grand
    // total must equal the sum of makespans the profiler saw.
    EXPECT_LT(rel_err(p.prof.crit_total.total(), p.prof.total_cycles), 1e-6);
    simt::CritAttribution per_kernel_sum;
    for (const auto& [name, attr] : p.prof.crit_kernels) {
      per_kernel_sum += attr;
    }
    EXPECT_LT(rel_err(per_kernel_sum.total(), p.prof.total_cycles), 1e-6);
  }
  EXPECT_GE(seen, 16);
}

TEST(CritPathBaselines, Fig5VerdictsMatchTableOne) {
  const std::filesystem::path path =
      std::filesystem::path(NESTPAR_BASELINE_DIR) / "PROF_fig5_sssp.json";
  const bench::SuiteProfile p = bench::load_profile_file(path);
  const auto by_tmpl = simt::attribution_by_template(p.prof.crit_kernels);
  ASSERT_TRUE(by_tmpl.count("dpar-naive"));
  ASSERT_TRUE(by_tmpl.count("baseline"));
  EXPECT_EQ(simt::classify_bottleneck(by_tmpl.at("dpar-naive")),
            simt::CritVerdict::kLaunchBound);
  EXPECT_EQ(simt::classify_bottleneck(by_tmpl.at("baseline")),
            simt::CritVerdict::kImbalanceBound);
}

}  // namespace
