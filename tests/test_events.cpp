// Cross-stream event (cudaEventRecord / cudaStreamWaitEvent analogue) tests:
// ordering semantics in the timing model, no-op cases, and the dual-queue
// template's fork-join pattern built on them.
#include <gtest/gtest.h>

#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/simt/device.h"
#include "src/simt/scheduler.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;

namespace {

simt::LaunchConfig cfg(int blocks, int threads, const char* name) {
  simt::LaunchConfig c;
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.name = name;
  return c;
}

simt::ScheduleResult run_schedule(simt::Device& dev) {
  simt::LaunchGraph graph = dev.graph();
  return simt::schedule(dev.spec(), graph);
}

TEST(Events, WaitOrdersAcrossStreams) {
  simt::Device dev;
  auto heavy = [](simt::LaneCtx& t) { t.compute(50000); };
  auto light = [](simt::LaneCtx& t) { t.compute(10); };
  dev.launch_threads(cfg(1, 64, "producer"), heavy, simt::StreamHandle{1});
  const simt::EventHandle ev = dev.record_event(simt::StreamHandle{1});
  dev.stream_wait(simt::StreamHandle{2}, ev);
  dev.launch_threads(cfg(1, 64, "consumer"), light, simt::StreamHandle{2});
  const auto s = run_schedule(dev);
  EXPECT_GE(s.node_start[1], s.node_end[0]);
}

TEST(Events, WithoutWaitStreamsOverlap) {
  simt::Device dev;
  auto heavy = [](simt::LaneCtx& t) { t.compute(50000); };
  auto light = [](simt::LaneCtx& t) { t.compute(10); };
  dev.launch_threads(cfg(1, 64, "producer"), heavy, simt::StreamHandle{1});
  dev.launch_threads(cfg(1, 64, "consumer"), light, simt::StreamHandle{2});
  const auto s = run_schedule(dev);
  EXPECT_LT(s.node_start[1], s.node_end[0]);
}

TEST(Events, EventOnEmptyStreamIsComplete) {
  simt::Device dev;
  const simt::EventHandle ev = dev.record_event(simt::StreamHandle{9});
  dev.stream_wait(simt::StreamHandle{2}, ev);
  dev.launch_threads(cfg(1, 32, "free"),
                     [](simt::LaneCtx& t) { t.compute(1); },
                     simt::StreamHandle{2});
  EXPECT_GT(dev.report().total_cycles, 0.0);  // No deadlock.
}

TEST(Events, DependencyOnlyDelaysTheNextLaunch) {
  // Stream order carries the wait transitively; the wait itself attaches to
  // the next launch only.
  simt::Device dev;
  auto heavy = [](simt::LaneCtx& t) { t.compute(80000); };
  dev.launch_threads(cfg(1, 64, "p"), heavy, simt::StreamHandle{1});
  const auto ev = dev.record_event(simt::StreamHandle{1});
  dev.stream_wait(simt::StreamHandle{2}, ev);
  dev.launch_threads(cfg(1, 64, "c1"),
                     [](simt::LaneCtx& t) { t.compute(10); },
                     simt::StreamHandle{2});
  dev.launch_threads(cfg(1, 64, "c2"),
                     [](simt::LaneCtx& t) { t.compute(10); },
                     simt::StreamHandle{2});
  const auto s = run_schedule(dev);
  EXPECT_GE(s.node_start[1], s.node_end[0]);  // c1 waits via the event.
  EXPECT_GE(s.node_start[2], s.node_end[1]);  // c2 waits via stream order.
}

TEST(Events, UnknownEventThrows) {
  simt::Device dev;
  EXPECT_THROW(dev.stream_wait(simt::StreamHandle{1},
                               simt::EventHandle{42}),
               std::invalid_argument);
}

TEST(Events, ForkJoinDiamond) {
  // a -> (b, c in parallel) -> d
  simt::Device dev;
  auto work = [](simt::LaneCtx& t) { t.compute(30000); };
  dev.launch_threads(cfg(1, 64, "a"), work, simt::StreamHandle{1});
  const auto after_a = dev.record_event(simt::StreamHandle{1});
  dev.stream_wait(simt::StreamHandle{2}, after_a);
  dev.launch_threads(cfg(1, 64, "b"), work, simt::StreamHandle{1});
  dev.launch_threads(cfg(1, 64, "c"), work, simt::StreamHandle{2});
  const auto after_b = dev.record_event(simt::StreamHandle{1});
  const auto after_c = dev.record_event(simt::StreamHandle{2});
  dev.stream_wait(simt::StreamHandle{3}, after_b);
  dev.stream_wait(simt::StreamHandle{3}, after_c);
  dev.launch_threads(cfg(1, 64, "d"), work, simt::StreamHandle{3});
  const auto s = run_schedule(dev);
  // b and c overlap; d starts after both.
  EXPECT_LT(std::max(s.node_start[1], s.node_start[2]),
            std::min(s.node_end[1], s.node_end[2]));
  EXPECT_GE(s.node_start[3], s.node_end[1]);
  EXPECT_GE(s.node_start[3], s.node_end[2]);
}

TEST(Events, DualQueuePhase2KernelsOverlap) {
  // The dual-queue template forks its two phase-2 kernels across streams.
  const auto g = graph::generate_power_law(6000, 0, 400, 25.0, 5, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 1);
  simt::Device dev;
  nested::LoopParams p;
  p.lb_threshold = 32;
  apps::run_spmv(dev, a, x, nested::LoopTemplate::kDualQueue, p);
  const auto s = run_schedule(dev);
  // Nodes: 0 build, 1 small, 2 big. Both gated on build...
  EXPECT_GE(s.node_start[1], s.node_end[0]);
  EXPECT_GE(s.node_start[2], s.node_end[0]);
  // ...and overlapping each other.
  EXPECT_LT(std::max(s.node_start[1], s.node_start[2]),
            std::min(s.node_end[1], s.node_end[2]));
}

}  // namespace
