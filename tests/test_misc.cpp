// Remaining coverage: aggregated charge APIs, metrics formatting, report
// printing, CPU prefetcher behavior, sort option knobs, and small device
// facade details.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/simt/cpu_model.h"
#include "src/simt/device.h"
#include "src/simt/report_printer.h"
#include "src/sort/sort.h"

namespace simt = nestpar::simt;
namespace sort = nestpar::sort;

namespace {

simt::LaunchConfig cfg(int blocks, int threads, const char* name) {
  simt::LaunchConfig c;
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.name = name;
  return c;
}

TEST(ChargeApi, RangedLoadCountsContiguousSegments) {
  simt::Device dev;
  std::vector<int> data(4096);
  dev.launch_threads(cfg(1, 1, "ranged"), [&](simt::LaneCtx& t) {
    // 4096 ints = 16KB = 128 segments of 128B.
    t.charge_load(data.data(), 4096 * sizeof(int));
  });
  const auto rep = dev.report();
  EXPECT_GE(rep.aggregate.gld_transferred_bytes, 16 * 1024u);
  EXPECT_EQ(rep.aggregate.gld_requested_bytes, 16 * 1024u);
  // Ranged charges should be ~100% efficient (contiguous).
  EXPECT_GT(rep.aggregate.gld_efficiency(), 0.9);
}

TEST(ChargeApi, RangedStoreSymmetric) {
  simt::Device dev;
  std::vector<int> data(1024);
  dev.launch_threads(cfg(1, 1, "ranged"), [&](simt::LaneCtx& t) {
    t.charge_store(data.data(), 1024 * sizeof(int));
  });
  EXPECT_EQ(dev.report().aggregate.gst_requested_bytes, 4096u);
}

TEST(Metrics, ToStringMentionsKeyFields) {
  simt::Metrics m;
  m.warp_steps = 4;
  m.active_lane_ops = 64;
  m.atomic_ops = 9;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("warp_exec_eff"), std::string::npos);
  EXPECT_NE(s.find("atomics=9"), std::string::npos);
}

TEST(ReportPrinter, ShowsKernelsBusiestFirst) {
  simt::Device dev;
  dev.launch_threads(cfg(2, 64, "small"),
                     [](simt::LaneCtx& t) { t.compute(10); });
  dev.launch_threads(cfg(8, 192, "big"),
                     [](simt::LaneCtx& t) { t.compute(50000); });
  std::ostringstream os;
  simt::print_report(os, dev.report(), dev.spec());
  const std::string out = os.str();
  EXPECT_LT(out.find("big"), out.find("small"));
  EXPECT_NE(out.find("(aggregate)"), std::string::npos);
}

TEST(CpuPrefetcher, BackwardScanIsNotPrefetched) {
  std::vector<int> data(1 << 20);
  simt::CpuTimer fwd, bwd;
  for (std::size_t i = 0; i < data.size(); i += 16) fwd.ld(&data[i]);
  for (std::size_t i = data.size(); i >= 16; i -= 16) bwd.ld(&data[i - 1]);
  // The simple forward-stream prefetcher penalizes the backward scan.
  EXPECT_LT(fwd.cycles(), bwd.cycles());
}

TEST(CpuPrefetcher, ManyInterleavedStreamsStillTracked) {
  // 8 interleaved streams fit in the 16-entry table: near-forward speed.
  std::vector<int> data(1 << 20);
  simt::CpuTimer t;
  const std::size_t stride = data.size() / 8;
  for (std::size_t i = 0; i < stride; i += 16) {
    for (int s = 0; s < 8; ++s) t.ld(&data[s * stride + i]);
  }
  simt::CpuTimer scattered;
  std::size_t x = 12345;
  for (int i = 0; i < 8 * (1 << 16); ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    scattered.ld(&data[x % data.size()]);
  }
  EXPECT_LT(t.cycles(), scattered.cycles() * 0.5);
}

TEST(SortOptions, CustomTileAndThresholdStillSort) {
  auto keys = sort::make_keys(30000, 9);
  auto want = keys;
  std::sort(want.begin(), want.end());
  {
    simt::Device dev;
    sort::MergeSortOptions opt;
    opt.tile = 512;
    opt.block_threads = 128;
    auto k = keys;
    sort::mergesort(dev, k, opt);
    EXPECT_EQ(k, want);
  }
  {
    simt::Device dev;
    sort::QuickSortOptions opt;
    opt.max_depth = 8;
    opt.leaf_threshold = 128;
    auto k = keys;
    sort::simple_quicksort(dev, k, opt);
    EXPECT_EQ(k, want);
  }
  {
    simt::Device dev;
    sort::QuickSortOptions opt;
    opt.bitonic_size = 256;
    opt.block_threads = 64;
    auto k = keys;
    sort::advanced_quicksort(dev, k, opt);
    EXPECT_EQ(k, want);
  }
}

TEST(DeviceFacade, BlocksForClampsAndRounds) {
  EXPECT_EQ(simt::Device::blocks_for(0, 128), 1);
  EXPECT_EQ(simt::Device::blocks_for(1, 128), 1);
  EXPECT_EQ(simt::Device::blocks_for(129, 128), 2);
  EXPECT_EQ(simt::Device::blocks_for(1 << 30, 128, 65535), 65535);
}

TEST(DeviceFacade, ReportIsRepeatable) {
  simt::Device dev;
  dev.launch_threads(cfg(4, 64, "k"), [](simt::LaneCtx& t) { t.compute(100); });
  const auto a = dev.report();
  const auto b = dev.report();
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
  // Occupancy metrics accumulate per schedule run; ratios must stay sane.
  EXPECT_LE(b.aggregate.warp_occupancy(dev.spec().max_warps_per_sm), 1.0 + 1e-9);
}

}  // namespace
