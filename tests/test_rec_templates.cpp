// Correctness of the recursive parallelization templates (flat, rec-naive,
// rec-hier) on tree descendants / tree heights across tree shapes (TEST_P),
// plus the structural properties the paper's profiling tables report
// (nested-launch counts, atomic counts) and the recursive BFS variants.
#include <gtest/gtest.h>

#include "src/apps/bfs.h"
#include "src/graph/generators.h"
#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

namespace simt = nestpar::simt;
namespace rec = nestpar::rec;
namespace tree = nestpar::tree;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;

using rec::RecTemplate;
using rec::TreeAlgo;

namespace {

struct Case {
  TreeAlgo algo;
  RecTemplate tmpl;
  tree::TreeParams shape;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  std::string s = std::string(rec::name(info.param.algo)) + "_" +
                  std::string(rec::name(info.param.tmpl)) + "_d" +
                  std::to_string(info.param.shape.depth) + "_o" +
                  std::to_string(info.param.shape.outdegree) + "_s" +
                  std::to_string(info.param.shape.sparsity);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const tree::TreeParams shapes[] = {
      {.depth = 0, .outdegree = 4, .sparsity = 0},
      {.depth = 1, .outdegree = 6, .sparsity = 0},
      {.depth = 3, .outdegree = 5, .sparsity = 0},
      {.depth = 4, .outdegree = 4, .sparsity = 0},
      {.depth = 4, .outdegree = 6, .sparsity = 2},
      {.depth = 6, .outdegree = 3, .sparsity = 1},
  };
  for (TreeAlgo a : {TreeAlgo::kDescendants, TreeAlgo::kHeights}) {
    for (RecTemplate t :
         {RecTemplate::kFlat, RecTemplate::kRecNaive, RecTemplate::kRecHier,
          RecTemplate::kAutoropes}) {
      for (const auto& s : shapes) {
        cases.push_back(Case{a, t, s});
      }
    }
  }
  return cases;
}

class RecCorrectness : public testing::TestWithParam<Case> {};

TEST_P(RecCorrectness, MatchesSerialReference) {
  const tree::Tree tr = tree::generate_tree(GetParam().shape, 1234);
  const auto expect =
      rec::tree_traversal_serial_recursive(tr, GetParam().algo);
  // Both serial forms must agree with each other.
  EXPECT_EQ(rec::tree_traversal_serial_iterative(tr, GetParam().algo), expect);

  simt::Device dev;
  const auto got = rec::run_tree_traversal(
      dev, tr, {.algo = GetParam().algo, .tmpl = GetParam().tmpl});
  EXPECT_EQ(got.values, expect);
}

INSTANTIATE_TEST_SUITE_P(AllRecTemplates, RecCorrectness,
                         testing::ValuesIn(all_cases()), case_name);

// --- Structural properties matching the paper's profiling tables -------------

TEST(RecStructure, DescendantsOfRegularTreeKnownValues) {
  // depth 2, outdegree 3: root subtree = 13, mid = 4, leaf = 1.
  const tree::Tree tr = tree::generate_tree({.depth = 2, .outdegree = 3}, 0);
  const auto v = rec::tree_traversal_serial_recursive(
      tr, TreeAlgo::kDescendants);
  EXPECT_EQ(v[0], 13u);
  EXPECT_EQ(v[1], 4u);
  EXPECT_EQ(v[12], 1u);
}

TEST(RecStructure, HeightsOfRegularTreeKnownValues) {
  const tree::Tree tr = tree::generate_tree({.depth = 2, .outdegree = 3}, 0);
  const auto v = rec::tree_traversal_serial_recursive(tr, TreeAlgo::kHeights);
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v[12], 1u);
}

TEST(RecStructure, HierSpawnsOutdegreePlusOneGrids) {
  // Paper Fig. 7(c): KCalls for rec-hier on its depth-4 (= 4-level, i.e.
  // generator depth 3) regular tree is d+1: the host-launched root grid plus
  // one nested grid per root child.
  const int d = 8;
  const tree::Tree tr = tree::generate_tree({.depth = 3, .outdegree = d}, 2);
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr, {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecHier});
  const auto rep = dev.report();
  EXPECT_EQ(rep.device_grids, static_cast<std::uint64_t>(d));
}

TEST(RecStructure, HierGridCountGrowsOneLevelPerExtraDepth) {
  // A 5-level regular tree adds one recursion tier: d + d^2 nested grids.
  const int d = 4;
  const tree::Tree tr = tree::generate_tree({.depth = 4, .outdegree = d}, 2);
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr, {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecHier});
  EXPECT_EQ(dev.report().device_grids, static_cast<std::uint64_t>(d + d * d));
}

TEST(RecStructure, NaiveSpawnsOneGridPerInternalNode) {
  // Paper Fig. 7(c): KCalls for rec-naive ~ the number of internal nodes.
  const int d = 6;
  const tree::Tree tr = tree::generate_tree({.depth = 3, .outdegree = d}, 2);
  std::uint64_t internal = 0;
  for (std::uint32_t v = 0; v < tr.num_nodes(); ++v) {
    if (!tr.is_leaf(v)) ++internal;
  }
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr,
      {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecNaive});
  const auto rep = dev.report();
  // Every internal node except the (host-launched) root spawns one grid.
  EXPECT_EQ(rep.device_grids, internal - 1);
}

TEST(RecStructure, FlatDoesFarMoreAtomicsThanHier) {
  // Paper Figs. 7/8(c): flat atomics ~ sum of node depths; hier ~ #nodes.
  const tree::Tree tr = tree::generate_tree({.depth = 4, .outdegree = 8}, 3);
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr, {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kFlat});
  const auto flat_atomics = dev.report().aggregate.atomic_ops;
  dev.reset();
  rec::run_tree_traversal(
      dev, tr, {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecHier});
  const auto hier_atomics = dev.report().aggregate.atomic_ops;
  EXPECT_GT(flat_atomics, 3 * hier_atomics);
}

TEST(RecStructure, StreamsOptionChangesStreamAssignment) {
  const tree::Tree tr = tree::generate_tree({.depth = 3, .outdegree = 6}, 4);
  rec::RecOptions one;
  rec::RecOptions two;
  two.streams_per_block = 2;
  simt::Device dev;
  const auto a = rec::run_tree_traversal(
      dev, tr,
      {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecNaive,
       .opt = one});
  dev.reset();
  const auto b = rec::run_tree_traversal(
      dev, tr,
      {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecNaive,
       .opt = two});
  EXPECT_EQ(a.values, b.values);  // Streams change timing, never results.
}

TEST(RecStructure, RejectsBadOptions) {
  const tree::Tree tr = tree::generate_tree({.depth = 1, .outdegree = 2}, 0);
  simt::Device dev;
  rec::RecOptions bad;
  bad.streams_per_block = 0;
  EXPECT_THROW(
      rec::run_tree_traversal(
          dev, tr,
          {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kRecNaive,
           .opt = bad}),
      std::invalid_argument);
}

TEST(RecStructure, AutoropesUsesNoAtomicsOrNestedKernels) {
  const tree::Tree tr = tree::generate_tree({.depth = 3, .outdegree = 24}, 6);
  simt::Device dev;
  rec::run_tree_traversal(
      dev, tr,
      {.algo = TreeAlgo::kDescendants, .tmpl = RecTemplate::kAutoropes});
  const auto rep = dev.report();
  EXPECT_EQ(rep.aggregate.atomic_ops, 0u);
  EXPECT_EQ(rep.device_grids, 0u);
}

TEST(RecStructure, AutoropesHandlesDegenerateTrees) {
  // Single node and a path-like (outdegree 1) tree.
  for (const tree::TreeParams shape :
       {tree::TreeParams{.depth = 0, .outdegree = 3},
        tree::TreeParams{.depth = 10, .outdegree = 1}}) {
    const tree::Tree tr = tree::generate_tree(shape, 0);
    const auto want =
        rec::tree_traversal_serial_iterative(tr, TreeAlgo::kHeights);
    simt::Device dev;
    EXPECT_EQ(rec::run_tree_traversal(
                  dev, tr,
                  {.algo = TreeAlgo::kHeights,
                   .tmpl = RecTemplate::kAutoropes})
                  .values,
              want);
  }
}

// --- Recursive BFS -------------------------------------------------------------

class BfsCorrectness : public testing::TestWithParam<int> {};

TEST_P(BfsCorrectness, AllVariantsAgreeWithSerial) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const graph::Csr g = graph::generate_uniform_random(800, 0, 24, seed);
  const auto expect = apps::bfs_serial_iterative(g, 0);
  EXPECT_EQ(apps::bfs_serial_recursive(g, 0), expect);

  simt::Device dev;
  EXPECT_EQ(apps::bfs_flat_gpu(dev, g, 0), expect);
  dev.reset();
  EXPECT_EQ(apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kRecNaive),
            expect);
  dev.reset();
  EXPECT_EQ(apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kRecHier), expect);
  dev.reset();
  apps::BfsRecOptions streams;
  streams.streams_per_block = 2;
  EXPECT_EQ(
      apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kRecNaive, streams),
      expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsCorrectness, testing::Values(1, 2, 3, 4));

TEST(Bfs, DisconnectedNodesStayUnreached) {
  // Two components: 0->1, 2->3.
  const graph::Edge edges[] = {{0, 1, 1.f}, {2, 3, 1.f}};
  const graph::Csr g = graph::build_csr(4, edges);
  simt::Device dev;
  const auto lv = apps::bfs_flat_gpu(dev, g, 0);
  EXPECT_EQ(lv[0], 0u);
  EXPECT_EQ(lv[1], 1u);
  EXPECT_EQ(lv[2], apps::kBfsUnreached);
  EXPECT_EQ(lv[3], apps::kBfsUnreached);
}

TEST(Bfs, IsolatedSourceTerminates) {
  const graph::Csr g = graph::build_csr(3, std::span<const graph::Edge>{});
  simt::Device dev;
  for (auto run : {0, 1, 2}) {
    dev.reset();
    const auto lv = run == 0 ? apps::bfs_flat_gpu(dev, g, 1)
                   : run == 1
                       ? apps::bfs_recursive_gpu(dev, g, 1,
                                                 RecTemplate::kRecNaive)
                       : apps::bfs_recursive_gpu(dev, g, 1,
                                                 RecTemplate::kRecHier);
    EXPECT_EQ(lv[1], 0u);
    EXPECT_EQ(lv[0], apps::kBfsUnreached);
  }
}

TEST(Bfs, RecursiveVariantsSpawnManyGrids) {
  const graph::Csr g = graph::generate_uniform_random(500, 1, 16, 9);
  simt::Device dev;
  apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kRecNaive);
  const auto naive = dev.report();
  EXPECT_GT(naive.device_grids, 100u);  // ~ one grid per reached node.
  dev.reset();
  apps::bfs_flat_gpu(dev, g, 0);
  const auto flat = dev.report();
  EXPECT_EQ(flat.device_grids, 0u);
  EXPECT_EQ(flat.aggregate.atomic_ops, 0u);  // The paper's key contrast.
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const graph::Csr g = graph::build_csr(2, std::span<const graph::Edge>{});
  simt::Device dev;
  EXPECT_THROW(apps::bfs_flat_gpu(dev, g, 5), std::invalid_argument);
  EXPECT_THROW(
      apps::bfs_recursive_gpu(dev, g, 5, RecTemplate::kRecNaive),
      std::invalid_argument);
  EXPECT_THROW(
      apps::bfs_recursive_gpu(dev, g, 0, RecTemplate::kFlat),
      std::invalid_argument);
}

}  // namespace
