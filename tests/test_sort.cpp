// Sort study tests (Figure 2 substrate): all three GPU sorts must actually
// sort, across sizes and key patterns, and exhibit the structural properties
// the paper's comparison hinges on (CDP launch counts, flatness of merge).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sort/sort.h"

namespace simt = nestpar::simt;
namespace sort = nestpar::sort;

namespace {

enum class Algo { kMerge, kSimpleQs, kAdvancedQs };

struct Case {
  Algo algo;
  std::size_t n;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const char* a = info.param.algo == Algo::kMerge ? "merge"
                  : info.param.algo == Algo::kSimpleQs ? "simpleqs"
                                                       : "advancedqs";
  return std::string(a) + "_n" + std::to_string(info.param.n);
}

void run_algo(simt::Device& dev, Algo algo, std::span<int> data) {
  switch (algo) {
    case Algo::kMerge: sort::mergesort(dev, data); break;
    case Algo::kSimpleQs: sort::simple_quicksort(dev, data); break;
    case Algo::kAdvancedQs: sort::advanced_quicksort(dev, data); break;
  }
}

class SortCorrectness : public testing::TestWithParam<Case> {};

TEST_P(SortCorrectness, SortsRandomKeys) {
  auto keys = sort::make_keys(GetParam().n, 42);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  simt::Device dev;
  run_algo(dev, GetParam().algo, keys);
  EXPECT_EQ(keys, expect);
}

TEST_P(SortCorrectness, SortsAdversarialPatterns) {
  simt::Device dev;
  // Already sorted.
  std::vector<int> asc(GetParam().n);
  for (std::size_t i = 0; i < asc.size(); ++i) asc[i] = static_cast<int>(i);
  auto expect = asc;
  run_algo(dev, GetParam().algo, asc);
  EXPECT_EQ(asc, expect);
  // Reverse sorted.
  dev.reset();
  std::vector<int> desc(GetParam().n);
  for (std::size_t i = 0; i < desc.size(); ++i) {
    desc[i] = static_cast<int>(desc.size() - i);
  }
  auto expect2 = desc;
  std::sort(expect2.begin(), expect2.end());
  run_algo(dev, GetParam().algo, desc);
  EXPECT_EQ(desc, expect2);
  // All equal.
  dev.reset();
  std::vector<int> same(GetParam().n, 7);
  auto expect3 = same;
  run_algo(dev, GetParam().algo, same);
  EXPECT_EQ(same, expect3);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SortCorrectness,
    testing::ValuesIn(std::vector<Case>{
        {Algo::kMerge, 0}, {Algo::kMerge, 1}, {Algo::kMerge, 100},
        {Algo::kMerge, 5000}, {Algo::kMerge, 40000},
        {Algo::kSimpleQs, 1}, {Algo::kSimpleQs, 100}, {Algo::kSimpleQs, 5000},
        {Algo::kAdvancedQs, 1}, {Algo::kAdvancedQs, 100},
        {Algo::kAdvancedQs, 5000}, {Algo::kAdvancedQs, 40000}}),
    case_name);

TEST(SortStructure, MergeSortIsFlat) {
  auto keys = sort::make_keys(20000, 1);
  simt::Device dev;
  sort::mergesort(dev, keys);
  const auto rep = dev.report();
  EXPECT_EQ(rep.device_grids, 0u);  // No dynamic parallelism.
}

TEST(SortStructure, QuickSortsUseDynamicParallelism) {
  auto keys = sort::make_keys(20000, 2);
  simt::Device dev;
  sort::simple_quicksort(dev, keys);
  const auto simple = dev.report();
  EXPECT_GT(simple.device_grids, 100u);

  auto keys2 = sort::make_keys(20000, 2);
  dev.reset();
  sort::advanced_quicksort(dev, keys2);
  const auto advanced = dev.report();
  EXPECT_GT(advanced.device_grids, 10u);
  // Advanced spawns far fewer (bigger leaves) than Simple.
  EXPECT_LT(advanced.device_grids, simple.device_grids);
}

TEST(SortStructure, DepthLimitCapsRecursion) {
  auto keys = sort::make_keys(50000, 3);
  sort::QuickSortOptions opt;
  opt.max_depth = 4;
  simt::Device dev;
  sort::simple_quicksort(dev, keys, opt);
  auto expect = sort::make_keys(50000, 3);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(keys, expect);
  // <= 2^0 + 2^1 + ... + 2^4 grids of partitioning plus leaf sorts.
  EXPECT_LE(dev.report().grids, 1u + 2u + 4u + 8u + 16u);
}

TEST(SortStructure, MergeSortRejectsBadTile) {
  auto keys = sort::make_keys(100, 4);
  sort::MergeSortOptions opt;
  opt.tile = 100;  // not a power of two
  simt::Device dev;
  EXPECT_THROW(sort::mergesort(dev, keys, opt), std::invalid_argument);
}

TEST(SortStructure, MakeKeysDeterministic) {
  EXPECT_EQ(sort::make_keys(64, 5), sort::make_keys(64, 5));
  EXPECT_NE(sort::make_keys(64, 5), sort::make_keys(64, 6));
}

}  // namespace
