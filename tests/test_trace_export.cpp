// Structural round-trip tests for write_chrome_trace: the exported document
// must be valid JSON with one complete event per launched grid, one timeline
// row (tid) per stream, and the per-grid metrics in the event args — parsed
// back with the same bench JSON parser the results pipeline uses. Also
// covers the profiling extension: counter/instant events appear only when
// the profiler is on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "bench/json.h"
#include "src/simt/device.h"
#include "src/simt/profiler.h"
#include "src/simt/scheduler.h"
#include "src/simt/trace_export.h"

namespace simt = nestpar::simt;
namespace bench = nestpar::bench;

namespace {

/// Trace tests must not inherit or leak global profiler state.
class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = simt::Profiler::enabled();
    simt::Profiler::set_enabled(false);
    simt::Profiler::instance().reset();
  }
  void TearDown() override {
    simt::Profiler::set_enabled(was_enabled_);
    simt::Profiler::instance().reset();
  }

 private:
  bool was_enabled_ = false;
};

void launch_named(simt::Device& dev, const std::string& name, int stream,
                  int grid_blocks) {
  simt::LaunchConfig cfg;
  cfg.grid_blocks = grid_blocks;
  cfg.block_threads = 32;
  cfg.name = name;
  dev.launch_threads(
      cfg, [](simt::LaneCtx& t) { t.compute(1 + t.global_idx() % 3); },
      simt::StreamHandle{stream});
}

bench::JsonValue export_and_parse(simt::Device& dev) {
  std::ostringstream out;
  simt::write_chrome_trace(out, dev);
  return bench::parse_json(out.str());
}

TEST_F(TraceExportTest, OneCompleteEventPerGridOneRowPerStream) {
  simt::Device dev;
  simt::Session s = dev.session();
  launch_named(dev, "trace/a", 0, 2);
  launch_named(dev, "trace/b", 1, 3);
  launch_named(dev, "trace/a", 0, 2);

  const bench::JsonValue doc = export_and_parse(dev);
  ASSERT_TRUE(doc.is_object());
  const bench::JsonValue& events =
      bench::require(doc.object(), "traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array().size(), dev.graph().nodes.size());
  ASSERT_EQ(events.array().size(), 3u);

  std::set<std::uint32_t> graph_streams;
  for (const simt::KernelNode& n : dev.graph().nodes) {
    graph_streams.insert(n.stream);
  }
  std::set<std::uint32_t> trace_tids;
  for (std::size_t i = 0; i < events.array().size(); ++i) {
    const bench::JsonValue& ev = events.array()[i];
    ASSERT_TRUE(ev.is_object());
    const bench::JsonObject& obj = ev.object();
    EXPECT_EQ(bench::require_str(obj, "ph"), "X");
    EXPECT_FALSE(bench::require_str(obj, "name").empty());
    EXPECT_GE(bench::require_num(obj, "dur"), 0.0);
    trace_tids.insert(
        static_cast<std::uint32_t>(bench::require_num(obj, "tid")));

    const bench::JsonValue& args = bench::require(obj, "args");
    ASSERT_TRUE(args.is_object());
    const simt::KernelNode& node = dev.graph().nodes[i];
    EXPECT_EQ(bench::require_num(args.object(), "grid_blocks"),
              node.grid_blocks);
    EXPECT_EQ(bench::require_num(args.object(), "block_threads"),
              node.block_threads);
    EXPECT_EQ(bench::require_num(args.object(), "nest_depth"),
              node.nest_depth);
    // The exporter prints warp_eff at the stream's default 6-significant-
    // digit precision, so compare with matching tolerance.
    EXPECT_NEAR(bench::require_num(args.object(), "warp_eff"),
                node.metrics.warp_execution_efficiency(), 1e-5);
  }
  EXPECT_EQ(trace_tids, graph_streams);
}

TEST_F(TraceExportTest, EmptySessionYieldsEmptyEventArray) {
  simt::Device dev;
  simt::Session s = dev.session();
  const bench::JsonValue doc = export_and_parse(dev);
  ASSERT_TRUE(doc.is_object());
  const bench::JsonValue& events =
      bench::require(doc.object(), "traceEvents");
  ASSERT_TRUE(events.is_array());
  EXPECT_TRUE(events.array().empty());
}

TEST_F(TraceExportTest, CounterAndInstantEventsAppearOnlyWhenProfiling) {
  const auto count_phases = [](const bench::JsonValue& doc) {
    std::map<std::string, int> by_ph;
    for (const bench::JsonValue& ev :
         bench::require(doc.object(), "traceEvents").array()) {
      ++by_ph[bench::require_str(ev.object(), "ph")];
    }
    return by_ph;
  };

  // Profiling off: prof_counter is a no-op, only "X" events exist.
  {
    simt::Device dev;
    simt::Session s = dev.session();
    launch_named(dev, "trace/a", 0, 2);
    s.prof_counter("trace/queue", 5.0);
    auto by_ph = count_phases(export_and_parse(dev));
    EXPECT_EQ(by_ph["X"], 1);
    EXPECT_EQ(by_ph.count("C"), 0u);
    EXPECT_EQ(by_ph.count("i"), 0u);
  }

  // Profiling on: the same calls materialize as counter + instant events
  // (plus the critical-path track: an M row-name event and one X slice per
  // attributed chain segment).
  simt::Profiler::set_enabled(true);
  {
    simt::Device dev;
    simt::Session s = dev.session();
    s.prof_counter("trace/queue", 5.0);
    launch_named(dev, "trace/a", 0, 2);
    s.prof_instant("trace/flush", "queue");
    auto by_ph = count_phases(export_and_parse(dev));
    EXPECT_GE(by_ph["X"], 2);  // the grid slice + critical-path segments
    EXPECT_EQ(by_ph["C"], 1);
    EXPECT_EQ(by_ph["i"], 1);
    EXPECT_EQ(by_ph["M"], 1);  // critical-path row name
  }
}

TEST_F(TraceExportTest, FlowEventsAndCritPathTrackOnlyWhenProfiling) {
  const auto launch_tree = [](simt::Device& dev) {
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 1;
    cfg.block_threads = 1;
    cfg.name = "trace/parent";
    dev.launch_threads(cfg, [](simt::LaneCtx& t) {
      t.compute(2000);
      simt::LaunchConfig child;
      child.grid_blocks = 2;
      child.block_threads = 32;
      child.name = "trace/child";
      auto body = [](simt::LaneCtx& c) { c.compute(4000); };
      t.launch_threads(child, body);
      t.launch_threads(child, body);
    });
  };

  // Profiling off: no flow events, no critical-path row — byte-layout parity
  // with the pre-analyzer exporter.
  {
    simt::Device dev;
    simt::Session s = dev.session();
    launch_tree(dev);
    const bench::JsonValue doc = export_and_parse(dev);
    for (const bench::JsonValue& ev :
         bench::require(doc.object(), "traceEvents").array()) {
      const std::string ph = bench::require_str(ev.object(), "ph");
      EXPECT_TRUE(ph != "s" && ph != "f" && ph != "M") << ph;
    }
  }

  simt::Profiler::set_enabled(true);
  simt::Device dev;
  simt::Session s = dev.session();
  launch_tree(dev);
  const bench::JsonValue doc = export_and_parse(dev);

  const std::uint32_t crit_tid = dev.graph().num_streams;
  int flow_starts = 0, flow_ends = 0;
  int crit_slices = 0;
  double crit_us = 0.0;
  for (const bench::JsonValue& ev :
       bench::require(doc.object(), "traceEvents").array()) {
    const bench::JsonObject& obj = ev.object();
    const std::string ph = bench::require_str(obj, "ph");
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_ends;
    if (ph == "X" &&
        static_cast<std::uint32_t>(bench::require_num(obj, "tid")) ==
            crit_tid) {
      ++crit_slices;
      crit_us += bench::require_num(obj, "dur");
      EXPECT_EQ(bench::require_str(obj, "cat"), "critical-path");
    }
  }
  // One s/f pair per device-launched grid.
  std::uint64_t device_grids = 0;
  for (const simt::KernelNode& n : dev.graph().nodes) {
    if (n.origin == simt::LaunchOrigin::kDevice) ++device_grids;
  }
  EXPECT_EQ(device_grids, 2u);
  EXPECT_EQ(flow_starts, static_cast<int>(device_grids));
  EXPECT_EQ(flow_ends, static_cast<int>(device_grids));
  // The critical-path slices tile the whole makespan (in trace µs).
  ASSERT_GT(crit_slices, 0);
  simt::LaunchGraph graph = dev.graph();
  const simt::ScheduleResult sched = simt::schedule(dev.spec(), graph);
  EXPECT_NEAR(crit_us, dev.spec().cycles_to_us(sched.total_cycles),
              1e-3 * dev.spec().cycles_to_us(sched.total_cycles) + 1e-6);
}

}  // namespace
