// Property-based sweeps (TEST_P over seeds/shapes): invariants that must
// hold for *any* input — metric ranges, generator statistics vs analytical
// expectations, I/O round-trips, occupancy monotonicity, and cross-template
// result equality on randomized workloads.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/flatten.h"
#include "src/nested/templates.h"
#include "src/simt/device.h"
#include "src/tree/tree.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;
namespace tree = nestpar::tree;

namespace {

class SeedSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, MetricsStayInRange) {
  // A randomized kernel mix must never produce out-of-range metrics.
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  simt::Device dev;
  std::vector<float> data(1 << 16);
  int hot = 0;
  for (int k = 0; k < 4; ++k) {
    simt::LaunchConfig cfg;
    cfg.grid_blocks = 1 + static_cast<int>(rng() % 40);
    cfg.block_threads = 32 * (1 + static_cast<int>(rng() % 8));
    cfg.name = "mix";
    const std::uint64_t mode = rng();
    dev.launch_threads(cfg, [&, mode](simt::LaneCtx& t) {
      const std::size_t idx =
          (static_cast<std::size_t>(t.global_idx()) * 2654435761u + mode) %
          data.size();
      t.compute(1 + static_cast<std::uint32_t>(mode % 7));
      t.ld(&data[idx]);
      if (mode % 3 == 0) t.st(&data[idx], 1.0f);
      if (mode % 5 == 0) t.atomic_add(&hot, 1);
    });
  }
  const auto rep = dev.report();
  const auto& m = rep.aggregate;
  EXPECT_GT(m.warp_execution_efficiency(), 0.0);
  EXPECT_LE(m.warp_execution_efficiency(), 1.0);
  EXPECT_LE(m.gld_efficiency(), 1.0 + 1e-9);
  EXPECT_LE(m.gst_efficiency(), 1.0 + 1e-9);
  const double occ = m.warp_occupancy(dev.spec().max_warps_per_sm);
  EXPECT_GE(occ, 0.0);
  EXPECT_LE(occ, 1.0 + 1e-9);
  EXPECT_GT(rep.total_cycles, 0.0);
}

TEST_P(SeedSweep, AllTemplatesAgreeOnRandomSpmv) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  const auto n = static_cast<std::uint32_t>(500 + rng() % 2000);
  const auto maxdeg = static_cast<std::uint32_t>(2 + rng() % 300);
  const double mean = 1.0 + static_cast<double>(rng() % (maxdeg / 2 + 1));
  const auto g = graph::generate_power_law(
      n, 0, maxdeg, std::min<double>(std::max(mean, 1.0), maxdeg - 1.0),
      seed * 31 + 7, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, seed);
  const auto want = matrix::spmv_serial(a, x);

  const auto check = [&](const std::vector<float>& got, const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3 * (1.0 + std::abs(want[i])))
          << label << " row " << i;
    }
  };
  for (const nested::LoopTemplateDesc& d : nested::loop_templates()) {
    const nested::LoopTemplate t = d.tmpl;
    simt::Device dev;
    nested::LoopParams p;
    p.lb_threshold = static_cast<int>(1 + seed % 128);
    check(apps::run_spmv(dev, a, x, t, p),
          std::string(nested::name(t)).c_str());
  }
  {
    simt::Device dev;
    std::vector<float> y(a.rows, 0.0f);
    apps::SpmvWorkload w(a, x.data(), y.data());
    nested::run_flattened(dev, w);
    check(y, "flattened");
  }
}

TEST_P(SeedSweep, GraphRoundTripsThroughAllFormats) {
  const std::uint64_t seed = GetParam();
  const auto g = graph::generate_uniform_random(60, 1, 6, seed, true);

  std::stringstream dimacs;
  graph::write_dimacs(dimacs, g);
  const auto back = graph::load_dimacs(dimacs);
  EXPECT_EQ(back.row_offsets, g.row_offsets);
  EXPECT_EQ(back.col_indices, g.col_indices);
  EXPECT_EQ(back.weights, g.weights);

  std::stringstream el;
  graph::write_edge_list(el, g);
  const auto back2 = graph::load_edge_list(el);
  EXPECT_EQ(back2.num_edges(), g.num_edges());
}

TEST_P(SeedSweep, TreeNodeCountTracksExpectation) {
  // E[nodes at level l+1] = nodes_at(l) * outdegree * rho for l >= 1.
  const std::uint64_t seed = GetParam();
  const tree::TreeParams p{.depth = 3, .outdegree = 40, .sparsity = 1};
  const tree::Tree tr = tree::generate_tree(p, seed);
  tr.validate();
  // Level 1 is always full (root expands unconditionally).
  const auto [l1f, l1l] = tr.level_range(1);
  EXPECT_EQ(l1l - l1f, 40u);
  // Level 2 expectation: 40 * 40 * 0.5 = 800; allow wide tolerance.
  const auto [l2f, l2l] = tr.level_range(2);
  EXPECT_GT(l2l - l2f, 800u / 2);
  EXPECT_LT(l2l - l2f, 800u * 2);
}

TEST_P(SeedSweep, TransposePreservesEdgeCountAndDegreesSum) {
  const std::uint64_t seed = GetParam();
  const auto g = graph::generate_power_law(400, 0, 60, 8.0, seed);
  const auto t = graph::transpose(g);
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_EQ(graph::degree_stats(t).mean_degree,
            graph::degree_stats(g).mean_degree);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(1, 2, 3, 5, 8, 13, 21));

// --- occupancy calculator sweep ------------------------------------------------

struct OccCase {
  int threads;
  std::size_t smem;
  int regs;
  int expect;
};

class OccupancySweep : public testing::TestWithParam<OccCase> {};

TEST_P(OccupancySweep, MatchesKeplerLimits) {
  const auto spec = simt::DeviceSpec::k20();
  EXPECT_EQ(spec.max_resident_blocks(GetParam().threads, GetParam().smem,
                                     GetParam().regs),
            GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Table, OccupancySweep,
    testing::Values(OccCase{64, 0, 16, 16},      // block-slot bound
                    OccCase{128, 0, 16, 16},     // block-slot bound
                    OccCase{192, 0, 16, 10},     // thread bound (2048/192)
                    OccCase{256, 0, 16, 8},      // warp/thread bound
                    OccCase{512, 0, 16, 4},      //
                    OccCase{1024, 0, 16, 2},     //
                    OccCase{192, 12 * 1024, 16, 4},   // smem bound
                    OccCase{192, 48 * 1024, 16, 1},   // smem bound
                    OccCase{192, 0, 64, 5},      // register bound
                    OccCase{256, 0, 128, 2}));   // register bound

// --- occupancy monotonicity ----------------------------------------------------

TEST(OccupancyProperty, MoreSharedMemoryNeverRaisesResidency) {
  const auto spec = simt::DeviceSpec::k20();
  for (int threads : {64, 128, 192, 256}) {
    int prev = spec.max_resident_blocks(threads, 0, 16);
    for (std::size_t smem = 1024; smem <= 48 * 1024; smem += 4096) {
      const int cur = spec.max_resident_blocks(threads, smem, 16);
      EXPECT_LE(cur, prev);
      prev = cur;
    }
  }
}

}  // namespace
