// Cross-layer device-cost attribution: the trace-context plumbing from the
// serving layer down through the recorder into the launch graph, the
// conservation-exact cycle tiling (simt::split_cycles / attribute_cycles),
// the per-tenant rollups, and the unified serve trace export. The load-
// bearing invariant everywhere: attributed cycles sum *bit-exactly* to the
// scheduled total — no tolerance — because every consumer (SERVE baselines,
// tools/check_trace.py) re-verifies the same fold in the same order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/serve/pool.h"
#include "src/serve/server.h"
#include "src/serve/trace.h"
#include "src/simt/device.h"
#include "src/simt/fault.h"
#include "src/simt/scheduler.h"
#include "src/simt/trace_export.h"

namespace simt = nestpar::simt;
namespace serve = nestpar::serve;

namespace {

constexpr simt::ExecPolicy kSerial{simt::ExecMode::kSerial, 0};
constexpr simt::ExecPolicy kParallel{simt::ExecMode::kParallel, 4};

simt::LaunchConfig cfg(int blocks, int threads, const char* name) {
  simt::LaunchConfig c;
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.name = name;
  return c;
}

// ---------------------------------------------------------------------------
// split_cycles: the per-grid tiling primitive.

TEST(SplitCycles, SingleMemberGetsTotalExactly) {
  const std::vector<simt::TraceMember> one{{7, 0, 1.0}};
  const std::vector<double> s = simt::split_cycles(1234.567, one);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 1234.567);  // bitwise, not approximately
}

TEST(SplitCycles, MultiMemberFoldsBackToTotalBitExactly) {
  // Awkward weights and an awkward total: the last share is nudged so the
  // left-to-right fold reproduces the total with zero error.
  const std::vector<simt::TraceMember> members{
      {1, 0, 3.0}, {2, 1, 1.0}, {3, 0, 7.0}, {4, 2, 0.25}, {5, 1, 11.0}};
  const double total = 98765.4321;
  const std::vector<double> s = simt::split_cycles(total, members);
  ASSERT_EQ(s.size(), members.size());
  double acc = 0.0;
  for (const double v : s) acc += v;
  EXPECT_EQ(acc, total);
}

TEST(SplitCycles, SharesFollowWeights) {
  const std::vector<simt::TraceMember> members{{1, 0, 1.0}, {2, 0, 3.0}};
  const std::vector<double> s = simt::split_cycles(1000.0, members);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0], 250.0, 1e-9);
  EXPECT_NEAR(s[1], 750.0, 1e-9);
}

TEST(SplitCycles, ZeroWeightsFallBackToUniform) {
  const std::vector<simt::TraceMember> members{
      {1, 0, 0.0}, {2, 0, 0.0}, {3, 0, 0.0}, {4, 0, 0.0}};
  const std::vector<double> s = simt::split_cycles(100.0, members);
  double acc = 0.0;
  for (const double v : s) {
    EXPECT_NEAR(v, 25.0, 1e-9);
    acc += v;
  }
  EXPECT_EQ(acc, 100.0);
}

// ---------------------------------------------------------------------------
// attribute_cycles: context stamping through the recorder.

TEST(AttributeCycles, ContextFreeSessionAttributesNothing) {
  simt::Device dev;
  dev.launch_threads(cfg(2, 64, "plain"),
                     [](simt::LaneCtx& t) { t.compute(1000); });
  simt::LaunchGraph graph = dev.graph();
  const simt::ScheduleResult sched = simt::schedule(dev.spec(), graph);
  const simt::CycleAttribution attr = simt::attribute_cycles(graph, sched);
  EXPECT_EQ(attr.attributed_grids, 0u);
  EXPECT_EQ(attr.attributed_cycles, 0.0);
  EXPECT_TRUE(attr.per_request.empty());
}

TEST(AttributeCycles, AmbientContextStampsEveryGrid) {
  simt::Device dev;
  simt::TraceContext ctx;
  ctx.batch_id = 42;
  ctx.members.push_back(simt::TraceMember{11, 3, 1.0});
  dev.set_trace_context(ctx);
  dev.launch_threads(cfg(1, 64, "a"),
                     [](simt::LaneCtx& t) { t.compute(2000); });
  dev.launch_threads(cfg(1, 64, "b"),
                     [](simt::LaneCtx& t) { t.compute(3000); });
  simt::LaunchGraph graph = dev.graph();
  const simt::ScheduleResult sched = simt::schedule(dev.spec(), graph);
  const simt::CycleAttribution attr = simt::attribute_cycles(graph, sched);
  EXPECT_EQ(attr.attributed_grids, 2u);
  ASSERT_EQ(attr.per_request.size(), 1u);
  EXPECT_EQ(attr.per_request[0].request, 11u);
  EXPECT_EQ(attr.per_request[0].tenant, 3u);
  EXPECT_EQ(attr.per_request[0].grids, 2u);
  // One member: its total is the exact fold of grid busy cycles.
  double busy = 0.0;
  for (const simt::KernelNode& n : graph.nodes) {
    busy += sched.node_end[n.id] - sched.node_start[n.id];
  }
  EXPECT_EQ(attr.per_request[0].cycles, busy);
  EXPECT_EQ(attr.attributed_cycles, busy);
}

TEST(AttributeCycles, DeviceChildGridsInheritParentContext) {
  simt::Device dev;
  simt::TraceContext ctx;
  ctx.batch_id = 7;
  ctx.members.push_back(simt::TraceMember{21, 1, 1.0});
  dev.set_trace_context(ctx);
  dev.launch_threads(cfg(1, 1, "parent"), [](simt::LaneCtx& t) {
    t.launch_threads(cfg(1, 32, "child"),
                     [](simt::LaneCtx& c) { c.compute(4000); });
  });
  simt::LaunchGraph graph = dev.graph();
  ASSERT_EQ(graph.nodes.size(), 2u);
  for (const simt::KernelNode& n : graph.nodes) {
    EXPECT_EQ(n.batch_id, 7u) << "node " << n.id;
    ASSERT_EQ(n.requesters.size(), 1u) << "node " << n.id;
    EXPECT_EQ(n.requesters[0].request, 21u);
  }
  const simt::ScheduleResult sched = simt::schedule(dev.spec(), graph);
  const simt::CycleAttribution attr = simt::attribute_cycles(graph, sched);
  EXPECT_EQ(attr.attributed_grids, 2u);
  ASSERT_EQ(attr.per_request.size(), 1u);
  EXPECT_EQ(attr.per_request[0].grids, 2u);
}

TEST(AttributeCycles, PerLaunchOverrideBeatsAmbientAndPropagates) {
  simt::Device dev;
  simt::TraceContext ambient;
  ambient.batch_id = 1;
  ambient.members.push_back(simt::TraceMember{100, 0, 1.0});
  dev.set_trace_context(ambient);

  // First grid rides the ambient context; second overrides per launch, and
  // its device children must inherit the *override*, not the ambient.
  dev.launch_threads(cfg(1, 64, "ambient"),
                     [](simt::LaneCtx& t) { t.compute(1000); });
  simt::LaunchConfig over = cfg(1, 1, "override");
  over.trace.batch_id = 2;
  over.trace.members.push_back(simt::TraceMember{200, 5, 1.0});
  dev.launch_threads(over, [](simt::LaneCtx& t) {
    t.launch_threads(cfg(1, 32, "override-child"),
                     [](simt::LaneCtx& c) { c.compute(500); });
  });

  const simt::LaunchGraph graph = dev.graph();
  ASSERT_EQ(graph.nodes.size(), 3u);
  EXPECT_EQ(graph.nodes[0].batch_id, 1u);
  EXPECT_EQ(graph.nodes[0].requesters[0].request, 100u);
  for (std::size_t i = 1; i < graph.nodes.size(); ++i) {
    EXPECT_EQ(graph.nodes[i].batch_id, 2u) << "node " << i;
    EXPECT_EQ(graph.nodes[i].requesters[0].request, 200u) << "node " << i;
    EXPECT_EQ(graph.nodes[i].requesters[0].tenant, 5u) << "node " << i;
  }
}

TEST(AttributeCycles, MultiMemberGridConservesAcrossRequests) {
  // A consolidated grid serving three requests: shares tile the grid's busy
  // cycles, and the attempt total still folds back exactly.
  simt::Device dev;
  simt::LaunchConfig c = cfg(4, 64, "consolidated");
  c.trace.batch_id = 9;
  c.trace.members.push_back(simt::TraceMember{1, 0, 2.0});
  c.trace.members.push_back(simt::TraceMember{2, 1, 5.0});
  c.trace.members.push_back(simt::TraceMember{3, 0, 3.0});
  dev.launch_threads(c, [](simt::LaneCtx& t) { t.compute(12345); });
  simt::LaunchGraph graph = dev.graph();
  const simt::ScheduleResult sched = simt::schedule(dev.spec(), graph);
  const simt::CycleAttribution attr = simt::attribute_cycles(graph, sched);
  ASSERT_EQ(attr.per_request.size(), 3u);
  const double busy = sched.node_end[0] - sched.node_start[0];
  double acc = 0.0;
  for (const simt::RequestCycles& rc : attr.per_request) acc += rc.cycles;
  // Same doubles, same left-to-right order as the producer's fold.
  EXPECT_EQ(acc, busy);
  EXPECT_EQ(attr.attributed_cycles, busy);
  // Shares follow weights (request 2 carries half the work).
  EXPECT_NEAR(attr.per_request[1].cycles, busy * 0.5, busy * 1e-9);
}

TEST(AttributeCycles, ClearTraceContextStopsStamping) {
  simt::Device dev;
  simt::TraceContext ctx;
  ctx.batch_id = 3;
  ctx.members.push_back(simt::TraceMember{1, 0, 1.0});
  dev.set_trace_context(ctx);
  dev.launch_threads(cfg(1, 64, "stamped"),
                     [](simt::LaneCtx& t) { t.compute(100); });
  dev.clear_trace_context();
  dev.launch_threads(cfg(1, 64, "plain"),
                     [](simt::LaneCtx& t) { t.compute(100); });
  const simt::LaunchGraph graph = dev.graph();
  ASSERT_EQ(graph.nodes.size(), 2u);
  EXPECT_EQ(graph.nodes[0].batch_id, 3u);
  EXPECT_EQ(graph.nodes[1].batch_id, simt::kNoBatchId);
  EXPECT_TRUE(graph.nodes[1].requesters.empty());
}

TEST(TraceExport, StampedGridsCarryProvenanceArgs) {
  simt::Device dev;
  simt::TraceContext ctx;
  ctx.batch_id = 5;
  ctx.members.push_back(simt::TraceMember{77, 2, 1.0});
  dev.set_trace_context(ctx);
  dev.launch_threads(cfg(1, 64, "k"),
                     [](simt::LaneCtx& t) { t.compute(100); });
  std::ostringstream os;
  simt::write_chrome_trace(os, dev);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"batch\":5"), std::string::npos);
  EXPECT_NE(trace.find("\"requests\":[77]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serving-layer conservation and tenant rollups.

serve::PoolSpec tiny_pool_spec() {
  serve::PoolSpec p;
  p.num_graphs = 3;
  p.base_nodes = 256;
  p.scale = 0.2;
  p.seed = 0x5e12e;
  return p;
}

serve::ServeConfig tiny_config() {
  serve::ServeConfig cfg;
  cfg.num_shards = 3;
  cfg.queue_capacity = 6;
  cfg.seed = 2026;
  cfg.faults = simt::FaultConfig{};
  return cfg;
}

TEST(ServeAttribution, CompletionCyclesFoldToStatsTotalBitExactly) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 40, 6000.0);
  serve::Server server(cfg, pool, kSerial);
  const serve::ServeStats s = server.run(w);
  ASSERT_GT(s.device_cycles_total, 0.0);
  // Same doubles in the same (completion) order: zero-tolerance equality.
  double total = 0.0;
  double fault_total = 0.0;
  std::uint64_t launches = 0;
  for (const serve::Completion& c : server.completions()) {
    total += c.device_cycles;
    fault_total += c.fault_device_cycles;
    launches += c.launches;
  }
  EXPECT_EQ(total, s.device_cycles_total);
  EXPECT_EQ(fault_total, s.fault_device_cycles_total);
  EXPECT_EQ(launches, s.launches_total);
}

TEST(ServeAttribution, TenantRollupsPartitionTheRun) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.num_tenants = 4;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 60, 8000.0);
  serve::Server server(cfg, pool, kSerial);
  const serve::ServeStats s = server.run(w);
  const std::vector<serve::TenantUsage>& tenants = server.tenant_usage();
  ASSERT_FALSE(tenants.empty());
  ASSERT_LE(tenants.size(), 4u);
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  double cycles = 0.0;
  std::uint32_t last_tenant = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const serve::TenantUsage& t = tenants[i];
    if (i > 0) EXPECT_GT(t.tenant, last_tenant);  // sorted, unique
    last_tenant = t.tenant;
    requests += t.requests;
    ok += t.ok;
    cycles += t.device_cycles;
  }
  EXPECT_EQ(requests, static_cast<std::uint64_t>(server.completions().size()));
  EXPECT_EQ(ok, s.ok);
  // Per-tenant folds regroup the same doubles: tolerance-bounded only.
  EXPECT_NEAR(cycles, s.device_cycles_total,
              1e-9 * std::max(1.0, s.device_cycles_total));
}

TEST(ServeAttribution, SingleTenantCollapsesToOneRow) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.num_tenants = 1;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 20, 6000.0);
  for (const serve::Request& q : w) EXPECT_EQ(q.tenant, 0u);
  serve::Server server(cfg, pool, kSerial);
  server.run(w);
  ASSERT_EQ(server.tenant_usage().size(), 1u);
  EXPECT_EQ(server.tenant_usage()[0].tenant, 0u);
}

TEST(ServeAttribution, TenantCountDoesNotPerturbSchedule) {
  // Tenant derivation is an independent re-mix of the workload hash bits:
  // changing num_tenants must not move a single arrival, kind, or outcome.
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig a = tiny_config();
  a.num_tenants = 1;
  serve::ServeConfig b = tiny_config();
  b.num_tenants = 8;
  const std::vector<serve::Request> wa =
      serve::make_open_loop_workload(pool, a, 30, 6000.0);
  const std::vector<serve::Request> wb =
      serve::make_open_loop_workload(pool, b, 30, 6000.0);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].id, wb[i].id);
    EXPECT_EQ(wa[i].deadline.arrival_us, wb[i].deadline.arrival_us);
    EXPECT_EQ(wa[i].kind, wb[i].kind);
    EXPECT_EQ(wa[i].graph_id, wb[i].graph_id);
    EXPECT_EQ(wa[i].source, wb[i].source);
  }
  serve::Server sa(a, pool, kSerial);
  serve::Server sb(b, pool, kSerial);
  const serve::ServeStats ra = sa.run(wa);
  const serve::ServeStats rb = sb.run(wb);
  EXPECT_EQ(ra.ok, rb.ok);
  EXPECT_EQ(ra.device_cycles_total, rb.device_cycles_total);
  EXPECT_EQ(ra.p99_us, rb.p99_us);
}

TEST(ServeAttribution, IdenticalAcrossHostEnginesChaosIncluded) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.faults = simt::FaultConfig::parse("launch=0.05,host=0.02");
  cfg.trace = true;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 40, 8000.0);

  const auto run_engine = [&](const simt::ExecPolicy& policy,
                              serve::ServeStats* stats) {
    serve::Server server(cfg, pool, policy);
    *stats = server.run(w);
    std::ostringstream os;
    serve::write_serve_trace(os, server.tracer(), nullptr, cfg.num_shards,
                             &server.completions());
    return os.str();
  };
  serve::ServeStats ss, ps;
  const std::string serial = run_engine(kSerial, &ss);
  const std::string parallel = run_engine(kParallel, &ps);
  EXPECT_EQ(serial, parallel);  // unified trace, byte for byte
  EXPECT_EQ(ss.device_cycles_total, ps.device_cycles_total);
  EXPECT_EQ(ss.launches_total, ps.launches_total);
}

TEST(ServeAttribution, TracingOffIsByteInvisible) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig off = tiny_config();
  serve::ServeConfig on = tiny_config();
  on.trace = true;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, off, 30, 6000.0);
  serve::Server soff(off, pool, kSerial);
  serve::Server son(on, pool, kSerial);
  const serve::ServeStats a = soff.run(w);
  const serve::ServeStats b = son.run(w);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.device_cycles_total, b.device_cycles_total);
  ASSERT_EQ(soff.completions().size(), son.completions().size());
  for (std::size_t i = 0; i < soff.completions().size(); ++i) {
    EXPECT_EQ(soff.completions()[i].device_cycles,
              son.completions()[i].device_cycles);
  }
  // Tracing off collects nothing.
  EXPECT_TRUE(soff.tracer().spans().empty());
  EXPECT_TRUE(soff.tracer().grids().empty());
  EXPECT_FALSE(son.tracer().spans().empty());
  EXPECT_FALSE(son.tracer().grids().empty());
}

TEST(ServeAttribution, UnifiedTraceCarriesAttributionRecord) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.trace = true;
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 20, 6000.0);
  serve::Server server(cfg, pool, kSerial);
  server.run(w);
  std::ostringstream os;
  serve::write_serve_trace(os, server.tracer(), nullptr, cfg.num_shards,
                           &server.completions());
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"cat\":\"serve-attribution\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"serve-grid\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"serve-grid-flow\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"serve-dispatch\""), std::string::npos);
  // Without completions, no attribution record — the legacy shape.
  std::ostringstream os2;
  serve::write_serve_trace(os2, server.tracer(), nullptr, cfg.num_shards);
  EXPECT_EQ(os2.str().find("serve-attribution"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ring-cap eviction keeps span trees well-formed.

TEST(ServeTracerRing, EvictsWholeRequestsOldestFirst) {
  serve::ServeTracer tracer(true, 6);
  const auto span = [](std::uint64_t request, serve::SpanKind kind) {
    serve::ServeSpan s;
    s.request = request;
    s.kind = kind;
    return s;
  };
  // Three requests, three spans each: recording the third request's spans
  // must evict request 1 (and then request 2) wholesale — never a partial
  // tree.
  for (std::uint64_t r = 1; r <= 3; ++r) {
    tracer.record(span(r, serve::SpanKind::kRequest));
    std::vector<simt::GridSlice> slices(1);
    tracer.record_grids(r, 0, r, 0, 1, r, 0.0, slices);
    tracer.record(span(r, serve::SpanKind::kExec));
    tracer.record(span(r, serve::SpanKind::kOk));
  }
  EXPECT_EQ(tracer.evicted_requests(), 1u);
  EXPECT_EQ(tracer.evicted_spans(), 3u);
  for (const serve::ServeSpan& s : tracer.spans()) {
    EXPECT_NE(s.request, 1u);
  }
  for (const serve::GridEvent& g : tracer.grids()) {
    EXPECT_NE(g.request, 1u);  // grid events evict with their request
  }
  // Survivors keep complete trees: every remaining request still has its
  // root span.
  for (std::uint64_t r = 2; r <= 3; ++r) {
    bool has_root = false;
    for (const serve::ServeSpan& s : tracer.spans()) {
      if (s.request == r && s.kind == serve::SpanKind::kRequest) {
        has_root = true;
      }
    }
    EXPECT_TRUE(has_root) << "request " << r;
  }
}

TEST(ServeTracerRing, UnboundedByDefault) {
  serve::ServeTracer tracer(true);
  for (std::uint64_t r = 0; r < 100; ++r) {
    serve::ServeSpan s;
    s.request = r;
    tracer.record(s);
  }
  EXPECT_EQ(tracer.spans().size(), 100u);
  EXPECT_EQ(tracer.evicted_requests(), 0u);
}

TEST(ServeTracerRing, CappedServerRunExportsWellFormedTrace) {
  // End to end: a capped tracer under a real server run must still export a
  // trace whose async spans balance and whose flows pair — the structural
  // invariants tools/check_trace.py enforces.
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.trace = true;
  cfg.trace_max_spans = 40;  // far fewer than the run records
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 40, 8000.0);
  serve::Server server(cfg, pool, kSerial);
  server.run(w);
  EXPECT_GT(server.tracer().evicted_requests(), 0u);
  EXPECT_LE(server.tracer().spans().size(), 40u);
  std::ostringstream os;
  serve::write_serve_trace(os, server.tracer(), nullptr, cfg.num_shards,
                           &server.completions());
  const std::string trace = os.str();
  // Async begin/end balance per request id: count both phases.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0;
       (pos = trace.find("\"ph\":\"b\"", pos)) != std::string::npos; ++pos) {
    ++begins;
  }
  for (std::size_t pos = 0;
       (pos = trace.find("\"ph\":\"e\"", pos)) != std::string::npos; ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_NE(trace.find("trace_ring_evictions"), std::string::npos);
}

}  // namespace
