// Serving layer: the virtual clock and deadlines, the circuit-breaker state
// machine, the batching policy, workload synthesis, and full end-to-end runs
// of the Server — clean, overloaded, deadline-starved, and under injected
// chaos. The determinism suites pin the core contract: same (config,
// workload, pool) must give identical admissions, retries, breaker
// transitions, and percentiles on the serial and parallel host engines.
// Every test pins its own fault config, so the ambient NESTPAR_FAULTS the
// `nestpar_faults` ctest entry exports cannot skew expectations.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/serve/batcher.h"
#include "src/serve/breaker.h"
#include "src/serve/pool.h"
#include "src/serve/server.h"
#include "src/simt/exec_policy.h"
#include "src/simt/fault.h"
#include "src/simt/virtual_clock.h"

namespace simt = nestpar::simt;
namespace serve = nestpar::serve;

namespace {

constexpr simt::ExecPolicy kSerial{simt::ExecMode::kSerial, 0};
constexpr simt::ExecPolicy kParallel{simt::ExecMode::kParallel, 4};

// Small pool + config sized so a full end-to-end run takes well under a
// second; tests override the fields they are about.
serve::PoolSpec tiny_pool_spec() {
  serve::PoolSpec p;
  p.num_graphs = 3;
  p.base_nodes = 256;
  p.scale = 0.2;
  p.seed = 0x5e12e;
  return p;
}

serve::ServeConfig tiny_config() {
  serve::ServeConfig cfg;
  cfg.num_shards = 3;
  cfg.queue_capacity = 6;
  cfg.seed = 2026;
  cfg.faults = simt::FaultConfig{};  // Pinned: no injection unless a test asks.
  return cfg;
}

serve::ServeStats run_once(const serve::ServeConfig& cfg,
                           const serve::SubgraphPool& pool, int requests,
                           double qps, const simt::ExecPolicy& policy,
                           std::vector<serve::Completion>* completions_out =
                               nullptr) {
  const std::vector<serve::Request> workload =
      serve::make_open_loop_workload(pool, cfg, requests, qps);
  serve::Server server(cfg, pool, policy);
  const serve::ServeStats stats = server.run(workload);
  if (completions_out != nullptr) *completions_out = server.completions();
  return stats;
}

void expect_accounting(const serve::ServeStats& s) {
  EXPECT_EQ(s.ok + s.expired + s.shed, s.submitted);
  EXPECT_EQ(s.wrong, 0u);
}

TEST(VirtualClock, AdvancesMonotonically) {
  simt::VirtualClock clock;
  EXPECT_EQ(clock.now_us(), 0.0);
  clock.advance_to(10.0);
  clock.advance_by(5.0);
  EXPECT_EQ(clock.now_us(), 15.0);
  clock.advance_to(15.0);  // No-op move to "now" is legal.
  EXPECT_EQ(clock.now_us(), 15.0);
}

TEST(VirtualClock, RefusesToRewind) {
  simt::VirtualClock clock;
  clock.advance_to(100.0);
  EXPECT_THROW(clock.advance_to(99.0), std::logic_error);
  EXPECT_THROW(clock.advance_by(-1.0), std::logic_error);
  EXPECT_EQ(clock.now_us(), 100.0);
}

TEST(VirtualClock, DeadlineArithmetic) {
  const simt::Deadline d{100.0, 50.0};
  EXPECT_EQ(d.expiry_us(), 150.0);
  EXPECT_FALSE(d.expired_at(150.0));  // Inclusive boundary.
  EXPECT_TRUE(d.expired_at(150.5));
  EXPECT_EQ(d.remaining_us(120.0), 30.0);
  EXPECT_LT(d.remaining_us(200.0), 0.0);
}

TEST(CircuitBreaker, TripsAtThresholdAndLogsTransitions) {
  serve::BreakerConfig bc;
  bc.window = 8;
  bc.min_samples = 4;
  bc.trip_threshold = 0.5;
  bc.cooldown_us = 1000.0;
  serve::CircuitBreaker br(bc);

  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);
  EXPECT_FALSE(br.record_attempt(true, 10.0));
  EXPECT_FALSE(br.record_attempt(false, 20.0));
  EXPECT_FALSE(br.record_attempt(true, 30.0));
  // Fourth sample reaches min_samples with 3/4 faulted: trip.
  EXPECT_TRUE(br.record_attempt(true, 40.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(br.open_until_us(), 1040.0);
  EXPECT_EQ(br.trips(), 1);
  EXPECT_FALSE(br.admits());

  ASSERT_EQ(br.transitions().size(), 1u);
  EXPECT_EQ(br.transitions()[0].from, serve::BreakerState::kClosed);
  EXPECT_EQ(br.transitions()[0].to, serve::BreakerState::kOpen);
  EXPECT_EQ(br.transitions()[0].time_us, 40.0);
}

TEST(CircuitBreaker, HalfOpenProbeDecidesRecovery) {
  serve::BreakerConfig bc;
  bc.window = 8;
  bc.min_samples = 2;
  bc.trip_threshold = 0.5;
  bc.cooldown_us = 100.0;
  serve::CircuitBreaker br(bc);

  br.record_attempt(true, 0.0);
  ASSERT_TRUE(br.record_attempt(true, 1.0));

  // Cooldown not yet over: stale wakeups are ignored.
  EXPECT_FALSE(br.try_begin_probe(50.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_TRUE(br.try_begin_probe(101.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kHalfOpen);
  EXPECT_TRUE(br.admits());

  // Failed probe re-opens (counts as a trip); successful probe closes.
  EXPECT_TRUE(br.record_attempt(true, 102.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(br.trips(), 2);
  ASSERT_TRUE(br.try_begin_probe(202.0 + bc.cooldown_us));
  EXPECT_FALSE(br.record_attempt(false, 303.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);

  // closed->open, open->half, half->open, open->half, half->closed.
  EXPECT_EQ(br.transitions().size(), 5u);
}

// The full recovery cycle, pinned by transition *timestamps*: trip at the
// faulting sample, probe only after the cooldown elapses, close at the
// probe's success time — and a failed half-open probe re-trips with a fresh
// cooldown anchored at the failure, not the original trip.
TEST(CircuitBreaker, TransitionTimestampsThroughRecoveryCycle) {
  serve::BreakerConfig bc;
  bc.window = 8;
  bc.min_samples = 2;
  bc.trip_threshold = 0.5;
  bc.cooldown_us = 500.0;
  serve::CircuitBreaker br(bc);

  br.record_attempt(true, 10.0);
  ASSERT_TRUE(br.record_attempt(true, 25.0));  // Trip at t=25.
  EXPECT_EQ(br.open_until_us(), 525.0);

  // Half-open exactly when asked after the cooldown boundary.
  EXPECT_FALSE(br.try_begin_probe(524.0));
  ASSERT_TRUE(br.try_begin_probe(526.0));

  // Failed probe: re-trip at the probe's own failure time, new cooldown
  // anchored there.
  ASSERT_TRUE(br.record_attempt(true, 530.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(br.open_until_us(), 1030.0);
  EXPECT_EQ(br.trips(), 2);

  // Second probe succeeds: closed at the success time.
  ASSERT_TRUE(br.try_begin_probe(1031.0));
  EXPECT_FALSE(br.record_attempt(false, 1040.0));
  EXPECT_EQ(br.state(), serve::BreakerState::kClosed);

  const auto& ts = br.transitions();
  ASSERT_EQ(ts.size(), 5u);
  // closed->open @25, open->half @526, half->open @530, open->half @1031,
  // half->closed @1040.
  EXPECT_EQ(ts[0].from, serve::BreakerState::kClosed);
  EXPECT_EQ(ts[0].to, serve::BreakerState::kOpen);
  EXPECT_EQ(ts[0].time_us, 25.0);
  EXPECT_EQ(ts[1].from, serve::BreakerState::kOpen);
  EXPECT_EQ(ts[1].to, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(ts[1].time_us, 526.0);
  EXPECT_EQ(ts[2].from, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(ts[2].to, serve::BreakerState::kOpen);
  EXPECT_EQ(ts[2].time_us, 530.0);
  EXPECT_EQ(ts[3].from, serve::BreakerState::kOpen);
  EXPECT_EQ(ts[3].to, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(ts[3].time_us, 1031.0);
  EXPECT_EQ(ts[4].from, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(ts[4].to, serve::BreakerState::kClosed);
  EXPECT_EQ(ts[4].time_us, 1040.0);
}

TEST(Batcher, FullBatchDispatchesImmediately) {
  serve::ServeConfig cfg = tiny_config();
  cfg.batch_max = 4;
  const serve::BatchDecision d =
      serve::Batcher::decide(9, /*oldest_enqueue_us=*/0.0, cfg,
                             /*now_us=*/1.0, /*probe=*/false);
  EXPECT_TRUE(d.dispatch);
  EXPECT_EQ(d.take, 4);
}

TEST(Batcher, PartialBatchLingersThenFlushes) {
  serve::ServeConfig cfg = tiny_config();
  cfg.batch_max = 8;
  cfg.batch_linger_us = 200.0;
  // Window still open: hold, and report when it closes.
  serve::BatchDecision d = serve::Batcher::decide(3, 100.0, cfg, 150.0, false);
  EXPECT_FALSE(d.dispatch);
  EXPECT_EQ(d.wake_us, 300.0);
  // Window closed: flush everything queued.
  d = serve::Batcher::decide(3, 100.0, cfg, 300.0, false);
  EXPECT_TRUE(d.dispatch);
  EXPECT_EQ(d.take, 3);
}

TEST(Batcher, ProbeTakesExactlyOne) {
  serve::ServeConfig cfg = tiny_config();
  const serve::BatchDecision d =
      serve::Batcher::decide(5, 0.0, cfg, 0.0, /*probe=*/true);
  EXPECT_TRUE(d.dispatch);
  EXPECT_EQ(d.take, 1);
}

TEST(ServeWorkload, DeterministicAndOrdered) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  const serve::ServeConfig cfg = tiny_config();
  const std::vector<serve::Request> a =
      serve::make_open_loop_workload(pool, cfg, 64, 4000.0);
  const std::vector<serve::Request> b =
      serve::make_open_loop_workload(pool, cfg, 64, 4000.0);
  ASSERT_EQ(a.size(), 64u);
  ASSERT_EQ(b.size(), 64u);
  bool saw_non_sssp = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].graph_id, b[i].graph_id);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].deadline.arrival_us, b[i].deadline.arrival_us);
    EXPECT_EQ(a[i].deadline.budget_us, cfg.deadline_us);
    EXPECT_LT(static_cast<int>(a[i].graph_id), pool.size());
    if (i > 0) EXPECT_GT(a[i].deadline.arrival_us, a[i - 1].deadline.arrival_us);
    if (a[i].kind != serve::QueryKind::kSssp) saw_non_sssp = true;
  }
  EXPECT_TRUE(saw_non_sssp) << "kind mix collapsed to a single query type";
}

TEST(ServeStatsHelpers, NearestRankPercentile) {
  EXPECT_EQ(serve::percentile_nearest_rank({}, 0.99), 0.0);
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(serve::percentile_nearest_rank(v, 0.50), 20.0);
  EXPECT_EQ(serve::percentile_nearest_rank(v, 0.75), 30.0);
  EXPECT_EQ(serve::percentile_nearest_rank(v, 0.99), 40.0);
  EXPECT_EQ(serve::percentile_nearest_rank({7.0}, 0.50), 7.0);
}

TEST(ServeEndToEnd, CleanRunCompletesEverythingOk) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  const serve::ServeConfig cfg = tiny_config();
  std::vector<serve::Completion> completions;
  const serve::ServeStats s =
      run_once(cfg, pool, 60, 4000.0, kSerial, &completions);
  expect_accounting(s);
  EXPECT_EQ(s.ok, 60u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.breaker_trips, 0u);
  EXPECT_EQ(s.faults_injected, 0u);
  EXPECT_GT(s.p50_us, 0.0);
  EXPECT_GE(s.p99_us, s.p95_us);
  EXPECT_GE(s.p95_us, s.p50_us);
  EXPECT_GE(s.max_us, s.p99_us);
  ASSERT_EQ(completions.size(), 60u);
  for (const serve::Completion& c : completions) {
    EXPECT_EQ(c.status, serve::RequestStatus::kOk);
    EXPECT_TRUE(c.correct);
    EXPECT_EQ(c.attempts, 1);
    EXPECT_GE(c.shard, 0);
  }
}

TEST(ServeEndToEnd, OverloadShedsOldestFirstAndStaysAccounted) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.queue_capacity = 4;
  const serve::ServeStats s = run_once(cfg, pool, 80, 64000.0, kSerial);
  expect_accounting(s);
  EXPECT_GT(s.shed, 0u) << "8x-style overload with tiny queues must shed";
  EXPECT_GT(s.ok, 0u) << "shedding must protect, not replace, service";
}

TEST(ServeEndToEnd, StarvedDeadlineExpiresTyped) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.deadline_us = 1.0;  // No query can finish inside 1us.
  std::vector<serve::Completion> completions;
  const serve::ServeStats s =
      run_once(cfg, pool, 20, 4000.0, kSerial, &completions);
  expect_accounting(s);
  EXPECT_EQ(s.ok, 0u);
  EXPECT_GT(s.expired, 0u);
  for (const serve::Completion& c : completions) {
    EXPECT_NE(c.status, serve::RequestStatus::kOk);
  }
}

TEST(ServeFaults, ChaosRetriesButNeverServesWrongData) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.faults = simt::FaultConfig::parse("launch=0.05,host=0.05");
  const serve::ServeStats s = run_once(cfg, pool, 80, 4000.0, kSerial);
  expect_accounting(s);
  EXPECT_GT(s.faults_injected, 0u) << "5% injection over 80 queries was silent";
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.ok, 0u);
  // Every retry is preceded by a failed attempt, and every Ok costs one
  // successful attempt — shed/expired queries may never execute at all.
  EXPECT_GE(s.attempts, s.ok + s.retries);
}

TEST(ServeFaults, SaturatedFaultsTripBreakersAndShedOrExpire) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.faults = simt::FaultConfig::parse("host=0.6");
  const serve::ServeStats s = run_once(cfg, pool, 80, 6000.0, kSerial);
  expect_accounting(s);
  EXPECT_GT(s.breaker_trips, 0u);
  EXPECT_GT(s.shed + s.expired, 0u)
      << "a mostly-faulting fleet must degrade, not hang";
}

TEST(ServeFaults, HedgedRetryMovesToSiblingShard) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.faults = simt::FaultConfig::parse("host=0.10");
  std::vector<serve::Completion> hedged_on;
  const serve::ServeStats with_hedge =
      run_once(cfg, pool, 80, 4000.0, kSerial, &hedged_on);
  EXPECT_GT(with_hedge.hedges, 0u);
  bool saw_hedged = false;
  for (const serve::Completion& c : hedged_on) saw_hedged |= c.hedged;
  EXPECT_TRUE(saw_hedged);

  cfg.hedge = false;
  const serve::ServeStats without = run_once(cfg, pool, 80, 4000.0, kSerial);
  expect_accounting(without);
  EXPECT_EQ(without.hedges, 0u);
}

// The core contract: serial and parallel host engines replay the identical
// serving timeline — same admissions, retries, trips, and percentiles.
void expect_same_stats(const serve::ServeStats& a, const serve::ServeStats& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.wrong, b.wrong);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p95_us, b.p95_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.mean_us, b.mean_us);
  EXPECT_EQ(a.max_us, b.max_us);
  EXPECT_EQ(a.qps_ok, b.qps_ok);
  EXPECT_EQ(a.p99_queue_us, b.p99_queue_us);
  EXPECT_EQ(a.p99_batch_us, b.p99_batch_us);
  EXPECT_EQ(a.p99_exec_us, b.p99_exec_us);
  EXPECT_EQ(a.p99_retry_us, b.p99_retry_us);
}

void expect_same_completions(const std::vector<serve::Completion>& a,
                             const std::vector<serve::Completion>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "completion " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "completion " << i;
    EXPECT_EQ(a[i].shard, b[i].shard) << "completion " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "completion " << i;
    EXPECT_EQ(a[i].hedged, b[i].hedged) << "completion " << i;
    EXPECT_EQ(a[i].finish_us, b[i].finish_us) << "completion " << i;
    EXPECT_EQ(a[i].latency_us, b[i].latency_us) << "completion " << i;
    EXPECT_EQ(a[i].queue_us, b[i].queue_us) << "completion " << i;
    EXPECT_EQ(a[i].batch_us, b[i].batch_us) << "completion " << i;
    EXPECT_EQ(a[i].exec_us, b[i].exec_us) << "completion " << i;
    EXPECT_EQ(a[i].retry_us, b[i].retry_us) << "completion " << i;
  }
}

TEST(ServeDeterminism, EnginesAgreeOnCleanRuns) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  const serve::ServeConfig cfg = tiny_config();
  std::vector<serve::Completion> cs;
  std::vector<serve::Completion> cp;
  const serve::ServeStats s = run_once(cfg, pool, 60, 5000.0, kSerial, &cs);
  const serve::ServeStats p = run_once(cfg, pool, 60, 5000.0, kParallel, &cp);
  expect_same_stats(s, p);
  expect_same_completions(cs, cp);
}

TEST(ServeDeterminism, EnginesAgreeUnderChaos) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  serve::ServeConfig cfg = tiny_config();
  cfg.faults = simt::FaultConfig::parse("launch=0.05,host=0.08,seed=42");
  std::vector<serve::Completion> cs;
  std::vector<serve::Completion> cp;
  const serve::ServeStats s = run_once(cfg, pool, 80, 5000.0, kSerial, &cs);
  const serve::ServeStats p = run_once(cfg, pool, 80, 5000.0, kParallel, &cp);
  EXPECT_GT(s.retries, 0u) << "chaos config too weak to exercise retry paths";
  expect_same_stats(s, p);
  expect_same_completions(cs, cp);

  // Breaker timelines must agree too, shard by shard.
  serve::Server ss(cfg, pool, kSerial);
  serve::Server sp(cfg, pool, kParallel);
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 80, 5000.0);
  ss.run(w);
  sp.run(w);
  ASSERT_EQ(ss.shards().size(), sp.shards().size());
  for (std::size_t i = 0; i < ss.shards().size(); ++i) {
    const auto& ta = ss.shards()[i].breaker().transitions();
    const auto& tb = sp.shards()[i].breaker().transitions();
    ASSERT_EQ(ta.size(), tb.size()) << "shard " << i;
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].time_us, tb[j].time_us) << "shard " << i;
      EXPECT_EQ(ta[j].from, tb[j].from) << "shard " << i;
      EXPECT_EQ(ta[j].to, tb[j].to) << "shard " << i;
    }
  }
}

TEST(ServeServer, IsOneShot) {
  const serve::SubgraphPool pool(tiny_pool_spec());
  const serve::ServeConfig cfg = tiny_config();
  const std::vector<serve::Request> w =
      serve::make_open_loop_workload(pool, cfg, 8, 4000.0);
  serve::Server server(cfg, pool, kSerial);
  server.run(w);
  EXPECT_THROW(server.run(w), std::logic_error);
}

TEST(ServeConfigValidation, RejectsNonsense) {
  serve::ServeConfig cfg = tiny_config();
  cfg.num_shards = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_config();
  cfg.queue_capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_config();
  cfg.max_attempts = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_config();
  cfg.deadline_us = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(tiny_config().validate());
}

}  // namespace
