// Engine determinism: the multi-threaded host engine must be functionally
// and *temporally* indistinguishable from the serial engine — identical
// result arrays bit for bit, identical modeled cycle counts, identical
// metrics, identical launch-graph shape. Every suite here is named
// *Determinism* so the tsan CMake preset can select exactly these tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/rec/tree_traversal.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"
#include "src/tree/tree.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace rec = nestpar::rec;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;
namespace tree = nestpar::tree;

namespace {

// Exact equality on every field of the report, doubles included: the
// parallel engine merges per-block records in block order, so even
// floating-point cycle sums must come out bit-identical, not merely close.
void expect_identical(const simt::RunReport& s, const simt::RunReport& p) {
  EXPECT_EQ(s.total_cycles, p.total_cycles);
  EXPECT_EQ(s.total_us, p.total_us);
  EXPECT_EQ(s.grids, p.grids);
  EXPECT_EQ(s.device_grids, p.device_grids);

  const auto same_robustness = [](const simt::RobustnessCounters& a,
                                  const simt::RobustnessCounters& b,
                                  const std::string& where) {
    EXPECT_EQ(a.launches_attempted, b.launches_attempted) << where;
    EXPECT_EQ(a.refused_pool, b.refused_pool) << where;
    EXPECT_EQ(a.refused_depth, b.refused_depth) << where;
    EXPECT_EQ(a.refused_heap, b.refused_heap) << where;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << where;
    EXPECT_EQ(a.retries, b.retries) << where;
    EXPECT_EQ(a.degraded, b.degraded) << where;
  };
  same_robustness(s.robustness, p.robustness, "report robustness");

  const auto same_metrics = [&](const simt::Metrics& a, const simt::Metrics& b,
                                const std::string& where) {
    EXPECT_EQ(a.warp_steps, b.warp_steps) << where;
    EXPECT_EQ(a.active_lane_ops, b.active_lane_ops) << where;
    EXPECT_EQ(a.gld_requested_bytes, b.gld_requested_bytes) << where;
    EXPECT_EQ(a.gld_transferred_bytes, b.gld_transferred_bytes) << where;
    EXPECT_EQ(a.gst_requested_bytes, b.gst_requested_bytes) << where;
    EXPECT_EQ(a.gst_transferred_bytes, b.gst_transferred_bytes) << where;
    EXPECT_EQ(a.atomic_ops, b.atomic_ops) << where;
    EXPECT_EQ(a.shared_ops, b.shared_ops) << where;
    EXPECT_EQ(a.compute_ops, b.compute_ops) << where;
    EXPECT_EQ(a.host_launches, b.host_launches) << where;
    EXPECT_EQ(a.device_launches, b.device_launches) << where;
    EXPECT_EQ(a.blocks, b.blocks) << where;
    EXPECT_EQ(a.warps, b.warps) << where;
    EXPECT_EQ(a.resident_warp_cycles, b.resident_warp_cycles) << where;
    EXPECT_EQ(a.sm_active_cycles, b.sm_active_cycles) << where;
    same_robustness(a.robustness, b.robustness, where + " robustness");
  };
  same_metrics(s.aggregate, p.aggregate, "aggregate");

  ASSERT_EQ(s.per_kernel.size(), p.per_kernel.size());
  for (std::size_t i = 0; i < s.per_kernel.size(); ++i) {
    EXPECT_EQ(s.per_kernel[i].name, p.per_kernel[i].name);
    EXPECT_EQ(s.per_kernel[i].invocations, p.per_kernel[i].invocations);
    EXPECT_EQ(s.per_kernel[i].busy_cycles, p.per_kernel[i].busy_cycles);
    same_metrics(s.per_kernel[i].metrics, p.per_kernel[i].metrics,
                 "kernel " + s.per_kernel[i].name);
  }
}

constexpr simt::ExecPolicy kParallel{simt::ExecMode::kParallel, 4};

graph::Csr skewed_graph() {
  // Power-law outdegrees make block runtimes uneven, so the pool's dynamic
  // chunk claiming actually interleaves blocks across threads — the setting
  // where a nondeterministic engine would get caught.
  return graph::generate_power_law(1500, 0, 300, 6.0, 20150707, true);
}

std::uint32_t first_source(const graph::Csr& g) {
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (g.row_offsets[v + 1] > g.row_offsets[v]) return v;
  }
  return 0;
}

// --- nested-loop templates -----------------------------------------------------

class LoopDeterminism : public testing::TestWithParam<nested::LoopTemplate> {};

TEST_P(LoopDeterminism, SsspMatchesSerialEngineExactly) {
  const graph::Csr g = skewed_graph();
  const std::uint32_t src = first_source(g);
  nested::LoopParams p;
  p.lb_threshold = 32;

  simt::Device dev;

  apps::SsspResult a, b;
  simt::RunReport ra, rb;
  {
    simt::Session session = dev.session(simt::ExecPolicy::serial());
    a = apps::run_sssp(dev, g, src, GetParam(), p);
    ra = session.report();
  }
  {
    simt::Session session = dev.session(kParallel);
    b = apps::run_sssp(dev, g, src, GetParam(), p);
    rb = session.report();
  }

  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  EXPECT_EQ(a.dist, b.dist);  // bitwise-equal floats
  expect_identical(ra, rb);
}

TEST_P(LoopDeterminism, SpmvBundledRunMatches) {
  const auto g = graph::generate_power_law(900, 0, 200, 5.0, 42, true);
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 7);

  simt::Device dev;
  std::vector<float> ys(a.rows, 0.0f), yp(a.rows, 0.0f);
  apps::SpmvWorkload ws(a, x.data(), ys.data());
  apps::SpmvWorkload wp(a, x.data(), yp.data());
  nested::LoopParams p;
  p.lb_threshold = 16;
  const nested::RunResult rs = nested::run_nested_loop(
      dev, ws,
      nested::LoopRun{GetParam(), p, simt::ExecPolicy::serial()});
  const nested::RunResult rp = nested::run_nested_loop(
      dev, wp, nested::LoopRun{GetParam(), p, kParallel});

  EXPECT_EQ(ys, yp);
  expect_identical(rs.report, rp.report);
}

// gtest parameter names must be identifiers; the canonical template names
// use dashes (e.g. "block-mapped"), so swap them for underscores here.
std::string test_name(std::string_view canonical) {
  std::string s(canonical);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

std::vector<nested::LoopTemplate> all_loop_templates() {
  std::vector<nested::LoopTemplate> v;
  for (const nested::LoopTemplateDesc& d : nested::loop_templates()) {
    v.push_back(d.tmpl);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, LoopDeterminism,
                         testing::ValuesIn(all_loop_templates()),
                         [](const auto& info) {
                           return test_name(nested::name(info.param));
                         });

// --- recursive templates -------------------------------------------------------

class RecDeterminism : public testing::TestWithParam<rec::RecTemplate> {};

TEST_P(RecDeterminism, TreeTraversalMatchesSerialEngineExactly) {
  const tree::Tree tr =
      tree::generate_tree({.depth = 3, .outdegree = 24, .sparsity = 1}, 99);
  for (const rec::TreeAlgo algo :
       {rec::TreeAlgo::kDescendants, rec::TreeAlgo::kHeights}) {
    simt::Device dev;
    const rec::TreeRunResult s = rec::run_tree_traversal(
        dev, tr,
        {.algo = algo, .tmpl = GetParam(),
         .policy = simt::ExecPolicy::serial()});
    const rec::TreeRunResult p = rec::run_tree_traversal(
        dev, tr, {.algo = algo, .tmpl = GetParam(), .policy = kParallel});
    EXPECT_EQ(s.values, p.values) << rec::name(algo);
    expect_identical(s.report, p.report);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, RecDeterminism,
                         testing::ValuesIn(rec::kAllRecTemplates),
                         [](const auto& info) {
                           return test_name(rec::name(info.param));
                         });

// --- synthetic coverage: streams, events, async nested launches ----------------

// A kernel mix the apps never quite produce: cross-stream events, deferred
// (async) nested launches, and divergent atomics, all in one session.
simt::RunReport synthetic_session(simt::Device& dev,
                                  const simt::ExecPolicy& policy,
                                  std::vector<float>& data) {
  simt::Session session = dev.session(policy);
  simt::LaunchConfig outer;
  outer.grid_blocks = 24;
  outer.block_threads = 96;
  outer.name = "outer";
  int hot = 0;
  dev.launch_threads(outer, [&](simt::LaneCtx& t) {
    const auto idx = static_cast<std::size_t>(t.global_idx()) % data.size();
    t.ld(&data[idx]);
    if (t.global_idx() % 3 == 0) t.atomic_add(&hot, 1);
    if (t.thread_idx() == 0 && t.block_idx() % 4 == 0) {
      simt::LaunchConfig child;
      child.grid_blocks = 2;
      child.block_threads = 32;
      child.name = "child";
      t.launch_threads(child, [&](simt::LaneCtx& c) {
        c.st(&data[static_cast<std::size_t>(c.global_idx()) % data.size()],
             1.0f);
        c.compute(5);
      });
      child.name = "child_async";
      t.launch_threads_async(child,
                             [](simt::LaneCtx& c) { c.compute(9); });
    }
  });
  const simt::EventHandle ev = dev.record_event(simt::StreamHandle{1});
  dev.stream_wait(simt::StreamHandle{2}, ev);
  simt::LaunchConfig tail;
  tail.grid_blocks = 4;
  tail.block_threads = 64;
  tail.name = "tail";
  dev.launch_threads(
      tail, [&](simt::LaneCtx& t) { t.st(&data[t.global_idx()], 2.0f); },
      simt::StreamHandle{2});
  return session.report();
}

TEST(SyntheticDeterminism, StreamsEventsAndAsyncLaunchesMatch) {
  simt::Device dev;
  std::vector<float> ds(4096, 0.5f), dp(4096, 0.5f);
  const simt::RunReport rs =
      synthetic_session(dev, simt::ExecPolicy::serial(), ds);
  const simt::RunReport rp = synthetic_session(dev, kParallel, dp);
  EXPECT_EQ(ds, dp);
  expect_identical(rs, rp);
}

// The parallel engine must also agree with itself across repeated runs and
// across thread counts (2 vs 4): block-order merging, not scheduling luck.
TEST(SyntheticDeterminism, StableAcrossRunsAndThreadCounts) {
  simt::Device dev;
  std::vector<float> d1(4096, 0.5f), d2(4096, 0.5f), d3(4096, 0.5f);
  const simt::RunReport r1 = synthetic_session(dev, kParallel, d1);
  const simt::RunReport r2 = synthetic_session(dev, kParallel, d2);
  const simt::RunReport r3 = synthetic_session(
      dev, simt::ExecPolicy{simt::ExecMode::kParallel, 2}, d3);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d3);
  expect_identical(r1, r2);
  expect_identical(r1, r3);
}

}  // namespace
