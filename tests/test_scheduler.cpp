// Timing-pass behavior tests: stream FIFO semantics, the concurrent-grid
// limit, occupancy-driven residency, GMU activation order, latency hiding,
// and scheduling determinism. All drive the scheduler through the Device
// facade (the scheduler itself is an implementation detail).
#include <gtest/gtest.h>

#include "src/simt/device.h"
#include "src/simt/scheduler.h"

namespace simt = nestpar::simt;

namespace {

simt::LaunchConfig cfg(int blocks, int threads, const char* name,
                       std::size_t smem = 0) {
  simt::LaunchConfig c;
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.smem_bytes = smem;
  c.name = name;
  return c;
}

simt::ScheduleResult run_schedule(simt::Device& dev) {
  simt::LaunchGraph graph = dev.graph();
  return simt::schedule(dev.spec(), graph);
}

TEST(SchedulerStreams, SameStreamGridsSerialize) {
  simt::Device dev;
  auto work = [](simt::LaneCtx& t) { t.compute(5000); };
  dev.launch_threads(cfg(1, 64, "a"), work, simt::StreamHandle{3});
  dev.launch_threads(cfg(1, 64, "b"), work, simt::StreamHandle{3});
  const auto s = run_schedule(dev);
  // b starts only after a completes.
  EXPECT_GE(s.node_start[1], s.node_end[0]);
}

TEST(SchedulerStreams, DifferentStreamsOverlap) {
  simt::Device dev;
  auto work = [](simt::LaneCtx& t) { t.compute(5000); };
  dev.launch_threads(cfg(1, 64, "a"), work, simt::StreamHandle{1});
  dev.launch_threads(cfg(1, 64, "b"), work, simt::StreamHandle{2});
  const auto s = run_schedule(dev);
  EXPECT_LT(s.node_start[1], s.node_end[0]);
}

TEST(SchedulerStreams, DeviceLaunchesFromSameBlockSerialize) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 1, "parent"), [](simt::LaneCtx& t) {
    auto child = [](simt::LaneCtx& c) { c.compute(4000); };
    t.launch_threads(cfg(1, 32, "c1"), child);
    t.launch_threads(cfg(1, 32, "c2"), child);
  });
  const auto s = run_schedule(dev);
  // Nodes 1 and 2 are the children, in the block's default child stream.
  EXPECT_GE(s.node_start[2], s.node_end[1]);
}

TEST(SchedulerStreams, ExtraStreamSlotAllowsChildOverlap) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 1, "parent"), [](simt::LaneCtx& t) {
    auto child = [](simt::LaneCtx& c) { c.compute(40000); };
    t.launch_threads(cfg(1, 32, "c1"), child, -1);
    t.launch_threads(cfg(1, 32, "c2"), child, 0);  // extra stream slot
  });
  const auto s = run_schedule(dev);
  EXPECT_LT(s.node_start[2], s.node_end[1]);
}

TEST(SchedulerConcurrency, GridSlotLimitSerializesExcessGrids) {
  // More single-block grids than concurrent-grid slots: makespan grows
  // beyond what pure resource limits would allow.
  simt::DeviceSpec spec = simt::DeviceSpec::k20();
  spec.max_concurrent_grids = 2;
  simt::Device narrow(spec);
  simt::Device wide;  // default: 32 slots
  for (int i = 0; i < 8; ++i) {
    auto work = [](simt::LaneCtx& t) { t.compute(20000); };
    narrow.launch_threads(cfg(1, 64, "g"), work, simt::StreamHandle{i + 1});
    wide.launch_threads(cfg(1, 64, "g"), work, simt::StreamHandle{i + 1});
  }
  EXPECT_GT(narrow.report().total_cycles, wide.report().total_cycles * 1.5);
}

TEST(SchedulerOccupancy, SharedMemoryLimitsResidency) {
  // 13 SMs; blocks demanding 40KB of shared memory can only run one per SM,
  // so 26 such blocks need two waves.
  simt::Device dev;
  auto work = [](simt::LaneCtx& t) { t.compute(10000); };
  dev.launch_threads(cfg(26, 64, "fat", 40 * 1024), work);
  const double fat = dev.report().total_cycles;
  dev.reset();
  dev.launch_threads(cfg(26, 64, "thin", 1024), work);
  const double thin = dev.report().total_cycles;
  EXPECT_GT(fat, thin * 1.5);
}

TEST(SchedulerOccupancy, LowOccupancyExposesLatency) {
  // One resident warp cannot hide latency; many warps can.
  simt::Device dev;
  dev.launch_threads(cfg(13, 32, "sparse"),
                     [](simt::LaneCtx& t) { t.compute(24000); });
  const double sparse = dev.report().total_cycles;
  dev.reset();
  // Same total work, 24 warps per SM.
  dev.launch_threads(cfg(13, 768, "dense"),
                     [](simt::LaneCtx& t) { t.compute(1000); });
  const double dense = dev.report().total_cycles;
  EXPECT_GT(sparse, dense * 2);
}

TEST(SchedulerGmu, ActivationFollowsReadyOrder) {
  simt::Device dev;
  dev.launch_threads(cfg(1, 2, "parent"), [](simt::LaneCtx& t) {
    simt::LaunchConfig c = cfg(1, 32, "child");
    t.launch_threads(c, [](simt::LaneCtx& l) { l.compute(1); });
  });
  const auto s = run_schedule(dev);
  // Two children (one per lane): the second activates one GMU service
  // period after the first.
  const double gap = s.node_start[2] - s.node_start[1];
  EXPECT_GE(gap, dev.spec().device_launch_service_cycles() * 0.99);
}

TEST(SchedulerDrain, HotspotDelaysOnlyItsGrid) {
  simt::Device dev;
  int hot = 0;
  dev.launch_threads(cfg(26, 192, "hot"), [&](simt::LaneCtx& t) {
    t.atomic_add(&hot, 1);
  });
  dev.launch_threads(cfg(1, 32, "after"),
                     [](simt::LaneCtx& t) { t.compute(10); },
                     simt::StreamHandle{5});
  const auto s = run_schedule(dev);
  // The independent grid in another stream is not held back by the drain.
  EXPECT_LT(s.node_start[1], s.node_end[0]);
}

TEST(SchedulerDeterminism, IdenticalSessionsScheduleIdentically) {
  auto build = [](simt::Device& dev) {
    for (int i = 0; i < 5; ++i) {
      dev.launch_threads(cfg(3 + i, 64, "k"), [i](simt::LaneCtx& t) {
        t.compute(static_cast<std::uint32_t>(100 * (i + 1)));
      });
    }
  };
  simt::Device a, b;
  build(a);
  build(b);
  const auto sa = run_schedule(a);
  const auto sb = run_schedule(b);
  ASSERT_EQ(sa.node_end.size(), sb.node_end.size());
  for (std::size_t i = 0; i < sa.node_end.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa.node_end[i], sb.node_end[i]);
  }
  EXPECT_DOUBLE_EQ(sa.total_cycles, sb.total_cycles);
}

TEST(SchedulerMakespan, EqualsLatestGridEnd) {
  simt::Device dev;
  dev.launch_threads(cfg(2, 64, "x"),
                     [](simt::LaneCtx& t) { t.compute(500); });
  dev.launch_threads(cfg(2, 64, "y"),
                     [](simt::LaneCtx& t) { t.compute(2500); });
  const auto s = run_schedule(dev);
  double latest = 0;
  for (double e : s.node_end) latest = std::max(latest, e);
  EXPECT_DOUBLE_EQ(s.total_cycles, latest);
}

TEST(SchedulerBigGrid, ManyBlocksWaveThroughSms) {
  // 130 fully-occupying blocks = 10 waves over 13 SMs; the makespan should
  // be close to 10x a single wave, not 130x a single block. (Blocks of 768
  // threads keep latency hiding saturated in both cases, isolating the
  // wave effect from the occupancy effect.)
  simt::Device dev;
  dev.launch_threads(cfg(13, 768, "wave"),
                     [](simt::LaneCtx& t) { t.compute(10000); });
  const double one_wave = dev.report().total_cycles;
  dev.reset();
  dev.launch_threads(cfg(130, 768, "waves"),
                     [](simt::LaneCtx& t) { t.compute(10000); });
  const double ten_waves = dev.report().total_cycles;
  EXPECT_GT(ten_waves, one_wave * 5);
  EXPECT_LT(ten_waves, one_wave * 20);
}

}  // namespace
