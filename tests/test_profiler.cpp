// Tests for the profiling subsystem (src/simt/profiler.{h,cpp}) and its
// PROF_<suite>.json pipeline: histogram bucketing and merging, the
// off-by-default gating discipline, per-kernel distribution collection
// through Device::report(), determinism across host execution engines, JSON
// round-trip fidelity, and the paper's load-imbalance claim — the
// delayed-buffer template flattens the per-block cycle distribution of the
// SSSP relaxation sweep relative to the thread-mapped baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "bench/results.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/nested/templates.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"
#include "src/simt/profiler.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace bench = nestpar::bench;

namespace {

/// Saves and restores the process-wide profiler state around each test, so
/// profiling tests cannot leak an enabled profiler into unrelated suites.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = simt::Profiler::enabled();
    simt::Profiler::instance().reset();
  }
  void TearDown() override {
    simt::Profiler::set_enabled(was_enabled_);
    simt::Profiler::instance().reset();
  }

 private:
  bool was_enabled_ = false;
};

void tiny_workload(simt::Device& dev, int grid_blocks = 4) {
  simt::LaunchConfig cfg;
  cfg.grid_blocks = grid_blocks;
  cfg.block_threads = 32;
  cfg.name = "tiny/baseline/main";
  dev.launch_threads(cfg, [](simt::LaneCtx& t) {
    // Uneven per-lane work so the block-cycle histogram has real spread.
    for (int i = 0; i <= t.global_idx() % 7; ++i) t.compute(1);
  });
}

TEST_F(ProfilerTest, HistogramBucketBoundaries) {
  EXPECT_EQ(simt::ProfHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(0.5), 0);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(-3.0), 0);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(1.0), 1);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(1.9), 1);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(2.0), 2);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(3.0), 2);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(4.0), 3);
  EXPECT_EQ(simt::ProfHistogram::bucket_of(1024.0), 11);
  // Huge values clamp to the last bucket instead of overflowing.
  EXPECT_EQ(simt::ProfHistogram::bucket_of(1e30),
            simt::ProfHistogram::kBuckets - 1);
}

TEST_F(ProfilerTest, HistogramAddAndMergeTrackStats) {
  simt::ProfHistogram a;
  a.add(2.0);
  a.add(10.0);
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.sum, 12.0);
  EXPECT_DOUBLE_EQ(a.min_value, 2.0);
  EXPECT_DOUBLE_EQ(a.max_value, 10.0);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);

  simt::ProfHistogram b;
  b.add(1.0);
  b += a;
  EXPECT_EQ(b.count, 3u);
  EXPECT_DOUBLE_EQ(b.min_value, 1.0);
  EXPECT_DOUBLE_EQ(b.max_value, 10.0);
  EXPECT_EQ(b.buckets[simt::ProfHistogram::bucket_of(1.0)], 1u);
  EXPECT_EQ(b.buckets[simt::ProfHistogram::bucket_of(10.0)], 1u);

  // Merging into an empty histogram copies min/max instead of keeping the
  // zero-initialized sentinels.
  simt::ProfHistogram c;
  c += a;
  EXPECT_DOUBLE_EQ(c.min_value, 2.0);
  EXPECT_DOUBLE_EQ(c.max_value, 10.0);
}

TEST_F(ProfilerTest, DisabledProfilerObservesNothing) {
  simt::Profiler::set_enabled(false);
  simt::Device dev;
  {
    simt::Session s = dev.session();
    tiny_workload(dev);
    s.prof_counter("tiny/track", 1.0);
    s.prof_value("tiny/dist", 2.0);
    s.prof_instant("tiny/event", "test");
    (void)s.report();
  }
  const simt::ProfileSnapshot snap = simt::Profiler::instance().snapshot();
  EXPECT_EQ(snap.reports, 0u);
  EXPECT_EQ(snap.grids, 0u);
  EXPECT_TRUE(snap.kernels.empty());
  EXPECT_TRUE(snap.tracks.empty());
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.instants.empty());
}

TEST_F(ProfilerTest, ReportFoldsKernelDistributions) {
  simt::Profiler::set_enabled(true);
  simt::Device dev;
  {
    simt::Session s = dev.session();
    tiny_workload(dev, /*grid_blocks=*/4);
    s.prof_counter("tiny/track", 3.0);
    s.prof_instant("tiny/flush", "queue");
    (void)s.report();
  }
  const simt::ProfileSnapshot snap = simt::Profiler::instance().snapshot();
  EXPECT_EQ(snap.reports, 1u);
  EXPECT_EQ(snap.grids, 1u);
  ASSERT_EQ(snap.kernels.size(), 1u);

  const simt::KernelProfile& k = snap.kernels[0];
  EXPECT_EQ(k.name, "tiny/baseline/main");
  EXPECT_EQ(k.invocations, 1u);
  EXPECT_GT(k.busy_cycles, 0.0);
  EXPECT_EQ(k.block_cycles.count, 4u);  // one sample per block
  EXPECT_GT(k.block_cycles.max_value, 0.0);
  EXPECT_GE(k.imbalance(), 1.0);
  EXPECT_GT(k.warp_steps, 0u);
  EXPECT_GT(k.warp_efficiency(), 0.0);
  EXPECT_LE(k.warp_efficiency(), 1.0);
  // The whole grid ran at nesting depth 0.
  ASSERT_EQ(k.nest_depth_grids.size(), 1u);
  EXPECT_EQ(k.nest_depth_grids.at(0), 1u);

  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].track, "tiny/track");
  EXPECT_DOUBLE_EQ(snap.counters[0].value, 3.0);
  ASSERT_EQ(snap.instants.size(), 1u);
  EXPECT_EQ(snap.instants[0].name, "tiny/flush");
  ASSERT_TRUE(snap.tracks.count("tiny/track"));
  EXPECT_EQ(snap.tracks.at("tiny/track").count, 1u);
  EXPECT_NE(snap.find("tiny/baseline/main"), nullptr);
  EXPECT_EQ(snap.find("no/such/kernel"), nullptr);
}

TEST_F(ProfilerTest, SessionOptionEnablesAndRestores) {
  simt::Profiler::set_enabled(false);
  simt::Device dev;
  {
    simt::SessionOptions opts;
    opts.profile = true;
    simt::Session s = dev.session(opts);
    EXPECT_TRUE(simt::Profiler::enabled());
    tiny_workload(dev);
    (void)s.report();
  }
  EXPECT_FALSE(simt::Profiler::enabled());
  const simt::ProfileSnapshot snap = simt::Profiler::instance().snapshot();
  EXPECT_EQ(snap.reports, 1u);
  ASSERT_EQ(snap.kernels.size(), 1u);
}

// The profile is derived from the launch graph and the deterministic
// schedule, so the serial and thread-pool engines must produce identical
// snapshots — same per-block histograms, same lane histograms, bit for bit.
TEST_F(ProfilerTest, SnapshotDeterminismAcrossEngines) {
  simt::Profiler::set_enabled(true);
  const graph::Csr g =
      graph::generate_power_law(300, /*min_degree=*/1, /*max_degree=*/60,
                                /*mean_degree=*/4.0, /*seed=*/99, true);

  const auto run = [&](const simt::ExecPolicy& policy) {
    simt::Profiler::instance().reset();
    simt::Device dev(simt::DeviceSpec::k20(), 24, policy);
    {
      simt::Session s = dev.session();
      (void)apps::run_sssp(dev, g, 0, nested::LoopTemplate::kDbufShared);
      (void)s.report();
    }
    return simt::Profiler::instance().snapshot();
  };
  const simt::ProfileSnapshot serial = run(simt::ExecPolicy::serial());
  const simt::ProfileSnapshot parallel = run(simt::ExecPolicy::parallel(4));

  ASSERT_EQ(serial.kernels.size(), parallel.kernels.size());
  EXPECT_EQ(serial.total_cycles, parallel.total_cycles);
  EXPECT_EQ(serial.grids, parallel.grids);
  for (std::size_t i = 0; i < serial.kernels.size(); ++i) {
    const simt::KernelProfile& a = serial.kernels[i];
    const simt::KernelProfile& b = parallel.kernels[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.busy_cycles, b.busy_cycles) << a.name;
    EXPECT_EQ(a.block_cycles.count, b.block_cycles.count) << a.name;
    EXPECT_EQ(a.block_cycles.sum, b.block_cycles.sum) << a.name;
    EXPECT_EQ(a.block_cycles.max_value, b.block_cycles.max_value) << a.name;
    EXPECT_EQ(a.warp_steps, b.warp_steps) << a.name;
    EXPECT_EQ(a.active_lane_ops, b.active_lane_ops) << a.name;
    for (int s = 0; s < simt::kLaneHistSlots; ++s) {
      EXPECT_EQ(a.lane_hist[s], b.lane_hist[s]) << a.name << " slot " << s;
    }
  }
}

TEST_F(ProfilerTest, ProfileJsonRoundTripIsByteStable) {
  simt::Profiler::set_enabled(true);
  simt::Device dev;
  {
    simt::Session s = dev.session();
    tiny_workload(dev);
    s.prof_counter("tiny/track", 5.0);
    s.prof_value("tiny/dist", 7.0);
    s.prof_instant("tiny/flush", "queue");
    (void)s.report();
  }
  bench::SuiteProfile profile;
  profile.suite = "unit";
  profile.prof = simt::Profiler::instance().snapshot();

  const std::string text = bench::to_json(profile);
  const bench::SuiteProfile parsed = bench::parse_profile_json(text);
  EXPECT_EQ(parsed.suite, profile.suite);
  ASSERT_EQ(parsed.prof.kernels.size(), profile.prof.kernels.size());
  EXPECT_EQ(parsed.prof.counters.size(), profile.prof.counters.size());
  EXPECT_EQ(parsed.prof.instants.size(), profile.prof.instants.size());
  EXPECT_EQ(parsed.prof.tracks.size(), profile.prof.tracks.size());
  // Serialize-parse-serialize is the identity on the bytes: the JSON layer
  // loses nothing the profile schema carries.
  EXPECT_EQ(bench::to_json(parsed), text);
}

TEST_F(ProfilerTest, SchemaVersionMismatchIsRejected) {
  bench::SuiteProfile profile;
  profile.suite = "unit";
  std::string text = bench::to_json(profile);
  const std::string tag =
      "\"schema_version\": " + std::to_string(bench::kProfileSchemaVersion);
  const auto pos = text.find(tag);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, tag.size(), "\"schema_version\": 999");
  EXPECT_THROW((void)bench::parse_profile_json(text), std::runtime_error);
}

// Files written under the previous schema (v1, no critical-path sections)
// must still load: the sections read back empty and the recorded version is
// surfaced so consumers can note the upgrade.
TEST_F(ProfilerTest, SchemaV1ProfileStillParses) {
  const std::string v1 =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"generator\": \"nestpar_bench\",\n"
      "  \"kind\": \"profile\",\n"
      "  \"suite\": \"legacy\",\n"
      "  \"total_cycles\": 123,\n"
      "  \"reports\": 1,\n"
      "  \"grids\": 2,\n"
      "  \"device_grids\": 0,\n"
      "  \"depth_grids\": {\"0\": 2},\n"
      "  \"kernels\": [],\n"
      "  \"tracks\": {},\n"
      "  \"counters\": [],\n"
      "  \"instants\": []\n}\n";
  const bench::SuiteProfile parsed = bench::parse_profile_json(v1);
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.suite, "legacy");
  EXPECT_EQ(parsed.prof.total_cycles, 123.0);
  EXPECT_EQ(parsed.prof.crit_total.total(), 0.0);
  EXPECT_TRUE(parsed.prof.crit_chain.empty());
  EXPECT_TRUE(parsed.prof.crit_folded.empty());
}

// The paper's Fig. 5 claim, reproduced as a profile assertion: on a skewed
// graph the delayed-buffer template spreads the relaxation work across
// blocks far more evenly than the thread-mapped baseline, so its
// load-imbalance factor (max/mean per-block cycles) must be strictly lower.
TEST_F(ProfilerTest, DbufSharedFlattensSsspImbalance) {
  simt::Profiler::set_enabled(true);
  const graph::Csr g =
      graph::generate_citeseer_like(0.1, /*seed=*/20150707, /*weighted=*/true);

  const auto imbalance_of = [&](nested::LoopTemplate tmpl,
                                const std::string& kernel) {
    simt::Profiler::instance().reset();
    simt::Device dev;
    {
      simt::Session s = dev.session();
      (void)apps::run_sssp(dev, g, 0, tmpl);
      (void)s.report();
    }
    const simt::ProfileSnapshot snap = simt::Profiler::instance().snapshot();
    const simt::KernelProfile* k = snap.find(kernel);
    EXPECT_NE(k, nullptr) << kernel;
    return k == nullptr ? 0.0 : k->imbalance();
  };

  const double baseline =
      imbalance_of(nested::LoopTemplate::kBaseline, "sssp/baseline/main");
  const double dbuf =
      imbalance_of(nested::LoopTemplate::kDbufShared, "sssp/dbuf-shared/main");
  EXPECT_GT(baseline, 1.0);
  EXPECT_LT(dbuf, baseline);
}

}  // namespace
