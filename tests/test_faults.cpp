// Device-runtime fault model: launch-resource limits must refuse
// deterministically, injected transient faults must be reproducible from the
// seed, every template's degraded path must still produce correct results,
// and all of it must be bit-identical between the serial and parallel host
// engines. Suites are named *Fault* so the `faults` CMake preset (which runs
// with NESTPAR_FAULTS exported) can select them; each test pins its own
// fault config so the ambient environment cannot skew expectations.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/apps/bfs.h"
#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"
#include "src/rec/tree_traversal.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"
#include "src/simt/fault.h"
#include "src/tree/tree.h"

namespace simt = nestpar::simt;
namespace nested = nestpar::nested;
namespace rec = nestpar::rec;
namespace apps = nestpar::apps;
namespace graph = nestpar::graph;
namespace matrix = nestpar::matrix;
namespace tree = nestpar::tree;

namespace {

constexpr simt::ExecPolicy kSerial{simt::ExecMode::kSerial, 0};
constexpr simt::ExecPolicy kParallel{simt::ExecMode::kParallel, 4};

void expect_same_robustness(const simt::RobustnessCounters& a,
                            const simt::RobustnessCounters& b,
                            const std::string& where) {
  EXPECT_EQ(a.launches_attempted, b.launches_attempted) << where;
  EXPECT_EQ(a.refused_pool, b.refused_pool) << where;
  EXPECT_EQ(a.refused_depth, b.refused_depth) << where;
  EXPECT_EQ(a.refused_heap, b.refused_heap) << where;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << where;
  EXPECT_EQ(a.retries, b.retries) << where;
  EXPECT_EQ(a.degraded, b.degraded) << where;
}

graph::Csr skewed_graph() {
  return graph::generate_power_law(1200, 0, 250, 6.0, 20150707, true);
}

struct SpmvRun {
  std::vector<float> y;
  simt::RunReport report;
};

SpmvRun run_spmv_with(simt::Device& dev, const matrix::CsrMatrix& a,
                      const std::vector<float>& x, nested::LoopTemplate tmpl,
                      const simt::ExecPolicy& policy) {
  nested::LoopParams p;
  p.lb_threshold = 16;
  simt::Session session = dev.session(policy);
  SpmvRun r;
  r.y = apps::run_spmv(dev, a, x, tmpl, p);
  r.report = session.report();
  return r;
}

// --- config parsing ----------------------------------------------------------

TEST(FaultConfigParsing, ParsesFullSpec) {
  const simt::FaultConfig c =
      simt::FaultConfig::parse("launch=0.05,host=0.01,seed=42,retries=5,"
                               "backoff=750");
  EXPECT_DOUBLE_EQ(c.device_launch_rate, 0.05);
  EXPECT_DOUBLE_EQ(c.host_launch_rate, 0.01);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_EQ(c.max_retries, 5);
  EXPECT_DOUBLE_EQ(c.backoff_base_cycles, 750.0);
  EXPECT_TRUE(c.enabled());
}

TEST(FaultConfigParsing, BareNumberIsLaunchRate) {
  const simt::FaultConfig c = simt::FaultConfig::parse("0.25");
  EXPECT_DOUBLE_EQ(c.device_launch_rate, 0.25);
  EXPECT_DOUBLE_EQ(c.host_launch_rate, 0.0);
}

TEST(FaultConfigParsing, RejectsMalformedSpecs) {
  EXPECT_THROW(simt::FaultConfig::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(simt::FaultConfig::parse("launch=nope"),
               std::invalid_argument);
  EXPECT_THROW(simt::FaultConfig::parse("launch=2.0"), std::invalid_argument);
  EXPECT_THROW(simt::FaultConfig::parse("launch=-0.5"),
               std::invalid_argument);
  EXPECT_THROW(simt::FaultConfig::parse("seed=abc"), std::invalid_argument);
}

TEST(FaultConfigParsing, ErrorStringsAndTransience) {
  EXPECT_EQ(simt::to_string(simt::SimtError::kOk), "ok");
  EXPECT_FALSE(simt::to_string(simt::SimtError::kPendingPoolExhausted)
                   .empty());
  EXPECT_FALSE(simt::to_string(simt::SimtError::kDepthLimitExceeded).empty());
  EXPECT_FALSE(simt::to_string(simt::SimtError::kDeviceHeapExhausted)
                   .empty());
  EXPECT_TRUE(simt::is_transient(simt::SimtError::kInjectedFault));
  EXPECT_FALSE(simt::is_transient(simt::SimtError::kPendingPoolExhausted));
  EXPECT_FALSE(simt::is_transient(simt::SimtError::kDepthLimitExceeded));
  EXPECT_FALSE(simt::is_transient(simt::SimtError::kDeviceHeapExhausted));
}

TEST(FaultConfigParsing, CdpDefaultsMatchHardware) {
  const simt::ResourceLimits l = simt::ResourceLimits::cdp_defaults();
  EXPECT_EQ(l.pending_launch_capacity, 2048);
  EXPECT_EQ(l.max_nesting_depth, 24);
  EXPECT_EQ(l.device_heap_bytes, std::size_t{8} << 20);
}

// --- resource limits ---------------------------------------------------------

TEST(FaultLimits, PoolExhaustionDegradesDparNaiveCorrectly) {
  const graph::Csr g = skewed_graph();
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);

  simt::Device clean_dev;
  clean_dev.set_fault_config(simt::FaultConfig{});
  const SpmvRun clean = run_spmv_with(clean_dev, a, x,
                                      nested::LoopTemplate::kDparNaive,
                                      kSerial);
  EXPECT_EQ(clean.report.robustness.refused_total(), 0u);
  EXPECT_EQ(clean.report.robustness.degraded, 0u);

  simt::DeviceSpec spec;
  spec.limits.pending_launch_capacity = 2;
  simt::Device dev(spec);
  dev.set_fault_config(simt::FaultConfig{});
  const SpmvRun s = run_spmv_with(dev, a, x,
                                  nested::LoopTemplate::kDparNaive, kSerial);
  EXPECT_GT(s.report.robustness.refused_pool, 0u);
  EXPECT_GT(s.report.robustness.degraded, 0u);
  EXPECT_EQ(s.y, clean.y);  // degraded, not wrong

  // Refusals are part of the deterministic model: the parallel engine must
  // refuse the same launches and produce the same report.
  const SpmvRun p = run_spmv_with(dev, a, x,
                                  nested::LoopTemplate::kDparNaive,
                                  kParallel);
  EXPECT_EQ(p.y, clean.y);
  EXPECT_EQ(s.report.total_cycles, p.report.total_cycles);
  expect_same_robustness(s.report.robustness, p.report.robustness,
                         "pool exhaustion serial vs parallel");
}

TEST(FaultLimits, DepthLimitRefusesDeepRecursion) {
  const tree::Tree tr =
      tree::generate_tree({.depth = 3, .outdegree = 8, .sparsity = 0}, 99);
  const auto expect =
      rec::tree_traversal_serial_recursive(tr, rec::TreeAlgo::kDescendants);

  simt::Device dev(simt::DeviceSpec{}, /*max_nesting_depth=*/1);
  dev.set_fault_config(simt::FaultConfig{});
  for (const simt::ExecPolicy& policy : {kSerial, kParallel}) {
    const rec::TreeRunResult run = rec::run_tree_traversal(
        dev, tr,
        {.algo = rec::TreeAlgo::kDescendants,
         .tmpl = rec::RecTemplate::kRecNaive, .policy = policy});
    EXPECT_GT(run.report.robustness.refused_depth, 0u);
    EXPECT_GT(run.report.robustness.degraded, 0u);
    EXPECT_EQ(run.values, expect);
  }

  // spec.limits.max_nesting_depth caps the same way as the ctor parameter.
  simt::DeviceSpec spec;
  spec.limits.max_nesting_depth = 1;
  simt::Device dev2(spec);
  dev2.set_fault_config(simt::FaultConfig{});
  const rec::TreeRunResult run2 = rec::run_tree_traversal(
      dev2, tr,
      {.algo = rec::TreeAlgo::kDescendants,
       .tmpl = rec::RecTemplate::kRecNaive, .policy = kSerial});
  EXPECT_GT(run2.report.robustness.refused_depth, 0u);
  EXPECT_EQ(run2.values, expect);
}

TEST(FaultLimits, HeapExhaustionDegradesRecHierCorrectly) {
  const tree::Tree tr =
      tree::generate_tree({.depth = 4, .outdegree = 6, .sparsity = 1}, 7);
  const auto expect =
      rec::tree_traversal_serial_recursive(tr, rec::TreeAlgo::kHeights);

  simt::DeviceSpec spec;
  spec.limits.device_heap_bytes = 4096;
  spec.limits.heap_bytes_per_launch = 1024;
  simt::Device dev(spec);
  dev.set_fault_config(simt::FaultConfig{});
  const rec::TreeRunResult run = rec::run_tree_traversal(
      dev, tr,
      {.algo = rec::TreeAlgo::kHeights, .tmpl = rec::RecTemplate::kRecHier,
       .policy = kSerial});
  EXPECT_GT(run.report.robustness.refused_heap, 0u);
  EXPECT_GT(run.report.robustness.degraded, 0u);
  EXPECT_EQ(run.values, expect);
}

TEST(FaultLimits, UnlimitedDefaultsRefuseNothing) {
  const graph::Csr g = skewed_graph();
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);
  simt::Device dev;
  dev.set_fault_config(simt::FaultConfig{});
  const SpmvRun r = run_spmv_with(dev, a, x, nested::LoopTemplate::kDparOpt,
                                  kSerial);
  EXPECT_GT(r.report.robustness.launches_attempted, 0u);
  EXPECT_EQ(r.report.robustness.refused_total(), 0u);
  EXPECT_EQ(r.report.robustness.retries, 0u);
  EXPECT_EQ(r.report.robustness.degraded, 0u);
  EXPECT_FALSE(r.report.robustness.any_fault());
}

// --- injected transient faults -----------------------------------------------

TEST(FaultInjectionDeterminism, TransientFaultsRetryDegradeAndReproduce) {
  const graph::Csr g = skewed_graph();
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);

  simt::Device dev;
  dev.set_fault_config(simt::FaultConfig{});
  const SpmvRun clean = run_spmv_with(dev, a, x,
                                      nested::LoopTemplate::kDparOpt,
                                      kSerial);

  simt::FaultConfig fc;
  fc.device_launch_rate = 0.6;
  fc.seed = 7;
  dev.set_fault_config(fc);
  const SpmvRun f1 = run_spmv_with(dev, a, x, nested::LoopTemplate::kDparOpt,
                                   kSerial);
  EXPECT_GT(f1.report.robustness.faults_injected, 0u);
  EXPECT_GT(f1.report.robustness.retries, 0u);
  EXPECT_EQ(f1.y, clean.y);
  // Faults slow the run down (retry stalls, degraded serial fallbacks) but
  // never change the answer.
  EXPECT_GT(f1.report.total_cycles, clean.report.total_cycles);

  // Same seed, same run: bit-identical fault pattern and timing.
  const SpmvRun f2 = run_spmv_with(dev, a, x, nested::LoopTemplate::kDparOpt,
                                   kSerial);
  EXPECT_EQ(f1.report.total_cycles, f2.report.total_cycles);
  expect_same_robustness(f1.report.robustness, f2.report.robustness,
                         "repeat run");

  // A different seed sees a different fault pattern (with rate 0.6 on this
  // workload a collision would be astronomically unlikely).
  fc.seed = 8;
  dev.set_fault_config(fc);
  const SpmvRun f3 = run_spmv_with(dev, a, x, nested::LoopTemplate::kDparOpt,
                                   kSerial);
  EXPECT_EQ(f3.y, clean.y);
  EXPECT_NE(f1.report.robustness.faults_injected,
            f3.report.robustness.faults_injected);
}

TEST(FaultInjectionDeterminism, SerialAndParallelEnginesAgreeUnderFaults) {
  const graph::Csr g = skewed_graph();
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);

  simt::Device dev;
  simt::FaultConfig fc;
  fc.device_launch_rate = 0.4;
  fc.seed = 21;
  dev.set_fault_config(fc);

  for (const nested::LoopTemplate tmpl :
       {nested::LoopTemplate::kDparNaive, nested::LoopTemplate::kDparOpt}) {
    const SpmvRun s = run_spmv_with(dev, a, x, tmpl, kSerial);
    const SpmvRun p = run_spmv_with(dev, a, x, tmpl, kParallel);
    EXPECT_GT(s.report.robustness.faults_injected, 0u) << nested::name(tmpl);
    EXPECT_EQ(s.y, p.y) << nested::name(tmpl);
    EXPECT_EQ(s.report.total_cycles, p.report.total_cycles)
        << nested::name(tmpl);
    expect_same_robustness(s.report.robustness, p.report.robustness,
                           std::string(nested::name(tmpl)));
  }

  const tree::Tree tr =
      tree::generate_tree({.depth = 4, .outdegree = 6, .sparsity = 1}, 7);
  for (const rec::RecTemplate tmpl :
       {rec::RecTemplate::kRecNaive, rec::RecTemplate::kRecHier,
        rec::RecTemplate::kRecCons}) {
    const rec::TreeRunResult s = rec::run_tree_traversal(
        dev, tr,
        {.algo = rec::TreeAlgo::kDescendants, .tmpl = tmpl,
         .policy = kSerial});
    const rec::TreeRunResult p = rec::run_tree_traversal(
        dev, tr,
        {.algo = rec::TreeAlgo::kDescendants, .tmpl = tmpl,
         .policy = kParallel});
    EXPECT_EQ(s.values, p.values) << rec::name(tmpl);
    EXPECT_EQ(s.report.total_cycles, p.report.total_cycles)
        << rec::name(tmpl);
    expect_same_robustness(s.report.robustness, p.report.robustness,
                           std::string(rec::name(tmpl)));
  }
}

TEST(FaultInjectionDeterminism, RecursiveTemplatesSurviveHighFaultRates) {
  const tree::Tree tr =
      tree::generate_tree({.depth = 3, .outdegree = 12, .sparsity = 1}, 11);
  const auto expect =
      rec::tree_traversal_serial_recursive(tr, rec::TreeAlgo::kDescendants);

  simt::Device dev;
  simt::FaultConfig fc;
  fc.device_launch_rate = 0.9;  // past the retry budget most of the time
  fc.seed = 3;
  dev.set_fault_config(fc);
  for (const rec::RecTemplate tmpl :
       {rec::RecTemplate::kRecNaive, rec::RecTemplate::kRecHier,
        rec::RecTemplate::kRecCons}) {
    const rec::TreeRunResult run = rec::run_tree_traversal(
        dev, tr,
        {.algo = rec::TreeAlgo::kDescendants, .tmpl = tmpl,
         .policy = kSerial});
    EXPECT_GT(run.report.robustness.degraded, 0u) << rec::name(tmpl);
    EXPECT_EQ(run.values, expect) << rec::name(tmpl);
  }
}

TEST(FaultInjection, BfsDegradedPathsStayCorrect) {
  const graph::Csr g = graph::generate_uniform_random(600, 2, 8, 5);
  const auto expect = apps::bfs_serial_iterative(g, 0);

  simt::Device dev;
  simt::FaultConfig fc;
  fc.device_launch_rate = 0.5;
  fc.seed = 13;
  dev.set_fault_config(fc);
  for (const rec::RecTemplate tmpl :
       {rec::RecTemplate::kRecNaive, rec::RecTemplate::kRecHier}) {
    simt::Session session = dev.session(kSerial);
    const auto level = apps::bfs_recursive_gpu(dev, g, 0, tmpl);
    const simt::RunReport rep = session.report();
    EXPECT_GT(rep.robustness.faults_injected, 0u) << rec::name(tmpl);
    EXPECT_EQ(level, expect) << rec::name(tmpl);
  }
}

TEST(FaultInjection, HostLaunchFaultsThrowAndReport) {
  simt::Device dev;
  simt::FaultConfig fc;
  fc.host_launch_rate = 1.0;
  dev.set_fault_config(fc);
  simt::Session session = dev.session(kSerial);

  simt::LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 32;
  cfg.name = "doomed";

  const simt::LaunchResult r =
      dev.try_launch_threads(cfg, [](simt::LaneCtx&) {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, simt::SimtError::kInjectedFault);

  bool threw = false;
  try {
    dev.launch_threads(cfg, [](simt::LaneCtx&) {});
  } catch (const simt::SimtException& e) {
    threw = true;
    EXPECT_EQ(e.error(), simt::SimtError::kInjectedFault);
    EXPECT_NE(std::string(e.what()).find("doomed"), std::string::npos);
  }
  EXPECT_TRUE(threw);

  // Host-site faults surface in the report even with no recorded grids.
  const simt::RunReport rep = session.report();
  EXPECT_EQ(rep.grids, 0u);
  EXPECT_GT(rep.robustness.faults_injected, 0u);
}

TEST(FaultInjection, EnvConfigRoundTrip) {
  const char* prev = std::getenv("NESTPAR_FAULTS");
  const std::string saved = prev != nullptr ? prev : "";
  ::setenv("NESTPAR_FAULTS", "launch=0.125,seed=99,retries=1", 1);
  const simt::FaultConfig c = simt::FaultConfig::from_env();
  EXPECT_DOUBLE_EQ(c.device_launch_rate, 0.125);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_EQ(c.max_retries, 1);
  // A Device constructed now picks the env config up automatically.
  simt::Device dev;
  EXPECT_DOUBLE_EQ(dev.fault_config().device_launch_rate, 0.125);
  if (prev != nullptr) {
    ::setenv("NESTPAR_FAULTS", saved.c_str(), 1);
  } else {
    ::unsetenv("NESTPAR_FAULTS");
  }
}

}  // namespace
