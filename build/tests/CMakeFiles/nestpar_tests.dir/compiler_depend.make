# Empty compiler generated dependencies file for nestpar_tests.
# This may be replaced when dependencies are built.
