
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_events.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_events.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_events.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_flatten.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_flatten.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_flatten.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_model_shapes.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_model_shapes.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_model_shapes.cpp.o.d"
  "/root/repo/tests/test_nested_templates.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_nested_templates.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_nested_templates.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rec_templates.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_rec_templates.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_rec_templates.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_simt_core.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_simt_core.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_simt_core.cpp.o.d"
  "/root/repo/tests/test_sort.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_sort.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_sort.cpp.o.d"
  "/root/repo/tests/test_tree_matrix.cpp" "tests/CMakeFiles/nestpar_tests.dir/test_tree_matrix.cpp.o" "gcc" "tests/CMakeFiles/nestpar_tests.dir/test_tree_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nestpar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
