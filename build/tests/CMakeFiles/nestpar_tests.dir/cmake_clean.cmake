file(REMOVE_RECURSE
  "CMakeFiles/nestpar_tests.dir/test_events.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_events.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_flatten.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_flatten.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_graph.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_graph.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_misc.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_misc.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_model_shapes.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_model_shapes.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_nested_templates.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_nested_templates.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_properties.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_rec_templates.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_rec_templates.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_scheduler.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_scheduler.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_simt_core.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_simt_core.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_sort.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_sort.cpp.o.d"
  "CMakeFiles/nestpar_tests.dir/test_tree_matrix.cpp.o"
  "CMakeFiles/nestpar_tests.dir/test_tree_matrix.cpp.o.d"
  "nestpar_tests"
  "nestpar_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestpar_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
