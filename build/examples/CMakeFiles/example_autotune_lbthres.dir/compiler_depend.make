# Empty compiler generated dependencies file for example_autotune_lbthres.
# This may be replaced when dependencies are built.
