file(REMOVE_RECURSE
  "CMakeFiles/example_autotune_lbthres.dir/autotune_lbthres.cpp.o"
  "CMakeFiles/example_autotune_lbthres.dir/autotune_lbthres.cpp.o.d"
  "example_autotune_lbthres"
  "example_autotune_lbthres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autotune_lbthres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
