file(REMOVE_RECURSE
  "CMakeFiles/example_graph_tool.dir/graph_tool.cpp.o"
  "CMakeFiles/example_graph_tool.dir/graph_tool.cpp.o.d"
  "example_graph_tool"
  "example_graph_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
