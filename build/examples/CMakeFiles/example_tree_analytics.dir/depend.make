# Empty dependencies file for example_tree_analytics.
# This may be replaced when dependencies are built.
