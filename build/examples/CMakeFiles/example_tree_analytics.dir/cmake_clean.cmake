file(REMOVE_RECURSE
  "CMakeFiles/example_tree_analytics.dir/tree_analytics.cpp.o"
  "CMakeFiles/example_tree_analytics.dir/tree_analytics.cpp.o.d"
  "example_tree_analytics"
  "example_tree_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tree_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
