# Empty compiler generated dependencies file for nestpar.
# This may be replaced when dependencies are built.
