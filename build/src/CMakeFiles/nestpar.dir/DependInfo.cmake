
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bc.cpp" "src/CMakeFiles/nestpar.dir/apps/bc.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/bc.cpp.o.d"
  "/root/repo/src/apps/bfs.cpp" "src/CMakeFiles/nestpar.dir/apps/bfs.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/bfs.cpp.o.d"
  "/root/repo/src/apps/cc.cpp" "src/CMakeFiles/nestpar.dir/apps/cc.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/cc.cpp.o.d"
  "/root/repo/src/apps/kcore.cpp" "src/CMakeFiles/nestpar.dir/apps/kcore.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/kcore.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/CMakeFiles/nestpar.dir/apps/pagerank.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/pagerank.cpp.o.d"
  "/root/repo/src/apps/spmv.cpp" "src/CMakeFiles/nestpar.dir/apps/spmv.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/spmv.cpp.o.d"
  "/root/repo/src/apps/sssp.cpp" "src/CMakeFiles/nestpar.dir/apps/sssp.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/sssp.cpp.o.d"
  "/root/repo/src/apps/triangles.cpp" "src/CMakeFiles/nestpar.dir/apps/triangles.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/apps/triangles.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/nestpar.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/nestpar.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/nestpar.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/graph/io.cpp.o.d"
  "/root/repo/src/matrix/csr_matrix.cpp" "src/CMakeFiles/nestpar.dir/matrix/csr_matrix.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/matrix/csr_matrix.cpp.o.d"
  "/root/repo/src/nested/autotune.cpp" "src/CMakeFiles/nestpar.dir/nested/autotune.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/nested/autotune.cpp.o.d"
  "/root/repo/src/nested/flatten.cpp" "src/CMakeFiles/nestpar.dir/nested/flatten.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/nested/flatten.cpp.o.d"
  "/root/repo/src/nested/templates.cpp" "src/CMakeFiles/nestpar.dir/nested/templates.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/nested/templates.cpp.o.d"
  "/root/repo/src/rec/tree_traversal.cpp" "src/CMakeFiles/nestpar.dir/rec/tree_traversal.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/rec/tree_traversal.cpp.o.d"
  "/root/repo/src/simt/cpu_model.cpp" "src/CMakeFiles/nestpar.dir/simt/cpu_model.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/cpu_model.cpp.o.d"
  "/root/repo/src/simt/device.cpp" "src/CMakeFiles/nestpar.dir/simt/device.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/device.cpp.o.d"
  "/root/repo/src/simt/device_spec.cpp" "src/CMakeFiles/nestpar.dir/simt/device_spec.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/device_spec.cpp.o.d"
  "/root/repo/src/simt/metrics.cpp" "src/CMakeFiles/nestpar.dir/simt/metrics.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/metrics.cpp.o.d"
  "/root/repo/src/simt/recorder.cpp" "src/CMakeFiles/nestpar.dir/simt/recorder.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/recorder.cpp.o.d"
  "/root/repo/src/simt/report_printer.cpp" "src/CMakeFiles/nestpar.dir/simt/report_printer.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/report_printer.cpp.o.d"
  "/root/repo/src/simt/scheduler.cpp" "src/CMakeFiles/nestpar.dir/simt/scheduler.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/scheduler.cpp.o.d"
  "/root/repo/src/simt/trace_export.cpp" "src/CMakeFiles/nestpar.dir/simt/trace_export.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/simt/trace_export.cpp.o.d"
  "/root/repo/src/sort/sort.cpp" "src/CMakeFiles/nestpar.dir/sort/sort.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/sort/sort.cpp.o.d"
  "/root/repo/src/tree/tree.cpp" "src/CMakeFiles/nestpar.dir/tree/tree.cpp.o" "gcc" "src/CMakeFiles/nestpar.dir/tree/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
