file(REMOVE_RECURSE
  "libnestpar.a"
)
