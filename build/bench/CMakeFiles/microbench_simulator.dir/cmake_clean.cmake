file(REMOVE_RECURSE
  "CMakeFiles/microbench_simulator.dir/bench_util.cpp.o"
  "CMakeFiles/microbench_simulator.dir/bench_util.cpp.o.d"
  "CMakeFiles/microbench_simulator.dir/microbench_simulator.cpp.o"
  "CMakeFiles/microbench_simulator.dir/microbench_simulator.cpp.o.d"
  "microbench_simulator"
  "microbench_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
