# Empty dependencies file for fig5_sssp.
# This may be replaced when dependencies are built.
