file(REMOVE_RECURSE
  "CMakeFiles/fig5_sssp.dir/bench_util.cpp.o"
  "CMakeFiles/fig5_sssp.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig5_sssp.dir/fig5_sssp.cpp.o"
  "CMakeFiles/fig5_sssp.dir/fig5_sssp.cpp.o.d"
  "fig5_sssp"
  "fig5_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
