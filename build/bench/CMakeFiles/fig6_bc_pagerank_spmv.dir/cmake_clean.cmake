file(REMOVE_RECURSE
  "CMakeFiles/fig6_bc_pagerank_spmv.dir/bench_util.cpp.o"
  "CMakeFiles/fig6_bc_pagerank_spmv.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig6_bc_pagerank_spmv.dir/fig6_bc_pagerank_spmv.cpp.o"
  "CMakeFiles/fig6_bc_pagerank_spmv.dir/fig6_bc_pagerank_spmv.cpp.o.d"
  "fig6_bc_pagerank_spmv"
  "fig6_bc_pagerank_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bc_pagerank_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
