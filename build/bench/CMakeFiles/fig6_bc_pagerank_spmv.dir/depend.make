# Empty dependencies file for fig6_bc_pagerank_spmv.
# This may be replaced when dependencies are built.
