file(REMOVE_RECURSE
  "CMakeFiles/ablation_simulator.dir/ablation_simulator.cpp.o"
  "CMakeFiles/ablation_simulator.dir/ablation_simulator.cpp.o.d"
  "CMakeFiles/ablation_simulator.dir/bench_util.cpp.o"
  "CMakeFiles/ablation_simulator.dir/bench_util.cpp.o.d"
  "ablation_simulator"
  "ablation_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
