file(REMOVE_RECURSE
  "CMakeFiles/fig4_spmv_blocksize.dir/bench_util.cpp.o"
  "CMakeFiles/fig4_spmv_blocksize.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig4_spmv_blocksize.dir/fig4_spmv_blocksize.cpp.o"
  "CMakeFiles/fig4_spmv_blocksize.dir/fig4_spmv_blocksize.cpp.o.d"
  "fig4_spmv_blocksize"
  "fig4_spmv_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spmv_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
