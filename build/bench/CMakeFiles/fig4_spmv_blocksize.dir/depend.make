# Empty dependencies file for fig4_spmv_blocksize.
# This may be replaced when dependencies are built.
