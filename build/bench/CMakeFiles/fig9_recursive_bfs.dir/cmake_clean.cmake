file(REMOVE_RECURSE
  "CMakeFiles/fig9_recursive_bfs.dir/bench_util.cpp.o"
  "CMakeFiles/fig9_recursive_bfs.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig9_recursive_bfs.dir/fig9_recursive_bfs.cpp.o"
  "CMakeFiles/fig9_recursive_bfs.dir/fig9_recursive_bfs.cpp.o.d"
  "fig9_recursive_bfs"
  "fig9_recursive_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_recursive_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
