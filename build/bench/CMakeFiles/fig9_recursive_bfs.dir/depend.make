# Empty dependencies file for fig9_recursive_bfs.
# This may be replaced when dependencies are built.
