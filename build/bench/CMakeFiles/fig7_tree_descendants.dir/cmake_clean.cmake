file(REMOVE_RECURSE
  "CMakeFiles/fig7_tree_descendants.dir/bench_util.cpp.o"
  "CMakeFiles/fig7_tree_descendants.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig7_tree_descendants.dir/fig7_tree_descendants.cpp.o"
  "CMakeFiles/fig7_tree_descendants.dir/fig7_tree_descendants.cpp.o.d"
  "fig7_tree_descendants"
  "fig7_tree_descendants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tree_descendants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
