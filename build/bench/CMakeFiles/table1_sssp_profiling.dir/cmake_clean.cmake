file(REMOVE_RECURSE
  "CMakeFiles/table1_sssp_profiling.dir/bench_util.cpp.o"
  "CMakeFiles/table1_sssp_profiling.dir/bench_util.cpp.o.d"
  "CMakeFiles/table1_sssp_profiling.dir/table1_sssp_profiling.cpp.o"
  "CMakeFiles/table1_sssp_profiling.dir/table1_sssp_profiling.cpp.o.d"
  "table1_sssp_profiling"
  "table1_sssp_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sssp_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
