# Empty compiler generated dependencies file for table1_sssp_profiling.
# This may be replaced when dependencies are built.
