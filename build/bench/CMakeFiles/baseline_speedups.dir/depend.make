# Empty dependencies file for baseline_speedups.
# This may be replaced when dependencies are built.
