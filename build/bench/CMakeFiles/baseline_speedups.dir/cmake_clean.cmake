file(REMOVE_RECURSE
  "CMakeFiles/baseline_speedups.dir/baseline_speedups.cpp.o"
  "CMakeFiles/baseline_speedups.dir/baseline_speedups.cpp.o.d"
  "CMakeFiles/baseline_speedups.dir/bench_util.cpp.o"
  "CMakeFiles/baseline_speedups.dir/bench_util.cpp.o.d"
  "baseline_speedups"
  "baseline_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
