file(REMOVE_RECURSE
  "CMakeFiles/related_flattening.dir/bench_util.cpp.o"
  "CMakeFiles/related_flattening.dir/bench_util.cpp.o.d"
  "CMakeFiles/related_flattening.dir/related_flattening.cpp.o"
  "CMakeFiles/related_flattening.dir/related_flattening.cpp.o.d"
  "related_flattening"
  "related_flattening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_flattening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
