# Empty dependencies file for related_flattening.
# This may be replaced when dependencies are built.
