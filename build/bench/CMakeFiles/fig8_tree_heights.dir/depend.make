# Empty dependencies file for fig8_tree_heights.
# This may be replaced when dependencies are built.
