file(REMOVE_RECURSE
  "CMakeFiles/fig8_tree_heights.dir/bench_util.cpp.o"
  "CMakeFiles/fig8_tree_heights.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig8_tree_heights.dir/fig8_tree_heights.cpp.o"
  "CMakeFiles/fig8_tree_heights.dir/fig8_tree_heights.cpp.o.d"
  "fig8_tree_heights"
  "fig8_tree_heights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tree_heights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
