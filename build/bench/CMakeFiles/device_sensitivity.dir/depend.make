# Empty dependencies file for device_sensitivity.
# This may be replaced when dependencies are built.
