file(REMOVE_RECURSE
  "CMakeFiles/device_sensitivity.dir/bench_util.cpp.o"
  "CMakeFiles/device_sensitivity.dir/bench_util.cpp.o.d"
  "CMakeFiles/device_sensitivity.dir/device_sensitivity.cpp.o"
  "CMakeFiles/device_sensitivity.dir/device_sensitivity.cpp.o.d"
  "device_sensitivity"
  "device_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
