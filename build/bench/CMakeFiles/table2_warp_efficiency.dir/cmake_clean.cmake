file(REMOVE_RECURSE
  "CMakeFiles/table2_warp_efficiency.dir/bench_util.cpp.o"
  "CMakeFiles/table2_warp_efficiency.dir/bench_util.cpp.o.d"
  "CMakeFiles/table2_warp_efficiency.dir/table2_warp_efficiency.cpp.o"
  "CMakeFiles/table2_warp_efficiency.dir/table2_warp_efficiency.cpp.o.d"
  "table2_warp_efficiency"
  "table2_warp_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_warp_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
