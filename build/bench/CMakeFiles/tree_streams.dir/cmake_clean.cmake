file(REMOVE_RECURSE
  "CMakeFiles/tree_streams.dir/bench_util.cpp.o"
  "CMakeFiles/tree_streams.dir/bench_util.cpp.o.d"
  "CMakeFiles/tree_streams.dir/tree_streams.cpp.o"
  "CMakeFiles/tree_streams.dir/tree_streams.cpp.o.d"
  "tree_streams"
  "tree_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
