# Empty compiler generated dependencies file for tree_streams.
# This may be replaced when dependencies are built.
