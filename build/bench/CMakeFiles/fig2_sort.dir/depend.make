# Empty dependencies file for fig2_sort.
# This may be replaced when dependencies are built.
