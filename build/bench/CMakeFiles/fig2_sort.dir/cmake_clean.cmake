file(REMOVE_RECURSE
  "CMakeFiles/fig2_sort.dir/bench_util.cpp.o"
  "CMakeFiles/fig2_sort.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig2_sort.dir/fig2_sort.cpp.o"
  "CMakeFiles/fig2_sort.dir/fig2_sort.cpp.o.d"
  "fig2_sort"
  "fig2_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
