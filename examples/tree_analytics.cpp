// Tree-analytics scenario: the paper's recursive-computation study as a
// user would run it — generate trees of varying shape, compare the flat,
// naive-recursive and hierarchical-recursive templates, and read the
// profiling counters that explain the winner.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/rec/tree_traversal.h"
#include "src/tree/tree.h"

using namespace nestpar;
using rec::RecTemplate;
using rec::TreeAlgo;

namespace {

int run() {
  std::printf("%-28s %-10s %-10s %-10s %-12s\n", "tree (levels/out/sparsity)",
              "flat", "rec-naive", "rec-hier", "winner");
  for (const tree::TreeParams shape :
       {tree::TreeParams{.depth = 3, .outdegree = 16, .sparsity = 0},
        tree::TreeParams{.depth = 3, .outdegree = 96, .sparsity = 0},
        tree::TreeParams{.depth = 3, .outdegree = 96, .sparsity = 3},
        tree::TreeParams{.depth = 5, .outdegree = 12, .sparsity = 1}}) {
    const tree::Tree tr = tree::generate_tree(shape, 99);

    // Validate against both serial forms, then time each template.
    const auto expect =
        rec::tree_traversal_serial_recursive(tr, TreeAlgo::kDescendants);
    double us[3] = {};
    const RecTemplate templates[] = {RecTemplate::kFlat,
                                     RecTemplate::kRecNaive,
                                     RecTemplate::kRecHier};
    for (int i = 0; i < 3; ++i) {
      simt::Device dev;
      const rec::TreeRunResult run = rec::run_tree_traversal(
          dev, tr,
          {.algo = TreeAlgo::kDescendants, .tmpl = templates[i],
           .policy = dev.exec_policy()});
      if (run.values != expect) {
        std::printf("MISMATCH for %s\n",
                    std::string(rec::name(templates[i])).c_str());
        return 1;
      }
      us[i] = run.report.total_us;
    }
    const int win = us[0] <= us[2] ? 0 : 2;  // naive never wins
    char label[64];
    std::snprintf(label, sizeof(label), "%d levels / %d / s=%d",
                  shape.depth + 1, shape.outdegree, shape.sparsity);
    std::printf("%-28s %-10.0f %-10.0f %-10.0f %-12s\n", label, us[0], us[1],
                us[2], std::string(rec::name(templates[win])).c_str());
  }

  // Why rec-hier wins big regular trees: the profiling counters.
  const tree::Tree tr =
      tree::generate_tree({.depth = 3, .outdegree = 96, .sparsity = 0}, 99);
  std::printf("\ncounters on the 96-ary regular tree (%u nodes):\n",
              tr.num_nodes());
  for (const RecTemplate t :
       {RecTemplate::kFlat, RecTemplate::kRecNaive, RecTemplate::kRecHier}) {
    simt::Device dev;
    const rec::TreeRunResult run = rec::run_tree_traversal(
        dev, tr,
        {.algo = TreeAlgo::kDescendants, .tmpl = t,
         .policy = dev.exec_policy()});
    const simt::RunReport& rep = run.report;
    std::printf("  %-10s atomics=%-10llu nested-kernels=%-8llu warp-eff=%.0f%%",
                std::string(rec::name(t)).c_str(),
                static_cast<unsigned long long>(rep.aggregate.atomic_ops),
                static_cast<unsigned long long>(rep.device_grids),
                rep.aggregate.warp_execution_efficiency() * 100);
    // Under NESTPAR_FAULTS the nested-kernel count drops as refused
    // launches degrade to inline traversal; surface that next to it.
    if (rep.robustness.any_fault()) {
      std::printf(" refused=%llu degraded=%llu",
                  static_cast<unsigned long long>(
                      rep.robustness.refused_total()),
                  static_cast<unsigned long long>(rep.robustness.degraded));
    }
    std::printf("\n");
  }
  std::printf("\nflat pays one atomic per (node, ancestor) pair; rec-hier one\n"
              "per node — the gap that Figure 7(c) of the paper reports.\n");
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
