// Quickstart: run one irregular nested loop (SpMV) through two
// parallelization templates on the simulated K20 and compare the modeled
// time and profiling metrics.
//
//   $ ./example_quickstart
//
// Walkthrough:
//   1. build an irregular sparse matrix (power-law row lengths),
//   2. run the paper's baseline (thread-mapped, no load balancing),
//   3. run the dbuf-global load-balancing template,
//   4. print speedup + the nvprof-style metrics explaining it.
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "src/apps/spmv.h"
#include "src/simt/report_printer.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;

namespace {

int run() {
  // An irregular matrix: 20k rows whose lengths follow a power law — the
  // f(i) skew from Figure 1(a) of the paper.
  const graph::Csr g =
      graph::generate_power_law(20000, 1, 800, 40.0, /*seed=*/42, true);
  const matrix::CsrMatrix a = matrix::CsrMatrix::from_graph(g);
  const std::vector<float> x = matrix::make_dense_vector(a.cols, 7);
  std::printf("matrix: %u rows, %llu nonzeros\n", a.rows,
              static_cast<unsigned long long>(a.nnz()));

  // Baseline: one thread per row. Long rows leave their warp's other lanes
  // idle, so warp efficiency collapses. Each run gets its own session: the
  // session scopes the recording, and report() times exactly what ran in it.
  simt::Device dev;
  std::vector<float> y_base;
  simt::RunReport base;
  {
    simt::Session session = dev.session();
    y_base = apps::run_spmv(dev, a, x, nested::LoopTemplate::kBaseline);
    base = session.report();
  }
  std::printf("\nbaseline      : %8.0f us  (warp efficiency %.1f%%)\n",
              base.total_us,
              base.aggregate.warp_execution_efficiency() * 100);

  // dbuf-global: rows longer than lbTHRES are deferred to a second,
  // block-mapped kernel that spreads each long row across a whole block.
  std::vector<float> y_lb;
  simt::RunReport lb;
  {
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    y_lb = apps::run_spmv(dev, a, x, nested::LoopTemplate::kDbufGlobal, p);
    lb = session.report();
  }
  std::printf("dbuf-global   : %8.0f us  (warp efficiency %.1f%%)\n",
              lb.total_us, lb.aggregate.warp_execution_efficiency() * 100);
  std::printf("speedup       : %.2fx\n", base.total_us / lb.total_us);

  // Both templates computed the same real result.
  for (std::size_t i = 0; i < y_base.size(); ++i) {
    if (std::abs(y_base[i] - y_lb[i]) > 1e-3f * (1.0f + std::abs(y_base[i]))) {
      std::printf("MISMATCH at row %zu\n", i);
      return 1;
    }
  }
  std::printf("results identical across templates - ok\n");

  // The nvprof-style per-kernel view of the load-balanced run.
  std::printf("\n");
  simt::print_report(std::cout, lb, dev.spec());
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
