// Command-line tool: load a graph file (DIMACS .gr, SNAP edge list, or
// MatrixMarket), or generate a synthetic one, autotune the SSSP/SpMV
// parallelization template for it, and optionally dump a Chrome trace of
// the winning schedule.
//
//   example_graph_tool --generate=citeseer --scale=0.02
//   example_graph_tool --dimacs=graph.gr --trace=trace.json
//   example_graph_tool --edges=wiki.txt
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/autotune.h"
#include "src/nested/flatten.h"
#include "src/simt/trace_export.h"

using namespace nestpar;

namespace {

void usage() {
  std::printf(
      "usage: example_graph_tool [input] [options]\n"
      "  input (pick one; default --generate=citeseer):\n"
      "    --dimacs=FILE     DIMACS shortest-path .gr file\n"
      "    --edges=FILE      SNAP-style whitespace edge list\n"
      "    --mm=FILE         MatrixMarket coordinate file\n"
      "    --generate=KIND   citeseer | wikivote | uniform | regular\n"
      "  options:\n"
      "    --scale=F         generator scale (default 0.02)\n"
      "    --template=NAME   skip autotuning and use this template\n"
      "                      (baseline, dual-queue, dbuf-shared, ...)\n"
      "    --trace=FILE      write a Chrome trace of the best schedule\n");
}

std::string flag_value(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

int run(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      usage();
      return 0;
    }
  }
  const double scale = [&] {
    const std::string s = flag_value(argc, argv, "--scale");
    return s.empty() ? 0.02 : std::stod(s);
  }();

  graph::Csr g;
  if (const auto f = flag_value(argc, argv, "--dimacs"); !f.empty()) {
    g = graph::load_dimacs_file(f);
  } else if (const auto f2 = flag_value(argc, argv, "--edges"); !f2.empty()) {
    g = graph::load_edge_list_file(f2);
  } else if (const auto f3 = flag_value(argc, argv, "--mm"); !f3.empty()) {
    g = graph::load_matrix_market_file(f3);
  } else {
    const std::string kind = [&] {
      const std::string k = flag_value(argc, argv, "--generate");
      return k.empty() ? std::string("citeseer") : k;
    }();
    if (kind == "citeseer") {
      g = graph::generate_citeseer_like(scale, 1, true);
    } else if (kind == "wikivote") {
      g = graph::generate_wikivote_like(1.0, 1);
    } else if (kind == "uniform") {
      g = graph::generate_uniform_random(
          static_cast<std::uint32_t>(50000 * scale * 10), 0, 256, 1);
    } else if (kind == "regular") {
      g = graph::generate_regular(
          static_cast<std::uint32_t>(50000 * scale * 10), 32, 1);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
      usage();
      return 2;
    }
  }
  g.validate();
  const auto stats = graph::degree_stats(g);
  std::printf("graph: %u nodes, %llu edges, degree %u..%u (mean %.1f)\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              stats.min_degree, stats.max_degree, stats.mean_degree);

  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 7);
  std::vector<float> y(a.rows, 0.0f);
  apps::SpmvWorkload w(a, x.data(), y.data());

  // --template=NAME bypasses autotuning: run exactly that template once and
  // report its model time.
  if (const auto tn = flag_value(argc, argv, "--template"); !tn.empty()) {
    const nested::LoopTemplate tmpl = nested::parse_loop_template(tn);
    simt::Device dev;
    const nested::RunResult run = nested::run_nested_loop(
        dev, w, nested::LoopRun{.tmpl = tmpl, .policy = dev.exec_policy()});
    std::printf("\n%s: %.0f model-us (%zu kernels)\n",
                std::string(nested::name(tmpl)).c_str(), run.report.total_us,
                run.report.grids);
    return 0;
  }

  // Autotune SpMV over this graph's structure.
  const auto res = nested::autotune_nested_loop(w);

  std::printf("\n%-22s %12s %10s\n", "configuration", "model-us", "speedup");
  for (const auto& c : res.all) {
    std::printf("%-22s %12.0f %9.2fx\n", c.label().c_str(), c.model_us,
                res.baseline_us / c.model_us);
  }
  std::printf("\nbest: %s (%.2fx over baseline)\n", res.best.label().c_str(),
              res.best_speedup());

  if (const auto tf = flag_value(argc, argv, "--trace"); !tf.empty()) {
    simt::Device dev;
    // The session must stay open until the trace is written: its destructor
    // clears the recorded launch graph the trace is built from.
    simt::Session session = dev.session();
    if (res.best.flattened) {
      nested::run_flattened(dev, w);
    } else {
      nested::LoopParams p;
      p.lb_threshold = res.best.lb_threshold;
      nested::run_nested_loop(
          dev, w, nested::LoopRun{.tmpl = res.best.tmpl, .params = p});
    }
    std::ofstream out(tf);
    simt::write_chrome_trace(out, dev);
    std::printf("wrote Chrome trace of the best schedule to %s\n",
                tf.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    // Bad flag values (--scale, --template) and malformed input files.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
