// Graph-analytics scenario: run SSSP, PageRank and BFS on one irregular
// graph, comparing the parallelization templates the paper proposes and
// validating every GPU result against its serial reference — the workflow a
// user of the library would follow to pick a template for their workload.
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/apps/bfs.h"
#include "src/apps/cc.h"
#include "src/apps/kcore.h"
#include "src/apps/pagerank.h"
#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

int run() {
  const graph::Csr g =
      graph::generate_lognormal(15000, 1, 900, 50.0, 0.8, /*seed=*/7, true);
  std::printf("graph: %u nodes, %llu edges (lognormal degrees)\n\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  // --- SSSP: pick the fastest load-balancing template -----------------------
  const auto ref_dist = apps::sssp_serial(g, 0);
  double best_us = 0;
  LoopTemplate best = LoopTemplate::kBaseline;
  std::printf("SSSP (model time per template):\n");
  for (const LoopTemplate t :
       {LoopTemplate::kBaseline, LoopTemplate::kDualQueue,
        LoopTemplate::kDbufShared, LoopTemplate::kDbufGlobal,
        LoopTemplate::kDparOpt}) {
    simt::Device dev;
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    const auto res = apps::run_sssp(dev, g, 0, t, p);
    const double us = session.report().total_us;
    for (std::size_t v = 0; v < ref_dist.size(); ++v) {
      if (res.dist[v] != ref_dist[v] &&
          !(std::isinf(res.dist[v]) && std::isinf(ref_dist[v]))) {
        std::printf("SSSP mismatch at %zu\n", v);
        return 1;
      }
    }
    std::printf("  %-12s %8.0f us (%d sweeps)\n",
                std::string(nested::name(t)).c_str(), us, res.iterations);
    if (best_us == 0 || us < best_us) {
      best_us = us;
      best = t;
    }
  }
  std::printf("  -> best template: %s\n\n",
              std::string(nested::name(best)).c_str());

  // --- PageRank: template chosen above, verified against serial -------------
  {
    simt::Device dev;
    simt::Session session = dev.session();
    nested::LoopParams p;
    p.lb_threshold = 32;
    const auto rank = apps::run_pagerank(dev, g, best, p);
    const auto ref = apps::pagerank_serial(g);
    double max_err = 0;
    for (std::size_t i = 0; i < rank.size(); ++i) {
      max_err = std::max(max_err, std::abs(rank[i] - ref[i]));
    }
    std::printf("PageRank via %s: %0.f us, max |err| vs serial = %.2e\n",
                std::string(nested::name(best)).c_str(),
                session.report().total_us, max_err);
  }

  // --- Extension apps: connected components & k-core ------------------------
  {
    const graph::Csr ug = graph::symmetrize(g);
    simt::Device dev;
    double cc_us = 0.0;
    std::vector<std::uint32_t> labels;
    {
      simt::Session session = dev.session();
      labels = apps::run_cc(dev, ug, best);
      cc_us = session.report().total_us;
    }
    if (labels != apps::cc_serial(ug)) {
      std::printf("CC mismatch\n");
      return 1;
    }
    simt::Session session = dev.session();
    const auto core = apps::run_kcore(dev, ug, best);
    if (core != apps::kcore_serial(ug)) {
      std::printf("k-core mismatch\n");
      return 1;
    }
    std::uint32_t kmax = 0;
    for (const auto c : core) kmax = std::max(kmax, c);
    std::printf("CC via %s: %u components in %.0f us; k-core: degeneracy %u "
                "in %.0f us\n\n",
                std::string(nested::name(best)).c_str(),
                apps::count_components(labels), cc_us, kmax,
                session.report().total_us);
  }

  // --- BFS: flat parallelism vs the recursive templates ---------------------
  {
    const auto ref = apps::bfs_serial_iterative(g, 0);
    simt::Device dev;
    double flat_us = 0.0, naive_us = 0.0;
    std::vector<std::uint32_t> flat, recn;
    {
      simt::Session session = dev.session();
      flat = apps::bfs_flat_gpu(dev, g, 0);
      flat_us = session.report().total_us;
    }
    {
      simt::Session session = dev.session();
      recn = apps::bfs_recursive_gpu(dev, g, 0, rec::RecTemplate::kRecNaive);
      naive_us = session.report().total_us;
    }
    if (flat != ref || recn != ref) {
      std::printf("BFS mismatch\n");
      return 1;
    }
    std::printf("BFS: flat %.0f us, rec-naive %.0f us (%.0fx slower - the\n"
                "paper's central negative result for recursion on graphs)\n",
                flat_us, naive_us, naive_us / flat_us);
  }
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
