// Autotuning scenario: the paper shows the load-balancing threshold lbTHRES
// is the dominant tuning parameter and its optimum is dataset-dependent.
// This example sweeps lbTHRES for one workload on two datasets with very
// different degree skew and picks the best (template, threshold) pair —
// i.e., the compiler/runtime decision procedure the paper envisions.
//
// Pass template names ("dual-queue dpar-opt") to restrict the sweep to
// those templates; the default sweeps all four load balancers.
#include <cstdio>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

void autotune(const char* label, const graph::Csr& g,
              const std::vector<LoopTemplate>& templates) {
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 3);
  const auto stats = graph::degree_stats(g);
  std::printf("\n%s: %u rows, mean nnz %.1f, max nnz %u\n", label,
              a.rows, stats.mean_degree, stats.max_degree);

  simt::Device dev;
  double base = 0.0;
  {
    simt::Session session = dev.session();
    apps::run_spmv(dev, a, x, LoopTemplate::kBaseline);
    base = session.report().total_us;
  }

  double best_us = base;
  LoopTemplate best_t = LoopTemplate::kBaseline;
  int best_lb = 0;
  std::printf("  %-13s", "lbTHRES:");
  for (int lb = 16; lb <= 512; lb *= 2) std::printf("%-8d", lb);
  std::printf("\n");
  for (const LoopTemplate t : templates) {
    std::printf("  %-13s", std::string(nested::name(t)).c_str());
    for (int lb = 16; lb <= 512; lb *= 2) {
      simt::Session session = dev.session();
      nested::LoopParams p;
      p.lb_threshold = lb;
      apps::run_spmv(dev, a, x, t, p);
      const double us = session.report().total_us;
      std::printf("%-8.2f", base / us);
      if (us < best_us) {
        best_us = us;
        best_t = t;
        best_lb = lb;
      }
    }
    std::printf("\n");
  }
  if (best_t == LoopTemplate::kBaseline) {
    std::printf("  -> keep the baseline: no template wins on this input\n");
  } else {
    std::printf("  -> pick %s with lbTHRES=%d (%.2fx)\n",
                std::string(nested::name(best_t)).c_str(), best_lb,
                base / best_us);
  }
}

int run(int argc, char** argv) {
  std::vector<LoopTemplate> templates;
  for (int i = 1; i < argc; ++i) {
    templates.push_back(nested::parse_loop_template(argv[i]));
  }
  if (templates.empty()) {
    templates = {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
                 LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt};
  }

  // Heavily skewed rows: load balancing pays off.
  autotune("power-law matrix",
           graph::generate_power_law(30000, 1, 1000, 30.0, 5, true),
           templates);
  // Near-regular rows: the baseline is already balanced, and the paper's
  // observation that templates only help irregular inputs shows up as
  // speedups pinned near (or below) 1.
  autotune("regular matrix", graph::generate_regular(30000, 30, 5, true),
           templates);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    // Unknown template names on the command line.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
