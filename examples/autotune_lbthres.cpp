// Autotuning scenario: the paper shows the load-balancing threshold lbTHRES
// is the dominant tuning parameter and its optimum is dataset-dependent.
// This example sweeps lbTHRES for one workload on two datasets with very
// different degree skew and picks the best (template, threshold) pair —
// i.e., the compiler/runtime decision procedure the paper envisions.
#include <cstdio>

#include "src/apps/spmv.h"
#include "src/graph/generators.h"
#include "src/matrix/csr_matrix.h"
#include "src/nested/templates.h"

using namespace nestpar;
using nested::LoopTemplate;

namespace {

void autotune(const char* label, const graph::Csr& g) {
  const auto a = matrix::CsrMatrix::from_graph(g);
  const auto x = matrix::make_dense_vector(a.cols, 3);
  const auto stats = graph::degree_stats(g);
  std::printf("\n%s: %u rows, mean nnz %.1f, max nnz %u\n", label,
              a.rows, stats.mean_degree, stats.max_degree);

  simt::Device dev;
  apps::run_spmv(dev, a, x, LoopTemplate::kBaseline);
  const double base = dev.report().total_us;

  double best_us = base;
  LoopTemplate best_t = LoopTemplate::kBaseline;
  int best_lb = 0;
  std::printf("  %-13s", "lbTHRES:");
  for (int lb = 16; lb <= 512; lb *= 2) std::printf("%-8d", lb);
  std::printf("\n");
  for (const LoopTemplate t :
       {LoopTemplate::kDualQueue, LoopTemplate::kDbufShared,
        LoopTemplate::kDbufGlobal, LoopTemplate::kDparOpt}) {
    std::printf("  %-13s", nested::to_string(t));
    for (int lb = 16; lb <= 512; lb *= 2) {
      dev.reset();
      nested::LoopParams p;
      p.lb_threshold = lb;
      apps::run_spmv(dev, a, x, t, p);
      const double us = dev.report().total_us;
      std::printf("%-8.2f", base / us);
      if (us < best_us) {
        best_us = us;
        best_t = t;
        best_lb = lb;
      }
    }
    std::printf("\n");
  }
  if (best_t == LoopTemplate::kBaseline) {
    std::printf("  -> keep the baseline: no template wins on this input\n");
  } else {
    std::printf("  -> pick %s with lbTHRES=%d (%.2fx)\n",
                nested::to_string(best_t), best_lb, base / best_us);
  }
}

}  // namespace

int main() {
  // Heavily skewed rows: load balancing pays off.
  autotune("power-law matrix",
           graph::generate_power_law(30000, 1, 1000, 30.0, 5, true));
  // Near-regular rows: the baseline is already balanced, and the paper's
  // observation that templates only help irregular inputs shows up as
  // speedups pinned near (or below) 1.
  autotune("regular matrix", graph::generate_regular(30000, 30, 5, true));
  return 0;
}
