#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/simt/device.h"

namespace nestpar::sort {

/// GPU sort implementations mirroring the CUDA-SDK codes the paper's Figure 2
/// compares: a flat (non-recursive) MergeSort and two dynamic-parallelism
/// QuickSorts — "Simple" (serial partition in a <<<1,1>>> kernel, selection
/// sort at the recursion limit) and "Advanced" (block-parallel partition,
/// bitonic sort at the recursion limit). All operate on int keys in place.

struct MergeSortOptions {
  int tile = 2048;        ///< Elements sorted per block in the first phase.
  int block_threads = 256;
  int segment = 256;      ///< Output elements produced per thread in merges.
};

struct QuickSortOptions {
  int max_depth = 16;       ///< Recursion limit (the paper's tuning knob).
  int leaf_threshold = 32;  ///< Segments below this are leaf-sorted directly.
  int block_threads = 128;  ///< Advanced variant's partition block.
  int bitonic_size = 1024;  ///< Advanced variant's leaf bitonic capacity.
};

/// Flat bottom-up mergesort: one tile-sort kernel, then log(n/tile)
/// thread-mapped merge passes with co-rank splitting (all threads busy).
void mergesort(simt::Device& dev, std::span<int> data,
               const MergeSortOptions& opt = {});

/// CDP QuickSort after the SDK's cdpSimpleQuicksort: a single-thread kernel
/// partitions and spawns two nested kernels; at `max_depth` (or below
/// `leaf_threshold`) the remaining segment is selection-sorted in-kernel.
void simple_quicksort(simt::Device& dev, std::span<int> data,
                      const QuickSortOptions& opt = {});

/// CDP QuickSort after the SDK's cdpAdvancedQuicksort: block-parallel
/// partition, two nested kernels per segment, block-local bitonic sort at
/// the recursion limit.
void advanced_quicksort(simt::Device& dev, std::span<int> data,
                        const QuickSortOptions& opt = {});

/// Deterministic random int keys.
std::vector<int> make_keys(std::size_t n, std::uint64_t seed);

}  // namespace nestpar::sort
