#include "src/sort/sort.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <random>
#include <stdexcept>

namespace nestpar::sort {

namespace {

using simt::BlockCtx;
using simt::Device;
using simt::Kernel;
using simt::LaneCtx;
using simt::LaunchConfig;

/// Charge the cost of a block-local bitonic sort of `m` elements (log^2
/// compare-exchange passes, threads striding the array).
void charge_bitonic(BlockCtx& blk, int m) {
  const int levels = std::bit_width(static_cast<unsigned>(std::max(2, m))) - 1;
  const int passes = levels * (levels + 1) / 2;
  blk.each_thread([&](LaneCtx& t) {
    const int per_thread = (m + blk.block_dim() - 1) / blk.block_dim();
    for (int p = 0; p < passes; ++p) {
      for (int k = 0; k < per_thread; ++k) {
        t.compute(2);
        // Compare-exchange in shared memory (addresses synthetic but
        // bank-spread, which is what a real bitonic network achieves).
        t.compute(2);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// MergeSort (flat)
// ---------------------------------------------------------------------------

/// Stable co-rank: number of elements of run A merged before output rank k.
/// Charges one load per binary-search probe.
std::size_t co_rank(LaneCtx& t, std::size_t k, const int* a, std::size_t na,
                    const int* b, std::size_t nb) {
  std::size_t lo = k > nb ? k - nb : 0;
  std::size_t hi = std::min(k, na);
  while (lo < hi) {
    const std::size_t i = (lo + hi) / 2;  // elements taken from A
    const std::size_t j = k - i - 1;      // index into B of the rival
    t.compute(2);
    if (j < nb && t.ld(&a[i]) > t.ld(&b[j])) {
      hi = i;
    } else {
      lo = i + 1;
    }
  }
  return lo;
}

}  // namespace

void mergesort(Device& dev, std::span<int> data, const MergeSortOptions& opt) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (opt.tile < 2 || (opt.tile & (opt.tile - 1)) != 0) {
    throw std::invalid_argument("mergesort: tile must be a power of two >= 2");
  }

  // Phase 1: block-local tile sort (shared memory, bitonic cost model).
  const std::size_t tiles = (n + opt.tile - 1) / opt.tile;
  {
    LaunchConfig cfg;
    cfg.grid_blocks = static_cast<int>(std::min<std::size_t>(tiles, 65535));
    cfg.block_threads = opt.block_threads;
    cfg.smem_bytes = static_cast<std::size_t>(opt.tile) * sizeof(int);
    cfg.name = "mergesort/tile-sort";
    int* raw = data.data();
    dev.launch(cfg, [raw, n, tiles, &opt](BlockCtx& blk) {
      for (std::size_t tile = blk.block_idx(); tile < tiles;
           tile += static_cast<std::size_t>(blk.grid_dim())) {
        const std::size_t start = tile * opt.tile;
        const std::size_t len = std::min<std::size_t>(opt.tile, n - start);
        auto sh = blk.shared_array<int>(static_cast<std::size_t>(opt.tile));
        blk.each_thread([&](LaneCtx& t) {
          for (std::size_t k = static_cast<std::size_t>(t.thread_idx());
               k < len; k += static_cast<std::size_t>(t.block_dim())) {
            t.sh_st(&sh[k], t.ld(&raw[start + k]));
          }
        });
        charge_bitonic(blk, static_cast<int>(len));
        std::sort(sh.begin(), sh.begin() + static_cast<std::ptrdiff_t>(len));
        blk.each_thread([&](LaneCtx& t) {
          for (std::size_t k = static_cast<std::size_t>(t.thread_idx());
               k < len; k += static_cast<std::size_t>(t.block_dim())) {
            t.st(&raw[start + k], t.sh_ld(&sh[k]));
          }
        });
      }
    });
  }

  // Phase 2: log(n/tile) thread-mapped merge passes; every thread produces
  // `segment` output elements located via co-rank search, so the merge stays
  // fully parallel even when runs are long. For small arrays the segment
  // shrinks so the grid still fills the device.
  std::vector<int> aux(n);
  int* src = data.data();
  int* dst = aux.data();
  // Power of two so a segment never straddles a merge-pair boundary.
  const std::size_t seg = std::bit_floor(std::clamp<std::size_t>(
      n / 8192, 32, static_cast<std::size_t>(opt.segment)));
  for (std::size_t width = static_cast<std::size_t>(opt.tile); width < n;
       width *= 2) {
    const std::size_t segments = (n + seg - 1) / seg;
    LaunchConfig cfg;
    cfg.block_threads = opt.block_threads;
    cfg.grid_blocks = Device::blocks_for(static_cast<std::int64_t>(segments),
                                         opt.block_threads, 65535);
    cfg.name = "mergesort/merge";
    dev.launch_threads(cfg, [src, dst, n, width, seg, segments](LaneCtx& t) {
      for (std::size_t s = static_cast<std::size_t>(t.global_idx());
           s < segments; s += static_cast<std::size_t>(t.grid_threads())) {
        const std::size_t o0 = s * seg;
        const std::size_t o1 = std::min(n, o0 + seg);
        const std::size_t base = (o0 / (2 * width)) * (2 * width);
        const int* a = src + base;
        const std::size_t na = std::min(width, n - base);
        const int* b = src + base + na;
        const std::size_t nb =
            base + na >= n ? 0 : std::min(width, n - base - na);
        std::size_t k = o0 - base;
        std::size_t i = co_rank(t, k, a, na, b, nb);
        std::size_t j = k - i;
        for (std::size_t o = o0; o < o1; ++o) {
          int v;
          t.compute(1);
          if (j >= nb || (i < na && t.ld(&a[i]) <= t.ld(&b[j]))) {
            v = a[i++];
          } else {
            v = b[j++];
          }
          t.st(&dst[o], v);
        }
      }
    });
    std::swap(src, dst);
  }
  if (src != data.data()) {
    std::copy(aux.begin(), aux.end(), data.begin());
  }
}

// ---------------------------------------------------------------------------
// Simple QuickSort (CDP, <<<1,1>>> kernels)
// ---------------------------------------------------------------------------

namespace {

struct QsCtx {
  int* data;
  QuickSortOptions opt;
};

/// Charged single-thread selection sort of data[lo..hi]. The quadratic scan
/// cost is charged in aggregate per outer iteration (one ranged load + a
/// counted compute op) so the recorded trace stays linear in `len` — the
/// modeled cycles are the same O(len^2) a per-element trace would give.
void selection_sort(LaneCtx& t, int* d, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i <= hi; ++i) {
    const auto remaining = static_cast<std::uint32_t>(hi - i + 1);
    t.charge_load(&d[i], remaining * static_cast<std::uint32_t>(sizeof(int)));
    t.compute(2 * remaining);
    t.st(&d[i], d[i]);
  }
  std::sort(d + lo, d + hi + 1);
}

Kernel make_simple_qs_kernel(std::shared_ptr<const QsCtx> ctx, std::int64_t lo,
                             std::int64_t hi, int depth);

Kernel make_simple_qs_kernel(std::shared_ptr<const QsCtx> ctx, std::int64_t lo,
                             std::int64_t hi, int depth) {
  return simt::as_kernel([ctx, lo, hi, depth](LaneCtx& t) {
    int* d = ctx->data;
    const std::int64_t len = hi - lo + 1;
    if (depth >= ctx->opt.max_depth || len <= ctx->opt.leaf_threshold) {
      selection_sort(t, d, lo, hi);
      return;
    }
    // Serial Hoare partition by the kernel's single thread.
    const int pivot = t.ld(&d[(lo + hi) / 2]);
    std::int64_t i = lo, j = hi;
    while (i <= j) {
      while (t.compute(1), t.ld(&d[i]) < pivot) ++i;
      while (t.compute(1), t.ld(&d[j]) > pivot) --j;
      if (i <= j) {
        const int a = d[i], b = d[j];
        t.st(&d[i], b);
        t.st(&d[j], a);
        ++i;
        --j;
      }
    }
    LaunchConfig cc;
    cc.grid_blocks = 1;
    cc.block_threads = 1;
    cc.name = "simple-qs";
    if (lo < j) t.launch(cc, make_simple_qs_kernel(ctx, lo, j, depth + 1));
    if (i < hi) t.launch(cc, make_simple_qs_kernel(ctx, i, hi, depth + 1));
  });
}

}  // namespace

void simple_quicksort(Device& dev, std::span<int> data,
                      const QuickSortOptions& opt) {
  if (data.size() <= 1) return;
  auto ctx = std::make_shared<QsCtx>(QsCtx{data.data(), opt});
  LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 1;
  cfg.name = "simple-qs";
  dev.launch(cfg, make_simple_qs_kernel(
                      ctx, 0, static_cast<std::int64_t>(data.size()) - 1, 0));
}

// ---------------------------------------------------------------------------
// Advanced QuickSort (CDP, block-parallel partition + bitonic leaves)
// ---------------------------------------------------------------------------

namespace {

struct AqsCtx {
  int* data;
  int* aux;
  QuickSortOptions opt;
};

Kernel make_advanced_qs_kernel(std::shared_ptr<const AqsCtx> ctx,
                               std::int64_t lo, std::int64_t hi, int depth);

Kernel make_advanced_qs_kernel(std::shared_ptr<const AqsCtx> ctx,
                               std::int64_t lo, std::int64_t hi, int depth) {
  return [ctx, lo, hi, depth](BlockCtx& blk) {
    int* d = ctx->data;
    const std::int64_t len = hi - lo + 1;
    if (depth >= ctx->opt.max_depth ||
        len <= static_cast<std::int64_t>(ctx->opt.bitonic_size)) {
      // Leaf: block-local bitonic sort (charged), executed via std::sort.
      charge_bitonic(blk, static_cast<int>(
                              std::min<std::int64_t>(len, 8192)));
      blk.each_thread([&](LaneCtx& t) {
        for (std::int64_t k = lo + t.thread_idx(); k <= hi;
             k += blk.block_dim()) {
          t.ld(&d[k]);
          t.st(&d[k], d[k]);
        }
      });
      std::sort(d + lo, d + hi + 1);
      return;
    }

    // Block-parallel three-way partition through the aux buffer.
    auto counts = blk.shared_array<std::int64_t>(2);  // [less, greater]
    const int pivot = std::max({d[lo], d[(lo + hi) / 2], d[hi]}) ==
                              std::min({d[lo], d[(lo + hi) / 2], d[hi]})
                          ? d[(lo + hi) / 2]
                          : d[lo] + d[(lo + hi) / 2] + d[hi] -
                                std::max({d[lo], d[(lo + hi) / 2], d[hi]}) -
                                std::min({d[lo], d[(lo + hi) / 2], d[hi]});
    int* aux = ctx->aux;
    blk.each_thread([&](LaneCtx& t) {
      // Median-of-three pivot loads.
      if (t.thread_idx() == 0) {
        t.ld(&d[lo]);
        t.ld(&d[(lo + hi) / 2]);
        t.ld(&d[hi]);
      }
      for (std::int64_t k = lo + t.thread_idx(); k <= hi;
           k += blk.block_dim()) {
        const int x = t.ld(&d[k]);
        t.compute(1);
        if (x < pivot) {
          const std::int64_t idx = t.sh_atomic_add(&counts[0], std::int64_t{1});
          t.st(&aux[lo + idx], x);
        } else if (x > pivot) {
          const std::int64_t idx = t.sh_atomic_add(&counts[1], std::int64_t{1});
          t.st(&aux[hi - idx], x);
        }
      }
    });
    const std::int64_t less = counts[0];
    const std::int64_t greater = counts[1];
    blk.each_thread([&](LaneCtx& t) {
      // Copy partitions back; the middle is filled with the pivot value.
      for (std::int64_t k = t.thread_idx(); k < len; k += blk.block_dim()) {
        const std::int64_t p = lo + k;
        int v;
        if (k < less) {
          v = t.ld(&aux[p]);
        } else if (p > hi - greater) {
          v = t.ld(&aux[p]);
        } else {
          v = pivot;
        }
        t.st(&d[p], v);
      }
    });
    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() != 0) return;
      LaunchConfig cc;
      cc.block_threads = ctx->opt.block_threads;
      cc.grid_blocks = 1;
      cc.name = "advanced-qs";
      if (less > 1) {
        t.launch(cc, make_advanced_qs_kernel(ctx, lo, lo + less - 1,
                                             depth + 1));
      }
      if (greater > 1) {
        t.launch(cc, make_advanced_qs_kernel(ctx, hi - greater + 1, hi,
                                             depth + 1), 0);
      }
    });
  };
}

}  // namespace

void advanced_quicksort(Device& dev, std::span<int> data,
                        const QuickSortOptions& opt) {
  if (data.size() <= 1) return;
  auto aux = std::make_shared<std::vector<int>>(data.size());
  auto ctx = std::make_shared<AqsCtx>(AqsCtx{data.data(), aux->data(), opt});
  // Keep the aux buffer alive for the duration of the eager execution.
  LaunchConfig cfg;
  cfg.block_threads = opt.block_threads;
  cfg.grid_blocks = 1;
  cfg.name = "advanced-qs";
  Kernel k = make_advanced_qs_kernel(
      ctx, 0, static_cast<std::int64_t>(data.size()) - 1, 0);
  dev.launch(cfg, [k = std::move(k), aux](BlockCtx& blk) { k(blk); });
}

std::vector<int> make_keys(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> keys(n);
  for (auto& k : keys) {
    k = static_cast<int>(rng() & 0x7fffffff);
  }
  return keys;
}

}  // namespace nestpar::sort
