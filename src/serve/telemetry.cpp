#include "src/serve/telemetry.h"

#include <algorithm>
#include <stdexcept>

namespace nestpar::serve {

double TimeSeries::max_value() const {
  double m = 0.0;
  for (const TimePoint& p : points) m = std::max(m, p.value);
  return m;
}

double TimeSeries::mean_value() const {
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (const TimePoint& p : points) sum += p.value;
  return sum / static_cast<double>(points.size());
}

Telemetry::Telemetry(double interval_us) : interval_us_(interval_us) {
  if (interval_us < 0.0) {
    throw std::invalid_argument("Telemetry: negative interval " +
                                std::to_string(interval_us));
  }
}

TimeSeries& Telemetry::series_for(const std::string& name,
                                  const std::string& unit) {
  for (TimeSeries& s : series_) {
    if (s.name == name) return s;
  }
  TimeSeries s;
  s.name = name;
  s.unit = unit;
  series_.push_back(std::move(s));
  return series_.back();
}

void Telemetry::append(const std::string& name, const std::string& unit,
                       double t_us, double value) {
  if (!enabled()) return;
  // Keep each series time-sorted on insert: event-driven appends (e.g. a
  // batch turn's budget sample) can run ahead of the next event's clock, so
  // raw append order is not time order. Ties keep append order (stable), so
  // the series stays a pure function of the schedule.
  std::vector<TimePoint>& pts = series_for(name, unit).points;
  const auto pos = std::upper_bound(
      pts.begin(), pts.end(), t_us,
      [](double t, const TimePoint& p) { return t < p.t_us; });
  pts.insert(pos, TimePoint{t_us, value});
}

}  // namespace nestpar::serve
