#include "src/serve/request.h"

namespace nestpar::serve {

std::string_view to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kSssp: return "sssp";
    case QueryKind::kPageRank: return "pagerank";
    case QueryKind::kSpmv: return "spmv";
  }
  return "?";
}

std::string_view to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kShed: return "shed";
  }
  return "?";
}

}  // namespace nestpar::serve
