#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/simt/virtual_clock.h"

namespace nestpar::serve {

/// The small per-user query shapes the serving runtime accepts. Each runs
/// one of the paper's applications on a pooled subgraph (SubgraphPool).
enum class QueryKind : std::uint8_t {
  kSssp,      ///< Single-source shortest paths from `Request::source`.
  kPageRank,  ///< Fixed-iteration PageRank on the whole subgraph.
  kSpmv,      ///< y = A*x with the subgraph's matrix and pooled x.
};

std::string_view to_string(QueryKind k);

/// Terminal status of a request. This is the serving layer's correctness
/// contract: a query either completes with verified data (`kOk`), runs out
/// of deadline budget / retry budget (`kExpired`), or is dropped by
/// admission control (`kShed`). There is no status that returns wrong data.
enum class RequestStatus : std::uint8_t {
  kOk,       ///< Completed within deadline, result verified.
  kExpired,  ///< Deadline or retry budget exhausted; no data returned.
  kShed,     ///< Dropped by admission control; counted, never silent.
};

std::string_view to_string(RequestStatus s);

/// One user query: what to compute, on which pooled subgraph, and the
/// latency budget it arrived with (virtual-clock microseconds).
struct Request {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kSssp;
  std::uint32_t graph_id = 0;  ///< SubgraphPool entry index.
  std::uint32_t source = 0;    ///< SSSP source node (ignored otherwise).
  std::uint32_t tenant = 0;    ///< Owning tenant (< ServeConfig::num_tenants).
  simt::Deadline deadline;     ///< arrival_us + budget_us.
};

/// Terminal record of one request, emitted exactly once per request.
struct Completion {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kSssp;
  RequestStatus status = RequestStatus::kOk;
  double finish_us = 0.0;   ///< Virtual time the terminal state was reached.
  double latency_us = 0.0;  ///< finish_us - arrival_us.
  int attempts = 0;         ///< Execution attempts across all shards.
  int shard = -1;           ///< Completing shard (-1 = shed at admission).
  bool hedged = false;      ///< A retry was re-dispatched to a sibling shard.
  bool correct = false;     ///< Ok only: result matched the serial reference.
  std::uint64_t faults_seen = 0;  ///< Injected faults across all attempts.
  std::uint32_t tenant = 0;       ///< Copied from the request.
  std::uint64_t launches = 0;     ///< Grids run across all attempts.

  /// Device-cost attribution (cross-layer tracing): modeled device cycles
  /// this request's attempts burned, folded in attempt order from the
  /// scheduler's per-grid attribution (simt::attribute_cycles). Conservation
  /// is bit-exact: folding completions' device_cycles in completion order
  /// reproduces ServeStats::device_cycles_total to the last bit.
  double device_cycles = 0.0;
  double fault_device_cycles = 0.0;  ///< Share burned on the fault path.

  /// Critical-path verdict of the final attempt's launch subgraph
  /// ("compute-bound", "launch-bound", ...; empty when no attempt ran).
  std::string verdict;

  /// Latency attribution: where the request's lifetime went. The four
  /// shares tile [arrival, finish] exactly (up to floating-point rounding):
  /// queue_us + batch_us + exec_us + retry_us == latency_us. Always
  /// accounted — this is how "why was this query slow?" gets answered
  /// without turning tracing on.
  double queue_us = 0.0;  ///< Waiting in shard queues (all stays).
  double batch_us = 0.0;  ///< Dispatched but waiting for its batch turn.
  double exec_us = 0.0;   ///< Simulated execution across all attempts.
  double retry_us = 0.0;  ///< Backoff waits between attempts.
};

}  // namespace nestpar::serve
