#include "src/serve/policy.h"

#include <stdexcept>
#include <string>

namespace nestpar::serve {

namespace {
[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("ServeConfig: " + what);
}
}  // namespace

void ServeConfig::validate() const {
  if (num_shards < 1) bad("num_shards must be >= 1");
  if (queue_capacity < 1) bad("queue_capacity must be >= 1");
  if (batch_max < 1) bad("batch_max must be >= 1");
  if (batch_linger_us < 0.0) bad("batch_linger_us must be >= 0");
  if (deadline_us <= 0.0) bad("deadline_us must be > 0");
  if (max_attempts < 1 || max_attempts > 20) {
    bad("max_attempts must be in [1, 20]");
  }
  if (backoff_base_us < 0.0) bad("backoff_base_us must be >= 0");
  if (breaker.window < 1) bad("breaker.window must be >= 1");
  if (breaker.min_samples < 1 || breaker.min_samples > breaker.window) {
    bad("breaker.min_samples must be in [1, breaker.window]");
  }
  if (breaker.trip_threshold <= 0.0 || breaker.trip_threshold > 1.0) {
    bad("breaker.trip_threshold must be in (0, 1]");
  }
  if (breaker.cooldown_us <= 0.0) bad("breaker.cooldown_us must be > 0");
  if (pagerank_iterations < 1) bad("pagerank_iterations must be >= 1");
  if (num_tenants < 1) bad("num_tenants must be >= 1");
  if (metrics_interval_us < 0.0) bad("metrics_interval_us must be >= 0");
  loop_params.validate();
}

}  // namespace nestpar::serve
