#pragma once

#include <cstddef>
#include <cstdint>

#include "src/nested/templates.h"
#include "src/simt/fault.h"

namespace nestpar::serve {

/// Per-shard circuit-breaker tuning. The breaker watches a sliding window of
/// execution-attempt outcomes; when the faulted fraction crosses
/// `trip_threshold` (with at least `min_samples` observed) the shard is
/// quarantined (`kOpen`) for `cooldown_us`, after which a single probe query
/// decides between recovery (`kClosed`) and another cooldown.
struct BreakerConfig {
  int window = 16;              ///< Sliding window of attempt outcomes.
  int min_samples = 8;          ///< Don't trip on fewer observations.
  double trip_threshold = 0.5;  ///< Faulted fraction that trips the breaker.
  double cooldown_us = 20000.0; ///< Quarantine length per trip.
};

/// Serving-runtime policy: sharding, batching, deadlines, retry/hedging, and
/// admission control. Everything that shapes scheduling decisions lives here
/// so that (config, workload, pool) fully determine a run — the determinism
/// contract the tests and SERVE_* baselines pin.
struct ServeConfig {
  int num_shards = 4;        ///< Simulated devices the runtime shards over.
  int queue_capacity = 32;   ///< Bounded per-shard queue (admission control).
  int batch_max = 8;         ///< Max queries consolidated into one dispatch.
  double batch_linger_us = 200.0;  ///< Wait this long to fill a batch.
  double deadline_us = 150000.0;   ///< Per-query latency budget.
  int max_attempts = 3;            ///< Execution attempts per query.
  double backoff_base_us = 500.0;  ///< Retry backoff (doubles per attempt).
  /// Re-dispatch retries to a sibling shard instead of backing off in place —
  /// the hedging knob. Retries forced off-shard by a breaker trip re-dispatch
  /// regardless of this flag.
  bool hedge = true;
  BreakerConfig breaker;

  /// How queries execute on a shard: the parallelization template (the
  /// consolidation family is the natural fit — many small queries, few
  /// aggregated launches) and its tuning knobs.
  nested::LoopTemplate tmpl = nested::LoopTemplate::kConsGrid;
  nested::LoopParams loop_params;
  int pagerank_iterations = 3;  ///< Fixed power iterations per PR query.

  /// Chaos configuration (PR 2 fault model). The runtime re-seeds this per
  /// (shard, attempt) so a retried query sees fresh fault decisions — without
  /// that, the recorder's per-session attempt keys would make an identical
  /// retry hit the exact same injected faults forever.
  simt::FaultConfig faults;

  std::uint64_t seed = 2026;  ///< Workload/placement seed.

  /// Tenants the synthetic workload spreads requests over (uniformly, from
  /// seed-derived hash bits that leave every other workload field
  /// untouched). Per-tenant device-cost rollups key on this; 1 collapses
  /// the rollup to a single row.
  int num_tenants = 4;

  /// Observability (PR 9). Both default off so an unconfigured run is
  /// byte-identical to pre-observability builds; neither influences a single
  /// scheduling decision — they read the timeline, never steer it.
  ///
  /// Gauge-sampling interval for the telemetry registry (queue depth,
  /// in-flight, breaker state per shard; cumulative outcome counters),
  /// virtual microseconds between samples. 0 disables telemetry.
  double metrics_interval_us = 0.0;
  /// Record per-request typed spans (admission/queue/batch/exec/backoff/
  /// terminal) for Perfetto export via write_serve_trace.
  bool trace = false;
  /// Ring cap for the span recorder: at most this many retained spans,
  /// evicting whole oldest-request span trees when exceeded. 0 = unbounded
  /// (the default; short benchmark runs keep everything).
  std::size_t trace_max_spans = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

}  // namespace nestpar::serve
