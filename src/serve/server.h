#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "src/serve/pool.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"
#include "src/serve/telemetry.h"
#include "src/serve/trace.h"
#include "src/simt/exec_policy.h"
#include "src/simt/virtual_clock.h"

namespace nestpar::serve {

/// Aggregate outcome of one serving run. Every field is a pure function of
/// (config, workload, pool): counters are exact, latency percentiles are
/// nearest-rank over Ok completions — bit-stable across host engines, which
/// is what makes SERVE_* files baseline-pinnable.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t wrong = 0;  ///< Ok results failing verification (must be 0).
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t batches = 0;
  std::uint64_t probes = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t degraded = 0;  ///< Template-level inline degradations.
  double makespan_us = 0.0;
  double qps_ok = 0.0;  ///< Ok completions per second of makespan.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;

  /// Tail-latency attribution: the four phase shares of the Ok completion
  /// sitting at the p99 nearest-rank position (first completion in
  /// processing order with that latency — deterministic tie-break). They sum
  /// to p99_us up to floating-point rounding, so a scheduling regression
  /// shows *where* the tail moved (queue vs batch vs exec vs retry), not
  /// just that it moved.
  double p99_queue_us = 0.0;
  double p99_batch_us = 0.0;
  double p99_exec_us = 0.0;
  double p99_retry_us = 0.0;

  /// Total modeled device cycles attributed to requests: the fold, in
  /// completion-processing order, of every completion's device_cycles.
  /// Bit-exact conservation by construction — re-folding the completions
  /// list reproduces this value to the last bit (tested, and re-verified by
  /// tools/check_trace.py against the exported artifacts).
  double device_cycles_total = 0.0;
  double fault_device_cycles_total = 0.0;  ///< Same fold, fault-path share.
  std::uint64_t launches_total = 0;  ///< Grids run across all attempts.
};

/// Per-tenant device-cost rollup ("who is burning the device?"). Folded in
/// completion-processing order; rows sorted by tenant id.
struct TenantUsage {
  std::uint32_t tenant = 0;
  std::uint64_t requests = 0;  ///< Completions (any terminal status).
  std::uint64_t ok = 0;
  std::uint64_t launches = 0;  ///< Grids its requests ran.
  std::uint64_t retries = 0;   ///< Attempts beyond the first, per request.
  double device_cycles = 0.0;
  double fault_device_cycles = 0.0;  ///< Cycles burned on the fault path.
};

/// Nearest-rank percentile over an ascending-sorted sample (q in (0, 1]).
/// Returns 0 for an empty sample.
double percentile_nearest_rank(const std::vector<double>& sorted, double q);

/// Synthesize a deterministic open-loop workload: `num_requests` queries
/// with hash-jittered inter-arrival gaps averaging ~1/arrival_qps, a fixed
/// kind mix (50% SSSP, 30% SpMV, 20% PageRank), hash-picked pool graphs and
/// sources, and `cfg.deadline_us` budgets. Same (cfg.seed, pool) -> same
/// workload, byte for byte.
std::vector<Request> make_open_loop_workload(const SubgraphPool& pool,
                                             const ServeConfig& cfg,
                                             int num_requests,
                                             double arrival_qps);

/// The serving runtime: a deterministic discrete-event loop over virtual
/// time. Requests arrive open-loop, are admitted to the least-loaded healthy
/// shard (bounded queue, oldest-first shed), consolidated into batches, and
/// executed; transient launch faults retry with exponential backoff —
/// re-dispatched to a sibling shard when hedging is on or the breaker
/// tripped — and every request terminates as exactly one of Ok / Expired /
/// Shed. Single-threaded by construction; the only nondeterminism the
/// underlying simulator could exhibit (host engine choice) is erased by the
/// device model's bit-identical reports.
class Server {
 public:
  Server(const ServeConfig& cfg, const SubgraphPool& pool,
         const simt::ExecPolicy& policy);

  /// Run the request schedule to completion and return the stats. One-shot:
  /// a Server instance serves exactly one run (throws std::logic_error on
  /// reuse) so breaker and queue state can never leak between experiments.
  ServeStats run(std::span<const Request> requests);

  /// Terminal records, one per request, in completion-processing order.
  const std::vector<Completion>& completions() const { return completions_; }
  /// Per-tenant cost rollup, sorted by tenant id (valid after run()).
  const std::vector<TenantUsage>& tenant_usage() const { return tenants_; }
  const std::vector<Shard>& shards() const { return shards_; }
  const simt::VirtualClock& clock() const { return clock_; }
  /// Span recorder (populated when cfg.trace; see write_serve_trace).
  const ServeTracer& tracer() const { return tracer_; }
  /// Metrics registry (populated when cfg.metrics_interval_us > 0).
  const Telemetry& telemetry() const { return telemetry_; }

 private:
  enum class EvKind : std::uint8_t {
    kArrival,    ///< arg = query index.
    kBatchDone,  ///< shard finished its batch; try to dispatch again.
    kLinger,     ///< a partial batch's linger window closed.
    kRetry,      ///< arg = query index; re-admit for its next attempt.
    kProbe,      ///< a breaker cooldown expired; begin the probe.
  };
  struct Event {
    double t = 0.0;
    std::uint64_t seq = 0;  ///< Tie-break: schedule order.
    EvKind kind = EvKind::kArrival;
    std::uint64_t arg = 0;
    int shard = -1;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct QueryState {
    Request req;
    int attempts = 0;
    bool hedged = false;
    bool done = false;
    std::uint64_t faults_seen = 0;
    double enqueue_us = 0.0;  ///< Last time it entered a shard queue.
    int avoid_shard = -1;     ///< Hedged retries prefer a different shard.
    // Latency-attribution accumulators (see Completion): together they tile
    // [arrival, finish], each segment accounted exactly once.
    double queue_us = 0.0;
    double batch_us = 0.0;
    double exec_us = 0.0;
    double retry_us = 0.0;
    // Device-cost accumulators, folded in attempt order.
    double device_cycles = 0.0;
    double fault_device_cycles = 0.0;
    std::uint64_t launches = 0;
    std::string verdict;  ///< Critical-path verdict of the last attempt.
  };

  void push_event(double t, EvKind kind, std::uint64_t arg, int shard);
  /// Queue `idx` on the best healthy shard (skipping `avoid` when another
  /// choice exists); shed when no shard admits. Full queues shed their
  /// oldest entry to make room.
  void admit(std::uint64_t idx, double now, int avoid);
  void maybe_dispatch(Shard& s, double now);
  void dispatch_batch(Shard& s, double now, bool probe);
  void complete(std::uint64_t idx, RequestStatus status, double t, int shard,
                bool correct);
  void finalize_stats();
  /// Close one queue stay ending at `now`: fold it into the attribution
  /// accumulator and record the span. Call *before* anything resets
  /// enqueue_us (i.e. before a re-admission).
  void leave_queue(std::uint64_t idx, double now, int shard);
  /// Drain every telemetry sampling boundary at or before `upto_us`.
  void sample_telemetry(double upto_us);
  void sample_telemetry_at(double tick_us);

  ServeConfig cfg_;
  const SubgraphPool* pool_;
  std::vector<Shard> shards_;
  simt::VirtualClock clock_;
  ServeTracer tracer_;
  Telemetry telemetry_;
  simt::TickSampler sampler_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::vector<QueryState> states_;
  std::vector<Completion> completions_;
  std::vector<TenantUsage> tenants_;
  ServeStats stats_;
  std::uint64_t event_seq_ = 0;
  std::uint64_t attempt_seq_ = 0;
  std::uint64_t done_count_ = 0;
  bool ran_ = false;
};

}  // namespace nestpar::serve
