#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/apps/pagerank.h"
#include "src/graph/csr.h"
#include "src/matrix/csr_matrix.h"

namespace nestpar::serve {

/// Shape of the shared subgraph pool. All entries are deterministic for a
/// given spec (generator-seeded), so every shard — and every engine — sees
/// identical inputs.
struct PoolSpec {
  int num_graphs = 4;             ///< Distinct subgraphs in the pool.
  std::uint32_t base_nodes = 256; ///< Node count before scaling/variation.
  double scale = 1.0;             ///< Node-count scale factor.
  std::uint64_t seed = 1234;
};

/// The tenants' data: a fixed set of small weighted subgraphs with their
/// matrix/vector views and cached serial reference answers. References are
/// what the runtime verifies every `Ok` result against — the "never wrong
/// data" contract is checked, not assumed.
class SubgraphPool {
 public:
  explicit SubgraphPool(const PoolSpec& spec = {});

  int size() const { return static_cast<int>(entries_.size()); }
  const graph::Csr& graph(std::uint32_t id) const;
  const matrix::CsrMatrix& matrix(std::uint32_t id) const;
  std::span<const float> dense_x(std::uint32_t id) const;

  /// Deterministic source node with at least one outgoing edge (salt-hashed
  /// start, linear probe) — guarantees an SSSP query does real work.
  std::uint32_t pick_source(std::uint32_t id, std::uint64_t salt) const;

  /// Serial references (computed once, cached). Used for result verification;
  /// lazily filled, but the values are pure functions of the pool spec.
  const std::vector<float>& sssp_ref(std::uint32_t id,
                                     std::uint32_t src) const;
  const std::vector<double>& pagerank_ref(
      std::uint32_t id, const apps::PageRankOptions& opt) const;
  const std::vector<float>& spmv_ref(std::uint32_t id) const;

 private:
  struct Entry {
    graph::Csr g;
    matrix::CsrMatrix a;
    std::vector<float> x;
    std::vector<float> spmv;
    mutable std::map<std::uint32_t, std::vector<float>> sssp;
    mutable std::map<int, std::vector<double>> pagerank;  ///< By iterations.
  };
  const Entry& entry(std::uint32_t id) const;

  std::vector<Entry> entries_;
};

}  // namespace nestpar::serve
