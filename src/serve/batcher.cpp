#include "src/serve/batcher.h"

#include <algorithm>

namespace nestpar::serve {

BatchDecision Batcher::decide(std::size_t queue_len, double oldest_enqueue_us,
                              const ServeConfig& cfg, double now_us,
                              bool probe) {
  BatchDecision d;
  if (queue_len == 0) return d;
  if (probe) {
    d.dispatch = true;
    d.take = 1;
    return d;
  }
  if (queue_len >= static_cast<std::size_t>(cfg.batch_max)) {
    d.dispatch = true;
    d.take = cfg.batch_max;
    return d;
  }
  const double linger_closes = oldest_enqueue_us + cfg.batch_linger_us;
  if (linger_closes <= now_us) {
    d.dispatch = true;
    d.take = static_cast<int>(queue_len);
    return d;
  }
  d.wake_us = linger_closes;
  return d;
}

}  // namespace nestpar::serve
