#include "src/serve/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/serve/batcher.h"
#include "src/simt/fault.h"

namespace nestpar::serve {

double percentile_nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile_nearest_rank: q must be in (0,1]");
  }
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

std::vector<Request> make_open_loop_workload(const SubgraphPool& pool,
                                             const ServeConfig& cfg,
                                             int num_requests,
                                             double arrival_qps) {
  if (num_requests < 0) {
    throw std::invalid_argument("make_open_loop_workload: negative count");
  }
  if (arrival_qps <= 0.0) {
    throw std::invalid_argument("make_open_loop_workload: qps must be > 0");
  }
  const double base_gap_us = 1e6 / arrival_qps;
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(num_requests));
  double t = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    const std::uint64_t h = simt::fault_mix(
        cfg.seed ^ (0xa5a5a5a5a5a5a5a5ull +
                    static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    // Uniform jitter in [0.5, 1.5) of the base gap: open-loop arrivals with
    // burstiness, no libm involved (keeps the schedule bit-stable).
    const double jitter =
        0.5 + static_cast<double>(h & 1023ull) / 1024.0;
    t += base_gap_us * jitter;
    const std::uint64_t h2 = simt::fault_mix(h);
    Request q;
    q.id = static_cast<std::uint64_t>(i);
    const std::uint64_t mix = h2 % 10;
    q.kind = mix < 5   ? QueryKind::kSssp
             : mix < 8 ? QueryKind::kSpmv
                       : QueryKind::kPageRank;
    q.graph_id = static_cast<std::uint32_t>(
        (h2 >> 8) % static_cast<std::uint64_t>(pool.size()));
    q.source = pool.pick_source(q.graph_id, h2 >> 16);
    // Tenant from an independent re-mix of h2: adding tenancy leaves the
    // arrival schedule, kind mix, and graph/source picks byte-identical.
    q.tenant = cfg.num_tenants <= 1
                   ? 0
                   : static_cast<std::uint32_t>(
                         simt::fault_mix(h2 ^ 0x7e4a7c159e3779b9ull) %
                         static_cast<std::uint64_t>(cfg.num_tenants));
    q.deadline.arrival_us = t;
    q.deadline.budget_us = cfg.deadline_us;
    out.push_back(q);
  }
  return out;
}

Server::Server(const ServeConfig& cfg, const SubgraphPool& pool,
               const simt::ExecPolicy& policy)
    : cfg_(cfg),
      pool_(&pool),
      tracer_(cfg.trace, cfg.trace_max_spans),
      telemetry_(cfg.metrics_interval_us < 0.0 ? 0.0
                                               : cfg.metrics_interval_us),
      sampler_(cfg.metrics_interval_us < 0.0 ? 0.0 : cfg.metrics_interval_us) {
  cfg_.validate();
  shards_.reserve(static_cast<std::size_t>(cfg_.num_shards));
  for (int i = 0; i < cfg_.num_shards; ++i) {
    shards_.emplace_back(i, cfg_, pool, policy);
  }
}

void Server::push_event(double t, EvKind kind, std::uint64_t arg, int shard) {
  heap_.push(Event{t, event_seq_++, kind, arg, shard});
}

void Server::complete(std::uint64_t idx, RequestStatus status, double t,
                      int shard, bool correct) {
  QueryState& q = states_[idx];
  if (q.done) {
    throw std::logic_error("serve: request completed twice (id " +
                           std::to_string(q.req.id) + ")");
  }
  q.done = true;
  ++done_count_;
  Completion c;
  c.id = q.req.id;
  c.kind = q.req.kind;
  c.status = status;
  c.finish_us = t;
  c.latency_us = t - q.req.deadline.arrival_us;
  c.attempts = q.attempts;
  c.shard = shard;
  c.hedged = q.hedged;
  c.correct = correct;
  c.faults_seen = q.faults_seen;
  c.tenant = q.req.tenant;
  c.queue_us = q.queue_us;
  c.batch_us = q.batch_us;
  c.exec_us = q.exec_us;
  c.retry_us = q.retry_us;
  c.device_cycles = q.device_cycles;
  c.fault_device_cycles = q.fault_device_cycles;
  c.launches = q.launches;
  c.verdict = q.verdict;
  // Conservation fold: completion-processing order, so re-folding the
  // completions list reproduces the total bit-for-bit.
  stats_.device_cycles_total += q.device_cycles;
  stats_.fault_device_cycles_total += q.fault_device_cycles;
  stats_.launches_total += q.launches;
  completions_.push_back(c);
  switch (status) {
    case RequestStatus::kOk: ++stats_.ok; break;
    case RequestStatus::kExpired: ++stats_.expired; break;
    case RequestStatus::kShed: ++stats_.shed; break;
  }
  if (tracer_.enabled()) {
    tracer_.record(ServeSpan{q.req.id, SpanKind::kRequest,
                             q.req.deadline.arrival_us, t, shard, q.attempts,
                             q.hedged, 0});
    if (status == RequestStatus::kOk) {
      tracer_.record(ServeSpan{q.req.id, SpanKind::kVerify, t, t, shard,
                               q.attempts, correct, 0});
    }
    const SpanKind terminal = status == RequestStatus::kOk ? SpanKind::kOk
                              : status == RequestStatus::kExpired
                                  ? SpanKind::kExpired
                                  : SpanKind::kShed;
    tracer_.record(
        ServeSpan{q.req.id, terminal, t, t, shard, q.attempts, false, 0});
  }
}

void Server::leave_queue(std::uint64_t idx, double now, int shard) {
  QueryState& q = states_[idx];
  q.queue_us += now - q.enqueue_us;
  tracer_.record(ServeSpan{q.req.id, SpanKind::kQueue, q.enqueue_us, now,
                           shard, 0, false, 0});
}

void Server::sample_telemetry(double upto_us) {
  double tick = 0.0;
  while (sampler_.next_due(upto_us, &tick)) sample_telemetry_at(tick);
}

void Server::sample_telemetry_at(double tick_us) {
  for (const Shard& s : shards_) {
    const std::string prefix = "shard" + std::to_string(s.id());
    telemetry_.append(prefix + "/queue_depth", "queries", tick_us,
                      static_cast<double>(s.queue().size()));
    telemetry_.append(prefix + "/inflight", "queries", tick_us,
                      s.busy_until_us() > tick_us ? 1.0 : 0.0);
    telemetry_.append(prefix + "/breaker", "state", tick_us,
                      static_cast<double>(static_cast<int>(s.breaker().state())));
  }
  telemetry_.append("requests/ok", "queries", tick_us,
                    static_cast<double>(stats_.ok));
  telemetry_.append("requests/expired", "queries", tick_us,
                    static_cast<double>(stats_.expired));
  telemetry_.append("requests/shed", "queries", tick_us,
                    static_cast<double>(stats_.shed));
}

void Server::admit(std::uint64_t idx, double now, int avoid) {
  // Least-loaded healthy shard, lowest id on ties; a hedged retry avoids the
  // shard it just failed on when any other healthy shard exists.
  int best = -1;
  int best_avoided = -1;
  for (Shard& s : shards_) {
    if (!s.breaker().admits()) continue;
    auto consider = [&](int& slot) {
      if (slot < 0 ||
          s.queue().size() < shards_[static_cast<std::size_t>(slot)]
                                 .queue()
                                 .size()) {
        slot = s.id();
      }
    };
    if (s.id() == avoid) {
      consider(best_avoided);
    } else {
      consider(best);
    }
  }
  if (best < 0) best = best_avoided;
  if (best < 0) {
    complete(idx, RequestStatus::kShed, now, -1, false);
    return;
  }
  Shard& s = shards_[static_cast<std::size_t>(best)];
  if (s.queue().size() >= static_cast<std::size_t>(cfg_.queue_capacity)) {
    // Bounded queue: shed the *oldest* waiter — it is the most likely to
    // miss its deadline anyway — rather than refusing the newcomer.
    const std::uint64_t evict = s.queue().front();
    s.queue().pop_front();
    leave_queue(evict, now, s.id());
    complete(evict, RequestStatus::kShed, now, s.id(), false);
  }
  s.queue().push_back(idx);
  states_[idx].enqueue_us = now;
  tracer_.record(ServeSpan{states_[idx].req.id, SpanKind::kAdmit, now, now,
                           s.id(), 0, false, s.queue().size()});
  maybe_dispatch(s, now);
}

void Server::maybe_dispatch(Shard& s, double now) {
  if (s.busy_until_us() > now) return;  // kBatchDone will re-trigger.
  if (s.queue().empty()) return;
  const BreakerState bs = s.breaker().state();
  if (bs == BreakerState::kOpen) return;  // kProbe will re-trigger.
  const bool probe = bs == BreakerState::kHalfOpen;
  const double oldest = states_[s.queue().front()].enqueue_us;
  const BatchDecision d =
      Batcher::decide(s.queue().size(), oldest, cfg_, now, probe);
  if (!d.dispatch) {
    // Arm one wakeup for the linger window; re-arming the same instant is
    // suppressed so bursts don't flood the heap.
    if (s.pending_linger_us() != d.wake_us) {
      s.set_pending_linger(d.wake_us);
      push_event(d.wake_us, EvKind::kLinger, 0, s.id());
    }
    return;
  }
  dispatch_batch(s, now, probe);
}

void Server::dispatch_batch(Shard& s, double now, bool probe) {
  s.set_pending_linger(-1.0);
  const double oldest = states_[s.queue().front()].enqueue_us;
  const BatchDecision d =
      Batcher::decide(s.queue().size(), oldest, cfg_, now, probe);
  std::vector<std::uint64_t> batch;
  batch.reserve(static_cast<std::size_t>(d.take));
  for (int i = 0; i < d.take && !s.queue().empty(); ++i) {
    batch.push_back(s.queue().front());
    s.queue().pop_front();
    leave_queue(batch.back(), now, s.id());
  }
  // Batch identity for cross-layer tracing: the global dispatch ordinal.
  const std::uint64_t batch_id = stats_.batches;
  ++stats_.batches;
  s.note_batch();
  if (probe) ++stats_.probes;
  telemetry_.append("batch/occupancy", "queries", now,
                    static_cast<double>(batch.size()));

  double t = now;
  bool tripped = false;
  std::vector<std::uint64_t> leftover;
  for (const std::uint64_t idx : batch) {
    if (tripped) {
      leftover.push_back(idx);
      continue;
    }
    QueryState& q = states_[idx];
    // The query's turn starts now: everything since dispatch was batch
    // serialization wait (zero for the head of the batch).
    q.batch_us += t - now;
    tracer_.record(ServeSpan{q.req.id, SpanKind::kBatch, now, t, s.id(), 0,
                             false, 0, batch_id});
    if (telemetry_.enabled() && q.req.deadline.budget_us > 0.0) {
      telemetry_.append("deadline/budget_frac", "fraction", t,
                        q.req.deadline.remaining_us(t) /
                            q.req.deadline.budget_us);
    }
    while (true) {
      if (q.req.deadline.expired_at(t)) {
        // Budget gone (queueing or earlier attempts ate it): typed expiry,
        // no execution, never stale data.
        complete(idx, RequestStatus::kExpired, t, s.id(), false);
        break;
      }
      ++q.attempts;
      ++stats_.attempts;
      const double exec_begin = t;
      const std::uint64_t aseq = attempt_seq_++;
      const AttemptResult ar = s.run_query(q.req, aseq, batch_id);
      t += ar.exec_us;
      q.exec_us += ar.exec_us;
      q.device_cycles += ar.device_cycles;
      q.fault_device_cycles += ar.fault_device_cycles;
      q.launches += ar.launches;
      if (!ar.verdict.empty()) q.verdict = ar.verdict;
      tracer_.record(ServeSpan{q.req.id, SpanKind::kExec, exec_begin, t,
                               s.id(), q.attempts, ar.ok, ar.launches,
                               batch_id});
      if (tracer_.enabled() && !ar.slices.empty()) {
        tracer_.record_grids(q.req.id, q.req.tenant, batch_id, s.id(),
                             q.attempts, aseq, exec_begin, ar.slices);
      }
      q.faults_seen += ar.faults_injected;
      stats_.faults_injected += ar.faults_injected;
      stats_.degraded += ar.degraded;
      if (s.breaker().record_attempt(!ar.ok, t)) {
        ++stats_.breaker_trips;
        push_event(s.breaker().open_until_us(), EvKind::kProbe, 0, s.id());
        tripped = true;
      }
      if (ar.ok) {
        const RequestStatus status = q.req.deadline.expired_at(t)
                                         ? RequestStatus::kExpired
                                         : RequestStatus::kOk;
        if (status == RequestStatus::kOk && !ar.correct) ++stats_.wrong;
        complete(idx, status, t, s.id(),
                 status == RequestStatus::kOk && ar.correct);
        break;
      }
      // Failed attempt. Resource refusals are deterministic — retrying
      // cannot help — so only transient faults earn a retry.
      if (!simt::is_transient(ar.error) || q.attempts >= cfg_.max_attempts) {
        complete(idx, RequestStatus::kExpired, t, s.id(), false);
        break;
      }
      ++stats_.retries;
      const double wake =
          t + cfg_.backoff_base_us * std::ldexp(1.0, q.attempts - 1);
      q.retry_us += wake - t;
      tracer_.record(ServeSpan{q.req.id, SpanKind::kBackoff, t, wake, s.id(),
                               q.attempts, false, 0});
      if (tripped || cfg_.hedge) {
        // Hedged (or forced off a quarantined shard): the retry re-enters
        // admission after the backoff and prefers a sibling.
        if (!tripped) {
          ++stats_.hedges;
          q.hedged = true;
        }
        q.avoid_shard = s.id();
        push_event(wake, EvKind::kRetry, idx, -1);
        break;
      }
      t = wake;  // In-place backoff: the shard stalls, then retries.
    }
  }

  s.note_busy(t - now);
  s.set_busy_until(t);
  push_event(t, EvKind::kBatchDone, 0, s.id());

  if (tripped) {
    // Quarantine drain: everything this shard still holds is re-admitted to
    // healthy shards (or shed when none exists) right now. Attribution:
    // batch members that never got a turn waited in the aborted batch from
    // dispatch to the drain; queue entries waited in the queue until now.
    for (const std::uint64_t idx : leftover) {
      QueryState& q = states_[idx];
      q.batch_us += t - now;
      tracer_.record(ServeSpan{q.req.id, SpanKind::kBatch, now, t, s.id(), 0,
                               false, 0, batch_id});
    }
    for (const std::uint64_t idx : s.queue()) {
      leave_queue(idx, t, s.id());
    }
    leftover.insert(leftover.end(), s.queue().begin(), s.queue().end());
    s.queue().clear();
    for (const std::uint64_t idx : leftover) {
      admit(idx, t, s.id());
    }
  }
}

ServeStats Server::run(std::span<const Request> requests) {
  if (ran_) {
    throw std::logic_error("serve: Server::run is one-shot; build a new "
                           "Server for another run");
  }
  ran_ = true;
  states_.reserve(requests.size());
  for (const Request& r : requests) {
    QueryState st;
    st.req = r;
    states_.push_back(st);
  }
  completions_.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    push_event(states_[i].req.deadline.arrival_us, EvKind::kArrival,
               static_cast<std::uint64_t>(i), -1);
  }

  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    // Drain sampling boundaries at or before this event first: the gauges
    // observe the state *between* events, which is constant, so the series
    // is a pure function of the schedule.
    sample_telemetry(ev.t);
    clock_.advance_to(ev.t);
    const double now = clock_.now_us();
    switch (ev.kind) {
      case EvKind::kArrival:
        ++stats_.submitted;
        admit(ev.arg, now, -1);
        break;
      case EvKind::kBatchDone:
        maybe_dispatch(shards_[static_cast<std::size_t>(ev.shard)], now);
        break;
      case EvKind::kLinger: {
        Shard& s = shards_[static_cast<std::size_t>(ev.shard)];
        if (s.pending_linger_us() == now) s.set_pending_linger(-1.0);
        maybe_dispatch(s, now);
        break;
      }
      case EvKind::kRetry:
        admit(ev.arg, now, states_[ev.arg].avoid_shard);
        break;
      case EvKind::kProbe: {
        Shard& s = shards_[static_cast<std::size_t>(ev.shard)];
        if (s.breaker().try_begin_probe(now)) maybe_dispatch(s, now);
        break;
      }
    }
  }

  // One last drain so the series ends on the boundary at (or just before)
  // the makespan, observing the final state.
  sample_telemetry(clock_.now_us());

  if (done_count_ != states_.size()) {
    throw std::logic_error(
        "serve: event loop drained with " +
        std::to_string(states_.size() - done_count_) +
        " request(s) not terminal — scheduling bug");
  }
  finalize_stats();
  return stats_;
}

void Server::finalize_stats() {
  stats_.makespan_us = clock_.now_us();
  std::vector<double> ok_latencies;
  ok_latencies.reserve(static_cast<std::size_t>(stats_.ok));
  double sum = 0.0;
  for (const Completion& c : completions_) {
    if (c.status != RequestStatus::kOk) continue;
    ok_latencies.push_back(c.latency_us);
    sum += c.latency_us;
    stats_.max_us = std::max(stats_.max_us, c.latency_us);
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  stats_.p50_us = percentile_nearest_rank(ok_latencies, 0.50);
  stats_.p95_us = percentile_nearest_rank(ok_latencies, 0.95);
  stats_.p99_us = percentile_nearest_rank(ok_latencies, 0.99);
  stats_.mean_us = ok_latencies.empty()
                       ? 0.0
                       : sum / static_cast<double>(ok_latencies.size());
  stats_.qps_ok = stats_.makespan_us > 0.0
                      ? static_cast<double>(stats_.ok) /
                            (stats_.makespan_us / 1e6)
                      : 0.0;
  // Tail attribution: the phase split of the completion sitting at the p99
  // rank. Ties break to the first completion in processing order — a
  // deterministic choice, so the split is baseline-pinnable.
  if (!ok_latencies.empty()) {
    for (const Completion& c : completions_) {
      if (c.status != RequestStatus::kOk || c.latency_us != stats_.p99_us) {
        continue;
      }
      stats_.p99_queue_us = c.queue_us;
      stats_.p99_batch_us = c.batch_us;
      stats_.p99_exec_us = c.exec_us;
      stats_.p99_retry_us = c.retry_us;
      break;
    }
  }
  // Per-tenant rollup, folded in completion-processing order (deterministic;
  // the fold order matters only for the doubles' last bits). Rows sorted by
  // tenant id for stable output.
  std::vector<std::int64_t> slot(static_cast<std::size_t>(cfg_.num_tenants),
                                 -1);
  for (const Completion& c : completions_) {
    const auto tix = static_cast<std::size_t>(c.tenant);
    if (slot[tix] < 0) {
      slot[tix] = static_cast<std::int64_t>(tenants_.size());
      TenantUsage u;
      u.tenant = c.tenant;
      tenants_.push_back(u);
    }
    TenantUsage& u = tenants_[static_cast<std::size_t>(slot[tix])];
    ++u.requests;
    if (c.status == RequestStatus::kOk) ++u.ok;
    u.launches += c.launches;
    u.retries += c.attempts > 1 ? static_cast<std::uint64_t>(c.attempts - 1)
                                : 0;
    u.device_cycles += c.device_cycles;
    u.fault_device_cycles += c.fault_device_cycles;
  }
  std::sort(tenants_.begin(), tenants_.end(),
            [](const TenantUsage& a, const TenantUsage& b) {
              return a.tenant < b.tenant;
            });
}

}  // namespace nestpar::serve
