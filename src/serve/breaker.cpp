#include "src/serve/breaker.h"

namespace nestpar::serve {

std::string_view to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::transition(BreakerState to, double now_us) {
  log_.push_back(BreakerTransition{now_us, state_, to});
  state_ = to;
}

bool CircuitBreaker::record_attempt(bool faulted, double now_us) {
  switch (state_) {
    case BreakerState::kClosed: {
      window_.push_back(faulted);
      if (faulted) ++window_faults_;
      while (window_.size() > static_cast<std::size_t>(cfg_.window)) {
        if (window_.front()) --window_faults_;
        window_.pop_front();
      }
      if (window_.size() >= static_cast<std::size_t>(cfg_.min_samples)) {
        const double frac = static_cast<double>(window_faults_) /
                            static_cast<double>(window_.size());
        if (frac >= cfg_.trip_threshold) {
          transition(BreakerState::kOpen, now_us);
          open_until_us_ = now_us + cfg_.cooldown_us;
          ++trips_;
          window_.clear();
          window_faults_ = 0;
          return true;
        }
      }
      return false;
    }
    case BreakerState::kHalfOpen: {
      if (faulted) {
        transition(BreakerState::kOpen, now_us);
        open_until_us_ = now_us + cfg_.cooldown_us;
        ++trips_;
        return true;
      }
      transition(BreakerState::kClosed, now_us);
      return false;
    }
    case BreakerState::kOpen:
      // Attempts finishing after a mid-batch trip; the verdict is already
      // made, so they neither extend nor shorten the quarantine.
      return false;
  }
  return false;
}

bool CircuitBreaker::try_begin_probe(double now_us) {
  if (state_ != BreakerState::kOpen || now_us < open_until_us_) return false;
  transition(BreakerState::kHalfOpen, now_us);
  return true;
}

}  // namespace nestpar::serve
