#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/serve/request.h"
#include "src/serve/telemetry.h"
#include "src/simt/device.h"

namespace nestpar::serve {

/// Typed phases of a request's life in the serving runtime. Duration kinds
/// carry a [begin, end] interval; instant kinds mark a single point
/// (begin == end). Together they form the span taxonomy documented in
/// docs/ARCHITECTURE.md — the request-level tier of the observability stack,
/// above the kernel profiler and the critical-path analyzer.
enum class SpanKind : std::uint8_t {
  // Duration spans.
  kRequest,  ///< Root: arrival -> terminal state (one per request).
  kQueue,    ///< One stay in a shard queue (repeats on re-admission).
  kBatch,    ///< Dispatch -> this query's turn inside the batch.
  kExec,     ///< One simulated execution attempt on a shard.
  kBackoff,  ///< Retry backoff wait (in-place or hedged re-dispatch).
  // Instant markers.
  kAdmit,    ///< Admission decision: which shard took the query.
  kVerify,   ///< Result verification verdict (Ok completions only).
  kOk,       ///< Terminal: completed within deadline, verified.
  kExpired,  ///< Terminal: deadline or retry budget exhausted.
  kShed,     ///< Terminal: dropped by admission control.
};

std::string_view to_string(SpanKind k);

/// One recorded span. Field meaning varies by kind (see the accessors used
/// in trace.cpp): `shard` is the executing/queueing shard (-1 when none),
/// `attempt` the 1-based execution attempt for kExec/kBackoff and the
/// *winning* attempt for terminal markers, `flag` is kExec's "attempt ok" /
/// kVerify's "correct" / kRequest's "hedged", and `aux` carries kExec's
/// simulated launch count (kAdmit: queue depth after enqueue). `batch` is
/// the dispatch-batch ordinal for kBatch/kExec (0 elsewhere) — the join key
/// down to the scheduled-grid tier.
struct ServeSpan {
  std::uint64_t request = 0;  ///< Request id.
  SpanKind kind = SpanKind::kRequest;
  double begin_us = 0.0;
  double end_us = 0.0;
  int shard = -1;
  int attempt = 0;
  bool flag = false;
  std::uint64_t aux = 0;
  std::uint64_t batch = 0;
};

/// One scheduled grid of one execution attempt, re-based to the serving
/// run's virtual timeline (the attempt's session starts at the exec span's
/// begin). The device-cost tier of the unified trace: request spans join to
/// these via (request, attempt) and to siblings via `batch`.
struct GridEvent {
  std::uint64_t request = 0;
  std::uint32_t tenant = 0;
  std::uint64_t batch = 0;
  std::uint64_t attempt_seq = 0;  ///< Global attempt ordinal (unique).
  int shard = 0;
  int attempt = 0;                ///< 1-based per-request attempt.
  std::uint32_t node = 0;         ///< Launch-graph node id within the attempt.
  std::int64_t parent = -1;       ///< Parent node id (-1 for host grids).
  std::uint32_t stream = 0;
  bool device_origin = false;
  std::string name;
  double start_us = 0.0;          ///< Absolute virtual time.
  double dur_us = 0.0;
  double cycles = 0.0;            ///< Busy cycles (schedule end - start).
};

/// Span recorder for one serving run. Off by default: a disabled tracer
/// drops every record at one branch of cost, so tracing can stay compiled
/// into the hot path while trace-off runs remain byte-identical to
/// pre-tracer builds. Recording order is the server's deterministic
/// event-processing order, which is what makes exported traces
/// byte-identical across host engines, chaos included.
///
/// Ring cap: `max_spans` (0 = unbounded) bounds memory on long runs. When a
/// record would exceed the cap, the tracer evicts *whole requests* — every
/// span and grid event of the request owning the oldest retained span — so
/// the surviving spans always form complete, well-formed trees (no dangling
/// ends, no flow arrows into evicted slices).
class ServeTracer {
 public:
  ServeTracer() = default;
  explicit ServeTracer(bool enabled, std::size_t max_spans = 0)
      : enabled_(enabled), max_spans_(max_spans) {}

  bool enabled() const { return enabled_; }
  void record(const ServeSpan& span) {
    if (!enabled_) return;
    if (max_spans_ > 0 && spans_.size() >= max_spans_) evict_oldest_request();
    spans_.push_back(span);
  }
  /// Attach one attempt's scheduled-grid slices, re-based from session time
  /// to the run timeline (`exec_begin_us` + slice start).
  void record_grids(std::uint64_t request, std::uint32_t tenant,
                    std::uint64_t batch, int shard, int attempt,
                    std::uint64_t attempt_seq, double exec_begin_us,
                    const std::vector<simt::GridSlice>& slices);

  const std::vector<ServeSpan>& spans() const { return spans_; }
  const std::vector<GridEvent>& grids() const { return grids_; }
  /// Requests/spans dropped by ring-cap eviction (0 when unbounded).
  std::uint64_t evicted_requests() const { return evicted_requests_; }
  std::uint64_t evicted_spans() const { return evicted_spans_; }

 private:
  void evict_oldest_request();

  bool enabled_ = false;
  std::size_t max_spans_ = 0;
  std::vector<ServeSpan> spans_;
  std::vector<GridEvent> grids_;
  std::uint64_t evicted_requests_ = 0;
  std::uint64_t evicted_spans_ = 0;
};

/// Export one run's spans (plus optional telemetry counter tracks) as Chrome
/// trace-event JSON, Perfetto-compatible with the simulator traces from
/// src/simt/trace_export.cpp (shared layout: simt/trace_json.h):
///  - pid 1 row 0 ("requests"): nested async spans per request — request/
///    queue/batch/exec/backoff phases share the request id and nest by
///    timestamp — plus instant markers for admit/verify/terminal events;
///  - pid 1 rows 1..num_shards ("shard N"): one complete slice per execution
///    attempt, with attempt number, outcome, and simulated launch count in
///    the args (the serve-side mirror of the per-grid tracks);
///  - a flow arrow per Ok completion from the *winning* execution attempt's
///    slice on its shard row to the completion point on the request row —
///    under hedging this is what shows which attempt won;
///  - one counter track per telemetry series (when `telemetry` is non-null
///    and enabled).
///
/// When the tracer carries grid events (cfg.trace turns on per-grid slice
/// collection), the export becomes the *unified* cross-layer timeline:
///  - pid 2 + s ("device N"): every scheduled grid of every attempt as a
///    complete slice on its stream's row, stamped with request/tenant/batch;
///  - flow arrows chaining request -> batch (batch span to exec slice),
///    exec -> each host grid, and parent grid -> consolidated child grid;
///  - when `completions` is non-null, one "device_cycles" attribution record
///    (cat "serve-attribution") listing each completion's attributed cycles
///    in completion order with round-trip precision, plus their fold as
///    `total` — the conservation invariant tools/check_trace.py re-verifies
///    bit-exactly.
void write_serve_trace(std::ostream& out, const ServeTracer& tracer,
                       const Telemetry* telemetry, int num_shards,
                       const std::vector<Completion>* completions = nullptr);

}  // namespace nestpar::serve
