#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "src/serve/telemetry.h"

namespace nestpar::serve {

/// Typed phases of a request's life in the serving runtime. Duration kinds
/// carry a [begin, end] interval; instant kinds mark a single point
/// (begin == end). Together they form the span taxonomy documented in
/// docs/ARCHITECTURE.md — the request-level tier of the observability stack,
/// above the kernel profiler and the critical-path analyzer.
enum class SpanKind : std::uint8_t {
  // Duration spans.
  kRequest,  ///< Root: arrival -> terminal state (one per request).
  kQueue,    ///< One stay in a shard queue (repeats on re-admission).
  kBatch,    ///< Dispatch -> this query's turn inside the batch.
  kExec,     ///< One simulated execution attempt on a shard.
  kBackoff,  ///< Retry backoff wait (in-place or hedged re-dispatch).
  // Instant markers.
  kAdmit,    ///< Admission decision: which shard took the query.
  kVerify,   ///< Result verification verdict (Ok completions only).
  kOk,       ///< Terminal: completed within deadline, verified.
  kExpired,  ///< Terminal: deadline or retry budget exhausted.
  kShed,     ///< Terminal: dropped by admission control.
};

std::string_view to_string(SpanKind k);

/// One recorded span. Field meaning varies by kind (see the accessors used
/// in trace.cpp): `shard` is the executing/queueing shard (-1 when none),
/// `attempt` the 1-based execution attempt for kExec/kBackoff and the
/// *winning* attempt for terminal markers, `flag` is kExec's "attempt ok" /
/// kVerify's "correct" / kRequest's "hedged", and `aux` carries kExec's
/// simulated launch count (kAdmit: queue depth after enqueue).
struct ServeSpan {
  std::uint64_t request = 0;  ///< Request id.
  SpanKind kind = SpanKind::kRequest;
  double begin_us = 0.0;
  double end_us = 0.0;
  int shard = -1;
  int attempt = 0;
  bool flag = false;
  std::uint64_t aux = 0;
};

/// Span recorder for one serving run. Off by default: a disabled tracer
/// drops every record at one branch of cost, so tracing can stay compiled
/// into the hot path while trace-off runs remain byte-identical to
/// pre-tracer builds. Recording order is the server's deterministic
/// event-processing order, which is what makes exported traces
/// byte-identical across host engines, chaos included.
class ServeTracer {
 public:
  ServeTracer() = default;
  explicit ServeTracer(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void record(const ServeSpan& span) {
    if (enabled_) spans_.push_back(span);
  }
  const std::vector<ServeSpan>& spans() const { return spans_; }

 private:
  bool enabled_ = false;
  std::vector<ServeSpan> spans_;
};

/// Export one run's spans (plus optional telemetry counter tracks) as Chrome
/// trace-event JSON, Perfetto-compatible with the simulator traces from
/// src/simt/trace_export.cpp:
///  - row 0 ("requests"): nested async spans per request — request/queue/
///    batch/exec/backoff phases share the request id and nest by timestamp —
///    plus instant markers for admit/verify/terminal events;
///  - rows 1..num_shards ("shard N"): one complete slice per execution
///    attempt, with attempt number, outcome, and simulated launch count in
///    the args (the serve-side mirror of the per-grid tracks);
///  - a flow arrow per Ok completion from the *winning* execution attempt's
///    slice on its shard row to the completion point on the request row —
///    under hedging this is what shows which attempt won;
///  - one counter track per telemetry series (when `telemetry` is non-null
///    and enabled).
void write_serve_trace(std::ostream& out, const ServeTracer& tracer,
                       const Telemetry* telemetry, int num_shards);

}  // namespace nestpar::serve
