#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "src/serve/policy.h"

namespace nestpar::serve {

/// Circuit-breaker state machine (closed -> open -> half-open -> ...).
enum class BreakerState : std::uint8_t {
  kClosed,    ///< Healthy: admitting and executing normally.
  kOpen,      ///< Quarantined: no dispatch until the cooldown passes.
  kHalfOpen,  ///< Probing: one query decides recovery vs re-quarantine.
};

std::string_view to_string(BreakerState s);

/// One logged state change, on the virtual timeline.
struct BreakerTransition {
  double time_us = 0.0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
};

/// Per-shard circuit breaker over execution-attempt outcomes. Pure state
/// machine: no clock of its own (the server feeds virtual timestamps), no
/// randomness — the same attempt sequence always produces the same
/// transitions, which is what lets breaker trips be baseline-pinned.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(const BreakerConfig& cfg) : cfg_(cfg) {}

  BreakerState state() const { return state_; }
  double open_until_us() const { return open_until_us_; }
  int trips() const { return trips_; }
  const std::vector<BreakerTransition>& transitions() const { return log_; }

  /// False only while quarantined — half-open shards still accept queue
  /// admissions (they drain one probe at a time until the verdict).
  bool admits() const { return state_ != BreakerState::kOpen; }

  /// Record one execution attempt's outcome at virtual time `now_us`.
  /// Returns true when this attempt transitioned the breaker to kOpen
  /// (closed-state window crossing the threshold, or a failed probe) — the
  /// caller must then stop dispatching and schedule a probe at
  /// `open_until_us()`.
  bool record_attempt(bool faulted, double now_us);

  /// Cooldown-expiry hook: kOpen with `now_us >= open_until_us()` moves to
  /// kHalfOpen and returns true (dispatch one probe). Any other state is a
  /// stale wakeup; returns false.
  bool try_begin_probe(double now_us);

 private:
  void transition(BreakerState to, double now_us);

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_us_ = 0.0;
  int trips_ = 0;
  std::deque<bool> window_;  ///< Recent attempt outcomes; true = faulted.
  int window_faults_ = 0;
  std::vector<BreakerTransition> log_;
};

}  // namespace nestpar::serve
