#include "src/serve/shard.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/apps/pagerank.h"
#include "src/apps/spmv.h"
#include "src/apps/sssp.h"
#include "src/simt/fault.h"

namespace nestpar::serve {

namespace {

// Result verification against the serial references. Summation order differs
// between templates and the serial code, so floating-point results match to a
// tolerance; infinities (unreachable SSSP nodes) must agree exactly.
template <typename T>
bool values_match(const std::vector<T>& got, const std::vector<T>& want,
                  double tol) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double a = static_cast<double>(got[i]);
    const double b = static_cast<double>(want[i]);
    if (std::isinf(a) || std::isinf(b)) {
      if (a != b) return false;
      continue;
    }
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    if (std::abs(a - b) > tol * scale) return false;
  }
  return true;
}

}  // namespace

Shard::Shard(int id, const ServeConfig& cfg, const SubgraphPool& pool,
             const simt::ExecPolicy& policy)
    : id_(id),
      cfg_(&cfg),
      pool_(&pool),
      policy_(policy),
      dev_(std::make_unique<simt::Device>()),
      breaker_(cfg.breaker) {
  // Unified trace export needs per-grid timed slices; off otherwise so the
  // hot path allocates nothing extra (tracing off stays byte-invisible).
  dev_->set_collect_slices(cfg.trace);
}

AttemptResult Shard::run_query(const Request& q, std::uint64_t attempt_seq,
                               std::uint64_t batch_id) {
  // Fresh fault decisions per (shard, attempt): see class comment.
  simt::FaultConfig fc = cfg_->faults;
  fc.seed = simt::fault_mix(
      cfg_->faults.seed ^
      (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(id_) + 1)) ^
      attempt_seq);
  dev_->set_fault_config(fc);

  AttemptResult out;
  simt::Session s = dev_->session(policy_);
  // Cross-layer provenance: every grid this attempt records — consolidated
  // child grids included — is stamped with (request, batch, tenant). Today a
  // session serves one query, so the ambient context has a single member;
  // the attribution machinery underneath handles multi-member grids.
  simt::TraceContext ctx;
  ctx.batch_id = batch_id;
  ctx.members.push_back(simt::TraceMember{q.id, q.tenant, 1.0});
  s.set_trace_context(ctx);
  try {
    switch (q.kind) {
      case QueryKind::kSssp: {
        const apps::SsspResult r =
            apps::run_sssp(*dev_, pool_->graph(q.graph_id), q.source,
                           cfg_->tmpl, cfg_->loop_params);
        out.correct = values_match(
            r.dist, pool_->sssp_ref(q.graph_id, q.source), 1e-4);
        break;
      }
      case QueryKind::kPageRank: {
        apps::PageRankOptions opt;
        opt.iterations = cfg_->pagerank_iterations;
        const std::vector<double> r =
            apps::run_pagerank(*dev_, pool_->graph(q.graph_id), cfg_->tmpl,
                               cfg_->loop_params, opt);
        out.correct =
            values_match(r, pool_->pagerank_ref(q.graph_id, opt), 1e-6);
        break;
      }
      case QueryKind::kSpmv: {
        const std::vector<float> y =
            apps::run_spmv(*dev_, pool_->matrix(q.graph_id),
                           pool_->dense_x(q.graph_id), cfg_->tmpl,
                           cfg_->loop_params);
        out.correct = values_match(y, pool_->spmv_ref(q.graph_id), 1e-3);
        break;
      }
    }
    out.ok = true;
  } catch (const simt::SimtException& e) {
    out.ok = false;
    out.error = e.error();
  }
  // The timing pass covers whatever was recorded before a refusal too: a
  // failed attempt's partial work still spends modeled time.
  simt::RunReport rep = s.report();
  out.exec_us = rep.total_us;
  out.launches = rep.aggregate.host_launches + rep.aggregate.device_launches;
  out.faults_injected = rep.robustness.faults_injected;
  out.degraded = rep.robustness.degraded;
  // Per-attempt device-cost attribution. One member per session today, so
  // the fold over per_request is the attempt's whole attributed total.
  for (const simt::RequestCycles& rc : rep.attribution.per_request) {
    out.device_cycles += rc.cycles;
    out.fault_device_cycles += rc.fault_cycles;
  }
  if (rep.grids > 0) {
    out.verdict =
        std::string(to_string(classify_bottleneck(rep.critical_path.total)));
  }
  out.slices = std::move(rep.slices);

  ++counters_.attempts;
  if (!out.ok) ++counters_.failed_attempts;
  counters_.faults_injected += out.faults_injected;
  return out;
}

}  // namespace nestpar::serve
