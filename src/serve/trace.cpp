#include "src/serve/trace.h"

#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "src/simt/trace_json.h"

namespace nestpar::serve {

namespace tj = simt::trace_json;

std::string_view to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kBatch: return "batch";
    case SpanKind::kExec: return "exec";
    case SpanKind::kBackoff: return "backoff";
    case SpanKind::kAdmit: return "admit";
    case SpanKind::kVerify: return "verify";
    case SpanKind::kOk: return "ok";
    case SpanKind::kExpired: return "expired";
    case SpanKind::kShed: return "shed";
  }
  return "?";
}

namespace {

/// All serve events live in their own trace process, so a serve trace and a
/// simulator trace (pid 0, one row per stream) concatenate into one Perfetto
/// timeline without row collisions.
constexpr int kServePid = 1;

/// Row 0 is the per-request async track; shard s executes on row 1 + s.
constexpr std::uint32_t kRequestsTid = 0;

std::uint32_t shard_tid(int shard) {
  return 1 + static_cast<std::uint32_t>(shard < 0 ? 0 : shard);
}

bool is_instant(SpanKind k) {
  switch (k) {
    case SpanKind::kAdmit:
    case SpanKind::kVerify:
    case SpanKind::kOk:
    case SpanKind::kExpired:
    case SpanKind::kShed:
      return true;
    default:
      return false;
  }
}

/// Async begin with an open args object the caller fills and closes.
void open_async_begin(std::ostream& out, std::string_view name,
                      std::uint64_t id, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"serve\",\"ph\":\"b\",\"id\":"
      << id << ",\"ts\":" << ts_us << ",\"pid\":" << kServePid
      << ",\"tid\":" << kRequestsTid << ",\"args\":{";
}

void write_async_end(std::ostream& out, std::string_view name,
                     std::uint64_t id, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"serve\",\"ph\":\"e\",\"id\":"
      << id << ",\"ts\":" << ts_us << ",\"pid\":" << kServePid
      << ",\"tid\":" << kRequestsTid << "}";
}

/// Instant marker with an open args object.
void open_instant(std::ostream& out, std::string_view name, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"serve\",\"ph\":\"i\",\"s\":"
      << "\"t\",\"ts\":" << ts_us << ",\"pid\":" << kServePid
      << ",\"tid\":" << kRequestsTid << ",\"args\":{";
}

}  // namespace

void write_serve_trace(std::ostream& out, const ServeTracer& tracer,
                       const Telemetry* telemetry, int num_shards) {
  out << "{\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kServePid
      << ",\"args\":{\"name\":\"serve\"}}";
  out << ",";
  tj::write_thread_name(out, kServePid, kRequestsTid, "requests");
  for (int s = 0; s < num_shards; ++s) {
    out << ",";
    tj::write_thread_name(out, kServePid, shard_tid(s),
                          "shard " + std::to_string(s));
  }

  // (request, attempt) -> exec span, for the winning-attempt flow arrows.
  // Attempt numbers are global per request (they keep counting across
  // shards), so the pair is unique.
  std::map<std::pair<std::uint64_t, int>, const ServeSpan*> exec_by_attempt;

  for (const ServeSpan& sp : tracer.spans()) {
    const std::string_view name = to_string(sp.kind);
    if (is_instant(sp.kind)) {
      out << ",";
      open_instant(out, name, sp.begin_us);
      out << "\"request\":" << sp.request << ",\"shard\":" << sp.shard;
      if (sp.kind == SpanKind::kAdmit) {
        out << ",\"depth\":" << sp.aux;
      } else if (sp.kind == SpanKind::kVerify) {
        out << ",\"correct\":" << (sp.flag ? 1 : 0);
      } else {
        out << ",\"attempt\":" << sp.attempt;
      }
      out << "}}";
      continue;
    }
    // Duration span: one nested async b/e pair on the request row.
    out << ",";
    open_async_begin(out, name, sp.request, sp.begin_us);
    switch (sp.kind) {
      case SpanKind::kRequest:
        out << "\"hedged\":" << (sp.flag ? 1 : 0);
        break;
      case SpanKind::kExec:
        out << "\"shard\":" << sp.shard << ",\"attempt\":" << sp.attempt
            << ",\"ok\":" << (sp.flag ? 1 : 0);
        break;
      case SpanKind::kBackoff:
        out << "\"shard\":" << sp.shard << ",\"attempt\":" << sp.attempt;
        break;
      default:
        out << "\"shard\":" << sp.shard;
        break;
    }
    out << "}}";
    out << ",";
    write_async_end(out, name, sp.request, sp.end_us);

    if (sp.kind == SpanKind::kExec) {
      exec_by_attempt[{sp.request, sp.attempt}] = &sp;
      // The shard-row mirror: a complete slice on the executing shard's
      // timeline, the serve-side analogue of the simulator's per-grid
      // tracks.
      out << ",{\"name\":\"exec\",\"cat\":\"serve-shard\",\"ph\":\"X\","
          << "\"ts\":" << sp.begin_us
          << ",\"dur\":" << (sp.end_us - sp.begin_us)
          << ",\"pid\":" << kServePid << ",\"tid\":" << shard_tid(sp.shard)
          << ",\"args\":{\"request\":" << sp.request
          << ",\"attempt\":" << sp.attempt << ",\"ok\":" << (sp.flag ? 1 : 0)
          << ",\"launches\":" << sp.aux << "}}";
    }
  }

  // Winning-attempt flow arrows: Ok markers know which (shard, attempt)
  // produced the result; draw shard-row exec slice -> request completion.
  for (const ServeSpan& sp : tracer.spans()) {
    if (sp.kind != SpanKind::kOk) continue;
    const auto it = exec_by_attempt.find({sp.request, sp.attempt});
    if (it == exec_by_attempt.end()) continue;
    const ServeSpan& exec = *it->second;
    out << ",";
    tj::write_flow_start(out, "win", "serve-flow", sp.request, exec.begin_us,
                         kServePid, shard_tid(exec.shard));
    out << ",";
    tj::write_flow_end(out, "win", "serve-flow", sp.request, sp.begin_us,
                       kServePid, kRequestsTid);
  }

  if (telemetry != nullptr && telemetry->enabled()) {
    for (const TimeSeries& series : telemetry->series()) {
      for (const TimePoint& p : series.points) {
        out << ",";
        tj::write_counter(out, series.name, p.t_us, kServePid, p.value);
      }
    }
  }

  out << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace nestpar::serve
