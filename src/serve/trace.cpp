#include "src/serve/trace.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "src/simt/trace_json.h"

namespace nestpar::serve {

namespace tj = simt::trace_json;

std::string_view to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kBatch: return "batch";
    case SpanKind::kExec: return "exec";
    case SpanKind::kBackoff: return "backoff";
    case SpanKind::kAdmit: return "admit";
    case SpanKind::kVerify: return "verify";
    case SpanKind::kOk: return "ok";
    case SpanKind::kExpired: return "expired";
    case SpanKind::kShed: return "shed";
  }
  return "?";
}

void ServeTracer::record_grids(std::uint64_t request, std::uint32_t tenant,
                               std::uint64_t batch, int shard, int attempt,
                               std::uint64_t attempt_seq, double exec_begin_us,
                               const std::vector<simt::GridSlice>& slices) {
  if (!enabled_) return;
  grids_.reserve(grids_.size() + slices.size());
  for (const simt::GridSlice& s : slices) {
    GridEvent e;
    e.request = request;
    e.tenant = tenant;
    e.batch = batch;
    e.attempt_seq = attempt_seq;
    e.shard = shard;
    e.attempt = attempt;
    e.node = s.node;
    e.parent = s.parent;
    e.stream = s.stream;
    e.device_origin = s.origin == simt::LaunchOrigin::kDevice;
    e.name = s.name;
    e.start_us = exec_begin_us + s.start_us;
    e.dur_us = s.dur_us;
    e.cycles = s.cycles;
    grids_.push_back(std::move(e));
  }
}

void ServeTracer::evict_oldest_request() {
  if (spans_.empty()) return;
  // Whole-tree eviction: drop every span and grid event of the request that
  // owns the oldest retained span, so survivors stay well-formed.
  const std::uint64_t victim = spans_.front().request;
  const auto keep = [victim](std::uint64_t request) {
    return request != victim;
  };
  const std::size_t before = spans_.size();
  spans_.erase(std::remove_if(spans_.begin(), spans_.end(),
                              [&](const ServeSpan& s) {
                                return !keep(s.request);
                              }),
               spans_.end());
  grids_.erase(std::remove_if(grids_.begin(), grids_.end(),
                              [&](const GridEvent& g) {
                                return !keep(g.request);
                              }),
               grids_.end());
  evicted_spans_ += before - spans_.size();
  ++evicted_requests_;
}

namespace {

using tj::kServePid;
using tj::kServeRequestsTid;

bool is_instant(SpanKind k) {
  switch (k) {
    case SpanKind::kAdmit:
    case SpanKind::kVerify:
    case SpanKind::kOk:
    case SpanKind::kExpired:
    case SpanKind::kShed:
      return true;
    default:
      return false;
  }
}

/// Async begin with an open args object the caller fills and closes.
void open_async_begin(std::ostream& out, std::string_view name,
                      std::uint64_t id, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"serve\",\"ph\":\"b\",\"id\":"
      << id << ",\"ts\":" << ts_us << ",\"pid\":" << kServePid
      << ",\"tid\":" << kServeRequestsTid << ",\"args\":{";
}

void write_async_end(std::ostream& out, std::string_view name,
                     std::uint64_t id, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"serve\",\"ph\":\"e\",\"id\":"
      << id << ",\"ts\":" << ts_us << ",\"pid\":" << kServePid
      << ",\"tid\":" << kServeRequestsTid << "}";
}

/// Instant marker with an open args object.
void open_instant(std::ostream& out, std::string_view name, double ts_us) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"serve\",\"ph\":\"i\",\"s\":"
      << "\"t\",\"ts\":" << ts_us << ",\"pid\":" << kServePid
      << ",\"tid\":" << kServeRequestsTid << ",\"args\":{";
}

}  // namespace

void write_serve_trace(std::ostream& out, const ServeTracer& tracer,
                       const Telemetry* telemetry, int num_shards,
                       const std::vector<Completion>* completions) {
  out << "{\"traceEvents\":[";
  tj::write_process_name(out, kServePid, "serve");
  out << ",";
  tj::write_thread_name(out, kServePid, kServeRequestsTid, "requests");
  for (int s = 0; s < num_shards; ++s) {
    out << ",";
    tj::write_thread_name(out, kServePid, tj::serve_shard_tid(s),
                          tj::serve_shard_track_name(s));
  }

  // (request, attempt) -> exec span, for the winning-attempt flow arrows.
  // Attempt numbers are global per request (they keep counting across
  // shards), so the pair is unique.
  std::map<std::pair<std::uint64_t, int>, const ServeSpan*> exec_by_attempt;
  // (request, batch) -> kBatch span, anchoring request -> batch flow arrows.
  std::map<std::pair<std::uint64_t, std::uint64_t>, const ServeSpan*>
      batch_span;

  for (const ServeSpan& sp : tracer.spans()) {
    const std::string_view name = to_string(sp.kind);
    if (is_instant(sp.kind)) {
      out << ",";
      open_instant(out, name, sp.begin_us);
      out << "\"request\":" << sp.request << ",\"shard\":" << sp.shard;
      if (sp.kind == SpanKind::kAdmit) {
        out << ",\"depth\":" << sp.aux;
      } else if (sp.kind == SpanKind::kVerify) {
        out << ",\"correct\":" << (sp.flag ? 1 : 0);
      } else {
        out << ",\"attempt\":" << sp.attempt;
      }
      out << "}}";
      continue;
    }
    // Duration span: one nested async b/e pair on the request row.
    out << ",";
    open_async_begin(out, name, sp.request, sp.begin_us);
    switch (sp.kind) {
      case SpanKind::kRequest:
        out << "\"hedged\":" << (sp.flag ? 1 : 0);
        break;
      case SpanKind::kBatch:
        out << "\"shard\":" << sp.shard << ",\"batch\":" << sp.batch;
        batch_span[{sp.request, sp.batch}] = &sp;
        break;
      case SpanKind::kExec:
        out << "\"shard\":" << sp.shard << ",\"attempt\":" << sp.attempt
            << ",\"ok\":" << (sp.flag ? 1 : 0) << ",\"batch\":" << sp.batch;
        break;
      case SpanKind::kBackoff:
        out << "\"shard\":" << sp.shard << ",\"attempt\":" << sp.attempt;
        break;
      default:
        out << "\"shard\":" << sp.shard;
        break;
    }
    out << "}}";
    out << ",";
    write_async_end(out, name, sp.request, sp.end_us);

    if (sp.kind == SpanKind::kExec) {
      exec_by_attempt[{sp.request, sp.attempt}] = &sp;
      // The shard-row mirror: a complete slice on the executing shard's
      // timeline, the serve-side analogue of the simulator's per-grid
      // tracks.
      out << ",{\"name\":\"exec\",\"cat\":\"serve-shard\",\"ph\":\"X\","
          << "\"ts\":" << sp.begin_us
          << ",\"dur\":" << (sp.end_us - sp.begin_us)
          << ",\"pid\":" << kServePid
          << ",\"tid\":" << tj::serve_shard_tid(sp.shard)
          << ",\"args\":{\"request\":" << sp.request
          << ",\"attempt\":" << sp.attempt << ",\"ok\":" << (sp.flag ? 1 : 0)
          << ",\"launches\":" << sp.aux << ",\"batch\":" << sp.batch << "}}";
    }
  }

  // Winning-attempt flow arrows: Ok markers know which (shard, attempt)
  // produced the result; draw shard-row exec slice -> request completion.
  for (const ServeSpan& sp : tracer.spans()) {
    if (sp.kind != SpanKind::kOk) continue;
    const auto it = exec_by_attempt.find({sp.request, sp.attempt});
    if (it == exec_by_attempt.end()) continue;
    const ServeSpan& exec = *it->second;
    out << ",";
    tj::write_flow_start(out, "win", "serve-flow", sp.request, exec.begin_us,
                         kServePid, tj::serve_shard_tid(exec.shard));
    out << ",";
    tj::write_flow_end(out, "win", "serve-flow", sp.request, sp.begin_us,
                       kServePid, kServeRequestsTid);
  }

  // ---- Unified cross-layer timeline: scheduled grids per shard device ----
  const std::vector<GridEvent>& grids = tracer.grids();
  if (!grids.empty()) {
    // Device process rows: name each shard's device and every stream row it
    // used (streams are dense per attempt; the row set is their union).
    std::map<std::pair<int, std::uint32_t>, bool> rows;
    for (const GridEvent& g : grids) rows[{g.shard, g.stream}] = true;
    int last_pid = -1;
    for (const auto& [row, unused] : rows) {
      (void)unused;
      const int pid = tj::device_pid(row.first);
      if (pid != last_pid) {
        out << ",";
        tj::write_process_name(out, pid,
                               tj::device_process_name(row.first));
        last_pid = pid;
      }
      out << ",";
      tj::write_thread_name(out, pid, row.second,
                            tj::stream_track_name(row.second));
    }

    // Grid slices: every scheduled grid — consolidated child grids included —
    // stamped with its full provenance. Every slice carries "batch"
    // (tools/check_trace.py enforces this).
    for (const GridEvent& g : grids) {
      out << ",{\"name\":\"";
      tj::write_escaped(out, g.name);
      out << "\",\"cat\":\"serve-grid\",\"ph\":\"X\",\"ts\":" << g.start_us
          << ",\"dur\":" << g.dur_us << ",\"pid\":" << tj::device_pid(g.shard)
          << ",\"tid\":" << g.stream << ",\"args\":{\"request\":" << g.request
          << ",\"tenant\":" << g.tenant << ",\"batch\":" << g.batch
          << ",\"attempt\":" << g.attempt << ",\"node\":" << g.node
          << ",\"origin\":\"" << (g.device_origin ? "device" : "host")
          << "\",\"cycles\":" << g.cycles << "}}";
    }

    // Flow-arrow chain request -> batch -> grid -> child grid. Each arrow
    // pair gets a fresh id; the join semantics live in the cat/name.
    std::uint64_t flow_id = 0;
    // request -> batch: batch span (request row) to exec slice (shard row).
    for (const auto& [key, exec] : exec_by_attempt) {
      (void)key;
      const auto it = batch_span.find({exec->request, exec->batch});
      if (it == batch_span.end()) continue;
      out << ",";
      tj::write_flow_start(out, "batch", "serve-dispatch", flow_id,
                           it->second->begin_us, kServePid,
                           kServeRequestsTid);
      out << ",";
      tj::write_flow_end(out, "batch", "serve-dispatch", flow_id,
                         exec->begin_us, kServePid,
                         tj::serve_shard_tid(exec->shard));
      ++flow_id;
    }
    // exec -> host grid, and parent grid -> child grid.
    std::map<std::pair<std::uint64_t, std::uint32_t>, const GridEvent*>
        by_node;
    for (const GridEvent& g : grids) by_node[{g.attempt_seq, g.node}] = &g;
    for (const GridEvent& g : grids) {
      const int pid = tj::device_pid(g.shard);
      if (g.parent < 0) {
        const auto it = exec_by_attempt.find({g.request, g.attempt});
        if (it == exec_by_attempt.end()) continue;
        out << ",";
        tj::write_flow_start(out, "grid", "serve-grid-flow", flow_id,
                             it->second->begin_us, kServePid,
                             tj::serve_shard_tid(g.shard));
        out << ",";
        tj::write_flow_end(out, "grid", "serve-grid-flow", flow_id,
                           g.start_us, pid, g.stream);
        ++flow_id;
      } else {
        const auto it = by_node.find(
            {g.attempt_seq, static_cast<std::uint32_t>(g.parent)});
        if (it == by_node.end()) continue;
        const GridEvent& parent = *it->second;
        out << ",";
        tj::write_flow_start(out, "child-grid", "serve-grid-flow", flow_id,
                             parent.start_us, pid, parent.stream);
        out << ",";
        tj::write_flow_end(out, "child-grid", "serve-grid-flow", flow_id,
                           g.start_us, pid, g.stream);
        ++flow_id;
      }
    }
  }

  // ---- Per-request device-cycle attribution (conservation record) ----
  // Listed in completion-processing order with round-trip precision; `total`
  // is the fold of the listed entries in that order, so a validator summing
  // them left to right must reproduce it bit-exactly.
  if (completions != nullptr) {
    double total = 0.0;
    double fault_total = 0.0;
    out << ",{\"name\":\"device_cycles\",\"cat\":\"serve-attribution\","
        << "\"ph\":\"i\",\"s\":\"g\",\"ts\":0,\"pid\":" << kServePid
        << ",\"tid\":" << kServeRequestsTid << ",\"args\":{\"per_request\":[";
    for (std::size_t i = 0; i < completions->size(); ++i) {
      const Completion& c = (*completions)[i];
      if (i != 0) out << ",";
      out << "[" << c.id << "," << c.tenant << ",";
      tj::write_exact(out, c.device_cycles);
      out << "]";
      total += c.device_cycles;
      fault_total += c.fault_device_cycles;
    }
    out << "],\"total\":";
    tj::write_exact(out, total);
    out << ",\"fault_total\":";
    tj::write_exact(out, fault_total);
    out << "}}";
  }

  if (tracer.evicted_requests() > 0) {
    out << ",{\"name\":\"trace_ring_evictions\",\"ph\":\"M\",\"pid\":"
        << kServePid << ",\"args\":{\"requests\":" << tracer.evicted_requests()
        << ",\"spans\":" << tracer.evicted_spans() << "}}";
  }

  if (telemetry != nullptr && telemetry->enabled()) {
    for (const TimeSeries& series : telemetry->series()) {
      for (const TimePoint& p : series.points) {
        out << ",";
        tj::write_counter(out, series.name, p.t_us, kServePid, p.value);
      }
    }
  }

  out << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace nestpar::serve
