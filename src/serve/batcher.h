#pragma once

#include <cstddef>

#include "src/serve/policy.h"

namespace nestpar::serve {

/// What an idle shard with a non-empty queue should do right now.
struct BatchDecision {
  bool dispatch = false;  ///< Dispatch `take` queries immediately.
  int take = 0;
  /// When !dispatch: virtual time at which the linger window of the oldest
  /// queued query closes (the server arms a wakeup there).
  double wake_us = 0.0;
};

/// Batching policy, factored out of the event loop so it is unit-testable
/// and swappable. Pure function of (queue state, config, now): dispatch a
/// full batch immediately; otherwise hold a partial batch until the oldest
/// query has lingered `batch_linger_us`, trading a bounded latency hit for
/// better consolidation. Probe dispatches (half-open breaker) always take
/// exactly one query.
class Batcher {
 public:
  static BatchDecision decide(std::size_t queue_len, double oldest_enqueue_us,
                              const ServeConfig& cfg, double now_us,
                              bool probe);
};

}  // namespace nestpar::serve
