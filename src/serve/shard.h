#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "src/serve/breaker.h"
#include "src/serve/policy.h"
#include "src/serve/pool.h"
#include "src/serve/request.h"
#include "src/simt/device.h"

namespace nestpar::serve {

/// Outcome of one execution attempt of one query on one shard.
struct AttemptResult {
  bool ok = false;
  bool correct = false;      ///< Ok only: matched the pool's serial reference.
  double exec_us = 0.0;      ///< Modeled time this attempt consumed.
  std::uint64_t launches = 0;  ///< Grids (host + device) the attempt ran.
  std::uint64_t faults_injected = 0;
  std::uint64_t degraded = 0;  ///< Template-level inline degradations.
  simt::SimtError error = simt::SimtError::kOk;
  /// Device cycles this attempt's context-stamped grids burned (the fold of
  /// the attempt's per-grid attribution, bit-exact per attempt), and the
  /// share charged to the fault path.
  double device_cycles = 0.0;
  double fault_device_cycles = 0.0;
  /// Critical-path verdict of this attempt's launch subgraph.
  std::string verdict;
  /// Timed grid slices for unified trace export (only when cfg.trace; times
  /// are µs relative to the attempt's session start).
  std::vector<simt::GridSlice> slices;
};

/// Lifetime counters one shard accumulates (reported per shard by the CLI,
/// aggregated into ServeStats by the server).
struct ShardCounters {
  std::uint64_t batches = 0;
  std::uint64_t attempts = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t faults_injected = 0;
  /// Virtual time the shard spent executing batches — utilization is
  /// busy_us / makespan (nestpar_serve --metrics prints the rollup).
  double busy_us = 0.0;
};

/// One simulated device plus its queue and breaker. The shard knows how to
/// execute a single query attempt; all scheduling (batching, retries,
/// draining) is the server's job.
///
/// Each attempt runs in a fresh Session under a fault seed derived from
/// (config seed, shard id, global attempt sequence). The derivation matters:
/// `Recorder::reset()` — which every new session performs — restarts the
/// host-launch attempt counter the injector keys on, so without re-seeding, a
/// retried query would deterministically re-hit the identical faults and
/// retries could never succeed.
class Shard {
 public:
  Shard(int id, const ServeConfig& cfg, const SubgraphPool& pool,
        const simt::ExecPolicy& policy);

  int id() const { return id_; }
  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  std::deque<std::uint64_t>& queue() { return queue_; }
  const std::deque<std::uint64_t>& queue() const { return queue_; }
  const ShardCounters& counters() const { return counters_; }
  void note_batch() { ++counters_.batches; }
  void note_busy(double us) { counters_.busy_us += us; }

  double busy_until_us() const { return busy_until_us_; }
  void set_busy_until(double t_us) { busy_until_us_ = t_us; }
  double pending_linger_us() const { return pending_linger_us_; }
  void set_pending_linger(double t_us) { pending_linger_us_ = t_us; }

  /// Execute one attempt of `q` now, as part of dispatch batch `batch_id`.
  /// Catches the fault model's transient launch refusals (SimtException) and
  /// reports them as a failed attempt — the partial work's modeled time still
  /// counts against the timeline. The (request, batch, tenant) trace context
  /// is installed on the fresh session so every grid the attempt records —
  /// consolidated child grids included — carries its provenance.
  AttemptResult run_query(const Request& q, std::uint64_t attempt_seq,
                          std::uint64_t batch_id);

 private:
  int id_;
  const ServeConfig* cfg_;
  const SubgraphPool* pool_;
  simt::ExecPolicy policy_;
  std::unique_ptr<simt::Device> dev_;
  CircuitBreaker breaker_;
  std::deque<std::uint64_t> queue_;  ///< Query indices, front = oldest.
  double busy_until_us_ = 0.0;
  double pending_linger_us_ = -1.0;
  ShardCounters counters_;
};

}  // namespace nestpar::serve
