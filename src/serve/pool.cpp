#include "src/serve/pool.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/apps/sssp.h"
#include "src/graph/generators.h"
#include "src/simt/fault.h"

namespace nestpar::serve {

SubgraphPool::SubgraphPool(const PoolSpec& spec) {
  if (spec.num_graphs < 1) {
    throw std::invalid_argument("PoolSpec: num_graphs must be >= 1");
  }
  if (spec.scale <= 0.0) {
    throw std::invalid_argument("PoolSpec: scale must be > 0");
  }
  entries_.reserve(static_cast<std::size_t>(spec.num_graphs));
  for (int i = 0; i < spec.num_graphs; ++i) {
    const auto u = static_cast<std::uint64_t>(i);
    const std::uint64_t gseed = simt::fault_mix(spec.seed + u);
    // Vary size and skew per entry so the pool mixes light and heavy tenants.
    const double size_factor = 1.0 + 0.5 * static_cast<double>(i % 3);
    const auto nodes = std::max<std::uint32_t>(
        32, static_cast<std::uint32_t>(static_cast<double>(spec.base_nodes) *
                                       spec.scale * size_factor));
    const std::uint32_t min_deg = 1 + static_cast<std::uint32_t>(i % 2);
    const std::uint32_t max_deg = 8u << (i % 3);
    const double mean_deg = 3.0 + 2.0 * static_cast<double>(i % 3);
    Entry e;
    e.g = graph::generate_power_law(nodes, min_deg, max_deg, mean_deg, gseed,
                                    /*weighted=*/true);
    e.a = matrix::CsrMatrix::from_graph(e.g);
    e.x = matrix::make_dense_vector(e.g.num_nodes(),
                                    simt::fault_mix(gseed ^ 0x5eedull));
    e.spmv = matrix::spmv_serial(e.a, e.x);
    entries_.push_back(std::move(e));
  }
}

const SubgraphPool::Entry& SubgraphPool::entry(std::uint32_t id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("SubgraphPool: graph id " + std::to_string(id) +
                            " out of range (pool size " +
                            std::to_string(entries_.size()) + ")");
  }
  return entries_[id];
}

const graph::Csr& SubgraphPool::graph(std::uint32_t id) const {
  return entry(id).g;
}

const matrix::CsrMatrix& SubgraphPool::matrix(std::uint32_t id) const {
  return entry(id).a;
}

std::span<const float> SubgraphPool::dense_x(std::uint32_t id) const {
  return entry(id).x;
}

std::uint32_t SubgraphPool::pick_source(std::uint32_t id,
                                        std::uint64_t salt) const {
  const graph::Csr& g = entry(id).g;
  const std::uint32_t n = g.num_nodes();
  if (n == 0) return 0;
  const auto start =
      static_cast<std::uint32_t>(simt::fault_mix(salt) % n);
  for (std::uint32_t probe = 0; probe < n; ++probe) {
    const std::uint32_t v = (start + probe) % n;
    if (g.row_offsets[v + 1] > g.row_offsets[v]) return v;
  }
  return 0;  // Edgeless graph: any source yields the trivial answer.
}

const std::vector<float>& SubgraphPool::sssp_ref(std::uint32_t id,
                                                 std::uint32_t src) const {
  const Entry& e = entry(id);
  auto it = e.sssp.find(src);
  if (it == e.sssp.end()) {
    it = e.sssp.emplace(src, apps::sssp_serial(e.g, src)).first;
  }
  return it->second;
}

const std::vector<double>& SubgraphPool::pagerank_ref(
    std::uint32_t id, const apps::PageRankOptions& opt) const {
  const Entry& e = entry(id);
  auto it = e.pagerank.find(opt.iterations);
  if (it == e.pagerank.end()) {
    it = e.pagerank.emplace(opt.iterations, apps::pagerank_serial(e.g, opt))
             .first;
  }
  return it->second;
}

const std::vector<float>& SubgraphPool::spmv_ref(std::uint32_t id) const {
  return entry(id).spmv;
}

}  // namespace nestpar::serve
