#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nestpar::serve {

/// One sample of a time series: (virtual time, value).
struct TimePoint {
  double t_us = 0.0;
  double value = 0.0;
};

/// A named, unit-tagged series of virtual-time samples. Two flavors coexist
/// in one registry: tick-sampled gauges (queue depth, in-flight, breaker
/// state — appended at every TickSampler boundary, so the spacing is
/// regular) and event-driven series (batch occupancy, deadline-budget burn —
/// appended when the event happens, so the spacing follows the schedule).
/// Both are pure functions of (config, workload): the comparator gates their
/// rollups and the bytes are stable across engines and chaos reruns.
struct TimeSeries {
  std::string name;  ///< Hierarchical: "shard0/queue_depth", "requests/ok".
  std::string unit;  ///< "queries", "state", "fraction", ...
  std::vector<TimePoint> points;

  /// Rollups over the sample values (0 on an empty series).
  double max_value() const;
  double mean_value() const;
};

/// Central metrics registry for one serving run. Owned by serve::Server and
/// fed exclusively from the virtual timeline; a disabled registry (interval
/// 0, the default) records nothing and costs one branch per append, which is
/// what keeps metrics-off runs byte-identical to pre-telemetry builds.
///
/// Series are kept in first-registration order — the order the server's
/// deterministic event loop first touched them — so serialization needs no
/// sorting step to be stable.
class Telemetry {
 public:
  Telemetry() = default;
  /// Interval between gauge samples; 0 disables the registry entirely.
  /// Throws std::invalid_argument on a negative interval.
  explicit Telemetry(double interval_us);

  bool enabled() const { return interval_us_ > 0.0; }
  double interval_us() const { return interval_us_; }

  /// Append one sample to the named series, creating it on first use.
  /// No-op when disabled. `unit` is fixed at creation; later appends to the
  /// same name ignore the argument.
  void append(const std::string& name, const std::string& unit, double t_us,
              double value);

  const std::vector<TimeSeries>& series() const { return series_; }

 private:
  TimeSeries& series_for(const std::string& name, const std::string& unit);

  double interval_us_ = 0.0;
  std::vector<TimeSeries> series_;
};

}  // namespace nestpar::serve
