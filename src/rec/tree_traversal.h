#pragma once

#include <cstdint>
#include <vector>

#include "src/simt/cpu_model.h"
#include "src/simt/device.h"
#include "src/tree/tree.h"

namespace nestpar::rec {

/// The paper's three parallelization templates for recursive computations
/// (Figure 3): flat (recursion-eliminated, thread-mapped), naive recursion
/// (thread-based: every thread may spawn a single-block child kernel), and
/// hierarchical recursion (block-based over children, thread-based over
/// grandchildren; one nested launch per block).
enum class RecTemplate {
  kFlat,
  kRecNaive,
  kRecHier,
  /// Autoropes-style iterative traversal (Goldfarb et al. [4], the
  /// transformation the paper names for extracting iterative tree code):
  /// one thread per subtree at a split level runs an explicit-stack DFS
  /// (no atomics at all); the small crown above the split level is folded
  /// level by level afterwards.
  kAutoropes,
};
const char* to_string(RecTemplate t);

/// The two tree traversal algorithms evaluated in §III.C. Both produce one
/// uint32 per node, initialized to 1:
///  - kDescendants: value[v] = size of the subtree rooted at v (self included).
///  - kHeights:     value[v] = 1 for leaves, 1 + max(children) otherwise.
enum class TreeAlgo {
  kDescendants,
  kHeights,
};
const char* to_string(TreeAlgo a);

/// Tuning knobs for the recursive templates.
struct RecOptions {
  int flat_block_size = 192;  ///< Thread-mapped (flat) kernel block size.
  int rec_block_size = 64;    ///< Block size of nested/recursive kernels.
  /// Streams used for nested launches from one block: 1 = default child
  /// stream only; 2 adds one extra stream per block (the paper's "stream"
  /// variants; more than 2 only added overhead in the paper).
  int streams_per_block = 1;
  int max_grid_blocks = 65535;
};

/// Run a traversal on the simulated GPU; returns the per-node values.
/// Launches land in `dev`'s current session (reset before, report after).
std::vector<std::uint32_t> run_tree_traversal(simt::Device& dev,
                                              const tree::Tree& t,
                                              TreeAlgo algo, RecTemplate tmpl,
                                              const RecOptions& opt = {});

/// Serial CPU references (charging `timer` if given). The recursive form is
/// the paper's Figure 3(a); the iterative form is the recursion-eliminated
/// Figure 3(b) (a reverse-BFS sweep over the node array).
std::vector<std::uint32_t> tree_traversal_serial_recursive(
    const tree::Tree& t, TreeAlgo algo, simt::CpuTimer* timer = nullptr);
std::vector<std::uint32_t> tree_traversal_serial_iterative(
    const tree::Tree& t, TreeAlgo algo, simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::rec
