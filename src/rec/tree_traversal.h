#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/simt/cpu_model.h"
#include "src/simt/device.h"
#include "src/simt/exec_policy.h"
#include "src/tree/tree.h"

namespace nestpar::rec {

/// The paper's three parallelization templates for recursive computations
/// (Figure 3): flat (recursion-eliminated, thread-mapped), naive recursion
/// (thread-based: every thread may spawn a single-block child kernel), and
/// hierarchical recursion (block-based over children, thread-based over
/// grandchildren; one nested launch per block).
enum class RecTemplate {
  kFlat,
  kRecNaive,
  kRecHier,
  /// Autoropes-style iterative traversal (Goldfarb et al. [4], the
  /// transformation the paper names for extracting iterative tree code):
  /// one thread per subtree at a split level runs an explicit-stack DFS
  /// (no atomics at all); the small crown above the split level is folded
  /// level by level afterwards.
  kAutoropes,
  /// Workload-consolidation analogue for recursion: a controller thread
  /// walks the tree's levels bottom-up and launches ONE aggregated child
  /// grid per level carrying every internal node of that level as a work
  /// descriptor (lanes evenly split over the level's concatenated child
  /// edges) — device launches scale with tree depth, not node count.
  kRecCons,
};

/// All five, in presentation order.
inline constexpr RecTemplate kAllRecTemplates[] = {
    RecTemplate::kFlat,
    RecTemplate::kRecNaive,
    RecTemplate::kRecHier,
    RecTemplate::kAutoropes,
    RecTemplate::kRecCons,
};

/// Canonical template name ("flat", "rec-naive", ...). Points at a string
/// literal and never dangles.
std::string_view name(RecTemplate t);

/// Inverse of `name`; throws std::invalid_argument listing valid names.
RecTemplate parse_rec_template(std::string_view s);

/// The two tree traversal algorithms evaluated in §III.C. Both produce one
/// uint32 per node, initialized to 1:
///  - kDescendants: value[v] = size of the subtree rooted at v (self included).
///  - kHeights:     value[v] = 1 for leaves, 1 + max(children) otherwise.
enum class TreeAlgo {
  kDescendants,
  kHeights,
};

inline constexpr TreeAlgo kAllTreeAlgos[] = {
    TreeAlgo::kDescendants,
    TreeAlgo::kHeights,
};

/// Canonical algorithm name ("descendants" / "heights").
std::string_view name(TreeAlgo a);

/// Inverse of `name`; throws std::invalid_argument listing valid names.
TreeAlgo parse_tree_algo(std::string_view s);

/// Tuning knobs for the recursive templates.
struct RecOptions {
  int flat_block_size = 192;  ///< Thread-mapped (flat) kernel block size.
  int rec_block_size = 64;    ///< Block size of nested/recursive kernels.
  /// Streams used for nested launches from one block: 1 = default child
  /// stream only; 2 adds one extra stream per block (the paper's "stream"
  /// variants; more than 2 only added overhead in the paper).
  int streams_per_block = 1;
  int max_grid_blocks = 65535;

  /// Throws std::invalid_argument naming the offending field if any knob is
  /// out of range. Called by run_tree_traversal before launching anything.
  void validate() const;
};

/// Everything one traversal needs: the algorithm, the template, its tuning
/// knobs, and — optionally — an ExecPolicy. Mirrors nested::LoopRun: with a
/// policy set, run_tree_traversal opens a fresh session under it and the
/// returned report covers exactly that traversal; without one, launches land
/// in `dev`'s ambient session (callers time it via dev.report()) and the
/// returned report is empty.
struct TreeRun {
  TreeAlgo algo = TreeAlgo::kDescendants;
  RecTemplate tmpl = RecTemplate::kFlat;
  RecOptions opt;
  std::optional<simt::ExecPolicy> policy;
};

/// Result of a run: per-node values, plus the timing report when
/// `TreeRun::policy` was set (empty otherwise).
struct TreeRunResult {
  std::vector<std::uint32_t> values;
  simt::RunReport report;
};

/// The single entry point: execute the traversal once on `dev` as described
/// by `run`.
TreeRunResult run_tree_traversal(simt::Device& dev, const tree::Tree& t,
                                 const TreeRun& run);

/// Serial CPU references (charging `timer` if given). The recursive form is
/// the paper's Figure 3(a); the iterative form is the recursion-eliminated
/// Figure 3(b) (a reverse-BFS sweep over the node array).
std::vector<std::uint32_t> tree_traversal_serial_recursive(
    const tree::Tree& t, TreeAlgo algo, simt::CpuTimer* timer = nullptr);
std::vector<std::uint32_t> tree_traversal_serial_iterative(
    const tree::Tree& t, TreeAlgo algo, simt::CpuTimer* timer = nullptr);

}  // namespace nestpar::rec
