#include "src/rec/tree_traversal.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/simt/aligned.h"
#include "src/simt/profiler.h"

namespace nestpar::rec {

using simt::BlockCtx;
using simt::Device;
using simt::Kernel;
using simt::LaneCtx;
using simt::LaunchConfig;
using tree::Tree;

std::string_view name(RecTemplate t) {
  switch (t) {
    case RecTemplate::kFlat: return "flat";
    case RecTemplate::kRecNaive: return "rec-naive";
    case RecTemplate::kRecHier: return "rec-hier";
    case RecTemplate::kAutoropes: return "autoropes";
    case RecTemplate::kRecCons: return "rec-cons";
  }
  return "?";
}

std::string_view name(TreeAlgo a) {
  switch (a) {
    case TreeAlgo::kDescendants: return "descendants";
    case TreeAlgo::kHeights: return "heights";
  }
  return "?";
}

namespace {

template <class Enum, class Range>
Enum parse_enum(std::string_view s, const Range& all, const char* what) {
  for (const Enum e : all) {
    if (s == name(e)) return e;
  }
  std::string valid;
  for (const Enum e : all) {
    if (!valid.empty()) valid += ", ";
    valid += name(e);
  }
  throw std::invalid_argument("unknown " + std::string(what) + " '" +
                              std::string(s) + "' (valid: " + valid + ")");
}

}  // namespace

RecTemplate parse_rec_template(std::string_view s) {
  return parse_enum<RecTemplate>(s, kAllRecTemplates, "recursive template");
}

TreeAlgo parse_tree_algo(std::string_view s) {
  return parse_enum<TreeAlgo>(s, kAllTreeAlgos, "tree algorithm");
}

void RecOptions::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("RecOptions: " + what);
  };
  if (flat_block_size < 1) {
    fail("flat_block_size must be positive (got " +
         std::to_string(flat_block_size) + ")");
  }
  if (rec_block_size < 1) {
    fail("rec_block_size must be positive (got " +
         std::to_string(rec_block_size) + ")");
  }
  if (streams_per_block < 1) {
    fail("streams_per_block must be >= 1 (got " +
         std::to_string(streams_per_block) + ")");
  }
  if (max_grid_blocks < 1) {
    fail("max_grid_blocks must be positive (got " +
         std::to_string(max_grid_blocks) + ")");
  }
}

namespace {

/// Reduction semantics of the two traversals, shared by every template.
struct TraversalOps {
  TreeAlgo algo;

  /// Value of a node whose `nc` children are all leaves (or nc == 0).
  std::uint32_t two_level(std::uint32_t nc) const {
    if (algo == TreeAlgo::kDescendants) return 1 + nc;
    return nc > 0 ? 2 : 1;
  }
  /// Flat kernel: a node at distance `dist` below ancestor `cell`.
  void flat_update(LaneCtx& t, std::uint32_t* cell, std::uint32_t dist) const {
    if (algo == TreeAlgo::kDescendants) {
      t.atomic_add(cell, 1u);
    } else {
      t.atomic_max(cell, dist + 1);
    }
  }
  /// Recursive kernels: fold a finished child value into its parent.
  void combine(LaneCtx& t, std::uint32_t* parent,
               std::uint32_t child_value) const {
    if (algo == TreeAlgo::kDescendants) {
      t.atomic_add(parent, child_value);
    } else {
      t.atomic_max(parent, child_value + 1);
    }
  }
};

struct RecCtx {
  const Tree* tree;
  std::uint32_t* values;
  TraversalOps ops;
  RecOptions opt;
  std::string base_name;
};

bool is_internal(const Tree& t, std::uint32_t v) {
  return t.num_children(v) > 0;
}

/// Charge the loads a kernel performs to test whether `v` has children.
bool charged_is_internal(LaneCtx& t, const Tree& tr, std::uint32_t v) {
  const std::uint32_t off = t.ld(&tr.child_offsets[v]);
  const std::uint32_t end = t.ld(&tr.child_offsets[v + 1]);
  return end > off;
}

/// Degraded path shared by rec-naive/rec-hier: when a child launch is
/// refused (pool/depth/heap exhaustion or a persistent injected fault), the
/// refusing lane traverses the subtree iteratively — the same explicit
/// post-order stack autoropes uses — so every node under `root` still ends
/// with its final value and the parent-side combine stays valid.
void iterative_subtree_fallback(LaneCtx& t, const Tree& tr,
                                const TraversalOps& ops, std::uint32_t* values,
                                std::uint32_t root) {
  struct Frame {
    std::uint32_t node;
    std::uint32_t next_child;  // index into child_offsets range
    std::uint32_t acc;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root, 0, 1});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const std::uint32_t off = t.ld(&tr.child_offsets[f.node]);
    const std::uint32_t end = t.ld(&tr.child_offsets[f.node + 1]);
    if (off + f.next_child < end) {
      const std::uint32_t c = t.ld(&tr.children[off + f.next_child]);
      ++f.next_child;
      stack.push_back(Frame{c, 0, 1});
    } else {
      const Frame done = f;
      t.st(&values[done.node], done.acc);
      stack.pop_back();
      if (!stack.empty()) {
        t.compute(1);
        stack.back().acc = ops.algo == TreeAlgo::kDescendants
                               ? stack.back().acc + done.acc
                               : std::max(stack.back().acc, done.acc + 1);
      }
    }
  }
}

void launch_init_kernel(Device& dev, std::uint32_t* values, std::uint32_t n,
                        const std::string& base, const RecOptions& opt) {
  LaunchConfig cfg;
  cfg.block_threads = opt.flat_block_size;
  cfg.grid_blocks = Device::blocks_for(n, opt.flat_block_size,
                                       opt.max_grid_blocks);
  cfg.name = base + "/init";
  dev.launch_threads(cfg, [values, n](LaneCtx& t) {
    for (std::int64_t i = t.global_idx(); i < n; i += t.grid_threads()) {
      t.st(&values[i], 1u);
    }
  });
}

// --- Flat template (Figure 3(c)) --------------------------------------------

void run_flat(Device& dev, const Tree& tr, std::uint32_t* values,
              const TraversalOps& ops, const RecOptions& opt,
              const std::string& base) {
  const std::uint32_t n = tr.num_nodes();
  LaunchConfig cfg;
  cfg.block_threads = opt.flat_block_size;
  cfg.grid_blocks = Device::blocks_for(n, opt.flat_block_size,
                                       opt.max_grid_blocks);
  cfg.name = base + "/flat";
  dev.launch_threads(cfg, [&tr, values, ops, n](LaneCtx& t) {
    for (std::int64_t v = t.global_idx(); v < n; v += t.grid_threads()) {
      // Walk to the root, updating every ancestor (the atomic pressure the
      // paper's Figs. 7/8 profiling columns count).
      std::uint32_t p = t.ld(&tr.parent[v]);
      std::uint32_t dist = 1;
      while (p != Tree::kNoParent) {
        ops.flat_update(t, &values[p], dist);
        p = t.ld(&tr.parent[p]);
        ++dist;
      }
    }
  });
}

// --- Naive recursion (Figure 3(d)) -------------------------------------------

Kernel make_naive_kernel(std::shared_ptr<const RecCtx> ctx, std::uint32_t node);

Kernel make_naive_kernel(std::shared_ptr<const RecCtx> ctx,
                         std::uint32_t node) {
  return [ctx, node](BlockCtx& blk) {
    const Tree& tr = *ctx->tree;
    blk.each_thread([&](LaneCtx& t) {
      const std::uint32_t off = t.ld(&tr.child_offsets[node]);
      const std::uint32_t end = t.ld(&tr.child_offsets[node + 1]);
      for (std::uint32_t j = off + static_cast<std::uint32_t>(t.thread_idx());
           j < end; j += static_cast<std::uint32_t>(t.block_dim())) {
        const std::uint32_t c = t.ld(&tr.children[j]);
        if (charged_is_internal(t, tr, c)) {
          // Thread-level recursion: a single-block child kernel per internal
          // child; completed (synchronized) before the combine below.
          LaunchConfig cc;
          cc.grid_blocks = 1;
          cc.block_threads = ctx->opt.rec_block_size;
          cc.name = ctx->base_name + "/rec-naive";
          const int slot =
              static_cast<int>(j % static_cast<std::uint32_t>(
                                       ctx->opt.streams_per_block)) -
              1;
          if (!t.launch_with_retry(cc, make_naive_kernel(ctx, c), slot)) {
            t.note_degraded();
            iterative_subtree_fallback(t, tr, ctx->ops, ctx->values, c);
          }
        }
        const std::uint32_t cv = t.ld(&ctx->values[c]);
        ctx->ops.combine(t, &ctx->values[node], cv);
      }
    });
  };
}

// --- Hierarchical recursion (Figure 3(e)) ------------------------------------

Kernel make_hier_kernel(std::shared_ptr<const RecCtx> ctx, std::uint32_t node);

Kernel make_hier_kernel(std::shared_ptr<const RecCtx> ctx,
                        std::uint32_t node) {
  return [ctx, node](BlockCtx& blk) {
    const Tree& tr = *ctx->tree;
    auto deep = blk.shared_array<std::int32_t>(1);
    auto child_slot = blk.shared_array<std::uint32_t>(1);

    // Block-based mapping over the node's children; thread-based mapping
    // over the block's child's children (the node's grandchildren).
    blk.each_thread([&](LaneCtx& t) {
      const std::uint32_t off = t.ld(&tr.child_offsets[node]);
      const std::uint32_t c =
          t.ld(&tr.children[off + static_cast<std::uint32_t>(blk.block_idx())]);
      if (t.thread_idx() == 0) t.sh_st(&child_slot[0], c);
      const std::uint32_t coff = t.ld(&tr.child_offsets[c]);
      const std::uint32_t cend = t.ld(&tr.child_offsets[c + 1]);
      for (std::uint32_t j = coff + static_cast<std::uint32_t>(t.thread_idx());
           j < cend; j += static_cast<std::uint32_t>(t.block_dim())) {
        const std::uint32_t g = t.ld(&tr.children[j]);
        if (charged_is_internal(t, tr, g)) t.sh_st(&deep[0], 1);
      }
    });

    blk.each_thread([&](LaneCtx& t) {
      if (t.thread_idx() != 0) return;
      const std::uint32_t c = t.sh_ld(&child_slot[0]);
      const std::uint32_t nc = tr.num_children(c);
      if (t.sh_ld(&deep[0]) != 0) {
        // Some grandchild is internal: recurse on the child. One nested
        // launch per block — the "fewer, larger grids" property.
        LaunchConfig cc;
        cc.grid_blocks = static_cast<int>(nc);
        cc.block_threads = ctx->opt.rec_block_size;
        cc.name = ctx->base_name + "/rec-hier";
        const int slot =
            blk.block_idx() % ctx->opt.streams_per_block == 0 ? -1 : 0;
        if (!t.launch_with_retry(cc, make_hier_kernel(ctx, c), slot)) {
          t.note_degraded();
          iterative_subtree_fallback(t, tr, ctx->ops, ctx->values, c);
        }
      } else if (nc > 0) {
        // All grandchildren are leaves: the block computed the child's value
        // without recursion (thread-parallel pass above).
        t.st(&ctx->values[c], ctx->ops.two_level(nc));
      }
      const std::uint32_t cv = t.ld(&ctx->values[c]);
      ctx->ops.combine(t, &ctx->values[node], cv);
    });
  };
}

// --- Autoropes-style iterative traversal ([4]) -------------------------------

/// Pick the shallowest level with enough subtree roots to fill the device;
/// falls back to the deepest level for small trees.
std::uint32_t choose_split_level(const Tree& tr, int want_threads) {
  const std::uint32_t max_l = tr.max_level();
  for (std::uint32_t l = 1; l <= max_l; ++l) {
    const auto [first, last] = tr.level_range(l);
    if (last - first >= static_cast<std::uint32_t>(want_threads)) return l;
  }
  return max_l;
}

void run_autoropes(Device& dev, const Tree& tr, std::uint32_t* values,
                   const TraversalOps& ops, const RecOptions& opt,
                   const std::string& base) {
  const std::uint32_t split =
      choose_split_level(tr, 2 * dev.spec().num_sms * dev.spec().cores_per_sm);
  const auto [first, last] = tr.level_range(split);
  const std::uint32_t roots = last - first;
  // Profiling telemetry: where the rope split landed and how many subtree
  // roots it yielded. Gated at the call site because the track names allocate.
  if (simt::Profiler::enabled()) {
    dev.prof_counter(base + "/split_level", static_cast<double>(split));
    dev.prof_counter(base + "/subtree_roots", static_cast<double>(roots));
  }

  // Kernel 1: one thread per split-level subtree; explicit-stack post-order
  // DFS writing each node's final value on pop — no atomics anywhere.
  if (roots > 0 && split > 0) {
    LaunchConfig cfg;
    cfg.block_threads = opt.flat_block_size;
    cfg.grid_blocks = Device::blocks_for(roots, opt.flat_block_size,
                                         opt.max_grid_blocks);
    cfg.name = base + "/subtrees";
    dev.launch_threads(cfg, [&tr, values, ops, first, roots](LaneCtx& t) {
      struct Frame {
        std::uint32_t node;
        std::uint32_t next_child;  // index into child_offsets range
        std::uint32_t acc;
      };
      std::vector<Frame> stack;  // thread-local rope stack
      for (std::int64_t r = t.global_idx(); r < roots;
           r += t.grid_threads()) {
        stack.clear();
        stack.push_back(Frame{first + static_cast<std::uint32_t>(r), 0, 1});
        while (!stack.empty()) {
          Frame& f = stack.back();
          const std::uint32_t off = t.ld(&tr.child_offsets[f.node]);
          const std::uint32_t end = t.ld(&tr.child_offsets[f.node + 1]);
          if (off + f.next_child < end) {
            const std::uint32_t c = t.ld(&tr.children[off + f.next_child]);
            ++f.next_child;
            stack.push_back(Frame{c, 0, 1});
          } else {
            // Post-order: fold the finished value into the parent frame.
            const Frame done = f;
            t.st(&values[done.node], done.acc);
            stack.pop_back();
            if (!stack.empty()) {
              t.compute(1);
              stack.back().acc =
                  ops.algo == TreeAlgo::kDescendants
                      ? stack.back().acc + done.acc
                      : std::max(stack.back().acc, done.acc + 1);
            }
          }
        }
      }
    });
  }

  // Kernel 2..: fold the crown above the split level, one (tiny) kernel per
  // level — children at level l+1 are final when level l runs.
  for (std::uint32_t l = split; l-- > 0;) {
    const auto [cf, cl] = tr.level_range(l);
    const std::uint32_t count = cl - cf;
    if (count == 0) continue;
    LaunchConfig cfg;
    cfg.block_threads = opt.flat_block_size;
    cfg.grid_blocks = Device::blocks_for(count, opt.flat_block_size,
                                         opt.max_grid_blocks);
    cfg.name = base + "/crown";
    dev.launch_threads(cfg, [&tr, values, ops, cf, count](LaneCtx& t) {
      for (std::int64_t k = t.global_idx(); k < count;
           k += t.grid_threads()) {
        const std::uint32_t v = cf + static_cast<std::uint32_t>(k);
        const std::uint32_t off = t.ld(&tr.child_offsets[v]);
        const std::uint32_t end = t.ld(&tr.child_offsets[v + 1]);
        std::uint32_t acc = 1;
        for (std::uint32_t e = off; e < end; ++e) {
          const std::uint32_t c = t.ld(&tr.children[e]);
          const std::uint32_t cv = t.ld(&values[c]);
          t.compute(1);
          acc = ops.algo == TreeAlgo::kDescendants ? acc + cv
                                                   : std::max(acc, cv + 1);
        }
        t.st(&values[v], acc);
      }
    });
  }
}

// --- Workload-consolidation recursion (rec-cons) -----------------------------

/// The recursion analogue of the cons-* loop templates: instead of one child
/// grid per internal node (rec-naive) or per block (rec-hier), a single
/// controller thread walks the tree's levels bottom-up and launches ONE
/// aggregated child grid per level, carrying that level's internal nodes as
/// descriptors. The child's lanes are evenly split over the level's
/// concatenated child edges (merge-path style), so each aggregated grid is
/// itself balanced; the launch carries `aggregated_descriptors` so the GMU
/// charges one activation plus cheap per-descriptor services. Bottom-up
/// order means every child value is final when its parent's level runs, so
/// combines need no accumulator staging.
void run_cons(Device& dev, const Tree& tr, std::uint32_t* values,
              const TraversalOps& ops, const RecOptions& opt,
              const std::string& base) {
  LaunchConfig cfg;
  cfg.grid_blocks = 1;
  cfg.block_threads = 1;
  cfg.name = base + "/controller";
  const Tree* tp = &tr;
  dev.launch_threads(cfg, [tp, values, ops, opt, base](LaneCtx& t) {
    const Tree& tr = *tp;
    for (std::uint32_t l = tr.max_level(); l-- > 0;) {
      const auto [first, last] = tr.level_range(l);
      const std::uint32_t width = last - first;
      if (width == 0) continue;
      // Stage the level's descriptor bundle: internal nodes plus exclusive
      // prefix offsets of their child-edge counts (the aggregated child's
      // search structure). The controller's loads/stores here are the real
      // cost of building the aggregation.
      auto items = simt::make_segment_array<std::int64_t>(width);
      auto offsets = simt::make_segment_array<std::int64_t>(
          static_cast<std::size_t>(width) + 1);
      std::int64_t count = 0;
      std::int64_t total = 0;
      for (std::uint32_t v = first; v < last; ++v) {
        const std::uint32_t off = t.ld(&tr.child_offsets[v]);
        const std::uint32_t end = t.ld(&tr.child_offsets[v + 1]);
        if (end == off) continue;
        t.st(&items[static_cast<std::size_t>(count)],
             static_cast<std::int64_t>(v));
        t.st(&offsets[static_cast<std::size_t>(count)], total);
        total += end - off;
        ++count;
      }
      if (count == 0) continue;
      t.st(&offsets[static_cast<std::size_t>(count)], total);

      LaunchConfig cc;
      cc.block_threads = opt.rec_block_size;
      cc.grid_blocks =
          Device::blocks_for(total, opt.rec_block_size, opt.max_grid_blocks);
      cc.aggregated_descriptors = static_cast<int>(count);
      cc.name = base + "/level";
      auto child = [tp, values, ops, items, offsets, count,
                    total](LaneCtx& c) {
        const Tree& tr = *tp;
        const std::int64_t threads = c.grid_threads();
        const std::int64_t begin = c.global_idx() * total / threads;
        const std::int64_t end = (c.global_idx() + 1) * total / threads;
        if (begin >= end) return;
        // Binary-search the starting descriptor for this lane's chunk.
        std::int64_t lo = 0, hi = count - 1;
        while (lo < hi) {
          const std::int64_t mid = lo + (hi - lo + 1) / 2;
          if (c.ld(&offsets[static_cast<std::size_t>(mid)]) <= begin) {
            lo = mid;
          } else {
            hi = mid - 1;
          }
        }
        std::int64_t e = begin;
        for (std::int64_t k = lo; k < count && e < end; ++k) {
          const auto v = static_cast<std::uint32_t>(
              c.ld(&items[static_cast<std::size_t>(k)]));
          const std::int64_t kbegin =
              c.ld(&offsets[static_cast<std::size_t>(k)]);
          const std::int64_t kend =
              c.ld(&offsets[static_cast<std::size_t>(k + 1)]);
          if (kend <= e) continue;
          const std::uint32_t coff = c.ld(&tr.child_offsets[v]);
          const std::int64_t stop = std::min(end, kend);
          for (; e < stop; ++e) {
            const std::uint32_t ch = c.ld(
                &tr.children[coff + static_cast<std::uint32_t>(e - kbegin)]);
            const std::uint32_t cv = c.ld(&values[ch]);
            ops.combine(c, &values[v], cv);
          }
        }
      };
      if (!t.launch_threads_with_retry(cc, child)) {
        // Aggregated level launch refused: the controller folds the level
        // serially — slow but correct, and children are already final.
        t.note_degraded();
        for (std::int64_t k = 0; k < count; ++k) {
          const auto v = static_cast<std::uint32_t>(
              t.ld(&items[static_cast<std::size_t>(k)]));
          const std::uint32_t off = t.ld(&tr.child_offsets[v]);
          const std::uint32_t end = t.ld(&tr.child_offsets[v + 1]);
          for (std::uint32_t j = off; j < end; ++j) {
            const std::uint32_t ch = t.ld(&tr.children[j]);
            const std::uint32_t cv = t.ld(&values[ch]);
            ops.combine(t, &values[v], cv);
          }
        }
      }
    }
  });
}

// Executes one traversal into the device's current session.
std::vector<std::uint32_t> traverse(Device& dev, const Tree& tr,
                                    TreeAlgo algo, RecTemplate tmpl,
                                    const RecOptions& opt) {
  tr.validate();
  opt.validate();
  const std::uint32_t n = tr.num_nodes();
  std::vector<std::uint32_t> values(n, 0);
  const std::string base =
      std::string(name(algo)) + "/" + std::string(name(tmpl));
  launch_init_kernel(dev, values.data(), n, base, opt);

  const TraversalOps ops{algo};
  switch (tmpl) {
    case RecTemplate::kFlat:
      run_flat(dev, tr, values.data(), ops, opt, base);
      break;
    case RecTemplate::kRecNaive: {
      auto ctx = std::make_shared<RecCtx>(
          RecCtx{&tr, values.data(), ops, opt, base});
      if (is_internal(tr, 0)) {
        LaunchConfig cfg;
        cfg.grid_blocks = 1;
        cfg.block_threads = opt.rec_block_size;
        cfg.name = base + "/rec-naive";
        dev.launch(cfg, make_naive_kernel(ctx, 0));
      }
      break;
    }
    case RecTemplate::kRecHier: {
      auto ctx = std::make_shared<RecCtx>(
          RecCtx{&tr, values.data(), ops, opt, base});
      const std::uint32_t nc = tr.num_children(0);
      if (nc > static_cast<std::uint32_t>(opt.max_grid_blocks)) {
        throw std::invalid_argument("root outdegree exceeds max grid size");
      }
      if (nc > 0) {
        LaunchConfig cfg;
        cfg.grid_blocks = static_cast<int>(nc);
        cfg.block_threads = opt.rec_block_size;
        cfg.name = base + "/rec-hier";
        dev.launch(cfg, make_hier_kernel(ctx, 0));
      }
      break;
    }
    case RecTemplate::kAutoropes:
      run_autoropes(dev, tr, values.data(), ops, opt, base);
      break;
    case RecTemplate::kRecCons:
      run_cons(dev, tr, values.data(), ops, opt, base);
      break;
  }
  return values;
}

}  // namespace

TreeRunResult run_tree_traversal(Device& dev, const Tree& tr,
                                 const TreeRun& run) {
  TreeRunResult res;
  if (run.policy.has_value()) {
    simt::Session session = dev.session(*run.policy);
    res.values = traverse(dev, tr, run.algo, run.tmpl, run.opt);
    res.report = session.report();
    return res;
  }
  res.values = traverse(dev, tr, run.algo, run.tmpl, run.opt);
  return res;
}

std::vector<std::uint32_t> tree_traversal_serial_recursive(
    const Tree& tr, TreeAlgo algo, simt::CpuTimer* timer) {
  tr.validate();
  const std::uint32_t n = tr.num_nodes();
  std::vector<std::uint32_t> values(n, 1);
  const bool desc = algo == TreeAlgo::kDescendants;

  // Figure 3(a): plain post-order recursion.
  auto rec = [&](auto&& self, std::uint32_t v) -> std::uint32_t {
    if (timer != nullptr) timer->call();
    std::uint32_t val = 1;
    const std::uint32_t off = tr.child_offsets[v];
    const std::uint32_t end = tr.child_offsets[v + 1];
    for (std::uint32_t j = off; j < end; ++j) {
      const std::uint32_t c =
          timer != nullptr ? timer->ld(&tr.children[j]) : tr.children[j];
      const std::uint32_t cv = self(self, c);
      if (timer != nullptr) timer->compute(1);
      val = desc ? val + cv : std::max(val, cv + 1);
    }
    if (timer != nullptr) {
      timer->st(&values[v], val);
    } else {
      values[v] = val;
    }
    return val;
  };
  rec(rec, 0);
  return values;
}

std::vector<std::uint32_t> tree_traversal_serial_iterative(
    const Tree& tr, TreeAlgo algo, simt::CpuTimer* timer) {
  tr.validate();
  const std::uint32_t n = tr.num_nodes();
  std::vector<std::uint32_t> values(n, 1);
  const bool desc = algo == TreeAlgo::kDescendants;

  // Figure 3(b): recursion eliminated. Nodes are stored in BFS order, so a
  // reverse sweep sees every child before its parent.
  for (std::uint32_t v = n - 1; v >= 1; --v) {
    const std::uint32_t p =
        timer != nullptr ? timer->ld(&tr.parent[v]) : tr.parent[v];
    const std::uint32_t vv =
        timer != nullptr ? timer->ld(&values[v]) : values[v];
    const std::uint32_t pv =
        timer != nullptr ? timer->ld(&values[p]) : values[p];
    const std::uint32_t nv = desc ? pv + vv : std::max(pv, vv + 1);
    if (timer != nullptr) {
      timer->compute(1);
      timer->st(&values[p], nv);
    } else {
      values[p] = nv;
    }
  }
  return values;
}

}  // namespace nestpar::rec
