#pragma once

/// Interface of the model-alignment heap (host_alloc.cpp).
///
/// Linking the simulator replaces the global `operator new`/`operator delete`
/// family so that *every* heap allocation in the binary is aligned to
/// `kModelAlignment` (128 bytes — one memory segment, one full cycle of the
/// 32x4-byte shared-memory banks). This is load-bearing for determinism, not
/// an optimization: the timing model consumes raw host addresses, and with a
/// plain malloc a buffer's segment phase (`base % 128`) would depend on heap
/// history — which differs between the serial and the multi-threaded host
/// engine, whose worker threads draw from separate malloc arenas. Pinning the
/// phase to zero makes every modeled cost a function of intra-buffer offsets
/// only, which is what lets both engines charge bit-identical cycles. See
/// docs/SIMULATOR.md ("Why allocator alignment is load-bearing").
///
/// Consequences the rest of the engine relies on:
///  - Distinct allocations never share a 128-byte coalescing segment or an
///    8-byte atomic unit, so the cost model cannot observe *where* internal
///    bookkeeping (arenas, scratch buffers) happens to live — only workload
///    addresses matter. This is what makes the arena/scratch reuse in
///    `ctx.h`/`recorder.cpp` safe: recycling trace and shared-memory storage
///    across blocks cannot perturb a single modeled cycle.
///  - `aligned.h`'s `make_segment_array` and BlockCtx's shared-memory arena
///    inherit the same guarantee without extra work.

namespace nestpar::simt::detail {

/// Anchor referenced from Device's constructor so that linking any simulator
/// user pulls host_alloc.cpp — and with it the operator new/delete
/// replacements — out of the static archive. Always returns true.
bool host_allocator_active();

}  // namespace nestpar::simt::detail
