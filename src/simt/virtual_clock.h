#pragma once

#include <cstdint>

namespace nestpar::simt {

/// Deterministic virtual clock for layers that compose many modeled runs
/// into one timeline (the serving runtime stitches per-batch `RunReport`
/// times together with queueing and backoff delays). Time is modeled
/// microseconds — the same unit as `RunReport::total_us` — and only ever
/// moves forward, so two runs with the same inputs replay the same instants
/// regardless of the host engine or wall-clock speed. Never mix these
/// instants with host wall time: wall-clock measurements (e.g. the
/// simulator_throughput self-benchmark) live outside the model and are
/// tagged volatile in the results pipeline (see docs/SIMULATOR.md).
///
/// A VirtualClock is a plain value type — no global state, no threads;
/// whoever owns the composition (e.g. serve::Server) owns the clock, and
/// Deadlines are value snapshots that never reference it.
class VirtualClock {
 public:
  double now_us() const { return now_us_; }

  /// Move the clock to `t_us`. Throws std::logic_error if `t_us` is in the
  /// past — a virtual timeline that rewinds is a scheduling bug, never a
  /// legitimate state.
  void advance_to(double t_us);

  /// Move the clock forward by `delta_us` (must be >= 0).
  void advance_by(double delta_us);

 private:
  double now_us_ = 0.0;
};

/// Fixed-interval sampling boundaries on the virtual timeline: 0, I, 2I, ...
/// A discrete-event loop calls `next_due` before processing each event to
/// drain every boundary at or before that event's time, so time-series
/// sampled at the boundaries observe the state *between* events — which is
/// constant — and the resulting series is a pure function of the event
/// schedule, never of host timing. Interval 0 disables the sampler (no
/// boundary is ever due).
class TickSampler {
 public:
  TickSampler() = default;
  /// Throws std::invalid_argument on a negative interval.
  explicit TickSampler(double interval_us);

  bool enabled() const { return interval_us_ > 0.0; }
  double interval_us() const { return interval_us_; }

  /// True while an unsampled boundary <= `now_us` remains; writes it to
  /// `*tick_us` and advances past it. Call in a loop to drain:
  /// ```cpp
  ///   double tick;
  ///   while (sampler.next_due(event.t, &tick)) sample_state_at(tick);
  /// ```
  bool next_due(double now_us, double* tick_us);

 private:
  double interval_us_ = 0.0;
  std::uint64_t next_index_ = 0;  ///< Boundary index; tick = index * interval.
};

/// A per-request latency budget on the virtual timeline. A request admitted
/// at `arrival_us` with budget `budget_us` expires at `expiry_us()`;
/// deadline checks are pure reads of the clock, so the same run always
/// expires the same requests.
struct Deadline {
  double arrival_us = 0.0;
  double budget_us = 0.0;

  double expiry_us() const { return arrival_us + budget_us; }
  bool expired_at(double now_us) const { return now_us > expiry_us(); }
  /// Budget left at `now_us` (negative once expired).
  double remaining_us(double now_us) const { return expiry_us() - now_us; }
};

}  // namespace nestpar::simt
