#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/simt/critpath.h"
#include "src/simt/launch_graph.h"
#include "src/simt/metrics.h"
#include "src/simt/scheduler.h"

namespace nestpar::simt {

/// Number of histogram slots in an active-lane histogram: one per possible
/// active-lane count of a 32-wide warp, plus the (unused) zero slot.
inline constexpr int kLaneHistSlots = 33;

/// Log2-bucketed value distribution used for every profiled quantity whose
/// *spread* matters (per-block cycles, child grid sizes, buffer occupancy).
/// Bucket 0 holds values < 1; bucket b >= 1 holds values in [2^(b-1), 2^b).
struct ProfHistogram {
  static constexpr int kBuckets = 64;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::uint64_t buckets[kBuckets] = {};

  /// Bucket index for `v` (clamped; negative values land in bucket 0).
  static int bucket_of(double v);

  void add(double v);
  double mean() const { return count == 0 ? 0.0 : sum / count; }
  ProfHistogram& operator+=(const ProfHistogram& o);
};

/// Distribution profile of one kernel name, accumulated over every observed
/// invocation. This is the paper's skew data: not just how many cycles a
/// kernel cost, but how unevenly its blocks shared them.
struct KernelProfile {
  std::string name;
  std::uint64_t invocations = 0;
  double busy_cycles = 0.0;  ///< Sum of scheduled (end - start) per grid.

  /// Per-block issue-cycle distribution — the load-imbalance signal.
  ProfHistogram block_cycles;
  /// Per-launch imbalance accumulators: the sum over launches of the
  /// slowest block's cycles (what the grid actually waits for) and of the
  /// mean block cycles (what a perfectly balanced grid would wait for).
  /// Keeping the per-launch structure matters: folding all blocks of all
  /// launches into one histogram would let iteration-to-iteration frontier
  /// variation (large early SSSP waves, tiny late ones) drown out the
  /// within-grid skew the LB templates actually remove.
  double launch_max_cycles = 0.0;
  double launch_mean_cycles = 0.0;
  /// Grid sizes of device-side (CDP) invocations of this kernel: the
  /// child-grid-size profile of the dpar/recursive templates.
  ProfHistogram child_grid_blocks;

  /// Active-lane histogram over issued warp-instruction groups (slot n =
  /// groups with n active lanes), summed from the kernel's Metrics.
  std::uint64_t lane_hist[kLaneHistSlots] = {};
  std::uint64_t warp_steps = 0;
  std::uint64_t active_lane_ops = 0;

  /// Grids observed at each nesting depth.
  std::map<std::uint32_t, std::uint64_t> nest_depth_grids;

  /// Fault/retry/degradation activity attributed to this kernel's launches.
  RobustnessCounters robustness;

  /// Load-imbalance factor: actual busy time over ideally balanced time,
  /// i.e. sum of per-launch max block cycles / sum of per-launch mean block
  /// cycles (1.0 = perfectly balanced; the paper's motivation metric for
  /// the LB templates).
  double imbalance() const {
    return launch_mean_cycles <= 0.0 ? 0.0
                                     : launch_max_cycles / launch_mean_cycles;
  }
  double warp_efficiency() const {
    return warp_steps == 0 ? 0.0
                           : static_cast<double>(active_lane_ops) /
                                 (32.0 * static_cast<double>(warp_steps));
  }
};

/// One named counter sample recorded by a template (queue split sizes,
/// autoropes split level, ...). `node` is the launch-graph watermark at
/// record time — the number of grids already launched — which the trace
/// exporter resolves to a timestamp.
struct CounterSample {
  std::string track;
  double value = 0.0;
  std::uint64_t node = 0;
};

/// One instant event (queue flush, phase transition) with the same
/// launch-graph watermark attribution as CounterSample.
struct InstantSample {
  std::string name;
  std::string cat;
  std::uint64_t node = 0;
};

/// Everything the profiler collected since the last reset. Copyable value
/// type: the bench driver snapshots once per suite and serializes the result
/// as PROF_<suite>.json (see bench/results.h).
struct ProfileSnapshot {
  std::vector<KernelProfile> kernels;  ///< Sorted by kernel name.
  /// Named value distributions (counter tracks aggregate here too).
  std::map<std::string, ProfHistogram> tracks;
  std::vector<CounterSample> counters;  ///< Time-series counter samples.
  std::vector<InstantSample> instants;
  double total_cycles = 0.0;    ///< Sum of observed reports' makespans.
  std::uint64_t reports = 0;    ///< Device::report() calls observed.
  std::uint64_t grids = 0;
  std::uint64_t device_grids = 0;
  std::map<std::uint32_t, std::uint64_t> depth_grids;

  // Critical-path accumulation (critpath.h). Attributions add across
  // reports, so `crit_total.total() == total_cycles` — the per-report
  // invariant survives aggregation.
  CritAttribution crit_total;
  /// Critical-path cycles by the kernel name they were attributed to.
  std::map<std::string, CritAttribution> crit_kernels;
  /// Folded flamegraph stacks merged across reports.
  std::map<std::string, double> crit_folded;
  /// Binding chain of the longest-makespan report observed (the session that
  /// dominates the suite), and that report's makespan.
  std::vector<CritSegment> crit_chain;
  double crit_chain_makespan = 0.0;

  /// Kernel profile by exact name; nullptr when absent.
  const KernelProfile* find(std::string_view name) const;
};

/// Process-wide profiling collector. Off by default: every hook is gated on
/// `enabled()` (same discipline as RobustnessCounters) so a profile-off run
/// performs no profiling allocations and produces byte-identical output.
///
/// Activation: the `NESTPAR_PROFILE` environment variable (any value other
/// than empty/"0"), `set_enabled(true)`, or a Session opened with
/// `SessionOptions::profile = true`.
///
/// The collector is global rather than per-Device so the combined bench
/// driver can snapshot profiles from Devices created inside suite code it
/// never sees; `Device::report()` feeds it, templates add counters through
/// `Device::prof_*`. Call sites must gate any string building on
/// `Profiler::enabled()` themselves to keep the profile-off path
/// allocation-free.
class Profiler {
 public:
  static Profiler& instance();

  /// Global gate, initialized from NESTPAR_PROFILE on first use.
  static bool enabled();
  static void set_enabled(bool on);

  /// Record a counter sample (time series + aggregate distribution).
  void counter(std::string_view track, double value, std::uint64_t node);
  /// Record a value into a named distribution only (no time series) — for
  /// per-block quantities where the spread is the signal.
  void value(std::string_view track, double v);
  /// Record an instant event.
  void instant(std::string_view name, std::string_view cat,
               std::uint64_t node);

  /// Fold one timed session into the per-kernel profiles. Called by
  /// Device::report() when profiling is enabled; each call observes the
  /// whole graph of that session. `crit` is the session's critical-path
  /// decomposition (computed once by the caller, shared with RunReport).
  void observe_report(const LaunchGraph& graph, const ScheduleResult& sched,
                      const CritPath& crit);

  /// Copy of everything collected since the last reset.
  ProfileSnapshot snapshot() const;
  void reset();

 private:
  Profiler() = default;

  mutable std::mutex mu_;
  std::map<std::string, KernelProfile> kernels_;
  ProfileSnapshot data_;  ///< kernels member unused; map above is the source.
};

}  // namespace nestpar::simt
