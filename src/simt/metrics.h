#pragma once

#include <cstdint>
#include <string>

namespace nestpar::simt {

/// Device-runtime robustness counters: launch refusals, injected faults,
/// retries, and template degradations. All zero in a fault-free run with
/// unlimited ResourceLimits (except `launches_attempted`, which always
/// counts device-launch attempts) — report printers gate on `any_fault()`
/// so default output is byte-identical to the pre-fault-model build.
struct RobustnessCounters {
  std::uint64_t launches_attempted = 0;  ///< Device-launch attempts.
  std::uint64_t refused_pool = 0;        ///< kPendingPoolExhausted refusals.
  std::uint64_t refused_depth = 0;       ///< kDepthLimitExceeded refusals.
  std::uint64_t refused_heap = 0;        ///< kDeviceHeapExhausted refusals.
  std::uint64_t faults_injected = 0;     ///< kInjectedFault failures.
  std::uint64_t retries = 0;             ///< Backoff retries after faults.
  std::uint64_t degraded = 0;            ///< Template degradation fallbacks.

  std::uint64_t refused_total() const {
    return refused_pool + refused_depth + refused_heap + faults_injected;
  }
  /// True when anything actually went wrong (refusal, fault, retry, or
  /// degradation) — the gate for fault-related report output.
  bool any_fault() const { return refused_total() + retries + degraded > 0; }

  RobustnessCounters& operator+=(const RobustnessCounters& o);

  /// Compact single-line JSON object with every raw counter, e.g.
  /// `{"launches_attempted": 42, "refused_pool": 0, ...}`. Embedded verbatim
  /// in the `robustness` field of `BENCH_<suite>.json` records:
  /// ```cpp
  ///   simt::RunReport rep = session.report();
  ///   std::string row = rep.robustness.to_json();
  /// ```
  std::string to_json() const;
};

/// nvprof-like counters, accumulated per kernel and aggregated per run.
///
/// Derived ratios mirror the metrics the paper reports:
///  - warp execution efficiency (Table I, Table II, Figs. 7/8 profiling)
///  - gld/gst efficiency (Table I)
///  - warp occupancy (dbuf-shared vs dbuf-global discussion)
///  - atomic and kernel-launch counts (Figs. 5, 7, 8)
struct Metrics {
  // Warp execution efficiency inputs.
  std::uint64_t warp_steps = 0;        ///< SIMT steps with >=1 active lane.
  std::uint64_t active_lane_ops = 0;   ///< Sum of active lanes over those steps.

  // Global memory efficiency inputs.
  std::uint64_t gld_requested_bytes = 0;
  std::uint64_t gld_transferred_bytes = 0;
  std::uint64_t gst_requested_bytes = 0;
  std::uint64_t gst_transferred_bytes = 0;

  // Counters.
  std::uint64_t atomic_ops = 0;
  std::uint64_t shared_ops = 0;
  std::uint64_t compute_ops = 0;
  std::uint64_t host_launches = 0;
  std::uint64_t device_launches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t warps = 0;

  // Occupancy inputs, filled by the timing pass: integral over SM-active time
  // of resident warps, and the corresponding active time (cycles x SMs).
  double resident_warp_cycles = 0.0;
  double sm_active_cycles = 0.0;

  /// Modeled issue cycles lost to the fault path: refused-launch issue cost
  /// plus retry-backoff stalls, already folded into the block costs. Kept as
  /// a separate tally so the critical-path analyzer (critpath.h) can carve a
  /// `fault` share out of a grid's execution span. Model-internal: not part
  /// of to_string()/to_json() output (fault-free runs stay byte-identical).
  double fault_cycles = 0.0;

  // Fault-model counters (see RobustnessCounters).
  RobustnessCounters robustness;

  /// Per-warp-instruction-group active-lane histogram: slot n counts issued
  /// groups in which n lanes participated (compute groups weighted by their
  /// step count), so slot 32 is fully converged execution and the low slots
  /// are the divergence tail. Collected unconditionally — the increments are
  /// deterministic and cheap — but only surfaced through the profiling
  /// subsystem (simt::Profiler), never in default report output.
  std::uint64_t active_lane_hist[33] = {};

  /// Ratio of average active lanes per step to the warp width.
  double warp_execution_efficiency() const {
    return warp_steps == 0 ? 0.0
                           : static_cast<double>(active_lane_ops) /
                                 (32.0 * static_cast<double>(warp_steps));
  }
  /// Requested / transferred global load bytes (1.0 = perfectly coalesced).
  double gld_efficiency() const {
    return gld_transferred_bytes == 0
               ? 0.0
               : static_cast<double>(gld_requested_bytes) /
                     static_cast<double>(gld_transferred_bytes);
  }
  /// Requested / transferred global store bytes.
  double gst_efficiency() const {
    return gst_transferred_bytes == 0
               ? 0.0
               : static_cast<double>(gst_requested_bytes) /
                     static_cast<double>(gst_transferred_bytes);
  }
  /// Average resident warps per active cycle over the SM warp capacity.
  double warp_occupancy(int max_warps_per_sm) const {
    return sm_active_cycles <= 0.0
               ? 0.0
               : resident_warp_cycles /
                     (sm_active_cycles * static_cast<double>(max_warps_per_sm));
  }
  std::uint64_t total_launches() const { return host_launches + device_launches; }

  Metrics& operator+=(const Metrics& o);

  /// Multi-line human-readable dump (for debugging and examples).
  std::string to_string(int max_warps_per_sm = 64) const;

  /// Single-line JSON object holding the raw counters plus the derived
  /// ratios (`warp_execution_efficiency`, `gld_efficiency`,
  /// `gst_efficiency`, `warp_occupancy`), nesting `robustness.to_json()`.
  /// Machine-readable twin of `to_string` for trace tooling and the bench
  /// results pipeline:
  /// ```cpp
  ///   std::ofstream("metrics.json") << report.aggregate.to_json();
  /// ```
  std::string to_json(int max_warps_per_sm = 64) const;
};

}  // namespace nestpar::simt
