#pragma once

#include <cstdint>
#include <string>

namespace nestpar::simt {

/// nvprof-like counters, accumulated per kernel and aggregated per run.
///
/// Derived ratios mirror the metrics the paper reports:
///  - warp execution efficiency (Table I, Table II, Figs. 7/8 profiling)
///  - gld/gst efficiency (Table I)
///  - warp occupancy (dbuf-shared vs dbuf-global discussion)
///  - atomic and kernel-launch counts (Figs. 5, 7, 8)
struct Metrics {
  // Warp execution efficiency inputs.
  std::uint64_t warp_steps = 0;        ///< SIMT steps with >=1 active lane.
  std::uint64_t active_lane_ops = 0;   ///< Sum of active lanes over those steps.

  // Global memory efficiency inputs.
  std::uint64_t gld_requested_bytes = 0;
  std::uint64_t gld_transferred_bytes = 0;
  std::uint64_t gst_requested_bytes = 0;
  std::uint64_t gst_transferred_bytes = 0;

  // Counters.
  std::uint64_t atomic_ops = 0;
  std::uint64_t shared_ops = 0;
  std::uint64_t compute_ops = 0;
  std::uint64_t host_launches = 0;
  std::uint64_t device_launches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t warps = 0;

  // Occupancy inputs, filled by the timing pass: integral over SM-active time
  // of resident warps, and the corresponding active time (cycles x SMs).
  double resident_warp_cycles = 0.0;
  double sm_active_cycles = 0.0;

  /// Ratio of average active lanes per step to the warp width.
  double warp_execution_efficiency() const {
    return warp_steps == 0 ? 0.0
                           : static_cast<double>(active_lane_ops) /
                                 (32.0 * static_cast<double>(warp_steps));
  }
  /// Requested / transferred global load bytes (1.0 = perfectly coalesced).
  double gld_efficiency() const {
    return gld_transferred_bytes == 0
               ? 0.0
               : static_cast<double>(gld_requested_bytes) /
                     static_cast<double>(gld_transferred_bytes);
  }
  /// Requested / transferred global store bytes.
  double gst_efficiency() const {
    return gst_transferred_bytes == 0
               ? 0.0
               : static_cast<double>(gst_requested_bytes) /
                     static_cast<double>(gst_transferred_bytes);
  }
  /// Average resident warps per active cycle over the SM warp capacity.
  double warp_occupancy(int max_warps_per_sm) const {
    return sm_active_cycles <= 0.0
               ? 0.0
               : resident_warp_cycles /
                     (sm_active_cycles * static_cast<double>(max_warps_per_sm));
  }
  std::uint64_t total_launches() const { return host_launches + device_launches; }

  Metrics& operator+=(const Metrics& o);

  /// Multi-line human-readable dump (for debugging and examples).
  std::string to_string(int max_warps_per_sm = 64) const;
};

}  // namespace nestpar::simt
