#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/simt/ctx.h"
#include "src/simt/device_spec.h"
#include "src/simt/kernel.h"
#include "src/simt/launch_graph.h"

namespace nestpar::simt {

/// Functional pass: executes kernels eagerly (depth-first for nested
/// launches) on host memory, reducing per-lane traces into per-block costs,
/// per-kernel metrics, and a launch DAG for the timing pass.
class Recorder {
 public:
  explicit Recorder(const DeviceSpec& spec, int max_nesting_depth = 24);

  /// Launch a grid from the host into `stream`; runs it to completion
  /// functionally (including any nested launches it performs) and returns the
  /// kernel node id.
  std::uint32_t launch_host(const LaunchConfig& cfg, const Kernel& k,
                            StreamHandle stream);

  /// cudaEventRecord: capture the current tail of `stream`. The returned
  /// event completes when everything launched into the stream so far has.
  EventHandle record_event(StreamHandle stream);
  /// cudaStreamWaitEvent: the next grids launched into `stream` wait for the
  /// event's captured work before starting (timing only; functional
  /// execution is eager and already ordered).
  void stream_wait(StreamHandle stream, EventHandle event);

  const LaunchGraph& graph() const { return graph_; }
  LaunchGraph& graph() { return graph_; }
  const DeviceSpec& spec() const { return spec_; }
  int max_nesting_depth() const { return max_depth_; }

  void reset();

 private:
  friend class BlockCtx;
  friend class LaneCtx;

  /// Device-side launch from (parent node, parent block). `extra_stream_slot`
  /// is -1 for the block's default child stream. Runs the child eagerly when
  /// `deferred` is false; otherwise queues it for the breadth-first drain
  /// that follows the enclosing host-launched grid.
  std::uint32_t launch_device(const LaunchConfig& cfg, Kernel k,
                              std::uint32_t parent_node, int parent_block,
                              int extra_stream_slot, bool deferred);

  std::uint32_t create_node(const LaunchConfig& cfg, LaunchOrigin origin,
                            std::uint32_t stream, std::int64_t parent,
                            std::int32_t parent_block);
  void run_grid(std::uint32_t node_id, const Kernel& k);

  std::uint32_t stream_id_for_host(int user_stream);
  std::uint32_t stream_id_for_device(std::uint32_t parent_node,
                                     int parent_block, int slot);
  std::uint32_t intern_stream(std::uint64_t key);

  /// Warp combine: reduce one warp's lane traces into cost/metrics for
  /// `node`. `issue_base` is the block's accumulated cost before this warp;
  /// child launches found in the traces are appended with issue offsets.
  /// Returns the warp's issue cost in cycles.
  double combine_warp(KernelNode& node,
                      const std::vector<std::vector<Op>>& lanes,
                      int active_lanes, double issue_base,
                      std::vector<ChildLaunchRecord>& children,
                      std::unordered_map<std::uint64_t, std::uint64_t>& hist);

  DeviceSpec spec_;
  int max_depth_;
  LaunchGraph graph_;
  /// Fire-and-forget device launches awaiting the post-grid drain.
  std::vector<std::pair<std::uint32_t, Kernel>> deferred_;
  /// Deterministic drain-order randomization (models the hardware's lack of
  /// cross-block launch ordering guarantees).
  std::mt19937_64 drain_rng_{0x9e3779b97f4a7c15ull};
  std::uint64_t seq_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> stream_ids_;
  /// Tail (last node id) per dense stream id, for event recording.
  std::unordered_map<std::uint32_t, std::uint32_t> stream_tail_;
  /// Events: captured kernel node (or kNoNode if the stream was empty).
  std::vector<std::uint32_t> events_;
  /// Waits registered per stream, attached to the stream's next launch.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> pending_waits_;
  /// Stack of per-grid atomic histograms (8-byte address granularity); the
  /// top entry belongs to the grid currently executing functionally.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> atomic_stack_;
};

}  // namespace nestpar::simt
