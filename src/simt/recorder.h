#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/simt/arena.h"
#include "src/simt/ctx.h"
#include "src/simt/device_spec.h"
#include "src/simt/fault.h"
#include "src/simt/kernel.h"
#include "src/simt/launch_graph.h"

namespace nestpar::simt {

class ThreadPool;

namespace detail {

struct BlockRecord;

/// Warp combine: reduce one warp's recorded SoA trace into cost and metrics.
/// `issue_base` is the block's accumulated cost before this warp; child
/// launches found in the trace are appended to `children` with issue offsets,
/// in lane-ascending order per step (the order the scheduler's event timeline
/// depends on). Returns the warp's issue cost in cycles. Pure function of its
/// arguments, so blocks on different host threads can combine concurrently
/// into their own sinks. The trace is consumed read-only and may be recycled
/// by the caller immediately afterwards.
double combine_warp(const DeviceSpec& spec, Metrics& m, const WarpTrace& trace,
                    int active_lanes, double issue_base,
                    std::vector<ChildLaunchRecord>& children, AtomicHist& hist);

}  // namespace detail

/// Functional pass: executes kernels eagerly (depth-first for nested
/// launches) on host memory, reducing per-lane traces into per-block costs,
/// per-kernel metrics, and a launch DAG for the timing pass.
///
/// Engine structure: every block of a top-level grid runs as an independent
/// task recording into a private detail::BlockRecord (its cost, its metrics
/// contributions, its atomic histogram, and — in creation order — every grid
/// its lanes launched, executed inline on the same thread). The tasks run
/// serially or on a ThreadPool; either way the records are merged into the
/// launch graph *in block order* on the submitting thread, which assigns
/// node ids, launch sequence numbers, and stream ids in exactly the order
/// the classic serial engine produced. Cycle counts and functional results
/// are therefore bit-identical across engines.
class Recorder {
 public:
  explicit Recorder(const DeviceSpec& spec, int max_nesting_depth = 24);

  /// Launch a grid from the host into `stream`; runs it to completion
  /// functionally (including any nested launches it performs). On success the
  /// result carries the kernel node id; a host-site injected fault refuses
  /// the launch (nothing recorded beyond the robustness counter) instead.
  LaunchResult launch_host(const LaunchConfig& cfg, const Kernel& k,
                           StreamHandle stream);

  /// cudaEventRecord: capture the current tail of `stream`. The returned
  /// event completes when everything launched into the stream so far has.
  EventHandle record_event(StreamHandle stream);
  /// cudaStreamWaitEvent: the next grids launched into `stream` wait for the
  /// event's captured work before starting (timing only; functional
  /// execution is eager and already ordered).
  void stream_wait(StreamHandle stream, EventHandle event);

  const LaunchGraph& graph() const { return graph_; }
  LaunchGraph& graph() { return graph_; }
  const DeviceSpec& spec() const { return spec_; }
  int max_nesting_depth() const { return max_depth_; }

  /// Install/replace the transient-fault injector (survives reset()).
  void set_fault_config(const FaultConfig& cfg) {
    injector_ = FaultInjector(cfg);
  }
  const FaultInjector& fault_injector() const { return injector_; }
  /// Host-side robustness counters (host-launch faults live outside any
  /// grid's metrics); merged into RunReport::robustness by Device::report().
  const RobustnessCounters& host_robustness() const {
    return host_robustness_;
  }

  /// Pool the engine spreads top-level blocks over; nullptr = run serially
  /// on the launching thread. Results are identical either way.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  /// Ambient serving-layer context stamped onto every node recorded while it
  /// is active (LaunchConfig::trace overrides it per launch). Cleared by
  /// reset(), so each serve attempt re-installs it on its fresh session.
  /// Pure metadata: modeled cycles and functional results are unaffected.
  void set_trace_context(const TraceContext& ctx) { trace_ctx_ = ctx; }
  void clear_trace_context() { trace_ctx_ = TraceContext{}; }
  const TraceContext& trace_context() const { return trace_ctx_; }

  void reset();

 private:
  std::uint32_t create_host_node(const LaunchConfig& cfg, std::uint32_t stream);
  /// Execute one recorded grid: fan its blocks out as tasks (pool or serial),
  /// then merge their records deterministically in block order.
  void run_grid(std::uint32_t node_id, const Kernel& k);
  void merge_grid(std::uint32_t node_id,
                  std::vector<detail::BlockRecord>& blocks);

  std::uint32_t stream_id_for_host(int user_stream);
  std::uint32_t stream_id_for_device(std::uint32_t parent_node,
                                     int parent_block, int slot);
  std::uint32_t intern_stream(std::uint64_t key);

  DeviceSpec spec_;
  int max_depth_;
  ThreadPool* pool_ = nullptr;
  FaultInjector injector_;
  RobustnessCounters host_robustness_;
  std::uint64_t host_attempt_seq_ = 0;
  TraceContext trace_ctx_;
  LaunchGraph graph_;
  /// Fire-and-forget device launches awaiting the post-grid drain.
  std::vector<std::pair<std::uint32_t, Kernel>> deferred_;
  /// Deterministic drain-order randomization (models the hardware's lack of
  /// cross-block launch ordering guarantees).
  std::mt19937_64 drain_rng_{0x9e3779b97f4a7c15ull};
  std::uint64_t seq_ = 0;
  FlatIdMap stream_ids_;
  /// Tail (last node id) per dense stream id, for event recording.
  FlatIdMap stream_tail_;
  /// Events: captured kernel node (or kNoNode if the stream was empty).
  std::vector<std::uint32_t> events_;
  /// Waits registered per stream, attached to the stream's next launch.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> pending_waits_;
};

}  // namespace nestpar::simt
