#include "src/simt/report_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace nestpar::simt {

namespace {

void print_row(std::ostream& out, const std::string& name,
               std::uint64_t invocations, double busy_us, const Metrics& m,
               const DeviceSpec& spec) {
  out << "  " << std::left << std::setw(34) << name << std::right
      << std::setw(8) << invocations << std::setw(12) << std::fixed
      << std::setprecision(1) << busy_us << std::setw(9)
      << m.warp_execution_efficiency() * 100 << "%" << std::setw(8)
      << m.gld_efficiency() * 100 << "%" << std::setw(8)
      << m.gst_efficiency() * 100 << "%" << std::setw(9)
      << m.warp_occupancy(spec.max_warps_per_sm) * 100 << "%"
      << std::setw(12) << m.atomic_ops << std::setw(10) << m.device_launches
      << "\n";
}

}  // namespace

void print_report(std::ostream& out, const RunReport& report,
                  const DeviceSpec& spec) {
  out << "== run report: " << report.grids << " grids ("
      << report.device_grids << " device-launched), "
      << std::fixed << std::setprecision(1) << report.total_us
      << " us model time ==\n";
  out << "  " << std::left << std::setw(34) << "kernel" << std::right
      << std::setw(8) << "calls" << std::setw(12) << "busy-us" << std::setw(10)
      << "warp-eff" << std::setw(9) << "gld" << std::setw(9) << "gst"
      << std::setw(10) << "occup" << std::setw(12) << "atomics"
      << std::setw(10) << "launches" << "\n";

  // Busiest kernels first.
  std::vector<const KernelReport*> order;
  order.reserve(report.per_kernel.size());
  for (const auto& k : report.per_kernel) order.push_back(&k);
  std::sort(order.begin(), order.end(),
            [](const KernelReport* a, const KernelReport* b) {
              return a->busy_cycles > b->busy_cycles;
            });
  for (const KernelReport* k : order) {
    print_row(out, k->name, k->invocations, spec.cycles_to_us(k->busy_cycles),
              k->metrics, spec);
  }
  print_row(out, "(aggregate)", report.grids,
            spec.cycles_to_us(report.total_cycles), report.aggregate, spec);
  // Fault-model summary, printed only when something actually went wrong so
  // fault-free output stays byte-identical to pre-fault-model builds.
  const RobustnessCounters& rb = report.robustness;
  if (rb.any_fault()) {
    out << "  robustness: " << rb.launches_attempted << " attempted, "
        << rb.refused_total() << " refused (pool " << rb.refused_pool
        << ", depth " << rb.refused_depth << ", heap " << rb.refused_heap
        << ", fault " << rb.faults_injected << "), " << rb.retries
        << " retried, " << rb.degraded << " degraded\n";
  }
}

}  // namespace nestpar::simt
