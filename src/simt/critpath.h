#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/simt/launch_graph.h"
#include "src/simt/scheduler.h"

namespace nestpar::simt {

/// Edge categories of the critical-path decomposition. Every cycle of the
/// session makespan is attributed to exactly one category on exactly one
/// kernel node, so per-category (and per-kernel) totals sum to the makespan.
///
/// Taxonomy (matching the paper's Table 1 mechanisms):
///  - kCompute:   balanced block execution on the binding grid.
///  - kImbalance: the straggler share of a grid's span — the part that would
///                vanish if every block cost the mean block cost.
///  - kLaunch:    launch latency (host or device) plus grid-management-unit
///                queueing/activation; the dpar-naive overhead mechanism.
///  - kStreamWait: an intra-stream FIFO edge. The wait itself is spent inside
///                the predecessor grid, so the analyzer records a
///                zero-duration marker here and walks into the predecessor,
///                attributing the time to *its* compute/imbalance/... — this
///                is what lets a host-serialized template show up as
///                imbalance-bound rather than as opaque "stream wait".
///  - kDepWait:   waiting on a `depends_on` (cudaStreamWaitEvent) edge whose
///                producer runs on another stream.
///  - kOccupancy: eligible to start but waiting for one of the
///                `max_concurrent_grids` slots.
///  - kFault:     the share of a binding grid's execution span spent on
///                refused-launch issue cost and retry backoff
///                (Metrics::fault_cycles).
enum class CritCategory : std::uint8_t {
  kCompute = 0,
  kImbalance,
  kLaunch,
  kStreamWait,
  kDepWait,
  kOccupancy,
  kFault,
};

inline constexpr int kCritCategoryCount = 7;

/// Stable lowercase names ("compute", "imbalance", "launch", "stream-wait",
/// "dep-wait", "occupancy", "fault") used in JSON and folded stacks.
std::string_view to_string(CritCategory c);

/// Inverse of to_string(); returns false on an unknown name.
bool parse_crit_category(std::string_view s, CritCategory& out);

/// Cycle totals per category. Addition is element-wise, so attributions from
/// multiple reports of one profiling run accumulate and the invariant
/// `total() == sum of makespans` is preserved.
struct CritAttribution {
  double cycles[kCritCategoryCount] = {};

  double& operator[](CritCategory c) { return cycles[static_cast<int>(c)]; }
  double operator[](CritCategory c) const {
    return cycles[static_cast<int>(c)];
  }
  double total() const;
  CritAttribution& operator+=(const CritAttribution& o);
};

/// One segment of the binding chain: on kernel `node`, the interval
/// [begin, begin + cycles) was bound by `category`. Stream-wait markers have
/// cycles == 0 (see CritCategory::kStreamWait).
struct CritSegment {
  std::uint32_t node = 0;  ///< Kernel node id in the session's launch graph.
  std::uint32_t depth = 0;  ///< Nest depth of that node.
  CritCategory category = CritCategory::kCompute;
  double begin = 0.0;   ///< Segment start, device cycles.
  double cycles = 0.0;  ///< Segment length, device cycles.
  std::string kernel;   ///< Kernel name (owned; outlives the graph).
};

/// Full critical-path decomposition of one scheduled session.
struct CritPath {
  double makespan = 0.0;
  /// Category totals along the binding chain; sums exactly to `makespan`
  /// (enforced by analyze_critical_path, up to float accumulation).
  CritAttribution total;
  /// The same cycles keyed by the kernel name they were attributed to.
  std::map<std::string, CritAttribution> per_kernel;
  /// Folded flamegraph stacks: "ancestor;...;kernel;[category]" -> cycles
  /// (launch ancestry root-to-leaf, category as the leaf frame). Emitting
  /// one line per entry in flamegraph.pl / speedscope folded format
  /// reproduces the chain as a flamegraph.
  std::map<std::string, double> folded;
  /// The binding chain in ascending time order; walking it backwards reads
  /// top-down from the last-finishing grid to the first binding launch.
  std::vector<CritSegment> chain;
};

/// Walks the scheduled launch DAG backwards from the last-finishing grid,
/// recovering at every step the edge that bound progress, and tiles the whole
/// interval [0, makespan] with attributed segments. Requires a
/// ScheduleResult produced by schedule() on the same graph (the causal
/// timestamp vectors must be filled).
///
/// Throws std::logic_error if the attribution fails to cover the makespan
/// (which would indicate a scheduler/analyzer invariant violation).
CritPath analyze_critical_path(const LaunchGraph& graph,
                               const ScheduleResult& sched);

/// One-line causal verdict for a kernel/template/session attribution,
/// reproducing the paper's Table 1 narrative: dpar-naive is launch-bound,
/// thread-mapped baseline on a skewed graph is imbalance-bound.
enum class CritVerdict : std::uint8_t {
  kComputeBound = 0,
  kLaunchBound,
  kImbalanceBound,
  kDependencyBound,
};

/// Stable names: "compute-bound", "launch-bound", "imbalance-bound",
/// "dependency-bound".
std::string_view to_string(CritVerdict v);

/// Classifies which mechanism bounds the attributed cycles. Thresholds are
/// shares of the attributed total: launch+occupancy >= 30% -> launch-bound;
/// else dep+stream-wait >= 25% -> dependency-bound; else imbalance >= 15%
/// -> imbalance-bound; else compute-bound.
CritVerdict classify_bottleneck(const CritAttribution& a);

/// Groups per-kernel attributions by template segment using the bench naming
/// convention "workload/template/phase": the second '/'-separated segment
/// when one exists, otherwise the whole name (matches nestpar_prof rollups).
std::map<std::string, CritAttribution> attribution_by_template(
    const std::map<std::string, CritAttribution>& per_kernel);

}  // namespace nestpar::simt
