#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/simt/critpath.h"
#include "src/simt/device_spec.h"
#include "src/simt/exec_policy.h"
#include "src/simt/kernel.h"
#include "src/simt/launch_graph.h"
#include "src/simt/metrics.h"
#include "src/simt/recorder.h"
#include "src/simt/scheduler.h"
#include "src/simt/thread_pool.h"

namespace nestpar::simt {

class Session;

/// Options for opening a Session beyond the engine policy. `profile = true`
/// turns the process-wide simt::Profiler on for the session's lifetime (and
/// restores the previous state when the session closes) — the programmatic
/// twin of the `NESTPAR_PROFILE` environment switch.
struct SessionOptions {
  ExecPolicy policy = ExecPolicy::from_env();
  bool profile = false;
};

/// One scheduled grid with its timed placement, exported (opt-in, see
/// Device::set_collect_slices) for unified serve+device trace timelines.
/// Times are microseconds relative to the session's time zero.
struct GridSlice {
  std::uint32_t node = 0;           ///< Launch-graph node id.
  std::int64_t parent = -1;         ///< Parent node id (-1 for host grids).
  std::uint32_t stream = 0;
  LaunchOrigin origin = LaunchOrigin::kHost;
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  double cycles = 0.0;              ///< Busy cycles (end - start).
  std::uint64_t batch_id = kNoBatchId;
  std::vector<TraceMember> members; ///< Requesters stamped on the node.
};

/// Per-kernel-name summary in a run report.
struct KernelReport {
  std::string name;
  std::uint64_t invocations = 0;
  double busy_cycles = 0.0;  ///< Sum of (end - start) over invocations.
  Metrics metrics;
};

/// Result of timing one recorded session.
struct RunReport {
  double total_cycles = 0.0;
  double total_us = 0.0;
  Metrics aggregate;
  std::vector<KernelReport> per_kernel;
  std::uint64_t grids = 0;
  std::uint64_t device_grids = 0;
  /// Critical-path decomposition of the scheduled session: the binding chain
  /// from the last-finishing grid back to time zero, with every makespan
  /// cycle attributed to an edge category (see critpath.h). Empty (makespan
  /// 0, no chain) for an empty session.
  CritPath critical_path;
  /// Per-run fault-model summary: launch attempts, refusals (by cause),
  /// retries, and template degradations — device-side counters plus
  /// host-launch faults. All-zero (except launches_attempted) by default.
  RobustnessCounters robustness;
  /// Per-request device-cost attribution over context-stamped grids (empty
  /// when nothing carried a serve context — all bench/profiling paths).
  CycleAttribution attribution;
  /// Timed grid slices for unified trace export; filled only when the
  /// device's collect_slices switch is on (serving layer with --trace).
  std::vector<GridSlice> slices;

  /// Lookup a kernel summary by name; throws if absent.
  const KernelReport& kernel(const std::string& name) const;
};

/// The simulated GPU: the substrate every parallelization template runs on.
///
/// Usage mirrors a minimal CUDA host API, wrapped in an RAII session:
///   Device dev;                                  // K20-like device
///   {
///     Session s = dev.session();                 // fresh recording
///     s.launch(cfg, kernel);                     // eager functional execution
///     s.launch_threads(cfg, [&](LaneCtx& t) {...});
///     RunReport r = s.report();                  // timing pass
///   }                                            // recording discarded
///
/// Kernels execute functionally at launch time (results are immediately
/// visible to host code, which iterative algorithms rely on to test
/// convergence); the performance model replays the recorded session when
/// `report()` is called.
///
/// The legacy `launch()/report()/reset()` surface remains for code that
/// manages session boundaries by hand; `session()` is the preferred idiom.
///
/// Host execution engine: an ExecPolicy (constructor argument, per-session
/// override, or `NESTPAR_EXEC`/`NESTPAR_THREADS` environment) selects
/// between the serial engine and the thread-pool engine that spreads the
/// blocks of each top-level grid over host threads. Both produce identical
/// functional results and identical reports; parallel only changes how long
/// the simulation itself takes on the host.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::k20(),
                  int max_nesting_depth = 24,
                  ExecPolicy policy = ExecPolicy::from_env());

  /// Open a fresh recording session (discards any prior recording). The
  /// returned Session finalizes — discards the recording and restores the
  /// device's policy — when it goes out of scope. Only one Session may be
  /// open per Device at a time (throws std::logic_error otherwise).
  Session session();
  /// Same, with a per-session engine override.
  Session session(const ExecPolicy& policy);
  /// Same, with full options (engine override + per-session profiling).
  Session session(const SessionOptions& options);

  /// Launch a block-structured kernel from the host. Throws SimtException
  /// when the launch is refused (host-site fault injection).
  void launch(const LaunchConfig& cfg, Kernel k, StreamHandle stream = {});
  /// Launch a single-phase per-lane kernel from the host.
  void launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                      StreamHandle stream = {});

  /// Non-throwing launch forms: return the refusal instead of throwing, so
  /// callers can retry or degrade. On success the result holds the launch
  /// graph node id.
  LaunchResult try_launch(const LaunchConfig& cfg, Kernel k,
                          StreamHandle stream = {});
  LaunchResult try_launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                                  StreamHandle stream = {});

  /// Configure the transient-fault injector programmatically (overrides the
  /// `NESTPAR_FAULTS` environment config installed at construction).
  void set_fault_config(const FaultConfig& cfg) {
    recorder_.set_fault_config(cfg);
  }
  const FaultConfig& fault_config() const {
    return recorder_.fault_injector().config();
  }

  /// Host-side synchronization point. Functionally a no-op (execution is
  /// eager); kept so ported host code reads like its CUDA original.
  void synchronize() {}

  /// cudaEventRecord / cudaStreamWaitEvent analogues: cross-stream ordering
  /// for the timing model (functional execution is eager and already
  /// ordered by launch sequence).
  EventHandle record_event(StreamHandle stream = {}) {
    return recorder_.record_event(stream);
  }
  void stream_wait(StreamHandle stream, EventHandle event) {
    recorder_.stream_wait(stream, event);
  }

  /// Run the timing pass over everything launched since the last reset.
  /// When profiling is enabled (simt::Profiler), the timed graph is also
  /// folded into the process-wide profile.
  RunReport report();

  /// Profiling hooks: record a counter sample / distribution value / instant
  /// event on the process-wide Profiler, stamped with this device's current
  /// launch-graph watermark. All three are gated no-ops — zero cost, zero
  /// allocation — when profiling is off; call sites that build track names
  /// dynamically should gate on `Profiler::enabled()` themselves.
  void prof_counter(std::string_view track, double value);
  void prof_value(std::string_view track, double value);
  void prof_instant(std::string_view name, std::string_view cat);

  /// Discard the recorded session.
  void reset();

  /// Ambient serving-layer context for subsequent launches (see
  /// Recorder::set_trace_context). Cleared when a new Session opens.
  void set_trace_context(const TraceContext& ctx) {
    recorder_.set_trace_context(ctx);
  }
  void clear_trace_context() { recorder_.clear_trace_context(); }

  /// When on, report() also exports per-grid timed slices
  /// (RunReport::slices) for unified trace timelines. Off by default; purely
  /// additive output, no modeled effect. Survives sessions and reset().
  void set_collect_slices(bool on) { collect_slices_ = on; }
  bool collect_slices() const { return collect_slices_; }

  /// Engine policy for subsequent launches. Takes effect immediately; the
  /// thread pool is created lazily and kept across sessions.
  void set_exec_policy(const ExecPolicy& policy);
  const ExecPolicy& exec_policy() const { return policy_; }

  const DeviceSpec& spec() const { return recorder_.spec(); }
  const LaunchGraph& graph() const { return recorder_.graph(); }

  /// Grid size helper: blocks needed so that blocks*threads >= work items,
  /// clamped to `max_blocks` (grid-stride loops handle the remainder).
  static int blocks_for(std::int64_t items, int block_threads,
                        int max_blocks = 65535);

 private:
  friend class Session;
  /// Bind the recorder to the pool `policy_` calls for (creating/resizing
  /// it lazily), or unbind it for serial execution.
  void apply_policy();

  Recorder recorder_;
  ExecPolicy policy_;
  std::unique_ptr<ThreadPool> pool_;
  bool session_active_ = false;
  bool collect_slices_ = false;
};

/// RAII recording session on a Device. Construction starts a fresh
/// recording (optionally under a different ExecPolicy); destruction discards
/// it and restores the device's policy — replacing the manual
/// `reset() ... report() ... reset()` dance. Launch/event calls forward to
/// the device, so a Session can be passed anywhere a recording target is
/// needed while the borrowed Device still runs the kernels.
class Session {
 public:
  Session(Session&& other) noexcept;
  Session& operator=(Session&&) = delete;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  Device& device() const { return *dev_; }
  const ExecPolicy& policy() const { return dev_->exec_policy(); }

  void launch(const LaunchConfig& cfg, Kernel k, StreamHandle stream = {}) {
    dev_->launch(cfg, std::move(k), stream);
  }
  void launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                      StreamHandle stream = {}) {
    dev_->launch_threads(cfg, std::move(k), stream);
  }
  LaunchResult try_launch(const LaunchConfig& cfg, Kernel k,
                          StreamHandle stream = {}) {
    return dev_->try_launch(cfg, std::move(k), stream);
  }
  LaunchResult try_launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                                  StreamHandle stream = {}) {
    return dev_->try_launch_threads(cfg, std::move(k), stream);
  }
  EventHandle record_event(StreamHandle stream = {}) {
    return dev_->record_event(stream);
  }
  void stream_wait(StreamHandle stream, EventHandle event) {
    dev_->stream_wait(stream, event);
  }
  void synchronize() { dev_->synchronize(); }

  /// Serving-layer provenance for everything launched after this call (the
  /// fresh session starts with no context).
  void set_trace_context(const TraceContext& ctx) {
    dev_->set_trace_context(ctx);
  }

  void prof_counter(std::string_view track, double value) {
    dev_->prof_counter(track, value);
  }
  void prof_value(std::string_view track, double value) {
    dev_->prof_value(track, value);
  }
  void prof_instant(std::string_view name, std::string_view cat) {
    dev_->prof_instant(name, cat);
  }

  /// Timing pass over everything recorded in this session so far. Can be
  /// called repeatedly (e.g. once per convergence milestone).
  RunReport report() { return dev_->report(); }

  const LaunchGraph& graph() const { return dev_->graph(); }

 private:
  friend class Device;
  Session(Device* dev, const SessionOptions& options);

  Device* dev_;        ///< Null after being moved from.
  ExecPolicy restore_; ///< Device policy to reinstate on close.
  bool profile_override_ = false;  ///< This session turned profiling on.
  bool profile_restore_ = false;   ///< Profiler state to reinstate on close.
};

}  // namespace nestpar::simt
