#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/simt/device_spec.h"
#include "src/simt/kernel.h"
#include "src/simt/launch_graph.h"
#include "src/simt/metrics.h"
#include "src/simt/recorder.h"
#include "src/simt/scheduler.h"

namespace nestpar::simt {

/// Per-kernel-name summary in a run report.
struct KernelReport {
  std::string name;
  std::uint64_t invocations = 0;
  double busy_cycles = 0.0;  ///< Sum of (end - start) over invocations.
  Metrics metrics;
};

/// Result of timing one recorded session.
struct RunReport {
  double total_cycles = 0.0;
  double total_us = 0.0;
  Metrics aggregate;
  std::vector<KernelReport> per_kernel;
  std::uint64_t grids = 0;
  std::uint64_t device_grids = 0;

  /// Lookup a kernel summary by name; throws if absent.
  const KernelReport& kernel(const std::string& name) const;
};

/// The simulated GPU: the substrate every parallelization template runs on.
///
/// Usage mirrors a minimal CUDA host API:
///   Device dev;                                  // K20-like device
///   dev.launch(cfg, kernel);                     // eager functional execution
///   dev.launch_threads(cfg, [&](LaneCtx& t) {...});
///   RunReport r = dev.report();                  // timing pass over the session
///   dev.reset();                                 // new session
///
/// Kernels execute functionally at launch time (results are immediately
/// visible to host code, which iterative algorithms rely on to test
/// convergence); the performance model replays the recorded session when
/// `report()` is called.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::k20(),
                  int max_nesting_depth = 24);

  /// Launch a block-structured kernel from the host.
  void launch(const LaunchConfig& cfg, Kernel k, StreamHandle stream = {});
  /// Launch a single-phase per-lane kernel from the host.
  void launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                      StreamHandle stream = {});

  /// Host-side synchronization point. Functionally a no-op (execution is
  /// eager); kept so ported host code reads like its CUDA original.
  void synchronize() {}

  /// cudaEventRecord / cudaStreamWaitEvent analogues: cross-stream ordering
  /// for the timing model (functional execution is eager and already
  /// ordered by launch sequence).
  EventHandle record_event(StreamHandle stream = {}) {
    return recorder_.record_event(stream);
  }
  void stream_wait(StreamHandle stream, EventHandle event) {
    recorder_.stream_wait(stream, event);
  }

  /// Run the timing pass over everything launched since the last reset.
  RunReport report();

  /// Discard the recorded session.
  void reset();

  const DeviceSpec& spec() const { return recorder_.spec(); }
  const LaunchGraph& graph() const { return recorder_.graph(); }

  /// Grid size helper: blocks needed so that blocks*threads >= work items,
  /// clamped to `max_blocks` (grid-stride loops handle the remainder).
  static int blocks_for(std::int64_t items, int block_threads,
                        int max_blocks = 65535);

 private:
  Recorder recorder_;
};

}  // namespace nestpar::simt
