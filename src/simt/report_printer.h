#pragma once

#include <iosfwd>

#include "src/simt/device.h"

namespace nestpar::simt {

/// Print a run report as an nvprof-style per-kernel table: invocations,
/// busy time, warp execution efficiency, memory efficiencies, atomics and
/// nested-launch counts, followed by the aggregate line.
void print_report(std::ostream& out, const RunReport& report,
                  const DeviceSpec& spec);

}  // namespace nestpar::simt
