#pragma once

#include <iosfwd>

#include "src/simt/device.h"

namespace nestpar::simt {

/// Write the recorded session's schedule as Chrome trace-event JSON
/// (loadable in chrome://tracing or Perfetto): one timeline row per stream,
/// one complete event per grid, with launch origin / grid shape / key
/// metrics in the event args. The timing pass runs on a copy of the session,
/// so exporting does not perturb a later `report()`.
///
/// When profiling is enabled (simt::Profiler) the trace additionally carries
/// Perfetto counter tracks for every recorded counter sample (queue split
/// sizes, autoropes split levels, ...) and instant events for template
/// markers (queue flushes) and fault-model activity (injections, refusals,
/// retries, degradations) attributed to the grid they occurred in. With
/// profiling off the output is byte-identical to the plain exporter.
void write_chrome_trace(std::ostream& out, const Device& dev);

}  // namespace nestpar::simt
