#pragma once

#include <iosfwd>

#include "src/simt/device.h"

namespace nestpar::simt {

/// Write the recorded session's schedule as Chrome trace-event JSON
/// (loadable in chrome://tracing or Perfetto): one timeline row per stream,
/// one complete event per grid, with launch origin / grid shape / key
/// metrics in the event args. The timing pass runs on a copy of the session,
/// so exporting does not perturb a later `report()`.
void write_chrome_trace(std::ostream& out, const Device& dev);

}  // namespace nestpar::simt
