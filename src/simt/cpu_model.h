#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace nestpar::simt {

/// Cost parameters for the serial-CPU baseline model (Xeon E5-2620 class).
struct CpuSpec {
  double clock_ghz = 2.0;
  double compute_op_cycles = 1.0;
  double cache_hit_cycles = 3.0;    ///< Load/store hitting the modeled cache.
  double cache_miss_cycles = 150.0; ///< Scattered (unpredicted) miss.
  /// Miss on a sequentially advancing stream: the hardware prefetcher hides
  /// most of the latency (this is what makes streaming codes like SpMV far
  /// friendlier to the CPU than pointer-chasing graph codes).
  double prefetched_miss_cycles = 8.0;
  int prefetch_streams = 16;        ///< Tracked sequential streams.
  double call_overhead_cycles = 6.0;///< Function-call overhead (recursion).
  std::size_t cache_bytes = 256 * 1024;  ///< Per-core L2 (scattered graph
                                         ///< access thrashes the shared L3).
  int cache_line_bytes = 64;
  int cache_ways = 8;

  double cycles_to_us(double cycles) const { return cycles / (clock_ghz * 1e3); }
};

/// Tiny set-associative LRU cache used to distinguish streaming from
/// scattered access patterns in the CPU baseline (the paper's CPU codes are
/// cache-sensitive tree/graph traversals).
class CacheSim {
 public:
  CacheSim(std::size_t bytes, int line_bytes, int ways);

  /// Touch `addr`; returns true on hit. Inserts on miss (LRU eviction).
  bool access(std::uint64_t addr);

  void clear();

 private:
  int line_shift_;
  std::size_t num_sets_;
  int ways_;
  std::vector<std::uint64_t> tags_;    ///< num_sets_ x ways_, 0 = empty.
  std::vector<std::uint64_t> stamps_;  ///< LRU timestamps.
  std::uint64_t clock_ = 0;
};

/// Charge-as-you-go timer for serial CPU reference implementations. The same
/// reference code that validates GPU results also produces the CPU-side of
/// every GPU-vs-CPU speedup the paper reports.
class CpuTimer {
 public:
  explicit CpuTimer(CpuSpec spec = CpuSpec{});

  void compute(std::uint64_t n = 1) {
    cycles_ += static_cast<double>(n) * spec_.compute_op_cycles;
  }

  template <class T>
  T ld(const T* p) {
    touch(reinterpret_cast<std::uint64_t>(p));
    return *p;
  }
  template <class T>
    requires(!std::is_pointer_v<T>)
  T ld(const T& r) {
    return ld(&r);
  }
  template <class T>
  void st(T* p, T v) {
    touch(reinterpret_cast<std::uint64_t>(p));
    *p = v;
  }

  /// Charge one function call (used by recursive references).
  void call() { cycles_ += spec_.call_overhead_cycles; }

  double cycles() const { return cycles_; }
  double us() const { return spec_.cycles_to_us(cycles_); }
  const CpuSpec& spec() const { return spec_; }
  std::uint64_t loads_and_stores() const { return accesses_; }
  std::uint64_t cache_misses() const { return misses_; }

  void reset();

 private:
  void touch(std::uint64_t addr) {
    ++accesses_;
    if (cache_.access(addr)) {
      cycles_ += spec_.cache_hit_cycles;
    } else {
      ++misses_;
      cycles_ += prefetched(addr >> 6) ? spec_.prefetched_miss_cycles
                                       : spec_.cache_miss_cycles;
    }
  }

  /// True if `line` continues one of the recently-seen miss streams; updates
  /// the stream table either way (round-robin replacement).
  bool prefetched(std::uint64_t line);

  CpuSpec spec_;
  CacheSim cache_;
  std::vector<std::uint64_t> streams_;
  std::size_t stream_cursor_ = 0;
  double cycles_ = 0.0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nestpar::simt
