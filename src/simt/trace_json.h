#pragma once

#include <charconv>
#include <cstdint>
#include <ostream>
#include <string>

/// Shared Chrome trace-event JSON emitters, used by both trace exporters —
/// the simulator's per-grid timeline (src/simt/trace_export.cpp) and the
/// serving layer's per-request span trees (src/serve/trace.cpp) — so the two
/// traces speak byte-for-byte the same dialect and open side by side in one
/// Perfetto timeline. Every emitter writes exactly one event object with no
/// separators; the caller owns commas and the surrounding `traceEvents`
/// array. Timestamps stream through `operator<<` (6 significant digits, the
/// format the exporters have always used), so extracting these helpers
/// changed no output byte.
namespace nestpar::simt::trace_json {

/// Shared Perfetto process layout. Both exporters — and the unified
/// serve+device timeline — agree on these, so any combination of trace files
/// opens in one Perfetto window without row collisions, with shards and
/// streams named consistently:
///  - pid 0: the simulator's own timeline (one row per stream, plus the
///    critical-path row at tid = num_streams);
///  - pid 1: the serving layer (row 0 = per-request async spans, row 1 + s =
///    shard s's execution slices);
///  - pid 2 + s: shard s's simulated device (one row per stream), used by
///    the unified export's scheduled-grid slices.
inline constexpr int kSimPid = 0;
inline constexpr int kServePid = 1;
inline constexpr int kDevicePidBase = 2;
inline constexpr std::uint32_t kServeRequestsTid = 0;

inline std::uint32_t serve_shard_tid(int shard) {
  return 1 + static_cast<std::uint32_t>(shard < 0 ? 0 : shard);
}
inline int device_pid(int shard) {
  return kDevicePidBase + (shard < 0 ? 0 : shard);
}
inline std::string serve_shard_track_name(int shard) {
  return "shard " + std::to_string(shard);
}
inline std::string device_process_name(int shard) {
  return "device " + std::to_string(shard);
}
inline std::string stream_track_name(std::uint32_t stream) {
  return "stream " + std::to_string(stream);
}

/// Metadata event naming a trace process (the per-pid group title).
inline void write_process_name(std::ostream& out, int pid,
                               const std::string& name) {
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"args\":{\"name\":\"" << name << "\"}}";
}

/// Shortest round-trip decimal for a double (std::to_chars), for args a
/// validator re-parses bit-exactly — e.g. the per-request device-cycle
/// conservation records. Ordinary timestamps keep streaming through
/// `operator<<`; this is only for values whose exact bits matter.
inline void write_exact(std::ostream& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.write(buf, res.ptr - buf);
}

/// Minimal JSON string escaping (event names are mostly library-controlled,
/// but a user-provided kernel name must not break the file).
inline void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

/// Metadata event naming a timeline row (Perfetto shows it as the track
/// title for `tid` within `pid`).
inline void write_thread_name(std::ostream& out, int pid, std::uint32_t tid,
                              const std::string& name) {
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
  write_escaped(out, name);
  out << "\"}}";
}

/// Flow-start event: the tail of an arrow drawn from (`ts_us`, row `tid`).
/// Pair with `write_flow_end` under the same (`name`, `cat`, `id`).
inline void write_flow_start(std::ostream& out, const char* name,
                             const char* cat, std::uint64_t id, double ts_us,
                             int pid, std::uint32_t tid) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
      << "\",\"ph\":\"s\",\"id\":" << id << ",\"ts\":" << ts_us
      << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
}

/// Flow-end event: the arrow head. `"bp":"e"` binds to the enclosing slice
/// rather than the next one, which is what launch/completion edges want.
inline void write_flow_end(std::ostream& out, const char* name,
                           const char* cat, std::uint64_t id, double ts_us,
                           int pid, std::uint32_t tid) {
  out << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
      << "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id << ",\"ts\":" << ts_us
      << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
}

/// Counter event: one sample of a numeric track (Perfetto draws the series
/// named `name` as a filled line chart per `pid`).
inline void write_counter(std::ostream& out, const std::string& name,
                          double ts_us, int pid, double value) {
  out << "{\"name\":\"";
  write_escaped(out, name);
  out << "\",\"ph\":\"C\",\"ts\":" << ts_us << ",\"pid\":" << pid
      << ",\"args\":{\"value\":" << value << "}}";
}

/// Instant event without args; `scope` is "g" (global line across all rows)
/// or "t" (marker on one row).
inline void write_instant(std::ostream& out, const std::string& name,
                          const std::string& cat, const char* scope,
                          double ts_us, int pid, std::uint32_t tid) {
  out << "{\"name\":\"";
  write_escaped(out, name);
  out << "\",\"cat\":\"";
  write_escaped(out, cat);
  out << "\",\"ph\":\"i\",\"s\":\"" << scope << "\",\"ts\":" << ts_us
      << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
}

}  // namespace nestpar::simt::trace_json
