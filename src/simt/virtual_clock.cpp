#include "src/simt/virtual_clock.h"

#include <stdexcept>
#include <string>

namespace nestpar::simt {

void VirtualClock::advance_to(double t_us) {
  if (t_us < now_us_) {
    throw std::logic_error("VirtualClock::advance_to: time went backwards (" +
                           std::to_string(now_us_) + " -> " +
                           std::to_string(t_us) + " us)");
  }
  now_us_ = t_us;
}

void VirtualClock::advance_by(double delta_us) {
  if (delta_us < 0.0) {
    throw std::logic_error("VirtualClock::advance_by: negative delta " +
                           std::to_string(delta_us));
  }
  now_us_ += delta_us;
}

}  // namespace nestpar::simt
