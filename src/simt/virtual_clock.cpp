#include "src/simt/virtual_clock.h"

#include <stdexcept>
#include <string>

namespace nestpar::simt {

void VirtualClock::advance_to(double t_us) {
  if (t_us < now_us_) {
    throw std::logic_error("VirtualClock::advance_to: time went backwards (" +
                           std::to_string(now_us_) + " -> " +
                           std::to_string(t_us) + " us)");
  }
  now_us_ = t_us;
}

void VirtualClock::advance_by(double delta_us) {
  if (delta_us < 0.0) {
    throw std::logic_error("VirtualClock::advance_by: negative delta " +
                           std::to_string(delta_us));
  }
  now_us_ += delta_us;
}

TickSampler::TickSampler(double interval_us) : interval_us_(interval_us) {
  if (interval_us < 0.0) {
    throw std::invalid_argument("TickSampler: negative interval " +
                                std::to_string(interval_us));
  }
}

bool TickSampler::next_due(double now_us, double* tick_us) {
  if (!enabled()) return false;
  const double boundary = static_cast<double>(next_index_) * interval_us_;
  if (boundary > now_us) return false;
  *tick_us = boundary;
  ++next_index_;
  return true;
}

}  // namespace nestpar::simt
