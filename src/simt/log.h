#pragma once

namespace nestpar::simt::log {

/// Verbosity of the shared diagnostic logger. Messages go to stderr so they
/// never perturb the byte-stable stdout the bench suites are compared on.
/// The default level is kWarn: errors and warnings print (matching the
/// ad-hoc `fprintf(stderr, ...)` lines they replaced byte-for-byte), info
/// and debug stay silent until `--verbose` raises the level.
enum class Level : int {
  kError = 0,  ///< Always printed (fatal or must-see diagnostics).
  kWarn = 1,   ///< Default: suspicious-but-recoverable conditions.
  kInfo = 2,   ///< Progress notes (`--verbose`).
  kDebug = 3,  ///< Detailed tracing (`--verbose` twice or explicit set).
};

void set_level(Level level);
Level level();
bool enabled(Level level);

/// printf-style emitters. Messages are written verbatim (no prefix, no
/// implicit newline) so routing an existing stderr line through the logger
/// does not change its bytes.
void error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace nestpar::simt::log
