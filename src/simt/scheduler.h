#pragma once

#include <vector>

#include "src/simt/device_spec.h"
#include "src/simt/launch_graph.h"

namespace nestpar::simt {

/// Timing of one scheduled run: per-kernel-node start/end times and the
/// total makespan, all in device cycles.
struct ScheduleResult {
  double total_cycles = 0.0;
  std::vector<double> node_start;
  std::vector<double> node_end;
};

/// Timing pass: replays a recorded launch graph against the device model.
///
/// Model summary:
///  - Grids start when (a) their launch latency has elapsed (host or nested
///    launch), (b) their stream predecessor has completed, and (c) one of the
///    `max_concurrent_grids` slots is free.
///  - Blocks of running grids dispatch FIFO onto SMs subject to the resident
///    warp/block/thread/shared-memory/register limits (occupancy).
///  - Each SM is a processor-sharing server: resident blocks progress at a
///    rate proportional to their warp count, scaled by the SM issue width and
///    a latency-hiding factor that degrades when few warps are resident.
///  - A grid whose hottest atomic address received N operations cannot finish
///    earlier than start + N * atomic_drain_cycles (atomic-unit hotspot).
///
/// Side effect: fills the occupancy fields of each node's Metrics.
ScheduleResult schedule(const DeviceSpec& spec, LaunchGraph& graph);

}  // namespace nestpar::simt
