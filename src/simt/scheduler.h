#pragma once

#include <vector>

#include "src/simt/device_spec.h"
#include "src/simt/launch_graph.h"

namespace nestpar::simt {

/// Timing of one scheduled run: per-kernel-node start/end times and the
/// total makespan, all in device cycles.
///
/// Beyond start/end, the scheduler records the full causal timeline of each
/// grid so the critical-path analyzer (critpath.h) can attribute every wait
/// to its binding edge. All vectors are indexed by node id; times are device
/// cycles. The causal order for any grid is
///   issued <= ready <= activated <= queued <= start <= blocks_done <= end.
struct ScheduleResult {
  double total_cycles = 0.0;
  std::vector<double> node_start;
  std::vector<double> node_end;
  /// When the launch call began on the issuing timeline (host launch loop or
  /// the parent block's issue point for device launches).
  std::vector<double> node_issued;
  /// When the launch latency (host_launch_us / device_launch_us) elapsed.
  std::vector<double> node_ready;
  /// When the grid-management unit finished activating the grid. Equal to
  /// `ready` for host-launched grids, which bypass the GMU queue.
  std::vector<double> node_activated;
  /// When the grid became eligible to start: activated, heads its stream
  /// FIFO, and all `depends_on` event dependencies completed.
  std::vector<double> node_queued;
  /// When the last block retired. `end` may exceed this by the atomic-
  /// hotspot drain interval.
  std::vector<double> node_blocks_done;
};

/// Timing pass: replays a recorded launch graph against the device model.
///
/// Model summary:
///  - Grids start when (a) their launch latency has elapsed (host or nested
///    launch), (b) their stream predecessor has completed, and (c) one of the
///    `max_concurrent_grids` slots is free.
///  - Blocks of running grids dispatch FIFO onto SMs subject to the resident
///    warp/block/thread/shared-memory/register limits (occupancy).
///  - Each SM is a processor-sharing server: resident blocks progress at a
///    rate proportional to their warp count, scaled by the SM issue width and
///    a latency-hiding factor that degrades when few warps are resident.
///  - A grid whose hottest atomic address received N operations cannot finish
///    earlier than start + N * atomic_drain_cycles (atomic-unit hotspot).
///
/// Side effect: fills the occupancy fields of each node's Metrics.
ScheduleResult schedule(const DeviceSpec& spec, LaunchGraph& graph);

/// Device cycles attributed to one requester across every grid it was a
/// member of (see TraceMember). `cycles` is the fold, in node-id order, of
/// this request's per-grid shares; `fault_cycles` tiles each grid's modeled
/// fault overhead the same way.
struct RequestCycles {
  std::uint64_t request = 0;
  std::uint32_t tenant = 0;
  std::uint64_t grids = 0;        ///< Grids this request contributed to.
  double cycles = 0.0;
  double fault_cycles = 0.0;
};

/// Proportional device-cost attribution over a scheduled session.
///
/// Each context-stamped grid's busy cycles (node_end - node_start) are tiled
/// across its members proportionally to TraceMember::weight. Conservation is
/// bit-exact per grid by construction: the last member receives the exact
/// floating-point complement (nudged by ulps so the member-order fold equals
/// the grid's busy cycles to the last bit). Grids without a context
/// (kNoBatchId) are ignored.
struct CycleAttribution {
  /// Fold of every attributed grid's busy cycles, in node-id order. For
  /// single-member grids this equals the fold of the member shares, so each
  /// serve attempt's per-request total conserves bit-exactly.
  double attributed_cycles = 0.0;
  double attributed_fault_cycles = 0.0;
  std::uint64_t attributed_grids = 0;
  std::vector<RequestCycles> per_request;  ///< Sorted by request id.
};

CycleAttribution attribute_cycles(const LaunchGraph& graph,
                                  const ScheduleResult& sched);

/// Split `total` across `members` proportionally to weight, bit-exactly:
/// the returned shares fold (left to right) to exactly `total`. Non-positive
/// or non-finite weights are treated as zero; if no weight is positive the
/// split is uniform. Exposed for tests; attribute_cycles uses it per grid.
std::vector<double> split_cycles(double total,
                                 const std::vector<TraceMember>& members);

}  // namespace nestpar::simt
