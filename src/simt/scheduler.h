#pragma once

#include <vector>

#include "src/simt/device_spec.h"
#include "src/simt/launch_graph.h"

namespace nestpar::simt {

/// Timing of one scheduled run: per-kernel-node start/end times and the
/// total makespan, all in device cycles.
///
/// Beyond start/end, the scheduler records the full causal timeline of each
/// grid so the critical-path analyzer (critpath.h) can attribute every wait
/// to its binding edge. All vectors are indexed by node id; times are device
/// cycles. The causal order for any grid is
///   issued <= ready <= activated <= queued <= start <= blocks_done <= end.
struct ScheduleResult {
  double total_cycles = 0.0;
  std::vector<double> node_start;
  std::vector<double> node_end;
  /// When the launch call began on the issuing timeline (host launch loop or
  /// the parent block's issue point for device launches).
  std::vector<double> node_issued;
  /// When the launch latency (host_launch_us / device_launch_us) elapsed.
  std::vector<double> node_ready;
  /// When the grid-management unit finished activating the grid. Equal to
  /// `ready` for host-launched grids, which bypass the GMU queue.
  std::vector<double> node_activated;
  /// When the grid became eligible to start: activated, heads its stream
  /// FIFO, and all `depends_on` event dependencies completed.
  std::vector<double> node_queued;
  /// When the last block retired. `end` may exceed this by the atomic-
  /// hotspot drain interval.
  std::vector<double> node_blocks_done;
};

/// Timing pass: replays a recorded launch graph against the device model.
///
/// Model summary:
///  - Grids start when (a) their launch latency has elapsed (host or nested
///    launch), (b) their stream predecessor has completed, and (c) one of the
///    `max_concurrent_grids` slots is free.
///  - Blocks of running grids dispatch FIFO onto SMs subject to the resident
///    warp/block/thread/shared-memory/register limits (occupancy).
///  - Each SM is a processor-sharing server: resident blocks progress at a
///    rate proportional to their warp count, scaled by the SM issue width and
///    a latency-hiding factor that degrades when few warps are resident.
///  - A grid whose hottest atomic address received N operations cannot finish
///    earlier than start + N * atomic_drain_cycles (atomic-unit hotspot).
///
/// Side effect: fills the occupancy fields of each node's Metrics.
ScheduleResult schedule(const DeviceSpec& spec, LaunchGraph& graph);

}  // namespace nestpar::simt
