#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>

namespace nestpar::simt {

/// Alignment for model-visible staging buffers allocated while kernels run:
/// one full memory segment (and a whole shared-memory bank cycle, 32 banks x
/// 4 bytes). Pinning the base alignment makes the coalescing and
/// bank-conflict models independent of host heap layout, which is what lets
/// the serial and parallel engines charge bit-identical costs — worker
/// threads allocate from different malloc arenas than the main thread.
inline constexpr std::size_t kModelAlignment = 128;

/// Zero-initialized array of trivially-copyable T, aligned to a model
/// segment boundary. Use for any buffer whose address reaches LaneCtx ops.
template <class T>
std::shared_ptr<T[]> make_segment_array(std::size_t n) {
  if (n == 0) n = 1;
  T* p = static_cast<T*>(
      ::operator new(n * sizeof(T), std::align_val_t{kModelAlignment}));
  std::memset(static_cast<void*>(p), 0, n * sizeof(T));
  return std::shared_ptr<T[]>(p, [](T* q) {
    ::operator delete(static_cast<void*>(q),
                      std::align_val_t{kModelAlignment});
  });
}

}  // namespace nestpar::simt
