#include "src/simt/device_spec.h"

#include <algorithm>
#include <stdexcept>

namespace nestpar::simt {

ResourceLimits ResourceLimits::cdp_defaults() {
  ResourceLimits l;
  l.pending_launch_capacity = 2048;
  l.max_nesting_depth = 24;
  l.device_heap_bytes = 8 * 1024 * 1024;
  return l;
}

DeviceSpec DeviceSpec::k20() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::k40() {
  DeviceSpec s;
  s.num_sms = 15;
  s.clock_ghz = 0.745;
  return s;
}

DeviceSpec DeviceSpec::small_kepler() {
  DeviceSpec s;
  s.num_sms = 2;
  s.max_concurrent_grids = 16;
  return s;
}

int DeviceSpec::warps_per_block(int threads_per_block) const {
  return (threads_per_block + warp_size - 1) / warp_size;
}

int DeviceSpec::max_resident_blocks(int threads_per_block,
                                    std::size_t smem_per_block,
                                    int regs_per_thread) const {
  if (threads_per_block <= 0 || threads_per_block > max_threads_per_block) {
    throw std::invalid_argument("block size out of range");
  }
  if (smem_per_block > shared_mem_per_block) {
    throw std::invalid_argument("shared memory per block exceeds device limit");
  }
  const int warps = warps_per_block(threads_per_block);

  int by_blocks = max_blocks_per_sm;
  int by_warps = max_warps_per_sm / warps;
  int by_threads = max_threads_per_sm / threads_per_block;
  int by_smem = smem_per_block > 0
                    ? static_cast<int>(shared_mem_per_sm / smem_per_block)
                    : max_blocks_per_sm;
  // Register allocation granularity is ignored; the paper notes the studied
  // kernels have low register pressure.
  int by_regs = regs_per_thread > 0
                    ? registers_per_sm / (regs_per_thread * threads_per_block)
                    : max_blocks_per_sm;

  return std::max(0, std::min({by_blocks, by_warps, by_threads, by_smem, by_regs}));
}

}  // namespace nestpar::simt
