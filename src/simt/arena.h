#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#include "src/simt/aligned.h"
#include "src/simt/op.h"

namespace nestpar::simt {

/// Allocation-free fast paths for the functional pass: a bump arena for
/// block-local (shared-memory) storage, an open-addressing histogram for
/// atomic hotspot counting, and a structure-of-arrays warp trace that batches
/// lane ops per warp. All three are *reused* across warps, phases, and blocks
/// (see detail::BlockScratch in ctx.h); none of them can influence modeled
/// cycles, because the 128-byte model alignment (host_alloc.h) guarantees the
/// cost model never observes where internal storage lives.

/// Bump allocator over kModelAlignment-aligned chunks. `alloc` returns
/// zero-filled storage aligned to at least 128 bytes, so shared-memory arrays
/// carved from it always start on a full bank cycle — the property the
/// bank-conflict model needs to stay independent of host heap layout.
/// `reset()` rewinds without freeing, making steady-state allocation a
/// pointer bump plus a memset.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    for (Chunk& c : chunks_) {
      ::operator delete(c.base, std::align_val_t{kModelAlignment});
    }
  }

  /// Zeroed storage for `bytes` bytes, aligned to max(align, 128).
  void* alloc(std::size_t bytes, std::size_t align) {
    if (align < kModelAlignment) align = kModelAlignment;
    for (;;) {
      if (cur_ < chunks_.size()) {
        Chunk& c = chunks_[cur_];
        const auto base = reinterpret_cast<std::uintptr_t>(c.base);
        const std::size_t off =
            ((base + used_ + align - 1) & ~(align - 1)) - base;
        if (off + bytes <= c.cap) {
          used_ = off + bytes;
          char* p = c.base + off;
          std::memset(p, 0, bytes);
          return p;
        }
        // Current chunk exhausted (or too small): move to the next. Chunk
        // capacities are non-decreasing, so a fresh request either fits a
        // later reserved chunk or appends one sized for it.
        ++cur_;
        used_ = 0;
        continue;
      }
      constexpr std::size_t kMinChunk = 96 * 1024;  // > 48KB smem + padding.
      std::size_t cap = bytes + align;
      if (cap < kMinChunk) cap = kMinChunk;
      if (!chunks_.empty() && cap < chunks_.back().cap) {
        cap = chunks_.back().cap;
      }
      chunks_.push_back(Chunk{
          static_cast<char*>(
              ::operator new(cap, std::align_val_t{kModelAlignment})),
          cap});
      cur_ = chunks_.size() - 1;
      used_ = 0;
    }
  }

  /// Rewind to empty; chunk storage is retained for reuse.
  void reset() {
    cur_ = 0;
    used_ = 0;
  }

 private:
  struct Chunk {
    char* base = nullptr;
    std::size_t cap = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;    ///< Index of the chunk being bumped.
  std::size_t used_ = 0;   ///< Bytes consumed in chunks_[cur_].
};

/// Open-addressing histogram: 64-bit key -> 64-bit count. Replaces the
/// std::unordered_map the atomic-hotspot model used per grid — the single
/// hottest path of the pre-SoA engine (one increment per atomic op per lane).
/// Linear probing over a power-of-two table, splitmix64 finalizer as the
/// hash. Only the *maximum* count and order-independent merging are ever
/// consumed (KernelNode::hottest_atomic_ops), so iteration order is free to
/// be table order.
///
/// Key 0 is reserved as the empty-slot sentinel; real keys are atomic-unit
/// indices (address / atomic_segment_bytes) of heap addresses and are never
/// zero, but a dedicated counter keeps the container total just in case.
class FlatHist {
 public:
  FlatHist() = default;
  FlatHist(const FlatHist&) = delete;
  FlatHist& operator=(const FlatHist&) = delete;
  FlatHist(FlatHist&& o) noexcept { swap(o); }
  FlatHist& operator=(FlatHist&& o) noexcept {
    swap(o);
    return *this;
  }
  ~FlatHist() { delete[] slots_; }

  /// Increment the count of `key` by one.
  void bump(std::uint64_t key) { add(key, 1); }

  /// Increment the count of `key` by `n` (merge building block).
  void add(std::uint64_t key, std::uint64_t n) {
    if (key == 0) {
      zero_count_ += n;
      return;
    }
    if (size_ * 4 >= cap_ * 3) grow();
    std::uint64_t i = mix(key) & (cap_ - 1);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) {
        slots_[i].count += n;
        return;
      }
      i = (i + 1) & (cap_ - 1);
    }
    slots_[i] = Slot{key, n};
    ++size_;
  }

  /// Largest count over all keys (0 when empty) — the hotspot-serialization
  /// input of the timing model.
  std::uint64_t max_count() const {
    std::uint64_t m = zero_count_;
    for (std::uint64_t i = 0; i < cap_; ++i) {
      if (slots_[i].key != 0 && slots_[i].count > m) m = slots_[i].count;
    }
    return m;
  }

  /// Visit every (key, count) pair in unspecified order. Callers must only
  /// perform order-independent reductions (the merge in Recorder::merge_grid
  /// sums counts per key, then takes the max — both commutative).
  template <class F>
  void for_each(F&& f) const {
    if (zero_count_ > 0) f(std::uint64_t{0}, zero_count_);
    for (std::uint64_t i = 0; i < cap_; ++i) {
      if (slots_[i].key != 0) f(slots_[i].key, slots_[i].count);
    }
  }

  bool empty() const { return size_ == 0 && zero_count_ == 0; }

  /// Forget all entries; table storage is retained for reuse.
  void clear() {
    if (slots_ != nullptr) std::memset(slots_, 0, cap_ * sizeof(Slot));
    size_ = 0;
    zero_count_ = 0;
  }

 private:
  /// Key and count share one 16-byte slot so a probe touches a single cache
  /// line instead of one in a keys array plus one in a counts array — atomic
  /// histograms on large graphs are bumped once per atomic op with an
  /// essentially random key, so the second miss was pure overhead.
  struct Slot {
    std::uint64_t key;    ///< 0 = empty slot.
    std::uint64_t count;  ///< Valid where key != 0.
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void swap(FlatHist& o) noexcept {
    std::swap(slots_, o.slots_);
    std::swap(cap_, o.cap_);
    std::swap(size_, o.size_);
    std::swap(zero_count_, o.zero_count_);
  }

  void grow() {
    const std::uint64_t ncap = cap_ == 0 ? 64 : cap_ * 2;
    auto* ns = new Slot[ncap]();
    for (std::uint64_t i = 0; i < cap_; ++i) {
      if (slots_[i].key == 0) continue;
      std::uint64_t j = mix(slots_[i].key) & (ncap - 1);
      while (ns[j].key != 0) j = (j + 1) & (ncap - 1);
      ns[j] = slots_[i];
    }
    delete[] slots_;
    slots_ = ns;
    cap_ = ncap;
  }

  Slot* slots_ = nullptr;
  std::uint64_t cap_ = 0;  ///< Power of two (or 0 before first use).
  std::uint64_t size_ = 0;
  std::uint64_t zero_count_ = 0;
};

/// Open-addressing map: 64-bit key -> 32-bit value. Replaces the
/// std::unordered_maps the recorder used for stream interning and stream
/// tails — one probe per device-launched child grid is hot under
/// launch-storm templates (dpar-naive). Linear probing over a power-of-two
/// table, splitmix-style multiply as the hash. Values are dense ids assigned
/// in first-insertion order by the caller, so the map implementation cannot
/// influence them (determinism contract, see docs/SIMULATOR.md).
///
/// Keys are stored biased by +1 so 0 can serve as the empty sentinel; the
/// one unrepresentable key (~0ull) never occurs (stream keys carry a tag or
/// a +1-biased slot in their low bits).
class FlatIdMap {
 public:
  FlatIdMap() = default;
  FlatIdMap(const FlatIdMap&) = delete;
  FlatIdMap& operator=(const FlatIdMap&) = delete;
  ~FlatIdMap() {
    delete[] keys_;
    delete[] vals_;
  }

  /// Pointer to the value slot for `key`, or nullptr when absent.
  std::uint32_t* find(std::uint64_t key) {
    if (cap_ == 0) return nullptr;
    const std::uint64_t biased = key + 1;
    std::uint64_t i = mix(biased) & (cap_ - 1);
    while (keys_[i] != 0) {
      if (keys_[i] == biased) return &vals_[i];
      i = (i + 1) & (cap_ - 1);
    }
    return nullptr;
  }

  /// The value slot for `key`, inserting `init` when absent. `inserted`
  /// reports which happened.
  std::uint32_t& get_or_insert(std::uint64_t key, std::uint32_t init,
                               bool& inserted) {
    if (size_ * 4 >= cap_ * 3) grow();
    const std::uint64_t biased = key + 1;
    std::uint64_t i = mix(biased) & (cap_ - 1);
    while (keys_[i] != 0) {
      if (keys_[i] == biased) {
        inserted = false;
        return vals_[i];
      }
      i = (i + 1) & (cap_ - 1);
    }
    keys_[i] = biased;
    vals_[i] = init;
    ++size_;
    inserted = true;
    return vals_[i];
  }

  /// Insert-or-assign (stream tails are overwritten on every host launch).
  void put(std::uint64_t key, std::uint32_t value) {
    bool inserted = false;
    get_or_insert(key, value, inserted) = value;
  }

  /// Forget all entries; table storage is retained for reuse.
  void clear() {
    if (keys_ != nullptr) std::memset(keys_, 0, cap_ * sizeof(std::uint64_t));
    size_ = 0;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void grow() {
    const std::uint64_t ncap = cap_ == 0 ? 64 : cap_ * 2;
    auto* nk = new std::uint64_t[ncap]();
    auto* nv = new std::uint32_t[ncap];
    for (std::uint64_t i = 0; i < cap_; ++i) {
      if (keys_[i] == 0) continue;
      std::uint64_t j = mix(keys_[i]) & (ncap - 1);
      while (nk[j] != 0) j = (j + 1) & (ncap - 1);
      nk[j] = keys_[i];
      nv[j] = vals_[i];
    }
    delete[] keys_;
    delete[] vals_;
    keys_ = nk;
    vals_ = nv;
    cap_ = ncap;
  }

  std::uint64_t* keys_ = nullptr;  ///< 0 = empty slot; stored key+1.
  std::uint32_t* vals_ = nullptr;  ///< Valid where keys_[i] != 0.
  std::uint64_t cap_ = 0;          ///< Power of two (or 0 before first use).
  std::uint64_t size_ = 0;
};

/// Structure-of-arrays op trace for one warp. The functional pass runs the
/// lanes of a warp sequentially, so each lane's ops land contiguously in four
/// parallel columns (kind / count / bytes / addr) separated by recorded lane
/// offsets — one growable buffer per warp instead of 32 per-lane
/// std::vector<Op>s. The warp combiner walks the columns step-major; the
/// branchy AoS `Op` load of the old layout becomes a one-byte kind fetch with
/// the operand columns touched only by the branch that needs them.
///
/// Ownership/lifetime: a WarpTrace lives inside a detail::BlockScratch and is
/// recycled for every warp of every phase of every block a host thread runs
/// at a given nesting depth. Its contents are only valid between
/// `begin_warp()` and the `combine_warp` call that reduces them; nothing
/// downstream retains pointers into the columns.
class WarpTrace {
 public:
  WarpTrace() = default;
  WarpTrace(const WarpTrace&) = delete;
  WarpTrace& operator=(const WarpTrace&) = delete;
  ~WarpTrace() {
    ::operator delete(storage_, std::align_val_t{kModelAlignment});
  }

  /// Start recording a new warp (drops previous contents, keeps capacity).
  void begin_warp() {
    size_ = 0;
    lanes_ = 0;
  }

  /// Mark the start of the next lane's ops. Lanes are recorded in ascending
  /// lane order — combine_warp and the launch-record ordering rely on it.
  void begin_lane() { lane_begin_[lanes_++] = size_; }

  /// Append one op for the current lane (writes all four columns).
  void push(OpKind kind, std::uint32_t count, std::uint32_t bytes,
            std::uint64_t addr) {
    if (size_ == cap_) grow();
    kind_[size_] = static_cast<std::uint8_t>(kind);
    count_[size_] = count;
    bytes_[size_] = bytes;
    addr_[size_] = addr;
    ++size_;
  }

  /// Specialized appends that write only the columns the combiner's arm for
  /// that kind ever loads (kCompute/kStall: count; global loads/stores:
  /// bytes+addr; shared/atomic/launch ops: addr). The untouched columns keep
  /// stale bytes at those indices — combine_warp is the trace's only reader
  /// and never dereferences a column its op kind doesn't use. Recording is
  /// one store per op hotter than combining, so the skipped columns are a
  /// measurable share of functional-pass memory traffic.
  void push_count(OpKind kind, std::uint32_t count) {
    if (size_ == cap_) grow();
    kind_[size_] = static_cast<std::uint8_t>(kind);
    count_[size_] = count;
    ++size_;
  }
  void push_mem(OpKind kind, std::uint32_t bytes, std::uint64_t addr) {
    if (size_ == cap_) grow();
    kind_[size_] = static_cast<std::uint8_t>(kind);
    bytes_[size_] = bytes;
    addr_[size_] = addr;
    ++size_;
  }
  void push_addr(OpKind kind, std::uint64_t addr) {
    if (size_ == cap_) grow();
    kind_[size_] = static_cast<std::uint8_t>(kind);
    addr_[size_] = addr;
    ++size_;
  }

  int lanes() const { return lanes_; }
  std::uint32_t lane_begin(int l) const { return lane_begin_[l]; }
  std::uint32_t lane_end(int l) const {
    return l + 1 < lanes_ ? lane_begin_[l + 1] : size_;
  }

  const std::uint8_t* kinds() const { return kind_; }
  const std::uint32_t* counts() const { return count_; }
  const std::uint32_t* bytes() const { return bytes_; }
  const std::uint64_t* addrs() const { return addr_; }

 private:
  void grow() {
    const std::uint32_t ncap = cap_ == 0 ? 1024 : cap_ * 2;
    // One allocation, four columns; widest first so each column stays
    // naturally aligned.
    const std::size_t bytes_needed =
        static_cast<std::size_t>(ncap) * (8 + 4 + 4 + 1);
    char* ns = static_cast<char*>(
        ::operator new(bytes_needed, std::align_val_t{kModelAlignment}));
    auto* na = reinterpret_cast<std::uint64_t*>(ns);
    auto* nc = reinterpret_cast<std::uint32_t*>(ns + std::size_t{ncap} * 8);
    auto* nb = reinterpret_cast<std::uint32_t*>(ns + std::size_t{ncap} * 12);
    auto* nk = reinterpret_cast<std::uint8_t*>(ns + std::size_t{ncap} * 16);
    if (size_ > 0) {
      std::memcpy(na, addr_, size_ * sizeof(std::uint64_t));
      std::memcpy(nc, count_, size_ * sizeof(std::uint32_t));
      std::memcpy(nb, bytes_, size_ * sizeof(std::uint32_t));
      std::memcpy(nk, kind_, size_ * sizeof(std::uint8_t));
    }
    ::operator delete(storage_, std::align_val_t{kModelAlignment});
    storage_ = ns;
    addr_ = na;
    count_ = nc;
    bytes_ = nb;
    kind_ = nk;
    cap_ = ncap;
  }

  char* storage_ = nullptr;
  std::uint64_t* addr_ = nullptr;
  std::uint32_t* count_ = nullptr;
  std::uint32_t* bytes_ = nullptr;
  std::uint8_t* kind_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
  std::uint32_t lane_begin_[32] = {};
  int lanes_ = 0;
};

}  // namespace nestpar::simt
