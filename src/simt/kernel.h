#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "src/simt/trace_context.h"

namespace nestpar::simt {

class BlockCtx;
class LaneCtx;

/// A kernel is a per-block callable. Inside it, `BlockCtx::each_thread`
/// runs a per-lane phase over every thread of the block; consecutive phases
/// are separated by an implicit block-wide barrier (this is how
/// `__syncthreads()`-structured CUDA code is expressed — see BlockCtx).
using Kernel = std::function<void(BlockCtx&)>;

/// Per-lane body for simple "flat" kernels with a single phase.
using ThreadKernel = std::function<void(LaneCtx&)>;

/// Identifies a CUDA stream for host-side launches. Stream 0 is the default
/// (NULL) stream; distinct non-zero handles may execute concurrently.
struct StreamHandle {
  int id = 0;
  friend bool operator==(StreamHandle a, StreamHandle b) { return a.id == b.id; }
};

/// Handle to a recorded stream event (cudaEvent_t analogue).
struct EventHandle {
  std::uint32_t id = 0;
};

/// Grid shape and resources for one kernel launch (1-D, as in the paper).
struct LaunchConfig {
  int grid_blocks = 1;
  int block_threads = 128;
  std::size_t smem_bytes = 0;     ///< Static+dynamic shared memory per block.
  int regs_per_thread = 24;       ///< For the occupancy calculator.
  /// Number of deferred work descriptors this grid aggregates (workload
  /// consolidation). 0/1 = an ordinary launch; K > 1 means the launch stands
  /// in for K individual child launches and the GMU model charges extra
  /// per-descriptor service time on top of the single launch (device_spec.h:
  /// aggregated_descriptor_service_us).
  int aggregated_descriptors = 0;
  std::string name = "kernel";    ///< Label used for per-kernel metrics.
  /// Serving-layer provenance for this specific launch. When inactive (the
  /// default) the recorder stamps its ambient context instead; filling it
  /// lets a batcher attribute one consolidated grid to several requesters.
  /// Pure metadata: never read by the functional or timing pass.
  TraceContext trace;
};

/// Wrap a per-lane body as a (single-phase) block kernel.
Kernel as_kernel(ThreadKernel body);

}  // namespace nestpar::simt
