#pragma once

#include <cstdint>

namespace nestpar::simt {

/// Kinds of lane-level operations the functional pass records. One `Op` is one
/// SIMT "step"; lanes of a warp advance through their traces in lockstep.
enum class OpKind : std::uint8_t {
  kCompute,      ///< `count` arithmetic instructions.
  kGlobalLoad,   ///< Global-memory read of `bytes` at `addr` (coalesced per warp).
  kGlobalStore,  ///< Global-memory write of `bytes` at `addr`.
  kSharedLoad,   ///< Shared-memory read (bank conflicts modeled per warp).
  kSharedStore,  ///< Shared-memory write.
  kAtomic,       ///< Read-modify-write on global `addr` (serializes per address).
  kLaunch,       ///< Device-side kernel launch; `child` is the kernel node id.
  kLaunchFail,   ///< Refused/failed launch attempt: issue cost, no child grid.
  kStall,        ///< `count` idle cycles (retry backoff); pure latency.
};

/// A single recorded lane operation. Compact: the functional pass streams
/// millions of these through per-warp buffers that are reduced immediately.
struct Op {
  OpKind kind = OpKind::kCompute;
  std::uint32_t count = 1;   ///< Instruction count (kCompute) or 1.
  std::uint32_t bytes = 0;   ///< Access width for memory ops.
  std::uint64_t addr = 0;    ///< Byte address (memory/atomic) or child id (kLaunch).
};

}  // namespace nestpar::simt
