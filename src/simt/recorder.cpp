#include "src/simt/recorder.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace nestpar::simt {

// ---------------------------------------------------------------------------
// Kernel helpers
// ---------------------------------------------------------------------------

Kernel as_kernel(ThreadKernel body) {
  return [body = std::move(body)](BlockCtx& blk) {
    blk.each_thread([&](LaneCtx& t) { body(t); });
  };
}

// ---------------------------------------------------------------------------
// LaneCtx
// ---------------------------------------------------------------------------

LaneCtx::LaneCtx(BlockCtx* blk, std::vector<Op>* trace, int thread_idx)
    : blk_(blk),
      trace_(trace),
      thread_idx_(thread_idx),
      block_idx_(blk->block_idx_),
      block_dim_(blk->block_dim_),
      grid_dim_(blk->grid_dim_) {}

void LaneCtx::launch(const LaunchConfig& cfg, Kernel k) {
  launch(cfg, std::move(k), -1);
}

void LaneCtx::launch(const LaunchConfig& cfg, Kernel k, int extra_stream_slot) {
  const std::uint32_t child =
      blk_->rec_->launch_device(cfg, std::move(k), blk_->node_id_,
                                blk_->block_idx_, extra_stream_slot,
                                /*deferred=*/false);
  trace_->push_back(Op{OpKind::kLaunch, 1, 0, child});
}

void LaneCtx::launch_async(const LaunchConfig& cfg, Kernel k,
                           int extra_stream_slot) {
  const std::uint32_t child =
      blk_->rec_->launch_device(cfg, std::move(k), blk_->node_id_,
                                blk_->block_idx_, extra_stream_slot,
                                /*deferred=*/true);
  trace_->push_back(Op{OpKind::kLaunch, 1, 0, child});
}

void LaneCtx::launch_threads(const LaunchConfig& cfg, ThreadKernel k) {
  launch(cfg, as_kernel(std::move(k)), -1);
}

void LaneCtx::launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                             int extra_stream_slot) {
  launch(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

void LaneCtx::launch_threads_async(const LaunchConfig& cfg, ThreadKernel k,
                                   int extra_stream_slot) {
  launch_async(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

// ---------------------------------------------------------------------------
// BlockCtx
// ---------------------------------------------------------------------------

BlockCtx::BlockCtx(Recorder* rec, std::uint32_t node_id, int block_idx,
                   int block_dim, int grid_dim)
    : rec_(rec),
      node_id_(node_id),
      block_idx_(block_idx),
      block_dim_(block_dim),
      grid_dim_(grid_dim),
      lane_traces_(32) {}

BlockCtx::~BlockCtx() = default;

const DeviceSpec& BlockCtx::spec() const { return rec_->spec(); }

void* BlockCtx::shared_alloc(std::size_t bytes, std::size_t align) {
  shared_used_ += bytes;
  if (shared_used_ > rec_->spec().shared_mem_per_block) {
    throw std::runtime_error("shared memory per block exceeded (" +
                             std::to_string(shared_used_) + " bytes)");
  }
  shared_chunks_.emplace_back(bytes + align, 0);
  auto* base = shared_chunks_.back().data();
  auto misalign = reinterpret_cast<std::uintptr_t>(base) % align;
  return base + (misalign == 0 ? 0 : align - misalign);
}

void BlockCtx::each_thread(const std::function<void(LaneCtx&)>& fn) {
  const int warps = (block_dim_ + 31) / 32;
  if (phase_ > 0) {
    // Implicit __syncthreads() between phases.
    issue_cycles_ += rec_->spec().sync_cycles * warps;
  }
  ++phase_;
  for (int first = 0; first < block_dim_; first += 32) {
    const int lanes = std::min(32, block_dim_ - first);
    for (int l = 0; l < lanes; ++l) {
      lane_traces_[l].clear();
      LaneCtx lc(this, &lane_traces_[l], first + l);
      fn(lc);
    }
    flush_warp(first, lanes);
  }
}

void BlockCtx::flush_warp(int /*first_thread*/, int lanes) {
  // Fetch the node reference fresh: nested launches during lane execution may
  // have grown the node vector.
  KernelNode& node = rec_->graph_.nodes[node_id_];
  issue_cycles_ += rec_->combine_warp(node, lane_traces_, lanes, issue_cycles_,
                                      pending_children_,
                                      rec_->atomic_stack_.back());
}

void BlockCtx::finalize() {
  KernelNode& node = rec_->graph_.nodes[node_id_];
  BlockCost& bc = node.blocks[static_cast<std::size_t>(block_idx_)];
  bc.issue_cycles = issue_cycles_;
  bc.warps = static_cast<std::uint32_t>((block_dim_ + 31) / 32);
  bc.children.reserve(pending_children_.size());
  const double total = issue_cycles_ > 0 ? issue_cycles_ : 1.0;
  for (const ChildLaunchRecord& c : pending_children_) {
    bc.children.push_back(
        ChildLaunch{c.child_kernel, std::clamp(c.offset_cycles / total, 0.0, 1.0)});
  }
  node.metrics.blocks += 1;
  node.metrics.warps += bc.warps;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder(const DeviceSpec& spec, int max_nesting_depth)
    : spec_(spec), max_depth_(max_nesting_depth) {}

void Recorder::reset() {
  graph_ = LaunchGraph{};
  seq_ = 0;
  stream_ids_.clear();
  stream_tail_.clear();
  events_.clear();
  pending_waits_.clear();
  atomic_stack_.clear();
  deferred_.clear();
  drain_rng_.seed(0x9e3779b97f4a7c15ull);
}

std::uint32_t Recorder::intern_stream(std::uint64_t key) {
  auto [it, inserted] = stream_ids_.emplace(key, graph_.num_streams);
  if (inserted) ++graph_.num_streams;
  return it->second;
}

std::uint32_t Recorder::stream_id_for_host(int user_stream) {
  if (user_stream == 0) return 0;  // Default stream is dense id 0.
  return intern_stream((1ull << 63) | static_cast<std::uint32_t>(user_stream));
}

std::uint32_t Recorder::stream_id_for_device(std::uint32_t parent_node,
                                             int parent_block, int slot) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent_node) << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent_block))
       << 8) |
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(slot + 1));
  return intern_stream(key);
}

std::uint32_t Recorder::create_node(const LaunchConfig& cfg,
                                    LaunchOrigin origin, std::uint32_t stream,
                                    std::int64_t parent,
                                    std::int32_t parent_block) {
  if (cfg.grid_blocks < 1) throw std::invalid_argument("grid_blocks < 1");
  if (cfg.block_threads < 1 ||
      cfg.block_threads > spec_.max_threads_per_block) {
    throw std::invalid_argument("block_threads out of range");
  }
  if (cfg.smem_bytes > spec_.shared_mem_per_block) {
    throw std::invalid_argument("smem_bytes exceeds device limit");
  }
  KernelNode node;
  node.id = static_cast<std::uint32_t>(graph_.nodes.size());
  node.nest_depth =
      parent < 0 ? 0
                 : graph_.nodes[static_cast<std::size_t>(parent)].nest_depth + 1;
  if (node.nest_depth > static_cast<std::uint32_t>(max_depth_)) {
    throw std::runtime_error("nested launch depth exceeds limit (" +
                             std::to_string(max_depth_) + ")");
  }
  node.name = cfg.name;
  node.origin = origin;
  node.grid_blocks = cfg.grid_blocks;
  node.block_threads = cfg.block_threads;
  node.smem_bytes = cfg.smem_bytes;
  node.regs_per_thread = cfg.regs_per_thread;
  node.stream = stream;
  node.seq = seq_++;
  node.parent_kernel = parent;
  node.parent_block = parent_block;
  graph_.nodes.push_back(std::move(node));
  return graph_.nodes.back().id;
}

namespace {
constexpr std::uint32_t kNoNode = 0xffffffffu;
}  // namespace

EventHandle Recorder::record_event(StreamHandle stream) {
  const std::uint32_t sid = stream_id_for_host(stream.id);
  const auto it = stream_tail_.find(sid);
  events_.push_back(it == stream_tail_.end() ? kNoNode : it->second);
  return EventHandle{static_cast<std::uint32_t>(events_.size() - 1)};
}

void Recorder::stream_wait(StreamHandle stream, EventHandle event) {
  if (event.id >= events_.size()) {
    throw std::invalid_argument("stream_wait: unknown event");
  }
  const std::uint32_t captured = events_[event.id];
  if (captured == kNoNode) return;  // Event on an empty stream: complete.
  pending_waits_[stream_id_for_host(stream.id)].push_back(captured);
}

std::uint32_t Recorder::launch_host(const LaunchConfig& cfg, const Kernel& k,
                                    StreamHandle stream) {
  const std::uint32_t sid = stream_id_for_host(stream.id);
  const std::uint32_t id = create_node(cfg, LaunchOrigin::kHost, sid, -1, -1);
  graph_.nodes[id].metrics.host_launches = 1;
  // Attach (and consume) any cross-stream waits registered on this stream;
  // stream FIFO order carries the dependency to later grids transitively.
  if (const auto it = pending_waits_.find(sid); it != pending_waits_.end()) {
    graph_.nodes[id].depends_on = std::move(it->second);
    pending_waits_.erase(it);
  }
  stream_tail_[sid] = id;
  run_grid(id, k);
  // Drain fire-and-forget device launches. The hardware gives no ordering
  // guarantee across blocks, so the drain picks pending grids pseudo-randomly
  // (deterministically seeded): unordered algorithms see the re-traversal
  // work a real nondeterministic schedule causes, not an idealized wavefront.
  while (!deferred_.empty()) {
    // Uniform-random pick: the hardware gives no cross-block ordering
    // guarantee, so unordered algorithms see level-mixing and the resulting
    // re-traversal work instead of an idealized breadth-first wavefront.
    // (A depth-first order would exceed the CDP nesting limit, exactly as it
    // would on silicon, so execution is never LIFO.)
    const std::size_t pick = drain_rng_() % deferred_.size();
    auto [child_id, child_kernel] = std::move(deferred_[pick]);
    deferred_[pick] = std::move(deferred_.back());
    deferred_.pop_back();
    run_grid(child_id, child_kernel);
  }
  return id;
}

std::uint32_t Recorder::launch_device(const LaunchConfig& cfg, Kernel k,
                                      std::uint32_t parent_node,
                                      int parent_block, int extra_stream_slot,
                                      bool deferred) {
  const std::uint32_t stream =
      stream_id_for_device(parent_node, parent_block, extra_stream_slot);
  const std::uint32_t id = create_node(cfg, LaunchOrigin::kDevice, stream,
                                       parent_node, parent_block);
  if (deferred) {
    deferred_.emplace_back(id, std::move(k));
  } else {
    run_grid(id, k);
  }
  return id;
}

void Recorder::run_grid(std::uint32_t node_id, const Kernel& k) {
  atomic_stack_.emplace_back();
  const int nblocks = graph_.nodes[node_id].grid_blocks;
  const int nthreads = graph_.nodes[node_id].block_threads;
  graph_.nodes[node_id].blocks.resize(static_cast<std::size_t>(nblocks));
  for (int b = 0; b < nblocks; ++b) {
    BlockCtx blk(this, node_id, b, nthreads, nblocks);
    k(blk);
    blk.finalize();
  }
  std::uint64_t hottest = 0;
  for (const auto& [addr, count] : atomic_stack_.back()) {
    hottest = std::max(hottest, count);
  }
  graph_.nodes[node_id].hottest_atomic_ops = hottest;
  atomic_stack_.pop_back();
}

// ---------------------------------------------------------------------------
// Warp combining
// ---------------------------------------------------------------------------

namespace {

/// Count unique values in the first `n` slots of `v` (sorts in place).
int unique_count(std::uint64_t* v, int n) {
  std::sort(v, v + n);
  int u = 0;
  for (int i = 0; i < n; ++i) {
    if (i == 0 || v[i] != v[i - 1]) ++u;
  }
  return u;
}

}  // namespace

double Recorder::combine_warp(
    KernelNode& node, const std::vector<std::vector<Op>>& lanes,
    int active_lanes, double issue_base,
    std::vector<ChildLaunchRecord>& children,
    std::unordered_map<std::uint64_t, std::uint64_t>& hist) {
  std::size_t steps = 0;
  for (int l = 0; l < active_lanes; ++l) {
    steps = std::max(steps, lanes[l].size());
  }
  if (steps == 0) return 0.0;

  Metrics& m = node.metrics;
  const std::uint64_t seg = static_cast<std::uint64_t>(spec_.mem_segment_bytes);
  const std::uint64_t aseg =
      static_cast<std::uint64_t>(spec_.atomic_segment_bytes);
  double cost = 0.0;

  std::uint64_t ld_segs[64], st_segs[64], at_addrs[32], at_segs[64];
  std::uint32_t bank_of[32];
  std::uint32_t launch_children[32];

  for (std::size_t t = 0; t < steps; ++t) {
    std::uint32_t comp_n = 0, comp_sum = 0, comp_max = 0;
    int ld_n = 0, st_n = 0, sh_n = 0, at_n = 0, ln_n = 0;
    int ld_seg_n = 0, st_seg_n = 0, at_seg_n = 0;
    int ld_extra = 0, st_extra = 0;
    std::uint64_t ld_req = 0, st_req = 0;

    for (int l = 0; l < active_lanes; ++l) {
      const auto& tr = lanes[l];
      if (tr.size() <= t) continue;
      const Op& op = tr[t];
      switch (op.kind) {
        case OpKind::kCompute:
          ++comp_n;
          comp_sum += op.count;
          comp_max = std::max(comp_max, op.count);
          break;
        case OpKind::kGlobalLoad: {
          ++ld_n;
          ld_req += op.bytes;
          const std::uint64_t s0 = op.addr / seg;
          const std::uint64_t s1 = (op.addr + op.bytes - 1) / seg;
          ld_segs[ld_seg_n++] = s0;
          if (s1 != s0) ld_segs[ld_seg_n++] = s1;
          // Long ranged charges (charge_load) span contiguous segments that
          // cannot collide with other lanes' — count them directly.
          if (s1 > s0 + 1) ld_extra += static_cast<int>(s1 - s0 - 1);
          break;
        }
        case OpKind::kGlobalStore: {
          ++st_n;
          st_req += op.bytes;
          const std::uint64_t s0 = op.addr / seg;
          const std::uint64_t s1 = (op.addr + op.bytes - 1) / seg;
          st_segs[st_seg_n++] = s0;
          if (s1 != s0) st_segs[st_seg_n++] = s1;
          if (s1 > s0 + 1) st_extra += static_cast<int>(s1 - s0 - 1);
          break;
        }
        case OpKind::kSharedLoad:
        case OpKind::kSharedStore:
          bank_of[sh_n++] = static_cast<std::uint32_t>((op.addr / 4) % 32);
          break;
        case OpKind::kAtomic: {
          at_addrs[at_n] = op.addr / aseg;
          const std::uint64_t s0 = op.addr / seg;
          at_segs[at_seg_n++] = s0;
          ++at_n;
          break;
        }
        case OpKind::kLaunch:
          launch_children[ln_n++] = static_cast<std::uint32_t>(op.addr);
          break;
      }
    }

    // Each op-kind group at this step is a separately issued (serialized)
    // instruction with only its lanes active — matching SIMT divergence.
    if (comp_n > 0) {
      cost += comp_max * spec_.compute_op_cycles;
      m.warp_steps += comp_max;
      m.active_lane_ops += comp_sum;
      m.compute_ops += comp_sum;
    }
    if (ld_n > 0) {
      const int k = unique_count(ld_segs, ld_seg_n) + ld_extra;
      cost += spec_.mem_base_cycles + k * spec_.mem_transaction_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(ld_n);
      m.gld_requested_bytes += ld_req;
      m.gld_transferred_bytes += static_cast<std::uint64_t>(k) * seg;
    }
    if (st_n > 0) {
      const int k = unique_count(st_segs, st_seg_n) + st_extra;
      cost += spec_.mem_base_cycles + k * spec_.mem_transaction_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(st_n);
      m.gst_requested_bytes += st_req;
      m.gst_transferred_bytes += static_cast<std::uint64_t>(k) * seg;
    }
    if (sh_n > 0) {
      // Bank-conflict ways: max lanes hitting the same 4-byte bank.
      int ways = 1;
      for (int i = 0; i < sh_n; ++i) {
        int same = 1;
        for (int j = 0; j < i; ++j) {
          if (bank_of[j] == bank_of[i]) ++same;
        }
        ways = std::max(ways, same);
      }
      cost += spec_.shared_op_cycles * ways;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(sh_n);
      m.shared_ops += static_cast<std::uint64_t>(sh_n);
    }
    if (at_n > 0) {
      // Intra-warp serialization on identical addresses + transactions for
      // the distinct memory segments touched.
      int ways = 1;
      for (int i = 0; i < at_n; ++i) {
        int same = 1;
        for (int j = 0; j < i; ++j) {
          if (at_addrs[j] == at_addrs[i]) ++same;
        }
        ways = std::max(ways, same);
        ++hist[at_addrs[i]];
      }
      const int k = unique_count(at_segs, at_seg_n);
      cost += spec_.atomic_op_cycles * ways + k * spec_.mem_transaction_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(at_n);
      m.atomic_ops += static_cast<std::uint64_t>(at_n);
    }
    if (ln_n > 0) {
      // Device launches from one warp serialize through the launch queue.
      for (int i = 0; i < ln_n; ++i) {
        cost += spec_.launch_issue_cycles;
        children.push_back(
            ChildLaunchRecord{launch_children[i], issue_base + cost});
      }
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(ln_n);
      m.device_launches += static_cast<std::uint64_t>(ln_n);
    }
  }
  return cost;
}

}  // namespace nestpar::simt
