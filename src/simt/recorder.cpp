#include "src/simt/recorder.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/simt/thread_pool.h"

namespace nestpar::simt {

// ---------------------------------------------------------------------------
// Kernel helpers
// ---------------------------------------------------------------------------

Kernel as_kernel(ThreadKernel body) {
  return [body = std::move(body)](BlockCtx& blk) {
    blk.each_thread([&](LaneCtx& t) { body(t); });
  };
}

// ---------------------------------------------------------------------------
// Per-block recording (the engine's unit of parallelism)
// ---------------------------------------------------------------------------

namespace detail {

/// One device-side grid recorded while a block task ran, in creation (DFS)
/// order. Ids are local to the owning BlockRecord; the merge step remaps
/// them to global node ids.
struct ArenaNode {
  LaunchConfig cfg;
  Kernel kernel;                   ///< Retained only for deferred launches.
  std::int64_t parent_local = -1;  ///< -1: the task's top-level grid.
  std::int32_t parent_block = -1;
  int stream_slot = -1;
  std::uint32_t nest_depth = 0;
  bool deferred = false;
  std::vector<BlockCost> blocks;
  Metrics metrics;
  std::uint64_t hottest_atomic_ops = 0;
};

constexpr std::uint64_t kUnlimitedBudget = ~std::uint64_t{0};

/// Launch-resource budget of one block task. The grid's pool and heap
/// capacity is partitioned evenly across its blocks up front, so exhaustion
/// depends only on the (deterministic) order of launch attempts within the
/// task — never on cross-block timing. Nested sync grids executed inside the
/// task draw from the same budget, modeling the shared device-runtime pool.
struct LaunchBudget {
  std::uint64_t grid_key = 0;  ///< Stable (grid node id, block) hash.
  std::uint64_t seq = 0;       ///< Launch attempts made by this task so far.
  std::uint64_t pool_used = 0;
  std::uint64_t pool_quota = kUnlimitedBudget;
  std::uint64_t heap_used = 0;
  std::uint64_t heap_quota = kUnlimitedBudget;
};

/// Everything one block of a top-level grid records: its cost and metrics
/// contributions, its share of the grid's atomic histogram, and every grid
/// its lanes launched (synchronous ones executed inline on the same thread).
struct BlockRecord {
  BlockCost cost;
  Metrics metrics;
  AtomicHist hist;
  std::vector<ArenaNode> nodes;
  LaunchBudget budget;
};

}  // namespace detail

namespace {

void validate_config(const DeviceSpec& spec, const LaunchConfig& cfg) {
  if (cfg.grid_blocks < 1) throw std::invalid_argument("grid_blocks < 1");
  if (cfg.block_threads < 1 ||
      cfg.block_threads > spec.max_threads_per_block) {
    throw std::invalid_argument("block_threads out of range");
  }
  if (cfg.smem_bytes > spec.shared_mem_per_block) {
    throw std::invalid_argument("smem_bytes exceeds device limit");
  }
  if (cfg.aggregated_descriptors < 0) {
    throw std::invalid_argument("aggregated_descriptors < 0");
  }
}

/// BlockEnv backing one running block. `node_local` selects the grid the
/// block belongs to within the task's recording: -1 for the top-level grid
/// (whose sinks live on the BlockRecord itself), otherwise an ArenaNode
/// index. Arena entries are re-resolved on every access because launches
/// performed by the kernel body grow the node vector.
class EngineEnv final : public detail::BlockEnv {
 public:
  EngineEnv(detail::BlockRecord* rec, const DeviceSpec* spec, int max_depth,
            std::int64_t node_local, std::uint32_t nest_depth,
            AtomicHist* hist, const FaultInjector* injector)
      : rec_(rec),
        spec_(spec),
        max_depth_(max_depth),
        node_local_(node_local),
        nest_depth_(nest_depth),
        hist_(hist),
        injector_(injector) {}

  const DeviceSpec& spec() const override { return *spec_; }
  AtomicHist& hist() override { return *hist_; }
  Metrics& metrics() override {
    return node_local_ < 0
               ? rec_->metrics
               : rec_->nodes[static_cast<std::size_t>(node_local_)].metrics;
  }
  const FaultConfig& fault_config() const override {
    static const FaultConfig kDefault{};
    return injector_ != nullptr ? injector_->config() : kDefault;
  }

  detail::LaunchOutcome launch_child(const LaunchConfig& cfg, Kernel k,
                                     int parent_block, int extra_stream_slot,
                                     bool deferred) override {
    validate_config(*spec_, cfg);
    detail::LaunchBudget& budget = rec_->budget;
    RobustnessCounters& rb = metrics().robustness;
    ++rb.launches_attempted;
    // Stable per-attempt key: the task's (grid, block) hash mixed with the
    // attempt ordinal — identical across host engines by construction.
    const std::uint64_t attempt_key = fault_mix(budget.grid_key ^ budget.seq++);
    const ResourceLimits& lim = spec_->limits;
    const std::uint32_t child_depth = nest_depth_ + 1;
    SimtError err = SimtError::kOk;
    if (child_depth > static_cast<std::uint32_t>(max_depth_)) {
      err = SimtError::kDepthLimitExceeded;
      ++rb.refused_depth;
    } else if (budget.pool_used >= budget.pool_quota) {
      err = SimtError::kPendingPoolExhausted;
      ++rb.refused_pool;
    } else if (budget.heap_quota != detail::kUnlimitedBudget &&
               budget.heap_used + lim.heap_bytes_per_launch >
                   budget.heap_quota) {
      err = SimtError::kDeviceHeapExhausted;
      ++rb.refused_heap;
    } else if (injector_ != nullptr && injector_->enabled() &&
               injector_->should_fail(FaultSite::kDeviceLaunch, attempt_key)) {
      err = SimtError::kInjectedFault;
      ++rb.faults_injected;
    }
    if (err != SimtError::kOk) {
      return detail::LaunchOutcome{kInvalidLaunchNode, err};
    }
    ++budget.pool_used;
    budget.heap_used += lim.heap_bytes_per_launch;
    const std::size_t local = rec_->nodes.size();
    detail::ArenaNode n;
    n.cfg = cfg;
    n.parent_local = node_local_;
    n.parent_block = parent_block;
    n.stream_slot = extra_stream_slot;
    n.nest_depth = child_depth;
    n.deferred = deferred;
    if (deferred) n.kernel = std::move(k);
    rec_->nodes.push_back(std::move(n));
    if (!deferred) run_nested_grid(local, k);
    return detail::LaunchOutcome{static_cast<std::uint32_t>(local),
                                 SimtError::kOk};
  }

 private:
  /// Run a synchronously launched nested grid to completion, blocks in
  /// order, on the current thread. Nested grids stay within their parent
  /// block's task; only the timing model makes them look concurrent.
  void run_nested_grid(std::size_t local, const Kernel& k) {
    const int nblocks = rec_->nodes[local].cfg.grid_blocks;
    const int nthreads = rec_->nodes[local].cfg.block_threads;
    const std::uint32_t depth = rec_->nodes[local].nest_depth;
    AtomicHist grid_hist;
    std::vector<BlockCost> costs(static_cast<std::size_t>(nblocks));
    for (int b = 0; b < nblocks; ++b) {
      EngineEnv env(rec_, spec_, max_depth_,
                    static_cast<std::int64_t>(local), depth, &grid_hist,
                    injector_);
      BlockCtx blk(&env, b, nthreads, nblocks);
      k(blk);
      costs[static_cast<std::size_t>(b)] = blk.finish();
    }
    // Re-fetch: the kernel body may have grown the arena.
    detail::ArenaNode& n = rec_->nodes[local];
    n.blocks = std::move(costs);
    for (const auto& [addr, count] : grid_hist) {
      n.hottest_atomic_ops = std::max(n.hottest_atomic_ops, count);
    }
  }

  detail::BlockRecord* rec_;
  const DeviceSpec* spec_;
  int max_depth_;
  std::int64_t node_local_;
  std::uint32_t nest_depth_;
  AtomicHist* hist_;
  const FaultInjector* injector_;
};

}  // namespace

// ---------------------------------------------------------------------------
// LaneCtx
// ---------------------------------------------------------------------------

LaneCtx::LaneCtx(BlockCtx* blk, std::vector<Op>* trace, int thread_idx)
    : blk_(blk),
      trace_(trace),
      thread_idx_(thread_idx),
      block_idx_(blk->block_idx_),
      block_dim_(blk->block_dim_),
      grid_dim_(blk->grid_dim_) {}

namespace {

[[noreturn]] void throw_refused(const char* what, const LaunchConfig& cfg,
                                SimtError err) {
  throw SimtException(err, std::string(what) + " '" + cfg.name +
                               "' refused: " + std::string(to_string(err)));
}

}  // namespace

LaunchResult LaneCtx::try_launch(const LaunchConfig& cfg, Kernel k,
                                 int extra_stream_slot) {
  const detail::LaunchOutcome out = blk_->env_->launch_child(
      cfg, std::move(k), blk_->block_idx_, extra_stream_slot,
      /*deferred=*/false);
  if (out.error != SimtError::kOk) {
    trace_->push_back(Op{OpKind::kLaunchFail, 1, 0, 0});
    return LaunchResult{kInvalidLaunchNode, out.error};
  }
  trace_->push_back(Op{OpKind::kLaunch, 1, 0, out.local_id});
  return LaunchResult{out.local_id, SimtError::kOk};
}

LaunchResult LaneCtx::try_launch_async(const LaunchConfig& cfg, Kernel k,
                                       int extra_stream_slot) {
  const detail::LaunchOutcome out = blk_->env_->launch_child(
      cfg, std::move(k), blk_->block_idx_, extra_stream_slot,
      /*deferred=*/true);
  if (out.error != SimtError::kOk) {
    trace_->push_back(Op{OpKind::kLaunchFail, 1, 0, 0});
    return LaunchResult{kInvalidLaunchNode, out.error};
  }
  trace_->push_back(Op{OpKind::kLaunch, 1, 0, out.local_id});
  return LaunchResult{out.local_id, SimtError::kOk};
}

LaunchResult LaneCtx::try_launch_threads(const LaunchConfig& cfg,
                                         ThreadKernel k,
                                         int extra_stream_slot) {
  return try_launch(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

LaunchResult LaneCtx::try_launch_threads_async(const LaunchConfig& cfg,
                                               ThreadKernel k,
                                               int extra_stream_slot) {
  return try_launch_async(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

LaunchResult LaneCtx::launch_with_retry(const LaunchConfig& cfg,
                                        const Kernel& k,
                                        int extra_stream_slot) {
  LaunchResult r = try_launch(cfg, k, extra_stream_slot);
  const FaultConfig& fc = blk_->env_->fault_config();
  double backoff = fc.backoff_base_cycles;
  for (int attempt = 0;
       attempt < fc.max_retries && !r.ok() && is_transient(r.error);
       ++attempt) {
    stall(static_cast<std::uint32_t>(backoff));
    blk_->env_->metrics().robustness.retries += 1;
    backoff *= 2.0;
    r = try_launch(cfg, k, extra_stream_slot);
  }
  return r;
}

LaunchResult LaneCtx::launch_threads_with_retry(const LaunchConfig& cfg,
                                                ThreadKernel k,
                                                int extra_stream_slot) {
  return launch_with_retry(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

void LaneCtx::note_degraded() {
  blk_->env_->metrics().robustness.degraded += 1;
}

void LaneCtx::launch(const LaunchConfig& cfg, Kernel k) {
  launch(cfg, std::move(k), -1);
}

void LaneCtx::launch(const LaunchConfig& cfg, Kernel k, int extra_stream_slot) {
  const LaunchResult r = try_launch(cfg, std::move(k), extra_stream_slot);
  if (!r.ok()) throw_refused("device launch", cfg, r.error);
}

void LaneCtx::launch_async(const LaunchConfig& cfg, Kernel k,
                           int extra_stream_slot) {
  const LaunchResult r = try_launch_async(cfg, std::move(k), extra_stream_slot);
  if (!r.ok()) throw_refused("device launch", cfg, r.error);
}

void LaneCtx::launch_threads(const LaunchConfig& cfg, ThreadKernel k) {
  launch(cfg, as_kernel(std::move(k)), -1);
}

void LaneCtx::launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                             int extra_stream_slot) {
  launch(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

void LaneCtx::launch_threads_async(const LaunchConfig& cfg, ThreadKernel k,
                                   int extra_stream_slot) {
  launch_async(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

// ---------------------------------------------------------------------------
// BlockCtx
// ---------------------------------------------------------------------------

BlockCtx::BlockCtx(detail::BlockEnv* env, int block_idx, int block_dim,
                   int grid_dim)
    : env_(env),
      block_idx_(block_idx),
      block_dim_(block_dim),
      grid_dim_(grid_dim),
      lane_traces_(32) {}

BlockCtx::~BlockCtx() = default;

const DeviceSpec& BlockCtx::spec() const { return env_->spec(); }

void* BlockCtx::shared_alloc(std::size_t bytes, std::size_t align) {
  shared_used_ += bytes;
  if (shared_used_ > env_->spec().shared_mem_per_block) {
    throw std::runtime_error("shared memory per block exceeded (" +
                             std::to_string(shared_used_) + " bytes)");
  }
  // Shared arrays start on a full bank cycle (32 banks x 4 bytes), like the
  // statically laid out shared memory of a real SM. This also keeps the
  // bank-conflict model independent of where the host heap placed the chunk,
  // so every block — on any engine thread — charges identical costs.
  align = std::max(align, std::size_t{128});
  shared_chunks_.emplace_back(bytes + align, 0);
  auto* base = shared_chunks_.back().data();
  auto misalign = reinterpret_cast<std::uintptr_t>(base) % align;
  return base + (misalign == 0 ? 0 : align - misalign);
}

void BlockCtx::each_thread(const std::function<void(LaneCtx&)>& fn) {
  const int warps = (block_dim_ + 31) / 32;
  if (phase_ > 0) {
    // Implicit __syncthreads() between phases.
    issue_cycles_ += env_->spec().sync_cycles * warps;
  }
  ++phase_;
  for (int first = 0; first < block_dim_; first += 32) {
    const int lanes = std::min(32, block_dim_ - first);
    for (int l = 0; l < lanes; ++l) {
      lane_traces_[l].clear();
      LaneCtx lc(this, &lane_traces_[l], first + l);
      fn(lc);
    }
    flush_warp(first, lanes);
  }
}

void BlockCtx::flush_warp(int /*first_thread*/, int lanes) {
  issue_cycles_ +=
      detail::combine_warp(env_->spec(), env_->metrics(), lane_traces_, lanes,
                           issue_cycles_, pending_children_, env_->hist());
}

BlockCost BlockCtx::finish() {
  BlockCost bc;
  bc.issue_cycles = issue_cycles_;
  bc.warps = static_cast<std::uint32_t>((block_dim_ + 31) / 32);
  bc.children.reserve(pending_children_.size());
  const double total = issue_cycles_ > 0 ? issue_cycles_ : 1.0;
  for (const ChildLaunchRecord& c : pending_children_) {
    bc.children.push_back(ChildLaunch{
        c.child_kernel, std::clamp(c.offset_cycles / total, 0.0, 1.0)});
  }
  Metrics& m = env_->metrics();
  m.blocks += 1;
  m.warps += bc.warps;
  return bc;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder(const DeviceSpec& spec, int max_nesting_depth)
    : spec_(spec),
      // Effective depth limit: the tighter of the legacy constructor
      // parameter and the spec's ResourceLimits (both default to 24).
      max_depth_(std::min(max_nesting_depth, spec.limits.max_nesting_depth)) {}

void Recorder::reset() {
  graph_ = LaunchGraph{};
  seq_ = 0;
  host_robustness_ = RobustnessCounters{};
  host_attempt_seq_ = 0;
  stream_ids_.clear();
  stream_tail_.clear();
  events_.clear();
  pending_waits_.clear();
  deferred_.clear();
  drain_rng_.seed(0x9e3779b97f4a7c15ull);
}

std::uint32_t Recorder::intern_stream(std::uint64_t key) {
  auto [it, inserted] = stream_ids_.emplace(key, graph_.num_streams);
  if (inserted) ++graph_.num_streams;
  return it->second;
}

std::uint32_t Recorder::stream_id_for_host(int user_stream) {
  if (user_stream == 0) return 0;  // Default stream is dense id 0.
  return intern_stream((1ull << 63) | static_cast<std::uint32_t>(user_stream));
}

std::uint32_t Recorder::stream_id_for_device(std::uint32_t parent_node,
                                             int parent_block, int slot) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent_node) << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent_block))
       << 8) |
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(slot + 1));
  return intern_stream(key);
}

std::uint32_t Recorder::create_host_node(const LaunchConfig& cfg,
                                         std::uint32_t stream) {
  validate_config(spec_, cfg);
  KernelNode node;
  node.id = static_cast<std::uint32_t>(graph_.nodes.size());
  node.name = cfg.name;
  node.origin = LaunchOrigin::kHost;
  node.grid_blocks = cfg.grid_blocks;
  node.block_threads = cfg.block_threads;
  node.smem_bytes = cfg.smem_bytes;
  node.regs_per_thread = cfg.regs_per_thread;
  node.aggregated_descriptors = cfg.aggregated_descriptors;
  node.stream = stream;
  node.seq = seq_++;
  graph_.nodes.push_back(std::move(node));
  return graph_.nodes.back().id;
}

namespace {
constexpr std::uint32_t kNoNode = 0xffffffffu;
}  // namespace

EventHandle Recorder::record_event(StreamHandle stream) {
  const std::uint32_t sid = stream_id_for_host(stream.id);
  const auto it = stream_tail_.find(sid);
  events_.push_back(it == stream_tail_.end() ? kNoNode : it->second);
  return EventHandle{static_cast<std::uint32_t>(events_.size() - 1)};
}

void Recorder::stream_wait(StreamHandle stream, EventHandle event) {
  if (event.id >= events_.size()) {
    throw std::invalid_argument("stream_wait: unknown event");
  }
  const std::uint32_t captured = events_[event.id];
  if (captured == kNoNode) return;  // Event on an empty stream: complete.
  pending_waits_[stream_id_for_host(stream.id)].push_back(captured);
}

LaunchResult Recorder::launch_host(const LaunchConfig& cfg, const Kernel& k,
                                   StreamHandle stream) {
  // Host-site fault injection: the launch is refused before anything is
  // recorded (a failed cudaLaunchKernel). Keyed on the host launch ordinal,
  // which is engine-independent.
  const std::uint64_t host_key = fault_mix(host_attempt_seq_++);
  if (injector_.enabled() &&
      injector_.should_fail(FaultSite::kHostLaunch, host_key)) {
    ++host_robustness_.faults_injected;
    return LaunchResult{kInvalidLaunchNode, SimtError::kInjectedFault};
  }
  const std::uint32_t sid = stream_id_for_host(stream.id);
  const std::uint32_t id = create_host_node(cfg, sid);
  graph_.nodes[id].metrics.host_launches = 1;
  // Attach (and consume) any cross-stream waits registered on this stream;
  // stream FIFO order carries the dependency to later grids transitively.
  if (const auto it = pending_waits_.find(sid); it != pending_waits_.end()) {
    graph_.nodes[id].depends_on = std::move(it->second);
    pending_waits_.erase(it);
  }
  stream_tail_[sid] = id;
  run_grid(id, k);
  // Drain fire-and-forget device launches. The hardware gives no ordering
  // guarantee across blocks, so the drain picks pending grids pseudo-randomly
  // (deterministically seeded): unordered algorithms see the re-traversal
  // work a real nondeterministic schedule causes, not an idealized wavefront.
  while (!deferred_.empty()) {
    // Uniform-random pick: the hardware gives no cross-block ordering
    // guarantee, so unordered algorithms see level-mixing and the resulting
    // re-traversal work instead of an idealized breadth-first wavefront.
    // (A depth-first order would exceed the CDP nesting limit, exactly as it
    // would on silicon, so execution is never LIFO.)
    const std::size_t pick = drain_rng_() % deferred_.size();
    auto [child_id, child_kernel] = std::move(deferred_[pick]);
    deferred_[pick] = std::move(deferred_.back());
    deferred_.pop_back();
    run_grid(child_id, child_kernel);
  }
  return LaunchResult{id, SimtError::kOk};
}

void Recorder::run_grid(std::uint32_t node_id, const Kernel& k) {
  const int nblocks = graph_.nodes[node_id].grid_blocks;
  const int nthreads = graph_.nodes[node_id].block_threads;
  const std::uint32_t depth = graph_.nodes[node_id].nest_depth;

  // Per-block launch budget: the grid's pool/heap capacity split evenly
  // across its blocks (exhaustion must not depend on cross-block timing).
  detail::LaunchBudget budget0;
  if (spec_.limits.pending_launch_capacity > 0) {
    budget0.pool_quota =
        static_cast<std::uint64_t>(spec_.limits.pending_launch_capacity) /
        static_cast<std::uint64_t>(nblocks);
  }
  if (spec_.limits.device_heap_bytes > 0) {
    budget0.heap_quota =
        static_cast<std::uint64_t>(spec_.limits.device_heap_bytes) /
        static_cast<std::uint64_t>(nblocks);
  }

  std::vector<detail::BlockRecord> blocks(static_cast<std::size_t>(nblocks));
  const auto run_block = [&](std::int64_t b) {
    detail::BlockRecord& r = blocks[static_cast<std::size_t>(b)];
    r.budget = budget0;
    // node_id is final before any block runs (host nodes are created up
    // front, device nodes during the previous merge), so this key is
    // identical under both engines.
    r.budget.grid_key = fault_mix(
        (static_cast<std::uint64_t>(node_id) << 24) ^
        static_cast<std::uint64_t>(b));
    EngineEnv env(&r, &spec_, max_depth_, /*node_local=*/-1, depth, &r.hist,
                  &injector_);
    BlockCtx blk(&env, static_cast<int>(b), nthreads, nblocks);
    k(blk);
    r.cost = blk.finish();
  };
  if (pool_ != nullptr && nblocks > 1) {
    pool_->parallel_for(nblocks, run_block);
  } else {
    for (std::int64_t b = 0; b < nblocks; ++b) run_block(b);
  }
  merge_grid(node_id, blocks);
}

void Recorder::merge_grid(std::uint32_t node_id,
                          std::vector<detail::BlockRecord>& blocks) {
  // Merging in block order reproduces the serial engine's global state
  // exactly: node ids and launch seq numbers follow DFS creation order
  // within a block, block-major across blocks — which is the order one
  // thread running the blocks back-to-back would have produced. Stream
  // interning happens here too, so dense stream ids come out identical.
  graph_.nodes[node_id].blocks.resize(blocks.size());
  AtomicHist grid_hist;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    detail::BlockRecord& r = blocks[b];
    const std::uint32_t base = static_cast<std::uint32_t>(graph_.nodes.size());
    for (ChildLaunch& c : r.cost.children) c.child_kernel += base;
    {
      KernelNode& root = graph_.nodes[node_id];
      root.blocks[b] = std::move(r.cost);
      root.metrics += r.metrics;
    }
    for (const auto& [addr, count] : r.hist) grid_hist[addr] += count;
    for (std::size_t j = 0; j < r.nodes.size(); ++j) {
      detail::ArenaNode& ln = r.nodes[j];
      KernelNode node;
      node.id = base + static_cast<std::uint32_t>(j);
      node.name = std::move(ln.cfg.name);
      node.origin = LaunchOrigin::kDevice;
      node.grid_blocks = ln.cfg.grid_blocks;
      node.block_threads = ln.cfg.block_threads;
      node.smem_bytes = ln.cfg.smem_bytes;
      node.regs_per_thread = ln.cfg.regs_per_thread;
      node.aggregated_descriptors = ln.cfg.aggregated_descriptors;
      node.parent_kernel =
          ln.parent_local < 0
              ? static_cast<std::int64_t>(node_id)
              : static_cast<std::int64_t>(base) + ln.parent_local;
      node.parent_block = ln.parent_block;
      node.nest_depth = ln.nest_depth;
      node.stream = stream_id_for_device(
          static_cast<std::uint32_t>(node.parent_kernel), ln.parent_block,
          ln.stream_slot);
      node.seq = seq_++;
      node.metrics = ln.metrics;
      node.hottest_atomic_ops = ln.hottest_atomic_ops;
      node.blocks = std::move(ln.blocks);
      for (BlockCost& bc : node.blocks) {
        for (ChildLaunch& c : bc.children) c.child_kernel += base;
      }
      graph_.nodes.push_back(std::move(node));
      if (ln.deferred) {
        deferred_.emplace_back(base + static_cast<std::uint32_t>(j),
                               std::move(ln.kernel));
      }
    }
  }
  std::uint64_t hottest = 0;
  for (const auto& [addr, count] : grid_hist) {
    hottest = std::max(hottest, count);
  }
  graph_.nodes[node_id].hottest_atomic_ops = hottest;
}

// ---------------------------------------------------------------------------
// Warp combining
// ---------------------------------------------------------------------------

namespace {

/// Count unique values in the first `n` slots of `v` (sorts in place).
int unique_count(std::uint64_t* v, int n) {
  std::sort(v, v + n);
  int u = 0;
  for (int i = 0; i < n; ++i) {
    if (i == 0 || v[i] != v[i - 1]) ++u;
  }
  return u;
}

}  // namespace

namespace detail {

double combine_warp(const DeviceSpec& spec, Metrics& m,
                    const std::vector<std::vector<Op>>& lanes,
                    int active_lanes, double issue_base,
                    std::vector<ChildLaunchRecord>& children,
                    AtomicHist& hist) {
  std::size_t steps = 0;
  for (int l = 0; l < active_lanes; ++l) {
    steps = std::max(steps, lanes[l].size());
  }
  if (steps == 0) return 0.0;

  const std::uint64_t seg = static_cast<std::uint64_t>(spec.mem_segment_bytes);
  const std::uint64_t aseg =
      static_cast<std::uint64_t>(spec.atomic_segment_bytes);
  double cost = 0.0;

  std::uint64_t ld_segs[64], st_segs[64], at_addrs[32], at_segs[64];
  std::uint32_t bank_of[32];
  std::uint32_t launch_children[32];

  for (std::size_t t = 0; t < steps; ++t) {
    std::uint32_t comp_n = 0, comp_sum = 0, comp_max = 0;
    std::uint32_t fail_n = 0, stall_max = 0;
    int ld_n = 0, st_n = 0, sh_n = 0, at_n = 0, ln_n = 0;
    int ld_seg_n = 0, st_seg_n = 0, at_seg_n = 0;
    int ld_extra = 0, st_extra = 0;
    std::uint64_t ld_req = 0, st_req = 0;

    for (int l = 0; l < active_lanes; ++l) {
      const auto& tr = lanes[l];
      if (tr.size() <= t) continue;
      const Op& op = tr[t];
      switch (op.kind) {
        case OpKind::kCompute:
          ++comp_n;
          comp_sum += op.count;
          comp_max = std::max(comp_max, op.count);
          break;
        case OpKind::kGlobalLoad: {
          ++ld_n;
          ld_req += op.bytes;
          const std::uint64_t s0 = op.addr / seg;
          const std::uint64_t s1 = (op.addr + op.bytes - 1) / seg;
          ld_segs[ld_seg_n++] = s0;
          if (s1 != s0) ld_segs[ld_seg_n++] = s1;
          // Long ranged charges (charge_load) span contiguous segments that
          // cannot collide with other lanes' — count them directly.
          if (s1 > s0 + 1) ld_extra += static_cast<int>(s1 - s0 - 1);
          break;
        }
        case OpKind::kGlobalStore: {
          ++st_n;
          st_req += op.bytes;
          const std::uint64_t s0 = op.addr / seg;
          const std::uint64_t s1 = (op.addr + op.bytes - 1) / seg;
          st_segs[st_seg_n++] = s0;
          if (s1 != s0) st_segs[st_seg_n++] = s1;
          if (s1 > s0 + 1) st_extra += static_cast<int>(s1 - s0 - 1);
          break;
        }
        case OpKind::kSharedLoad:
        case OpKind::kSharedStore:
          bank_of[sh_n++] = static_cast<std::uint32_t>((op.addr / 4) % 32);
          break;
        case OpKind::kAtomic: {
          at_addrs[at_n] = op.addr / aseg;
          const std::uint64_t s0 = op.addr / seg;
          at_segs[at_seg_n++] = s0;
          ++at_n;
          break;
        }
        case OpKind::kLaunch:
          launch_children[ln_n++] = static_cast<std::uint32_t>(op.addr);
          break;
        case OpKind::kLaunchFail:
          ++fail_n;
          break;
        case OpKind::kStall:
          stall_max = std::max(stall_max, op.count);
          break;
      }
    }

    // Each op-kind group at this step is a separately issued (serialized)
    // instruction with only its lanes active — matching SIMT divergence.
    if (comp_n > 0) {
      cost += comp_max * spec.compute_op_cycles;
      m.warp_steps += comp_max;
      m.active_lane_ops += comp_sum;
      m.compute_ops += comp_sum;
      m.active_lane_hist[comp_n] += comp_max;
    }
    if (ld_n > 0) {
      const int k = unique_count(ld_segs, ld_seg_n) + ld_extra;
      cost += spec.mem_base_cycles + k * spec.mem_transaction_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(ld_n);
      m.gld_requested_bytes += ld_req;
      m.gld_transferred_bytes += static_cast<std::uint64_t>(k) * seg;
      m.active_lane_hist[ld_n] += 1;
    }
    if (st_n > 0) {
      const int k = unique_count(st_segs, st_seg_n) + st_extra;
      cost += spec.mem_base_cycles + k * spec.mem_transaction_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(st_n);
      m.gst_requested_bytes += st_req;
      m.gst_transferred_bytes += static_cast<std::uint64_t>(k) * seg;
      m.active_lane_hist[st_n] += 1;
    }
    if (sh_n > 0) {
      // Bank-conflict ways: max lanes hitting the same 4-byte bank.
      int ways = 1;
      for (int i = 0; i < sh_n; ++i) {
        int same = 1;
        for (int j = 0; j < i; ++j) {
          if (bank_of[j] == bank_of[i]) ++same;
        }
        ways = std::max(ways, same);
      }
      cost += spec.shared_op_cycles * ways;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(sh_n);
      m.shared_ops += static_cast<std::uint64_t>(sh_n);
      m.active_lane_hist[sh_n] += 1;
    }
    if (at_n > 0) {
      // Intra-warp serialization on identical addresses + transactions for
      // the distinct memory segments touched.
      int ways = 1;
      for (int i = 0; i < at_n; ++i) {
        int same = 1;
        for (int j = 0; j < i; ++j) {
          if (at_addrs[j] == at_addrs[i]) ++same;
        }
        ways = std::max(ways, same);
        ++hist[at_addrs[i]];
      }
      const int k = unique_count(at_segs, at_seg_n);
      cost += spec.atomic_op_cycles * ways + k * spec.mem_transaction_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(at_n);
      m.atomic_ops += static_cast<std::uint64_t>(at_n);
      m.active_lane_hist[at_n] += 1;
    }
    if (ln_n > 0) {
      // Device launches from one warp serialize through the launch queue.
      for (int i = 0; i < ln_n; ++i) {
        cost += spec.launch_issue_cycles;
        children.push_back(
            ChildLaunchRecord{launch_children[i], issue_base + cost});
      }
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(ln_n);
      m.device_launches += static_cast<std::uint64_t>(ln_n);
      m.active_lane_hist[ln_n] += 1;
    }
    if (fail_n > 0) {
      // A refused launch still pays the issue cost (the lane did the work of
      // trying) but produces no child grid and no device_launches count.
      cost += fail_n * spec.launch_issue_cycles;
      m.fault_cycles += fail_n * spec.launch_issue_cycles;
      m.warp_steps += 1;
      m.active_lane_ops += static_cast<std::uint64_t>(fail_n);
      m.active_lane_hist[fail_n] += 1;
    }
    if (stall_max > 0) {
      // Retry backoff: pure idle latency, no throughput metrics.
      cost += static_cast<double>(stall_max);
      m.fault_cycles += static_cast<double>(stall_max);
    }
  }
  return cost;
}

}  // namespace detail

}  // namespace nestpar::simt
