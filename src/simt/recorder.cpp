#include "src/simt/recorder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/simt/thread_pool.h"

namespace nestpar::simt {

// ---------------------------------------------------------------------------
// Kernel helpers
// ---------------------------------------------------------------------------

Kernel as_kernel(ThreadKernel body) {
  return [body = std::move(body)](BlockCtx& blk) {
    blk.each_thread([&](LaneCtx& t) { body(t); });
  };
}

// ---------------------------------------------------------------------------
// Per-block recording (the engine's unit of parallelism)
// ---------------------------------------------------------------------------

namespace detail {

/// One device-side grid recorded while a block task ran, in creation (DFS)
/// order. Ids are local to the owning BlockRecord; the merge step remaps
/// them to global node ids.
struct ArenaNode {
  LaunchConfig cfg;
  Kernel kernel;                   ///< Retained only for deferred launches.
  std::int64_t parent_local = -1;  ///< -1: the task's top-level grid.
  std::int32_t parent_block = -1;
  int stream_slot = -1;
  std::uint32_t nest_depth = 0;
  bool deferred = false;
  std::vector<BlockCost> blocks;
  Metrics metrics;
  std::uint64_t hottest_atomic_ops = 0;
};

constexpr std::uint64_t kUnlimitedBudget = ~std::uint64_t{0};

/// Launch-resource budget of one block task. The grid's pool and heap
/// capacity is partitioned evenly across its blocks up front, so exhaustion
/// depends only on the (deterministic) order of launch attempts within the
/// task — never on cross-block timing. Nested sync grids executed inside the
/// task draw from the same budget, modeling the shared device-runtime pool.
struct LaunchBudget {
  std::uint64_t grid_key = 0;  ///< Stable (grid node id, block) hash.
  std::uint64_t seq = 0;       ///< Launch attempts made by this task so far.
  std::uint64_t pool_used = 0;
  std::uint64_t pool_quota = kUnlimitedBudget;
  std::uint64_t heap_used = 0;
  std::uint64_t heap_quota = kUnlimitedBudget;
};

/// Everything one block of a top-level grid records: its cost and metrics
/// contributions, its share of the grid's atomic histogram, and every grid
/// its lanes launched (synchronous ones executed inline on the same thread).
struct BlockRecord {
  BlockCost cost;
  Metrics metrics;
  AtomicHist hist;
  std::vector<ArenaNode> nodes;
  LaunchBudget budget;
};

}  // namespace detail

namespace {

void validate_config(const DeviceSpec& spec, const LaunchConfig& cfg) {
  if (cfg.grid_blocks < 1) throw std::invalid_argument("grid_blocks < 1");
  if (cfg.block_threads < 1 ||
      cfg.block_threads > spec.max_threads_per_block) {
    throw std::invalid_argument("block_threads out of range");
  }
  if (cfg.smem_bytes > spec.shared_mem_per_block) {
    throw std::invalid_argument("smem_bytes exceeds device limit");
  }
  if (cfg.aggregated_descriptors < 0) {
    throw std::invalid_argument("aggregated_descriptors < 0");
  }
}

/// BlockEnv backing one running block. `node_local` selects the grid the
/// block belongs to within the task's recording: -1 for the top-level grid
/// (whose sinks live on the BlockRecord itself), otherwise an ArenaNode
/// index. Arena entries are re-resolved on every access because launches
/// performed by the kernel body grow the node vector.
class EngineEnv final : public detail::BlockEnv {
 public:
  EngineEnv(detail::BlockRecord* rec, const DeviceSpec* spec, int max_depth,
            std::int64_t node_local, std::uint32_t nest_depth,
            AtomicHist* hist, const FaultInjector* injector,
            bool exclusive_mem)
      : rec_(rec),
        spec_(spec),
        max_depth_(max_depth),
        node_local_(node_local),
        nest_depth_(nest_depth),
        hist_(hist),
        injector_(injector),
        exclusive_mem_(exclusive_mem) {}

  const DeviceSpec& spec() const override { return *spec_; }
  AtomicHist& hist() override { return *hist_; }
  bool exclusive_mem() const override { return exclusive_mem_; }
  Metrics& metrics() override {
    return node_local_ < 0
               ? rec_->metrics
               : rec_->nodes[static_cast<std::size_t>(node_local_)].metrics;
  }
  const FaultConfig& fault_config() const override {
    static const FaultConfig kDefault{};
    return injector_ != nullptr ? injector_->config() : kDefault;
  }

  detail::LaunchOutcome launch_child(const LaunchConfig& cfg, Kernel k,
                                     int parent_block, int extra_stream_slot,
                                     bool deferred) override {
    validate_config(*spec_, cfg);
    detail::LaunchBudget& budget = rec_->budget;
    RobustnessCounters& rb = metrics().robustness;
    ++rb.launches_attempted;
    // Stable per-attempt key: the task's (grid, block) hash mixed with the
    // attempt ordinal — identical across host engines by construction.
    const std::uint64_t attempt_key = fault_mix(budget.grid_key ^ budget.seq++);
    const ResourceLimits& lim = spec_->limits;
    const std::uint32_t child_depth = nest_depth_ + 1;
    SimtError err = SimtError::kOk;
    if (child_depth > static_cast<std::uint32_t>(max_depth_)) {
      err = SimtError::kDepthLimitExceeded;
      ++rb.refused_depth;
    } else if (budget.pool_used >= budget.pool_quota) {
      err = SimtError::kPendingPoolExhausted;
      ++rb.refused_pool;
    } else if (budget.heap_quota != detail::kUnlimitedBudget &&
               budget.heap_used + lim.heap_bytes_per_launch >
                   budget.heap_quota) {
      err = SimtError::kDeviceHeapExhausted;
      ++rb.refused_heap;
    } else if (injector_ != nullptr && injector_->enabled() &&
               injector_->should_fail(FaultSite::kDeviceLaunch, attempt_key)) {
      err = SimtError::kInjectedFault;
      ++rb.faults_injected;
    }
    if (err != SimtError::kOk) {
      return detail::LaunchOutcome{kInvalidLaunchNode, err};
    }
    ++budget.pool_used;
    budget.heap_used += lim.heap_bytes_per_launch;
    const std::size_t local = rec_->nodes.size();
    detail::ArenaNode n;
    n.cfg = cfg;
    n.parent_local = node_local_;
    n.parent_block = parent_block;
    n.stream_slot = extra_stream_slot;
    n.nest_depth = child_depth;
    n.deferred = deferred;
    if (deferred) n.kernel = std::move(k);
    rec_->nodes.push_back(std::move(n));
    if (!deferred) run_nested_grid(local, k);
    return detail::LaunchOutcome{static_cast<std::uint32_t>(local),
                                 SimtError::kOk};
  }

 private:
  /// Run a synchronously launched nested grid to completion, blocks in
  /// order, on the current thread. Nested grids stay within their parent
  /// block's task; only the timing model makes them look concurrent.
  void run_nested_grid(std::size_t local, const Kernel& k) {
    const int nblocks = rec_->nodes[local].cfg.grid_blocks;
    const int nthreads = rec_->nodes[local].cfg.block_threads;
    const std::uint32_t depth = rec_->nodes[local].nest_depth;
    AtomicHist grid_hist;
    std::vector<BlockCost> costs(static_cast<std::size_t>(nblocks));
    for (int b = 0; b < nblocks; ++b) {
      // Nested grids run inline on the parent block's thread, so they
      // inherit the parent's exclusivity: concurrent sibling blocks of the
      // enclosing host grid may still be touching the same global memory.
      EngineEnv env(rec_, spec_, max_depth_,
                    static_cast<std::int64_t>(local), depth, &grid_hist,
                    injector_, exclusive_mem_);
      BlockCtx blk(&env, b, nthreads, nblocks);
      k(blk);
      costs[static_cast<std::size_t>(b)] = blk.finish();
    }
    // Re-fetch: the kernel body may have grown the arena.
    detail::ArenaNode& n = rec_->nodes[local];
    n.blocks = std::move(costs);
    n.hottest_atomic_ops = std::max(n.hottest_atomic_ops,
                                    grid_hist.max_count());
  }

  detail::BlockRecord* rec_;
  const DeviceSpec* spec_;
  int max_depth_;
  std::int64_t node_local_;
  std::uint32_t nest_depth_;
  AtomicHist* hist_;
  const FaultInjector* injector_;
  bool exclusive_mem_;
};

}  // namespace

// ---------------------------------------------------------------------------
// LaneCtx
// ---------------------------------------------------------------------------

LaneCtx::LaneCtx(BlockCtx* blk, WarpTrace* trace, int thread_idx)
    : blk_(blk),
      trace_(trace),
      thread_idx_(thread_idx),
      block_idx_(blk->block_idx_),
      block_dim_(blk->block_dim_),
      grid_dim_(blk->grid_dim_),
      exclusive_mem_(blk->exclusive_mem_) {}

namespace {

[[noreturn]] void throw_refused(const char* what, const LaunchConfig& cfg,
                                SimtError err) {
  throw SimtException(err, std::string(what) + " '" + cfg.name +
                               "' refused: " + std::string(to_string(err)));
}

}  // namespace

LaunchResult LaneCtx::try_launch(const LaunchConfig& cfg, Kernel k,
                                 int extra_stream_slot) {
  const detail::LaunchOutcome out = blk_->env_->launch_child(
      cfg, std::move(k), blk_->block_idx_, extra_stream_slot,
      /*deferred=*/false);
  if (out.error != SimtError::kOk) {
    trace_->push(OpKind::kLaunchFail, 1, 0, 0);
    return LaunchResult{kInvalidLaunchNode, out.error};
  }
  trace_->push_addr(OpKind::kLaunch, out.local_id);
  return LaunchResult{out.local_id, SimtError::kOk};
}

LaunchResult LaneCtx::try_launch_async(const LaunchConfig& cfg, Kernel k,
                                       int extra_stream_slot) {
  const detail::LaunchOutcome out = blk_->env_->launch_child(
      cfg, std::move(k), blk_->block_idx_, extra_stream_slot,
      /*deferred=*/true);
  if (out.error != SimtError::kOk) {
    trace_->push(OpKind::kLaunchFail, 1, 0, 0);
    return LaunchResult{kInvalidLaunchNode, out.error};
  }
  trace_->push_addr(OpKind::kLaunch, out.local_id);
  return LaunchResult{out.local_id, SimtError::kOk};
}

LaunchResult LaneCtx::try_launch_threads(const LaunchConfig& cfg,
                                         ThreadKernel k,
                                         int extra_stream_slot) {
  return try_launch(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

LaunchResult LaneCtx::try_launch_threads_async(const LaunchConfig& cfg,
                                               ThreadKernel k,
                                               int extra_stream_slot) {
  return try_launch_async(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

LaunchResult LaneCtx::launch_with_retry(const LaunchConfig& cfg,
                                        const Kernel& k,
                                        int extra_stream_slot) {
  LaunchResult r = try_launch(cfg, k, extra_stream_slot);
  const FaultConfig& fc = blk_->env_->fault_config();
  double backoff = fc.backoff_base_cycles;
  for (int attempt = 0;
       attempt < fc.max_retries && !r.ok() && is_transient(r.error);
       ++attempt) {
    stall(static_cast<std::uint32_t>(backoff));
    blk_->env_->metrics().robustness.retries += 1;
    backoff *= 2.0;
    r = try_launch(cfg, k, extra_stream_slot);
  }
  return r;
}

LaunchResult LaneCtx::launch_threads_with_retry(const LaunchConfig& cfg,
                                                ThreadKernel k,
                                                int extra_stream_slot) {
  return launch_with_retry(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

void LaneCtx::note_degraded() {
  blk_->env_->metrics().robustness.degraded += 1;
}

void LaneCtx::launch(const LaunchConfig& cfg, Kernel k) {
  launch(cfg, std::move(k), -1);
}

void LaneCtx::launch(const LaunchConfig& cfg, Kernel k, int extra_stream_slot) {
  const LaunchResult r = try_launch(cfg, std::move(k), extra_stream_slot);
  if (!r.ok()) throw_refused("device launch", cfg, r.error);
}

void LaneCtx::launch_async(const LaunchConfig& cfg, Kernel k,
                           int extra_stream_slot) {
  const LaunchResult r = try_launch_async(cfg, std::move(k), extra_stream_slot);
  if (!r.ok()) throw_refused("device launch", cfg, r.error);
}

void LaneCtx::launch_threads(const LaunchConfig& cfg, ThreadKernel k) {
  launch(cfg, as_kernel(std::move(k)), -1);
}

void LaneCtx::launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                             int extra_stream_slot) {
  launch(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

void LaneCtx::launch_threads_async(const LaunchConfig& cfg, ThreadKernel k,
                                   int extra_stream_slot) {
  launch_async(cfg, as_kernel(std::move(k)), extra_stream_slot);
}

// ---------------------------------------------------------------------------
// BlockCtx
// ---------------------------------------------------------------------------

namespace detail {

namespace {

/// Per-host-thread stack of BlockScratch, indexed by live BlockCtx nesting
/// depth: a nested grid launched mid-phase runs its blocks one level deeper,
/// so the parent's live trace and shared arrays stay untouched. Scratches
/// are allocated once per (thread, depth) and recycled for every subsequent
/// block — steady-state recording performs no heap allocation at all.
struct ScratchStack {
  std::vector<std::unique_ptr<BlockScratch>> levels;
  std::size_t depth = 0;
};

thread_local ScratchStack g_scratch_stack;

}  // namespace

BlockScratch* acquire_block_scratch() {
  ScratchStack& st = g_scratch_stack;
  if (st.depth == st.levels.size()) {
    st.levels.push_back(std::make_unique<BlockScratch>());
  }
  BlockScratch* s = st.levels[st.depth++].get();
  s->pending_children.clear();
  s->shared.reset();
  return s;
}

void release_block_scratch() { --g_scratch_stack.depth; }

}  // namespace detail

BlockCtx::BlockCtx(detail::BlockEnv* env, int block_idx, int block_dim,
                   int grid_dim)
    : env_(env),
      scratch_(detail::acquire_block_scratch()),
      block_idx_(block_idx),
      block_dim_(block_dim),
      grid_dim_(grid_dim),
      exclusive_mem_(env->exclusive_mem()) {}

BlockCtx::~BlockCtx() { detail::release_block_scratch(); }

const DeviceSpec& BlockCtx::spec() const { return env_->spec(); }

void* BlockCtx::shared_alloc(std::size_t bytes, std::size_t align) {
  shared_used_ += bytes;
  if (shared_used_ > env_->spec().shared_mem_per_block) {
    throw std::runtime_error("shared memory per block exceeded (" +
                             std::to_string(shared_used_) + " bytes)");
  }
  // Shared arrays start on a full bank cycle (32 banks x 4 bytes), like the
  // statically laid out shared memory of a real SM. This also keeps the
  // bank-conflict model independent of where the host heap placed the
  // arena's chunk, so every block — on any engine thread — charges identical
  // costs. (Arena::alloc raises the alignment to 128 itself; passing the
  // natural alignment through keeps over-aligned element types honest.)
  return scratch_->shared.alloc(bytes, align);
}

void BlockCtx::each_thread(ThreadBodyRef fn) {
  const int warps = (block_dim_ + 31) / 32;
  if (phase_ > 0) {
    // Implicit __syncthreads() between phases.
    issue_cycles_ += env_->spec().sync_cycles * warps;
  }
  ++phase_;
  WarpTrace& tr = scratch_->trace;
  for (int first = 0; first < block_dim_; first += 32) {
    const int lanes = std::min(32, block_dim_ - first);
    tr.begin_warp();
    for (int l = 0; l < lanes; ++l) {
      tr.begin_lane();
      LaneCtx lc(this, &tr, first + l);
      fn(lc);
    }
    flush_warp(first, lanes);
  }
}

void BlockCtx::flush_warp(int /*first_thread*/, int lanes) {
  issue_cycles_ += detail::combine_warp(
      env_->spec(), env_->metrics(), scratch_->trace, lanes, issue_cycles_,
      scratch_->pending_children, env_->hist());
}

BlockCost BlockCtx::finish() {
  BlockCost bc;
  bc.issue_cycles = issue_cycles_;
  bc.warps = static_cast<std::uint32_t>((block_dim_ + 31) / 32);
  const std::vector<ChildLaunchRecord>& pending = scratch_->pending_children;
  bc.children.reserve(pending.size());
  const double total = issue_cycles_ > 0 ? issue_cycles_ : 1.0;
  for (const ChildLaunchRecord& c : pending) {
    bc.children.push_back(ChildLaunch{
        c.child_kernel, std::clamp(c.offset_cycles / total, 0.0, 1.0)});
  }
  Metrics& m = env_->metrics();
  m.blocks += 1;
  m.warps += bc.warps;
  return bc;
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder(const DeviceSpec& spec, int max_nesting_depth)
    : spec_(spec),
      // Effective depth limit: the tighter of the legacy constructor
      // parameter and the spec's ResourceLimits (both default to 24).
      max_depth_(std::min(max_nesting_depth, spec.limits.max_nesting_depth)) {}

void Recorder::reset() {
  graph_ = LaunchGraph{};
  seq_ = 0;
  host_robustness_ = RobustnessCounters{};
  host_attempt_seq_ = 0;
  stream_ids_.clear();
  stream_tail_.clear();
  events_.clear();
  pending_waits_.clear();
  deferred_.clear();
  trace_ctx_ = TraceContext{};
  drain_rng_.seed(0x9e3779b97f4a7c15ull);
}

std::uint32_t Recorder::intern_stream(std::uint64_t key) {
  bool inserted = false;
  const std::uint32_t id =
      stream_ids_.get_or_insert(key, graph_.num_streams, inserted);
  if (inserted) ++graph_.num_streams;
  return id;
}

std::uint32_t Recorder::stream_id_for_host(int user_stream) {
  if (user_stream == 0) return 0;  // Default stream is dense id 0.
  return intern_stream((1ull << 63) | static_cast<std::uint32_t>(user_stream));
}

std::uint32_t Recorder::stream_id_for_device(std::uint32_t parent_node,
                                             int parent_block, int slot) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent_node) << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent_block))
       << 8) |
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(slot + 1));
  return intern_stream(key);
}

std::uint32_t Recorder::create_host_node(const LaunchConfig& cfg,
                                         std::uint32_t stream) {
  validate_config(spec_, cfg);
  KernelNode node;
  node.id = static_cast<std::uint32_t>(graph_.nodes.size());
  node.name = cfg.name;
  node.origin = LaunchOrigin::kHost;
  node.grid_blocks = cfg.grid_blocks;
  node.block_threads = cfg.block_threads;
  node.smem_bytes = cfg.smem_bytes;
  node.regs_per_thread = cfg.regs_per_thread;
  node.aggregated_descriptors = cfg.aggregated_descriptors;
  node.stream = stream;
  node.seq = seq_++;
  // Serving-layer provenance: an explicit per-launch context wins over the
  // recorder's ambient one (metadata only — no modeled effect either way).
  const TraceContext& ctx = cfg.trace.active() ? cfg.trace : trace_ctx_;
  if (ctx.active()) {
    node.batch_id = ctx.batch_id;
    node.requesters = ctx.members;
  }
  graph_.nodes.push_back(std::move(node));
  return graph_.nodes.back().id;
}

namespace {
constexpr std::uint32_t kNoNode = 0xffffffffu;
}  // namespace

EventHandle Recorder::record_event(StreamHandle stream) {
  const std::uint32_t sid = stream_id_for_host(stream.id);
  const std::uint32_t* tail = stream_tail_.find(sid);
  events_.push_back(tail == nullptr ? kNoNode : *tail);
  return EventHandle{static_cast<std::uint32_t>(events_.size() - 1)};
}

void Recorder::stream_wait(StreamHandle stream, EventHandle event) {
  if (event.id >= events_.size()) {
    throw std::invalid_argument("stream_wait: unknown event");
  }
  const std::uint32_t captured = events_[event.id];
  if (captured == kNoNode) return;  // Event on an empty stream: complete.
  pending_waits_[stream_id_for_host(stream.id)].push_back(captured);
}

LaunchResult Recorder::launch_host(const LaunchConfig& cfg, const Kernel& k,
                                   StreamHandle stream) {
  // Host-site fault injection: the launch is refused before anything is
  // recorded (a failed cudaLaunchKernel). Keyed on the host launch ordinal,
  // which is engine-independent.
  const std::uint64_t host_key = fault_mix(host_attempt_seq_++);
  if (injector_.enabled() &&
      injector_.should_fail(FaultSite::kHostLaunch, host_key)) {
    ++host_robustness_.faults_injected;
    return LaunchResult{kInvalidLaunchNode, SimtError::kInjectedFault};
  }
  const std::uint32_t sid = stream_id_for_host(stream.id);
  const std::uint32_t id = create_host_node(cfg, sid);
  graph_.nodes[id].metrics.host_launches = 1;
  // Attach (and consume) any cross-stream waits registered on this stream;
  // stream FIFO order carries the dependency to later grids transitively.
  if (const auto it = pending_waits_.find(sid); it != pending_waits_.end()) {
    graph_.nodes[id].depends_on = std::move(it->second);
    pending_waits_.erase(it);
  }
  stream_tail_.put(sid, id);
  run_grid(id, k);
  // Drain fire-and-forget device launches. The hardware gives no ordering
  // guarantee across blocks, so the drain picks pending grids pseudo-randomly
  // (deterministically seeded): unordered algorithms see the re-traversal
  // work a real nondeterministic schedule causes, not an idealized wavefront.
  while (!deferred_.empty()) {
    // Uniform-random pick: the hardware gives no cross-block ordering
    // guarantee, so unordered algorithms see level-mixing and the resulting
    // re-traversal work instead of an idealized breadth-first wavefront.
    // (A depth-first order would exceed the CDP nesting limit, exactly as it
    // would on silicon, so execution is never LIFO.)
    const std::size_t pick = drain_rng_() % deferred_.size();
    auto [child_id, child_kernel] = std::move(deferred_[pick]);
    deferred_[pick] = std::move(deferred_.back());
    deferred_.pop_back();
    run_grid(child_id, child_kernel);
  }
  return LaunchResult{id, SimtError::kOk};
}

void Recorder::run_grid(std::uint32_t node_id, const Kernel& k) {
  const int nblocks = graph_.nodes[node_id].grid_blocks;
  const int nthreads = graph_.nodes[node_id].block_threads;
  const std::uint32_t depth = graph_.nodes[node_id].nest_depth;

  // Per-block launch budget: the grid's pool/heap capacity split evenly
  // across its blocks (exhaustion must not depend on cross-block timing).
  detail::LaunchBudget budget0;
  if (spec_.limits.pending_launch_capacity > 0) {
    budget0.pool_quota =
        static_cast<std::uint64_t>(spec_.limits.pending_launch_capacity) /
        static_cast<std::uint64_t>(nblocks);
  }
  if (spec_.limits.device_heap_bytes > 0) {
    budget0.heap_quota =
        static_cast<std::uint64_t>(spec_.limits.device_heap_bytes) /
        static_cast<std::uint64_t>(nblocks);
  }

  std::vector<detail::BlockRecord> blocks(static_cast<std::size_t>(nblocks));
  const auto run_block = [&](std::int64_t b) {
    detail::BlockRecord& r = blocks[static_cast<std::size_t>(b)];
    r.budget = budget0;
    // node_id is final before any block runs (host nodes are created up
    // front, device nodes during the previous merge), so this key is
    // identical under both engines.
    r.budget.grid_key = fault_mix(
        (static_cast<std::uint64_t>(node_id) << 24) ^
        static_cast<std::uint64_t>(b));
    // Exclusive when this grid's blocks run back-to-back on one thread
    // (serial engine, or a single-block grid — host grids never overlap
    // each other, so no other thread can be touching global memory).
    EngineEnv env(&r, &spec_, max_depth_, /*node_local=*/-1, depth, &r.hist,
                  &injector_, !(pool_ != nullptr && nblocks > 1));
    BlockCtx blk(&env, static_cast<int>(b), nthreads, nblocks);
    k(blk);
    r.cost = blk.finish();
  };
  if (pool_ != nullptr && nblocks > 1) {
    pool_->parallel_for(nblocks, run_block);
  } else {
    for (std::int64_t b = 0; b < nblocks; ++b) run_block(b);
  }
  merge_grid(node_id, blocks);
}

void Recorder::merge_grid(std::uint32_t node_id,
                          std::vector<detail::BlockRecord>& blocks) {
  // Merging in block order reproduces the serial engine's global state
  // exactly: node ids and launch seq numbers follow DFS creation order
  // within a block, block-major across blocks — which is the order one
  // thread running the blocks back-to-back would have produced. Stream
  // interning happens here too, so dense stream ids come out identical.
  graph_.nodes[node_id].blocks.resize(blocks.size());
  AtomicHist grid_hist;
  {
    // One reservation for every node this merge appends: KernelNode is heavy
    // to move (five vectors and a string), so letting the vector double its
    // way up through a launch-storm grid (dpar-naive spawns one child per
    // heavy row) wastes measurable time in the merge path.
    std::size_t incoming = 0;
    for (const detail::BlockRecord& r : blocks) incoming += r.nodes.size();
    graph_.nodes.reserve(graph_.nodes.size() + incoming);
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    detail::BlockRecord& r = blocks[b];
    const std::uint32_t base = static_cast<std::uint32_t>(graph_.nodes.size());
    for (ChildLaunch& c : r.cost.children) c.child_kernel += base;
    {
      KernelNode& root = graph_.nodes[node_id];
      root.blocks[b] = std::move(r.cost);
      root.metrics += r.metrics;
    }
    r.hist.for_each([&grid_hist](std::uint64_t addr, std::uint64_t count) {
      grid_hist.add(addr, count);
    });
    for (std::size_t j = 0; j < r.nodes.size(); ++j) {
      detail::ArenaNode& ln = r.nodes[j];
      // Built in place: KernelNode is five vectors and a string, so
      // emplace-then-fill skips a full move of every freshly merged node.
      // The reserve above guarantees no reallocation happens mid-merge.
      KernelNode& node = graph_.nodes.emplace_back();
      node.id = base + static_cast<std::uint32_t>(j);
      node.name = std::move(ln.cfg.name);
      node.origin = LaunchOrigin::kDevice;
      node.grid_blocks = ln.cfg.grid_blocks;
      node.block_threads = ln.cfg.block_threads;
      node.smem_bytes = ln.cfg.smem_bytes;
      node.regs_per_thread = ln.cfg.regs_per_thread;
      node.aggregated_descriptors = ln.cfg.aggregated_descriptors;
      node.parent_kernel =
          ln.parent_local < 0
              ? static_cast<std::int64_t>(node_id)
              : static_cast<std::int64_t>(base) + ln.parent_local;
      node.parent_block = ln.parent_block;
      node.nest_depth = ln.nest_depth;
      node.stream = stream_id_for_device(
          static_cast<std::uint32_t>(node.parent_kernel), ln.parent_block,
          ln.stream_slot);
      node.seq = seq_++;
      // Provenance: an explicit per-launch context wins; otherwise the child
      // inherits its parent grid's stamp (already merged — parents precede
      // children in DFS creation order), which transitively carries the
      // ambient serve context down through consolidated child grids.
      if (ln.cfg.trace.active()) {
        node.batch_id = ln.cfg.trace.batch_id;
        node.requesters = ln.cfg.trace.members;
      } else {
        const KernelNode& parent =
            graph_.nodes[static_cast<std::size_t>(node.parent_kernel)];
        node.batch_id = parent.batch_id;
        node.requesters = parent.requesters;
      }
      node.metrics = ln.metrics;
      node.hottest_atomic_ops = ln.hottest_atomic_ops;
      node.blocks = std::move(ln.blocks);
      for (BlockCost& bc : node.blocks) {
        for (ChildLaunch& c : bc.children) c.child_kernel += base;
      }
      if (ln.deferred) {
        deferred_.emplace_back(base + static_cast<std::uint32_t>(j),
                               std::move(ln.kernel));
      }
    }
  }
  graph_.nodes[node_id].hottest_atomic_ops = grid_hist.max_count();
}

// ---------------------------------------------------------------------------
// Warp combining
// ---------------------------------------------------------------------------

namespace {

/// Count unique values in the first `n` slots of `v` (n <= 64) with a
/// generation-stamped open-addressing probe — O(n) against the insertion
/// sort it replaced. Distinct-count is order-invariant, so this is exactly
/// the old sort-then-scan result. Only reached for genuinely out-of-order
/// steps; sorted steps resolve inline in UniqTracker.
int unique_count(const std::uint64_t* v, int n) {
  static thread_local std::uint64_t keys[128];
  static thread_local std::uint32_t gens[128];
  static thread_local std::uint32_t gen = 0;
  if (++gen == 0) {
    // u32 stamp wrapped: stale slots could alias the new generation.
    std::memset(gens, 0, sizeof(gens));
    gen = 1;
  }
  int u = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = v[i];
    std::uint64_t h = (x * 0x9e3779b97f4a7c15ull) >> 57;  // top 7 bits
    for (;;) {
      if (gens[h] != gen) {
        gens[h] = gen;
        keys[h] = x;
        ++u;
        break;
      }
      if (keys[h] == x) break;
      h = (h + 1) & 127;
    }
  }
  return u;
}

}  // namespace

namespace {

/// Running unique-count over a step's segment pushes. Coalesced accesses
/// arrive in ascending segment order, so the count is maintained inline and
/// `resolve` is free; only an out-of-order step pays the insertion-sort
/// fallback. Either path produces exactly the old sort-then-scan result.
/// Max multiplicity of any one value in v[0..n): the atomic serialization
/// "ways" of a warp step. Same generation-stamped open-addressing scheme as
/// unique_count above — multiplicity is order-invariant, so this reproduces
/// the old pairwise O(n^2) scan's result exactly. n <= 32, so a 64-slot
/// table never exceeds half load.
int max_multiplicity(const std::uint64_t* v, int n) {
  static thread_local std::uint64_t keys[64];
  static thread_local std::uint8_t cnt[64];
  static thread_local std::uint32_t gens[64];
  static thread_local std::uint32_t gen = 0;
  if (++gen == 0) {
    std::memset(gens, 0, sizeof(gens));
    gen = 1;
  }
  int best = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = v[i];
    std::uint64_t h = (x * 0x9e3779b97f4a7c15ull) >> 58;  // top 6 bits
    for (;;) {
      if (gens[h] != gen) {
        gens[h] = gen;
        keys[h] = x;
        cnt[h] = 1;
        break;
      }
      if (keys[h] == x) {
        best = std::max<int>(best, ++cnt[h]);
        break;
      }
      h = (h + 1) & 63;
    }
  }
  return best;
}

struct UniqTracker {
  std::uint64_t prev = 0;
  int uniq = 0;
  bool sorted = true;

  void push(std::uint64_t* arr, int& n, std::uint64_t s) {
    // Branchless on the s-vs-prev comparisons: segment order between lanes
    // is data-dependent (scattered graph accesses make it a coin flip), so
    // compare-and-branch here costs a mispredict per op. setcc/cmov
    // arithmetic computes the same uniq/sorted values.
    const bool first = (n == 0);
    uniq += static_cast<int>(first | (s > prev));
    sorted &= first | (s >= prev);
    arr[n++] = s;
    prev = s;
  }
  int resolve(std::uint64_t* arr, int n) const {
    return sorted ? uniq : unique_count(arr, n);
  }
};

/// The combine_warp loop, specialized on whether the segment sizes are
/// powers of two (they are for every shipped DeviceSpec) so the per-access
/// address->segment mapping is a shift instead of a 64-bit division — the
/// single hottest arithmetic op of the functional pass.
template <bool kPow2>
double combine_warp_impl(const DeviceSpec& spec, Metrics& m,
                         const WarpTrace& trace, int active_lanes,
                         double issue_base,
                         std::vector<ChildLaunchRecord>& children,
                         AtomicHist& hist, int seg_shift, int aseg_shift) {
  // Live-lane cursors into the SoA columns, in ascending lane order. A lane
  // whose trace is exhausted is compacted out, so divergent tails cost
  // nothing per step; compaction preserves the ascending order the
  // launch-record sequence depends on.
  std::uint32_t cur[32], end[32];
  int alive = 0;
  for (int l = 0; l < active_lanes; ++l) {
    const std::uint32_t b = trace.lane_begin(l);
    const std::uint32_t e = trace.lane_end(l);
    if (b != e) {
      cur[alive] = b;
      end[alive] = e;
      ++alive;
    }
  }
  if (alive == 0) return 0.0;

  const std::uint8_t* kinds = trace.kinds();
  const std::uint32_t* counts = trace.counts();
  const std::uint32_t* op_bytes = trace.bytes();
  const std::uint64_t* addrs = trace.addrs();

  const std::uint64_t seg = static_cast<std::uint64_t>(spec.mem_segment_bytes);
  const std::uint64_t aseg =
      static_cast<std::uint64_t>(spec.atomic_segment_bytes);
  const auto seg_of = [&](std::uint64_t a) -> std::uint64_t {
    if constexpr (kPow2) return a >> seg_shift;
    return a / seg;
  };
  const auto aseg_of = [&](std::uint64_t a) -> std::uint64_t {
    if constexpr (kPow2) return a >> aseg_shift;
    return a / aseg;
  };
  double cost = 0.0;

  // Per-op cycle costs, hoisted so the loop reads registers instead of
  // re-loading through the spec reference (the compiler cannot prove the
  // children.push_back call leaves them unchanged). All are double, so the
  // arithmetic below is bit-identical to reading the fields directly.
  const double compute_cyc = spec.compute_op_cycles;
  const double shared_cyc = spec.shared_op_cycles;
  const double mem_base_cyc = spec.mem_base_cycles;
  const double mem_tx_cyc = spec.mem_transaction_cycles;
  const double atomic_cyc = spec.atomic_op_cycles;
  const double launch_cyc = spec.launch_issue_cycles;

  std::uint64_t ld_segs[64], st_segs[64], at_addrs[32], at_segs[64];
  std::uint32_t bank_count[32];
  std::uint32_t launch_children[32];

  // Integer metrics accumulate in locals and flush once at the end —
  // u64 addition is associative, so batching is exact; it keeps ~10 memory
  // read-modify-writes per step out of the loop. The double-valued fields
  // (cost, m.fault_cycles) keep their per-step accumulation order: float
  // addition is not associative and the bit patterns feed the baselines.
  std::uint64_t ws = 0, alo = 0, comp_ops = 0, sh_ops = 0, at_ops = 0,
                dev_launches = 0;
  std::uint64_t gld_req_b = 0, gld_xfer_b = 0, gst_req_b = 0, gst_xfer_b = 0;
  // Local active-lane histogram (u64 counts, associative) flushed once.
  std::uint64_t lh[33] = {};

  while (alive > 0) {
    if (alive == 1) {
      // Straggler fast path: one live lane left — the dominant tail of any
      // skewed workload (a hub lane outliving its warp by hundreds of
      // steps). Every remaining op forms a single-op step group, so the
      // general loop's gather/group machinery reduces to one switch per op;
      // each arm reproduces its group block exactly (same cost terms, same
      // accumulation order — at most one float add per step).
      const std::uint32_t e = end[0];
      for (std::uint32_t idx = cur[0]; idx < e; ++idx) {
        switch (static_cast<OpKind>(kinds[idx])) {
          case OpKind::kCompute: {
            const std::uint32_t n = counts[idx];
            cost += n * compute_cyc;
            ws += n;
            alo += n;
            comp_ops += n;
            lh[1] += n;
            break;
          }
          case OpKind::kGlobalLoad: {
            const std::uint64_t addr = addrs[idx];
            const std::uint32_t nbytes = op_bytes[idx];
            const std::uint64_t s0 = seg_of(addr);
            const std::uint64_t s1 = seg_of(addr + nbytes - 1);
            const auto k = static_cast<int>(s1 - s0) + 1;
            cost += mem_base_cyc + k * mem_tx_cyc;
            ws += 1;
            alo += 1;
            gld_req_b += nbytes;
            gld_xfer_b += static_cast<std::uint64_t>(k) * seg;
            lh[1] += 1;
            break;
          }
          case OpKind::kGlobalStore: {
            const std::uint64_t addr = addrs[idx];
            const std::uint32_t nbytes = op_bytes[idx];
            const std::uint64_t s0 = seg_of(addr);
            const std::uint64_t s1 = seg_of(addr + nbytes - 1);
            const auto k = static_cast<int>(s1 - s0) + 1;
            cost += mem_base_cyc + k * mem_tx_cyc;
            ws += 1;
            alo += 1;
            gst_req_b += nbytes;
            gst_xfer_b += static_cast<std::uint64_t>(k) * seg;
            lh[1] += 1;
            break;
          }
          case OpKind::kSharedLoad:
          case OpKind::kSharedStore:
            cost += shared_cyc;  // one lane: ways == 1
            ws += 1;
            alo += 1;
            sh_ops += 1;
            lh[1] += 1;
            break;
          case OpKind::kAtomic:
            hist.bump(aseg_of(addrs[idx]));
            // One lane: ways == 1, one distinct segment.
            cost += atomic_cyc + mem_tx_cyc;
            ws += 1;
            alo += 1;
            at_ops += 1;
            lh[1] += 1;
            break;
          case OpKind::kLaunch:
            cost += launch_cyc;
            children.push_back(
                ChildLaunchRecord{static_cast<std::uint32_t>(addrs[idx]),
                                  issue_base + cost});
            ws += 1;
            alo += 1;
            dev_launches += 1;
            lh[1] += 1;
            break;
          case OpKind::kLaunchFail:
            cost += launch_cyc;
            m.fault_cycles += launch_cyc;
            ws += 1;
            alo += 1;
            lh[1] += 1;
            break;
          case OpKind::kStall:
            cost += static_cast<double>(counts[idx]);
            m.fault_cycles += static_cast<double>(counts[idx]);
            break;
        }
      }
      break;
    }
    // Steps until some lane's trace runs out: within this window the live
    // set is fixed, so the per-lane exhaustion test (and its two cursor
    // stores) stays out of the scan entirely; cursors advance once when the
    // window closes. Fully converged warps (uniform workloads) retire their
    // whole trace in a single window.
    std::uint32_t window = end[0] - cur[0];
    for (int i = 1; i < alive; ++i) {
      window = std::min(window, end[i] - cur[i]);
    }
    for (std::uint32_t s = 0; s < window; ++s) {
      std::uint32_t comp_n = 0, comp_sum = 0, comp_max = 0;
      std::uint32_t fail_n = 0, stall_max = 0;
      int ld_n = 0, st_n = 0, sh_n = 0, at_n = 0, ln_n = 0;
      int ld_seg_n = 0, st_seg_n = 0, at_seg_n = 0;
      int ld_extra = 0, st_extra = 0;
      std::uint64_t ld_req = 0, st_req = 0;
      std::uint32_t sh_ways = 1;
      UniqTracker ld_uc, st_uc, at_uc;

      for (int i = 0; i < alive; ++i) {
        const std::uint32_t idx = cur[i] + s;
        switch (static_cast<OpKind>(kinds[idx])) {
          case OpKind::kCompute: {
            const std::uint32_t n = counts[idx];
            ++comp_n;
            comp_sum += n;
            comp_max = std::max(comp_max, n);
            break;
          }
          case OpKind::kGlobalLoad: {
            const std::uint64_t addr = addrs[idx];
            const std::uint32_t nbytes = op_bytes[idx];
            ++ld_n;
            ld_req += nbytes;
            const std::uint64_t s0 = seg_of(addr);
            const std::uint64_t s1 = seg_of(addr + nbytes - 1);
            ld_uc.push(ld_segs, ld_seg_n, s0);
            if (s1 != s0) ld_uc.push(ld_segs, ld_seg_n, s1);
            // Long ranged charges (charge_load) span contiguous segments
            // that cannot collide with other lanes' — count them directly.
            if (s1 > s0 + 1) ld_extra += static_cast<int>(s1 - s0 - 1);
            break;
          }
          case OpKind::kGlobalStore: {
            const std::uint64_t addr = addrs[idx];
            const std::uint32_t nbytes = op_bytes[idx];
            ++st_n;
            st_req += nbytes;
            const std::uint64_t s0 = seg_of(addr);
            const std::uint64_t s1 = seg_of(addr + nbytes - 1);
            st_uc.push(st_segs, st_seg_n, s0);
            if (s1 != s0) st_uc.push(st_segs, st_seg_n, s1);
            if (s1 > s0 + 1) st_extra += static_cast<int>(s1 - s0 - 1);
            break;
          }
          case OpKind::kSharedLoad:
          case OpKind::kSharedStore: {
            // Bank-conflict ways = max lanes on one 4-byte bank; counting
            // per bank in one pass matches the old pairwise max exactly.
            const auto bank =
                static_cast<std::uint32_t>((addrs[idx] / 4) % 32);
            if (sh_n == 0) std::memset(bank_count, 0, sizeof(bank_count));
            ++sh_n;
            sh_ways = std::max(sh_ways, ++bank_count[bank]);
            break;
          }
          case OpKind::kAtomic: {
            at_addrs[at_n] = aseg_of(addrs[idx]);
            at_uc.push(at_segs, at_seg_n, seg_of(addrs[idx]));
            ++at_n;
            break;
          }
          case OpKind::kLaunch:
            launch_children[ln_n++] = static_cast<std::uint32_t>(addrs[idx]);
            break;
          case OpKind::kLaunchFail:
            ++fail_n;
            break;
          case OpKind::kStall:
            stall_max = std::max(stall_max, counts[idx]);
            break;
        }
      }

      // Each op-kind group at this step is a separately issued (serialized)
      // instruction with only its lanes active — matching SIMT divergence.
      if (comp_n > 0) {
        cost += comp_max * compute_cyc;
        ws += comp_max;
        alo += comp_sum;
        comp_ops += comp_sum;
        lh[comp_n] += comp_max;
      }
      if (ld_n > 0) {
        const int k = ld_uc.resolve(ld_segs, ld_seg_n) + ld_extra;
        cost += mem_base_cyc + k * mem_tx_cyc;
        ws += 1;
        alo += static_cast<std::uint64_t>(ld_n);
        gld_req_b += ld_req;
        gld_xfer_b += static_cast<std::uint64_t>(k) * seg;
        lh[ld_n] += 1;
      }
      if (st_n > 0) {
        const int k = st_uc.resolve(st_segs, st_seg_n) + st_extra;
        cost += mem_base_cyc + k * mem_tx_cyc;
        ws += 1;
        alo += static_cast<std::uint64_t>(st_n);
        gst_req_b += st_req;
        gst_xfer_b += static_cast<std::uint64_t>(k) * seg;
        lh[st_n] += 1;
      }
      if (sh_n > 0) {
        // Bank-conflict ways (sh_ways): max lanes hitting the same 4-byte
        // bank, counted during the lane scan above.
        cost += shared_cyc * static_cast<int>(sh_ways);
        ws += 1;
        alo += static_cast<std::uint64_t>(sh_n);
        sh_ops += static_cast<std::uint64_t>(sh_n);
        lh[sh_n] += 1;
      }
      if (at_n > 0) {
        // Intra-warp serialization on identical addresses + transactions
        // for the distinct memory segments touched. Multiplicity is
        // order-invariant, so the hashed count below matches the pairwise
        // scan exactly; the scan stays cheaper for tiny groups.
        int ways = 1;
        if (at_n <= 4) {
          for (int i = 1; i < at_n; ++i) {
            int same = 1;
            for (int j = 0; j < i; ++j) {
              if (at_addrs[j] == at_addrs[i]) ++same;
            }
            ways = std::max(ways, same);
          }
        } else {
          ways = max_multiplicity(at_addrs, at_n);
        }
        for (int i = 0; i < at_n; ++i) hist.bump(at_addrs[i]);
        const int k = at_uc.resolve(at_segs, at_seg_n);
        cost += atomic_cyc * ways + k * mem_tx_cyc;
        ws += 1;
        alo += static_cast<std::uint64_t>(at_n);
        at_ops += static_cast<std::uint64_t>(at_n);
        lh[at_n] += 1;
      }
      if (ln_n > 0) {
        // Device launches from one warp serialize through the launch queue.
        for (int i = 0; i < ln_n; ++i) {
          cost += launch_cyc;
          children.push_back(
              ChildLaunchRecord{launch_children[i], issue_base + cost});
        }
        ws += 1;
        alo += static_cast<std::uint64_t>(ln_n);
        dev_launches += static_cast<std::uint64_t>(ln_n);
        lh[ln_n] += 1;
      }
      if (fail_n > 0) {
        // A refused launch still pays the issue cost (the lane did the work
        // of trying) but produces no child grid and no device_launches.
        cost += fail_n * launch_cyc;
        m.fault_cycles += fail_n * launch_cyc;
        ws += 1;
        alo += static_cast<std::uint64_t>(fail_n);
        lh[fail_n] += 1;
      }
      if (stall_max > 0) {
        // Retry backoff: pure idle latency, no throughput metrics.
        cost += static_cast<double>(stall_max);
        m.fault_cycles += static_cast<double>(stall_max);
      }
    }

    // Close the window: advance every cursor and compact out the lanes that
    // just exhausted (at least one always does, by construction of window).
    int next_alive = 0;
    for (int i = 0; i < alive; ++i) {
      const std::uint32_t c = cur[i] + window;
      if (c != end[i]) {
        cur[next_alive] = c;
        end[next_alive] = end[i];
        ++next_alive;
      }
    }
    alive = next_alive;
  }

  for (int i = 1; i <= 32; ++i) {
    if (lh[i] != 0) m.active_lane_hist[i] += lh[i];
  }
  m.warp_steps += ws;
  m.active_lane_ops += alo;
  m.compute_ops += comp_ops;
  m.shared_ops += sh_ops;
  m.atomic_ops += at_ops;
  m.device_launches += dev_launches;
  m.gld_requested_bytes += gld_req_b;
  m.gld_transferred_bytes += gld_xfer_b;
  m.gst_requested_bytes += gst_req_b;
  m.gst_transferred_bytes += gst_xfer_b;
  return cost;
}

}  // namespace

namespace detail {

double combine_warp(const DeviceSpec& spec, Metrics& m, const WarpTrace& trace,
                    int active_lanes, double issue_base,
                    std::vector<ChildLaunchRecord>& children,
                    AtomicHist& hist) {
  const auto seg = static_cast<std::uint64_t>(spec.mem_segment_bytes);
  const auto aseg = static_cast<std::uint64_t>(spec.atomic_segment_bytes);
  if (std::has_single_bit(seg) && std::has_single_bit(aseg)) {
    return combine_warp_impl<true>(spec, m, trace, active_lanes, issue_base,
                                   children, hist, std::countr_zero(seg),
                                   std::countr_zero(aseg));
  }
  return combine_warp_impl<false>(spec, m, trace, active_lanes, issue_base,
                                  children, hist, 0, 0);
}

}  // namespace detail

}  // namespace nestpar::simt
