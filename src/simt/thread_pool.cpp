#include "src/simt/thread_pool.h"

#include <algorithm>

namespace nestpar::simt {

namespace {
/// Set while a pool thread (or a nested parallel_for caller) is inside a
/// job, so reentrant submissions degrade to serial instead of deadlocking.
thread_local bool t_in_pool_job = false;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int extra = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || (job_ && job_serial_ != seen); });
      if (stop_) return;
      job = job_;
      seen = job_serial_;
    }
    t_in_pool_job = true;
    work(*job);
    t_in_pool_job = false;
  }
}

void ThreadPool::work(Job& job) {
  for (;;) {
    const std::int64_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.count) return;
    const std::int64_t end = std::min(begin + job.grain, job.count);
    for (std::int64_t i = begin; i < end; ++i) {
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.err_mu);
        if (job.err_index < 0 || i < job.err_index) {
          job.err_index = i;
          job.err = std::current_exception();
        }
      }
    }
    if (job.done.fetch_add(end - begin, std::memory_order_acq_rel) +
            (end - begin) ==
        job.count) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
      return;
    }
  }
}

void ThreadPool::parallel_for(std::int64_t count,
                              const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  if (count == 1 || workers_.empty() || t_in_pool_job) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->count = count;
  job->grain = std::max<std::int64_t>(1, count / (8 * threads()));
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++job_serial_;
  }
  cv_.notify_all();

  t_in_pool_job = true;
  work(*job);
  t_in_pool_job = false;

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) == job->count;
    });
    job_ = nullptr;
  }
  if (job->err) std::rethrow_exception(job->err);
}

}  // namespace nestpar::simt
