#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nestpar::simt {

/// Sentinel node id in a LaunchResult whose launch did not happen.
inline constexpr std::uint32_t kInvalidLaunchNode = 0xffffffffu;

/// Why a kernel launch was refused by the device runtime. Mirrors the CUDA
/// device-runtime failure modes the paper's templates can run into:
/// cudaErrorLaunchPendingCountExceeded, the CDP nesting-depth limit, and
/// device-heap exhaustion — plus injected transient faults (FaultInjector).
enum class SimtError : std::uint8_t {
  kOk = 0,
  kPendingPoolExhausted,  ///< ResourceLimits::pending_launch_capacity hit.
  kDepthLimitExceeded,    ///< ResourceLimits::max_nesting_depth hit.
  kDeviceHeapExhausted,   ///< ResourceLimits::device_heap_bytes hit.
  kInjectedFault,         ///< Transient failure from the FaultInjector.
};

std::string_view to_string(SimtError e);

/// Transient errors may succeed when retried; resource refusals are
/// deterministic and will refuse again, so callers should degrade instead.
constexpr bool is_transient(SimtError e) {
  return e == SimtError::kInjectedFault;
}

/// Status of one launch attempt. `node` is the launch-graph node id for host
/// launches; for device-side launches it is an engine-internal id (only
/// meaningful to the engine) — callers should branch on `ok()`.
struct LaunchResult {
  std::uint32_t node = kInvalidLaunchNode;
  SimtError error = SimtError::kOk;

  bool ok() const { return error == SimtError::kOk; }
  explicit operator bool() const { return ok(); }
};

/// Thrown by the throwing launch wrappers (`LaneCtx::launch`,
/// `Device::launch`, ...) when a launch is refused. Derives from
/// std::runtime_error so pre-fault-model callers keep working.
class SimtException : public std::runtime_error {
 public:
  SimtException(SimtError error, const std::string& what)
      : std::runtime_error(what), error_(error) {}
  SimtError error() const { return error_; }

 private:
  SimtError error_;
};

/// Where a fault can be injected.
enum class FaultSite : std::uint8_t {
  kDeviceLaunch,  ///< Nested (device-side) kernel launch.
  kHostLaunch,    ///< Host-side kernel launch.
};

/// Configuration of the transient-fault injector. Deterministic: whether an
/// individual launch attempt fails is a pure hash of (seed, site, attempt
/// key), so the same run sees the same faults under both host engines.
///
/// Env syntax (`NESTPAR_FAULTS`), comma-separated `key=value`:
///   launch=0.05   device-launch failure probability in [0, 1]
///   host=0.01     host-launch failure probability in [0, 1]
///   seed=42       injector seed
///   retries=3     max retries of launch_with_retry per attempt
///   backoff=2000  base retry backoff in cycles (doubles per retry)
/// A bare number ("0.05") is shorthand for `launch=0.05`.
struct FaultConfig {
  double device_launch_rate = 0.0;
  double host_launch_rate = 0.0;
  std::uint64_t seed = 0xfa17;
  int max_retries = 3;
  double backoff_base_cycles = 2000.0;

  bool enabled() const {
    return device_launch_rate > 0.0 || host_launch_rate > 0.0;
  }
  double rate(FaultSite site) const {
    return site == FaultSite::kDeviceLaunch ? device_launch_rate
                                            : host_launch_rate;
  }

  /// Parse the env syntax above; throws std::invalid_argument on bad input.
  static FaultConfig parse(std::string_view spec);
  /// Config from `NESTPAR_FAULTS` (disabled when unset/empty).
  static FaultConfig from_env();
};

/// Deterministic, seeded transient-fault source. Stateless between calls:
/// the decision for an attempt depends only on (config.seed, site, key).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled(); }

  /// True when the attempt identified by `key` at `site` should fail.
  bool should_fail(FaultSite site, std::uint64_t key) const;

 private:
  FaultConfig cfg_;
};

/// splitmix64 mix — the hash behind the injector's decisions and the
/// per-block-task attempt keys (public so the engine can derive stable keys).
std::uint64_t fault_mix(std::uint64_t x);

}  // namespace nestpar::simt
