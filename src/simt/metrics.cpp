#include "src/simt/metrics.h"

#include <sstream>

namespace nestpar::simt {

RobustnessCounters& RobustnessCounters::operator+=(
    const RobustnessCounters& o) {
  launches_attempted += o.launches_attempted;
  refused_pool += o.refused_pool;
  refused_depth += o.refused_depth;
  refused_heap += o.refused_heap;
  faults_injected += o.faults_injected;
  retries += o.retries;
  degraded += o.degraded;
  return *this;
}

Metrics& Metrics::operator+=(const Metrics& o) {
  warp_steps += o.warp_steps;
  active_lane_ops += o.active_lane_ops;
  gld_requested_bytes += o.gld_requested_bytes;
  gld_transferred_bytes += o.gld_transferred_bytes;
  gst_requested_bytes += o.gst_requested_bytes;
  gst_transferred_bytes += o.gst_transferred_bytes;
  atomic_ops += o.atomic_ops;
  shared_ops += o.shared_ops;
  compute_ops += o.compute_ops;
  host_launches += o.host_launches;
  device_launches += o.device_launches;
  blocks += o.blocks;
  warps += o.warps;
  resident_warp_cycles += o.resident_warp_cycles;
  sm_active_cycles += o.sm_active_cycles;
  robustness += o.robustness;
  return *this;
}

std::string Metrics::to_string(int max_warps_per_sm) const {
  std::ostringstream os;
  os << "warp_exec_eff=" << warp_execution_efficiency()
     << " gld_eff=" << gld_efficiency() << " gst_eff=" << gst_efficiency()
     << " occupancy=" << warp_occupancy(max_warps_per_sm)
     << " atomics=" << atomic_ops << " launches(h/d)=" << host_launches << "/"
     << device_launches << " blocks=" << blocks << " warps=" << warps;
  if (robustness.any_fault()) {
    os << " refused=" << robustness.refused_total()
       << " retries=" << robustness.retries
       << " degraded=" << robustness.degraded;
  }
  return os.str();
}

}  // namespace nestpar::simt
