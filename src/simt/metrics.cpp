#include "src/simt/metrics.h"

#include <charconv>
#include <cmath>
#include <sstream>

namespace nestpar::simt {

RobustnessCounters& RobustnessCounters::operator+=(
    const RobustnessCounters& o) {
  launches_attempted += o.launches_attempted;
  refused_pool += o.refused_pool;
  refused_depth += o.refused_depth;
  refused_heap += o.refused_heap;
  faults_injected += o.faults_injected;
  retries += o.retries;
  degraded += o.degraded;
  return *this;
}

Metrics& Metrics::operator+=(const Metrics& o) {
  warp_steps += o.warp_steps;
  active_lane_ops += o.active_lane_ops;
  gld_requested_bytes += o.gld_requested_bytes;
  gld_transferred_bytes += o.gld_transferred_bytes;
  gst_requested_bytes += o.gst_requested_bytes;
  gst_transferred_bytes += o.gst_transferred_bytes;
  atomic_ops += o.atomic_ops;
  shared_ops += o.shared_ops;
  compute_ops += o.compute_ops;
  host_launches += o.host_launches;
  device_launches += o.device_launches;
  blocks += o.blocks;
  warps += o.warps;
  resident_warp_cycles += o.resident_warp_cycles;
  sm_active_cycles += o.sm_active_cycles;
  fault_cycles += o.fault_cycles;
  robustness += o.robustness;
  for (int i = 0; i < 33; ++i) active_lane_hist[i] += o.active_lane_hist[i];
  return *this;
}

std::string Metrics::to_string(int max_warps_per_sm) const {
  std::ostringstream os;
  os << "warp_exec_eff=" << warp_execution_efficiency()
     << " gld_eff=" << gld_efficiency() << " gst_eff=" << gst_efficiency()
     << " occupancy=" << warp_occupancy(max_warps_per_sm)
     << " atomics=" << atomic_ops << " launches(h/d)=" << host_launches << "/"
     << device_launches << " blocks=" << blocks << " warps=" << warps;
  if (robustness.any_fault()) {
    os << " refused=" << robustness.refused_total()
       << " retries=" << robustness.retries
       << " degraded=" << robustness.degraded;
  }
  return os.str();
}

namespace {
// Shortest round-trip decimal form, so serializing the same metrics always
// produces the same bytes (the bench baseline files rely on this).
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}
}  // namespace

std::string RobustnessCounters::to_json() const {
  std::ostringstream os;
  os << "{\"launches_attempted\": " << launches_attempted
     << ", \"refused_pool\": " << refused_pool
     << ", \"refused_depth\": " << refused_depth
     << ", \"refused_heap\": " << refused_heap
     << ", \"faults_injected\": " << faults_injected
     << ", \"retries\": " << retries << ", \"degraded\": " << degraded << "}";
  return os.str();
}

std::string Metrics::to_json(int max_warps_per_sm) const {
  std::ostringstream os;
  os << "{\"warp_execution_efficiency\": " << num(warp_execution_efficiency())
     << ", \"gld_efficiency\": " << num(gld_efficiency())
     << ", \"gst_efficiency\": " << num(gst_efficiency())
     << ", \"warp_occupancy\": " << num(warp_occupancy(max_warps_per_sm))
     << ", \"warp_steps\": " << warp_steps
     << ", \"active_lane_ops\": " << active_lane_ops
     << ", \"gld_requested_bytes\": " << gld_requested_bytes
     << ", \"gld_transferred_bytes\": " << gld_transferred_bytes
     << ", \"gst_requested_bytes\": " << gst_requested_bytes
     << ", \"gst_transferred_bytes\": " << gst_transferred_bytes
     << ", \"atomic_ops\": " << atomic_ops
     << ", \"shared_ops\": " << shared_ops
     << ", \"compute_ops\": " << compute_ops
     << ", \"host_launches\": " << host_launches
     << ", \"device_launches\": " << device_launches
     << ", \"blocks\": " << blocks << ", \"warps\": " << warps
     << ", \"robustness\": " << robustness.to_json() << "}";
  return os.str();
}

}  // namespace nestpar::simt
