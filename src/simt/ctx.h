#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "src/simt/arena.h"
#include "src/simt/device_spec.h"
#include "src/simt/fault.h"
#include "src/simt/kernel.h"
#include "src/simt/launch_graph.h"
#include "src/simt/metrics.h"
#include "src/simt/op.h"

namespace nestpar::simt {

class BlockCtx;
class LaneCtx;

/// Per-grid histogram of atomic operations (atomic-segment granularity);
/// feeds the hotspot serialization term of the timing model. Backed by the
/// open-addressing FlatHist (arena.h): only order-independent reductions
/// (per-key sum, global max) are ever taken from it.
using AtomicHist = FlatHist;

/// Internal: a child launch noted during warp combining, with the issue
/// offset in block cycles (converted to a fraction when the block ends).
/// Records are appended in lane-ascending order within a warp step and in
/// step order within a block — the order the scheduler's event timeline and
/// every checked-in baseline depend on.
struct ChildLaunchRecord {
  std::uint32_t child_kernel;
  double offset_cycles;
};

namespace detail {

/// Outcome of one device-side launch attempt: the env-local child id when it
/// succeeded, or the refusal reason (resource limit or injected fault).
struct LaunchOutcome {
  std::uint32_t local_id = kInvalidLaunchNode;
  SimtError error = SimtError::kOk;
};

/// Reusable per-block recording storage: the warp's SoA op trace, the bump
/// arena backing shared-memory arrays, and the block's pending child-launch
/// records.
///
/// Ownership/lifetime: scratches are owned by a per-host-thread stack indexed
/// by nesting depth (recorder.cpp); a BlockCtx borrows one for its lifetime
/// via acquire/release. A nested grid launched mid-phase runs its blocks with
/// the next-deeper scratch, so the parent's live trace and shared arrays are
/// never disturbed. Recycling is invisible to the cost model because every
/// slot the model can see is kModelAlignment-aligned (host_alloc.h).
struct BlockScratch {
  WarpTrace trace;
  Arena shared;
  std::vector<ChildLaunchRecord> pending_children;
};

/// Borrow the calling thread's scratch for the current nesting depth
/// (allocating one the first time that depth is reached). Must be paired
/// with release_block_scratch in strict LIFO order — BlockCtx's constructor
/// and destructor are the only callers.
BlockScratch* acquire_block_scratch();
void release_block_scratch();

/// Execution backend a running block records into. The engine (recorder.cpp)
/// provides one per block task; routing everything through this interface is
/// what lets blocks of a grid run on different host threads while each
/// records into private storage, merged deterministically afterwards.
class BlockEnv {
 public:
  virtual ~BlockEnv() = default;
  virtual const DeviceSpec& spec() const = 0;
  /// Record a device-side launch from `parent_block` of this env's grid and
  /// (unless `deferred`) execute it to completion. On success the outcome's
  /// `local_id` is a child id local to this env's recording, later remapped
  /// to a global node id; a refused launch carries the SimtError instead and
  /// records nothing but the robustness counters.
  virtual LaunchOutcome launch_child(const LaunchConfig& cfg, Kernel k,
                                     int parent_block, int extra_stream_slot,
                                     bool deferred) = 0;
  /// Atomic histogram of the grid this env's block belongs to.
  virtual AtomicHist& hist() = 0;
  /// Metrics sink of the grid this env's block belongs to.
  virtual Metrics& metrics() = 0;
  /// Fault-injector configuration (retry/backoff parameters); a default
  /// FaultConfig when no injector is active.
  virtual const FaultConfig& fault_config() const = 0;
  /// True when this block — and everything launched beneath it — runs with
  /// no other block executing on a concurrent host thread (serial engine,
  /// or a single-block grid with no parallel ancestor). Lane RMW ops may
  /// then use plain memory accesses instead of lock-prefixed atomics; the
  /// values produced are identical, only the host-side data-race protection
  /// (unneeded on one thread) is skipped.
  virtual bool exclusive_mem() const = 0;
};

/// True when T can be updated through std::atomic_ref without locks — the
/// engine's requirement for lane ops on memory shared across host threads.
template <class T>
inline constexpr bool kLaneAtomicEligible =
    std::is_arithmetic_v<T> && !std::is_same_v<T, bool> &&
    sizeof(T) <= sizeof(std::uint64_t) && alignof(T) >= sizeof(T);

}  // namespace detail

/// Non-owning reference to a per-lane phase body, `void(LaneCtx&)`.
/// BlockCtx::each_thread takes this instead of a std::function so that the
/// (very hot) per-phase call carries no heap allocation and no virtual-ish
/// dispatch setup: call sites keep passing lambdas unchanged, and the
/// referenced callable only needs to outlive the each_thread call itself.
class ThreadBodyRef {
 public:
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ThreadBodyRef> &&
                std::is_invocable_v<F&, LaneCtx&>>>
  ThreadBodyRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* o, LaneCtx& t) {
          (*static_cast<std::remove_reference_t<F>*>(o))(t);
        }) {}

  void operator()(LaneCtx& t) const { call_(obj_, t); }

 private:
  void* obj_;
  void (*call_)(void*, LaneCtx&);
};

/// Per-lane execution context handed to kernel bodies by the functional pass.
///
/// Every method both *performs* the operation on host memory (so results are
/// real and testable) and *records* a lane op that the warp combiner reduces
/// into cost and nvprof-like metrics. Addresses are real host addresses;
/// coalescing is computed from their relative layout, which matches the data
/// layout a CUDA kernel would see.
///
/// Recorded ops land in the warp's shared structure-of-arrays trace
/// (WarpTrace): lanes of a warp execute sequentially, so each lane's ops are
/// a contiguous column range delimited by lane offsets — no per-lane
/// containers, no per-op allocation. The trace is only alive until the warp
/// is combined; nothing may retain it.
///
/// Global-memory accesses go through std::atomic_ref (relaxed) so that the
/// parallel host engine — which runs blocks of a grid on concurrent host
/// threads — is free of data races: CUDA-racy kernels become host-benign
/// instead of undefined behavior, and genuinely atomic ops really are atomic.
class LaneCtx {
 public:
  int thread_idx() const { return thread_idx_; }
  int block_idx() const { return block_idx_; }
  int block_dim() const { return block_dim_; }
  int grid_dim() const { return grid_dim_; }
  int global_idx() const { return block_idx_ * block_dim_ + thread_idx_; }
  int lane() const { return thread_idx_ % 32; }
  int warp() const { return thread_idx_ / 32; }
  /// Total threads in the grid (for grid-stride loops).
  int grid_threads() const { return grid_dim_ * block_dim_; }

  /// `n` arithmetic instructions.
  void compute(std::uint32_t n = 1) {
    trace_->push_count(OpKind::kCompute, n);
  }

  /// Global-memory load: returns `*p` and records the access.
  template <class T>
  T ld(const T* p) {
    trace_->push_mem(OpKind::kGlobalLoad, sizeof(T),
                     reinterpret_cast<std::uint64_t>(p));
    if constexpr (detail::kLaneAtomicEligible<T>) {
      // atomic_ref has no const overload; the load itself never writes.
      return std::atomic_ref<T>(*const_cast<T*>(p))
          .load(std::memory_order_relaxed);
    } else {
      return *p;
    }
  }
  template <class T>
    requires(!std::is_pointer_v<T>)
  T ld(const T& r) {
    return ld(&r);
  }

  /// Global-memory store.
  template <class T>
  void st(T* p, T v) {
    trace_->push_mem(OpKind::kGlobalStore, sizeof(T),
                     reinterpret_cast<std::uint64_t>(p));
    if constexpr (detail::kLaneAtomicEligible<T>) {
      std::atomic_ref<T>(*p).store(v, std::memory_order_relaxed);
    } else {
      *p = v;
    }
  }

  /// Raw charge of a global load/store covering `bytes` at `p`, without
  /// touching memory — for aggregate accounting of long scans whose
  /// per-element trace would be wastefully large.
  void charge_load(const void* p, std::uint32_t bytes) {
    trace_->push_mem(OpKind::kGlobalLoad, bytes,
                     reinterpret_cast<std::uint64_t>(p));
  }
  void charge_store(const void* p, std::uint32_t bytes) {
    trace_->push_mem(OpKind::kGlobalStore, bytes,
                     reinterpret_cast<std::uint64_t>(p));
  }

  /// Shared-memory load (use with spans from BlockCtx::shared_array).
  /// Shared memory is block-local, so plain accesses are race-free even
  /// under the parallel engine.
  template <class T>
  T sh_ld(const T* p) {
    trace_->push_addr(OpKind::kSharedLoad,
                      reinterpret_cast<std::uint64_t>(p));
    return *p;
  }
  template <class T>
  void sh_st(T* p, T v) {
    trace_->push_addr(OpKind::kSharedStore,
                      reinterpret_cast<std::uint64_t>(p));
    *p = v;
  }

  /// Atomic read-modify-writes on global memory. Return the old value, as in
  /// CUDA. Lanes executing atomics to the same address serialize in the model.
  ///
  /// When the engine guarantees single-threaded execution
  /// (BlockEnv::exclusive_mem), each falls through to the plain
  /// read-modify-write below its atomic form: lock-prefixed RMWs cost ~20
  /// cycles each even uncontended, and graph workloads issue one per edge.
  /// The plain path computes the identical value — only the (unneeded)
  /// host-side race protection is skipped.
  template <class T>
  T atomic_add(T* p, T v) {
    record_atomic(p);
    if constexpr (detail::kLaneAtomicEligible<T>) {
      if (!exclusive_mem_) {
        std::atomic_ref<T> a(*p);
        if constexpr (std::is_integral_v<T>) {
          return a.fetch_add(v, std::memory_order_relaxed);
        } else {
          T old = a.load(std::memory_order_relaxed);
          while (!a.compare_exchange_weak(old, static_cast<T>(old + v),
                                          std::memory_order_relaxed)) {
          }
          return old;
        }
      }
    }
    T old = *p;
    *p = static_cast<T>(old + v);
    return old;
  }
  template <class T>
  T atomic_min(T* p, T v) {
    record_atomic(p);
    if constexpr (detail::kLaneAtomicEligible<T>) {
      if (!exclusive_mem_) {
        std::atomic_ref<T> a(*p);
        T old = a.load(std::memory_order_relaxed);
        while (v < old &&
               !a.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
        }
        return old;
      }
    }
    T old = *p;
    if (v < old) *p = v;
    return old;
  }
  template <class T>
  T atomic_max(T* p, T v) {
    record_atomic(p);
    if constexpr (detail::kLaneAtomicEligible<T>) {
      if (!exclusive_mem_) {
        std::atomic_ref<T> a(*p);
        T old = a.load(std::memory_order_relaxed);
        while (old < v &&
               !a.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
        }
        return old;
      }
    }
    T old = *p;
    if (old < v) *p = v;
    return old;
  }
  template <class T>
  T atomic_exch(T* p, T v) {
    record_atomic(p);
    if constexpr (detail::kLaneAtomicEligible<T>) {
      if (!exclusive_mem_) {
        return std::atomic_ref<T>(*p).exchange(v, std::memory_order_relaxed);
      }
    }
    T old = *p;
    *p = v;
    return old;
  }
  template <class T>
  T atomic_cas(T* p, T expected, T val) {
    record_atomic(p);
    if constexpr (detail::kLaneAtomicEligible<T>) {
      if (!exclusive_mem_) {
        T old = expected;
        std::atomic_ref<T>(*p).compare_exchange_strong(
            old, val, std::memory_order_relaxed);
        return old;
      }
    }
    T old = *p;
    if (old == expected) *p = val;
    return old;
  }

  /// Shared-memory atomic (cheap; does not hit the global atomic units).
  /// Block-local, so a plain read-modify-write suffices.
  template <class T>
  T sh_atomic_add(T* p, T v) {
    trace_->push_addr(OpKind::kSharedStore,
                      reinterpret_cast<std::uint64_t>(p));
    T old = *p;
    *p = static_cast<T>(old + v);
    return old;
  }

  /// Device-side (nested) kernel launch into this block's default child
  /// stream. Launches from the same block serialize; launches from different
  /// blocks may run concurrently — CUDA dynamic-parallelism semantics.
  ///
  /// This is the *synchronizing* form: the child grid executes before the
  /// call returns, so the parent sees its writes — equivalent to CUDA's
  /// launch followed by device-side synchronization on the child (the idiom
  /// the paper-era CDP tree traversals rely on to combine child results).
  /// Throws SimtException when the device runtime refuses the launch
  /// (ResourceLimits exhaustion or an injected fault).
  void launch(const LaunchConfig& cfg, Kernel k);
  /// Launch into one of this block's extra streams (`slot >= 0`); used by the
  /// paper's multi-stream recursive variants.
  void launch(const LaunchConfig& cfg, Kernel k, int extra_stream_slot);
  /// Convenience: nested launch of a single-phase per-lane kernel.
  void launch_threads(const LaunchConfig& cfg, ThreadKernel k);
  void launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                      int extra_stream_slot);

  /// Fire-and-forget nested launch: the child is queued and executes after
  /// the current host-launched grid completes (breadth-first drain), so the
  /// parent never observes its writes — plain CDP launch semantics without
  /// parent synchronization. Used by the recursive BFS templates. Throws
  /// SimtException on refusal, like launch().
  void launch_async(const LaunchConfig& cfg, Kernel k,
                    int extra_stream_slot = -1);
  void launch_threads_async(const LaunchConfig& cfg, ThreadKernel k,
                            int extra_stream_slot = -1);

  /// Non-throwing launch forms: return the refusal reason instead of
  /// throwing, so templates can degrade gracefully. A refused attempt still
  /// charges the launch-issue cycles (the hardware does the work of trying)
  /// and bumps the robustness counters, but creates no child grid.
  LaunchResult try_launch(const LaunchConfig& cfg, Kernel k,
                          int extra_stream_slot = -1);
  LaunchResult try_launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                                  int extra_stream_slot = -1);
  LaunchResult try_launch_async(const LaunchConfig& cfg, Kernel k,
                                int extra_stream_slot = -1);
  LaunchResult try_launch_threads_async(const LaunchConfig& cfg,
                                        ThreadKernel k,
                                        int extra_stream_slot = -1);

  /// try_launch with retry-with-backoff on *transient* faults: up to
  /// FaultConfig::max_retries retries, each preceded by an exponentially
  /// growing stall (modeled in cycles). Deterministic resource refusals are
  /// returned immediately — retrying them cannot succeed.
  LaunchResult launch_with_retry(const LaunchConfig& cfg, const Kernel& k,
                                 int extra_stream_slot = -1);
  LaunchResult launch_threads_with_retry(const LaunchConfig& cfg,
                                         ThreadKernel k,
                                         int extra_stream_slot = -1);

  /// Record `cycles` of idle wait in this lane (retry backoff).
  void stall(std::uint32_t cycles) {
    trace_->push_count(OpKind::kStall, cycles);
  }

  /// Note that this lane fell back to a degraded (launch-free) path after a
  /// refused launch; counted in the grid's RobustnessCounters.
  void note_degraded();

 private:
  friend class BlockCtx;
  LaneCtx(BlockCtx* blk, WarpTrace* trace, int thread_idx);

  template <class T>
  void record_atomic(T* p) {
    trace_->push_addr(OpKind::kAtomic,
                      reinterpret_cast<std::uint64_t>(p));
  }

  BlockCtx* blk_;
  WarpTrace* trace_;
  int thread_idx_;
  int block_idx_;
  int block_dim_;
  int grid_dim_;
  /// Cached BlockEnv::exclusive_mem() (via BlockCtx): plain RMWs allowed.
  bool exclusive_mem_;
};

/// Per-block execution context. A kernel body structures its work as one or
/// more `each_thread` phases; consecutive phases are separated by an implicit
/// block-wide barrier, which is how `__syncthreads()`-delimited CUDA code is
/// expressed here (the functional pass runs lanes sequentially, so a phase
/// boundary is the only correct way to order cross-thread communication).
///
/// Recording storage (the warp trace, the shared-memory arena, pending child
/// records) is borrowed from a per-thread, per-nesting-depth BlockScratch
/// for the duration of the block and recycled afterwards; see
/// detail::BlockScratch for the lifetime rules.
class BlockCtx {
 public:
  /// Internal: constructed by the execution engine with the backend this
  /// block records into. Kernel bodies only ever receive a reference.
  BlockCtx(detail::BlockEnv* env, int block_idx, int block_dim, int grid_dim);
  ~BlockCtx();

  int block_idx() const { return block_idx_; }
  int block_dim() const { return block_dim_; }
  int grid_dim() const { return grid_dim_; }
  const DeviceSpec& spec() const;

  /// Run one per-lane phase over all threads of the block. The body is
  /// called once per thread, warp by warp in ascending lane order; it only
  /// needs to be valid for the duration of this call (ThreadBodyRef does not
  /// own it).
  void each_thread(ThreadBodyRef fn);

  /// Allocate a zero-initialized shared-memory array for this block. Counts
  /// against the 48KB shared-memory budget (checked). The storage lives in
  /// the block's scratch arena: it is valid until the block finishes, and
  /// must not be retained beyond that (exactly like __shared__ memory).
  template <class T>
  std::span<T> shared_array(std::size_t n) {
    void* p = shared_alloc(n * sizeof(T), alignof(T));
    return std::span<T>(static_cast<T*>(p), n);
  }

  /// Internal: close the block and return its reduced cost (issue cycles,
  /// warp count, child-launch fractions). Called once by the engine after
  /// the kernel body returns; also bumps the grid's block/warp metrics.
  BlockCost finish();

  BlockCtx(const BlockCtx&) = delete;
  BlockCtx& operator=(const BlockCtx&) = delete;

 private:
  friend class LaneCtx;

  void* shared_alloc(std::size_t bytes, std::size_t align);
  /// Combine and flush the per-lane traces of the warp just recorded.
  void flush_warp(int first_thread, int lanes);

  detail::BlockEnv* env_;
  detail::BlockScratch* scratch_;  ///< Borrowed; released in the destructor.
  int block_idx_;
  int block_dim_;
  int grid_dim_;
  /// BlockEnv::exclusive_mem(), fetched once per block so each LaneCtx
  /// copies a bool instead of making a virtual call.
  bool exclusive_mem_;
  int phase_ = 0;
  std::size_t shared_used_ = 0;
  // Accumulated block cost; reduced into a BlockCost when the block ends.
  double issue_cycles_ = 0.0;
};

}  // namespace nestpar::simt
