// Global allocator replacement: every heap allocation in a binary linking
// this library is aligned to simt::kModelAlignment (one memory segment).
//
// Why: the timing model consumes raw host addresses — coalescing buckets
// addresses by 128-byte segment, atomic conflict detection by 8-byte unit.
// With plain malloc, a buffer's segment *phase* (base % 128) depends on heap
// history, which differs between the serial and the multi-threaded host
// engine (worker threads allocate from separate malloc arenas) and even
// between runs (per-thread caches). Pinning every allocation to a segment
// boundary makes the modeled cost a function of intra-buffer offsets only —
// the property that lets both engines charge bit-identical cycles. It also
// mirrors the real device, where cudaMalloc returns 256-byte-aligned
// pointers and buffer phase is never an accident of the host heap.
//
// posix_memalign keeps the per-allocation overhead to the alignment padding
// alone; all delete forms funnel into free(), which accepts that memory.
#include "src/simt/host_alloc.h"

#include <cstdlib>
#include <new>

#include "src/simt/aligned.h"

namespace nestpar::simt::detail {

bool host_allocator_active() { return true; }

}  // namespace nestpar::simt::detail

namespace {

void* aligned_new(std::size_t size, std::size_t align, bool nothrow) {
  if (size == 0) size = 1;
  if (align < nestpar::simt::kModelAlignment) {
    align = nestpar::simt::kModelAlignment;
  }
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, size) == 0) return p;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      if (nothrow) return nullptr;
      throw std::bad_alloc();
    }
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) {
  return aligned_new(size, 0, /*nothrow=*/false);
}
void* operator new[](std::size_t size) {
  return aligned_new(size, 0, /*nothrow=*/false);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return aligned_new(size, 0, /*nothrow=*/true);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return aligned_new(size, 0, /*nothrow=*/true);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return aligned_new(size, static_cast<std::size_t>(align),
                     /*nothrow=*/false);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return aligned_new(size, static_cast<std::size_t>(align),
                     /*nothrow=*/false);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return aligned_new(size, static_cast<std::size_t>(align), /*nothrow=*/true);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return aligned_new(size, static_cast<std::size_t>(align), /*nothrow=*/true);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
