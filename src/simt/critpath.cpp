#include "src/simt/critpath.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace nestpar::simt {
namespace {

constexpr double kEps = 1e-6;

const char* const kCategoryNames[kCritCategoryCount] = {
    "compute", "imbalance", "launch", "stream-wait",
    "dep-wait", "occupancy", "fault",
};

const char* const kVerdictNames[4] = {
    "compute-bound",
    "launch-bound",
    "imbalance-bound",
    "dependency-bound",
};

/// Builds the walker's working state and accumulates segments emitted in
/// reverse time order (the walk runs from makespan back to zero).
class CritWalker {
 public:
  CritWalker(const LaunchGraph& graph, const ScheduleResult& sched)
      : graph_(graph), sched_(sched) {}

  CritPath run() {
    CritPath cp;
    const std::size_t n = graph_.nodes.size();
    if (n == 0) return cp;
    if (sched_.node_end.size() != n || sched_.node_queued.size() != n) {
      throw std::logic_error(
          "analyze_critical_path: ScheduleResult does not match the graph "
          "(causal timestamps missing)");
    }

    // Stream FIFO predecessors: nodes are stored in seq order, so the
    // predecessor of a node is the previous node seen on its stream.
    std::vector<std::int64_t> pred(n, -1);
    {
      std::vector<std::int64_t> last(graph_.num_streams, -1);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t s = graph_.nodes[i].stream;
        pred[i] = last[s];
        last[s] = static_cast<std::int64_t>(i);
      }
    }

    // Start at the last-finishing grid (first one on ties: deterministic).
    std::size_t cur = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (sched_.node_end[i] > sched_.node_end[cur]) cur = i;
    }
    double t = sched_.node_end[cur];
    cp.makespan = t;

    // Walk backwards. Every iteration either moves `t` strictly earlier or
    // hops to a lower-id stream predecessor, so the walk terminates; the
    // guard is a safety net only.
    const std::uint64_t max_iters = 8 * static_cast<std::uint64_t>(n) + 64;
    std::uint64_t iters = 0;
    while (t > kEps) {
      if (++iters > max_iters) {
        // Should be unreachable; keep the invariant by attributing the
        // remainder rather than under-covering the makespan.
        emit(cp, cur, CritCategory::kCompute, 0.0, t);
        break;
      }
      const KernelNode& node = graph_.nodes[cur];

      // (1) Execution span of the binding grid: split into balanced
      // compute, the straggler (imbalance) tail, and the fault share.
      const double start = sched_.node_start[cur];
      if (t > start + kEps) {
        const double span = t - start;
        double max_bc = 0.0, sum_bc = 0.0;
        for (const BlockCost& b : node.blocks) {
          max_bc = std::max(max_bc, b.issue_cycles);
          sum_bc += b.issue_cycles;
        }
        const double mean_bc =
            node.blocks.empty()
                ? 0.0
                : sum_bc / static_cast<double>(node.blocks.size());
        double imb = (node.blocks.size() > 1 && max_bc > 0.0)
                         ? span * (1.0 - mean_bc / max_bc)
                         : 0.0;
        double fault =
            sum_bc > 0.0
                ? span * std::min(1.0, node.metrics.fault_cycles / sum_bc)
                : 0.0;
        fault = std::clamp(fault, 0.0, span - imb);
        const double comp = span - imb - fault;
        // The straggler tail sits at the end of the span, the fault share
        // before it; emission is in reverse time order.
        if (imb > 0.0) {
          emit(cp, cur, CritCategory::kImbalance, start + comp + fault, imb);
        }
        if (fault > 0.0) {
          emit(cp, cur, CritCategory::kFault, start + comp, fault);
        }
        if (comp > 0.0) emit(cp, cur, CritCategory::kCompute, start, comp);
        t = start;
      }

      // (2) Gap between becoming eligible and starting: all grid slots were
      // taken (max_concurrent_grids).
      const double queued = sched_.node_queued[cur];
      if (t > queued + kEps) {
        emit(cp, cur, CritCategory::kOccupancy, queued, t - queued);
        t = queued;
      }

      // (3) What bound the queue point: the latest of GMU activation, the
      // stream predecessor's completion, and `depends_on` completions.
      const double activated = sched_.node_activated[cur];
      const double p_end =
          pred[cur] >= 0
              ? sched_.node_end[static_cast<std::size_t>(pred[cur])]
              : -1.0;
      double d_end = -1.0;
      for (const std::uint32_t d : node.depends_on) {
        d_end = std::max(d_end, sched_.node_end[d]);
      }
      const double others = std::max(activated, p_end);
      if (d_end > others + kEps && t > others + kEps) {
        // Cross-stream event dependency bound the tail of the wait.
        emit(cp, cur, CritCategory::kDepWait, others, t - others);
        t = others;
      }

      if (p_end > activated + kEps) {
        // Stream FIFO binds: zero-duration marker, then walk into the
        // predecessor — the wait is spent inside it (see critpath.h).
        emit(cp, cur, CritCategory::kStreamWait, t, 0.0);
        cur = static_cast<std::size_t>(pred[cur]);
        t = std::min(t, sched_.node_end[cur]);
        continue;
      }

      // (4) The launch chain binds: GMU queue + activation service (device
      // grids only; activated == ready for host grids), then launch latency.
      const double ready = sched_.node_ready[cur];
      const double issued = sched_.node_issued[cur];
      if (t > ready + kEps) {
        emit(cp, cur, CritCategory::kLaunch, ready, t - ready);
        t = ready;
      }
      if (t > issued + kEps) {
        emit(cp, cur, CritCategory::kLaunch, issued, t - issued);
        t = issued;
      }
      if (node.origin == LaunchOrigin::kDevice && node.parent_kernel >= 0) {
        // The issue point lies inside the parent block's execution span;
        // continue the walk there.
        cur = static_cast<std::size_t>(node.parent_kernel);
        continue;
      }
      // Host grid: what remains is the host launch loop issuing earlier
      // launches back-to-back before this one.
      if (t > kEps) emit(cp, cur, CritCategory::kLaunch, 0.0, t);
      t = 0.0;
    }

    std::reverse(cp.chain.begin(), cp.chain.end());

    const double covered = cp.total.total();
    if (std::abs(covered - cp.makespan) >
        1e-6 * std::max(1.0, cp.makespan)) {
      throw std::logic_error(
          "analyze_critical_path: attribution does not cover the makespan");
    }
    return cp;
  }

 private:
  void emit(CritPath& cp, std::size_t node_id, CritCategory cat, double begin,
            double cycles) {
    const KernelNode& node = graph_.nodes[node_id];
    cp.chain.push_back(CritSegment{static_cast<std::uint32_t>(node_id),
                                   node.nest_depth, cat, begin, cycles,
                                   node.name});
    if (cycles <= 0.0) return;
    cp.total[cat] += cycles;
    cp.per_kernel[node.name][cat] += cycles;
    cp.folded[folded_stack(node_id, cat)] += cycles;
  }

  /// "root;...;kernel;[category]" along the launch ancestry. Memoized per
  /// node — chains revisit the same nodes across segments.
  const std::string& ancestry(std::size_t node_id) {
    auto it = ancestry_.find(node_id);
    if (it != ancestry_.end()) return it->second;
    const KernelNode& node = graph_.nodes[node_id];
    std::string stack;
    if (node.parent_kernel >= 0) {
      stack = ancestry(static_cast<std::size_t>(node.parent_kernel));
      stack += ';';
    }
    stack += node.name;
    return ancestry_.emplace(node_id, std::move(stack)).first->second;
  }

  std::string folded_stack(std::size_t node_id, CritCategory cat) {
    std::string s = ancestry(node_id);
    s += ";[";
    s += kCategoryNames[static_cast<int>(cat)];
    s += ']';
    return s;
  }

  const LaunchGraph& graph_;
  const ScheduleResult& sched_;
  std::unordered_map<std::size_t, std::string> ancestry_;
};

}  // namespace

std::string_view to_string(CritCategory c) {
  return kCategoryNames[static_cast<int>(c)];
}

bool parse_crit_category(std::string_view s, CritCategory& out) {
  for (int i = 0; i < kCritCategoryCount; ++i) {
    if (s == kCategoryNames[i]) {
      out = static_cast<CritCategory>(i);
      return true;
    }
  }
  return false;
}

double CritAttribution::total() const {
  double sum = 0.0;
  for (const double c : cycles) sum += c;
  return sum;
}

CritAttribution& CritAttribution::operator+=(const CritAttribution& o) {
  for (int i = 0; i < kCritCategoryCount; ++i) cycles[i] += o.cycles[i];
  return *this;
}

CritPath analyze_critical_path(const LaunchGraph& graph,
                               const ScheduleResult& sched) {
  return CritWalker(graph, sched).run();
}

std::string_view to_string(CritVerdict v) {
  return kVerdictNames[static_cast<int>(v)];
}

CritVerdict classify_bottleneck(const CritAttribution& a) {
  const double total = a.total();
  if (total <= 0.0) return CritVerdict::kComputeBound;
  const double launch =
      (a[CritCategory::kLaunch] + a[CritCategory::kOccupancy]) / total;
  const double dep =
      (a[CritCategory::kDepWait] + a[CritCategory::kStreamWait]) / total;
  const double imb = a[CritCategory::kImbalance] / total;
  // Priority order: the mechanism whose removal frees the most cycles.
  if (launch >= 0.30 && launch >= dep) return CritVerdict::kLaunchBound;
  if (dep >= 0.25) return CritVerdict::kDependencyBound;
  if (imb >= 0.15) return CritVerdict::kImbalanceBound;
  return CritVerdict::kComputeBound;
}

std::map<std::string, CritAttribution> attribution_by_template(
    const std::map<std::string, CritAttribution>& per_kernel) {
  std::map<std::string, CritAttribution> out;
  for (const auto& [name, attr] : per_kernel) {
    // "workload/template/phase" -> "template"; "workload/template" ->
    // "template"; no '/' -> the whole name (same rule as nestpar_prof).
    std::string tmpl = name;
    const auto first = name.find('/');
    if (first != std::string::npos) {
      const auto second = name.find('/', first + 1);
      tmpl = second == std::string::npos
                 ? name.substr(first + 1)
                 : name.substr(first + 1, second - first - 1);
    }
    out[tmpl] += attr;
  }
  return out;
}

}  // namespace nestpar::simt
