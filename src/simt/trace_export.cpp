#include "src/simt/trace_export.h"

#include <ostream>

#include "src/simt/scheduler.h"

namespace nestpar::simt {

namespace {

/// Minimal JSON string escaping (kernel names are library-controlled, but a
/// user-provided name must not break the file).
void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Device& dev) {
  // Copy: schedule() annotates occupancy metrics into the graph, and the
  // caller's session must stay untouched for its own report().
  LaunchGraph graph = dev.graph();
  const DeviceSpec& spec = dev.spec();
  ScheduleResult sched;
  if (!graph.nodes.empty()) {
    sched = schedule(spec, graph);
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const KernelNode& node : graph.nodes) {
    if (!first) out << ",";
    first = false;
    const double start_us = spec.cycles_to_us(sched.node_start[node.id]);
    const double dur_us = spec.cycles_to_us(
        std::max(0.0, sched.node_end[node.id] - sched.node_start[node.id]));
    out << "{\"name\":\"";
    write_escaped(out, node.name);
    out << "\",\"cat\":\""
        << (node.origin == LaunchOrigin::kHost ? "host-launch"
                                               : "device-launch")
        << "\",\"ph\":\"X\",\"ts\":" << start_us << ",\"dur\":" << dur_us
        << ",\"pid\":0,\"tid\":" << node.stream << ",\"args\":{"
        << "\"grid_blocks\":" << node.grid_blocks
        << ",\"block_threads\":" << node.block_threads
        << ",\"nest_depth\":" << node.nest_depth
        << ",\"atomics\":" << node.metrics.atomic_ops << ",\"warp_eff\":"
        << node.metrics.warp_execution_efficiency() << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace nestpar::simt
