#include "src/simt/trace_export.h"

#include <ostream>

#include "src/simt/critpath.h"
#include "src/simt/profiler.h"
#include "src/simt/scheduler.h"
#include "src/simt/trace_json.h"

namespace nestpar::simt {

namespace {

using trace_json::kSimPid;
using trace_json::write_escaped;

/// Timestamp for a launch-graph watermark (see CounterSample::node): the
/// start of the grid launched right after the sample was taken, or the end
/// of the schedule when the sample came after the last launch (or from a
/// different device's session — profiling is process-wide).
double watermark_us(const DeviceSpec& spec, const ScheduleResult& sched,
                    std::uint64_t node) {
  if (node < sched.node_start.size()) {
    return spec.cycles_to_us(sched.node_start[node]);
  }
  return spec.cycles_to_us(sched.total_cycles);
}

/// One Perfetto instant event attributing fault-model activity to a grid.
void write_fault_instant(std::ostream& out, const char* name,
                         std::uint64_t count, const KernelNode& node,
                         double ts_us) {
  out << ",{\"name\":\"" << name << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":"
      << "\"g\",\"ts\":" << ts_us << ",\"pid\":" << trace_json::kSimPid
      << ",\"tid\":" << node.stream
      << ",\"args\":{\"kernel\":\"";
  write_escaped(out, node.name);
  out << "\",\"count\":" << count << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Device& dev) {
  // Copy: schedule() annotates occupancy metrics into the graph, and the
  // caller's session must stay untouched for its own report().
  LaunchGraph graph = dev.graph();
  const DeviceSpec& spec = dev.spec();
  ScheduleResult sched;
  if (!graph.nodes.empty()) {
    sched = schedule(spec, graph);
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const KernelNode& node : graph.nodes) {
    if (!first) out << ",";
    first = false;
    const double start_us = spec.cycles_to_us(sched.node_start[node.id]);
    const double dur_us = spec.cycles_to_us(
        std::max(0.0, sched.node_end[node.id] - sched.node_start[node.id]));
    out << "{\"name\":\"";
    write_escaped(out, node.name);
    out << "\",\"cat\":\""
        << (node.origin == LaunchOrigin::kHost ? "host-launch"
                                               : "device-launch")
        << "\",\"ph\":\"X\",\"ts\":" << start_us << ",\"dur\":" << dur_us
        << ",\"pid\":" << kSimPid
        << ",\"tid\":" << node.stream << ",\"args\":{"
        << "\"grid_blocks\":" << node.grid_blocks
        << ",\"block_threads\":" << node.block_threads
        << ",\"nest_depth\":" << node.nest_depth
        << ",\"atomics\":" << node.metrics.atomic_ops << ",\"warp_eff\":"
        << node.metrics.warp_execution_efficiency();
    // Serving-layer provenance, only when stamped (context-free sessions —
    // every bench/profiling path — emit byte-identical traces).
    if (node.batch_id != kNoBatchId) {
      out << ",\"batch\":" << node.batch_id << ",\"requests\":[";
      for (std::size_t i = 0; i < node.requesters.size(); ++i) {
        if (i != 0) out << ",";
        out << node.requesters[i].request;
      }
      out << "]";
    }
    out << "}}";
  }

  // Profiling extension (gated so profile-off traces are byte-identical to
  // the pre-profiler exporter): Perfetto counter tracks for template
  // telemetry (queue split sizes, split levels, ...) plus instant events for
  // template-emitted markers (queue flushes) and fault-model activity
  // attributed to the grid it happened in.
  if (!first && Profiler::enabled()) {
    const ProfileSnapshot snap = Profiler::instance().snapshot();
    for (const CounterSample& c : snap.counters) {
      out << ",";
      trace_json::write_counter(out, c.track,
                                watermark_us(spec, sched, c.node), kSimPid,
                                c.value);
    }
    for (const InstantSample& e : snap.instants) {
      out << ",";
      trace_json::write_instant(out, e.name, e.cat, "g",
                                watermark_us(spec, sched, e.node), kSimPid, 0);
    }
    for (const KernelNode& node : graph.nodes) {
      const RobustnessCounters& rb = node.metrics.robustness;
      if (!rb.any_fault()) continue;
      const double ts_us = spec.cycles_to_us(sched.node_start[node.id]);
      if (rb.faults_injected > 0) {
        write_fault_instant(out, "fault-injected", rb.faults_injected, node,
                            ts_us);
      }
      const std::uint64_t refused =
          rb.refused_pool + rb.refused_depth + rb.refused_heap;
      if (refused > 0) {
        write_fault_instant(out, "launch-refused", refused, node, ts_us);
      }
      if (rb.retries > 0) {
        write_fault_instant(out, "retry", rb.retries, node, ts_us);
      }
      if (rb.degraded > 0) {
        write_fault_instant(out, "degraded", rb.degraded, node, ts_us);
      }
    }

    // Launch-edge flow events: one s/f pair per device-launched grid, from
    // the parent grid's row at the issue point to the child's row at its
    // start — Perfetto draws these as arrows along the CDP launch edges.
    for (const KernelNode& node : graph.nodes) {
      if (node.origin != LaunchOrigin::kDevice || node.parent_kernel < 0) {
        continue;
      }
      const KernelNode& parent =
          graph.nodes[static_cast<std::size_t>(node.parent_kernel)];
      out << ",";
      trace_json::write_flow_start(
          out, "launch", "launch", node.id,
          spec.cycles_to_us(sched.node_issued[node.id]), kSimPid,
          parent.stream);
      out << ",";
      trace_json::write_flow_end(out, "launch", "launch", node.id,
                                 spec.cycles_to_us(sched.node_start[node.id]),
                                 kSimPid, node.stream);
    }

    // Critical-path track: a dedicated row (tid one past the stream rows)
    // showing the binding chain, one slice per attributed segment named by
    // its edge category. Zero-duration stream-wait markers are skipped.
    const std::uint32_t crit_tid = graph.num_streams;
    out << ",";
    trace_json::write_thread_name(out, kSimPid, crit_tid, "critical path");
    const CritPath crit = analyze_critical_path(graph, sched);
    for (const CritSegment& seg : crit.chain) {
      if (seg.cycles <= 0.0) continue;
      out << ",{\"name\":\"" << to_string(seg.category)
          << "\",\"cat\":\"critical-path\",\"ph\":\"X\",\"ts\":"
          << spec.cycles_to_us(seg.begin)
          << ",\"dur\":" << spec.cycles_to_us(seg.cycles)
          << ",\"pid\":" << kSimPid << ",\"tid\":" << crit_tid << ",\"args\":{\"kernel\":\"";
      write_escaped(out, seg.kernel);
      out << "\",\"cycles\":" << seg.cycles << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace nestpar::simt
