#include "src/simt/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace nestpar::simt {
namespace {

constexpr double kEps = 1e-6;

enum class EventType : std::uint8_t {
  kKernelReady,      ///< A grid's launch latency elapsed; it may queue to start.
  kKernelActivated,  ///< The grid-management unit finished activating a grid.
  kSmCheck,          ///< An SM may have completed a block.
  kGridDrain,        ///< A grid's atomic-hotspot drain finished.
};

struct Event {
  double time;
  std::uint64_t order;  ///< Tie-break: global monotonically increasing.
  EventType type;
  std::uint32_t target;   ///< Node id or SM id.
  std::uint64_t version;  ///< For kSmCheck invalidation.
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.order > b.order;
  }
};

struct ResidentBlock {
  std::uint32_t node;
  std::uint32_t block;
  double remaining;   ///< Issue work (cycles) left, incl. dispatch overhead.
  double total_work;  ///< Initial `remaining` (for launch-point thresholds).
  int warps;
  std::size_t next_child = 0;  ///< Next ChildLaunch to trigger (frac order).
};

struct Sm {
  double last = 0.0;
  int used_warps = 0;
  int used_blocks = 0;
  int used_threads = 0;
  std::size_t used_smem = 0;
  std::int64_t used_regs = 0;
  std::uint64_t version = 0;
  std::vector<ResidentBlock> blocks;
};

struct NodeState {
  bool ready = false;
  bool queued = false;
  bool started = false;
  bool finished = false;
  double start = 0.0;
  double end = 0.0;
  // Causal timeline for the critical-path analyzer (see ScheduleResult).
  double issued_t = 0.0;
  double ready_t = 0.0;
  double activated_t = 0.0;
  double queued_t = 0.0;
  double blocks_done_t = 0.0;
  int blocks_done = 0;
  int deps_remaining = 0;  ///< Unfinished cross-stream (event) dependencies.
};

class Scheduler {
 public:
  Scheduler(const DeviceSpec& spec, LaunchGraph& graph)
      : spec_(spec), graph_(graph) {}

  ScheduleResult run();

 private:
  double rate(const Sm& sm) const {
    if (sm.used_warps == 0) return 0.0;
    const double hide = std::min(
        1.0, static_cast<double>(sm.used_warps) / spec_.latency_hiding_warps);
    return spec_.schedulers_per_sm * hide;
  }

  void push_event(double time, EventType type, std::uint32_t target,
                  std::uint64_t version = 0) {
    events_.push(Event{time, order_++, type, target, version});
  }

  void advance_sm(Sm& sm, double now);
  void schedule_sm_check(std::uint32_t sm_id);
  bool fits(const Sm& sm, const KernelNode& node) const;
  bool place_block(std::uint32_t node_id, std::uint32_t block_idx, double now);
  void try_dispatch(double now);
  void try_start(double now);
  void make_eligible(std::uint32_t node_id, double now);
  void start_grid(std::uint32_t node_id, double now);
  void complete_block(std::uint32_t node_id, double now);
  void finish_grid(std::uint32_t node_id, double now);
  void on_ready(std::uint32_t node_id, double now);
  void mark_ready(std::uint32_t node_id, double now);
  void try_queue(std::uint32_t node_id, double now);
  void on_sm_check(std::uint32_t sm_id, std::uint64_t version, double now);

  const DeviceSpec& spec_;
  LaunchGraph& graph_;
  std::vector<NodeState> state_;
  std::vector<Sm> sms_;
  std::vector<std::vector<std::uint32_t>> stream_nodes_;
  std::vector<std::size_t> stream_head_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::deque<std::uint32_t> eligible_;
  std::deque<std::pair<std::uint32_t, std::uint32_t>> dispatch_;
  /// Reverse event-dependency edges: finished grid -> waiting grids.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> dependents_;
  int running_grids_ = 0;
  std::uint64_t order_ = 0;
  double makespan_ = 0.0;
  double gmu_free_ = 0.0;  ///< Grid-management-unit busy-until time.
  int gmu_pending_ = 0;    ///< Device grids awaiting GMU activation.
};

void Scheduler::advance_sm(Sm& sm, double now) {
  const double dt = now - sm.last;
  sm.last = now;
  if (dt <= 0.0 || sm.blocks.empty()) return;
  const double r = rate(sm);
  const double total_warps = static_cast<double>(sm.used_warps);
  for (ResidentBlock& rb : sm.blocks) {
    rb.remaining -= dt * r * static_cast<double>(rb.warps) / total_warps;
    // Fire device launches whose issue point the block has now passed.
    const auto& children = graph_.nodes[rb.node].blocks[rb.block].children;
    while (rb.next_child < children.size()) {
      const ChildLaunch& c = children[rb.next_child];
      const double threshold = rb.total_work * (1.0 - c.issue_fraction);
      if (rb.remaining > threshold + kEps) break;
      push_event(now + spec_.device_launch_cycles(), EventType::kKernelReady,
                 c.child_kernel);
      ++rb.next_child;
    }
  }
  // Occupancy accounting: device-wide and per-kernel.
  std::uint32_t seen[64];
  int seen_n = 0;
  for (const ResidentBlock& rb : sm.blocks) {
    Metrics& m = graph_.nodes[rb.node].metrics;
    m.resident_warp_cycles += static_cast<double>(rb.warps) * dt;
    bool first = true;
    for (int i = 0; i < seen_n; ++i) {
      if (seen[i] == rb.node) {
        first = false;
        break;
      }
    }
    if (first) {
      if (seen_n < 64) seen[seen_n++] = rb.node;
      m.sm_active_cycles += dt;
    }
  }
}

void Scheduler::schedule_sm_check(std::uint32_t sm_id) {
  Sm& sm = sms_[sm_id];
  ++sm.version;
  if (sm.blocks.empty()) return;
  const double r = rate(sm);
  const double total_warps = static_cast<double>(sm.used_warps);
  double min_t = std::numeric_limits<double>::infinity();
  for (const ResidentBlock& rb : sm.blocks) {
    const double t =
        std::max(0.0, rb.remaining) * total_warps / (r * rb.warps);
    min_t = std::min(min_t, t);
  }
  push_event(sm.last + min_t, EventType::kSmCheck, sm_id, sm.version);
}

bool Scheduler::fits(const Sm& sm, const KernelNode& node) const {
  const int warps = spec_.warps_per_block(node.block_threads);
  return sm.used_blocks + 1 <= spec_.max_blocks_per_sm &&
         sm.used_warps + warps <= spec_.max_warps_per_sm &&
         sm.used_threads + node.block_threads <= spec_.max_threads_per_sm &&
         sm.used_smem + node.smem_bytes <= spec_.shared_mem_per_sm &&
         sm.used_regs + static_cast<std::int64_t>(node.regs_per_thread) *
                            node.block_threads <=
             spec_.registers_per_sm;
}

bool Scheduler::place_block(std::uint32_t node_id, std::uint32_t block_idx,
                            double now) {
  const KernelNode& node = graph_.nodes[node_id];
  int best = -1;
  int best_free = -1;
  for (std::size_t i = 0; i < sms_.size(); ++i) {
    if (!fits(sms_[i], node)) continue;
    const int free = spec_.max_warps_per_sm - sms_[i].used_warps;
    if (free > best_free) {
      best_free = free;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;

  Sm& sm = sms_[static_cast<std::size_t>(best)];
  advance_sm(sm, now);
  const int warps = spec_.warps_per_block(node.block_threads);
  const BlockCost& bc = node.blocks[block_idx];
  const double work = spec_.block_dispatch_cycles + bc.issue_cycles;
  sm.blocks.push_back(ResidentBlock{node_id, block_idx, work, work, warps});
  sm.used_blocks += 1;
  sm.used_warps += warps;
  sm.used_threads += node.block_threads;
  sm.used_smem += node.smem_bytes;
  sm.used_regs += static_cast<std::int64_t>(node.regs_per_thread) *
                  node.block_threads;

  // Device launches fire from advance_sm when the block's progress crosses
  // each child's issue point; a zero-fraction launch fires immediately.
  ResidentBlock& rb = sm.blocks.back();
  const auto& children = bc.children;
  while (rb.next_child < children.size() &&
         children[rb.next_child].issue_fraction <= kEps) {
    push_event(now + spec_.device_launch_cycles(), EventType::kKernelReady,
               children[rb.next_child].child_kernel);
    ++rb.next_child;
  }
  schedule_sm_check(static_cast<std::uint32_t>(best));
  return true;
}

void Scheduler::try_dispatch(double now) {
  while (!dispatch_.empty()) {
    auto [node_id, block_idx] = dispatch_.front();
    if (!place_block(node_id, block_idx, now)) break;
    dispatch_.pop_front();
  }
}

void Scheduler::make_eligible(std::uint32_t node_id, double now) {
  NodeState& ns = state_[node_id];
  if (ns.queued || ns.started) return;
  ns.queued = true;
  ns.queued_t = now;
  eligible_.push_back(node_id);
}

void Scheduler::try_start(double now) {
  while (running_grids_ < spec_.max_concurrent_grids && !eligible_.empty()) {
    const std::uint32_t id = eligible_.front();
    eligible_.pop_front();
    start_grid(id, now);
  }
}

void Scheduler::start_grid(std::uint32_t node_id, double now) {
  NodeState& ns = state_[node_id];
  ns.started = true;
  ns.start = now;
  if (graph_.nodes[node_id].origin == LaunchOrigin::kDevice) {
    --gmu_pending_;  // The grid leaves the pending-launch pool.
  }
  ++running_grids_;
  const KernelNode& node = graph_.nodes[node_id];
  for (int b = 0; b < node.grid_blocks; ++b) {
    dispatch_.emplace_back(node_id, static_cast<std::uint32_t>(b));
  }
  try_dispatch(now);
}

void Scheduler::complete_block(std::uint32_t node_id, double now) {
  NodeState& ns = state_[node_id];
  ++ns.blocks_done;
  if (ns.blocks_done == graph_.nodes[node_id].grid_blocks) {
    ns.blocks_done_t = now;
    const double drain_end =
        ns.start + static_cast<double>(graph_.nodes[node_id].hottest_atomic_ops) *
                       spec_.atomic_drain_cycles;
    if (drain_end > now + kEps) {
      push_event(drain_end, EventType::kGridDrain, node_id);
    } else {
      finish_grid(node_id, now);
    }
  }
}

void Scheduler::finish_grid(std::uint32_t node_id, double now) {
  NodeState& ns = state_[node_id];
  ns.finished = true;
  ns.end = now;
  makespan_ = std::max(makespan_, now);
  --running_grids_;
  // Advance the stream head; the successor may become eligible.
  const std::uint32_t stream = graph_.nodes[node_id].stream;
  std::size_t& head = stream_head_[stream];
  ++head;
  if (head < stream_nodes_[stream].size()) {
    try_queue(stream_nodes_[stream][head], now);
  }
  // Release cross-stream (event) dependents.
  if (const auto it = dependents_.find(node_id); it != dependents_.end()) {
    for (const std::uint32_t dep : it->second) {
      if (--state_[dep].deps_remaining == 0) try_queue(dep, now);
    }
    dependents_.erase(it);
  }
  try_start(now);
  try_dispatch(now);
}

void Scheduler::on_ready(std::uint32_t node_id, double now) {
  NodeState& ns = state_[node_id];
  const bool device = graph_.nodes[node_id].origin == LaunchOrigin::kDevice;
  ns.ready_t = now;
  ns.issued_t = now - (device ? spec_.device_launch_cycles()
                              : spec_.host_launch_cycles());
  // Device-launched grids activate through the single grid-management-unit
  // queue; heavy CDP fan-out serializes here. Ready events fire in time
  // order, so processing them through a busy-until server models FIFO.
  if (device) {
    const double start = std::max(now, gmu_free_);
    // The pending pool holds every device-launched grid that has not begun
    // execution (including grids waiting on stream order); launches beyond
    // it spill into the software-virtualized queue, whose cost grows with
    // the overflow depth up to the full virtualization penalty.
    const double base = spec_.device_launch_service_cycles();
    const double virt = spec_.virtualized_launch_service_cycles();
    const double pool = static_cast<double>(spec_.pending_launch_pool);
    const double overflow =
        std::clamp((gmu_pending_ - pool) / (9.0 * pool), 0.0, 1.0);
    // A consolidated launch carries K work descriptors in one grid: the GMU
    // activates it once, then streams the remaining K-1 descriptors at the
    // (much cheaper) per-descriptor rate instead of K full activations.
    const double service =
        base + (virt - base) * overflow +
        spec_.aggregated_descriptor_service_cycles() *
            std::max(0, graph_.nodes[node_id].aggregated_descriptors - 1);
    gmu_free_ = start + service;
    ++gmu_pending_;
    push_event(gmu_free_, EventType::kKernelActivated, node_id);
    return;
  }
  mark_ready(node_id, now);
}

void Scheduler::mark_ready(std::uint32_t node_id, double now) {
  NodeState& ns = state_[node_id];
  ns.ready = true;
  ns.activated_t = now;
  try_queue(node_id, now);
  try_start(now);
}

/// Queue the grid iff launch latency elapsed, it heads its stream, and all
/// cross-stream event dependencies completed.
void Scheduler::try_queue(std::uint32_t node_id, double now) {
  const NodeState& ns = state_[node_id];
  if (!ns.ready || ns.deps_remaining > 0) return;
  const std::uint32_t stream = graph_.nodes[node_id].stream;
  const std::size_t head = stream_head_[stream];
  if (head < stream_nodes_[stream].size() &&
      stream_nodes_[stream][head] == node_id) {
    make_eligible(node_id, now);
  }
}

void Scheduler::on_sm_check(std::uint32_t sm_id, std::uint64_t version,
                            double now) {
  Sm& sm = sms_[sm_id];
  if (version != sm.version) return;  // Stale.
  advance_sm(sm, now);
  bool removed = false;
  for (std::size_t i = 0; i < sm.blocks.size();) {
    if (sm.blocks[i].remaining <= kEps) {
      const ResidentBlock rb = sm.blocks[i];
      sm.blocks[i] = sm.blocks.back();
      sm.blocks.pop_back();
      const KernelNode& node = graph_.nodes[rb.node];
      // Flush launches not yet fired (numerical-tail safety).
      const auto& children = node.blocks[rb.block].children;
      for (std::size_t c = rb.next_child; c < children.size(); ++c) {
        push_event(now + spec_.device_launch_cycles(),
                   EventType::kKernelReady, children[c].child_kernel);
      }
      const int warps = spec_.warps_per_block(node.block_threads);
      sm.used_blocks -= 1;
      sm.used_warps -= warps;
      sm.used_threads -= node.block_threads;
      sm.used_smem -= node.smem_bytes;
      sm.used_regs -= static_cast<std::int64_t>(node.regs_per_thread) *
                      node.block_threads;
      removed = true;
      complete_block(rb.node, now);
    } else {
      ++i;
    }
  }
  schedule_sm_check(sm_id);
  if (removed) {
    try_dispatch(now);
    try_start(now);
  }
}

ScheduleResult Scheduler::run() {
  const std::size_t n = graph_.nodes.size();
  state_.assign(n, NodeState{});
  sms_.assign(static_cast<std::size_t>(spec_.num_sms), Sm{});
  stream_nodes_.assign(graph_.num_streams, {});
  stream_head_.assign(graph_.num_streams, 0);

  // Stream FIFOs in launch (seq) order. Nodes are stored in functional
  // execution order, which equals seq order.
  for (const KernelNode& node : graph_.nodes) {
    stream_nodes_[node.stream].push_back(node.id);
    for (const std::uint32_t dep : node.depends_on) {
      ++state_[node.id].deps_remaining;
      dependents_[dep].push_back(node.id);
    }
  }

  // Host launches: the host issues them back-to-back; each launch call costs
  // host_launch_cycles on the host timeline.
  double host_clock = 0.0;
  for (const KernelNode& node : graph_.nodes) {
    if (node.origin == LaunchOrigin::kHost) {
      host_clock += spec_.host_launch_cycles();
      push_event(host_clock, EventType::kKernelReady, node.id);
    }
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    switch (ev.type) {
      case EventType::kKernelReady:
        on_ready(ev.target, ev.time);
        break;
      case EventType::kKernelActivated:
        mark_ready(ev.target, ev.time);
        break;
      case EventType::kSmCheck:
        on_sm_check(ev.target, ev.version, ev.time);
        break;
      case EventType::kGridDrain:
        finish_grid(ev.target, ev.time);
        break;
    }
  }

  // Sanity: everything must have run.
  for (std::size_t i = 0; i < n; ++i) {
    if (!state_[i].finished) {
      throw std::logic_error("scheduler deadlock: kernel '" +
                             graph_.nodes[i].name + "' never finished");
    }
  }

  ScheduleResult res;
  res.total_cycles = makespan_;
  res.node_start.resize(n);
  res.node_end.resize(n);
  res.node_issued.resize(n);
  res.node_ready.resize(n);
  res.node_activated.resize(n);
  res.node_queued.resize(n);
  res.node_blocks_done.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.node_start[i] = state_[i].start;
    res.node_end[i] = state_[i].end;
    res.node_issued[i] = state_[i].issued_t;
    res.node_ready[i] = state_[i].ready_t;
    res.node_activated[i] = state_[i].activated_t;
    res.node_queued[i] = state_[i].queued_t;
    res.node_blocks_done[i] = state_[i].blocks_done_t;
  }
  return res;
}

}  // namespace

ScheduleResult schedule(const DeviceSpec& spec, LaunchGraph& graph) {
  return Scheduler(spec, graph).run();
}

std::vector<double> split_cycles(double total,
                                 const std::vector<TraceMember>& members) {
  std::vector<double> shares(members.size(), 0.0);
  if (members.empty()) return shares;
  if (members.size() == 1) {
    shares[0] = total;
    return shares;
  }
  double weight_sum = 0.0;
  for (const TraceMember& m : members) {
    if (std::isfinite(m.weight) && m.weight > 0.0) weight_sum += m.weight;
  }
  // Proportional shares for all but the last member; the last member takes
  // the exact complement of the running fold so the member-order fold
  // reproduces `total` bit-for-bit.
  double acc = 0.0;
  const std::size_t last = members.size() - 1;
  for (std::size_t i = 0; i < last; ++i) {
    const double w = (std::isfinite(members[i].weight) && members[i].weight > 0.0)
                         ? members[i].weight
                         : 0.0;
    const double frac = weight_sum > 0.0
                            ? w / weight_sum
                            : 1.0 / static_cast<double>(members.size());
    shares[i] = total * frac;
    acc += shares[i];
  }
  double rem = total - acc;
  // acc + fl(total - acc) can round away from `total` when magnitudes differ;
  // nudge by ulps until the fold lands exactly. Terminates in at most a few
  // steps and is fully deterministic.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (acc + rem < total) rem = std::nextafter(rem, kInf);
  while (acc + rem > total) rem = std::nextafter(rem, -kInf);
  shares[last] = rem;
  return shares;
}

CycleAttribution attribute_cycles(const LaunchGraph& graph,
                                  const ScheduleResult& sched) {
  CycleAttribution out;
  // request id -> slot in out.per_request; insertion keyed later by sort.
  std::unordered_map<std::uint64_t, std::size_t> slot;
  for (const KernelNode& node : graph.nodes) {
    if (node.batch_id == kNoBatchId || node.requesters.empty()) continue;
    const double busy = sched.node_end[node.id] - sched.node_start[node.id];
    const double fault = node.metrics.fault_cycles;
    const std::vector<double> shares = split_cycles(busy, node.requesters);
    const std::vector<double> fault_shares =
        split_cycles(fault, node.requesters);
    for (std::size_t i = 0; i < node.requesters.size(); ++i) {
      const TraceMember& m = node.requesters[i];
      const auto [it, inserted] = slot.emplace(m.request, out.per_request.size());
      if (inserted) {
        RequestCycles rc;
        rc.request = m.request;
        rc.tenant = m.tenant;
        out.per_request.push_back(rc);
      }
      RequestCycles& rc = out.per_request[it->second];
      rc.cycles += shares[i];
      rc.fault_cycles += fault_shares[i];
      ++rc.grids;
    }
    out.attributed_cycles += busy;
    out.attributed_fault_cycles += fault;
    ++out.attributed_grids;
  }
  std::sort(out.per_request.begin(), out.per_request.end(),
            [](const RequestCycles& a, const RequestCycles& b) {
              return a.request < b.request;
            });
  return out;
}

}  // namespace nestpar::simt
