#include "src/simt/fault.h"

#include <charconv>
#include <cstdlib>

namespace nestpar::simt {

std::string_view to_string(SimtError e) {
  switch (e) {
    case SimtError::kOk: return "ok";
    case SimtError::kPendingPoolExhausted: return "pending-launch pool exhausted";
    case SimtError::kDepthLimitExceeded: return "nesting depth limit exceeded";
    case SimtError::kDeviceHeapExhausted: return "device heap exhausted";
    case SimtError::kInjectedFault: return "injected transient fault";
  }
  return "?";
}

std::uint64_t fault_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

double parse_rate(std::string_view key, std::string_view val) {
  double d = 0.0;
  const auto [p, ec] = std::from_chars(val.data(), val.data() + val.size(), d);
  if (ec != std::errc{} || p != val.data() + val.size() || d < 0.0 || d > 1.0) {
    throw std::invalid_argument("NESTPAR_FAULTS: '" + std::string(key) +
                                "' must be a probability in [0,1], got '" +
                                std::string(val) + "'");
  }
  return d;
}

std::uint64_t parse_u64(std::string_view key, std::string_view val) {
  std::uint64_t u = 0;
  const auto [p, ec] = std::from_chars(val.data(), val.data() + val.size(), u);
  if (ec != std::errc{} || p != val.data() + val.size()) {
    throw std::invalid_argument("NESTPAR_FAULTS: '" + std::string(key) +
                                "' must be a non-negative integer, got '" +
                                std::string(val) + "'");
  }
  return u;
}

}  // namespace

FaultConfig FaultConfig::parse(std::string_view spec) {
  FaultConfig cfg;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      // Bare number: shorthand for launch=<rate>.
      cfg.device_launch_rate = parse_rate("launch", item);
      continue;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    if (key == "launch") {
      cfg.device_launch_rate = parse_rate(key, val);
    } else if (key == "host") {
      cfg.host_launch_rate = parse_rate(key, val);
    } else if (key == "seed") {
      cfg.seed = parse_u64(key, val);
    } else if (key == "retries") {
      cfg.max_retries = static_cast<int>(parse_u64(key, val));
    } else if (key == "backoff") {
      cfg.backoff_base_cycles = static_cast<double>(parse_u64(key, val));
    } else {
      throw std::invalid_argument(
          "NESTPAR_FAULTS: unknown key '" + std::string(key) +
          "' (valid: launch, host, seed, retries, backoff)");
    }
  }
  return cfg;
}

FaultConfig FaultConfig::from_env() {
  const char* env = std::getenv("NESTPAR_FAULTS");
  if (env == nullptr || *env == '\0') return FaultConfig{};
  return parse(env);
}

bool FaultInjector::should_fail(FaultSite site, std::uint64_t key) const {
  const double rate = cfg_.rate(site);
  if (rate <= 0.0) return false;
  const std::uint64_t h = fault_mix(
      cfg_.seed ^ fault_mix(key ^ (static_cast<std::uint64_t>(site) << 56)));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

}  // namespace nestpar::simt
