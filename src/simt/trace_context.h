#pragma once

#include <cstdint>
#include <vector>

namespace nestpar::simt {

/// Sentinel batch id meaning "no serving-layer context attached".
inline constexpr std::uint64_t kNoBatchId = ~std::uint64_t{0};

/// One requester that contributed work to a grid. A plain launch has one
/// member; a consolidated grid that aggregates descriptors from several
/// queries lists one member per query, weighted by the work items each
/// contributed. Weights are relative — the attribution pass normalizes them
/// per grid (attribute_cycles, scheduler.h).
struct TraceMember {
  std::uint64_t request = 0;  ///< Serving-layer request id.
  std::uint32_t tenant = 0;   ///< Owning tenant of that request.
  double weight = 1.0;        ///< Contributed work items (relative share).
};

/// Serving-layer provenance propagated into the launch graph. The serving
/// layer installs one per attempt as the recorder's ambient context
/// (Recorder::set_trace_context); individual launches may override it by
/// filling LaunchConfig::trace — e.g. a batcher stamping a consolidated grid
/// with every member query. Grids recorded while no context is active (all
/// bench/profiling paths) carry kNoBatchId and stay byte-identical to
/// pre-context artifacts.
struct TraceContext {
  std::uint64_t batch_id = kNoBatchId;
  std::vector<TraceMember> members;

  bool active() const { return batch_id != kNoBatchId; }
};

}  // namespace nestpar::simt
