#include "src/simt/exec_policy.h"

#include <cstdlib>
#include <string_view>
#include <thread>

namespace nestpar::simt {

namespace {

int env_int(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  return std::atoi(v);
}

}  // namespace

ExecPolicy ExecPolicy::from_env() {
  ExecPolicy p;
  p.threads = env_int("NESTPAR_THREADS");
  if (p.threads < 0) p.threads = 0;
  const char* mode = std::getenv("NESTPAR_EXEC");
  if (mode != nullptr) {
    const std::string_view m{mode};
    if (m == "parallel") {
      p.mode = ExecMode::kParallel;
    } else {
      p.mode = ExecMode::kSerial;  // "serial" or anything unrecognized
    }
  } else if (p.threads > 1) {
    // NESTPAR_THREADS=4 alone is a request for 4 engine threads.
    p.mode = ExecMode::kParallel;
  }
  return p;
}

int ExecPolicy::resolve_threads() const {
  if (mode == ExecMode::kSerial) return 1;
  int n = threads;
  if (n <= 0) n = env_int("NESTPAR_THREADS");
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  return n < 1 ? 1 : n;
}

std::string to_string(const ExecPolicy& p) {
  if (p.mode == ExecMode::kSerial) return "serial";
  if (p.threads > 0) return "parallel(" + std::to_string(p.threads) + ")";
  return "parallel(auto)";
}

}  // namespace nestpar::simt
