#include "src/simt/profiler.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>

namespace nestpar::simt {

int ProfHistogram::bucket_of(double v) {
  if (!(v >= 1.0)) return 0;  // negatives and NaN land in bucket 0
  const auto u = static_cast<std::uint64_t>(std::min(v, 9.2e18));
  return std::min(static_cast<int>(std::bit_width(u)), kBuckets - 1);
}

void ProfHistogram::add(double v) {
  if (count == 0) {
    min_value = v;
    max_value = v;
  } else {
    min_value = std::min(min_value, v);
    max_value = std::max(max_value, v);
  }
  ++count;
  sum += v;
  ++buckets[bucket_of(v)];
}

ProfHistogram& ProfHistogram::operator+=(const ProfHistogram& o) {
  if (o.count == 0) return *this;
  if (count == 0) {
    min_value = o.min_value;
    max_value = o.max_value;
  } else {
    min_value = std::min(min_value, o.min_value);
    max_value = std::max(max_value, o.max_value);
  }
  count += o.count;
  sum += o.sum;
  for (int b = 0; b < kBuckets; ++b) buckets[b] += o.buckets[b];
  return *this;
}

const KernelProfile* ProfileSnapshot::find(std::string_view name) const {
  for (const KernelProfile& k : kernels) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

namespace {

bool env_profile_enabled() {
  const char* v = std::getenv("NESTPAR_PROFILE");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_profile_enabled()};
  return flag;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

bool Profiler::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void Profiler::set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void Profiler::counter(std::string_view track, double value,
                       std::uint64_t node) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.counters.push_back(CounterSample{std::string(track), value, node});
  data_.tracks[std::string(track)].add(value);
}

void Profiler::value(std::string_view track, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.tracks[std::string(track)].add(v);
}

void Profiler::instant(std::string_view name, std::string_view cat,
                       std::uint64_t node) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.instants.push_back(
      InstantSample{std::string(name), std::string(cat), node});
}

void Profiler::observe_report(const LaunchGraph& graph,
                              const ScheduleResult& sched,
                              const CritPath& crit) {
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.reports;
  data_.total_cycles += sched.total_cycles;
  data_.crit_total += crit.total;
  for (const auto& [name, attr] : crit.per_kernel) {
    data_.crit_kernels[name] += attr;
  }
  for (const auto& [stack, cycles] : crit.folded) {
    data_.crit_folded[stack] += cycles;
  }
  if (crit.makespan > data_.crit_chain_makespan) {
    data_.crit_chain_makespan = crit.makespan;
    data_.crit_chain = crit.chain;
  }
  for (const KernelNode& node : graph.nodes) {
    KernelProfile& kp = kernels_[node.name];
    if (kp.name.empty()) kp.name = node.name;
    ++kp.invocations;
    kp.busy_cycles += sched.node_end[node.id] - sched.node_start[node.id];
    for (const BlockCost& b : node.blocks) kp.block_cycles.add(b.issue_cycles);
    if (!node.blocks.empty()) {
      double mx = 0.0;
      double sum = 0.0;
      for (const BlockCost& b : node.blocks) {
        mx = std::max(mx, static_cast<double>(b.issue_cycles));
        sum += static_cast<double>(b.issue_cycles);
      }
      kp.launch_max_cycles += mx;
      kp.launch_mean_cycles += sum / static_cast<double>(node.blocks.size());
    }
    if (node.origin == LaunchOrigin::kDevice) {
      kp.child_grid_blocks.add(static_cast<double>(node.grid_blocks));
      ++data_.device_grids;
    }
    for (int i = 0; i < kLaneHistSlots; ++i) {
      kp.lane_hist[i] += node.metrics.active_lane_hist[i];
    }
    kp.warp_steps += node.metrics.warp_steps;
    kp.active_lane_ops += node.metrics.active_lane_ops;
    ++kp.nest_depth_grids[node.nest_depth];
    kp.robustness += node.metrics.robustness;
    ++data_.depth_grids[node.nest_depth];
    ++data_.grids;
  }
}

ProfileSnapshot Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileSnapshot snap = data_;
  snap.kernels.reserve(kernels_.size());
  for (const auto& [name, kp] : kernels_) snap.kernels.push_back(kp);
  return snap;  // std::map iteration order keeps kernels sorted by name
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  kernels_.clear();
  data_ = ProfileSnapshot{};
}

}  // namespace nestpar::simt
