#include "src/simt/device.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/simt/host_alloc.h"
#include "src/simt/profiler.h"

namespace nestpar::simt {

const KernelReport& RunReport::kernel(const std::string& name) const {
  for (const KernelReport& k : per_kernel) {
    if (k.name == name) return k;
  }
  throw std::out_of_range("no kernel named '" + name + "' in report");
}

Device::Device(DeviceSpec spec, int max_nesting_depth, ExecPolicy policy)
    : recorder_(spec, max_nesting_depth), policy_(policy) {
  // Forces host_alloc.cpp (the segment-aligned operator new replacement) out
  // of the static archive; without a referenced symbol the linker would drop
  // it and buffer addresses — and thus modeled coalescing — would depend on
  // heap history, which differs between the serial and parallel engines.
  (void)detail::host_allocator_active();
  // Transient-fault injection from NESTPAR_FAULTS (disabled when unset);
  // set_fault_config() can override programmatically.
  recorder_.set_fault_config(FaultConfig::from_env());
  apply_policy();
}

void Device::apply_policy() {
  const int threads = policy_.resolve_threads();
  if (policy_.mode == ExecMode::kParallel && threads > 1) {
    if (pool_ == nullptr || pool_->threads() != threads) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    recorder_.set_pool(pool_.get());
  } else {
    recorder_.set_pool(nullptr);
  }
}

void Device::set_exec_policy(const ExecPolicy& policy) {
  policy_ = policy;
  apply_policy();
}

Session Device::session() { return session(policy_); }

Session Device::session(const ExecPolicy& policy) {
  SessionOptions options;
  options.policy = policy;
  return session(options);
}

Session Device::session(const SessionOptions& options) {
  if (session_active_) {
    throw std::logic_error(
        "Device::session: a Session is already open on this Device");
  }
  return Session(this, options);
}

Session::Session(Device* dev, const SessionOptions& options)
    : dev_(dev), restore_(dev->policy_) {
  dev_->session_active_ = true;
  dev_->set_exec_policy(options.policy);
  dev_->recorder_.reset();
  if (options.profile) {
    profile_override_ = true;
    profile_restore_ = Profiler::enabled();
    Profiler::set_enabled(true);
  }
}

Session::Session(Session&& other) noexcept
    : dev_(std::exchange(other.dev_, nullptr)),
      restore_(other.restore_),
      profile_override_(other.profile_override_),
      profile_restore_(other.profile_restore_) {}

Session::~Session() {
  if (dev_ == nullptr) return;
  if (profile_override_) Profiler::set_enabled(profile_restore_);
  dev_->recorder_.reset();
  dev_->set_exec_policy(restore_);
  dev_->session_active_ = false;
}

void Device::launch(const LaunchConfig& cfg, Kernel k, StreamHandle stream) {
  const LaunchResult r = recorder_.launch_host(cfg, k, stream);
  if (!r.ok()) {
    throw SimtException(r.error, "host launch '" + cfg.name + "' refused: " +
                                     std::string(to_string(r.error)));
  }
}

void Device::launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                            StreamHandle stream) {
  launch(cfg, as_kernel(std::move(k)), stream);
}

LaunchResult Device::try_launch(const LaunchConfig& cfg, Kernel k,
                                StreamHandle stream) {
  return recorder_.launch_host(cfg, k, stream);
}

LaunchResult Device::try_launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                                        StreamHandle stream) {
  return recorder_.launch_host(cfg, as_kernel(std::move(k)), stream);
}

void Device::reset() { recorder_.reset(); }

void Device::prof_counter(std::string_view track, double value) {
  if (!Profiler::enabled()) return;
  Profiler::instance().counter(track, value, recorder_.graph().nodes.size());
}

void Device::prof_value(std::string_view track, double value) {
  if (!Profiler::enabled()) return;
  Profiler::instance().value(track, value);
}

void Device::prof_instant(std::string_view name, std::string_view cat) {
  if (!Profiler::enabled()) return;
  Profiler::instance().instant(name, cat, recorder_.graph().nodes.size());
}

int Device::blocks_for(std::int64_t items, int block_threads, int max_blocks) {
  if (items <= 0) return 1;
  const std::int64_t blocks = (items + block_threads - 1) / block_threads;
  return static_cast<int>(std::min<std::int64_t>(blocks, max_blocks));
}

RunReport Device::report() {
  LaunchGraph& graph = recorder_.graph();
  RunReport rep;
  rep.robustness = recorder_.host_robustness();
  if (graph.nodes.empty()) return rep;

  const ScheduleResult sched = schedule(recorder_.spec(), graph);
  rep.critical_path = analyze_critical_path(graph, sched);
  if (Profiler::enabled()) {
    Profiler::instance().observe_report(graph, sched, rep.critical_path);
  }
  rep.total_cycles = sched.total_cycles;
  rep.total_us = recorder_.spec().cycles_to_us(sched.total_cycles);
  rep.grids = graph.nodes.size();

  std::unordered_map<std::string, std::size_t> index;
  for (const KernelNode& node : graph.nodes) {
    if (node.origin == LaunchOrigin::kDevice) ++rep.device_grids;
    auto [it, inserted] = index.emplace(node.name, rep.per_kernel.size());
    if (inserted) {
      rep.per_kernel.push_back(KernelReport{node.name, 0, 0.0, Metrics{}});
    }
    KernelReport& kr = rep.per_kernel[it->second];
    kr.invocations += 1;
    kr.busy_cycles += sched.node_end[node.id] - sched.node_start[node.id];
    kr.metrics += node.metrics;
    rep.aggregate += node.metrics;
  }
  rep.robustness += rep.aggregate.robustness;

  rep.attribution = attribute_cycles(graph, sched);
  if (collect_slices_) {
    const DeviceSpec& spec = recorder_.spec();
    rep.slices.reserve(graph.nodes.size());
    for (const KernelNode& node : graph.nodes) {
      GridSlice s;
      s.node = node.id;
      s.parent = node.parent_kernel;
      s.stream = node.stream;
      s.origin = node.origin;
      s.name = node.name;
      s.start_us = spec.cycles_to_us(sched.node_start[node.id]);
      s.dur_us = spec.cycles_to_us(sched.node_end[node.id] -
                                   sched.node_start[node.id]);
      s.cycles = sched.node_end[node.id] - sched.node_start[node.id];
      s.batch_id = node.batch_id;
      s.members = node.requesters;
      rep.slices.push_back(std::move(s));
    }
  }
  return rep;
}

}  // namespace nestpar::simt
