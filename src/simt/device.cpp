#include "src/simt/device.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace nestpar::simt {

const KernelReport& RunReport::kernel(const std::string& name) const {
  for (const KernelReport& k : per_kernel) {
    if (k.name == name) return k;
  }
  throw std::out_of_range("no kernel named '" + name + "' in report");
}

Device::Device(DeviceSpec spec, int max_nesting_depth)
    : recorder_(spec, max_nesting_depth) {}

void Device::launch(const LaunchConfig& cfg, Kernel k, StreamHandle stream) {
  recorder_.launch_host(cfg, k, stream);
}

void Device::launch_threads(const LaunchConfig& cfg, ThreadKernel k,
                            StreamHandle stream) {
  recorder_.launch_host(cfg, as_kernel(std::move(k)), stream);
}

void Device::reset() { recorder_.reset(); }

int Device::blocks_for(std::int64_t items, int block_threads, int max_blocks) {
  if (items <= 0) return 1;
  const std::int64_t blocks = (items + block_threads - 1) / block_threads;
  return static_cast<int>(std::min<std::int64_t>(blocks, max_blocks));
}

RunReport Device::report() {
  LaunchGraph& graph = recorder_.graph();
  RunReport rep;
  if (graph.nodes.empty()) return rep;

  const ScheduleResult sched = schedule(recorder_.spec(), graph);
  rep.total_cycles = sched.total_cycles;
  rep.total_us = recorder_.spec().cycles_to_us(sched.total_cycles);
  rep.grids = graph.nodes.size();

  std::unordered_map<std::string, std::size_t> index;
  for (const KernelNode& node : graph.nodes) {
    if (node.origin == LaunchOrigin::kDevice) ++rep.device_grids;
    auto [it, inserted] = index.emplace(node.name, rep.per_kernel.size());
    if (inserted) {
      rep.per_kernel.push_back(KernelReport{node.name, 0, 0.0, Metrics{}});
    }
    KernelReport& kr = rep.per_kernel[it->second];
    kr.invocations += 1;
    kr.busy_cycles += sched.node_end[node.id] - sched.node_start[node.id];
    kr.metrics += node.metrics;
    rep.aggregate += node.metrics;
  }
  return rep;
}

}  // namespace nestpar::simt
