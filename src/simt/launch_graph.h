#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/simt/metrics.h"
#include "src/simt/trace_context.h"

namespace nestpar::simt {

/// Launch DAG of one recorded session: the durable output of the functional
/// pass and the sole input of the timing pass (scheduler.cpp).
///
/// Ownership/lifetime: everything in this graph is owned *by value* — node
/// names, block costs, child-launch lists. The functional pass records into
/// transient, recycled storage (the SoA warp trace and per-block scratch
/// arenas of ctx.h/arena.h), and each block's trace is reduced warp-by-warp
/// into a BlockCost before that storage is reused; nothing here points back
/// into an arena. A LaunchGraph therefore stays valid for as long as the
/// Recorder that built it (Device::graph() borrows it per session) and is
/// freely copyable. See docs/SIMULATOR.md for the full pipeline.

/// A device-side launch performed by some lane of a block: which kernel node
/// it created and where within the block's execution it was issued (as a
/// fraction of the block's total issue work, used by the timing pass to place
/// the child's ready time).
struct ChildLaunch {
  std::uint32_t child_kernel = 0;
  double issue_fraction = 0.0;
};

/// Cost summary of one executed block, produced by the functional pass and
/// consumed by the timing pass. Warp traces are reduced warp-by-warp into
/// this summary and the backing trace storage recycled; `children` preserves
/// the lane-ascending, step-ordered issue order the scheduler's event
/// timeline depends on.
struct BlockCost {
  double issue_cycles = 0.0;  ///< Sum of warp step costs across the block.
  std::uint32_t warps = 0;
  std::vector<ChildLaunch> children;
};

/// How a kernel was launched; decides launch latency and stream semantics.
enum class LaunchOrigin : std::uint8_t { kHost, kDevice };

/// One launched grid in the session's launch DAG.
struct KernelNode {
  std::uint32_t id = 0;
  std::string name;
  LaunchOrigin origin = LaunchOrigin::kHost;
  int grid_blocks = 0;
  int block_threads = 0;
  std::size_t smem_bytes = 0;
  int regs_per_thread = 24;
  /// Deferred work descriptors carried by a consolidated launch (see
  /// LaunchConfig::aggregated_descriptors); the GMU charges per-descriptor
  /// service on top of the base launch cost when > 1.
  int aggregated_descriptors = 0;
  /// Stream identity: host launches use the user stream id; device launches
  /// default to a per-(parent grid, parent block) stream, or to explicit
  /// per-block extra streams. Encoded as a dense id by the recorder.
  std::uint32_t stream = 0;
  /// Global launch sequence number; defines intra-stream FIFO order.
  std::uint64_t seq = 0;
  /// Parent kernel node (device launches only), and the parent block index.
  std::int64_t parent_kernel = -1;
  std::int32_t parent_block = -1;
  /// Nesting depth (0 for host launches); bounded by the CDP depth limit.
  std::uint32_t nest_depth = 0;
  /// Cross-stream dependencies (cudaStreamWaitEvent): this grid cannot start
  /// until each listed kernel node has completed.
  std::vector<std::uint32_t> depends_on;
  std::vector<BlockCost> blocks;
  /// Count of atomic ops hitting this kernel's hottest atomic address;
  /// models device-wide atomic serialization (hotspot drain).
  std::uint64_t hottest_atomic_ops = 0;
  /// Serving-layer provenance: which dispatch batch caused this grid
  /// (kNoBatchId outside the serving layer) and the member queries that
  /// contributed work. Device launches inherit their parent's context.
  /// Pure metadata — the timing pass never reads it.
  std::uint64_t batch_id = kNoBatchId;
  std::vector<TraceMember> requesters;
  /// Functional-pass metrics for this grid (timing pass adds occupancy).
  Metrics metrics;
};

/// The whole recorded session: every grid launched (host or device), in
/// functional execution order. Node ids index into `nodes`.
struct LaunchGraph {
  std::vector<KernelNode> nodes;
  std::uint32_t num_streams = 1;  ///< Dense stream ids are < num_streams.
};

}  // namespace nestpar::simt
